// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls out.
// Each figure benchmark measures the analysis + rendering pipeline over a
// shared simulated trace and, on its first run, prints the rows/series the
// paper reports so the shape can be compared directly (absolute numbers
// come from the simulator, not OLCF's testbed; see EXPERIMENTS.md).
package slurmsight_test

import (
	"bufio"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"slurmsight/internal/analyze"
	"slurmsight/internal/cluster"
	"slurmsight/internal/core"
	"slurmsight/internal/curate"
	"slurmsight/internal/dataflow"
	"slurmsight/internal/llm"
	"slurmsight/internal/obs"
	"slurmsight/internal/plot"
	"slurmsight/internal/raster"
	"slurmsight/internal/sacct"
	"slurmsight/internal/sched"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

// --- shared fixtures, built once ---

type fixture struct {
	jobs    []slurm.Record
	records []slurm.Record // jobs + steps
	store   *sacct.Store
	stats   sched.RunStats
}

var (
	frontierOnce sync.Once
	frontierFix  *fixture
	andesOnce    sync.Once
	andesFix     *fixture
	fullOnce     sync.Once
	fullVols     []analyze.VolumeByYear
	spreadOnce   sync.Once
	spreadFix    *fixture
)

// spread is a six-month, low-rate Frontier store whose records are spread
// evenly across monthly shards — the right shape for measuring sharded
// retrieval and workflow-stage concurrency.
func spread(b *testing.B) *fixture {
	b.Helper()
	spreadOnce.Do(func() {
		p := tracegen.FrontierProfile()
		p.JobsPerDay, p.Users = 40, 80
		start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
		spreadFix = simulateFixture(p, cluster.Frontier(), start, start.AddDate(0, 6, 0), 8, true)
	})
	return spreadFix
}

func simulateFixture(profile tracegen.Profile, sys *cluster.System,
	start, end time.Time, seed int64, steps bool) *fixture {
	reqs, err := tracegen.Generate([]tracegen.Phase{{Profile: profile, Start: start, End: end}}, seed)
	if err != nil {
		panic(err)
	}
	sim, err := sched.New(sched.DefaultConfig(sys))
	if err != nil {
		panic(err)
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: steps})
	if err != nil {
		panic(err)
	}
	st := sacct.NewStore()
	if err := st.Ingest(res); err != nil {
		panic(err)
	}
	st.Finalize()
	f := &fixture{jobs: res.Jobs, store: st, stats: res.Stats}
	f.records = append(f.records, res.Jobs...)
	f.records = append(f.records, res.Steps...)
	return f
}

func frontier(b *testing.B) *fixture {
	b.Helper()
	frontierOnce.Do(func() {
		p := tracegen.FrontierProfile()
		p.JobsPerDay, p.Users = 250, 160
		start := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
		frontierFix = simulateFixture(p, cluster.Frontier(), start, start.AddDate(0, 0, 30), 5, true)
	})
	return frontierFix
}

func andes(b *testing.B) *fixture {
	b.Helper()
	andesOnce.Do(func() {
		p := tracegen.AndesProfile()
		p.JobsPerDay, p.Users = 250, 160
		start := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
		andesFix = simulateFixture(p, cluster.Andes(), start, start.AddDate(0, 0, 30), 6, true)
	})
	return andesFix
}

// fullScenario covers both Frontier eras for the Figure 1 year series,
// without materialized steps (counts suffice for volume bars).
func fullScenario(b *testing.B) []analyze.VolumeByYear {
	b.Helper()
	fullOnce.Do(func() {
		start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
		end := time.Date(2024, 12, 31, 0, 0, 0, 0, time.UTC)
		phases := tracegen.FrontierScenario(start, end)
		for i := range phases {
			phases[i].Profile.JobsPerDay = 25
			phases[i].Profile.Users = 120
		}
		reqs, err := tracegen.Generate(phases, 9)
		if err != nil {
			panic(err)
		}
		sim, err := sched.New(sched.DefaultConfig(cluster.Frontier()))
		if err != nil {
			panic(err)
		}
		res, err := sim.Run(reqs, sched.Options{})
		if err != nil {
			panic(err)
		}
		fullVols = analyze.JobStepVolumeCounted(res.Jobs, res.StepsPerJob)
	})
	return fullVols
}

var reportOnce sync.Map

// report prints a figure's headline rows exactly once per bench run.
func report(name, text string) {
	if _, loaded := reportOnce.LoadOrStore(name, true); !loaded {
		fmt.Fprintf(os.Stderr, "\n[%s]\n%s\n", name, text)
	}
}

// --- Table 1: curated field selection ---

func BenchmarkTable1FieldSelection(b *testing.B) {
	f := frontier(b)
	fields := slurm.SelectedNames()
	report("table1", fmt.Sprintf("selected %d of %d accounting fields across %d categories",
		len(fields), len(slurm.AllFieldNames()), len(slurm.Categories())))
	rec := &f.jobs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line, err := slurm.EncodeRecord(rec, fields)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := slurm.DecodeRecord(line, fields); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: LLM offering survey ---

func BenchmarkTable2LLMSelection(b *testing.B) {
	reg := llm.Registry()
	chosen, err := llm.Choose(reg, llm.PaperCriteria())
	if err != nil {
		b.Fatal(err)
	}
	report("table2", fmt.Sprintf("%d providers surveyed → selected %s %s (free API, image input, no usage cap)",
		len(reg), chosen.Vendor, chosen.Model))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := llm.Choose(reg, llm.PaperCriteria()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 1: job and step volume per year ---

func BenchmarkFigure1JobStepVolume(b *testing.B) {
	vols := fullScenario(b)
	text := ""
	for _, v := range vols {
		text += fmt.Sprintf("  %d: %d jobs, %d steps\n", v.Year, v.Jobs, v.Steps)
	}
	text += fmt.Sprintf("  steps/jobs ratio: %.1f (paper: ~14x)", analyze.StepJobRatio(vols))
	report("figure1", text)
	f := frontier(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := analyze.JobStepVolume(f.records)
		if len(v) == 0 {
			b.Fatal("no volume")
		}
	}
}

// --- Figure 2: inferred dataflow graph ---

func BenchmarkFigure2DataflowGraph(b *testing.B) {
	build := func() *dataflow.Graph {
		g := dataflow.NewGraph()
		noop := func(context.Context) error { return nil }
		must := func(err error) {
			if err != nil {
				b.Fatal(err)
			}
		}
		must(g.Add(dataflow.Task{Name: "obtain-data", Writes: []string{"raw"}, Run: noop}))
		must(g.Add(dataflow.Task{Name: "curate", Reads: []string{"raw"}, Writes: []string{"csv"}, Run: noop}))
		for _, fig := range core.FigureKeys() {
			must(g.Add(dataflow.Task{Name: "plot-" + fig, Reads: []string{"csv"},
				Writes: []string{fig + ".html"}, Run: noop}))
			must(g.Add(dataflow.Task{Name: "html2png-" + fig, Reads: []string{fig + ".html"},
				Writes: []string{fig + ".png"}, Run: noop}))
			must(g.Add(dataflow.Task{Name: "llm-insight-" + fig, Reads: []string{fig + ".png"},
				Writes: []string{fig + ".md"}, Run: noop}))
		}
		var dash []string
		for _, fig := range core.FigureKeys() {
			dash = append(dash, fig+".html")
		}
		must(g.Add(dataflow.Task{Name: "dashboard", Reads: dash, Writes: []string{"dash"}, Run: noop}))
		return g
	}
	g := build()
	rows, err := g.Rows()
	if err != nil {
		b.Fatal(err)
	}
	text := fmt.Sprintf("  %d tasks in %d concurrency rows; widest row %d tasks\n  DOT export: %d bytes",
		g.Len(), len(rows), widest(rows), len(g.DOT()))
	report("figure2", text)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := build()
		if _, err := g.Rows(); err != nil {
			b.Fatal(err)
		}
		_ = g.DOT()
	}
}

func widest(rows [][]string) int {
	w := 0
	for _, r := range rows {
		if len(r) > w {
			w = len(r)
		}
	}
	return w
}

// renderFigure measures the full per-figure path: analysis → chart → SVG.
func renderFigure(b *testing.B, build func() *plot.Chart) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		c := build()
		if _, err := plot.SVG(c, 960, 540); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 3: nodes vs elapsed (Frontier) ---

func BenchmarkFigure3NodesVsElapsed(b *testing.B) {
	f := frontier(b)
	s := analyze.SummarizeScale(analyze.NodesVsElapsed(f.jobs))
	report("figure3", fmt.Sprintf(
		"  frontier: median %.0f nodes / %.0f min elapsed; small-short %.0f%%, large-long %.2f%%",
		s.MedianNodes, s.MedianElapsedSec/60, 100*s.SmallShortShare, 100*s.LargeLongShare))
	b.ResetTimer()
	renderFigure(b, func() *plot.Chart { return core.NodesElapsedChart("frontier", f.jobs) })
}

// --- Figure 4: wait times by final state (Frontier) ---

func BenchmarkFigure4WaitTimes(b *testing.B) {
	f := frontier(b)
	s := analyze.SummarizeWaits(analyze.WaitTimes(f.jobs))
	report("figure4", fmt.Sprintf(
		"  frontier: p50 %.0fs, p90 %.0fs, p99 %.0fs; long-tail(>100ks) %.2f%%; states stratified: %d",
		s.P50, s.P90, s.P99, 100*s.LongWaits, len(s.PerState)))
	b.ResetTimer()
	renderFigure(b, func() *plot.Chart { return core.WaitChart("frontier", f.jobs) })
}

// --- Figure 5: end states per user (Frontier) ---

func BenchmarkFigure5StatesPerUser(b *testing.B) {
	f := frontier(b)
	s := analyze.SummarizeUsers(analyze.StatesPerUser(f.jobs, 0))
	report("figure5", fmt.Sprintf(
		"  frontier: %d users; mean failed share %.1f%% (std %.2f); top decile owns %.0f%% of failures",
		s.Users, 100*s.MeanFailedShare, s.StdFailedShare, 100*s.TopDecileFailures))
	b.ResetTimer()
	renderFigure(b, func() *plot.Chart { return core.StatesChart("frontier", f.jobs, 50) })
}

// --- Figure 6: requested vs actual walltime + backfill (Frontier) ---

func BenchmarkFigure6Backfill(b *testing.B) {
	f := frontier(b)
	s := analyze.SummarizeBackfill(analyze.RequestedVsActual(f.jobs))
	report("figure6", fmt.Sprintf(
		"  frontier: %.0f%% of jobs use <75%% of request; median use %.0f%%; %.0f%% backfilled;\n"+
			"  backfilled median %.0fs vs regular %.0fs; reclaimable %.0f node-hours",
		100*s.OverestimateShare, 100*s.MedianUseRatio, 100*s.BackfilledShare,
		s.MedianActualBackfilled, s.MedianActualRegular,
		analyze.ReclaimableNodeHours(f.jobs)))
	b.ResetTimer()
	renderFigure(b, func() *plot.Chart { return core.BackfillChart("frontier", f.jobs) })
}

// --- Figures 7–9: the Andes portability panel ---

func BenchmarkFigure7AndesNodesVsElapsed(b *testing.B) {
	a, f := andes(b), frontier(b)
	sa := analyze.SummarizeScale(analyze.NodesVsElapsed(a.jobs))
	sf := analyze.SummarizeScale(analyze.NodesVsElapsed(f.jobs))
	report("figure7", fmt.Sprintf(
		"  andes: median %.0f nodes, small-short %.0f%% (frontier: %.0f nodes, %.0f%%) — denser small/short work",
		sa.MedianNodes, 100*sa.SmallShortShare, sf.MedianNodes, 100*sf.SmallShortShare))
	b.ResetTimer()
	renderFigure(b, func() *plot.Chart { return core.NodesElapsedChart("andes", a.jobs) })
}

func BenchmarkFigure8AndesStatesPerUser(b *testing.B) {
	a, f := andes(b), frontier(b)
	sa := analyze.SummarizeUsers(analyze.StatesPerUser(a.jobs, 0))
	sf := analyze.SummarizeUsers(analyze.StatesPerUser(f.jobs, 0))
	report("figure8", fmt.Sprintf(
		"  andes: mean failed share %.1f%% std %.2f (frontier: %.1f%% std %.2f) — lower, more uniform",
		100*sa.MeanFailedShare, sa.StdFailedShare, 100*sf.MeanFailedShare, sf.StdFailedShare))
	b.ResetTimer()
	renderFigure(b, func() *plot.Chart { return core.StatesChart("andes", a.jobs, 50) })
}

func BenchmarkFigure9AndesBackfill(b *testing.B) {
	a, f := andes(b), frontier(b)
	sa := analyze.SummarizeBackfill(analyze.RequestedVsActual(a.jobs))
	sf := analyze.SummarizeBackfill(analyze.RequestedVsActual(f.jobs))
	report("figure9", fmt.Sprintf(
		"  andes: median use ratio %.0f%% (frontier %.0f%%) — over-estimation persists, tighter on Andes",
		100*sa.MedianUseRatio, 100*sf.MedianUseRatio))
	b.ResetTimer()
	renderFigure(b, func() *plot.Chart { return core.BackfillChart("andes", a.jobs) })
}

// --- §4.2: LLM insight and comparison stages ---

func BenchmarkLLMInsight(b *testing.B) {
	f := frontier(b)
	chart := core.BackfillChart("frontier", f.jobs)
	png, err := raster.PNG(chart, 960, 540)
	if err != nil {
		b.Fatal(err)
	}
	server := httptest.NewServer(func() *llm.Server {
		s := llm.NewServer("sk-bench")
		s.RatePerSec = 0 // benches hammer the endpoint
		return s
	}().Handler())
	defer server.Close()
	client := llm.NewClient(server.URL, "sk-bench")
	img, err := llm.EncodeImage("fig6", png, chart)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := client.Analyze(context.Background(), llm.InsightPrompt, img)
	if err != nil {
		b.Fatal(err)
	}
	report("llm-insight", "  "+truncate(resp.Text, 220))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Analyze(context.Background(), llm.InsightPrompt, img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLLMCompare(b *testing.B) {
	f := frontier(b)
	mid := f.jobs[len(f.jobs)/2].Submit
	var early, late []slurm.Record
	for _, j := range f.jobs {
		if j.Submit.Before(mid) {
			early = append(early, j)
		} else {
			late = append(late, j)
		}
	}
	ca := core.WaitChart("first half", early)
	cb := core.WaitChart("second half", late)
	a, err := llm.CompareCharts(ca, cb)
	if err != nil {
		b.Fatal(err)
	}
	report("llm-compare", "  "+truncate(a.Text, 220))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := llm.CompareCharts(ca, cb); err != nil {
			b.Fatal(err)
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// --- §3.3: workflow concurrency scaling ---

func BenchmarkWorkflowConcurrency(b *testing.B) {
	f := spread(b)
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dir := b.TempDir()
				art, err := core.Run(context.Background(), core.Config{
					SystemName:  "frontier",
					Store:       f.store,
					OutputDir:   filepath.Join(dir, "out"),
					Granularity: sacct.Monthly,
					Start:       start,
					End:         start.AddDate(0, 6, 0),
					Workers:     workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if workers > 1 && art.Trace.MaxConcurrency < 2 {
					b.Fatal("no concurrency observed")
				}
			}
		})
	}
}

// --- Streaming data plane: single-pass fan-out vs materialise-then-rescan ---

// BenchmarkEndToEndAnalyze measures the full curate→analyze path over
// fetched period files, the stage the streaming refactor targets. The
// stream-bundle variant is what the workflow runs: one decoder pass per
// file feeds every figure collector through an analyze.Bundle, merged in
// period order. The slices-multipass variant is the pre-refactor shape:
// decode every file into one record slice, sort it globally, then rescan
// it once per figure. Both compute identical figure data (pinned by
// TestWorkflowFiguresMatchDirectBuilders); the contrast is allocations
// and peak footprint, tracked in EXPERIMENTS.md "Streaming data plane".
func BenchmarkEndToEndAnalyze(b *testing.B) {
	f := spread(b)
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	spec := sacct.FetchSpec{
		Granularity: sacct.Monthly,
		Start:       start,
		End:         start.AddDate(0, 6, 0),
	}
	fetcher := &sacct.Fetcher{Store: f.store, CacheDir: b.TempDir(), Workers: 4}
	files, err := fetcher.Fetch(context.Background(), spec)
	if err != nil {
		b.Fatal(err)
	}
	var paths []string
	for _, fl := range files {
		paths = append(paths, fl.Path)
	}
	const bucket = 6 * time.Hour

	// checkStream/checkSlices force every figure result both paths owe.
	checkStream := func(bd *analyze.Bundle) {
		if bd.Records == 0 ||
			len(bd.Volume.Result()) == 0 ||
			len(bd.Scale.Result()) == 0 ||
			len(bd.Waits.Result()) == 0 ||
			len(bd.Users.Result(50)) == 0 ||
			len(bd.Backfill.Result()) == 0 ||
			len(bd.Timeline.Result()) == 0 ||
			len(bd.Classes.Result()) == 0 {
			b.Fatal("empty analysis")
		}
		_ = bd.Reclaim.Result()
	}
	checkSlices := func(recs []slurm.Record) {
		if len(recs) == 0 ||
			len(analyze.JobStepVolume(recs)) == 0 ||
			len(analyze.NodesVsElapsed(recs)) == 0 ||
			len(analyze.WaitTimes(recs)) == 0 ||
			len(analyze.StatesPerUser(recs, 50)) == 0 ||
			len(analyze.RequestedVsActual(recs)) == 0 ||
			len(analyze.Timeline(recs, bucket)) == 0 ||
			len(analyze.PerClass(recs)) == 0 {
			b.Fatal("empty analysis")
		}
		_ = analyze.ReclaimableNodeHours(recs)
	}

	b.Run("stream-bundle", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			merged := analyze.NewBundle(bucket)
			for _, path := range paths {
				part := analyze.NewBundle(bucket)
				var rep curate.Report
				for rec, err := range curate.StreamFile(path, "", curate.DefaultOptions(), &rep) {
					if err != nil {
						b.Fatal(err)
					}
					part.Observe(rec)
				}
				merged.Merge(part)
			}
			checkStream(merged)
		}
	})

	// parallel-bundle runs the PR 5 ingest plane: chunked zero-alloc byte
	// decode on opts.Workers decoders per file, per-chunk collector
	// shards merged in chunk order. Figure data stays byte-identical to
	// stream-bundle (pinned by TestWorkflowParallelIngestMatchesSequential);
	// the contrast is decode cost per row and, on multi-core hosts,
	// wall time.
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("parallel-bundle/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			opts := curate.DefaultOptions()
			opts.Workers = workers
			for i := 0; i < b.N; i++ {
				merged := analyze.NewBundle(bucket)
				for _, path := range paths {
					shards := analyze.NewShardSet(bucket)
					var rep curate.Report
					if _, err := curate.StreamFileParallel(path, "", opts, &rep,
						func(chunk int) func(*slurm.Record) bool {
							sb := shards.Shard(chunk)
							return func(rec *slurm.Record) bool {
								sb.Observe(rec)
								return true
							}
						}); err != nil {
						b.Fatal(err)
					}
					part := analyze.NewBundle(bucket)
					shards.MergeInto(part)
					merged.Merge(part)
				}
				checkStream(merged)
			}
		})
	}

	// legacyLoad is the pre-refactor curate loader: a scanner plus one
	// slurm.DecodeRecord (fresh Record and field split) per row,
	// materialising every period into one slice.
	legacyLoad := func(path string, out []slurm.Record) []slurm.Record {
		fh, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer fh.Close()
		sc := bufio.NewScanner(fh)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		if !sc.Scan() {
			b.Fatal("no header")
		}
		fields := strings.Split(strings.TrimSpace(sc.Text()), slurm.Separator)
		for sc.Scan() {
			line := sc.Text()
			if strings.TrimSpace(line) == "" {
				continue
			}
			rec, err := slurm.DecodeRecord(line, fields)
			if err != nil {
				continue
			}
			out = append(out, *rec)
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
		return out
	}

	b.Run("slices-multipass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var recs []slurm.Record
			for _, path := range paths {
				recs = legacyLoad(path, recs)
			}
			sort.SliceStable(recs, func(i, j int) bool {
				return slurm.CompareJobID(recs[i].ID, recs[j].ID) < 0
			})
			checkSlices(recs)
		}
	})
}

// --- Scheduler core scaling ---

// BenchmarkSchedulerScaling sweeps trace sizes on the Frontier profile and
// measures the simulator core alone (no steps, no store): the number that
// bounds every figure and ablation above. Tracked in BENCH_*.json; the
// hot-path optimisations in internal/sched are accepted against this
// benchmark (see EXPERIMENTS.md "Scheduler hot path").
func BenchmarkSchedulerScaling(b *testing.B) {
	start := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	for _, n := range []int{10_000, 50_000, 200_000} {
		b.Run(fmt.Sprintf("reqs=%d", n), func(b *testing.B) {
			// Constant submission pressure (~93% utilization, multi-hour
			// queues on Frontier) with the window scaled to the trace size:
			// larger traces mean proportionally longer replays over a
			// standing queue, the regime where per-event cost matters.
			// The profile expands chains/arrays to ~2.7 requests per
			// nominal job, hence the 1600/day divisor.
			p := tracegen.FrontierProfile()
			p.JobsPerDay = 600
			p.Users = 400
			days := n / 1600
			reqs, err := tracegen.Generate([]tracegen.Phase{{
				Profile: p, Start: start, End: start.AddDate(0, 0, days),
			}}, 11)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(reqs)), "requests")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim, err := sched.New(sched.DefaultConfig(cluster.Frontier()))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(reqs, sched.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Observability overhead ---

// BenchmarkObsOverhead quantifies the cost of the obs layer in its two
// states. The "off" variants run with no registry/tracer — the nil-no-op
// path every instrumented call site takes by default, which must stay
// within noise of the uninstrumented PR 3 numbers. The "on" variants
// attach a live registry (and, for analyze, bundle instrumentation) to
// measure what a metered production run pays. Tracked in EXPERIMENTS.md
// "Observability overhead".
func BenchmarkObsOverhead(b *testing.B) {
	// Scheduler core: per-event counter increments dominate the delta.
	start := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	p := tracegen.FrontierProfile()
	p.JobsPerDay = 600
	p.Users = 400
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: start, End: start.AddDate(0, 0, 31),
	}}, 11)
	if err != nil {
		b.Fatal(err)
	}
	schedRun := func(b *testing.B, reg *obs.Registry) {
		b.ReportMetric(float64(len(reqs)), "requests")
		for i := 0; i < b.N; i++ {
			cfg := sched.DefaultConfig(cluster.Frontier())
			cfg.Metrics = reg
			sim, err := sched.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(reqs, sched.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sched-metrics-off", func(b *testing.B) { schedRun(b, nil) })
	b.Run("sched-metrics-on", func(b *testing.B) { schedRun(b, obs.NewRegistry()) })

	// Curate+analyze stream: per-row counter increments.
	f := spread(b)
	spec := sacct.FetchSpec{
		Granularity: sacct.Monthly,
		Start:       start.AddDate(0, -1, 0),
		End:         start.AddDate(0, 5, 0),
	}
	fetcher := &sacct.Fetcher{Store: f.store, CacheDir: b.TempDir(), Workers: 4}
	files, err := fetcher.Fetch(context.Background(), spec)
	if err != nil {
		b.Fatal(err)
	}
	const bucket = 6 * time.Hour
	analyzeRun := func(b *testing.B, reg *obs.Registry) {
		for i := 0; i < b.N; i++ {
			merged := analyze.NewBundle(bucket)
			merged.Instrument(reg)
			for _, fl := range files {
				part := analyze.NewBundle(bucket)
				part.Instrument(reg)
				var rep curate.Report
				opts := curate.DefaultOptions()
				opts.Metrics = reg
				for rec, err := range curate.StreamFile(fl.Path, "", opts, &rep) {
					if err != nil {
						b.Fatal(err)
					}
					part.Observe(rec)
				}
				merged.Merge(part)
			}
			if merged.Records == 0 {
				b.Fatal("empty analysis")
			}
		}
	}
	b.Run("analyze-metrics-off", func(b *testing.B) { analyzeRun(b, nil) })
	b.Run("analyze-metrics-on", func(b *testing.B) { analyzeRun(b, obs.NewRegistry()) })
}

// --- Ablations ---

// BenchmarkAblationBackfillPolicy contrasts EASY backfill against a pure
// priority-order FIFO on the same workload: who wins on wait time, and by
// how much — the scheduler-level grounding for the paper's backfill
// analysis.
func BenchmarkAblationBackfillPolicy(b *testing.B) {
	p := tracegen.FrontierProfile()
	p.JobsPerDay, p.Users = 220, 100
	start := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	reqs, err := tracegen.Generate([]tracegen.Phase{{Profile: p, Start: start, End: start.AddDate(0, 0, 10)}}, 3)
	if err != nil {
		b.Fatal(err)
	}
	run := func(backfill bool) sched.RunStats {
		cfg := sched.DefaultConfig(cluster.Frontier())
		cfg.EnableBackfill = backfill
		sim, err := sched.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(reqs, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return res.Stats
	}
	on, off := run(true), run(false)
	report("ablation-backfill", fmt.Sprintf(
		"  EASY backfill: mean wait %s, util %.1f%%, %d backfilled\n"+
			"  FIFO only:     mean wait %s, util %.1f%% — backfill wins by %.1fx on wait",
		on.MeanWait().Round(time.Second), 100*on.Utilization(), on.Backfilled,
		off.MeanWait().Round(time.Second), 100*off.Utilization(),
		float64(off.MeanWait())/float64(on.MeanWait()+1)))
	for _, mode := range []struct {
		name     string
		backfill bool
	}{{"easy-backfill", true}, {"fifo-only", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = run(mode.backfill)
			}
		})
	}
}

// BenchmarkAblationWalltimeAccuracy sweeps the user over-estimation factor
// and measures scheduler outcomes — the quantitative case for the paper's
// "reclaim unused time" recommendation.
func BenchmarkAblationWalltimeAccuracy(b *testing.B) {
	start := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	run := func(over float64) sched.RunStats {
		p := tracegen.FrontierProfile()
		p.JobsPerDay, p.Users = 220, 100
		for i := range p.Classes {
			p.Classes[i].Overestimate = tracegen.Const(over)
		}
		reqs, err := tracegen.Generate([]tracegen.Phase{{Profile: p, Start: start, End: start.AddDate(0, 0, 10)}}, 3)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := sched.New(sched.DefaultConfig(cluster.Frontier()))
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(reqs, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return res.Stats
	}
	text := ""
	for _, over := range []float64{1.0, 2.0, 4.0} {
		s := run(over)
		text += fmt.Sprintf("  overestimate %.0fx: mean wait %s, %d backfilled\n",
			over, s.MeanWait().Round(time.Second), s.Backfilled)
	}
	report("ablation-walltime", text+"  tighter estimates → shorter queues: the time-reclamation case")
	for _, over := range []float64{1.0, 2.0, 4.0} {
		over := over
		b.Run(fmt.Sprintf("over=%.0fx", over), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = run(over)
			}
		})
	}
}

// BenchmarkAblationShardedFetch contrasts the concurrent month-sharded
// Obtain-data stage against a sequential one — the GNU Parallel claim.
func BenchmarkAblationShardedFetch(b *testing.B) {
	f := spread(b)
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	spec := sacct.FetchSpec{
		Granularity: sacct.Monthly,
		Start:       start,
		End:         start.AddDate(0, 6, 0),
	}
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fetcher := &sacct.Fetcher{Store: f.store, CacheDir: b.TempDir(), Workers: workers}
				if _, err := fetcher.Fetch(context.Background(), spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPreemption contrasts urgent-job latency with and
// without an evictable preemptible pool — the NERSC-realtime/TACC-flex
// pattern the paper cites as the policy response to near-real-time work.
func BenchmarkAblationPreemption(b *testing.B) {
	start := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	day := func(h float64) float64 { return h * 3600 }
	run := func(preemptibleQOS string) (urgentWait time.Duration, preemptions int) {
		// A soak pool large enough to saturate the machine, plus a thin
		// stream of small urgent steering jobs.
		p := tracegen.Profile{
			Name: "preemption-ablation", System: cluster.Frontier(),
			Users: 40, UserSkew: 0.8, FailSpread: 1.2, JobsPerDay: 120,
			Classes: []tracegen.Class{
				{
					Name: "soak", Weight: 0.9, QOS: preemptibleQOS,
					Nodes:        tracegen.Clamped{D: tracegen.LogNormalMedian(1500, 1.6), Lo: 512, Hi: 5000},
					Runtime:      tracegen.Clamped{D: tracegen.LogNormalMedian(day(10), 1.5), Lo: day(2), Hi: day(24)},
					Overestimate: tracegen.Clamped{D: tracegen.Const(1.2), Lo: 1, Hi: 2},
					Steps:        tracegen.Const(2),
				},
				{
					Name: "steering", Weight: 0.1, QOS: "urgent",
					Nodes:        tracegen.Clamped{D: tracegen.LogNormalMedian(16, 1.6), Lo: 1, Hi: 64},
					Runtime:      tracegen.Clamped{D: tracegen.LogNormalMedian(day(0.2), 1.5), Lo: 60, Hi: day(1)},
					Overestimate: tracegen.Clamped{D: tracegen.Const(1.5), Lo: 1, Hi: 3},
					Steps:        tracegen.Const(2),
				},
			},
		}
		reqs, err := tracegen.Generate([]tracegen.Phase{{
			Profile: p, Start: start, End: start.AddDate(0, 0, 7),
		}}, 3)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := sched.New(sched.DefaultConfig(cluster.Frontier()))
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(reqs, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		var total time.Duration
		n := 0
		for i := range res.Jobs {
			j := &res.Jobs[i]
			if j.QOS != "urgent" || j.Start.IsZero() {
				continue
			}
			if w, ok := j.WaitTime(); ok {
				total += w
				n++
			}
		}
		if n == 0 {
			return 0, res.Stats.Preemptions
		}
		return total / time.Duration(n), res.Stats.Preemptions
	}
	withPool, evictions := run("preemptible")
	withoutPool, _ := run("normal")
	report("ablation-preemption", fmt.Sprintf(
		"  urgent mean wait with evictable pool: %s (%d evictions)\n"+
			"  urgent mean wait without:             %s — preemption protects near-real-time latency",
		withPool.Round(time.Second), evictions, withoutPool.Round(time.Second)))
	for _, mode := range []struct {
		name string
		qos  string
	}{{"evictable-pool", "preemptible"}, {"no-preemption", "normal"}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = run(mode.qos)
			}
		})
	}
}

// BenchmarkAblationNodeSharing contrasts small-job turnaround with and
// without node sharing — the Andes-style lever for high-turnover,
// sub-node interactive work.
func BenchmarkAblationNodeSharing(b *testing.B) {
	start := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	day := func(h float64) float64 { return h * 3600 }
	// A small analysis cluster flooded with quarter-node jobs: exclusive
	// placement needs ~110% of the machine, shared placement ~25%.
	sys := &cluster.System{
		Name: "analysis", Nodes: 64, CoresPerNode: 32, MemPerNode: 256 << 30,
		Partitions: []cluster.Partition{
			{Name: "batch", Nodes: 64, MaxWall: 24 * time.Hour, Default: true},
		},
		QOSLevels: []cluster.QOS{{Name: "normal"}},
	}
	if err := sys.Validate(); err != nil {
		b.Fatal(err)
	}
	run := func(sharing bool) sched.RunStats {
		p := tracegen.Profile{
			Name: "sharing-ablation", System: sys,
			Users: 60, UserSkew: 0.8, FailSpread: 1.2, JobsPerDay: 430,
			Classes: []tracegen.Class{{
				Name: "interactive", Weight: 1, QOS: "normal",
				Nodes:        tracegen.Const(1),
				SubNodeCores: tracegen.Clamped{D: tracegen.LogNormalMedian(7, 1.5), Lo: 1, Hi: 16},
				Runtime:      tracegen.Clamped{D: tracegen.LogNormalMedian(day(4), 1.5), Lo: 1800, Hi: day(12)},
				Overestimate: tracegen.Clamped{D: tracegen.Const(1.5), Lo: 1, Hi: 3},
				Steps:        tracegen.Const(2),
			}},
		}
		reqs, err := tracegen.Generate([]tracegen.Phase{{
			Profile: p, Start: start, End: start.AddDate(0, 0, 5),
		}}, 3)
		if err != nil {
			b.Fatal(err)
		}
		cfg := sched.DefaultConfig(sys)
		cfg.EnableNodeSharing = sharing
		sim, err := sched.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(reqs, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return res.Stats
	}
	on, off := run(true), run(false)
	report("ablation-node-sharing", fmt.Sprintf(
		"  shared nodes:    mean wait %s, util %.1f%%\n"+
			"  exclusive nodes: mean wait %s, util %.1f%% — sharing absorbs the sub-node flood",
		on.MeanWait().Round(time.Second), 100*on.Utilization(),
		off.MeanWait().Round(time.Second), 100*off.Utilization()))
	for _, mode := range []struct {
		name    string
		sharing bool
	}{{"shared", true}, {"exclusive", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = run(mode.sharing)
			}
		})
	}
}

// BenchmarkAblationDataflowVsSerial measures the engine's concurrency win
// on a plot-stage-shaped graph of equal-cost tasks.
func BenchmarkAblationDataflowVsSerial(b *testing.B) {
	work := func(ctx context.Context) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	}
	build := func() *dataflow.Graph {
		g := dataflow.NewGraph()
		g.Add(dataflow.Task{Name: "curate", Writes: []string{"csv"}, Run: work})
		for i := 0; i < 6; i++ {
			g.Add(dataflow.Task{Name: fmt.Sprintf("plot-%d", i), Reads: []string{"csv"},
				Writes: []string{fmt.Sprintf("p%d", i)}, Run: work})
		}
		return g
	}
	for _, workers := range []int{1, 6} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&dataflow.Executor{Workers: workers}).Run(context.Background(), build()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
