module slurmsight

go 1.23
