module slurmsight

go 1.22
