// Command queryd is the always-on query service: it opens an accounting
// trace (binary columnar or pipe-text), keeps the store live for
// incremental appends, and serves concurrent window queries and figure
// specs over HTTP.
//
// Example:
//
//	queryd -trace traces/frontier.colstore -addr :8070 -system frontier
//
// Endpoints:
//
//	GET  /query?fields=JobID,User&start=2024-01&end=2024-02&limit=100
//	POST /ingest            (pipe-text or columnar batch in the body)
//	GET  /figures/fig4-wait-times.json
//	GET  /healthz  /metrics  /debug/vars  /debug/pprof/  /debug/requests
//
// Appends arrive two ways: POST /ingest batches, and -watch, which
// tails a growing period file the way an accounting host writes one.
// Every successful append bumps the store generation (reported in the
// X-Store-Generation response header), so cached query responses are
// invalidated exactly when the data changes and never otherwise.
// SIGINT/SIGTERM drain in-flight requests before exit (-grace bounds
// the drain).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"time"

	"slurmsight/internal/obs"
	"slurmsight/internal/sacct"
	"slurmsight/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("queryd: ")

	var (
		trace  = flag.String("trace", "", "accounting trace to serve (empty starts an empty store)")
		format = flag.String("store-format", "auto", "trace format: auto, text, or binary")
		addr   = flag.String("addr", ":8070", "listen address")
		system = flag.String("system", "cluster", "system name for figure titles")

		rate     = flag.Float64("rate", 0, "per-client requests per second (0 disables throttling)")
		burst    = flag.Float64("burst", 0, "throttle burst size (default 2x rate)")
		cacheN   = flag.Int("cache", 1024, "response cache entries")
		maxRows  = flag.Int("max-rows", 0, "hard cap on rows per /query response (0 is unlimited)")
		topUsers = flag.Int("top-users", 15, "users in the per-user states figure")
		nodes    = flag.Int("nodes", 0, "system node count for the load-timeline capacity line")

		warm          = flag.Bool("warm", false, "materialise every binary shard at startup")
		decodeWorkers = flag.Int("decode-workers", 0, "concurrent shard decodes for warm and scans (0 = GOMAXPROCS)")
		watch         = flag.String("watch", "", "pipe-text period file to tail for appends")
		watchInterval = flag.Duration("watch-interval", 2*time.Second, "tail poll period")
		grace         = flag.Duration("grace", 10*time.Second, "shutdown drain budget for in-flight requests")

		slow       = flag.Duration("slow", 250*time.Millisecond, "log requests slower than this (0 disables the slow log)")
		flightRing = flag.Int("flight-ring", 256, "flight recorder: recent traces retained (negative disables recording)")
		flightTail = flag.Int("flight-tail", 8, "flight recorder: slowest traces kept per route")
	)
	flag.Parse()

	st, err := openStore(*trace, *format)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	st.SetDecodeWorkers(*decodeWorkers)
	log.Printf("shard decode workers: %d", st.DecodeWorkers())
	if *warm {
		t0 := time.Now()
		if err := st.Warm(); err != nil {
			log.Fatal(err)
		}
		log.Printf("warmed %d rows in %s", st.Len(), time.Since(t0).Round(time.Millisecond))
	}

	metrics := obs.NewRegistry()
	metrics.PublishExpvar("queryd")
	metrics.Gauge("store_decode_workers").Set(int64(st.DecodeWorkers()))
	slowThreshold := *slow
	if slowThreshold == 0 {
		slowThreshold = -1 // flag 0 means off; Config 0 means default
	}
	srv, err := serve.New(serve.Config{
		Store:         st,
		System:        *system,
		Metrics:       metrics,
		RatePerSec:    *rate,
		Burst:         *burst,
		CacheEntries:  *cacheN,
		MaxRows:       *maxRows,
		TopUsers:      *topUsers,
		Nodes:         *nodes,
		FlightRing:    *flightRing,
		FlightTail:    *flightTail,
		SlowThreshold: slowThreshold,
		Log:           slog.New(slog.NewJSONHandler(os.Stderr, nil)),
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/debug/vars", expvar.Handler())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *watch != "" {
		w := &serve.Watcher{
			Path:     *watch,
			Store:    st,
			Interval: *watchInterval,
			Metrics:  metrics,
			Logf:     log.Printf,
		}
		go func() {
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("watcher stopped: %v", err)
			}
		}()
		log.Printf("tailing %s every %s", *watch, *watchInterval)
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("serving %d rows across %d months on %s (generation %d)",
		st.Len(), len(st.Months()), *addr, st.Generation())
	if err := serve.ListenAndDrain(ctx, httpServer, *grace, log.Printf); err != nil {
		log.Fatal(err)
	}
}

// openStore loads the trace in the requested format; an empty path
// starts an append-only store that fills entirely over /ingest.
func openStore(path, format string) (*sacct.Store, error) {
	if path == "" {
		return sacct.NewStore(), nil
	}
	switch format {
	case "auto":
		st, _, err := sacct.OpenFile(path)
		return st, err
	case "text":
		st, _, err := sacct.LoadFile(path)
		return st, err
	case "binary":
		return sacct.OpenBinary(path)
	default:
		return nil, fmt.Errorf("unknown -store-format %q (want auto, text, or binary)", format)
	}
}
