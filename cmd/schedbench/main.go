// Command schedbench races N scheduling-policy configurations over one
// synthetic workload trace and writes a deterministic comparative
// scorecard (schedbench/v1 JSON): per-policy and per-job-class queue
// waits, bounded slowdown, backfill share, and utilization. With
// -evolve-rounds it runs the LLM policy-evolution loop instead: the
// scorecard goes to the model's /v1/evolve endpoint, proposed parameter
// deltas are validated and applied to the target policy, and the
// tournament re-runs — the full trajectory lands in the output JSON.
//
// Examples:
//
//	schedbench -system frontier -days 7 -jobs-per-day 150 -seed 42 \
//	  -policies default,aging,fifo,conservative -out BENCH_sched.json
//
//	llmserve -addr :8080 &
//	schedbench -system frontier -days 7 -seed 42 \
//	  -evolve-rounds 3 -llm http://localhost:8080 \
//	  -objective mean_wait_sec -out evolve.json
//
// Everything except the elapsed_ms fields is deterministic for a given
// (trace, policies); CI diffs two runs to prove it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/core"
	"slurmsight/internal/llm"
	"slurmsight/internal/obs"
	"slurmsight/internal/sched/tournament"
	"slurmsight/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("schedbench: ")

	var (
		system     = flag.String("system", "frontier", "system profile: frontier or andes")
		start      = flag.String("start", "2024-03-01", "trace window start (YYYY-MM-DD)")
		days       = flag.Int("days", 7, "trace window length in days")
		jobsPerDay = flag.Float64("jobs-per-day", 0, "override the profile submission rate")
		users      = flag.Int("users", 0, "override the profile user population")
		seed       = flag.Int64("seed", 1, "workload and simulator RNG seed")
		policies   = flag.String("policies", "", "comma-separated policy names from the standard field (default: all)")
		specsPath  = flag.String("specs", "", "JSON file with custom tournament specs (overrides -policies)")
		out        = flag.String("out", "-", "output path for the scorecard JSON (- = stdout)")
		metricsOut = flag.String("metrics-out", "", "optional path for the policy-labelled metrics exposition")

		evolveRounds = flag.Int("evolve-rounds", 0, "run the LLM evolution loop for this many rounds (0 = plain tournament)")
		llmURL       = flag.String("llm", "", "LLM endpoint base URL (required with -evolve-rounds)")
		llmKey       = flag.String("llm-key", "", "LLM API bearer token")
		objective    = flag.String("objective", "mean_slowdown", "evolution objective: mean_slowdown, mean_wait_sec, or utilization")
		target       = flag.String("target", "evolved", "policy name the evolution loop mutates")
	)
	flag.Parse()

	startT, err := time.Parse("2006-01-02", *start)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	if *days < 1 {
		log.Fatalf("-days must be ≥1")
	}

	var sys *cluster.System
	var profile tracegen.Profile
	switch *system {
	case "frontier":
		sys = cluster.Frontier()
		profile = tracegen.FrontierProfile()
	case "andes":
		sys = cluster.Andes()
		profile = tracegen.AndesProfile()
	default:
		log.Fatalf("unknown system %q", *system)
	}
	if *jobsPerDay > 0 {
		profile.JobsPerDay = *jobsPerDay
	}
	if *users > 0 {
		profile.Users = *users
	}
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: profile, Start: startT, End: startT.AddDate(0, 0, *days),
	}}, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d submissions over %d days on %s\n",
		len(reqs), *days, sys.Name)

	specs, err := resolveSpecs(*specsPath, *policies, *evolveRounds > 0, *target)
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.NewRegistry()

	var payload []byte
	if *evolveRounds > 0 {
		if *llmURL == "" {
			log.Fatal("-evolve-rounds needs -llm")
		}
		res, err := core.Evolve(context.Background(), core.EvolveConfig{
			Client:    llm.NewClient(*llmURL, *llmKey),
			Rounds:    *evolveRounds,
			Objective: *objective,
			Target:    *target,
			Specs:     specs,
			Reqs:      reqs,
			System:    sys,
			Seed:      *seed,
			Metrics:   reg,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range res.Rounds {
			fmt.Fprintf(os.Stderr, "round %d: %d proposed, %d applied, %d rejected\n",
				r.Round, len(r.Proposed), len(r.Applied), len(r.Rejected))
		}
		fmt.Fprintf(os.Stderr, "final target spec: %s\n", specString(res.FinalSpec))
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		payload = append(b, '\n')
	} else {
		sc, err := tournament.Run(tournament.Input{
			Specs: specs, Reqs: reqs, System: sys, Seed: *seed, Metrics: reg,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range sc.Policies {
			fmt.Fprintf(os.Stderr,
				"%-14s wait %8.0fs  slowdown %7.2f  util %5.1f%%  backfill %5.1f%%\n",
				p.Name, p.MeanWaitSec, p.MeanSlowdown,
				100*p.Utilization, 100*p.BackfillFrac)
		}
		payload, err = sc.EncodeJSON()
		if err != nil {
			log.Fatal(err)
		}
	}

	if err := writeOut(*out, payload); err != nil {
		log.Fatal(err)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		reg.WriteText(f)
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

// resolveSpecs builds the tournament field from a specs file or a name
// filter over the standard field. In evolve mode the target spec is
// ensured to exist (appended as a default-composition clone when absent).
func resolveSpecs(path, names string, evolve bool, target string) ([]tournament.Spec, error) {
	var specs []tournament.Spec
	switch {
	case path != "":
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(b, &specs); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	case names != "":
		std := map[string]tournament.Spec{}
		for _, sp := range tournament.DefaultSpecs() {
			std[sp.Name] = sp
		}
		for _, name := range strings.Split(names, ",") {
			name = strings.TrimSpace(name)
			sp, ok := std[name]
			if !ok {
				return nil, fmt.Errorf("unknown policy %q (standard field: %s)",
					name, strings.Join(standardNames(), ", "))
			}
			specs = append(specs, sp)
		}
	default:
		specs = tournament.DefaultSpecs()
	}
	if evolve {
		found := false
		for _, sp := range specs {
			if sp.Name == target {
				found = true
			}
		}
		if !found {
			specs = append(specs, tournament.Spec{Name: target})
		}
	}
	return specs, nil
}

func standardNames() []string {
	var names []string
	for _, sp := range tournament.DefaultSpecs() {
		names = append(names, sp.Name)
	}
	return names
}

func specString(sp tournament.Spec) string {
	b, _ := json.Marshal(sp)
	return string(b)
}

func writeOut(path string, b []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
