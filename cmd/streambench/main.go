// Command streambench measures the streaming data plane's footprint in
// isolation: peak RSS and wall time of one full curate→analyze pass over
// a trace file, contrasted against the pre-refactor materialise-and-
// rescan path. Generation and measurement run as separate invocations so
// /proc/self/status VmHWM reflects only the analysis pass:
//
//	streambench -gen -rows 1000000 -path trace-1m.txt
//	streambench -run -mode stream -path trace-1m.txt
//	streambench -run -mode slices -path trace-1m.txt
//	streambench -run -mode parallel -workers 4 -path trace-1m.txt -json BENCH_ingest.json
//	streambench -convert -path trace-1m.txt
//	streambench -run -mode textload -path trace-1m.txt -json BENCH_ingest.json
//	streambench -run -mode colstore -path trace-1m.txt.colstore -json BENCH_ingest.json
//
// The -gen phase simulates a seed workload once and tiles its encoded
// rows to the requested count, so multi-million-row inputs cost seconds
// rather than a multi-million-job scheduler replay. Mode parallel runs
// the chunked zero-alloc byte ingest plane at -workers chunk decoders;
// -json appends the run's numbers (rows, workers, ns/op, allocs/op,
// peak RSS) to a machine-readable array so the perf trajectory is
// diffable across PRs. EXPERIMENTS.md "Parallel chunked ingest" records
// the sweep.
//
// -convert rewrites a text trace as a binary columnar shard file
// (<path>.colstore). The textload/colstore run pair then measures the
// reload tax head-to-head: reload_ms is time-to-usable-Store (full text
// parse vs O(open + footer)), proj_ms is a two-field projected query
// (colstore decodes only those columns; columns_read/bytes_read/
// bytes_mapped snapshot the projection before the full scan), and
// scan_ms is a full materialising scan.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"slurmsight/internal/analyze"
	"slurmsight/internal/cluster"
	"slurmsight/internal/curate"
	"slurmsight/internal/sacct"
	"slurmsight/internal/sched"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

const bucket = 6 * time.Hour

func main() {
	log.SetFlags(0)
	log.SetPrefix("streambench: ")

	var (
		gen     = flag.Bool("gen", false, "generate a trace file and exit")
		run     = flag.Bool("run", false, "run one analysis pass over -path")
		convert = flag.Bool("convert", false, "rewrite the text trace at -path as <path>.colstore and exit")
		rows    = flag.Int("rows", 1_000_000, "data rows to generate with -gen")
		mode    = flag.String("mode", "stream", "analysis path with -run: stream, slices, parallel, textload, or colstore")
		path    = flag.String("path", "trace.txt", "trace file")
		out     = flag.String("out", "", "output path with -convert (default <path>.colstore)")
		seed    = flag.Int64("seed", 41, "workload RNG seed for -gen")
		workers = flag.Int("workers", 1, "chunk decoders with -mode parallel")
		jsonOut = flag.String("json", "", "append the run's result to this JSON array file")
	)
	flag.Parse()

	switch {
	case *gen:
		if err := generate(*path, *rows, *seed); err != nil {
			log.Fatal(err)
		}
	case *convert:
		if err := convertTrace(*path, *out); err != nil {
			log.Fatal(err)
		}
	case *run:
		if err := measure(*path, *mode, *workers, *jsonOut); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("pick one of -gen, -convert, or -run")
	}
}

// convertTrace loads a text trace and rewrites it in the binary columnar
// shard format, reporting the size delta. Conversion is a one-time cost;
// every later reload pays only the footer parse.
func convertTrace(path, out string) error {
	if out == "" {
		out = path + ".colstore"
	}
	t0 := time.Now()
	st, malformed, err := sacct.LoadFile(path)
	if err != nil {
		return err
	}
	if malformed > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d malformed rows dropped\n", malformed)
	}
	loadWall := time.Since(t0)
	t1 := time.Now()
	if err := st.DumpBinaryFile(out); err != nil {
		return err
	}
	textSt, _ := os.Stat(path)
	binSt, _ := os.Stat(out)
	fmt.Printf("converted %s -> %s: %d records, %.1f MB -> %.1f MB (load %s, encode %s)\n",
		path, out, st.Len(), float64(textSt.Size())/(1<<20), float64(binSt.Size())/(1<<20),
		loadWall.Round(time.Millisecond), time.Since(t1).Round(time.Millisecond))
	return nil
}

// generate simulates a seed workload, then tiles its encoded rows until
// the file holds n data rows. Tiled copies keep their field values; only
// row identity repeats, which the figure collectors do not key on.
func generate(path string, n int, seed int64) error {
	p := tracegen.FrontierProfile()
	p.JobsPerDay, p.Users = 300, 150
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: start, End: start.AddDate(0, 0, 30),
	}}, seed)
	if err != nil {
		return err
	}
	sim, err := sched.New(sched.DefaultConfig(cluster.Frontier()))
	if err != nil {
		return err
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: true})
	if err != nil {
		return err
	}
	recs := append(append([]slurm.Record{}, res.Jobs...), res.Steps...)
	sort.SliceStable(recs, func(i, j int) bool {
		return slurm.CompareJobID(recs[i].ID, recs[j].ID) < 0
	})

	fields := slurm.SelectedNames()
	lines := make([]string, len(recs))
	for i := range recs {
		if lines[i], err = slurm.EncodeRecord(&recs[i], fields); err != nil {
			return err
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	fmt.Fprintln(w, slurm.Header(fields))
	for i := 0; i < n; i++ {
		fmt.Fprintln(w, lines[i%len(lines)])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, _ := os.Stat(path)
	fmt.Printf("wrote %s: %d rows (%d distinct), %.1f MB\n",
		path, n, len(lines), float64(st.Size())/(1<<20))
	return nil
}

// benchResult is one measurement in the BENCH_ingest.json array: the
// stable schema the CI artifact and EXPERIMENTS.md sweeps share.
type benchResult struct {
	Mode         string  `json:"mode"`
	Rows         int64   `json:"rows"`
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`

	// Store-reload modes (textload, colstore) split the wall into the
	// reload (time-to-usable-Store), a two-field projected query, and a
	// full materialising scan. The colstore byte counters snapshot the
	// projection point, proving it touched only the selected columns.
	ReloadMS    float64 `json:"reload_ms,omitempty"`
	ProjMS      float64 `json:"proj_ms,omitempty"`
	ScanMS      float64 `json:"scan_ms,omitempty"`
	ColumnsRead int64   `json:"columns_read,omitempty"`
	BytesRead   int64   `json:"bytes_read,omitempty"`
	BytesMapped int64   `json:"bytes_mapped,omitempty"`
}

// measure runs one analysis pass and reports wall time, allocation
// totals, and the process high-water RSS.
func measure(path, mode string, workers int, jsonOut string) error {
	t0 := time.Now()
	var records int64
	var reload benchResult // reload/proj/scan extras for the store modes
	switch mode {
	case "textload", "colstore":
		r, err := measureReload(path, mode)
		if err != nil {
			return err
		}
		reload, records = r, r.Rows
	case "stream":
		b := analyze.NewBundle(bucket)
		var rep curate.Report
		for rec, err := range curate.StreamFile(path, "", curate.DefaultOptions(), &rep) {
			if err != nil {
				return err
			}
			b.Observe(rec)
		}
		touchBundle(b)
		records = b.Records
	case "parallel":
		b := analyze.NewBundle(bucket)
		shards := analyze.NewShardSet(bucket)
		opts := curate.DefaultOptions()
		opts.Workers = workers
		var rep curate.Report
		if _, err := curate.StreamFileParallel(path, "", opts, &rep,
			func(chunk int) func(*slurm.Record) bool {
				sb := shards.Shard(chunk)
				return func(rec *slurm.Record) bool {
					sb.Observe(rec)
					return true
				}
			}); err != nil {
			return err
		}
		shards.MergeInto(b)
		touchBundle(b)
		records = b.Records
	case "slices":
		recs, _, err := curate.LoadRecordsFile(path)
		if err != nil {
			return err
		}
		sort.SliceStable(recs, func(i, j int) bool {
			return slurm.CompareJobID(recs[i].ID, recs[j].ID) < 0
		})
		touchSlices(recs)
		records = int64(len(recs))
	default:
		return fmt.Errorf("unknown -mode %q", mode)
	}
	wall := time.Since(t0)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	hwm, err := vmHWM()
	if err != nil {
		return err
	}
	fmt.Printf("mode=%s workers=%d records=%d wall=%s peak_rss=%.1fMB total_alloc=%.1fMB mallocs=%d\n",
		mode, workers, records, wall.Round(time.Millisecond),
		float64(hwm)/(1<<20), float64(ms.TotalAlloc)/(1<<20), ms.Mallocs)
	if jsonOut == "" {
		return nil
	}
	res := reload
	res.Mode = mode
	res.Rows = records
	res.Workers = workers
	res.WallMS = float64(wall) / float64(time.Millisecond)
	res.PeakRSSBytes = hwm
	if records > 0 {
		res.NsPerOp = float64(wall.Nanoseconds()) / float64(records)
		res.AllocsPerOp = float64(ms.Mallocs) / float64(records)
	}
	return appendResult(jsonOut, res)
}

// measureReload times the store-reload path: time-to-usable-Store, a
// two-field projected query, and a full materialising scan. For colstore
// it also snapshots the read counters right after the projection, before
// the full scan inflates them — bytes_read at that point is the proof
// that the projection touched only the User/Elapsed/JobID regions.
func measureReload(path, mode string) (benchResult, error) {
	var r benchResult
	t0 := time.Now()
	var st *sacct.Store
	var err error
	switch mode {
	case "textload":
		st, _, err = sacct.LoadFile(path)
	case "colstore":
		st, err = sacct.OpenBinary(path)
	}
	if err != nil {
		return r, err
	}
	defer st.Close()
	r.ReloadMS = float64(time.Since(t0)) / float64(time.Millisecond)

	t1 := time.Now()
	if _, err := st.Write(io.Discard, sacct.Query{Fields: []string{"User", "Elapsed"}}); err != nil {
		return r, err
	}
	r.ProjMS = float64(time.Since(t1)) / float64(time.Millisecond)
	if stats, ok := st.ColstoreStats(); ok {
		r.ColumnsRead = stats.ColumnsRead
		r.BytesRead = stats.BytesRead
		r.BytesMapped = stats.BytesMapped
	}

	t2 := time.Now()
	for _, err := range st.Scan(sacct.Query{IncludeSteps: true}) {
		if err != nil {
			return r, err
		}
		r.Rows++
	}
	r.ScanMS = float64(time.Since(t2)) / float64(time.Millisecond)
	fmt.Printf("mode=%s reload=%.1fms proj=%.1fms scan=%.1fms columns_read=%d bytes_read=%d bytes_mapped=%d\n",
		mode, r.ReloadMS, r.ProjMS, r.ScanMS, r.ColumnsRead, r.BytesRead, r.BytesMapped)
	return r, nil
}

// appendResult folds one measurement into the JSON array at path,
// creating the file on first use. Each invocation is a fresh process,
// so VmHWM in every entry reflects only its own pass.
func appendResult(path string, r benchResult) error {
	var list []benchResult
	if data, err := os.ReadFile(path); err == nil {
		// A malformed file starts a fresh array rather than failing the run.
		_ = json.Unmarshal(data, &list)
	}
	list = append(list, r)
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// touchBundle forces every figure result the workflow consumes.
func touchBundle(b *analyze.Bundle) {
	_ = b.Volume.Result()
	_ = b.Scale.Result()
	_ = b.Waits.Result()
	_ = b.Users.Result(50)
	_ = b.Backfill.Result()
	_ = b.Reclaim.Result()
	_ = b.Timeline.Result()
	_ = b.Classes.Result()
}

// touchSlices runs the multi-pass builders the old workflow consumed.
func touchSlices(recs []slurm.Record) {
	_ = analyze.JobStepVolume(recs)
	_ = analyze.NodesVsElapsed(recs)
	_ = analyze.WaitTimes(recs)
	_ = analyze.StatesPerUser(recs, 50)
	_ = analyze.RequestedVsActual(recs)
	_ = analyze.ReclaimableNodeHours(recs)
	_ = analyze.Timeline(recs, bucket)
	_ = analyze.PerClass(recs)
}

// vmHWM reads the process peak resident set from /proc/self/status.
func vmHWM() (int64, error) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			if err != nil {
				return 0, err
			}
			return kb << 10, nil
		}
	}
	return 0, fmt.Errorf("VmHWM not found in /proc/self/status")
}
