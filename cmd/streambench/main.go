// Command streambench measures the streaming data plane's footprint in
// isolation: peak RSS and wall time of one full curate→analyze pass over
// a trace file, contrasted against the pre-refactor materialise-and-
// rescan path. Generation and measurement run as separate invocations so
// /proc/self/status VmHWM reflects only the analysis pass:
//
//	streambench -gen -rows 1000000 -path trace-1m.txt
//	streambench -run -mode stream -path trace-1m.txt
//	streambench -run -mode slices -path trace-1m.txt
//	streambench -run -mode parallel -workers 4 -path trace-1m.txt -json BENCH_ingest.json
//	streambench -convert -path trace-1m.txt
//	streambench -run -mode textload -path trace-1m.txt -json BENCH_ingest.json
//	streambench -run -mode colstore -path trace-1m.txt.colstore -json BENCH_ingest.json
//
// The -gen phase simulates a seed workload once and tiles its encoded
// rows to the requested count, so multi-million-row inputs cost seconds
// rather than a multi-million-job scheduler replay. Mode parallel runs
// the chunked zero-alloc byte ingest plane at -workers chunk decoders;
// -json appends the run's numbers (rows, workers, ns/op, allocs/op,
// peak RSS) to a machine-readable array so the perf trajectory is
// diffable across PRs. EXPERIMENTS.md "Parallel chunked ingest" records
// the sweep.
//
// -convert rewrites a text trace as a binary columnar shard file
// (<path>.colstore). The textload/colstore run pair then measures the
// reload tax head-to-head: reload_ms is time-to-usable-Store (full text
// parse vs O(open + footer)), proj_ms is a two-field projected query
// (colstore decodes only those columns; columns_read/bytes_read/
// bytes_mapped snapshot the projection before the full scan), and
// scan_ms is a full materialising scan.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"slurmsight/internal/analyze"
	"slurmsight/internal/cluster"
	"slurmsight/internal/curate"
	"slurmsight/internal/sacct"
	"slurmsight/internal/sched"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

const bucket = 6 * time.Hour

func main() {
	log.SetFlags(0)
	log.SetPrefix("streambench: ")

	var (
		gen       = flag.Bool("gen", false, "generate a trace file and exit")
		run       = flag.Bool("run", false, "run one analysis pass over -path")
		convert   = flag.Bool("convert", false, "rewrite the text trace at -path as <path>.colstore and exit")
		sweep     = flag.Bool("sweep", false, "run the rows × workers × mode matrix and append a sweep/v1 block to -json")
		rows      = flag.Int("rows", 1_000_000, "data rows to generate with -gen or -sweep")
		genMonths = flag.Int("gen-months", 1, "calendar months the generated workload spans (one colstore shard each)")
		mode      = flag.String("mode", "stream", "analysis path with -run: stream, slices, parallel, textload, or colstore")
		path      = flag.String("path", "trace.txt", "trace file (with -sweep, the base name derived files hang off)")
		out       = flag.String("out", "", "output path with -convert (default <path>.colstore)")
		seed      = flag.Int64("seed", 41, "workload RNG seed for -gen")
		workers   = flag.Int("workers", 1, "chunk/shard decoders with -mode parallel or colstore (0 = GOMAXPROCS)")
		jsonOut   = flag.String("json", "", "append the run's result to this JSON array file")

		sweepWorkers = flag.String("sweep-workers", "1,2,4,8", "comma-separated worker counts for -sweep")
		sweepModes   = flag.String("sweep-modes", "parallel,colstore", "comma-separated modes for -sweep")
		sweepReps    = flag.Int("sweep-reps", 1, "repetitions per sweep cell (best wall time is kept)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measured pass to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile after the measured pass to this file")
	)
	flag.Parse()

	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
		log.Printf("workers: %d (auto = GOMAXPROCS)", *workers)
	}

	if err := dispatch(*gen, *run, *convert, *sweep, dispatchArgs{
		path: *path, out: *out, rows: *rows, months: *genMonths, seed: *seed,
		mode: *mode, workers: *workers, jsonOut: *jsonOut,
		sweepWorkers: *sweepWorkers, sweepModes: *sweepModes, sweepReps: *sweepReps,
		cpuprofile: *cpuprofile, memprofile: *memprofile,
	}); err != nil {
		log.Fatal(err)
	}
}

type dispatchArgs struct {
	path, out                string
	rows, months             int
	seed                     int64
	mode                     string
	workers                  int
	jsonOut                  string
	sweepWorkers, sweepModes string
	sweepReps                int
	cpuprofile, memprofile   string
}

// dispatch runs the selected phase, bracketing it with the optional
// pprof captures (a deferred stop, so profiles survive error paths —
// log.Fatal in main would skip them).
func dispatch(gen, run, convert, sweep bool, a dispatchArgs) error {
	if a.cpuprofile != "" {
		f, err := os.Create(a.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if a.memprofile != "" {
		defer func() {
			f, err := os.Create(a.memprofile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}
	switch {
	case gen:
		return generate(a.path, a.rows, a.months, a.seed)
	case convert:
		return convertTrace(a.path, a.out)
	case sweep:
		return runSweep(a)
	case run:
		return measure(a.path, a.mode, a.workers, a.jsonOut)
	default:
		return fmt.Errorf("pick one of -gen, -convert, -sweep, or -run")
	}
}

// convertTrace loads a text trace and rewrites it in the binary columnar
// shard format, reporting the size delta. Conversion is a one-time cost;
// every later reload pays only the footer parse.
func convertTrace(path, out string) error {
	if out == "" {
		out = path + ".colstore"
	}
	t0 := time.Now()
	st, malformed, err := sacct.LoadFile(path)
	if err != nil {
		return err
	}
	if malformed > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d malformed rows dropped\n", malformed)
	}
	loadWall := time.Since(t0)
	t1 := time.Now()
	if err := st.DumpBinaryFile(out); err != nil {
		return err
	}
	textSt, _ := os.Stat(path)
	binSt, _ := os.Stat(out)
	fmt.Printf("converted %s -> %s: %d records, %.1f MB -> %.1f MB (load %s, encode %s)\n",
		path, out, st.Len(), float64(textSt.Size())/(1<<20), float64(binSt.Size())/(1<<20),
		loadWall.Round(time.Millisecond), time.Since(t1).Round(time.Millisecond))
	return nil
}

// generate simulates a seed workload spanning `months` calendar months
// (each month becomes one colstore shard, the unit of decode
// parallelism), then tiles its encoded rows until the file holds n data
// rows. Tiled copies keep their field values; only row identity
// repeats, which the figure collectors do not key on.
func generate(path string, n, months int, seed int64) error {
	if months < 1 {
		months = 1
	}
	p := tracegen.FrontierProfile()
	p.JobsPerDay, p.Users = 300, 150
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: start, End: start.AddDate(0, months, 0).Add(-24 * time.Hour),
	}}, seed)
	if err != nil {
		return err
	}
	sim, err := sched.New(sched.DefaultConfig(cluster.Frontier()))
	if err != nil {
		return err
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: true})
	if err != nil {
		return err
	}
	recs := append(append([]slurm.Record{}, res.Jobs...), res.Steps...)
	sort.SliceStable(recs, func(i, j int) bool {
		return slurm.CompareJobID(recs[i].ID, recs[j].ID) < 0
	})

	fields := slurm.SelectedNames()
	lines := make([]string, len(recs))
	for i := range recs {
		if lines[i], err = slurm.EncodeRecord(&recs[i], fields); err != nil {
			return err
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	fmt.Fprintln(w, slurm.Header(fields))
	for i := 0; i < n; i++ {
		fmt.Fprintln(w, lines[i%len(lines)])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, _ := os.Stat(path)
	fmt.Printf("wrote %s: %d rows (%d distinct), %.1f MB\n",
		path, n, len(lines), float64(st.Size())/(1<<20))
	return nil
}

// phaseSplit breaks one pass's wall time into the parts that scale
// with workers (decode), the reduction (merge), and the serial tail
// (finalize) — the raw material for the Amdahl fit in the sweep block.
// For the store-reload modes decode is the full materialising scan and
// finalize the projected query; reload keeps its own field.
type phaseSplit struct {
	DecodeMS   float64 `json:"decode_ms"`
	MergeMS    float64 `json:"merge_ms"`
	FinalizeMS float64 `json:"finalize_ms"`
}

// benchResult is one measurement in the BENCH_ingest.json array: the
// stable schema the CI artifact and EXPERIMENTS.md sweeps share.
type benchResult struct {
	Mode         string     `json:"mode"`
	Rows         int64      `json:"rows"`
	Workers      int        `json:"workers"`
	GoMaxProcs   int        `json:"gomaxprocs"`
	NumCPU       int        `json:"num_cpu"`
	WallMS       float64    `json:"wall_ms"`
	PhaseMS      phaseSplit `json:"phase_ms"`
	NsPerOp      float64    `json:"ns_per_op"`
	AllocsPerOp  float64    `json:"allocs_per_op"`
	PeakRSSBytes int64      `json:"peak_rss_bytes"`

	// Digest fingerprints the pass's observable output (FNV-64a over
	// the figure results, or over the full Write text for the store
	// modes), so a sweep can assert byte-parity across worker counts.
	Digest string `json:"digest,omitempty"`

	// Store-reload modes (textload, colstore) split the wall into the
	// reload (time-to-usable-Store), a two-field projected query, and a
	// full materialising scan. The colstore byte counters snapshot the
	// projection point, proving it touched only the selected columns.
	ReloadMS    float64 `json:"reload_ms,omitempty"`
	ProjMS      float64 `json:"proj_ms,omitempty"`
	ScanMS      float64 `json:"scan_ms,omitempty"`
	ColumnsRead int64   `json:"columns_read,omitempty"`
	BytesRead   int64   `json:"bytes_read,omitempty"`
	BytesMapped int64   `json:"bytes_mapped,omitempty"`
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// measure runs one analysis pass and reports wall time, per-phase
// split, allocation totals, and the process high-water RSS.
func measure(path, mode string, workers int, jsonOut string) error {
	t0 := time.Now()
	res, err := measureCell(path, mode, workers)
	if err != nil {
		return err
	}
	wall := time.Since(t0)

	var mstats runtime.MemStats
	runtime.ReadMemStats(&mstats)
	hwm, err := vmHWM()
	if err != nil {
		return err
	}
	fmt.Printf("mode=%s workers=%d records=%d wall=%s decode=%.1fms merge=%.1fms finalize=%.1fms peak_rss=%.1fMB total_alloc=%.1fMB mallocs=%d\n",
		mode, workers, res.Rows, wall.Round(time.Millisecond),
		res.PhaseMS.DecodeMS, res.PhaseMS.MergeMS, res.PhaseMS.FinalizeMS,
		float64(hwm)/(1<<20), float64(mstats.TotalAlloc)/(1<<20), mstats.Mallocs)
	if jsonOut == "" {
		return nil
	}
	res.WallMS = ms(wall)
	res.PeakRSSBytes = hwm
	if res.Rows > 0 {
		res.NsPerOp = float64(wall.Nanoseconds()) / float64(res.Rows)
		res.AllocsPerOp = float64(mstats.Mallocs) / float64(res.Rows)
	}
	return appendResult(jsonOut, res)
}

// measureCell runs one (mode, workers) pass and returns the partially
// filled result: rows, phase split, host shape, and the reload extras
// for the store modes. Wall/RSS/alloc totals are the caller's, since a
// sweep runs many cells in one process.
func measureCell(path, mode string, workers int) (benchResult, error) {
	res := benchResult{
		Mode:       mode,
		Workers:    workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	switch mode {
	case "textload", "colstore":
		r, err := measureReload(path, mode, workers)
		if err != nil {
			return res, err
		}
		rows := r.Rows
		r.Mode, r.Workers, r.GoMaxProcs, r.NumCPU = res.Mode, res.Workers, res.GoMaxProcs, res.NumCPU
		res = r
		res.Rows = rows
		// Decode is the full materialising scan (the phase the shard
		// pool parallelises); the projected query stands in for
		// finalize; reload keeps its own field.
		res.PhaseMS = phaseSplit{DecodeMS: r.ScanMS, FinalizeMS: r.ProjMS}
	case "stream":
		b := analyze.NewBundle(bucket)
		var rep curate.Report
		td := time.Now()
		for rec, err := range curate.StreamFile(path, "", curate.DefaultOptions(), &rep) {
			if err != nil {
				return res, err
			}
			b.Observe(rec)
		}
		res.PhaseMS.DecodeMS = ms(time.Since(td))
		tf := time.Now()
		touchBundle(b)
		res.PhaseMS.FinalizeMS = ms(time.Since(tf))
		res.Rows = b.Records
		res.Digest = bundleDigest(b)
	case "parallel":
		b := analyze.NewBundle(bucket)
		shards := analyze.NewShardSet(bucket)
		opts := curate.DefaultOptions()
		opts.Workers = workers
		var rep curate.Report
		td := time.Now()
		if _, err := curate.StreamFileParallel(path, "", opts, &rep,
			func(chunk int) func(*slurm.Record) bool {
				sb := shards.Shard(chunk)
				return func(rec *slurm.Record) bool {
					sb.Observe(rec)
					return true
				}
			}); err != nil {
			return res, err
		}
		res.PhaseMS.DecodeMS = ms(time.Since(td))
		tm := time.Now()
		shards.MergeIntoN(b, workers)
		res.PhaseMS.MergeMS = ms(time.Since(tm))
		tf := time.Now()
		touchBundle(b)
		res.PhaseMS.FinalizeMS = ms(time.Since(tf))
		res.Rows = b.Records
		res.Digest = bundleDigest(b)
	case "slices":
		td := time.Now()
		recs, _, err := curate.LoadRecordsFile(path)
		if err != nil {
			return res, err
		}
		res.PhaseMS.DecodeMS = ms(time.Since(td))
		tm := time.Now()
		sort.SliceStable(recs, func(i, j int) bool {
			return slurm.CompareJobID(recs[i].ID, recs[j].ID) < 0
		})
		res.PhaseMS.MergeMS = ms(time.Since(tm))
		tf := time.Now()
		touchSlices(recs)
		res.PhaseMS.FinalizeMS = ms(time.Since(tf))
		res.Rows = int64(len(recs))
	default:
		return res, fmt.Errorf("unknown -mode %q", mode)
	}
	return res, nil
}

// measureReload times the store-reload path: time-to-usable-Store, a
// two-field projected query, and a full materialising scan (decoding up
// to `workers` shards concurrently for colstore). For colstore it also
// snapshots the read counters right after the projection, before the
// full scan inflates them — bytes_read at that point is the proof that
// the projection touched only the User/Elapsed/JobID regions. The
// digest hashes the projected text plus a scan fingerprint, so it is
// identical across worker counts iff the outputs are.
func measureReload(path, mode string, workers int) (benchResult, error) {
	var r benchResult
	t0 := time.Now()
	var st *sacct.Store
	var err error
	switch mode {
	case "textload":
		st, _, err = sacct.LoadFile(path)
	case "colstore":
		st, err = sacct.OpenBinary(path)
	}
	if err != nil {
		return r, err
	}
	defer st.Close()
	st.SetDecodeWorkers(workers)
	r.ReloadMS = ms(time.Since(t0))

	h := fnv.New64a()
	t1 := time.Now()
	if _, err := st.Write(h, sacct.Query{Fields: []string{"User", "Elapsed"}}); err != nil {
		return r, err
	}
	r.ProjMS = ms(time.Since(t1))
	if stats, ok := st.ColstoreStats(); ok {
		r.ColumnsRead = stats.ColumnsRead
		r.BytesRead = stats.BytesRead
		r.BytesMapped = stats.BytesMapped
	}

	t2 := time.Now()
	for rec, err := range st.Scan(sacct.Query{IncludeSteps: true}) {
		if err != nil {
			return r, err
		}
		r.Rows++
		io.WriteString(h, rec.ID.String())
		io.WriteString(h, rec.Submit.UTC().Format(time.RFC3339))
	}
	r.ScanMS = ms(time.Since(t2))
	r.Digest = fmt.Sprintf("%016x", h.Sum64())
	fmt.Printf("mode=%s workers=%d reload=%.1fms proj=%.1fms scan=%.1fms columns_read=%d bytes_read=%d bytes_mapped=%d\n",
		mode, workers, r.ReloadMS, r.ProjMS, r.ScanMS, r.ColumnsRead, r.BytesRead, r.BytesMapped)
	return r, nil
}

// bundleDigest fingerprints every figure surface the workflow renders:
// two passes that produce the same digest would emit byte-identical
// figure specs. The reclaimable and per-class summaries are deliberately
// excluded — they fold float sums whose partial-sum grouping shifts with
// the chunk count (last-ulp drift only), while every figure surface is
// integer counts or appended points and therefore exact at any width.
func bundleDigest(b *analyze.Bundle) string {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	for _, v := range []any{
		b.Records, b.Jobs,
		b.Volume.Result(), b.Scale.Result(), b.Waits.Result(),
		b.Users.Result(50), b.Backfill.Result(),
		b.Timeline.Result(),
	} {
		if err := enc.Encode(v); err != nil {
			return "unencodable:" + err.Error()
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// appendResult folds one measurement into the JSON array at path,
// creating the file on first use. Entries the current schema does not
// know (older results, sweep blocks) pass through untouched, so a
// regeneration never silently drops history. Each -run invocation is a
// fresh process, so VmHWM in every entry reflects only its own pass.
func appendResult(path string, v any) error {
	var list []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		// A malformed file starts a fresh array rather than failing the run.
		_ = json.Unmarshal(data, &list)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	list = append(list, raw)
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// touchBundle forces every figure result the workflow consumes.
func touchBundle(b *analyze.Bundle) {
	_ = b.Volume.Result()
	_ = b.Scale.Result()
	_ = b.Waits.Result()
	_ = b.Users.Result(50)
	_ = b.Backfill.Result()
	_ = b.Reclaim.Result()
	_ = b.Timeline.Result()
	_ = b.Classes.Result()
}

// touchSlices runs the multi-pass builders the old workflow consumed.
func touchSlices(recs []slurm.Record) {
	_ = analyze.JobStepVolume(recs)
	_ = analyze.NodesVsElapsed(recs)
	_ = analyze.WaitTimes(recs)
	_ = analyze.StatesPerUser(recs, 50)
	_ = analyze.RequestedVsActual(recs)
	_ = analyze.ReclaimableNodeHours(recs)
	_ = analyze.Timeline(recs, bucket)
	_ = analyze.PerClass(recs)
}

// vmHWM reads the process peak resident set from /proc/self/status.
func vmHWM() (int64, error) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			if err != nil {
				return 0, err
			}
			return kb << 10, nil
		}
	}
	return 0, fmt.Errorf("VmHWM not found in /proc/self/status")
}
