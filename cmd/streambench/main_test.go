package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchResultJSONShape pins the benchResult wire schema: the CI
// sweep assertions and EXPERIMENTS.md tooling key on these names, so a
// rename must be a deliberate schema bump, not an accident.
func TestBenchResultJSONShape(t *testing.T) {
	res := benchResult{
		Mode:       "parallel",
		Rows:       10,
		Workers:    2,
		GoMaxProcs: 2,
		NumCPU:     2,
		WallMS:     1.5,
		PhaseMS:    phaseSplit{DecodeMS: 1, MergeMS: 0.25, FinalizeMS: 0.25},
		Digest:     "fnv64a:deadbeef",
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"mode", "rows", "workers", "gomaxprocs", "num_cpu", "wall_ms", "phase_ms", "digest"} {
		if _, ok := m[key]; !ok {
			t.Errorf("benchResult JSON missing %q", key)
		}
	}
	phases, ok := m["phase_ms"].(map[string]any)
	if !ok {
		t.Fatalf("phase_ms is %T, want object", m["phase_ms"])
	}
	for _, key := range []string{"decode_ms", "merge_ms", "finalize_ms"} {
		if _, ok := phases[key]; !ok {
			t.Errorf("phase_ms JSON missing %q", key)
		}
	}
}

// TestSweepBlockJSONShape pins the sweep/v1 schema appended to the
// bench JSON file.
func TestSweepBlockJSONShape(t *testing.T) {
	block := sweepBlock{
		Schema:               "sweep/v1",
		GoMaxProcs:           2,
		NumCPU:               2,
		Rows:                 10,
		Months:               3,
		Reps:                 2,
		Cells:                []sweepCell{{Mode: "colstore", Workers: 2, WallMS: 1, SpeedupV1: 1}},
		AmdahlSerialFraction: map[string]float64{"colstore": 0.5},
		ParityOK:             true,
	}
	raw, err := json.Marshal(block)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "generated_at", "gomaxprocs", "num_cpu", "rows",
		"months", "reps", "cells", "amdahl_serial_fraction", "parity_ok"} {
		if _, ok := m[key]; !ok {
			t.Errorf("sweepBlock JSON missing %q", key)
		}
	}
	if m["schema"] != "sweep/v1" {
		t.Errorf("schema = %v, want sweep/v1", m["schema"])
	}
	cell := m["cells"].([]any)[0].(map[string]any)
	for _, key := range []string{"mode", "workers", "wall_ms", "phase_ms", "digest", "speedup_vs_1"} {
		if _, ok := cell[key]; !ok {
			t.Errorf("sweepCell JSON missing %q", key)
		}
	}
}

// TestAppendResultPreservesForeignEntries pins that appending never
// rewrites existing entries: older benchResult shapes and sweep blocks
// must survive byte-for-byte (modulo re-indentation), so the committed
// bench file can accrete history across schema revisions.
func TestAppendResultPreservesForeignEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	legacy := `[
  {
    "mode": "ancient",
    "rows": 42,
    "mystery_field": {"nested": true}
  }
]`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendResult(path, benchResult{Mode: "parallel", Rows: 1}); err != nil {
		t.Fatal(err)
	}
	if err := appendResult(path, sweepBlock{Schema: "sweep/v1"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var list []map[string]any
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("%d entries, want 3", len(list))
	}
	if list[0]["mode"] != "ancient" {
		t.Errorf("legacy entry lost: %v", list[0])
	}
	nested, ok := list[0]["mystery_field"].(map[string]any)
	if !ok || nested["nested"] != true {
		t.Errorf("legacy unknown field mangled: %v", list[0]["mystery_field"])
	}
	if list[1]["mode"] != "parallel" || list[2]["schema"] != "sweep/v1" {
		t.Errorf("appended entries wrong: %v / %v", list[1], list[2])
	}
}

// TestAmdahlSerialFraction pins the fit at its anchor points: perfect
// scaling is f=0, a flat curve is f=1, and no multi-worker data
// defaults to fully serial.
func TestAmdahlSerialFraction(t *testing.T) {
	cases := []struct {
		name  string
		cells []sweepCell
		want  float64
	}{
		{"perfect", []sweepCell{{Workers: 1, WallMS: 100}, {Workers: 2, WallMS: 50}, {Workers: 4, WallMS: 25}}, 0},
		{"flat", []sweepCell{{Workers: 1, WallMS: 100}, {Workers: 2, WallMS: 100}, {Workers: 4, WallMS: 100}}, 1},
		{"single-point", []sweepCell{{Workers: 1, WallMS: 100}}, 1},
		{"empty", nil, 1},
		{"half-serial-2w", []sweepCell{{Workers: 1, WallMS: 100}, {Workers: 2, WallMS: 75}}, 0.5},
	}
	for _, tc := range cases {
		got := amdahlSerialFraction(tc.cells)
		if diff := got - tc.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: f = %g, want %g", tc.name, got, tc.want)
		}
	}
}
