package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// The sweep harness runs the rows × workers × mode matrix in one
// invocation and appends a single machine-readable sweep/v1 block to
// the -json file: the committed scaling story. Each cell records its
// wall time, per-phase split, and an output digest; the block adds the
// host shape, per-mode speedup curves, and the Amdahl serial fraction
// fitted from the worker curve — so a flat curve on a small host is
// documented as "serial fraction ≈ 1", not silently mistaken for a
// parallelism bug. Parity across worker counts is enforced, not
// assumed: a digest mismatch fails the sweep.

// sweepCell is one (mode, workers) point: best wall of -sweep-reps
// repetitions, with that repetition's phase split and digest.
type sweepCell struct {
	Mode      string     `json:"mode"`
	Workers   int        `json:"workers"`
	WallMS    float64    `json:"wall_ms"`
	PhaseMS   phaseSplit `json:"phase_ms"`
	Digest    string     `json:"digest"`
	SpeedupV1 float64    `json:"speedup_vs_1"`
}

// sweepBlock is the sweep/v1 entry appended to BENCH_ingest.json.
type sweepBlock struct {
	Schema      string      `json:"schema"` // always "sweep/v1"
	GeneratedAt string      `json:"generated_at"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	NumCPU      int         `json:"num_cpu"`
	Rows        int64       `json:"rows"`
	Months      int         `json:"months"`
	Reps        int         `json:"reps"`
	Cells       []sweepCell `json:"cells"`

	// AmdahlSerialFraction is the mean per-mode estimate of the serial
	// share f from the wall-time worker curve: for each n>1,
	// f_n = (T_n/T_1 - 1/n)/(1 - 1/n), clamped to [0,1]. f ≈ 0 is
	// near-linear scaling; f ≈ 1 means the curve is flat (e.g. a
	// single-core host, where GOMAXPROCS pins every worker to one CPU).
	AmdahlSerialFraction map[string]float64 `json:"amdahl_serial_fraction"`

	// ParityOK reports that every cell of a mode produced the same
	// output digest across worker counts and repetitions. The sweep
	// also fails hard when this is false.
	ParityOK bool `json:"parity_ok"`
}

// runSweep executes the matrix. Trace files are derived from -path with
// deterministic names (<path>.<rows>rows.<months>mo.txt and its
// .colstore sibling) and reused when already present, so repeated
// sweeps at the same shape skip the expensive generate/convert steps.
func runSweep(a dispatchArgs) error {
	workersList, err := parseInts(a.sweepWorkers)
	if err != nil {
		return fmt.Errorf("-sweep-workers: %w", err)
	}
	modes := strings.Split(a.sweepModes, ",")
	reps := max(a.sweepReps, 1)
	months := max(a.months, 1)

	base := fmt.Sprintf("%s.%drows.%dmo.txt", strings.TrimSuffix(a.path, ".txt"), a.rows, months)
	if _, err := os.Stat(base); err != nil {
		log.Printf("generating %s", base)
		if err := generate(base, a.rows, months, a.seed); err != nil {
			return err
		}
	} else {
		log.Printf("reusing %s", base)
	}
	cs := base + ".colstore"
	needCS := false
	for _, m := range modes {
		if strings.TrimSpace(m) == "colstore" {
			needCS = true
		}
	}
	if needCS {
		if _, err := os.Stat(cs); err != nil {
			log.Printf("converting %s", cs)
			if err := convertTrace(base, cs); err != nil {
				return err
			}
		} else {
			log.Printf("reusing %s", cs)
		}
	}

	block := sweepBlock{
		Schema:               "sweep/v1",
		GeneratedAt:          time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:           runtime.GOMAXPROCS(0),
		NumCPU:               runtime.NumCPU(),
		Months:               months,
		Reps:                 reps,
		AmdahlSerialFraction: map[string]float64{},
		ParityOK:             true,
	}
	var parityErr error
	for _, mode := range modes {
		mode = strings.TrimSpace(mode)
		input := base
		if mode == "colstore" {
			input = cs
		}
		digests := map[string]bool{}
		var cells []sweepCell
		for _, w := range workersList {
			cell := sweepCell{Mode: mode, Workers: w}
			for rep := 0; rep < reps; rep++ {
				runtime.GC()
				t0 := time.Now()
				res, err := measureCell(input, mode, w)
				if err != nil {
					return fmt.Errorf("sweep %s workers=%d: %w", mode, w, err)
				}
				wall := ms(time.Since(t0))
				if cell.Digest == "" || wall < cell.WallMS {
					cell.WallMS, cell.PhaseMS, cell.Digest = wall, res.PhaseMS, res.Digest
				}
				digests[res.Digest] = true
				block.Rows = res.Rows
				log.Printf("sweep mode=%s workers=%d rep=%d wall=%.1fms decode=%.1fms merge=%.1fms finalize=%.1fms",
					mode, w, rep, wall, res.PhaseMS.DecodeMS, res.PhaseMS.MergeMS, res.PhaseMS.FinalizeMS)
			}
			cells = append(cells, cell)
		}
		if len(digests) > 1 {
			block.ParityOK = false
			parityErr = fmt.Errorf("sweep: mode %s output diverged across worker counts: %d distinct digests", mode, len(digests))
		}
		base1 := cells[0].WallMS
		for i := range cells {
			if cells[i].WallMS > 0 {
				cells[i].SpeedupV1 = base1 / cells[i].WallMS
			}
		}
		block.AmdahlSerialFraction[mode] = amdahlSerialFraction(cells)
		block.Cells = append(block.Cells, cells...)
	}

	if a.jsonOut != "" {
		if err := appendResult(a.jsonOut, block); err != nil {
			return err
		}
		log.Printf("appended sweep/v1 block to %s", a.jsonOut)
	}
	for mode, f := range block.AmdahlSerialFraction {
		fmt.Printf("sweep mode=%s amdahl_serial_fraction=%.3f parity_ok=%v\n", mode, f, block.ParityOK)
	}
	return parityErr
}

// amdahlSerialFraction fits the serial share from a mode's wall-time
// curve, relative to the lowest worker count measured. Returns 1 (fully
// serial) when no multi-worker point exists.
func amdahlSerialFraction(cells []sweepCell) float64 {
	if len(cells) == 0 || cells[0].WallMS <= 0 {
		return 1
	}
	t1, n1 := cells[0].WallMS, float64(cells[0].Workers)
	var sum float64
	var count int
	for _, c := range cells[1:] {
		n := float64(c.Workers) / n1 // scale relative to the baseline width
		if n <= 1 || c.WallMS <= 0 {
			continue
		}
		f := (c.WallMS/t1 - 1/n) / (1 - 1/n)
		f = min(max(f, 0), 1)
		sum += f
		count++
	}
	if count == 0 {
		return 1
	}
	return sum / float64(count)
}

// parseInts parses a comma-separated list of positive ints.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("worker count %d out of range", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
