// Command dashboard serves a workflow output directory as an interactive
// dashboard, with the standard operational surface alongside it:
// /metrics, /debug/vars, /debug/requests, and /debug/pprof/.
//
// Example:
//
//	dashboard -dir out -addr :8080
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"time"

	"slurmsight/internal/dashboard"
	"slurmsight/internal/obs"
	"slurmsight/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dashboard: ")

	var (
		dir   = flag.String("dir", "out", "workflow output directory to serve")
		addr  = flag.String("addr", ":8080", "listen address")
		grace = flag.Duration("grace", 5*time.Second, "shutdown drain budget for in-flight requests")

		slow       = flag.Duration("slow", 250*time.Millisecond, "log requests slower than this (0 disables the slow log)")
		flightRing = flag.Int("flight-ring", 256, "flight recorder: recent traces retained (negative disables recording)")
		flightTail = flag.Int("flight-tail", 8, "flight recorder: slowest traces kept per route")
	)
	flag.Parse()

	srv, err := dashboard.New(*dir)
	if err != nil {
		log.Fatal(err)
	}
	metrics := obs.NewRegistry()
	metrics.PublishExpvar("dashboard")
	recorder := obs.NewRecorder(*flightRing, *flightTail)
	if *flightRing < 0 {
		recorder = nil
	}
	mux := http.NewServeMux()
	mux.Handle("/", serve.Middleware{
		Registry:      metrics,
		Prefix:        "dashboard",
		Recorder:      recorder,
		SlowThreshold: *slow,
		Log:           slog.New(slog.NewJSONHandler(os.Stderr, nil)),
	}.Wrap(srv.Handler()))
	serve.MountDebug(mux, metrics, recorder)

	log.Printf("serving %s on %s", *dir, *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := serve.ListenAndDrain(context.Background(), httpServer, *grace, log.Printf); err != nil {
		log.Fatal(err)
	}
}
