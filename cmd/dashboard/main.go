// Command dashboard serves a workflow output directory as an interactive
// dashboard.
//
// Example:
//
//	dashboard -dir out -addr :8080
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"time"

	"slurmsight/internal/dashboard"
	"slurmsight/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dashboard: ")

	var (
		dir   = flag.String("dir", "out", "workflow output directory to serve")
		addr  = flag.String("addr", ":8080", "listen address")
		grace = flag.Duration("grace", 5*time.Second, "shutdown drain budget for in-flight requests")
	)
	flag.Parse()

	srv, err := dashboard.New(*dir)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %s on %s", *dir, *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := serve.ListenAndDrain(context.Background(), httpServer, *grace, log.Printf); err != nil {
		log.Fatal(err)
	}
}
