// Command queryload drives a live-appending queryd with thousands of
// concurrent clients and reports tail latency, cache effectiveness, and
// the generation proof (a read after an acknowledged append observes
// the appended rows).
//
// By default it self-hosts: it opens the trace, mounts the serve
// handler on a loopback listener, and hammers it over real HTTP — one
// process, no setup. Point -url at an external queryd to load that
// instead.
//
// -obs-compare measures the cost of the observability layer itself: it
// runs the same load twice against two self-hosted servers — flight
// recorder and slow log off, then on — and reports the throughput and
// latency deltas, so a tracing regression shows up as a number instead
// of a hunch.
//
// Example:
//
//	queryload -trace traces/frontier.colstore -clients 1000 -duration 15s \
//	  -json BENCH_serve.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slurmsight/internal/obs"
	"slurmsight/internal/sacct"
	"slurmsight/internal/serve"
	"slurmsight/internal/slurm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("queryload: ")

	var (
		trace    = flag.String("trace", "", "trace to self-host (ignored with -url)")
		url      = flag.String("url", "", "external queryd base URL (empty self-hosts -trace)")
		clients  = flag.Int("clients", 1000, "concurrent query clients")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		limit    = flag.Int("limit", 200, "row cap per query")
		figures  = flag.Bool("figures", false, "mix figure requests into the load")

		appendEvery = flag.Duration("append-every", time.Second, "live-append cadence (0 disables)")
		appendRows  = flag.Int("append-rows", 200, "rows per live append")

		rate      = flag.Float64("rate", 0, "self-hosted per-client throttle (0 disables)")
		cacheN    = flag.Int("cache", 1024, "self-hosted response cache entries")
		flightRec = flag.Bool("flight-recorder", true, "self-hosted flight recorder + per-request tracing")
		compare   = flag.Bool("obs-compare", false,
			"run the load twice (tracing off, then on) against self-hosted servers and report the overhead")
		out = flag.String("json", "BENCH_serve.json", "result path (empty prints to stdout)")
	)
	flag.Parse()

	lc := loadCfg{
		clients:     *clients,
		duration:    *duration,
		limit:       *limit,
		figures:     *figures,
		appendEvery: *appendEvery,
		appendRows:  *appendRows,
	}

	if *compare {
		if *trace == "" {
			log.Fatal("-obs-compare needs -trace (it self-hosts both phases)")
		}
		runCompare(*trace, *rate, *cacheN, lc, *out)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base := *url
	if base == "" {
		if *trace == "" {
			log.Fatal("need -trace (to self-host) or -url (external queryd)")
		}
		st := openWarm(*trace)
		defer st.Close()
		b, err := selfHost(ctx, st, *rate, *cacheN, *flightRec)
		if err != nil {
			log.Fatal(err)
		}
		base = b
		log.Printf("self-hosting %s (%d rows) on %s", *trace, st.Len(), base)
	}

	client := newLoadClient(*clients)
	result, sum := drive(client, base, lc)
	writeResult(result, *out)
	log.Printf("%d requests (%.0f/s), p50 %.1fms p99 %.1fms, cache hit rate %.2f, %d throttled, %d errors",
		sum.requests, sum.qps, sum.p50, sum.p99, sum.hitRate, sum.throttled, sum.errors)
	if sum.errors > 0 {
		os.Exit(1)
	}
}

// runCompare drives the identical load against two self-hosted servers
// over the same warmed store — observability off, then on — and writes
// one result (the instrumented phase, in the usual schema) whose
// obs_overhead section carries the baseline and the deltas. The live
// appender runs in both phases, so the comparison covers the
// invalidation churn a real queryd sees.
func runCompare(trace string, rate float64, cacheN int, lc loadCfg, out string) {
	st := openWarm(trace)
	defer st.Close()
	client := newLoadClient(lc.clients)

	phase := func(instrumented bool) (map[string]any, summary) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		base, err := selfHost(ctx, st, rate, cacheN, instrumented)
		if err != nil {
			log.Fatal(err)
		}
		mode := "baseline (tracing off)"
		if instrumented {
			mode = "instrumented (tracing on)"
		}
		log.Printf("phase %s on %s", mode, base)
		return drive(client, base, lc)
	}

	baseRes, baseSum := phase(false)
	instRes, instSum := phase(true)

	// Overhead as the instrumented slowdown in percent: positive means
	// tracing costs something, negative means noise won the round.
	pct := func(instrumented, baseline float64) float64 {
		if baseline == 0 {
			return 0
		}
		return round2((instrumented - baseline) / baseline * 100)
	}
	qpsLoss := 0.0
	if baseSum.qps > 0 {
		qpsLoss = round2((1 - instSum.qps/baseSum.qps) * 100)
	}
	result := instRes
	result["obs_overhead"] = map[string]any{
		"baseline":         baseRes,
		"qps_baseline":     round2(baseSum.qps),
		"qps_instrumented": round2(instSum.qps),
		"qps_loss_pct":     qpsLoss,
		"p50_overhead_pct": pct(instSum.p50, baseSum.p50),
		"p99_overhead_pct": pct(instSum.p99, baseSum.p99),
	}
	writeResult(result, out)
	log.Printf("overhead: qps %.0f -> %.0f (%.2f%% loss), p50 %.3fms -> %.3fms (%+.2f%%), p99 %.3fms -> %.3fms (%+.2f%%)",
		baseSum.qps, instSum.qps, (1-instSum.qps/baseSum.qps)*100,
		baseSum.p50, instSum.p50, pct(instSum.p50, baseSum.p50),
		baseSum.p99, instSum.p99, pct(instSum.p99, baseSum.p99))
	if baseSum.errors+instSum.errors > 0 {
		os.Exit(1)
	}
}

// openWarm opens a trace and materialises every shard so measurements
// exercise serving, not first-touch decodes — an always-on queryd pays
// that once at boot.
func openWarm(trace string) *sacct.Store {
	st, _, err := sacct.OpenFile(trace)
	if err != nil {
		log.Fatal(err)
	}
	tWarm := time.Now()
	if err := st.Warm(); err != nil {
		log.Fatal(err)
	}
	log.Printf("warmed %d rows in %s", st.Len(), time.Since(tWarm).Round(time.Millisecond))
	return st
}

// selfHost mounts a serve.Server over st on a loopback listener and
// returns its base URL. instrumented toggles the whole tracing layer:
// flight recorder plus a slow log swallowed by io.Discard, so the
// measured cost is the instrumentation, not terminal I/O.
func selfHost(ctx context.Context, st *sacct.Store, rate float64, cacheN int, instrumented bool) (string, error) {
	cfg := serve.Config{
		Store:        st,
		System:       "bench",
		Metrics:      obs.NewRegistry(),
		RatePerSec:   rate,
		CacheEntries: cacheN,
	}
	if instrumented {
		cfg.Log = slog.New(slog.NewJSONHandler(io.Discard, nil))
	} else {
		cfg.FlightRing = -1
		cfg.SlowThreshold = -1
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	httpServer := &http.Server{Handler: srv.Handler()}
	go serve.Drain(ctx, httpServer, ln, 5*time.Second, nil)
	return "http://" + ln.Addr().String(), nil
}

func newLoadClient(clients int) *http.Client {
	transport := &http.Transport{
		MaxIdleConns:        4 * clients,
		MaxIdleConnsPerHost: 4 * clients,
	}
	return &http.Client{Transport: transport, Timeout: 60 * time.Second}
}

// loadCfg is one load phase: how many clients, for how long, against
// what request mix.
type loadCfg struct {
	clients, limit int
	duration       time.Duration
	figures        bool
	appendEvery    time.Duration
	appendRows     int
}

// summary is the phase digest used for logging and overhead math.
type summary struct {
	requests  int64
	qps       float64
	p50, p99  float64
	hitRate   float64
	throttled int64
	errors    int64
}

// drive runs one load phase against base and returns the full result
// map (the BENCH_serve.json shape) plus its digest.
func drive(client *http.Client, base string, lc loadCfg) (map[string]any, summary) {
	health, err := fetchHealth(client, base)
	if err != nil {
		log.Fatalf("healthz: %v", err)
	}
	months := queryMonths(client, base)
	log.Printf("target holds %.0f rows, generation %.0f; driving %d clients for %s",
		health["rows"], health["generation"], lc.clients, lc.duration)

	reg := obs.NewRegistry()
	latHist := reg.Histogram("queryload_request_seconds", obs.LatencyBuckets)

	var (
		requests, errors429, errorsOther atomic.Int64
		samplesMu                        sync.Mutex
		samples                          []float64
	)
	deadline := time.Now().Add(lc.duration)
	var wg sync.WaitGroup
	for i := 0; i < lc.clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := make([]float64, 0, 1024)
			for iter := 0; time.Now().Before(deadline); iter++ {
				u := pickQuery(base, id, iter, months, lc.limit, lc.figures)
				t0 := time.Now()
				status, err := get(client, u, "c"+strconv.Itoa(id))
				dt := time.Since(t0)
				requests.Add(1)
				latHist.Observe(dt.Seconds())
				local = append(local, dt.Seconds()*1000)
				switch {
				case err != nil:
					errorsOther.Add(1)
				case status == http.StatusTooManyRequests:
					errors429.Add(1)
				case status != http.StatusOK:
					errorsOther.Add(1)
				}
			}
			samplesMu.Lock()
			samples = append(samples, local...)
			samplesMu.Unlock()
		}(i)
	}

	// The appender makes the store live while the clients read: each
	// batch lands in a synthetic future month, and after every
	// acknowledged append a window query over that month must show
	// all rows appended so far — the generation proof.
	app := &appender{client: client, base: base, rows: lc.appendRows}
	if lc.appendEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			app.run(deadline, lc.appendEvery)
		}()
	}
	t0 := time.Now()
	wg.Wait()
	elapsed := time.Since(t0)

	sort.Float64s(samples)
	metricsText, _ := getBody(client, base+"/metrics")
	cache := parseCache(metricsText)
	result := map[string]any{
		"target":     base,
		"clients":    lc.clients,
		"duration_s": round2(elapsed.Seconds()),
		"requests":   requests.Load(),
		"qps":        round2(float64(requests.Load()) / elapsed.Seconds()),
		"throttled":  errors429.Load(),
		"errors":     errorsOther.Load(),
		"store": map[string]any{
			"rows_start": health["rows"],
			"months":     health["months"],
		},
		"latency_ms": map[string]any{
			"p50": round2(percentile(samples, 50)),
			"p90": round2(percentile(samples, 90)),
			"p99": round2(percentile(samples, 99)),
			"max": round2(percentile(samples, 100)),
		},
		"cache": cache,
		"appends": map[string]any{
			"batches":          app.batches.Load(),
			"rows":             app.rowsSent.Load(),
			"generation_start": app.genStart.Load(),
			"generation_end":   app.genEnd.Load(),
		},
		"generation_proof": app.batches.Load() > 0 && app.proofFailures.Load() == 0,
		"client_metrics":   reg.Snapshot(),
	}
	if app.proofFailures.Load() > 0 {
		log.Printf("WARNING: %d generation-proof failures (appended rows not visible to a follow-up query)",
			app.proofFailures.Load())
	}
	return result, summary{
		requests:  requests.Load(),
		qps:       float64(requests.Load()) / elapsed.Seconds(),
		p50:       percentile(samples, 50),
		p99:       percentile(samples, 99),
		hitRate:   cache["hit_rate"].(float64),
		throttled: errors429.Load(),
		errors:    errorsOther.Load(),
	}
}

func writeResult(result map[string]any, out string) {
	blob, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}

// pickQuery spreads clients across a realistic mix: repeated canonical
// queries (cache-friendly), month windows, windowed user filters, and
// optionally figures. The distinct-key population is deliberately
// bounded (tens of keys per generation) — the cache and single-flight
// layer is what an always-on service lives or dies by.
func pickQuery(base string, id, iter int, months []string, limit int, figures bool) string {
	lim := strconv.Itoa(limit)
	mix := (id + iter) % 16
	win := ""
	if len(months) > 0 {
		win = "&start=" + months[(id+iter)%len(months)]
	}
	switch {
	case figures && mix == 15:
		keys := []string{"fig1-volume", "fig4-wait-times", "fig5-states-per-user"}
		return base + "/figures/" + keys[(id+iter)%len(keys)] + ".json"
	case mix < 8: // hot canonical queries
		return base + "/query?fields=JobID,User,State&limit=" + lim
	case mix < 12: // month windows
		return base + "/query?fields=JobID,Submit,NNodes&limit=" + lim + win
	default: // windowed user filter over the trace's real user pool
		user := fmt.Sprintf("u%04d", (id+iter)%16)
		return base + "/query?fields=JobID,User&user=" + user + "&limit=" + lim + win
	}
}

// appender POSTs pipe-text batches into a synthetic future month and
// verifies each acknowledged append is visible to a follow-up query.
type appender struct {
	client *http.Client
	base   string
	rows   int

	batches, rowsSent, genStart, genEnd, proofFailures atomic.Int64
	cursor                                             time.Time
}

func (a *appender) run(deadline time.Time, every time.Duration) {
	// Far past any generated trace, so the proof window holds only
	// appended rows.
	a.cursor = time.Date(2031, 1, 1, 0, 0, 0, 0, time.UTC)
	windowStart := a.cursor
	fields := []string{"JobID", "User", "Account", "Partition", "Submit", "Start", "End", "Elapsed", "State", "NNodes", "NCPUs"}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for job := int64(9_000_000); time.Now().Before(deadline); {
		var sb strings.Builder
		sb.WriteString(slurm.Header(fields))
		sb.WriteByte('\n')
		for i := 0; i < a.rows; i++ {
			r := slurm.Record{
				ID:        slurm.NewJobID(job),
				User:      "appender",
				Account:   "bench",
				Partition: "batch",
				Submit:    a.cursor,
				Start:     a.cursor.Add(time.Minute),
				End:       a.cursor.Add(11 * time.Minute),
				Elapsed:   10 * time.Minute,
				State:     slurm.StateCompleted,
				NNodes:    1,
				NCPUs:     8,
			}
			job++
			a.cursor = a.cursor.Add(time.Second)
			line, err := slurm.EncodeRecord(&r, fields)
			if err != nil {
				log.Printf("append encode: %v", err)
				return
			}
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
		resp, err := a.client.Post(a.base+"/ingest", "text/plain", strings.NewReader(sb.String()))
		if err != nil {
			log.Printf("append: %v", err)
			return
		}
		var ack struct {
			Rows       int    `json:"rows"`
			Generation uint64 `json:"generation"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			log.Printf("append: status %d err %v", resp.StatusCode, err)
			return
		}
		if a.genStart.Load() == 0 {
			a.genStart.Store(int64(ack.Generation))
		}
		a.genEnd.Store(int64(ack.Generation))
		a.batches.Add(1)
		a.rowsSent.Add(int64(ack.Rows))

		// Generation proof: the acknowledged rows must be visible now.
		u := a.base + "/query?fields=JobID&steps=1&start=" + windowStart.Format("2006-01-02") +
			"&limit=" + strconv.Itoa(int(a.rowsSent.Load())+1)
		seen, gen := a.countRows(u)
		if seen < a.rowsSent.Load() || gen < uint64(ack.Generation) {
			a.proofFailures.Add(1)
			log.Printf("generation proof FAILED: appended %d rows through generation %d, query at generation %d saw %d",
				a.rowsSent.Load(), ack.Generation, gen, seen)
		}
		select {
		case <-ticker.C:
		default:
			time.Sleep(every)
		}
	}
}

func (a *appender) countRows(u string) (int64, uint64) {
	resp, err := a.client.Get(u)
	if err != nil {
		return -1, 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rows, _ := strconv.ParseInt(resp.Header.Get("X-Rows"), 10, 64)
	gen, _ := strconv.ParseUint(resp.Header.Get("X-Store-Generation"), 10, 64)
	return rows, gen
}

func get(client *http.Client, u, apiKey string) (int, error) {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("X-API-Key", apiKey)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, err
}

func getBody(client *http.Client, u string) (string, error) {
	resp, err := client.Get(u)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func fetchHealth(client *http.Client, base string) (map[string]float64, error) {
	body, err := getBody(client, base+"/healthz")
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal([]byte(body), &raw); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out, nil
}

// queryMonths derives month window starts from a cheap one-row-per-month
// probe: it reads the store's first and last submit through a full-range
// query of Submit only, then enumerates months between. Failure just
// means the month mix is skipped.
func queryMonths(client *http.Client, base string) []string {
	body, err := getBody(client, base+"/query?fields=Submit&limit=1")
	if err != nil {
		return nil
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < 2 {
		return nil
	}
	first, err := time.Parse("2006-01-02T15:04:05", strings.TrimSpace(lines[1]))
	if err != nil {
		return nil
	}
	var out []string
	for m, i := first, 0; i < 12; m, i = m.AddDate(0, 1, 0), i+1 {
		out = append(out, m.Format("2006-01"))
	}
	return out
}

// parseCache pulls the serve_cache_* counters out of Prometheus text.
func parseCache(metrics string) map[string]any {
	vals := map[string]float64{}
	for _, line := range strings.Split(metrics, "\n") {
		f := strings.Fields(line)
		if len(f) == 2 && strings.HasPrefix(f[0], "serve_cache_") {
			if v, err := strconv.ParseFloat(f[1], 64); err == nil {
				vals[strings.TrimPrefix(f[0], "serve_cache_")] = v
			}
		}
	}
	total := vals["hits_total"] + vals["misses_total"] + vals["coalesced_total"]
	rate := 0.0
	if total > 0 {
		rate = (vals["hits_total"] + vals["coalesced_total"]) / total
	}
	return map[string]any{
		"hits":      vals["hits_total"],
		"misses":    vals["misses_total"],
		"coalesced": vals["coalesced_total"],
		"evictions": vals["evictions_total"],
		"hit_rate":  round2(rate),
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }
