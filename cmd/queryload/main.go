// Command queryload drives a live-appending queryd with thousands of
// concurrent clients and reports tail latency, cache effectiveness, and
// the generation proof (a read after an acknowledged append observes
// the appended rows).
//
// By default it self-hosts: it opens the trace, mounts the serve
// handler on a loopback listener, and hammers it over real HTTP — one
// process, no setup. Point -url at an external queryd to load that
// instead.
//
// Example:
//
//	queryload -trace traces/frontier.colstore -clients 1000 -duration 15s \
//	  -json BENCH_serve.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slurmsight/internal/obs"
	"slurmsight/internal/sacct"
	"slurmsight/internal/serve"
	"slurmsight/internal/slurm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("queryload: ")

	var (
		trace    = flag.String("trace", "", "trace to self-host (ignored with -url)")
		url      = flag.String("url", "", "external queryd base URL (empty self-hosts -trace)")
		clients  = flag.Int("clients", 1000, "concurrent query clients")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		limit    = flag.Int("limit", 200, "row cap per query")
		figures  = flag.Bool("figures", false, "mix figure requests into the load")

		appendEvery = flag.Duration("append-every", time.Second, "live-append cadence (0 disables)")
		appendRows  = flag.Int("append-rows", 200, "rows per live append")

		rate   = flag.Float64("rate", 0, "self-hosted per-client throttle (0 disables)")
		cacheN = flag.Int("cache", 1024, "self-hosted response cache entries")
		out    = flag.String("json", "BENCH_serve.json", "result path (empty prints to stdout)")
	)
	flag.Parse()

	base := *url
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if base == "" {
		if *trace == "" {
			log.Fatal("need -trace (to self-host) or -url (external queryd)")
		}
		st, _, err := sacct.OpenFile(*trace)
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		// Warm so the measurement exercises serving, not first-touch
		// shard decodes: an always-on queryd pays this once at boot.
		tWarm := time.Now()
		if err := st.Warm(); err != nil {
			log.Fatal(err)
		}
		log.Printf("warmed %d rows in %s", st.Len(), time.Since(tWarm).Round(time.Millisecond))
		srv, err := serve.New(serve.Config{
			Store:        st,
			System:       "bench",
			Metrics:      obs.NewRegistry(),
			RatePerSec:   *rate,
			CacheEntries: *cacheN,
		})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		httpServer := &http.Server{Handler: srv.Handler()}
		go serve.Drain(ctx, httpServer, ln, 5*time.Second, nil)
		base = "http://" + ln.Addr().String()
		log.Printf("self-hosting %s (%d rows) on %s", *trace, st.Len(), base)
	}

	transport := &http.Transport{
		MaxIdleConns:        4 * *clients,
		MaxIdleConnsPerHost: 4 * *clients,
	}
	client := &http.Client{Transport: transport, Timeout: 60 * time.Second}

	health, err := fetchHealth(client, base)
	if err != nil {
		log.Fatalf("healthz: %v", err)
	}
	months := queryMonths(client, base)
	log.Printf("target holds %.0f rows, generation %.0f; driving %d clients for %s",
		health["rows"], health["generation"], *clients, *duration)

	reg := obs.NewRegistry()
	latHist := reg.Histogram("queryload_request_seconds", obs.LatencyBuckets)

	var (
		requests, errors429, errorsOther atomic.Int64
		samplesMu                        sync.Mutex
		samples                          []float64
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := make([]float64, 0, 1024)
			for iter := 0; time.Now().Before(deadline); iter++ {
				u := pickQuery(base, id, iter, months, *limit, *figures)
				t0 := time.Now()
				status, err := get(client, u, "c"+strconv.Itoa(id))
				dt := time.Since(t0)
				requests.Add(1)
				latHist.Observe(dt.Seconds())
				local = append(local, dt.Seconds()*1000)
				switch {
				case err != nil:
					errorsOther.Add(1)
				case status == http.StatusTooManyRequests:
					errors429.Add(1)
				case status != http.StatusOK:
					errorsOther.Add(1)
				}
			}
			samplesMu.Lock()
			samples = append(samples, local...)
			samplesMu.Unlock()
		}(i)
	}

	// The appender makes the store live while the clients read: each
	// batch lands in a synthetic future month, and after every
	// acknowledged append a window query over that month must show
	// all rows appended so far — the generation proof.
	app := &appender{client: client, base: base, rows: *appendRows}
	if *appendEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			app.run(deadline, *appendEvery)
		}()
	}
	t0 := time.Now()
	wg.Wait()
	elapsed := time.Since(t0)

	sort.Float64s(samples)
	metricsText, _ := getBody(client, base+"/metrics")
	cache := parseCache(metricsText)
	result := map[string]any{
		"target":     base,
		"clients":    *clients,
		"duration_s": round2(elapsed.Seconds()),
		"requests":   requests.Load(),
		"qps":        round2(float64(requests.Load()) / elapsed.Seconds()),
		"throttled":  errors429.Load(),
		"errors":     errorsOther.Load(),
		"store": map[string]any{
			"rows_start": health["rows"],
			"months":     health["months"],
		},
		"latency_ms": map[string]any{
			"p50": round2(percentile(samples, 50)),
			"p90": round2(percentile(samples, 90)),
			"p99": round2(percentile(samples, 99)),
			"max": round2(percentile(samples, 100)),
		},
		"cache": cache,
		"appends": map[string]any{
			"batches":          app.batches.Load(),
			"rows":             app.rowsSent.Load(),
			"generation_start": app.genStart.Load(),
			"generation_end":   app.genEnd.Load(),
		},
		"generation_proof": app.batches.Load() > 0 && app.proofFailures.Load() == 0,
		"client_metrics":   reg.Snapshot(),
	}
	if app.proofFailures.Load() > 0 {
		log.Printf("WARNING: %d generation-proof failures (appended rows not visible to a follow-up query)",
			app.proofFailures.Load())
	}
	blob, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	log.Printf("%d requests (%.0f/s), p50 %.1fms p99 %.1fms, cache hit rate %.2f, %d throttled, %d errors",
		requests.Load(), float64(requests.Load())/elapsed.Seconds(),
		percentile(samples, 50), percentile(samples, 99),
		cache["hit_rate"].(float64), errors429.Load(), errorsOther.Load())
	if n := errorsOther.Load(); n > 0 {
		os.Exit(1)
	}
}

// pickQuery spreads clients across a realistic mix: repeated canonical
// queries (cache-friendly), month windows, windowed user filters, and
// optionally figures. The distinct-key population is deliberately
// bounded (tens of keys per generation) — the cache and single-flight
// layer is what an always-on service lives or dies by.
func pickQuery(base string, id, iter int, months []string, limit int, figures bool) string {
	lim := strconv.Itoa(limit)
	mix := (id + iter) % 16
	win := ""
	if len(months) > 0 {
		win = "&start=" + months[(id+iter)%len(months)]
	}
	switch {
	case figures && mix == 15:
		keys := []string{"fig1-volume", "fig4-wait-times", "fig5-states-per-user"}
		return base + "/figures/" + keys[(id+iter)%len(keys)] + ".json"
	case mix < 8: // hot canonical queries
		return base + "/query?fields=JobID,User,State&limit=" + lim
	case mix < 12: // month windows
		return base + "/query?fields=JobID,Submit,NNodes&limit=" + lim + win
	default: // windowed user filter over the trace's real user pool
		user := fmt.Sprintf("u%04d", (id+iter)%16)
		return base + "/query?fields=JobID,User&user=" + user + "&limit=" + lim + win
	}
}

// appender POSTs pipe-text batches into a synthetic future month and
// verifies each acknowledged append is visible to a follow-up query.
type appender struct {
	client *http.Client
	base   string
	rows   int

	batches, rowsSent, genStart, genEnd, proofFailures atomic.Int64
	cursor                                             time.Time
}

func (a *appender) run(deadline time.Time, every time.Duration) {
	// Far past any generated trace, so the proof window holds only
	// appended rows.
	a.cursor = time.Date(2031, 1, 1, 0, 0, 0, 0, time.UTC)
	windowStart := a.cursor
	fields := []string{"JobID", "User", "Account", "Partition", "Submit", "Start", "End", "Elapsed", "State", "NNodes", "NCPUs"}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for job := int64(9_000_000); time.Now().Before(deadline); {
		var sb strings.Builder
		sb.WriteString(slurm.Header(fields))
		sb.WriteByte('\n')
		for i := 0; i < a.rows; i++ {
			r := slurm.Record{
				ID:        slurm.NewJobID(job),
				User:      "appender",
				Account:   "bench",
				Partition: "batch",
				Submit:    a.cursor,
				Start:     a.cursor.Add(time.Minute),
				End:       a.cursor.Add(11 * time.Minute),
				Elapsed:   10 * time.Minute,
				State:     slurm.StateCompleted,
				NNodes:    1,
				NCPUs:     8,
			}
			job++
			a.cursor = a.cursor.Add(time.Second)
			line, err := slurm.EncodeRecord(&r, fields)
			if err != nil {
				log.Printf("append encode: %v", err)
				return
			}
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
		resp, err := a.client.Post(a.base+"/ingest", "text/plain", strings.NewReader(sb.String()))
		if err != nil {
			log.Printf("append: %v", err)
			return
		}
		var ack struct {
			Rows       int    `json:"rows"`
			Generation uint64 `json:"generation"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			log.Printf("append: status %d err %v", resp.StatusCode, err)
			return
		}
		if a.genStart.Load() == 0 {
			a.genStart.Store(int64(ack.Generation))
		}
		a.genEnd.Store(int64(ack.Generation))
		a.batches.Add(1)
		a.rowsSent.Add(int64(ack.Rows))

		// Generation proof: the acknowledged rows must be visible now.
		u := a.base + "/query?fields=JobID&steps=1&start=" + windowStart.Format("2006-01-02") +
			"&limit=" + strconv.Itoa(int(a.rowsSent.Load())+1)
		seen, gen := a.countRows(u)
		if seen < a.rowsSent.Load() || gen < uint64(ack.Generation) {
			a.proofFailures.Add(1)
			log.Printf("generation proof FAILED: appended %d rows through generation %d, query at generation %d saw %d",
				a.rowsSent.Load(), ack.Generation, gen, seen)
		}
		select {
		case <-ticker.C:
		default:
			time.Sleep(every)
		}
	}
}

func (a *appender) countRows(u string) (int64, uint64) {
	resp, err := a.client.Get(u)
	if err != nil {
		return -1, 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rows, _ := strconv.ParseInt(resp.Header.Get("X-Rows"), 10, 64)
	gen, _ := strconv.ParseUint(resp.Header.Get("X-Store-Generation"), 10, 64)
	return rows, gen
}

func get(client *http.Client, u, apiKey string) (int, error) {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("X-API-Key", apiKey)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, err
}

func getBody(client *http.Client, u string) (string, error) {
	resp, err := client.Get(u)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func fetchHealth(client *http.Client, base string) (map[string]float64, error) {
	body, err := getBody(client, base+"/healthz")
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal([]byte(body), &raw); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out, nil
}

// queryMonths derives month window starts from a cheap one-row-per-month
// probe: it reads the store's first and last submit through a full-range
// query of Submit only, then enumerates months between. Failure just
// means the month mix is skipped.
func queryMonths(client *http.Client, base string) []string {
	body, err := getBody(client, base+"/query?fields=Submit&limit=1")
	if err != nil {
		return nil
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < 2 {
		return nil
	}
	first, err := time.Parse("2006-01-02T15:04:05", strings.TrimSpace(lines[1]))
	if err != nil {
		return nil
	}
	var out []string
	for m, i := first, 0; i < 12; m, i = m.AddDate(0, 1, 0), i+1 {
		out = append(out, m.Format("2006-01"))
	}
	return out
}

// parseCache pulls the serve_cache_* counters out of Prometheus text.
func parseCache(metrics string) map[string]any {
	vals := map[string]float64{}
	for _, line := range strings.Split(metrics, "\n") {
		f := strings.Fields(line)
		if len(f) == 2 && strings.HasPrefix(f[0], "serve_cache_") {
			if v, err := strconv.ParseFloat(f[1], 64); err == nil {
				vals[strings.TrimPrefix(f[0], "serve_cache_")] = v
			}
		}
	}
	total := vals["hits_total"] + vals["misses_total"] + vals["coalesced_total"]
	rate := 0.0
	if total > 0 {
		rate = (vals["hits_total"] + vals["coalesced_total"]) / total
	}
	return map[string]any{
		"hits":      vals["hits_total"],
		"misses":    vals["misses_total"],
		"coalesced": vals["coalesced_total"],
		"evictions": vals["evictions_total"],
		"hit_rate":  round2(rate),
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }
