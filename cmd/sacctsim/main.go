// Command sacctsim queries a synthetic accounting trace the way sacct
// queries slurmdbd: field selection, a submit-time window, and record
// filters, printed as pipe-separated text.
//
// Example:
//
//	sacctsim -trace frontier.trace -S 2024-01-01 -E 2024-02-01 \
//	  -o JobID,User,State,Elapsed,NNodes -s FAILED
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"slurmsight/internal/sacct"
	"slurmsight/internal/slurm"
)

// openStore loads a trace in the requested store format. The binary
// columnar format opens lazily — a projected query (-o) then decodes
// only the selected columns.
func openStore(path, format string) (*sacct.Store, int, error) {
	switch format {
	case "auto":
		return sacct.OpenFile(path)
	case "text":
		return sacct.LoadFile(path)
	case "binary":
		st, err := sacct.OpenBinary(path)
		return st, 0, err
	default:
		return nil, 0, fmt.Errorf("unknown -store-format %q (want auto, text, or binary)", format)
	}
}

func parseDay(s, name string) time.Time {
	if s == "" {
		return time.Time{}
	}
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		log.Fatalf("bad %s: %v", name, err)
	}
	return t
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sacctsim: ")

	var (
		trace     = flag.String("trace", "trace.txt", "accounting dump to query")
		startS    = flag.String("S", "", "window start (YYYY-MM-DD)")
		endS      = flag.String("E", "", "window end, exclusive (YYYY-MM-DD)")
		fields    = flag.String("o", "", "comma-separated output fields (default: full curated selection)")
		steps     = flag.Bool("steps", false, "include step records (default: jobs only, like sacct -X)")
		user      = flag.String("u", "", "filter by user")
		account   = flag.String("A", "", "filter by account")
		partition = flag.String("r", "", "filter by partition")
		state     = flag.String("s", "", "filter by final state")
		listOnly  = flag.Bool("months", false, "list populated months and exit")
		jobID     = flag.String("j", "", "show one job and its steps, then exit")
		format    = flag.String("store-format", "auto",
			"trace format: auto (sniff the magic), text, or binary (columnar)")
	)
	flag.Parse()

	store, malformed, err := openStore(*trace, *format)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	if malformed > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d malformed rows dropped on load\n", malformed)
	}
	if *listOnly {
		for _, m := range store.Months() {
			fmt.Println(m)
		}
		return
	}

	if *jobID != "" {
		id, err := slurm.ParseJobID(*jobID)
		if err != nil {
			log.Fatal(err)
		}
		recs, err := store.Select(sacct.Query{IncludeSteps: true})
		if err != nil {
			log.Fatal(err)
		}
		shown := 0
		sel := []string{"JobID", "User", "State", "Start", "Elapsed", "Timelimit", "NNodes", "NCPUS", "Backfill", "Reason"}
		fmt.Println(slurm.Header(sel))
		for i := range recs {
			if recs[i].ID.Job != id.Job {
				continue
			}
			line, err := slurm.EncodeRecord(&recs[i], sel)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(line)
			shown++
		}
		if shown == 0 {
			log.Fatalf("job %s not found", *jobID)
		}
		return
	}

	q := sacct.Query{
		Start:        parseDay(*startS, "-S"),
		End:          parseDay(*endS, "-E"),
		IncludeSteps: *steps,
		User:         *user,
		Account:      *account,
		Partition:    *partition,
		State:        *state,
	}
	if *fields != "" {
		q.Fields = strings.Split(*fields, ",")
	}
	n, err := store.Write(os.Stdout, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d rows\n", n)
}
