package main

import (
	"net/http"
	"time"

	"slurmsight/internal/llm"
	"slurmsight/internal/obs"
)

// serverConfig collects the flag values behind the endpoint.
type serverConfig struct {
	key         string
	rate, burst float64

	fault429, fault500, faultStall float64
	stallFor, retryAfter           time.Duration
	faultSeed                      int64
}

// newServer configures the analyst endpoint and its fault policy.
func newServer(cfg serverConfig) (*llm.Server, *llm.FaultPolicy) {
	var server *llm.Server
	if cfg.key != "" {
		server = llm.NewServer(cfg.key)
	} else {
		server = llm.NewServer()
	}
	server.RatePerSec = cfg.rate
	server.Burst = cfg.burst
	faults := &llm.FaultPolicy{
		Rate429:    cfg.fault429,
		Rate500:    cfg.fault500,
		RateStall:  cfg.faultStall,
		StallFor:   cfg.stallFor,
		RetryAfter: cfg.retryAfter,
		Seed:       cfg.faultSeed,
	}
	return server, faults
}

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps the API handler with request accounting: total and
// per-class (2xx/4xx/5xx) counters, a latency histogram, and an
// in-flight gauge. It sits outside the fault middleware so injected
// failures are counted exactly as clients observe them.
func instrument(m *obs.Registry, next http.Handler) http.Handler {
	requests := m.Counter("llmserve_requests_total")
	class2xx := m.Counter("llmserve_responses_2xx_total")
	class4xx := m.Counter("llmserve_responses_4xx_total")
	class5xx := m.Counter("llmserve_responses_5xx_total")
	latency := m.Histogram("llmserve_request_seconds", obs.LatencyBuckets)
	inflight := m.Gauge("llmserve_inflight_requests")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		inflight.Add(1)
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		latency.ObserveSince(t0)
		inflight.Add(-1)
		switch {
		case sw.status >= 500:
			class5xx.Inc()
		case sw.status >= 400:
			class4xx.Inc()
		default:
			class2xx.Inc()
		}
	})
}
