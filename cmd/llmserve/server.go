package main

import "slurmsight/internal/llm"

// newServer configures the analyst endpoint from flags.
func newServer(key string, rate, burst float64) *llm.Server {
	var server *llm.Server
	if key != "" {
		server = llm.NewServer(key)
	} else {
		server = llm.NewServer()
	}
	server.RatePerSec = rate
	server.Burst = burst
	return server
}
