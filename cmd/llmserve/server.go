package main

import (
	"time"

	"slurmsight/internal/llm"
)

// serverConfig collects the flag values behind the endpoint.
type serverConfig struct {
	key         string
	rate, burst float64

	fault429, fault500, faultStall float64
	stallFor, retryAfter           time.Duration
	faultSeed                      int64
}

// newServer configures the analyst endpoint and its fault policy.
func newServer(cfg serverConfig) (*llm.Server, *llm.FaultPolicy) {
	var server *llm.Server
	if cfg.key != "" {
		server = llm.NewServer(cfg.key)
	} else {
		server = llm.NewServer()
	}
	server.RatePerSec = cfg.rate
	server.Burst = cfg.burst
	faults := &llm.FaultPolicy{
		Rate429:    cfg.fault429,
		Rate500:    cfg.fault500,
		RateStall:  cfg.faultStall,
		StallFor:   cfg.stallFor,
		RetryAfter: cfg.retryAfter,
		Seed:       cfg.faultSeed,
	}
	return server, faults
}
