// Command llmserve runs the mock multimodal LLM API: the deterministic
// chart analyst behind a Gemma-style JSON endpoint with bearer-token auth
// and rate limiting. The workflow's AI stages point at it via -llm-url.
//
// Example:
//
//	llmserve -addr :9090 -key sk-local-dev
//
// A fault-injection mode turns the server into a deliberately flaky
// upstream for exercising the workflow's retry layer:
//
//	llmserve -addr :9090 -key sk-local-dev \
//	  -fault-429 0.2 -fault-500 0.1 -fault-stall 0.05 -fault-seed 7
package main

import (
	"flag"
	"log"
	"net/http"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llmserve: ")

	var (
		addr  = flag.String("addr", ":9090", "listen address")
		key   = flag.String("key", "", "API key (empty disables auth)")
		rate  = flag.Float64("rate", 10, "requests per second per key (0 disables limiting)")
		burst = flag.Float64("burst", 20, "rate-limit burst size")

		fault429   = flag.Float64("fault-429", 0, "probability of an injected 429 per request")
		fault500   = flag.Float64("fault-500", 0, "probability of an injected 500 per request")
		faultStall = flag.Float64("fault-stall", 0, "probability of a stalled response per request")
		stallFor   = flag.Duration("fault-stall-for", 2*time.Second, "how long a stalled response hangs")
		retryAfter = flag.Duration("fault-retry-after", time.Second, "Retry-After hint on injected 429s")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for the fault schedule")
	)
	flag.Parse()

	server, faults := newServer(serverConfig{
		key:        *key,
		rate:       *rate,
		burst:      *burst,
		fault429:   *fault429,
		fault500:   *fault500,
		faultStall: *faultStall,
		stallFor:   *stallFor,
		retryAfter: *retryAfter,
		faultSeed:  *faultSeed,
	})
	handler := server.Handler()
	if faults.Active() {
		log.Printf("fault injection on: 429=%.2f 500=%.2f stall=%.2f (seed %d)",
			*fault429, *fault500, *faultStall, *faultSeed)
		handler = faults.Middleware(handler)
	}
	log.Printf("serving the %s analyst on %s", server.ModelName, *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(httpServer.ListenAndServe())
}
