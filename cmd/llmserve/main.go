// Command llmserve runs the mock multimodal LLM API: the deterministic
// chart analyst behind a Gemma-style JSON endpoint with bearer-token auth
// and rate limiting. The workflow's AI stages point at it via -llm-url.
//
// Example:
//
//	llmserve -addr :9090 -key sk-local-dev
package main

import (
	"flag"
	"log"
	"net/http"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llmserve: ")

	var (
		addr  = flag.String("addr", ":9090", "listen address")
		key   = flag.String("key", "", "API key (empty disables auth)")
		rate  = flag.Float64("rate", 10, "requests per second per key (0 disables limiting)")
		burst = flag.Float64("burst", 20, "rate-limit burst size")
	)
	flag.Parse()

	server := newServer(*key, *rate, *burst)
	log.Printf("serving the %s analyst on %s", server.ModelName, *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(httpServer.ListenAndServe())
}
