// Command llmserve runs the mock multimodal LLM API: the deterministic
// chart analyst behind a Gemma-style JSON endpoint with bearer-token auth
// and rate limiting. The workflow's AI stages point at it via -llm-url.
//
// Example:
//
//	llmserve -addr :9090 -key sk-local-dev
//
// A fault-injection mode turns the server into a deliberately flaky
// upstream for exercising the workflow's retry layer:
//
//	llmserve -addr :9090 -key sk-local-dev \
//	  -fault-429 0.2 -fault-500 0.1 -fault-stall 0.05 -fault-seed 7
//
// The server exposes its own operational surface alongside the API:
// Prometheus-style counters at /metrics, expvar at /debug/vars, the
// flight recorder at /debug/requests, and the standard pprof profiles
// under /debug/pprof/. SIGINT/SIGTERM drain in-flight requests before
// exit (-grace bounds the drain).
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"time"

	"slurmsight/internal/obs"
	"slurmsight/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llmserve: ")

	var (
		addr  = flag.String("addr", ":9090", "listen address")
		key   = flag.String("key", "", "API key (empty disables auth)")
		rate  = flag.Float64("rate", 10, "requests per second per key (0 disables limiting)")
		burst = flag.Float64("burst", 20, "rate-limit burst size")
		grace = flag.Duration("grace", 10*time.Second, "shutdown drain budget for in-flight requests")

		fault429   = flag.Float64("fault-429", 0, "probability of an injected 429 per request")
		fault500   = flag.Float64("fault-500", 0, "probability of an injected 500 per request")
		faultStall = flag.Float64("fault-stall", 0, "probability of a stalled response per request")
		stallFor   = flag.Duration("fault-stall-for", 2*time.Second, "how long a stalled response hangs")
		retryAfter = flag.Duration("fault-retry-after", time.Second, "Retry-After hint on injected 429s")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for the fault schedule")

		slow       = flag.Duration("slow", 250*time.Millisecond, "log requests slower than this (0 disables the slow log)")
		flightRing = flag.Int("flight-ring", 256, "flight recorder: recent traces retained (negative disables recording)")
		flightTail = flag.Int("flight-tail", 8, "flight recorder: slowest traces kept per route")
	)
	flag.Parse()

	server, faults := newServer(serverConfig{
		key:        *key,
		rate:       *rate,
		burst:      *burst,
		fault429:   *fault429,
		fault500:   *fault500,
		faultStall: *faultStall,
		stallFor:   *stallFor,
		retryAfter: *retryAfter,
		faultSeed:  *faultSeed,
	})
	handler := server.Handler()
	if faults.Active() {
		log.Printf("fault injection on: 429=%.2f 500=%.2f stall=%.2f (seed %d)",
			*fault429, *fault500, *faultStall, *faultSeed)
		handler = faults.Middleware(handler)
	}

	// Metrics wrap the fault middleware so injected 429/500s are counted
	// exactly as clients see them.
	metrics := obs.NewRegistry()
	metrics.PublishExpvar("llmserve")
	recorder := obs.NewRecorder(*flightRing, *flightTail)
	if *flightRing < 0 {
		recorder = nil
	}
	mux := http.NewServeMux()
	mux.Handle("/", serve.Middleware{
		Registry:      metrics,
		Prefix:        "llmserve",
		Recorder:      recorder,
		SlowThreshold: *slow,
		Log:           slog.New(slog.NewJSONHandler(os.Stderr, nil)),
	}.Wrap(handler))
	serve.MountDebug(mux, metrics, recorder)

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	log.Printf("serving the %s analyst on %s (metrics: /metrics, profiles: /debug/pprof/)",
		server.ModelName, *addr)
	if err := serve.ListenAndDrain(context.Background(), httpServer, *grace, log.Printf); err != nil {
		log.Fatal(err)
	}
}
