// Command calibrate fits a synthetic-workload profile to an existing
// accounting trace and optionally regenerates a statistical double of it —
// the path a site takes to produce a shareable synthetic mirror of
// proprietary sacct data.
//
// Example:
//
//	calibrate -trace frontier.trace -system frontier \
//	  -regen double.trace -days 30 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/sacct"
	"slurmsight/internal/sched"
	"slurmsight/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")

	var (
		trace  = flag.String("trace", "trace.txt", "accounting dump to calibrate against")
		system = flag.String("system", "frontier", "system model: frontier or andes")
		regen  = flag.String("regen", "", "write a regenerated synthetic double to this path")
		days   = flag.Int("days", 30, "days of workload to regenerate")
		seed   = flag.Int64("seed", 1, "regeneration seed")
		save   = flag.String("save-profile", "", "write the fitted profile as JSON")
	)
	flag.Parse()

	sys, err := cluster.ByName(*system)
	if err != nil {
		log.Fatal(err)
	}
	store, malformed, err := sacct.LoadFile(*trace)
	if err != nil {
		log.Fatal(err)
	}
	if malformed > 0 {
		log.Printf("warning: %d malformed rows dropped on load", malformed)
	}
	records, err := store.Select(sacct.Query{IncludeSteps: true})
	if err != nil {
		log.Fatal(err)
	}

	profile, err := tracegen.FitProfile("fitted-"+*system, sys, records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted profile %q from %d records:\n", profile.Name, len(records))
	fmt.Printf("  users: %d (activity skew %.2f, failure spread %.2f)\n",
		profile.Users, profile.UserSkew, profile.FailSpread)
	fmt.Printf("  submission rate: %.1f jobs/day\n", profile.JobsPerDay)
	for _, c := range profile.Classes {
		fmt.Printf("  class %-8s weight %.2f  fail %.2f cancel %.2f timeout %.2f  array %.2f\n",
			c.Name, c.Weight, c.FailRate, c.CancelRate, c.TimeoutRate, c.ArrayProb)
	}
	if *save != "" {
		if err := tracegen.SaveProfile(&profile, *save); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote fitted profile to %s\n", *save)
	}
	if *regen == "" {
		return
	}

	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: profile, Start: start, End: start.AddDate(0, 0, *days),
	}}, *seed)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := sched.New(sched.DefaultConfig(sys))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: true})
	if err != nil {
		log.Fatal(err)
	}
	double := sacct.NewStore()
	if err := double.Ingest(res); err != nil {
		log.Fatal(err)
	}
	double.Finalize()
	if err := double.DumpFile(*regen); err != nil {
		log.Fatal(err)
	}
	regenRecords, err := double.Select(sacct.Query{IncludeSteps: true})
	if err != nil {
		log.Fatal(err)
	}

	rep := tracegen.CompareTraces(records, regenRecords)
	fmt.Fprintf(os.Stderr, "\nwrote %d records to %s\n", double.Len(), *regen)
	fmt.Printf("\n%-22s %12s %12s\n", "calibration check", "original", "double")
	row := func(label string, v [2]float64, format string) {
		fmt.Printf("%-22s %12s %12s\n", label,
			fmt.Sprintf(format, v[0]), fmt.Sprintf(format, v[1]))
	}
	fmt.Printf("%-22s %12d %12d\n", "jobs", rep.Jobs[0], rep.Jobs[1])
	row("jobs/day", rep.JobsPerDay, "%.1f")
	row("median nodes", rep.MedianNodes, "%.0f")
	row("median runtime (s)", rep.MedianRuntimeS, "%.0f")
	row("median over-ratio", rep.MedianOverRatio, "%.2f")
	row("failed share", rep.FailedShare, "%.3f")
}
