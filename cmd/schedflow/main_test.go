package main

import (
	"testing"

	"slurmsight/internal/sacct"
)

func TestParseDates(t *testing.T) {
	cases := []struct {
		in        string
		wantStart string
		wantEnd   string
	}{
		// Month form: END month is inclusive.
		{"2024-01:2024-12", "2024-01-01", "2025-01-01"},
		{"2024-03:2024-03", "2024-03-01", "2024-04-01"},
		// Full-date form: END is exclusive as given.
		{"2024-01-15:2024-02-20", "2024-01-15", "2024-02-20"},
		// Year form.
		{"2023:2024", "2023-01-01", "2025-01-01"},
		// Mixed forms.
		{"2024-01-15:2024-02", "2024-01-15", "2024-03-01"},
	}
	for _, c := range cases {
		start, end, err := parseDates(c.in, sacct.Monthly)
		if err != nil {
			t.Errorf("parseDates(%q): %v", c.in, err)
			continue
		}
		if got := start.Format("2006-01-02"); got != c.wantStart {
			t.Errorf("parseDates(%q) start = %s, want %s", c.in, got, c.wantStart)
		}
		if got := end.Format("2006-01-02"); got != c.wantEnd {
			t.Errorf("parseDates(%q) end = %s, want %s", c.in, got, c.wantEnd)
		}
	}
}

func TestParseDatesErrors(t *testing.T) {
	for _, in := range []string{
		"", "2024-01", "junk:2024-02", "2024-02:junk",
		"2024-05:2024-01", // empty window
		"2024-01-10:2024-01-10",
	} {
		if _, _, err := parseDates(in, sacct.Monthly); err == nil {
			t.Errorf("parseDates(%q): want error", in)
		}
	}
}

func TestMonthsRangeEmpty(t *testing.T) {
	if got := monthsRange(sacct.NewStore()); got != "empty" {
		t.Errorf("monthsRange(empty) = %q", got)
	}
}

func TestSecsFormatting(t *testing.T) {
	if got := secs(90); got != "1m30s" {
		t.Errorf("secs(90) = %q", got)
	}
	if got := secs(0); got != "0s" {
		t.Errorf("secs(0) = %q", got)
	}
}
