// Command schedflow runs the hybrid analysis workflow — the Go
// counterpart of the paper's Swift/T invocation:
//
//	swift-t -n N workflow.swift --date_spec=<spec> --dates=<dates> \
//	  --cache=<dir> --data=<dir>
//
// becomes
//
//	schedflow -n N -trace frontier.trace -date-spec months \
//	  -dates 2024-01:2024-12 -cache /tmp/ss-cache -data out/
//
// Add -ai -llm-url http://localhost:9090 -llm-key sk-local-dev to run the
// LLM insight and comparison stages, and -serve :8080 to serve the
// dashboard when the run finishes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"slurmsight/internal/core"
	"slurmsight/internal/dashboard"
	"slurmsight/internal/dataflow"
	"slurmsight/internal/llm"
	"slurmsight/internal/obs"
	"slurmsight/internal/sacct"
	srvpkg "slurmsight/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("schedflow: ")

	var (
		workers = flag.Int("n", 4, "workflow concurrency (swift-t -n)")
		ingestW = flag.Int("ingest-workers", 1,
			"chunk decoders per period file (>1 selects the parallel byte ingest plane, 0 = GOMAXPROCS)")
		trace       = flag.String("trace", "trace.txt", "accounting dump to analyze")
		storeFormat = flag.String("store-format", "auto",
			"trace format: auto (sniff the magic), text, or binary (columnar)")
		system   = flag.String("system", "frontier", "system name for chart titles")
		dateSpec = flag.String("date-spec", "months", "retrieval granularity: months or years")
		dates    = flag.String("dates", "", "window as START:END (2024-01:2024-12 or 2024-01-01:2024-12-31)")
		cacheDir = flag.String("cache", "", "fast cache directory (default <data>/cache)")
		dataDir  = flag.String("data", "out", "permanent artifact directory")
		useCache = flag.Bool("use-cache", false, "reuse previously fetched period files")
		topUsers = flag.Int("top-users", 50, "users shown in the states figure")
		enableAI = flag.Bool("ai", false, "run the LLM insight/compare subworkflow")
		llmURL   = flag.String("llm-url", "", "LLM endpoint base URL (required with -ai)")
		llmKey   = flag.String("llm-key", "", "LLM API key")

		taskAttempts = flag.Int("task-attempts", 1, "attempts per workflow task (1 = no retries)")
		taskTimeout  = flag.Duration("task-timeout", 0, "per-attempt task timeout (0 = none)")
		taskBackoff  = flag.Duration("task-backoff", 250*time.Millisecond, "initial delay between task retries")
		continueOn   = flag.Bool("continue-on-error", false,
			"keep independent branches running past a failed task and report every failure")
		llmRetries = flag.Int("llm-retries", -1, "LLM client retries (-1 = default 3, 0 = none)")
		llmBackoff = flag.Duration("llm-backoff", 0, "initial LLM retry backoff (0 = client default)")
		serve      = flag.String("serve", "", "serve the dashboard at this address after the run")
		extended   = flag.Bool("extended", false, "add operator figures (load timeline, queue depth)")
		nodes      = flag.Int("nodes", 0, "system node capacity for utilization summaries")
		ask        = flag.String("ask", "", "ask the conversational agent a question after the run")
		traceOut   = flag.String("trace-out", "",
			"write a Chrome trace-event JSON of the run here (load in Perfetto or chrome://tracing)")
	)
	flag.Parse()

	gran, err := sacct.ParseGranularity(*dateSpec)
	if err != nil {
		log.Fatal(err)
	}
	start, end, err := parseDates(*dates, gran)
	if err != nil {
		log.Fatal(err)
	}

	store, malformed, err := openStore(*trace, *storeFormat)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	if malformed > 0 {
		log.Printf("warning: %d malformed rows dropped while loading %s", malformed, *trace)
	}
	log.Printf("loaded %d records (%v)", store.Len(), monthsRange(store))
	resolvedIngest := *ingestW
	if resolvedIngest == 0 {
		resolvedIngest = runtime.GOMAXPROCS(0)
	}
	log.Printf("ingest workers: %d", resolvedIngest)

	cfg := core.Config{
		SystemName:      *system,
		Store:           store,
		OutputDir:       *dataDir,
		CacheDir:        *cacheDir,
		Granularity:     gran,
		Start:           start,
		End:             end,
		UseCache:        *useCache,
		Workers:         *workers,
		IngestWorkers:   *ingestW,
		TopUsers:        *topUsers,
		EnableAI:        *enableAI,
		ExtendedFigures: *extended,
		SystemNodes:     *nodes,
		TaskAttempts:    *taskAttempts,
		TaskTimeout:     *taskTimeout,
		TaskBackoff:     *taskBackoff,
		ContinueOnError: *continueOn,
	}
	var metrics *obs.Registry
	if *traceOut != "" {
		cfg.Tracer = obs.NewTracer()
		metrics = obs.NewRegistry()
		cfg.Metrics = metrics
	}
	if *enableAI {
		if *llmURL == "" {
			log.Fatal("-ai requires -llm-url")
		}
		client := llm.NewClient(*llmURL, *llmKey)
		client.MaxRetries = *llmRetries
		if *llmBackoff > 0 {
			client.Backoff = *llmBackoff
		}
		client.Metrics = metrics
		cfg.LLM = client
	}

	t0 := time.Now()
	art, err := core.Run(context.Background(), cfg)
	var runErr *dataflow.RunError
	if errors.As(err, &runErr) {
		for _, e := range runErr.Errs {
			log.Printf("warning: %v", e)
		}
		log.Printf("warning: %d stages failed; continuing with the surviving branches", len(runErr.Errs))
	} else if err != nil {
		log.Fatal(err)
	}
	ok, failed, skipped, retried := art.Trace.Counts()
	log.Printf("workflow complete in %s: %d records curated (%d malformed dropped), "+
		"%d figures, max stage concurrency %d",
		time.Since(t0).Round(time.Millisecond), art.Records,
		art.Curation.Malformed, len(art.Figures), art.Trace.MaxConcurrency)
	log.Printf("stages: %d ok, %d failed, %d skipped, %d retried (outcome graph: %s)",
		ok, failed, skipped, retried, art.StatusDOTPath)
	log.Printf("dashboard: %s", art.DashboardPath)
	printSummaries(art)

	if *traceOut != "" {
		if err := writeChromeTrace(cfg.Tracer, *traceOut); err != nil {
			log.Fatal(err)
		}
		cfg.Tracer.WriteSummary(os.Stderr)
		log.Printf("run trace: %s (Chrome trace-event JSON; machine-readable task trace: %s)",
			*traceOut, art.TraceJSONPath)
	}

	if *ask != "" {
		agent := llm.NewAgent(art.Facts(*system))
		reply := agent.Ask(*ask, "")
		fmt.Fprintf(os.Stderr, "\n== agent [%s] ==\n%s\n", reply.Topic, reply.Text)
	}

	if *serve != "" {
		srv, err := dashboard.New(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		if metrics == nil {
			metrics = obs.NewRegistry()
		}
		recorder := obs.NewRecorder(0, 0)
		mux := http.NewServeMux()
		mux.Handle("/", srvpkg.Middleware{
			Registry:      metrics,
			Prefix:        "schedflow",
			Recorder:      recorder,
			SlowThreshold: 250 * time.Millisecond,
			Log:           slog.New(slog.NewJSONHandler(os.Stderr, nil)),
		}.Wrap(srv.Handler()))
		srvpkg.MountDebug(mux, metrics, recorder)
		log.Printf("serving dashboard on %s", *serve)
		httpServer := &http.Server{
			Addr:              *serve,
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		if err := srvpkg.ListenAndDrain(context.Background(), httpServer, 5*time.Second, log.Printf); err != nil {
			log.Fatal(err)
		}
	}
}

// writeChromeTrace exports the run's spans in Chrome trace-event format.
func writeChromeTrace(tr *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openStore loads a trace in the requested store format. The binary
// columnar format reloads in O(open + footer) and defers shard decodes
// to the workflow's first scan.
func openStore(path, format string) (*sacct.Store, int, error) {
	switch format {
	case "auto":
		return sacct.OpenFile(path)
	case "text":
		return sacct.LoadFile(path)
	case "binary":
		st, err := sacct.OpenBinary(path)
		return st, 0, err
	default:
		return nil, 0, fmt.Errorf("unknown -store-format %q (want auto, text, or binary)", format)
	}
}

// parseDates accepts 2024-01:2024-12 (month granularity) or full dates.
func parseDates(spec string, gran sacct.Granularity) (time.Time, time.Time, error) {
	if spec == "" {
		return time.Time{}, time.Time{}, fmt.Errorf("-dates is required (START:END)")
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return time.Time{}, time.Time{}, fmt.Errorf("bad -dates %q, want START:END", spec)
	}
	parse := func(s string, isEnd bool) (time.Time, error) {
		if t, err := time.Parse("2006-01-02", s); err == nil {
			return t, nil
		}
		if m, err := sacct.ParseMonth(s); err == nil {
			if isEnd {
				return m.Next().Start(), nil // END month is inclusive
			}
			return m.Start(), nil
		}
		if t, err := time.Parse("2006", s); err == nil {
			if isEnd {
				return t.AddDate(1, 0, 0), nil
			}
			return t, nil
		}
		return time.Time{}, fmt.Errorf("unparseable date %q", s)
	}
	start, err := parse(parts[0], false)
	if err != nil {
		return time.Time{}, time.Time{}, err
	}
	end, err := parse(parts[1], true)
	if err != nil {
		return time.Time{}, time.Time{}, err
	}
	if !start.Before(end) {
		return time.Time{}, time.Time{}, fmt.Errorf("-dates window is empty")
	}
	return start, end, nil
}

func monthsRange(store *sacct.Store) string {
	months := store.Months()
	if len(months) == 0 {
		return "empty"
	}
	return fmt.Sprintf("%s … %s", months[0], months[len(months)-1])
}

func printSummaries(art *core.Artifacts) {
	s := art.Summaries
	w := os.Stderr
	fmt.Fprintf(w, "\n== figure summaries ==\n")
	for _, v := range s.Volume {
		fmt.Fprintf(w, "fig1  %d: %d jobs, %d steps\n", v.Year, v.Jobs, v.Steps)
	}
	fmt.Fprintf(w, "fig1  steps per job: %.1f\n", s.StepJobRatio)
	fmt.Fprintf(w, "fig3  median %0.f nodes / %s; small-short %.0f%%, large-long %.1f%%\n",
		s.Scale.MedianNodes, secs(s.Scale.MedianElapsedSec),
		100*s.Scale.SmallShortShare, 100*s.Scale.LargeLongShare)
	fmt.Fprintf(w, "fig4  median wait %s, p90 %s, long-tail(>100ks) %.1f%%\n",
		secs(s.Waits.P50), secs(s.Waits.P90), 100*s.Waits.LongWaits)
	fmt.Fprintf(w, "fig5  %d users; mean failed share %.1f%%, top-decile owns %.0f%% of failures\n",
		s.Users.Users, 100*s.Users.MeanFailedShare, 100*s.Users.TopDecileFailures)
	fmt.Fprintf(w, "fig6  %.0f%% of jobs use <75%% of request; median use %.0f%%; "+
		"%.1f%% backfilled; reclaimable %.0f node-hours\n",
		100*s.Backfill.OverestimateShare, 100*s.Backfill.MedianUseRatio,
		100*s.Backfill.BackfilledShare, s.Reclaimable)
}

func secs(v float64) string {
	return (time.Duration(v) * time.Second).Round(time.Second).String()
}
