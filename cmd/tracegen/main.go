// Command tracegen generates a synthetic Slurm accounting trace: it
// samples a workload from a system profile, executes it through the
// scheduler simulator, and writes the resulting accounting database dump
// (jobs and steps, pipe-separated) to a file that the other tools consume.
//
// Example:
//
//	tracegen -system frontier -start 2024-01-01 -end 2024-06-30 \
//	  -jobs-per-day 400 -seed 42 -out frontier.trace
//
// The special -scenario full-frontier covers the paper's 2021–2024
// Figure 1 window, acceptance era included.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/sacct"
	"slurmsight/internal/sched"
	"slurmsight/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		system     = flag.String("system", "frontier", "system profile: frontier or andes")
		scenario   = flag.String("scenario", "", "preset scenario: full-frontier (2021-2024, acceptance era included)")
		start      = flag.String("start", "2024-01-01", "window start (YYYY-MM-DD)")
		end        = flag.String("end", "2024-03-01", "window end, exclusive (YYYY-MM-DD)")
		jobsPerDay = flag.Float64("jobs-per-day", 0, "override the profile submission rate")
		users      = flag.Int("users", 0, "override the profile user population")
		seed       = flag.Int64("seed", 1, "workload RNG seed")
		out        = flag.String("out", "trace.txt", "output dump path")
		format     = flag.String("format", "text", "dump format: text (pipe-separated) or binary (columnar)")
		profile    = flag.String("profile", "", "JSON workload profile (overrides -system/-scenario)")
		noSteps    = flag.Bool("no-steps", false, "skip step records (job-level trace only)")
		noBackfill = flag.Bool("no-backfill", false, "disable EASY backfill in the simulator")
		backfill   = flag.String("backfill", "", "backfill strategy: easy, conservative, or none (overrides -no-backfill)")
		nodeSel    = flag.String("node-select", "", "node selection policy: pool, firstfit, or bestfit")
		resort     = flag.Duration("resort-every", 0, "incremental re-prioritisation cadence (0 = exact per-pass recompute)")
	)
	flag.Parse()

	startT, err := time.Parse("2006-01-02", *start)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	endT, err := time.Parse("2006-01-02", *end)
	if err != nil {
		log.Fatalf("bad -end: %v", err)
	}

	var phases []tracegen.Phase
	var sys *cluster.System
	switch {
	case *profile != "":
		p, err := tracegen.LoadProfile(*profile)
		if err != nil {
			log.Fatal(err)
		}
		if p.System == nil {
			log.Fatalf("profile %s carries no system model", *profile)
		}
		sys = p.System
		phases = []tracegen.Phase{{Profile: p, Start: startT, End: endT}}
	case *scenario == "full-frontier":
		sys = cluster.Frontier()
		phases = tracegen.FrontierScenario(startT, endT)
	case *scenario != "":
		log.Fatalf("unknown scenario %q", *scenario)
	default:
		var builtin tracegen.Profile
		switch *system {
		case "frontier":
			sys = cluster.Frontier()
			builtin = tracegen.FrontierProfile()
		case "andes":
			sys = cluster.Andes()
			builtin = tracegen.AndesProfile()
		default:
			log.Fatalf("unknown system %q", *system)
		}
		phases = []tracegen.Phase{{Profile: builtin, Start: startT, End: endT}}
	}
	for i := range phases {
		if *jobsPerDay > 0 {
			phases[i].Profile.JobsPerDay = *jobsPerDay
		}
		if *users > 0 {
			phases[i].Profile.Users = *users
		}
	}

	reqs, err := tracegen.Generate(phases, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d submissions\n", len(reqs))

	cfg := sched.DefaultConfig(sys)
	cfg.EnableBackfill = !*noBackfill
	cfg.Backfill = *backfill
	cfg.NodeSelect = *nodeSel
	cfg.ResortEvery = *resort
	cfg.Seed = *seed
	sim, err := sched.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: !*noSteps})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"simulated: %d jobs, %d steps, %.1f%% utilization, %d backfilled, mean wait %s\n",
		len(res.Jobs), len(res.Steps), 100*res.Stats.Utilization(),
		res.Stats.Backfilled, res.Stats.MeanWait().Round(time.Second))

	store := sacct.NewStore()
	if err := store.Ingest(res); err != nil {
		log.Fatal(err)
	}
	store.Finalize()
	switch *format {
	case "text":
		err = store.DumpFile(*out)
	case "binary":
		err = store.DumpBinaryFile(*out)
	default:
		err = fmt.Errorf("unknown -format %q (want text or binary)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d records to %s (%s)\n", store.Len(), *out, *format)
}
