// Package slurmsight reproduces "An LLM-enabled Workflow for Understanding
// and Evolving HPC Scheduling Practices" (WISDOM @ ICPP 2025) as a
// self-contained Go system: a Slurm accounting data model, a synthetic
// workload generator and scheduler simulator standing in for OLCF's
// proprietary traces, a sacct-style query engine, a dataflow composition
// engine (the Swift/T substitute), SVG/HTML/PNG chart rendering (the
// Plotly and HTML2PNG substitutes), a deterministic multimodal-LLM analyst
// behind a real HTTP API (the Gemma 3 substitute), and the hybrid analysis
// workflow that ties them together.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmark harness in bench_test.go
// regenerates every table and figure of the paper's evaluation.
package slurmsight
