package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"slurmsight/internal/analyze"
	"slurmsight/internal/llm"
	"slurmsight/internal/plot"
	"slurmsight/internal/raster"
	"slurmsight/internal/sacct"
	"slurmsight/internal/slurm"
)

// Member is one system in a federated analysis.
type Member struct {
	Config Config
}

// FederatedArtifacts is the product of a multi-cluster run: each member's
// own artifacts plus the cross-facility comparison layer — the paper's
// "multi-cluster and federated analytics" future-work item.
type FederatedArtifacts struct {
	Members map[string]*Artifacts
	// Comparison quantifies the pairwise contrast of the first two
	// members (the Frontier/Andes §4.3 shape).
	Comparison *analyze.SystemComparison
	// ComparisonChartPath is the side-by-side metric chart.
	ComparisonChartPath string
	// IndexPath is the federated dashboard page linking every member.
	IndexPath string
	// ComparePath is the LLM cross-facility interpretation (when AI ran).
	ComparePath string
}

// RunFederated executes the workflow for every member under
// outDir/<system> and builds the cross-facility layer. Members run
// sequentially (each already parallelises internally); at least two are
// required.
func RunFederated(ctx context.Context, outDir string, members []Member) (*FederatedArtifacts, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("core: federated analysis needs at least 2 members, got %d", len(members))
	}
	if outDir == "" {
		return nil, fmt.Errorf("core: federated analysis needs an output directory")
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	fed := &FederatedArtifacts{Members: map[string]*Artifacts{}}
	names := make([]string, 0, len(members))
	jobsByName := map[string][]slurm.Record{}
	var aiClient *llm.Client
	for i := range members {
		cfg := members[i].Config
		if cfg.SystemName == "" {
			return nil, fmt.Errorf("core: federated member %d has no system name", i)
		}
		if _, dup := fed.Members[cfg.SystemName]; dup {
			return nil, fmt.Errorf("core: duplicate federated member %q", cfg.SystemName)
		}
		if cfg.OutputDir == "" {
			cfg.OutputDir = filepath.Join(outDir, cfg.SystemName)
		}
		art, err := Run(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: member %s: %w", cfg.SystemName, err)
		}
		fed.Members[cfg.SystemName] = art
		names = append(names, cfg.SystemName)
		jobs, err := cfg.Store.Select(sacct.Query{Start: cfg.Start, End: cfg.End})
		if err != nil {
			return nil, err
		}
		jobsByName[cfg.SystemName] = jobs
		if cfg.EnableAI && aiClient == nil {
			aiClient = cfg.LLM
		}
	}

	a, b := names[0], names[1]
	cmp := analyze.CompareSystems(a, jobsByName[a], b, jobsByName[b])
	fed.Comparison = &cmp

	chart := ComparisonChart(&cmp)
	fed.ComparisonChartPath = filepath.Join(outDir, "federated-comparison.html")
	page, err := plot.HTML(chart, 960, 540)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(fed.ComparisonChartPath, page, 0o644); err != nil {
		return nil, err
	}

	fed.IndexPath = filepath.Join(outDir, "federated.html")
	if err := os.WriteFile(fed.IndexPath, federatedIndex(names, fed), 0o644); err != nil {
		return nil, err
	}

	// Cross-facility LLM comparison: the two systems' backfill figures
	// side by side (the §4.3 narrative, machine-generated).
	if aiClient != nil {
		chartA := BackfillChart(a, jobsByName[a])
		chartB := BackfillChart(b, jobsByName[b])
		pngA, err := raster.PNG(chartA, 960, 540)
		if err != nil {
			return nil, err
		}
		pngB, err := raster.PNG(chartB, 960, 540)
		if err != nil {
			return nil, err
		}
		imgA, err := llm.EncodeImage(a, pngA, chartA)
		if err != nil {
			return nil, err
		}
		imgB, err := llm.EncodeImage(b, pngB, chartB)
		if err != nil {
			return nil, err
		}
		resp, err := aiClient.Analyze(ctx, llm.ComparePrompt, imgA, imgB)
		if err != nil {
			return nil, fmt.Errorf("core: federated LLM compare: %w", err)
		}
		fed.ComparePath = filepath.Join(outDir, "federated-compare.md")
		if err := os.WriteFile(fed.ComparePath, insightMarkdown("federated-compare", resp), 0o644); err != nil {
			return nil, err
		}
	}
	return fed, nil
}

// ComparisonChart renders the §4.3 contrasts as grouped bars over shared,
// dimensionless metrics.
func ComparisonChart(cmp *analyze.SystemComparison) *plot.Chart {
	cats := []string{
		"small-short share", "overestimation share",
		"median use ratio", "mean failed share", "backfilled share",
	}
	rowOf := func(scale analyze.ScaleSummary, users analyze.UserBehaviorSummary, bf analyze.BackfillSummary) []float64 {
		return []float64{
			scale.SmallShortShare, bf.OverestimateShare,
			bf.MedianUseRatio, users.MeanFailedShare, bf.BackfilledShare,
		}
	}
	return &plot.Chart{
		Title:  fmt.Sprintf("Cross-facility comparison: %s vs %s", cmp.NameA, cmp.NameB),
		XLabel: "metric", YLabel: "share",
		Kind:       plot.GroupedBar,
		Categories: cats,
		Series: []plot.Series{
			{Name: cmp.NameA, Y: rowOf(cmp.ScaleA, cmp.UsersA, cmp.BackfillA), Color: "#1f77b4"},
			{Name: cmp.NameB, Y: rowOf(cmp.ScaleB, cmp.UsersB, cmp.BackfillB), Color: "#ff7f0e"},
		},
	}
}

func federatedIndex(names []string, fed *FederatedArtifacts) []byte {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>Federated analytics</title><style>\n")
	b.WriteString("body{font-family:sans-serif;margin:2em;} iframe{border:1px solid #ccc;width:100%;height:600px;}\n")
	b.WriteString("</style></head><body>\n<h1>Cross-facility scheduling analytics</h1>\n")
	fmt.Fprintf(&b, "<iframe src=%q></iframe>\n", filepath.Base(fed.ComparisonChartPath))
	for _, name := range names {
		art := fed.Members[name]
		fmt.Fprintf(&b, "<h2>%s</h2>\n<p><a href=%q>dashboard</a> — %d jobs, %d records</p>\n",
			name, name+"/dashboard.html", art.Jobs, art.Records)
	}
	if fed.ComparePath != "" {
		fmt.Fprintf(&b, "<p><a href=%q>LLM cross-facility comparison</a></p>\n", filepath.Base(fed.ComparePath))
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}
