package core

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/llm"
	"slurmsight/internal/plot"
	"slurmsight/internal/sacct"
	"slurmsight/internal/sched"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

var sharedStore *sacct.Store

// testStore simulates a 45-day Frontier workload once and shares it.
func testStore(t *testing.T) *sacct.Store {
	t.Helper()
	if sharedStore != nil {
		return sharedStore
	}
	p := tracegen.FrontierProfile()
	p.JobsPerDay, p.Users = 18, 20
	// Skew toward capability jobs so the small test workload still
	// saturates the machine and exercises backfill.
	for i := range p.Classes {
		switch p.Classes[i].Name {
		case "hero":
			p.Classes[i].Weight = 0.12
		case "capability":
			p.Classes[i].Weight = 0.30
		}
	}
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: t0, End: t0.AddDate(0, 0, 35),
	}}, 23)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := sched.New(sched.DefaultConfig(cluster.Frontier()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	st := sacct.NewStore()
	if err := st.Ingest(res); err != nil {
		t.Fatal(err)
	}
	st.Finalize()
	sharedStore = st
	return st
}

func baseConfig(t *testing.T) Config {
	t.Helper()
	dir := t.TempDir()
	return Config{
		SystemName:  "frontier",
		Store:       testStore(t),
		OutputDir:   filepath.Join(dir, "out"),
		CacheDir:    filepath.Join(dir, "cache"),
		Granularity: sacct.Monthly,
		Start:       t0,
		End:         t0.AddDate(0, 0, 35),
		Workers:     4,
	}
}

func TestStaticWorkflowEndToEnd(t *testing.T) {
	cfg := baseConfig(t)
	art, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Fetched) < 2 {
		t.Errorf("fetched periods = %d, want ≥ 2 (35 days monthly)", len(art.Fetched))
	}
	if art.Records == 0 || art.Jobs == 0 || art.Records <= art.Jobs {
		t.Errorf("records=%d jobs=%d: want step-dominated trace", art.Records, art.Jobs)
	}
	if art.Curation.Kept != art.Records {
		t.Errorf("curation kept %d but %d records loaded", art.Curation.Kept, art.Records)
	}
	// Every figure artifact must exist and embed a recoverable spec.
	for _, key := range FigureKeys() {
		fig := art.Figures[key]
		if fig == nil {
			t.Fatalf("figure %s missing", key)
		}
		page, err := os.ReadFile(fig.HTMLPath)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if _, err := plot.SpecFromHTML(page); err != nil {
			t.Errorf("%s: embedded spec unreadable: %v", key, err)
		}
		if _, err := os.Stat(fig.SpecPath); err != nil {
			t.Errorf("%s spec json missing: %v", key, err)
		}
		if fig.PNGPath != "" || fig.InsightPath != "" {
			t.Errorf("%s has AI artifacts despite EnableAI=false", key)
		}
	}
	for _, csv := range art.CSVPaths {
		if _, err := os.Stat(csv); err != nil {
			t.Errorf("curated CSV missing: %v", err)
		}
	}
	dash, err := os.ReadFile(art.DashboardPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dash), FigWaitTimes) {
		t.Error("dashboard does not reference the wait-times figure")
	}
	dot, err := os.ReadFile(art.DOTPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"obtain-data", "combine", "plot-" + FigBackfill, "dashboard"} {
		if !strings.Contains(string(dot), want) {
			t.Errorf("workflow.dot missing %q", want)
		}
	}
	// The summaries must reflect the paper's phenomena.
	s := art.Summaries
	if s.StepJobRatio < 5 {
		t.Errorf("StepJobRatio = %.1f", s.StepJobRatio)
	}
	if s.Backfill.OverestimateShare < 0.3 {
		t.Errorf("OverestimateShare = %.2f", s.Backfill.OverestimateShare)
	}
	if s.Backfill.BackfilledShare <= 0 {
		t.Errorf("no backfilled jobs in a contended workload")
	}
	if s.Reclaimable <= 0 {
		t.Errorf("Reclaimable = %v", s.Reclaimable)
	}
	if art.Trace.MaxConcurrency < 2 {
		t.Errorf("workflow never ran stages concurrently (max %d)", art.Trace.MaxConcurrency)
	}
}

func TestWorkflowWithAI(t *testing.T) {
	server := llm.NewServer("sk-test")
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	cfg := baseConfig(t)
	cfg.EnableAI = true
	cfg.LLM = llm.NewClient(ts.URL, "sk-test")
	art, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range FigureKeys() {
		fig := art.Figures[key]
		if key == FigVolume {
			if fig.InsightPath != "" {
				t.Error("volume figure should skip the AI stage")
			}
			continue
		}
		if _, err := os.Stat(fig.PNGPath); err != nil {
			t.Errorf("%s PNG missing: %v", key, err)
		}
		text, err := os.ReadFile(fig.InsightPath)
		if err != nil {
			t.Fatalf("%s insight missing: %v", key, err)
		}
		if !strings.Contains(string(text), "gemma-3-sim") {
			t.Errorf("%s insight lacks model attribution", key)
		}
		if !strings.Contains(string(text), "## Statistics") {
			t.Errorf("%s insight lacks the stats appendix", key)
		}
	}
	// The backfill figure's insight must carry the paper's headline
	// observation: systematic walltime over-estimation.
	text, _ := os.ReadFile(art.Figures[FigBackfill].InsightPath)
	if !strings.Contains(string(text), "overestimating") {
		t.Errorf("backfill insight lacks the over-estimation finding:\n%s", text)
	}
	compare, err := os.ReadFile(art.ComparePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(compare), "Comparing") {
		t.Errorf("compare artifact malformed:\n%s", compare)
	}
}

func TestWorkflowCacheReuse(t *testing.T) {
	cfg := baseConfig(t)
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	cfg.UseCache = true
	art, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range art.Fetched {
		if !f.Cached {
			t.Errorf("period %s re-fetched despite cache", f.Period)
		}
	}
}

func TestWorkflowCurationDropsCorruption(t *testing.T) {
	cfg := baseConfig(t)
	cfg.CorruptionRate = 0.01
	cfg.CorruptionSeed = 7
	art, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if art.Curation.Malformed == 0 {
		t.Error("corruption injected but nothing dropped")
	}
	frac := art.Curation.MalformedFraction()
	if frac <= 0 || frac > 0.03 {
		t.Errorf("malformed fraction = %v", frac)
	}
	if art.Records != art.Curation.Kept {
		t.Errorf("records %d != kept %d", art.Records, art.Curation.Kept)
	}
}

func TestWorkflowConfigValidation(t *testing.T) {
	base := baseConfig(t)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no store", func(c *Config) { c.Store = nil }},
		{"no system", func(c *Config) { c.SystemName = "" }},
		{"no output", func(c *Config) { c.OutputDir = "" }},
		{"empty window", func(c *Config) { c.End = c.Start }},
		{"ai without client", func(c *Config) { c.EnableAI = true }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestWorkflowCancellation(t *testing.T) {
	cfg := baseConfig(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cfg); err == nil {
		t.Error("cancelled context: want error")
	}
}

func TestChartBuilders(t *testing.T) {
	st := testStore(t)
	recs, err := st.Select(sacct.Query{IncludeSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []slurm.Record
	for _, r := range recs {
		if !r.IsStep() {
			jobs = append(jobs, r)
		}
	}
	charts := map[string]*plot.Chart{
		"volume":   VolumeChart("frontier", recs),
		"nodes":    NodesElapsedChart("frontier", jobs),
		"waits":    WaitChart("frontier", jobs),
		"states":   StatesChart("frontier", jobs, 25),
		"backfill": BackfillChart("frontier", jobs),
	}
	for name, c := range charts {
		if err := c.Validate(); err != nil {
			t.Errorf("%s chart invalid: %v", name, err)
		}
	}
	if got := len(charts["states"].Categories); got > 25 {
		t.Errorf("states chart has %d users, want ≤ 25", got)
	}
	if charts["nodes"].Points() > 20000 {
		t.Errorf("nodes chart not downsampled: %d points", charts["nodes"].Points())
	}
	// The backfill chart must distinguish the two scheduling paths.
	names := map[string]bool{}
	for _, s := range charts["backfill"].Series {
		names[s.Name] = true
	}
	if !names["regular"] || !names["backfilled"] {
		t.Errorf("backfill series = %v", names)
	}
	// Counted variant agrees with the record variant on job totals.
	counted := VolumeChartCounted("frontier", jobs, make([]int, len(jobs)))
	if counted.Series[0].Y[0] <= 0 {
		t.Error("counted volume chart empty")
	}
}

func TestWorkflowFactsAndReportArtifacts(t *testing.T) {
	cfg := baseConfig(t)
	cfg.SystemNodes = 9408
	art, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(art.FactsPath)
	if err != nil {
		t.Fatal(err)
	}
	var facts llm.Facts
	if err := json.Unmarshal(data, &facts); err != nil {
		t.Fatal(err)
	}
	if facts.System != "frontier" || facts.Jobs == 0 || facts.StepJobRatio < 5 {
		t.Errorf("facts not grounded: %+v", facts)
	}
	if facts.MeanUtilization <= 0 {
		t.Errorf("utilization missing despite SystemNodes: %+v", facts)
	}
	report, err := os.ReadFile(art.ReportPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "# Scheduling analysis report: frontier") {
		t.Errorf("report malformed")
	}
	// Both artifacts appear in the dataflow graph.
	dot, _ := os.ReadFile(art.DOTPath)
	for _, task := range []string{"export-facts", "report"} {
		if !strings.Contains(string(dot), task) {
			t.Errorf("task %s missing from workflow.dot", task)
		}
	}
}
