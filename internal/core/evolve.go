package core

import (
	"context"
	"fmt"

	"slurmsight/internal/cluster"
	"slurmsight/internal/llm"
	"slurmsight/internal/obs"
	"slurmsight/internal/sched"
	"slurmsight/internal/sched/tournament"
	"slurmsight/internal/tracegen"
)

// The evolution loop is the paper's "evolving HPC scheduling practices"
// leg made concrete: run a policy tournament, send the scorecard to the
// model, parse its proposed parameter deltas, apply the ones that pass
// validation to the target policy, re-simulate, re-score, repeat. Every
// round's scorecard, proposals, applications, and rejections are recorded
// so the whole trajectory is auditable — the workflow never trusts the
// model blindly: a delta outside bounds (or for a parameter that does not
// exist) is logged and dropped, never applied.

// EvolveConfig parameterises the loop.
type EvolveConfig struct {
	// Client talks to the /v1/evolve endpoint.
	Client *llm.Client
	// Rounds bounds the evolve→re-simulate iterations (≥1).
	Rounds int
	// Objective is the metric the advisor optimises: "mean_slowdown"
	// (default), "mean_wait_sec", or "utilization".
	Objective string
	// Target names the spec being evolved. It must appear in Specs.
	Target string
	// Specs is the tournament field, target included; the non-target
	// arms stay fixed and serve as the comparison frontier.
	Specs []tournament.Spec

	// Reqs/System/Seed define the workload every round replays.
	Reqs   []tracegen.Request
	System *cluster.System
	Seed   int64

	// Metrics and Tracer flow into the tournament runs; Metrics also
	// counts evolution rounds and delta outcomes under evolve_* names.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
}

// RejectedDelta records one proposal that failed validation and why.
type RejectedDelta struct {
	Delta  llm.ParamDelta `json:"delta"`
	Reason string         `json:"reason"`
}

// EvolveRound is one iteration's full audit record.
type EvolveRound struct {
	Round     int                   `json:"round"`
	Scorecard *tournament.Scorecard `json:"scorecard"`
	Rationale string                `json:"rationale,omitempty"`
	Proposed  []llm.ParamDelta      `json:"proposed,omitempty"`
	Applied   []llm.ParamDelta      `json:"applied,omitempty"`
	Rejected  []RejectedDelta       `json:"rejected,omitempty"`
	// Spec is the target spec after this round's applications.
	Spec tournament.Spec `json:"spec"`
}

// EvolveResult is the full trajectory plus the final re-score.
type EvolveResult struct {
	Schema    string                `json:"schema"` // "evolve/v1"
	Objective string                `json:"objective"`
	Target    string                `json:"target"`
	Rounds    []EvolveRound         `json:"rounds"`
	Final     *tournament.Scorecard `json:"final"`
	FinalSpec tournament.Spec       `json:"final_spec"`
	Converged bool                  `json:"converged"`
}

// weight bounds for applied deltas: a proposal pushing a weight outside
// [0, maxWeight] or a depth outside [1, maxDepth] is rejected, keeping
// the simulator in its validated regime no matter what the model says.
const (
	maxWeight = 10_000_000
	maxDepth  = 10_000
	minScale  = 0.1
	maxScale  = 10.0
)

// Evolve runs the tournament→advise→apply loop for cfg.Rounds rounds (or
// until the advisor returns no deltas) and returns the audit trajectory.
func Evolve(ctx context.Context, cfg EvolveConfig) (*EvolveResult, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("evolve: needs an LLM client")
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("evolve: rounds must be ≥1, got %d", cfg.Rounds)
	}
	if cfg.Objective == "" {
		cfg.Objective = "mean_slowdown"
	}
	if cfg.Target == "" {
		cfg.Target = "evolved"
	}
	targetIdx := -1
	for i := range cfg.Specs {
		if cfg.Specs[i].Name == cfg.Target {
			targetIdx = i
		}
	}
	if targetIdx < 0 {
		return nil, fmt.Errorf("evolve: target %q not in specs", cfg.Target)
	}

	span := cfg.Tracer.Start("evolve.loop")
	span.SetAttr("target", cfg.Target)
	span.SetAttr("objective", cfg.Objective)
	defer span.End()

	specs := append([]tournament.Spec(nil), cfg.Specs...)
	res := &EvolveResult{Schema: "evolve/v1", Objective: cfg.Objective, Target: cfg.Target}

	runTournament := func() (*tournament.Scorecard, error) {
		return tournament.Run(tournament.Input{
			Specs: specs, Reqs: cfg.Reqs, System: cfg.System, Seed: cfg.Seed,
			Metrics: cfg.Metrics, Tracer: cfg.Tracer,
		})
	}

	for round := 0; round < cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc, err := runTournament()
		if err != nil {
			return nil, fmt.Errorf("evolve round %d: %w", round, err)
		}
		raw, err := sc.EncodeJSON()
		if err != nil {
			return nil, err
		}
		resp, err := cfg.Client.Evolve(ctx, llm.EvolveRequest{
			Scorecard: raw,
			Target:    cfg.Target,
			Objective: cfg.Objective,
			Round:     round,
		})
		if err != nil {
			return nil, fmt.Errorf("evolve round %d: %w", round, err)
		}
		cfg.Metrics.Counter("evolve_rounds_total").Inc()

		rec := EvolveRound{
			Round:     round,
			Scorecard: sc,
			Rationale: resp.Rationale,
			Proposed:  resp.Deltas,
		}
		for _, d := range resp.Deltas {
			if reason := applyDelta(&specs[targetIdx], cfg.System, cfg.Seed, d); reason != "" {
				rec.Rejected = append(rec.Rejected, RejectedDelta{Delta: d, Reason: reason})
				cfg.Metrics.Counter("evolve_deltas_rejected_total").Inc()
				span.Event(fmt.Sprintf("round %d: rejected %s: %s", round, d.Param, reason))
			} else {
				rec.Applied = append(rec.Applied, d)
				cfg.Metrics.Counter("evolve_deltas_applied_total").Inc()
			}
		}
		rec.Spec = specs[targetIdx].Clone()
		res.Rounds = append(res.Rounds, rec)

		if len(resp.Deltas) == 0 {
			res.Converged = true
			break
		}
	}

	// Final re-score so the trajectory always ends with the evolved
	// spec's measured outcome, applied deltas included.
	final, err := runTournament()
	if err != nil {
		return nil, fmt.Errorf("evolve final score: %w", err)
	}
	res.Final = final
	res.FinalSpec = specs[targetIdx].Clone()
	return res, nil
}

// applyDelta validates one proposal against the target spec and applies
// it in place. The returned string is empty on success, or the rejection
// reason. Validation is belt and braces: structural checks here, then a
// full sched.Config materialisation so nothing invalid survives.
func applyDelta(sp *tournament.Spec, sys *cluster.System, seed int64, d llm.ParamDelta) string {
	if d.Policy != sp.Name {
		return fmt.Sprintf("delta targets %q, evolving %q", d.Policy, sp.Name)
	}
	if d.Op != "scale" && d.Op != "set" {
		return fmt.Sprintf("unknown op %q", d.Op)
	}

	// Numeric params operate on the materialised current value so
	// "scale" composes across rounds.
	cur, err := sp.Config(sys, seed)
	if err != nil {
		return fmt.Sprintf("current spec invalid: %v", err)
	}

	apply := func(field **int64, current int64) string {
		next := current
		switch d.Op {
		case "scale":
			if d.Value < minScale || d.Value > maxScale {
				return fmt.Sprintf("scale %.3g outside [%g, %g]", d.Value, minScale, maxScale)
			}
			next = int64(float64(current) * d.Value)
		case "set":
			next = int64(d.Value)
		}
		if next < 0 || next > maxWeight {
			return fmt.Sprintf("resulting weight %d outside [0, %d]", next, maxWeight)
		}
		*field = &next
		return ""
	}

	var reason string
	switch d.Param {
	case "age_weight":
		ensureWeights(sp)
		reason = apply(&sp.Weights.Age, cur.AgeWeight)
	case "size_weight":
		ensureWeights(sp)
		reason = apply(&sp.Weights.Size, cur.SizeWeight)
	case "fair_share_weight":
		ensureWeights(sp)
		reason = apply(&sp.Weights.FairShare, cur.FairShareWeight)
	case "base":
		ensureWeights(sp)
		reason = apply(&sp.Weights.Base, cur.Base)
	case "backfill_depth":
		if d.Op != "set" {
			return "backfill_depth only supports op=set"
		}
		depth := int(d.Value)
		if depth < 1 || depth > maxDepth {
			return fmt.Sprintf("depth %d outside [1, %d]", depth, maxDepth)
		}
		sp.BackfillDepth = depth
	case "backfill":
		if d.Op != "set" || d.Str == "" {
			return "backfill needs op=set with a strategy name"
		}
		if _, err := sched.BackfillByName(d.Str); err != nil {
			return err.Error()
		}
		sp.Backfill = d.Str
	case "node_select":
		if d.Op != "set" || d.Str == "" {
			return "node_select needs op=set with a selector name"
		}
		if _, err := sched.SelectorByName(d.Str); err != nil {
			return err.Error()
		}
		sp.NodeSelect = d.Str
	case "priority":
		if d.Op != "set" || d.Str == "" {
			return "priority needs op=set with a policy name"
		}
		dc := sched.DefaultConfig(sys)
		if _, err := sched.PriorityByName(d.Str, &dc); err != nil {
			return err.Error()
		}
		sp.Priority = d.Str
	default:
		return fmt.Sprintf("unknown param %q", d.Param)
	}
	if reason != "" {
		return reason
	}
	// Final safety: the mutated spec must still materialise.
	if _, err := sp.Config(sys, seed); err != nil {
		return fmt.Sprintf("mutated spec invalid: %v", err)
	}
	return ""
}

func ensureWeights(sp *tournament.Spec) {
	if sp.Weights == nil {
		sp.Weights = &tournament.Weights{}
	}
}

// StripElapsed zeroes the wall-clock fields in every scorecard of the
// result, for deterministic serialisation in tests and CI.
func (r *EvolveResult) StripElapsed() {
	strip := func(sc *tournament.Scorecard) {
		if sc == nil {
			return
		}
		sc.ElapsedMS = 0
		for i := range sc.Policies {
			sc.Policies[i].ElapsedMS = 0
		}
	}
	for i := range r.Rounds {
		strip(r.Rounds[i].Scorecard)
	}
	strip(r.Final)
}
