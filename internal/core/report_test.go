package core

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slurmsight/internal/llm"
)

func TestWriteReport(t *testing.T) {
	analyst := httptest.NewServer(llm.NewServer("sk-rep").Handler())
	defer analyst.Close()

	cfg := baseConfig(t)
	cfg.EnableAI = true
	cfg.LLM = llm.NewClient(analyst.URL, "sk-rep")
	cfg.ExtendedFigures = true
	cfg.SystemNodes = 9408
	art, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.md")
	if err := WriteReport(art, "frontier", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{
		"# Scheduling analysis report: frontier",
		"## Job and job-step volume",
		"## Queue waits",
		"## Walltime estimation and backfill",
		"## System load",
		"## LLM interpretations",
		"overestimating", // the inlined LLM finding
		"fig4-wait-times.html",
		"dashboard.html",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The stats appendix of the insight files must not leak into the
	// report prose.
	if strings.Contains(report, "## Statistics") {
		t.Error("statistics appendix leaked into the report")
	}
	// Extended figures appear with the rest.
	if !strings.Contains(report, ExtLoad) {
		t.Error("extended figure missing from the artifact list")
	}
}

func TestWriteReportWithoutAI(t *testing.T) {
	cfg := baseConfig(t)
	art, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.md")
	if err := WriteReport(art, "frontier", path); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), "## LLM interpretations") {
		t.Error("LLM section present without AI artifacts")
	}
	if !strings.Contains(string(data), "## Queue waits") {
		t.Error("static sections missing")
	}
}
