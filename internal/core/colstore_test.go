package core

import (
	"context"
	"path/filepath"
	"testing"

	"slurmsight/internal/obs"
	"slurmsight/internal/sacct"
)

// TestWorkflowColstoreParity pins the binary columnar store's golden
// contract: a workflow run over a store reloaded from DumpBinaryFile
// must emit figure JSON and CSV sidecars byte-identical to a run over
// the original in-memory store, with identical curation accounting.
func TestWorkflowColstoreParity(t *testing.T) {
	textCfg := baseConfig(t)
	textArt, err := Run(context.Background(), textCfg)
	if err != nil {
		t.Fatal(err)
	}

	binPath := filepath.Join(t.TempDir(), "store.colstore")
	if err := textCfg.Store.DumpBinaryFile(binPath); err != nil {
		t.Fatal(err)
	}
	binStore, _, err := sacct.OpenFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	defer binStore.Close()
	if !binStore.Binary() {
		t.Fatal("binary dump not detected as columnar")
	}

	binCfg := baseConfig(t)
	binCfg.Store = binStore
	binCfg.Metrics = obs.NewRegistry()
	binArt, err := Run(context.Background(), binCfg)
	if err != nil {
		t.Fatal(err)
	}

	if binArt.Records != textArt.Records || binArt.Curation != textArt.Curation {
		t.Errorf("binary run records=%d curation=%+v, text records=%d curation=%+v",
			binArt.Records, binArt.Curation, textArt.Records, textArt.Curation)
	}
	if len(binArt.CSVPaths) != len(textArt.CSVPaths) {
		t.Fatalf("sidecar count %d vs %d", len(binArt.CSVPaths), len(textArt.CSVPaths))
	}
	for i := range textArt.CSVPaths {
		compareFiles(t, textArt.CSVPaths[i], binArt.CSVPaths[i])
	}
	for _, key := range FigureKeys() {
		tf, bf := textArt.Figures[key], binArt.Figures[key]
		if tf == nil || bf == nil {
			t.Fatalf("figure %s missing (text=%v bin=%v)", key, tf != nil, bf != nil)
		}
		compareFiles(t, tf.SpecPath, bf.SpecPath)
	}

	// The run's registry must show the columnar reads that fed it.
	if v := binCfg.Metrics.Counter("colstore_shards_opened_total").Value(); v == 0 {
		t.Error("workflow run did not record colstore shard opens")
	}
	if v := binCfg.Metrics.Counter("colstore_bytes_read_total").Value(); v == 0 {
		t.Error("workflow run did not record colstore bytes read")
	}
}
