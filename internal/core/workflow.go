package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"slurmsight/internal/analyze"
	"slurmsight/internal/curate"
	"slurmsight/internal/dataflow"
	"slurmsight/internal/llm"
	"slurmsight/internal/obs"
	"slurmsight/internal/plot"
	"slurmsight/internal/pool"
	"slurmsight/internal/raster"
	"slurmsight/internal/sacct"
	"slurmsight/internal/slurm"
)

// Config parameterizes one workflow run, mirroring the paper's
// invocation: date_spec and dates select the query, cache and data name
// the filesystem locations, and Workers is the swift-t -n N physical
// concurrency.
type Config struct {
	SystemName string
	Store      *sacct.Store

	OutputDir string // permanent artifact location (the "data" argument)
	CacheDir  string // fast scratch for fetched text (the "cache" argument)

	Granularity sacct.Granularity
	Start, End  time.Time
	UseCache    bool

	Workers int // dataflow concurrency (default 4)

	// IngestWorkers sets how many chunks each period file is split into
	// and decoded concurrently during the curate stage. 0 (the default)
	// resolves to runtime.GOMAXPROCS(0); 1 keeps the sequential
	// streaming path; higher values use the parallel chunked byte
	// decoder, whose sidecars and figure data are byte-identical to the
	// sequential ones at every worker count. Concurrent period tasks
	// share one pool of GOMAXPROCS borrowable decode slots (each task
	// keeps one guaranteed slot), so many periods in flight narrow each
	// other instead of oversubscribing the host.
	IngestWorkers int

	TopUsers                int // users shown in the states figure (default 50)
	ChartWidth, ChartHeight int

	// AI subworkflow (the orange stages). When EnableAI is set, LLM must
	// point at an analyze endpoint.
	EnableAI bool
	LLM      *llm.Client

	// CorruptionRate optionally injects malformed rows at the obtain
	// stage to exercise curation (see sacct.FetchSpec).
	CorruptionRate float64
	CorruptionSeed int64

	// Robustness knobs for the dataflow run. TaskAttempts is the total
	// tries per task (0/1 = no retries); TaskTimeout bounds each attempt
	// (0 = none); TaskBackoff spaces retries (default 250 ms when
	// retrying). ContinueOnError keeps independent branches running past
	// a failed stage: the run then returns its artifacts together with a
	// *dataflow.RunError listing every failure.
	TaskAttempts    int
	TaskTimeout     time.Duration
	TaskBackoff     time.Duration
	ContinueOnError bool

	// ExtendedFigures adds the operator views beyond the paper's set:
	// a system-load timeline and a queue-depth timeline.
	ExtendedFigures bool
	// SystemNodes is the capacity used by the utilization summary and
	// the timeline capacity line (0 leaves utilization unset).
	SystemNodes int

	// Tracer, when non-nil, records a hierarchical span per workflow
	// stage (curate, analyze, render, LLM) on top of the dataflow
	// engine's per-task spans; export it with obs.WriteChromeTrace. Nil
	// disables tracing.
	Tracer *obs.Tracer
	// Metrics, when non-nil, collects run counters (curate rows,
	// analyze merges, dataflow attempts, LLM calls) into one registry
	// servable at /metrics. Nil disables collection.
	Metrics *obs.Registry
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.IngestWorkers == 0 {
		out.IngestWorkers = runtime.GOMAXPROCS(0)
	} else if out.IngestWorkers < 0 {
		out.IngestWorkers = 1
	}
	if out.TopUsers <= 0 {
		out.TopUsers = 50
	}
	if out.ChartWidth <= 0 {
		out.ChartWidth = 960
	}
	if out.ChartHeight <= 0 {
		out.ChartHeight = 540
	}
	if out.CacheDir == "" {
		out.CacheDir = filepath.Join(out.OutputDir, "cache")
	}
	return out
}

func (c *Config) validate() error {
	if c.Store == nil {
		return fmt.Errorf("core: config needs a store")
	}
	if c.SystemName == "" {
		return fmt.Errorf("core: config needs a system name")
	}
	if c.OutputDir == "" {
		return fmt.Errorf("core: config needs an output directory")
	}
	if c.Start.IsZero() || c.End.IsZero() || !c.Start.Before(c.End) {
		return fmt.Errorf("core: config window is empty")
	}
	if c.EnableAI && c.LLM == nil {
		return fmt.Errorf("core: AI subworkflow enabled without an LLM client")
	}
	return nil
}

// FigureResult locates one figure's artifacts.
type FigureResult struct {
	Key         string
	HTMLPath    string
	SpecPath    string
	PNGPath     string
	InsightPath string // empty when the AI stage is off
}

// Summaries carries the quantitative reading of each figure — the numbers
// EXPERIMENTS.md compares against the paper.
type Summaries struct {
	Volume       []analyze.VolumeByYear
	StepJobRatio float64
	Scale        analyze.ScaleSummary
	Waits        analyze.WaitSummary
	Users        analyze.UserBehaviorSummary
	Backfill     analyze.BackfillSummary
	Reclaimable  float64 // node-hours a perfect walltime predictor reclaims
	Load         analyze.UtilizationSummary
	Classes      []analyze.ClassSummary
}

// Facts flattens the summaries into the grounding the conversational
// agent answers from.
func (a *Artifacts) Facts(system string) llm.Facts {
	s := &a.Summaries
	var jobs, steps int64
	for _, v := range s.Volume {
		jobs += v.Jobs
		steps += v.Steps
	}
	return llm.Facts{
		System:               system,
		Jobs:                 jobs,
		Steps:                steps,
		StepJobRatio:         s.StepJobRatio,
		MedianWaitS:          s.Waits.P50,
		P90WaitS:             s.Waits.P90,
		LongWaitFrac:         s.Waits.LongWaits,
		OverestimateShare:    s.Backfill.OverestimateShare,
		MedianUseRatio:       s.Backfill.MedianUseRatio,
		BackfilledShare:      s.Backfill.BackfilledShare,
		ReclaimableNodeHours: s.Reclaimable,
		Users:                s.Users.Users,
		MeanFailedShare:      s.Users.MeanFailedShare,
		TopDecileFailures:    s.Users.TopDecileFailures,
		MeanUtilization:      s.Load.MeanUtilization,
		PeakQueueDepth:       s.Load.PeakQueueDepth,
		MedianNodes:          s.Scale.MedianNodes,
		SmallShortShare:      s.Scale.SmallShortShare,
	}
}

// Artifacts is everything a run leaves behind.
type Artifacts struct {
	Fetched       []sacct.FetchedFile
	Curation      curate.Report
	CSVPaths      []string
	Figures       map[string]*FigureResult
	DOTPath       string
	DashboardPath string
	ComparePath   string // LLM month-over-month wait comparison
	Records       int    // curated records (jobs + steps)
	Jobs          int    // job-level records
	Summaries     Summaries
	Trace         *dataflow.Trace
	StatusDOTPath string // post-run DOT annotated with task outcomes
	TraceJSONPath string // machine-readable run trace (stable schema)
	FactsPath     string // grounded agent facts (JSON)
	ReportPath    string // markdown analysis report
}

// runState is the shared in-memory side of the dataflow run. The curate
// stage no longer materialises records: each period task folds its
// stream into an analyze.Bundle (figure state only), and combine merges
// the per-period bundles in period order — which, because the streaming
// store emits records in (submit, job-id) order, reproduces the figure
// data of the old global-sort-then-rescan path exactly.
type runState struct {
	mu        sync.Mutex
	perPeriod []*analyze.Bundle // one slot per period, filled by curate tasks
	perReport []curate.Report
	report    curate.Report
	charts    map[string]*plot.Chart
	bundle    *analyze.Bundle // merged fan-out state, set by combine

	sumOnce   sync.Once
	summaries Summaries
}

// summariesOnce computes the figure summaries exactly once; tasks and the
// post-run assembly share the result.
func (st *runState) summariesOnce(capacityNodes int) Summaries {
	st.sumOnce.Do(func() {
		st.summaries = summarize(st, capacityNodes)
	})
	return st.summaries
}

// annotate tags the current task's span (put on the context by the
// dataflow executor) with its workflow stage and any extra key/value
// pairs. A no-op when tracing is off.
func annotate(ctx context.Context, stage string, kv ...string) {
	sp := obs.SpanFromContext(ctx)
	if sp == nil {
		return
	}
	sp.SetAttr("stage", stage)
	for i := 0; i+1 < len(kv); i += 2 {
		sp.SetAttr(kv[i], kv[i+1])
	}
}

// Run executes the full hybrid workflow.
func Run(ctx context.Context, cfg Config) (*Artifacts, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	// Binary-backed stores mirror their column-read counters into the
	// run's registry (colstore_* metrics); a no-op otherwise.
	cfg.Store.Instrument(cfg.Metrics)
	for _, dir := range []string{cfg.OutputDir, cfg.CacheDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}

	spec := sacct.FetchSpec{
		Granularity:    cfg.Granularity,
		Start:          cfg.Start,
		End:            cfg.End,
		UseCache:       cfg.UseCache,
		CorruptionRate: cfg.CorruptionRate,
		CorruptionSeed: cfg.CorruptionSeed,
	}
	periods, err := spec.Periods()
	if err != nil {
		return nil, err
	}

	st := &runState{
		charts:    map[string]*plot.Chart{},
		perPeriod: make([]*analyze.Bundle, len(periods)),
		perReport: make([]curate.Report, len(periods)),
	}
	// One shared budget of borrowable decode slots for every concurrent
	// period task: each task keeps a guaranteed decoder and borrows up
	// to IngestWorkers-1 more, so Workers × IngestWorkers in-flight
	// goroutines collapse to at most Workers + GOMAXPROCS decoders.
	ingestPool := pool.New(runtime.GOMAXPROCS(0))
	cfg.Metrics.Gauge("ingest_workers_resolved").Set(int64(cfg.IngestWorkers))
	cfg.Metrics.Gauge("ingest_pool_budget").Set(int64(ingestPool.Budget()))
	art := &Artifacts{Figures: map[string]*FigureResult{}}
	fetcher := &sacct.Fetcher{Store: cfg.Store, CacheDir: cfg.CacheDir, Workers: cfg.Workers}

	g := dataflow.NewGraph()
	add := func(t dataflow.Task) error { return g.Add(t) }

	// --- Static data-analysis subworkflow (the blue stages) ---

	periodPath := func(p string) string { return filepath.Join(cfg.CacheDir, sacct.PeriodFileName(p)) }
	var periodPaths []string
	for _, p := range periods {
		periodPaths = append(periodPaths, periodPath(p))
	}
	if err := add(dataflow.Task{
		Name:   "obtain-data",
		Writes: periodPaths,
		Run: func(ctx context.Context) error {
			files, err := fetcher.Fetch(ctx, spec)
			if err != nil {
				return err
			}
			annotate(ctx, "obtain", "periods", fmt.Sprint(len(files)))
			st.mu.Lock()
			art.Fetched = files
			st.mu.Unlock()
			return nil
		},
	}); err != nil {
		return nil, err
	}

	recordsReady := filepath.Join(cfg.OutputDir, "records.ready")
	var csvPaths []string
	for i, p := range periods {
		i, p := i, p
		csv := filepath.Join(cfg.OutputDir, "slurm-"+p+".csv")
		csvPaths = append(csvPaths, csv)
		if err := add(dataflow.Task{
			Name:   "curate-" + p,
			Reads:  []string{periodPath(p)},
			Writes: []string{csv},
			Run: func(ctx context.Context) error {
				// Single pass: one read of the period file feeds the CSV
				// sidecar and the figure collectors. The bundle and report
				// stay attempt-local and commit only on success, so a
				// retried attempt never half-counts a period.
				b := analyze.NewBundle(timelineBucket)
				b.Instrument(cfg.Metrics)
				var rep curate.Report
				opts := curate.DefaultOptions()
				opts.Metrics = cfg.Metrics
				if cfg.IngestWorkers > 1 {
					// Parallel chunked ingest: each chunk observes into
					// its own collector shard, merged back in chunk
					// order so the figure data is bit-exact with the
					// sequential path.
					opts.Workers = cfg.IngestWorkers
					opts.Pool = ingestPool
					shards := analyze.NewShardSet(timelineBucket)
					chunks, err := curate.StreamFileParallel(periodPath(p), csv, opts, &rep,
						func(chunk int) func(*slurm.Record) bool {
							sb := shards.Shard(chunk)
							return func(rec *slurm.Record) bool {
								sb.Observe(rec)
								return true
							}
						})
					if err != nil {
						return err
					}
					shards.MergeIntoN(b, cfg.IngestWorkers)
					// The shard bundles are uninstrumented (lock-free
					// observe path); account their records here so the
					// counter matches the sequential path's exactly.
					cfg.Metrics.Counter("analyze_records_observed_total").Add(b.Records)
					annotate(ctx, "curate", "period", p,
						"rows_kept", fmt.Sprint(rep.Kept),
						"rows_malformed", fmt.Sprint(rep.Malformed),
						"ingest_chunks", fmt.Sprint(chunks),
						"ingest_workers", fmt.Sprint(cfg.IngestWorkers))
				} else {
					for rec, err := range curate.StreamFile(periodPath(p), csv, opts, &rep) {
						if err != nil {
							return err
						}
						b.Observe(rec)
					}
					annotate(ctx, "curate", "period", p,
						"rows_kept", fmt.Sprint(rep.Kept),
						"rows_malformed", fmt.Sprint(rep.Malformed))
				}
				st.mu.Lock()
				st.perPeriod[i] = b
				st.perReport[i] = rep
				st.mu.Unlock()
				return nil
			},
		}); err != nil {
			return nil, err
		}
	}

	if err := add(dataflow.Task{
		Name:   "combine",
		Reads:  csvPaths,
		Writes: []string{recordsReady},
		Run: func(ctx context.Context) error {
			annotate(ctx, "analyze", "periods", fmt.Sprint(len(periods)))
			st.mu.Lock()
			merged := analyze.NewBundle(timelineBucket)
			merged.Instrument(cfg.Metrics)
			var rep curate.Report
			var bundles []*analyze.Bundle
			for i, b := range st.perPeriod {
				if b == nil {
					continue // period failed under ContinueOnError
				}
				bundles = append(bundles, b)
				rep.Add(st.perReport[i])
			}
			// Pairwise parallel fold in period order: bit-exact with the
			// linear fold (merge is associative over ordered runs) and
			// the inputs stay unmutated, so a retried attempt is safe.
			merged.Merge(analyze.TreeMerge(timelineBucket, bundles, cfg.IngestWorkers))
			// Warm the timeline cache while combine holds the barrier:
			// downstream plot tasks run concurrently and may only read.
			merged.Timeline.Result()
			st.bundle = merged
			st.report = rep
			st.mu.Unlock()
			return os.WriteFile(recordsReady, []byte("ok\n"), 0o644)
		},
	}); err != nil {
		return nil, err
	}

	// Chart builders read the merged bundle; the combine task is their
	// dataflow barrier, after which the bundle is read-only.
	builders := map[string]func() *plot.Chart{
		FigVolume:       func() *plot.Chart { return volumeChartOf(cfg.SystemName, st.bundle.Volume.Result()) },
		FigNodesElapsed: func() *plot.Chart { return NodesElapsedChartPoints(cfg.SystemName, st.bundle.Scale.Result()) },
		FigWaitTimes:    func() *plot.Chart { return WaitChartPoints(cfg.SystemName, st.bundle.Waits.Result()) },
		FigStates:       func() *plot.Chart { return StatesChartUsers(cfg.SystemName, st.bundle.Users.Result(cfg.TopUsers)) },
		FigBackfill:     func() *plot.Chart { return BackfillChartPoints(cfg.SystemName, st.bundle.Backfill.Result()) },
	}
	figureKeys := FigureKeys()
	if cfg.ExtendedFigures {
		builders[ExtLoad] = func() *plot.Chart {
			return LoadTimelineChartPoints(cfg.SystemName, st.bundle.Timeline.Result(), cfg.SystemNodes)
		}
		builders[ExtQueueDepth] = func() *plot.Chart {
			return QueueDepthChartPoints(cfg.SystemName, st.bundle.Timeline.Result())
		}
		figureKeys = append(figureKeys, ExtendedFigureKeys()...)
	}
	var htmlPaths []string
	for _, key := range figureKeys {
		key := key
		fig := &FigureResult{
			Key:      key,
			HTMLPath: filepath.Join(cfg.OutputDir, key+".html"),
			SpecPath: filepath.Join(cfg.OutputDir, key+".json"),
		}
		art.Figures[key] = fig
		htmlPaths = append(htmlPaths, fig.HTMLPath)
		if err := add(dataflow.Task{
			Name:   "plot-" + key,
			Reads:  []string{recordsReady},
			Writes: []string{fig.HTMLPath, fig.SpecPath},
			Run: func(ctx context.Context) error {
				annotate(ctx, "render", "figure", key)
				chart := builders[key]()
				st.mu.Lock()
				st.charts[key] = chart
				st.mu.Unlock()
				page, err := plot.HTML(chart, cfg.ChartWidth, cfg.ChartHeight)
				if err != nil {
					return fmt.Errorf("rendering %s: %w", key, err)
				}
				if err := os.WriteFile(fig.HTMLPath, page, 0o644); err != nil {
					return err
				}
				spec, err := chart.JSON()
				if err != nil {
					return err
				}
				return os.WriteFile(fig.SpecPath, spec, 0o644)
			},
		}); err != nil {
			return nil, err
		}
	}

	dashPath := filepath.Join(cfg.OutputDir, "dashboard.html")
	if err := add(dataflow.Task{
		Name:   "dashboard",
		Reads:  htmlPaths,
		Writes: []string{dashPath},
		Run: func(ctx context.Context) error {
			annotate(ctx, "render")
			return os.WriteFile(dashPath, dashboardIndex(cfg.SystemName, art), 0o644)
		},
	}); err != nil {
		return nil, err
	}

	// --- User-defined AI subworkflow (the orange stages) ---

	if cfg.EnableAI {
		for _, key := range figureKeys {
			key := key
			if key == FigVolume {
				continue // the volume bars carry little for the analyst
			}
			fig := art.Figures[key]
			fig.PNGPath = filepath.Join(cfg.OutputDir, key+".png")
			fig.InsightPath = filepath.Join(cfg.OutputDir, key+".insight.md")
			if err := add(dataflow.Task{
				Name:   "html2png-" + key,
				Reads:  []string{fig.HTMLPath},
				Writes: []string{fig.PNGPath},
				Run: func(ctx context.Context) error {
					annotate(ctx, "render", "figure", key)
					return raster.FromHTMLFile(fig.HTMLPath, fig.PNGPath, cfg.ChartWidth, cfg.ChartHeight)
				},
			}); err != nil {
				return nil, err
			}
			if err := add(dataflow.Task{
				Name:   "llm-insight-" + key,
				Reads:  []string{fig.PNGPath, fig.SpecPath},
				Writes: []string{fig.InsightPath},
				Run: func(ctx context.Context) error {
					annotate(ctx, "llm", "figure", key)
					return runInsight(ctx, cfg, st, key, fig)
				},
			}); err != nil {
				return nil, err
			}
		}
		art.ComparePath = filepath.Join(cfg.OutputDir, "wait-times-compare.md")
		if err := add(dataflow.Task{
			Name:   "llm-compare-waits",
			Reads:  []string{recordsReady},
			Writes: []string{art.ComparePath},
			Run: func(ctx context.Context) error {
				annotate(ctx, "llm")
				return runCompare(ctx, cfg, st, art.ComparePath)
			},
		}); err != nil {
			return nil, err
		}
	}

	// Post-figure artifacts: the grounded fact sheet for the agent and
	// the markdown report (which inlines insights when the AI stage ran).
	art.FactsPath = filepath.Join(cfg.OutputDir, "facts.json")
	if err := add(dataflow.Task{
		Name:   "export-facts",
		Reads:  []string{recordsReady},
		Writes: []string{art.FactsPath},
		Run: func(ctx context.Context) error {
			annotate(ctx, "emit")
			st.summariesOnce(cfg.SystemNodes)
			st.mu.Lock()
			art.Summaries = st.summaries
			facts := art.Facts(cfg.SystemName)
			st.mu.Unlock()
			data, err := json.MarshalIndent(facts, "", " ")
			if err != nil {
				return err
			}
			return os.WriteFile(art.FactsPath, data, 0o644)
		},
	}); err != nil {
		return nil, err
	}
	art.ReportPath = filepath.Join(cfg.OutputDir, "report.md")
	reportReads := []string{recordsReady}
	for _, key := range figureKeys {
		if fig := art.Figures[key]; fig.InsightPath != "" {
			reportReads = append(reportReads, fig.InsightPath)
		}
	}
	if err := add(dataflow.Task{
		Name:   "report",
		Reads:  reportReads,
		Writes: []string{art.ReportPath},
		Run: func(ctx context.Context) error {
			annotate(ctx, "emit")
			st.summariesOnce(cfg.SystemNodes)
			st.mu.Lock()
			art.Summaries = st.summaries
			art.Records, art.Jobs = st.counts()
			art.Curation = st.report
			st.mu.Unlock()
			return WriteReport(art, cfg.SystemName, art.ReportPath)
		},
	}); err != nil {
		return nil, err
	}

	// The Figure 2 artifact: the engine's own view of this run.
	art.DOTPath = filepath.Join(cfg.OutputDir, "workflow.dot")
	if err := add(dataflow.Task{
		Name:   "export-dataflow",
		Writes: []string{art.DOTPath},
		Run: func(ctx context.Context) error {
			annotate(ctx, "emit")
			return os.WriteFile(art.DOTPath, []byte(g.DOT()), 0o644)
		},
	}); err != nil {
		return nil, err
	}

	ex := &dataflow.Executor{
		Workers: cfg.Workers,
		DefaultPolicy: dataflow.Policy{
			Attempts:        cfg.TaskAttempts,
			Timeout:         cfg.TaskTimeout,
			Backoff:         cfg.TaskBackoff,
			Jitter:          0.2,
			ContinueOnError: cfg.ContinueOnError,
		},
		Tracer:  cfg.Tracer,
		Metrics: cfg.Metrics,
	}
	trace, err := ex.Run(ctx, g)
	var runErr *dataflow.RunError
	if err != nil && !errors.As(err, &runErr) {
		return nil, err
	}

	// On a ContinueOnError partial failure the run still assembles every
	// artifact the surviving branches produced, and the caller gets the
	// full failure list alongside them.
	art.Trace = trace
	art.CSVPaths = csvPaths
	art.DashboardPath = dashPath
	art.Curation = st.report
	art.Records, art.Jobs = st.counts()
	art.Summaries = st.summariesOnce(cfg.SystemNodes)
	art.StatusDOTPath = filepath.Join(cfg.OutputDir, "workflow-status.dot")
	if werr := os.WriteFile(art.StatusDOTPath, []byte(g.DOTTrace(trace)), 0o644); werr != nil && err == nil {
		err = werr
	}
	art.TraceJSONPath = filepath.Join(cfg.OutputDir, "workflow-trace.json")
	if data, jerr := trace.JSON(); jerr != nil {
		if err == nil {
			err = jerr
		}
	} else if werr := os.WriteFile(art.TraceJSONPath, data, 0o644); werr != nil && err == nil {
		err = werr
	}
	return art, err
}

// counts returns the observed record/job totals; the caller holds st.mu
// or runs after the dataflow has finished.
func (st *runState) counts() (records, jobs int) {
	if st.bundle == nil {
		return 0, 0
	}
	return int(st.bundle.Records), int(st.bundle.Jobs)
}

func summarize(st *runState, capacityNodes int) Summaries {
	b := st.bundle
	if b == nil {
		// combine never ran (ContinueOnError with a failed ingest path);
		// summarise the empty bundle so artifact assembly still works.
		b = analyze.NewBundle(timelineBucket)
	}
	vols := b.Volume.Result()
	return Summaries{
		Volume:       vols,
		StepJobRatio: analyze.StepJobRatio(vols),
		Scale:        analyze.SummarizeScale(b.Scale.Result()),
		Waits:        analyze.SummarizeWaits(b.Waits.Result()),
		Users:        analyze.SummarizeUsers(b.Users.Result(0)),
		Backfill:     analyze.SummarizeBackfill(b.Backfill.Result()),
		Reclaimable:  b.Reclaim.Result(),
		Load:         analyze.SummarizeTimeline(b.Timeline.Result(), capacityNodes),
		Classes:      b.Classes.Result(),
	}
}

// runInsight executes one LLM-Insight stage: PNG + spec → analyst prose.
func runInsight(ctx context.Context, cfg Config, st *runState, key string, fig *FigureResult) error {
	png, err := os.ReadFile(fig.PNGPath)
	if err != nil {
		return err
	}
	st.mu.Lock()
	chart := st.charts[key]
	st.mu.Unlock()
	img, err := llm.EncodeImage(key, png, chart)
	if err != nil {
		return err
	}
	resp, err := cfg.LLM.Analyze(ctx, llm.InsightPrompt, img)
	if err != nil {
		return fmt.Errorf("llm insight for %s: %w", key, err)
	}
	return os.WriteFile(fig.InsightPath, insightMarkdown(key, resp), 0o644)
}

// runCompare reproduces the paper's month-over-month wait comparison: the
// window is split in half, a wait chart is built for each, and the pair
// goes to the LLM with the compare prompt.
func runCompare(ctx context.Context, cfg Config, st *runState, outPath string) error {
	st.mu.Lock()
	var points []analyze.WaitPoint
	if st.bundle != nil {
		points = st.bundle.Waits.Result()
	}
	st.mu.Unlock()
	if len(points) < 4 {
		return fmt.Errorf("llm compare: too few jobs (%d)", len(points))
	}
	// Points arrive in submit order, so the midpoint record splits the
	// window in half.
	mid := points[len(points)/2].Submit
	var early, late []analyze.WaitPoint
	for _, p := range points {
		if p.Submit.Before(mid) {
			early = append(early, p)
		} else {
			late = append(late, p)
		}
	}
	a := WaitChartPoints(cfg.SystemName+" (first half)", early)
	b := WaitChartPoints(cfg.SystemName+" (second half)", late)
	pngA, err := raster.PNG(a, cfg.ChartWidth, cfg.ChartHeight)
	if err != nil {
		return err
	}
	pngB, err := raster.PNG(b, cfg.ChartWidth, cfg.ChartHeight)
	if err != nil {
		return err
	}
	imgA, err := llm.EncodeImage("waits-first", pngA, a)
	if err != nil {
		return err
	}
	imgB, err := llm.EncodeImage("waits-second", pngB, b)
	if err != nil {
		return err
	}
	resp, err := cfg.LLM.Analyze(ctx, llm.ComparePrompt, imgA, imgB)
	if err != nil {
		return fmt.Errorf("llm compare: %w", err)
	}
	return os.WriteFile(outPath, insightMarkdown("wait-times-compare", resp), 0o644)
}

func insightMarkdown(key string, resp *llm.Response) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# LLM analysis: %s\n\nmodel: %s\n\n%s\n\n## Statistics\n\n", key, resp.Model, resp.Text)
	keys := make([]string, 0, len(resp.Stats))
	for k := range resp.Stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "- %s: %.4f\n", k, resp.Stats[k])
	}
	return []byte(b.String())
}

// dashboardIndex renders the consolidated dashboard page linking every
// artifact (the Plotly-Dash substitute is served by internal/dashboard).
func dashboardIndex(system string, art *Artifacts) []byte {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>SlurmSight dashboard</title><style>\n")
	b.WriteString("body{font-family:sans-serif;margin:2em;} iframe{border:1px solid #ccc;width:100%;height:600px;}\n")
	b.WriteString("h2{margin-top:2em;} .insight{background:#f7f7f7;padding:1em;border-left:4px solid #1f77b4;}\n")
	b.WriteString("</style></head><body>\n")
	fmt.Fprintf(&b, "<h1>Scheduling analytics: %s</h1>\n", system)
	for _, key := range append(FigureKeys(), ExtendedFigureKeys()...) {
		fig, ok := art.Figures[key]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "<h2>%s</h2>\n<iframe src=%q></iframe>\n", key, filepath.Base(fig.HTMLPath))
		if fig.InsightPath != "" {
			fmt.Fprintf(&b, "<p><a href=%q>LLM insight</a></p>\n", filepath.Base(fig.InsightPath))
		}
	}
	if art.ComparePath != "" {
		fmt.Fprintf(&b, "<p><a href=%q>LLM wait-time comparison</a></p>\n", filepath.Base(art.ComparePath))
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}
