package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestWorkflowParallelIngestMatchesSequential pins the tentpole
// determinism contract end to end: a workflow run with the parallel
// chunked byte ingest plane (IngestWorkers=4) must emit figure JSON and
// CSV sidecars byte-identical to the sequential run, with the same
// curation report.
func TestWorkflowParallelIngestMatchesSequential(t *testing.T) {
	seqCfg := baseConfig(t)
	seqCfg.IngestWorkers = 1 // pin the sequential baseline (0 = auto)
	seqArt, err := Run(context.Background(), seqCfg)
	if err != nil {
		t.Fatal(err)
	}

	parCfg := baseConfig(t)
	parCfg.IngestWorkers = 4
	parArt, err := Run(context.Background(), parCfg)
	if err != nil {
		t.Fatal(err)
	}

	if parArt.Records != seqArt.Records || parArt.Curation != seqArt.Curation {
		t.Errorf("parallel run counted records=%d curation=%+v, sequential records=%d curation=%+v",
			parArt.Records, parArt.Curation, seqArt.Records, seqArt.Curation)
	}

	// Every CSV sidecar must be byte-identical.
	if len(parArt.CSVPaths) != len(seqArt.CSVPaths) {
		t.Fatalf("sidecar count %d vs %d", len(parArt.CSVPaths), len(seqArt.CSVPaths))
	}
	for i := range seqArt.CSVPaths {
		compareFiles(t, seqArt.CSVPaths[i], parArt.CSVPaths[i])
	}

	// Every figure spec must be byte-identical.
	for _, key := range FigureKeys() {
		sf, pf := seqArt.Figures[key], parArt.Figures[key]
		if sf == nil || pf == nil {
			t.Fatalf("figure %s missing (seq=%v par=%v)", key, sf != nil, pf != nil)
		}
		compareFiles(t, sf.SpecPath, pf.SpecPath)
	}
}

func compareFiles(t *testing.T, a, b string) {
	t.Helper()
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Errorf("%s differs from %s (%d vs %d bytes)",
			filepath.Base(b), filepath.Base(a), len(db), len(da))
	}
}
