package core

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slurmsight/internal/cluster"
	"slurmsight/internal/llm"
	"slurmsight/internal/plot"
	"slurmsight/internal/sacct"
	"slurmsight/internal/sched"
	"slurmsight/internal/tracegen"
)

var andesStore *sacct.Store

// testAndesStore simulates a small Andes workload once.
func testAndesStore(t *testing.T) *sacct.Store {
	t.Helper()
	if andesStore != nil {
		return andesStore
	}
	p := tracegen.AndesProfile()
	p.JobsPerDay, p.Users = 25, 25
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: t0, End: t0.AddDate(0, 0, 35),
	}}, 29)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := sched.New(sched.DefaultConfig(cluster.Andes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	st := sacct.NewStore()
	if err := st.Ingest(res); err != nil {
		t.Fatal(err)
	}
	st.Finalize()
	andesStore = st
	return st
}

func TestRunFederated(t *testing.T) {
	analyst := httptest.NewServer(llm.NewServer("sk-fed").Handler())
	defer analyst.Close()
	client := llm.NewClient(analyst.URL, "sk-fed")

	outDir := t.TempDir()
	frontierCfg := baseConfig(t)
	frontierCfg.OutputDir = "" // federated default placement
	frontierCfg.EnableAI = true
	frontierCfg.LLM = client

	andesCfg := baseConfig(t)
	andesCfg.SystemName = "andes"
	andesCfg.Store = testAndesStore(t)
	andesCfg.OutputDir = ""

	fed, err := RunFederated(context.Background(), outDir, []Member{
		{Config: frontierCfg}, {Config: andesCfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Members) != 2 {
		t.Fatalf("members = %d", len(fed.Members))
	}
	for _, name := range []string{"frontier", "andes"} {
		art := fed.Members[name]
		if art == nil || art.Jobs == 0 {
			t.Fatalf("member %s missing or empty", name)
		}
		if _, err := os.Stat(filepath.Join(outDir, name, "dashboard.html")); err != nil {
			t.Errorf("member %s dashboard missing: %v", name, err)
		}
	}
	// The comparison layer reproduces the §4.3 contrasts.
	cmp := fed.Comparison
	if cmp == nil {
		t.Fatal("no comparison")
	}
	if cmp.ScaleB.MedianNodes > cmp.ScaleA.MedianNodes {
		t.Errorf("Andes median nodes %v > Frontier %v", cmp.ScaleB.MedianNodes, cmp.ScaleA.MedianNodes)
	}
	if cmp.UsersB.MeanFailedShare >= cmp.UsersA.MeanFailedShare {
		t.Errorf("Andes failed share %v ≥ Frontier %v", cmp.UsersB.MeanFailedShare, cmp.UsersA.MeanFailedShare)
	}
	// The comparison chart embeds a valid spec.
	page, err := os.ReadFile(fed.ComparisonChartPath)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := plot.SpecFromHTML(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Series) != 2 || len(spec.Categories) != 5 {
		t.Errorf("comparison chart shape: %d series, %d categories", len(spec.Series), len(spec.Categories))
	}
	// Federated index links both members.
	index, err := os.ReadFile(fed.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"frontier/dashboard.html", "andes/dashboard.html", "federated-comparison.html"} {
		if !strings.Contains(string(index), want) {
			t.Errorf("federated index missing %q", want)
		}
	}
	// The LLM cross-facility narrative exists and names both systems.
	compare, err := os.ReadFile(fed.ComparePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(compare), "overestimating") {
		t.Errorf("federated compare lacks the shared over-estimation finding:\n%s", compare)
	}
}

func TestRunFederatedErrors(t *testing.T) {
	cfg := baseConfig(t)
	if _, err := RunFederated(context.Background(), t.TempDir(), []Member{{Config: cfg}}); err == nil {
		t.Error("single member: want error")
	}
	if _, err := RunFederated(context.Background(), "", []Member{{Config: cfg}, {Config: cfg}}); err == nil {
		t.Error("no out dir: want error")
	}
	dup := baseConfig(t)
	if _, err := RunFederated(context.Background(), t.TempDir(), []Member{{Config: cfg}, {Config: dup}}); err == nil {
		t.Error("duplicate system names: want error")
	}
	unnamed := baseConfig(t)
	unnamed.SystemName = ""
	if _, err := RunFederated(context.Background(), t.TempDir(), []Member{{Config: cfg}, {Config: unnamed}}); err == nil {
		t.Error("unnamed member: want error")
	}
}
