package core

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"slurmsight/internal/obs"
)

// TestWorkflowObservability runs the static workflow with tracing and
// metrics on and checks the full observability surface: stage spans for
// every layer, the workflow-trace.json artifact, a Perfetto-loadable
// Chrome trace, and the curate/analyze/dataflow metric families.
func TestWorkflowObservability(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Tracer = obs.NewTracer()
	cfg.Metrics = obs.NewRegistry()

	art, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// --- Spans: one root, one per task, stage attributes on the bodies.
	spans := cfg.Tracer.Snapshot()
	byName := map[string]obs.SpanData{}
	stages := map[string]int{}
	for _, d := range spans {
		byName[d.Name] = d
		if st := d.Attr("stage"); st != "" {
			stages[st]++
		}
	}
	for _, name := range []string{"dataflow-run", "obtain-data", "combine", "dashboard", "report"} {
		d, ok := byName[name]
		if !ok {
			t.Fatalf("span %q missing (have %d spans)", name, len(spans))
		}
		if !d.Ended {
			t.Errorf("span %q never ended", name)
		}
	}
	for _, stage := range []string{"obtain", "curate", "analyze", "render", "emit"} {
		if stages[stage] == 0 {
			t.Errorf("no span carries stage=%s", stage)
		}
	}
	var curateSpan *obs.SpanData
	for i := range spans {
		if strings.HasPrefix(spans[i].Name, "curate-") {
			curateSpan = &spans[i]
			break
		}
	}
	if curateSpan == nil {
		t.Fatal("no curate-<period> span")
	}
	for _, key := range []string{"period", "rows_kept", "outcome"} {
		if curateSpan.Attr(key) == "" {
			t.Errorf("curate span missing %s attribute: %+v", key, curateSpan.Attrs)
		}
	}

	// --- workflow-trace.json: present, parseable, consistent with the run.
	data, err := os.ReadFile(art.TraceJSONPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Tasks []struct {
			Name    string `json:"name"`
			Outcome string `json:"outcome"`
		} `json:"tasks"`
		OK int `json:"ok"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("workflow-trace.json: %v", err)
	}
	if len(doc.Tasks) != len(art.Trace.Tasks) || doc.OK != len(doc.Tasks) {
		t.Errorf("trace JSON has %d tasks (%d ok), run had %d",
			len(doc.Tasks), doc.OK, len(art.Trace.Tasks))
	}

	// --- Chrome trace: every task span exported as a complete event.
	var chrome strings.Builder
	if err := cfg.Tracer.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var events struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(chrome.String()), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range events.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"dataflow-run", "combine", "plot-" + FigWaitTimes} {
		if !names[want] {
			t.Errorf("chrome trace missing event %q", want)
		}
	}

	// --- Metrics: curate row accounting matches the curation report, the
	// dataflow counters match the trace, and the text exposition carries
	// the families /metrics serves.
	reads := cfg.Metrics.Counter("curate_rows_read_total").Value()
	kept := cfg.Metrics.Counter("curate_rows_kept_total").Value()
	if int(kept) != art.Curation.Kept || reads < kept {
		t.Errorf("curate metrics read=%d kept=%d, report kept=%d",
			reads, kept, art.Curation.Kept)
	}
	if got := cfg.Metrics.Counter("analyze_records_observed_total").Value(); int(got) != art.Records {
		t.Errorf("analyze_records_observed_total = %d, want %d", got, art.Records)
	}
	if got := cfg.Metrics.Counter("dataflow_tasks_ok_total").Value(); int(got) != len(art.Trace.Tasks) {
		t.Errorf("dataflow_tasks_ok_total = %d, want %d", got, len(art.Trace.Tasks))
	}
	var text strings.Builder
	cfg.Metrics.WriteText(&text)
	for _, family := range []string{
		"curate_rows_read_total", "analyze_merge_seconds", "dataflow_task_seconds",
	} {
		if !strings.Contains(text.String(), family) {
			t.Errorf("metrics exposition missing %s", family)
		}
	}
}

// TestWorkflowTraceJSONWithoutTracer checks the artifact still appears on
// an uninstrumented run — the trace JSON comes from the dataflow trace,
// not the tracer, so it is always available.
func TestWorkflowTraceJSONWithoutTracer(t *testing.T) {
	cfg := baseConfig(t)
	art, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(art.TraceJSONPath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Error("workflow-trace.json is not valid JSON")
	}
}
