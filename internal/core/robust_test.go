package core

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"slurmsight/internal/dataflow"
	"slurmsight/internal/llm"
)

// brokenAnalyzeServer serves the real endpoint but hard-fails every
// /v1/analyze call — the "LLM API is down" scenario.
func brokenAnalyzeServer(t *testing.T) *httptest.Server {
	t.Helper()
	real := llm.NewServer("sk-test").Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/analyze" {
			http.Error(w, `{"error":"model offline"}`, http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func fastClient(url string) *llm.Client {
	c := llm.NewClient(url, "sk-test")
	c.MaxRetries = 0
	c.Backoff = time.Millisecond
	c.Sleep = func(time.Duration) {}
	return c
}

// TestContinueOnErrorDegradesGracefully is the acceptance scenario: the
// LLM backend is down, yet with ContinueOnError the static analysis
// pipeline completes every figure, the run reports each AI failure, and
// the outcome DOT shows what happened.
func TestContinueOnErrorDegradesGracefully(t *testing.T) {
	ts := brokenAnalyzeServer(t)
	cfg := baseConfig(t)
	cfg.EnableAI = true
	cfg.LLM = fastClient(ts.URL)
	cfg.ContinueOnError = true

	art, err := Run(context.Background(), cfg)
	var runErr *dataflow.RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("err = %v, want *dataflow.RunError", err)
	}
	if art == nil {
		t.Fatal("partial failure must still return artifacts")
	}
	// Every LLM stage fails: one insight per non-volume figure plus the
	// wait comparison.
	wantFailures := len(FigureKeys()) - 1 + 1
	if len(runErr.Errs) != wantFailures {
		t.Errorf("reported %d failures, want %d: %v", len(runErr.Errs), wantFailures, runErr)
	}
	for _, e := range runErr.Errs {
		if !strings.Contains(e.Error(), "llm") {
			t.Errorf("unexpected failing stage: %v", e)
		}
	}

	// The static pipeline survived end to end.
	for _, key := range FigureKeys() {
		fig := art.Figures[key]
		if _, err := os.Stat(fig.HTMLPath); err != nil {
			t.Errorf("figure %s missing despite ContinueOnError: %v", key, err)
		}
	}
	if _, err := os.Stat(art.DashboardPath); err != nil {
		t.Errorf("dashboard missing: %v", err)
	}
	if art.Records == 0 {
		t.Error("no records curated")
	}

	// The trace accounts for everything: failures for the LLM stages, a
	// skip for the report (downstream of the insights).
	okN, failed, skipped, _ := art.Trace.Counts()
	if failed != wantFailures {
		t.Errorf("trace failed = %d, want %d", failed, wantFailures)
	}
	if skipped == 0 {
		t.Error("report stage should be skipped downstream of failed insights")
	}
	if okN+failed+skipped != len(art.Trace.Tasks) {
		t.Errorf("outcome counts inconsistent: %d+%d+%d != %d",
			okN, failed, skipped, len(art.Trace.Tasks))
	}

	// The outcome graph narrates the failures.
	dot, err := os.ReadFile(art.StatusDOTPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"failed", "skipped", "color=darkgreen"} {
		if !strings.Contains(string(dot), want) {
			t.Errorf("workflow-status.dot missing %q", want)
		}
	}
}

// TestFailFastStillAborts pins the default: without ContinueOnError a
// dead LLM backend fails the whole run.
func TestFailFastStillAborts(t *testing.T) {
	ts := brokenAnalyzeServer(t)
	cfg := baseConfig(t)
	cfg.EnableAI = true
	cfg.LLM = fastClient(ts.URL)

	art, err := Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("want error")
	}
	var runErr *dataflow.RunError
	if errors.As(err, &runErr) {
		t.Fatalf("fail-fast run should not aggregate: %v", err)
	}
	if art != nil {
		t.Error("fail-fast run should not return artifacts")
	}
}

// TestTaskRetriesRecoverFlakySurface drives the full workflow against a
// probabilistically faulty endpoint and requires a clean finish: client
// retries absorb 429/500 bursts, task attempts absorb anything that
// leaks through.
func TestTaskRetriesRecoverFlakySurface(t *testing.T) {
	faults := &llm.FaultPolicy{
		Rate429:    0.15,
		Rate500:    0.15,
		RetryAfter: time.Millisecond,
		Seed:       9,
	}
	ts := httptest.NewServer(faults.Middleware(llm.NewServer("sk-test").Handler()))
	t.Cleanup(ts.Close)

	cfg := baseConfig(t)
	cfg.EnableAI = true
	client := fastClient(ts.URL)
	client.MaxRetries = 6
	cfg.LLM = client
	cfg.TaskAttempts = 3
	cfg.TaskBackoff = time.Millisecond
	cfg.ContinueOnError = true

	art, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("retries failed to absorb the fault schedule: %v", err)
	}
	if faults.Injected("429")+faults.Injected("500") == 0 {
		t.Fatal("fault schedule was inert — test proves nothing")
	}
	for _, key := range FigureKeys() {
		if key == FigVolume {
			continue
		}
		if _, err := os.Stat(art.Figures[key].InsightPath); err != nil {
			t.Errorf("insight %s missing after recovery: %v", key, err)
		}
	}
}
