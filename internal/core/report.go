package core

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"slurmsight/internal/slurm"
)

// WriteReport renders a self-contained markdown analysis report from a
// run's artifacts — the narrative §4 of the paper, regenerated for the
// analysed trace. It embeds the figure summaries, links the interactive
// artifacts, and inlines any LLM interpretations the run produced.
func WriteReport(art *Artifacts, system string, path string) error {
	var b strings.Builder
	s := &art.Summaries

	fmt.Fprintf(&b, "# Scheduling analysis report: %s\n\n", system)
	fmt.Fprintf(&b, "Curated records: %d (%d jobs, %d steps; %d malformed rows dropped, %.4f%%).\n\n",
		art.Records, art.Jobs, art.Records-art.Jobs,
		art.Curation.Malformed, 100*art.Curation.MalformedFraction())

	b.WriteString("## Job and job-step volume\n\n")
	b.WriteString("| year | jobs | job-steps |\n|---|---|---|\n")
	for _, v := range s.Volume {
		fmt.Fprintf(&b, "| %d | %d | %d |\n", v.Year, v.Jobs, v.Steps)
	}
	fmt.Fprintf(&b, "\nJob-steps outnumber jobs %.1f to 1: fine-grained srun task execution "+
		"dominates the machine's real execution units.\n\n", s.StepJobRatio)

	b.WriteString("## Workload scale\n\n")
	fmt.Fprintf(&b, "The median job allocates %.0f nodes for %s. %.0f%% of jobs are small "+
		"and short (≤4 nodes, <2 h); %.2f%% are large and long (≥1000 nodes, ≥6 h).\n\n",
		s.Scale.MedianNodes, humanDur(s.Scale.MedianElapsedSec),
		100*s.Scale.SmallShortShare, 100*s.Scale.LargeLongShare)

	b.WriteString("## Queue waits\n\n")
	fmt.Fprintf(&b, "Median wait %s, 90th percentile %s, 99th percentile %s. %.2f%% of jobs "+
		"waited beyond 100,000 s.\n\n",
		humanDur(s.Waits.P50), humanDur(s.Waits.P90), humanDur(s.Waits.P99),
		100*s.Waits.LongWaits)
	if len(s.Waits.PerState) > 0 {
		b.WriteString("| final state | jobs | median wait | mean wait |\n|---|---|---|---|\n")
		states := make([]slurm.State, 0, len(s.Waits.PerState))
		for st := range s.Waits.PerState {
			states = append(states, st)
		}
		sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
		for _, st := range states {
			sum := s.Waits.PerState[st]
			fmt.Fprintf(&b, "| %s | %d | %s | %s |\n",
				st, sum.N, humanDur(sum.Median), humanDur(sum.Mean))
		}
		b.WriteString("\n")
	}

	b.WriteString("## User behaviour\n\n")
	fmt.Fprintf(&b, "%d users; mean unsuccessful-job share %.1f%% (std %.2f across users). "+
		"The top decile of failing users owns %.0f%% of all failures.\n\n",
		s.Users.Users, 100*s.Users.MeanFailedShare, s.Users.StdFailedShare,
		100*s.Users.TopDecileFailures)

	b.WriteString("## Walltime estimation and backfill\n\n")
	fmt.Fprintf(&b, "%.0f%% of jobs use less than 75%% of their requested walltime; the "+
		"median job uses %.0f%%. %.1f%% of started jobs were backfill placements "+
		"(median runtime %s vs %s for regular starts). A perfect predictor would "+
		"reclaim %.0f node-hours.\n\n",
		100*s.Backfill.OverestimateShare, 100*s.Backfill.MedianUseRatio,
		100*s.Backfill.BackfilledShare,
		humanDur(s.Backfill.MedianActualBackfilled), humanDur(s.Backfill.MedianActualRegular),
		s.Reclaimable)

	if len(s.Classes) > 0 {
		b.WriteString("## Workload classes\n\n")
		b.WriteString("| class | jobs | node-hours | median nodes | median wait | failed share | use ratio | backfilled |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|\n")
		for _, c := range s.Classes {
			fmt.Fprintf(&b, "| %s | %d | %.0f | %.0f | %s | %.1f%% | %.0f%% | %.0f%% |\n",
				c.Class, c.Jobs, c.NodeHours, c.MedianNodes, humanDur(c.MedianWaitS),
				100*c.FailedShare, 100*c.MedianUseRatio, 100*c.BackfillShare)
		}
		b.WriteString("\n")
	}

	if s.Load.Buckets > 0 {
		b.WriteString("## System load\n\n")
		fmt.Fprintf(&b, "Mean utilization %.0f%% (peak %.0f busy nodes); queue depth "+
			"averaged %.1f pending jobs and peaked at %.0f.\n\n",
			100*s.Load.MeanUtilization, s.Load.PeakBusyNodes,
			s.Load.MeanQueueDepth, s.Load.PeakQueueDepth)
	}

	b.WriteString("## Artifacts\n\n")
	keys := make([]string, 0, len(art.Figures))
	for k := range art.Figures {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fig := art.Figures[key]
		fmt.Fprintf(&b, "- [%s](%s)", key, fileBase(fig.HTMLPath))
		if fig.InsightPath != "" {
			fmt.Fprintf(&b, " — [LLM insight](%s)", fileBase(fig.InsightPath))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "- [dashboard](%s)\n- [dataflow graph](%s)\n",
		fileBase(art.DashboardPath), fileBase(art.DOTPath))
	if art.ComparePath != "" {
		fmt.Fprintf(&b, "- [wait-time comparison](%s)\n", fileBase(art.ComparePath))
	}
	b.WriteString("\n")

	// Inline the LLM interpretations when present.
	inlined := false
	for _, key := range keys {
		fig := art.Figures[key]
		if fig.InsightPath == "" {
			continue
		}
		data, err := os.ReadFile(fig.InsightPath)
		if err != nil {
			continue
		}
		if !inlined {
			b.WriteString("## LLM interpretations\n\n")
			inlined = true
		}
		fmt.Fprintf(&b, "### %s\n\n%s\n\n", key, extractProse(string(data)))
	}

	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// extractProse returns the analysis paragraph of an insight artifact,
// without its header and statistics appendix.
func extractProse(md string) string {
	if i := strings.Index(md, "## Statistics"); i > 0 {
		md = md[:i]
	}
	lines := strings.Split(md, "\n")
	var keep []string
	for _, l := range lines {
		if strings.HasPrefix(l, "#") || strings.HasPrefix(l, "model:") {
			continue
		}
		keep = append(keep, l)
	}
	return strings.TrimSpace(strings.Join(keep, "\n"))
}

func fileBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

func humanDur(seconds float64) string {
	return (time.Duration(seconds) * time.Second).Round(time.Second).String()
}
