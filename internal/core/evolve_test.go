package core

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/llm"
	"slurmsight/internal/obs"
	"slurmsight/internal/sched/tournament"
	"slurmsight/internal/tracegen"
)

var evT0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func evolveSystem() *cluster.System {
	s := &cluster.System{
		Name:         "tiny",
		Nodes:        10,
		CoresPerNode: 8,
		MemPerNode:   64 << 30,
		Partitions: []cluster.Partition{
			{Name: "batch", Nodes: 10, MaxWall: 24 * time.Hour, Default: true},
		},
		QOSLevels: []cluster.QOS{{Name: "normal"}},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

func evolveTrace(t *testing.T, sys *cluster.System) []tracegen.Request {
	t.Helper()
	rng := rand.New(rand.NewSource(53))
	day := func(h float64) float64 { return h * 3600 }
	mk := func(name string, w float64) tracegen.Class {
		return tracegen.Class{
			Name:         name,
			Weight:       w,
			Nodes:        tracegen.Clamped{D: tracegen.LogNormalMedian(1+rng.Float64()*4, 1.8), Lo: 1, Hi: 10},
			Runtime:      tracegen.Clamped{D: tracegen.LogNormalMedian(day(0.3), 2.0), Lo: 60, Hi: day(12)},
			Overestimate: tracegen.Clamped{D: tracegen.LogNormalMedian(2, 1.5), Lo: 1, Hi: 8},
			Steps:        tracegen.Clamped{D: tracegen.LogNormalMedian(2, 1.5), Lo: 1, Hi: 5},
		}
	}
	p := tracegen.Profile{
		Name:       "evolve-test",
		System:     sys,
		JobsPerDay: 60,
		Users:      10,
		Classes:    []tracegen.Class{mk("small", 0.6), mk("large", 0.4)},
	}
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: evT0, End: evT0.AddDate(0, 0, 3),
	}}, 53)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestEvolveEndToEnd drives the full loop against the real canned
// advisor: tournament → /v1/evolve → apply → re-simulate, for at least
// two rounds, asserting deltas were parsed, applied, and re-scored.
func TestEvolveEndToEnd(t *testing.T) {
	srv := llm.NewServer("sk-test")
	srv.RatePerSec = 0
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sys := evolveSystem()
	reg := obs.NewRegistry()
	res, err := Evolve(context.Background(), EvolveConfig{
		Client:    llm.NewClient(ts.URL, "sk-test"),
		Rounds:    3,
		Objective: "mean_wait_sec",
		Target:    "evolved",
		Specs: []tournament.Spec{
			{Name: "evolved"},
			{Name: "aging", Preset: "aging"},
			{Name: "fifo", Preset: "fifo"},
			{Name: "conservative", Backfill: "conservative"},
		},
		Reqs:    evolveTrace(t, sys),
		System:  sys,
		Seed:    53,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 2 {
		t.Fatalf("loop ran %d rounds, want ≥2", len(res.Rounds))
	}
	var applied int
	for _, r := range res.Rounds {
		if r.Scorecard == nil || r.Scorecard.Schema != tournament.Schema {
			t.Fatalf("round %d missing scorecard", r.Round)
		}
		applied += len(r.Applied)
		for _, d := range r.Applied {
			if d.Policy != "evolved" {
				t.Errorf("round %d applied a delta for %q", r.Round, d.Policy)
			}
		}
	}
	if applied == 0 {
		t.Fatal("no deltas applied across the trajectory")
	}
	// The final spec must differ from the starting default: the loop
	// actually moved the policy.
	if res.FinalSpec.Weights == nil && res.FinalSpec.Backfill == "" &&
		res.FinalSpec.Priority == "" && res.FinalSpec.NodeSelect == "" {
		t.Errorf("final spec unchanged: %+v", res.FinalSpec)
	}
	if res.Final == nil || res.Final.Schema != tournament.Schema {
		t.Fatal("missing final re-score")
	}
	// The audit trajectory serialises cleanly once elapsed is stripped.
	res.StripElapsed()
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("evolve_rounds_total").Value() != int64(len(res.Rounds)) {
		t.Errorf("evolve_rounds_total %d, rounds %d",
			reg.Counter("evolve_rounds_total").Value(), len(res.Rounds))
	}
	if reg.Counter("evolve_deltas_applied_total").Value() != int64(applied) {
		t.Error("applied counter out of sync with trajectory")
	}
}

// TestEvolveRejectsBadDeltas runs the loop against a stub advisor that
// proposes one valid and several invalid deltas: the invalid ones must be
// logged as rejected, never applied, and never abort the loop.
func TestEvolveRejectsBadDeltas(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/evolve" {
			http.NotFound(w, r)
			return
		}
		resp := llm.EvolveResponse{
			Rationale: "stub",
			Deltas: []llm.ParamDelta{
				{Policy: "evolved", Param: "age_weight", Op: "scale", Value: 1.5},         // valid
				{Policy: "evolved", Param: "age_weight", Op: "scale", Value: 99},          // scale out of bounds
				{Policy: "evolved", Param: "quantum_weight", Op: "scale", Value: 1.1},     // unknown param
				{Policy: "other", Param: "age_weight", Op: "scale", Value: 1.1},           // wrong target
				{Policy: "evolved", Param: "backfill", Op: "set", Str: "psychic"},         // unknown strategy
				{Policy: "evolved", Param: "backfill_depth", Op: "set", Value: -5},        // bad depth
				{Policy: "evolved", Param: "size_weight", Op: "set", Value: 99_000_000_0}, // over max weight
			},
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	}))
	defer stub.Close()

	sys := evolveSystem()
	res, err := Evolve(context.Background(), EvolveConfig{
		Client: llm.NewClient(stub.URL, ""),
		Rounds: 1,
		Target: "evolved",
		Specs: []tournament.Spec{
			{Name: "evolved"},
			{Name: "fifo", Preset: "fifo"},
		},
		Reqs:   evolveTrace(t, sys),
		System: sys,
		Seed:   53,
	})
	if err != nil {
		t.Fatal(err)
	}
	round := res.Rounds[0]
	if len(round.Applied) != 1 || round.Applied[0].Param != "age_weight" {
		t.Errorf("applied %+v, want exactly the one valid delta", round.Applied)
	}
	if len(round.Rejected) != 6 {
		t.Errorf("%d rejections, want 6: %+v", len(round.Rejected), round.Rejected)
	}
	for _, rej := range round.Rejected {
		if rej.Reason == "" {
			t.Errorf("rejection without a reason: %+v", rej)
		}
	}
	// The single valid scale must have landed: age 300000 → 450000.
	if res.FinalSpec.Weights == nil || res.FinalSpec.Weights.Age == nil ||
		*res.FinalSpec.Weights.Age != 450_000 {
		t.Errorf("final weights %+v, want age=450000", res.FinalSpec.Weights)
	}
}

// TestEvolveSurvivesFaultInjection exercises the loop through the fault
// middleware: transient 429/500 bursts must be absorbed by the client's
// retry core without corrupting the trajectory.
func TestEvolveSurvivesFaultInjection(t *testing.T) {
	srv := llm.NewServer("sk-test")
	srv.RatePerSec = 0
	faults := &llm.FaultPolicy{Seed: 7, Rate500: 0.3, Rate429: 0.2}
	ts := httptest.NewServer(faults.Middleware(srv.Handler()))
	defer ts.Close()

	client := llm.NewClient(ts.URL, "sk-test")
	client.Sleep = func(time.Duration) {} // no real backoff waits in tests
	client.MaxRetries = 8

	sys := evolveSystem()
	res, err := Evolve(context.Background(), EvolveConfig{
		Client: client,
		Rounds: 2,
		Target: "evolved",
		Specs: []tournament.Spec{
			{Name: "evolved"},
			{Name: "aging", Preset: "aging"},
		},
		Reqs:   evolveTrace(t, sys),
		System: sys,
		Seed:   53,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 || res.Final == nil {
		t.Fatal("faulted loop produced no trajectory")
	}
}

// TestEvolveRoundSnapshotsIndependent pins the audit-record semantics:
// each round's Spec is the state after that round's applications, not a
// view of the live spec that later rounds keep mutating.
func TestEvolveRoundSnapshotsIndependent(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(llm.EvolveResponse{
			Rationale: "stub",
			Deltas: []llm.ParamDelta{
				{Policy: "evolved", Param: "age_weight", Op: "scale", Value: 1.5},
			},
		})
	}))
	defer stub.Close()

	sys := evolveSystem()
	res, err := Evolve(context.Background(), EvolveConfig{
		Client: llm.NewClient(stub.URL, ""),
		Rounds: 2,
		Target: "evolved",
		Specs: []tournament.Spec{
			{Name: "evolved"},
			{Name: "fifo", Preset: "fifo"},
		},
		Reqs:   evolveTrace(t, sys),
		System: sys,
		Seed:   53,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Default age weight 300000: round 0 → 450000, round 1 → 675000.
	age := func(i int) int64 {
		w := res.Rounds[i].Spec.Weights
		if w == nil || w.Age == nil {
			t.Fatalf("round %d spec has no age weight", i)
		}
		return *w.Age
	}
	if age(0) != 450_000 || age(1) != 675_000 {
		t.Errorf("round snapshots age=%d,%d; want 450000,675000 (aliased audit records?)",
			age(0), age(1))
	}
}

func TestEvolveConfigValidation(t *testing.T) {
	sys := evolveSystem()
	reqs := evolveTrace(t, sys)
	client := llm.NewClient("http://localhost:0", "")
	base := EvolveConfig{
		Client: client, Rounds: 1, Target: "evolved",
		Specs: []tournament.Spec{{Name: "evolved"}, {Name: "fifo", Preset: "fifo"}},
		Reqs:  reqs, System: sys, Seed: 1,
	}
	for name, mutate := range map[string]func(*EvolveConfig){
		"nil client":     func(c *EvolveConfig) { c.Client = nil },
		"zero rounds":    func(c *EvolveConfig) { c.Rounds = 0 },
		"missing target": func(c *EvolveConfig) { c.Target = "ghost" },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := base
			mutate(&cfg)
			if _, err := Evolve(context.Background(), cfg); err == nil {
				t.Error("Evolve accepted bad config")
			}
		})
	}
}
