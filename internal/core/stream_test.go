package core

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"slurmsight/internal/curate"
	"slurmsight/internal/plot"
	"slurmsight/internal/sacct"
	"slurmsight/internal/slurm"
)

// TestWorkflowSinglePassCounting pins the streaming pipeline's central
// claim with the curate package's pass counters: a run opens each period
// file exactly once, and decodes each row exactly once — the CSV sidecar
// and every figure are fed from that single pass.
func TestWorkflowSinglePassCounting(t *testing.T) {
	cfg := baseConfig(t)
	cfg.ExtendedFigures = true

	before := curate.Stats()
	art, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := curate.Stats()

	if len(art.Fetched) == 0 || art.Curation.Total == 0 {
		t.Fatalf("degenerate run: %d periods, %d rows", len(art.Fetched), art.Curation.Total)
	}
	opened := after.FilesOpened - before.FilesOpened
	if want := int64(len(art.Fetched)); opened != want {
		t.Errorf("opened %d period files, want exactly one open per period (%d)", opened, want)
	}
	decoded := after.RowsDecoded - before.RowsDecoded
	if want := int64(art.Curation.Total); decoded != want {
		t.Errorf("decoded %d rows, want one decode per record (%d): figures must share the pass", decoded, want)
	}
}

// TestWorkflowFiguresMatchDirectBuilders is the workflow-level golden
// test: the figure spec JSON written by the streaming per-period
// bundle-and-merge path must be byte-identical to charts built the
// pre-refactor way — every period file curated into one slice, globally
// sorted by job ID, and handed to the multi-pass builders.
func TestWorkflowFiguresMatchDirectBuilders(t *testing.T) {
	cfg := baseConfig(t)
	cfg.ExtendedFigures = true
	cfg.SystemNodes = 9408

	art, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	var paths []string
	for _, f := range art.Fetched {
		paths = append(paths, filepath.Join(cfg.CacheDir, sacct.PeriodFileName(f.Period)))
	}
	recs, _, err := curate.LoadRecordsFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(recs, func(i, j int) bool {
		return slurm.CompareJobID(recs[i].ID, recs[j].ID) < 0
	})

	defaults := cfg.withDefaults()
	want := map[string]*plot.Chart{
		FigVolume:       VolumeChart(cfg.SystemName, recs),
		FigNodesElapsed: NodesElapsedChart(cfg.SystemName, recs),
		FigWaitTimes:    WaitChart(cfg.SystemName, recs),
		FigStates:       StatesChart(cfg.SystemName, recs, defaults.TopUsers),
		FigBackfill:     BackfillChart(cfg.SystemName, recs),
		ExtLoad:         LoadTimelineChart(cfg.SystemName, recs, cfg.SystemNodes),
		ExtQueueDepth:   QueueDepthChart(cfg.SystemName, recs),
	}
	for key, chart := range want {
		fig := art.Figures[key]
		if fig == nil {
			t.Fatalf("figure %s missing from run", key)
		}
		got, err := os.ReadFile(fig.SpecPath)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		wantJSON, err := chart.JSON()
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if string(got) != string(wantJSON) {
			t.Errorf("%s: streaming spec diverges from direct builder (%d vs %d bytes)",
				key, len(got), len(wantJSON))
		}
	}
}
