// Package core is the paper's primary contribution: the hybrid workflow
// that turns a Slurm accounting database into curated datasets,
// field-specific interactive visualizations, a consolidated dashboard, and
// LLM-generated interpretations. The static data-analysis subworkflow
// (obtain → curate → plot → dashboard) and the user-defined AI subworkflow
// (HTML2PNG → LLM insight / LLM compare) are composed as a dataflow graph
// and executed with N-way concurrency, mirroring the Swift/T parallel
// pipelines of §3.3.
package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"slurmsight/internal/analyze"
	"slurmsight/internal/obs"
	"slurmsight/internal/plot"
	"slurmsight/internal/slurm"
)

// Figure keys name the workflow's chart artifacts; they match the paper's
// figure numbering for the Frontier run.
const (
	FigVolume       = "fig1-volume"
	FigNodesElapsed = "fig3-nodes-vs-elapsed"
	FigWaitTimes    = "fig4-wait-times"
	FigStates       = "fig5-states-per-user"
	FigBackfill     = "fig6-requested-vs-actual"
)

// FigureKeys returns the static figure set in presentation order.
func FigureKeys() []string {
	return []string{FigVolume, FigNodesElapsed, FigWaitTimes, FigStates, FigBackfill}
}

// Extended (non-paper) operator figures.
const (
	ExtLoad       = "ext-load-timeline"
	ExtQueueDepth = "ext-queue-depth"
)

// ExtendedFigureKeys returns the operator figure set.
func ExtendedFigureKeys() []string { return []string{ExtLoad, ExtQueueDepth} }

// maxChartPoints bounds scatter sizes in HTML/PNG artifacts.
const maxChartPoints = 20000

// VolumeChart builds the Figure 1 grouped bars from the full record set
// (jobs and steps).
func VolumeChart(system string, records []slurm.Record) *plot.Chart {
	vols := analyze.JobStepVolume(records)
	return volumeChartOf(system, vols)
}

// VolumeChartCounted is VolumeChart for runs without materialized steps.
func VolumeChartCounted(system string, jobs []slurm.Record, stepsPerJob []int) *plot.Chart {
	return volumeChartOf(system, analyze.JobStepVolumeCounted(jobs, stepsPerJob))
}

// VolumeChartPoints builds Figure 1 from pre-collected per-year volumes
// (the streaming pipeline's VolumeCollector output).
func VolumeChartPoints(system string, vols []analyze.VolumeByYear) *plot.Chart {
	return volumeChartOf(system, vols)
}

func volumeChartOf(system string, vols []analyze.VolumeByYear) *plot.Chart {
	cats := make([]string, len(vols))
	jobs := make([]float64, len(vols))
	steps := make([]float64, len(vols))
	for i, v := range vols {
		cats[i] = strconv.Itoa(v.Year)
		jobs[i] = float64(v.Jobs)
		steps[i] = float64(v.Steps)
	}
	return &plot.Chart{
		Title:  fmt.Sprintf("Jobs and job-steps per year on %s", system),
		XLabel: "year", YLabel: "count",
		Kind: plot.GroupedBar, YScale: plot.Log10,
		Categories: cats,
		Series: []plot.Series{
			{Name: "jobs", Y: jobs, Color: "#1f77b4"},
			{Name: "job-steps", Y: steps, Color: "#ff7f0e"},
		},
	}
}

// NodesElapsedChart builds the Figure 3/7 log-log scatter.
func NodesElapsedChart(system string, jobs []slurm.Record) *plot.Chart {
	return NodesElapsedChartPoints(system, analyze.NodesVsElapsed(jobs))
}

// NodesElapsedChartPoints builds Figure 3/7 from pre-collected points
// (the streaming pipeline's ScaleCollector output).
func NodesElapsedChartPoints(system string, points []analyze.NodesElapsedPoint) *plot.Chart {
	perState := map[slurm.State]*plot.Series{}
	for _, p := range points {
		s, ok := perState[p.State]
		if !ok {
			s = &plot.Series{Name: p.State.String(), Color: plot.StateColor(p.State), Marker: plot.Dot}
			perState[p.State] = s
		}
		s.X = append(s.X, p.ElapsedSec)
		s.Y = append(s.Y, float64(p.Nodes))
	}
	c := &plot.Chart{
		Title:  fmt.Sprintf("Allocated nodes versus job elapsed time on %s", system),
		XLabel: "elapsed time (s)", YLabel: "allocated nodes",
		Kind: plot.Scatter, XScale: plot.Log10, YScale: plot.Log10,
		Series: orderedStateSeries(perState),
	}
	return c.Downsample(maxChartPoints)
}

// WaitChart builds the Figure 4 wait-time scatter, colour-coded by final
// state.
func WaitChart(system string, jobs []slurm.Record) *plot.Chart {
	return WaitChartPoints(system, analyze.WaitTimes(jobs))
}

// WaitChartPoints builds Figure 4 from pre-collected points (the
// streaming pipeline's WaitCollector output).
func WaitChartPoints(system string, points []analyze.WaitPoint) *plot.Chart {
	perState := map[slurm.State]*plot.Series{}
	for _, p := range points {
		s, ok := perState[p.State]
		if !ok {
			s = &plot.Series{Name: p.State.String(), Color: plot.StateColor(p.State), Marker: plot.Dot}
			perState[p.State] = s
		}
		// Log axes reject zero; a sub-second wait reads as one second.
		w := p.WaitSec
		if w < 1 {
			w = 1
		}
		s.X = append(s.X, float64(p.Submit.Unix()))
		s.Y = append(s.Y, w)
	}
	c := &plot.Chart{
		Title:  fmt.Sprintf("Job queue wait times on %s by final state", system),
		XLabel: "submission time", YLabel: "wait time (s)",
		Kind: plot.Scatter, YScale: plot.Log10, XTime: true,
		Series: orderedStateSeries(perState),
	}
	return c.Downsample(maxChartPoints)
}

// StatesChart builds the Figure 5/8 stacked bars for the busiest topN
// users.
func StatesChart(system string, jobs []slurm.Record, topN int) *plot.Chart {
	return StatesChartUsers(system, analyze.StatesPerUser(jobs, topN))
}

// StatesChartUsers builds Figure 5/8 from a pre-aggregated user list
// (the streaming pipeline's UserStatesCollector output).
func StatesChartUsers(system string, users []analyze.UserStates) *plot.Chart {
	cats := make([]string, len(users))
	series := []plot.Series{}
	for _, st := range slurm.TerminalStates() {
		ys := make([]float64, len(users))
		any := false
		for i := range users {
			cats[i] = users[i].User
			if n := users[i].Counts[st]; n > 0 {
				ys[i] = float64(n)
				any = true
			}
		}
		if any {
			series = append(series, plot.Series{Name: st.String(), Y: ys, Color: plot.StateColor(st)})
		}
	}
	return &plot.Chart{
		Title:  fmt.Sprintf("Job end states per user on %s", system),
		XLabel: "user", YLabel: "jobs",
		Kind:       plot.StackedBar,
		Categories: cats,
		Series:     series,
	}
}

// BackfillChart builds the Figure 6/9 requested-versus-actual scatter with
// backfilled jobs marked by plus symbols.
func BackfillChart(system string, jobs []slurm.Record) *plot.Chart {
	return BackfillChartPoints(system, analyze.RequestedVsActual(jobs))
}

// BackfillChartPoints builds Figure 6/9 from pre-collected points (the
// streaming pipeline's BackfillCollector output).
func BackfillChartPoints(system string, points []analyze.BackfillPoint) *plot.Chart {
	regular := plot.Series{Name: "regular", Marker: plot.Dot, Color: "#1f77b4"}
	backfilled := plot.Series{Name: "backfilled", Marker: plot.Plus, Color: "#d62728"}
	for _, p := range points {
		a := p.ActualSec
		if a < 1 {
			a = 1 // log axis floor for instantly-failing jobs
		}
		if p.Backfilled {
			backfilled.X = append(backfilled.X, p.RequestedSec)
			backfilled.Y = append(backfilled.Y, a)
		} else {
			regular.X = append(regular.X, p.RequestedSec)
			regular.Y = append(regular.Y, a)
		}
	}
	var series []plot.Series
	for _, s := range []plot.Series{regular, backfilled} {
		if len(s.Y) > 0 {
			series = append(series, s)
		}
	}
	c := &plot.Chart{
		Title:  fmt.Sprintf("Requested versus actual walltimes on %s", system),
		XLabel: "requested walltime (s)", YLabel: "actual duration (s)",
		Kind: plot.Scatter, XScale: plot.Log10, YScale: plot.Log10,
		Series: series,
	}
	return c.Downsample(maxChartPoints)
}

// timelineBucket is the resolution of the operator timelines.
const timelineBucket = 6 * time.Hour

// TimelineBucket is the exported timeline resolution, so callers that
// collect their own analyze.Bundle (the serving layer) aggregate at the
// same granularity the workflow uses.
const TimelineBucket = timelineBucket

// ChartFromBundle builds the named figure (a FigureKeys or
// ExtendedFigureKeys key) from a collected bundle. topUsers bounds the
// Figure 5 user list; capacityNodes draws the load-timeline reference
// line when positive. Unknown keys error.
func ChartFromBundle(key, system string, b *analyze.Bundle, topUsers, capacityNodes int) (*plot.Chart, error) {
	return ChartFromBundleCtx(context.Background(), key, system, b, topUsers, capacityNodes)
}

// ChartFromBundleCtx is ChartFromBundle under a request context: when
// ctx carries an active obs span, the render reports itself as a
// "figure-render" child span tagged with the figure key, completing the
// serving plane's per-request stage decomposition.
func ChartFromBundleCtx(ctx context.Context, key, system string, b *analyze.Bundle, topUsers, capacityNodes int) (*plot.Chart, error) {
	if sp := obs.SpanFromContext(ctx).Child("figure-render"); sp != nil {
		sp.SetAttr("figure", key)
		defer sp.End()
	}
	switch key {
	case FigVolume:
		return VolumeChartPoints(system, b.Volume.Result()), nil
	case FigNodesElapsed:
		return NodesElapsedChartPoints(system, b.Scale.Result()), nil
	case FigWaitTimes:
		return WaitChartPoints(system, b.Waits.Result()), nil
	case FigStates:
		return StatesChartUsers(system, b.Users.Result(topUsers)), nil
	case FigBackfill:
		return BackfillChartPoints(system, b.Backfill.Result()), nil
	case ExtLoad:
		return LoadTimelineChartPoints(system, b.Timeline.Result(), capacityNodes), nil
	case ExtQueueDepth:
		return QueueDepthChartPoints(system, b.Timeline.Result()), nil
	}
	return nil, fmt.Errorf("core: unknown figure %q", key)
}

// LoadTimelineChart builds the extended system-load view: mean busy nodes
// per bucket with the capacity as a reference series.
func LoadTimelineChart(system string, jobs []slurm.Record, capacityNodes int) *plot.Chart {
	return LoadTimelineChartPoints(system, analyze.Timeline(jobs, timelineBucket), capacityNodes)
}

// LoadTimelineChartPoints builds the load view from a pre-swept timeline
// (the streaming pipeline's TimelineCollector output).
func LoadTimelineChartPoints(system string, points []analyze.TimelinePoint, capacityNodes int) *plot.Chart {
	busy := plot.Series{Name: "busy nodes", Color: "#1f77b4"}
	for _, p := range points {
		busy.X = append(busy.X, float64(p.At.Unix()))
		busy.Y = append(busy.Y, p.BusyNodes)
	}
	series := []plot.Series{busy}
	if capacityNodes > 0 && len(busy.X) > 1 {
		series = append(series, plot.Series{
			Name:  "capacity",
			Color: "#d62728",
			X:     []float64{busy.X[0], busy.X[len(busy.X)-1]},
			Y:     []float64{float64(capacityNodes), float64(capacityNodes)},
		})
	}
	return &plot.Chart{
		Title:  fmt.Sprintf("System load over time on %s", system),
		XLabel: "time", YLabel: "allocated nodes",
		Kind: plot.Line, XTime: true,
		Series: series,
	}
}

// QueueDepthChart builds the extended queue-pressure view.
func QueueDepthChart(system string, jobs []slurm.Record) *plot.Chart {
	return QueueDepthChartPoints(system, analyze.Timeline(jobs, timelineBucket))
}

// QueueDepthChartPoints builds the queue view from a pre-swept timeline.
func QueueDepthChartPoints(system string, points []analyze.TimelinePoint) *plot.Chart {
	depth := plot.Series{Name: "pending jobs", Color: "#ff7f0e"}
	for _, p := range points {
		depth.X = append(depth.X, float64(p.At.Unix()))
		depth.Y = append(depth.Y, p.QueueDepth)
	}
	return &plot.Chart{
		Title:  fmt.Sprintf("Queue depth over time on %s", system),
		XLabel: "time", YLabel: "pending jobs",
		Kind: plot.Line, XTime: true,
		Series: []plot.Series{depth},
	}
}

// orderedStateSeries flattens a per-state series map in canonical state
// order so artifact output is deterministic.
func orderedStateSeries(m map[slurm.State]*plot.Series) []plot.Series {
	states := make([]slurm.State, 0, len(m))
	for st := range m {
		states = append(states, st)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	out := make([]plot.Series, 0, len(states))
	for _, st := range states {
		out = append(out, *m[st])
	}
	return out
}
