// Package cluster describes the HPC systems the workflow analyses. A
// System captures the architecture and scheduling-policy facts that shape a
// job trace: node counts, per-node resources, partitions, QoS levels, and
// the walltime-by-job-size policy bins leadership systems use.
//
// Two built-in models mirror the paper's evaluation systems: Frontier
// (OLCF's exascale GPU system) and Andes (the CPU-centric general-purpose
// analysis cluster). Absolute configuration values are public knowledge;
// they parameterize the synthetic workload generator and the scheduler
// simulator, standing in for the proprietary accounting databases.
package cluster

import (
	"errors"
	"fmt"
	"time"
)

// QOS is a quality-of-service level jobs can request.
type QOS struct {
	Name           string
	PriorityWeight int64         // added into the multifactor priority
	MaxWall        time.Duration // 0 means the partition limit applies

	// CanPreempt marks a near-real-time/urgent QoS whose jobs may evict
	// preemptible work when they cannot start immediately (the NERSC
	// "realtime" pattern the paper cites).
	CanPreempt bool
	// Preemptible marks opportunistic jobs that urgent work may requeue
	// (the TACC "flex" pattern).
	Preemptible bool
}

// Partition is a scheduling partition.
type Partition struct {
	Name     string
	Nodes    int           // nodes assigned to the partition
	MaxNodes int           // per-job ceiling (0 = partition size)
	MaxWall  time.Duration // per-job walltime ceiling
	Default  bool          // default partition for submissions
}

// WallBin expresses size-dependent walltime policy: jobs allocating at
// least MinNodes may request up to MaxWall.
type WallBin struct {
	MinNodes int
	MaxWall  time.Duration
}

// System is a complete machine model.
type System struct {
	Name         string
	Nodes        int
	CoresPerNode int
	GPUsPerNode  int
	MemPerNode   int64 // bytes
	Partitions   []Partition
	QOSLevels    []QOS
	// WallBins, ordered by descending MinNodes, give larger jobs longer
	// walltime ceilings (leadership "capability" policy). Empty means the
	// partition MaxWall applies uniformly.
	WallBins []WallBin
}

// Validate checks internal consistency.
func (s *System) Validate() error {
	if s.Name == "" {
		return errors.New("cluster: system name required")
	}
	if s.Nodes <= 0 || s.CoresPerNode <= 0 {
		return fmt.Errorf("cluster: %s: node/core counts must be positive", s.Name)
	}
	if len(s.Partitions) == 0 {
		return fmt.Errorf("cluster: %s: at least one partition required", s.Name)
	}
	defaults := 0
	for i := range s.Partitions {
		p := &s.Partitions[i]
		if p.Name == "" {
			return fmt.Errorf("cluster: %s: unnamed partition", s.Name)
		}
		if p.Nodes <= 0 || p.Nodes > s.Nodes {
			return fmt.Errorf("cluster: %s: partition %s has %d nodes of %d", s.Name, p.Name, p.Nodes, s.Nodes)
		}
		if p.MaxNodes == 0 {
			p.MaxNodes = p.Nodes
		}
		if p.MaxNodes > p.Nodes {
			return fmt.Errorf("cluster: %s: partition %s MaxNodes exceeds size", s.Name, p.Name)
		}
		if p.MaxWall <= 0 {
			return fmt.Errorf("cluster: %s: partition %s needs a walltime ceiling", s.Name, p.Name)
		}
		if p.Default {
			defaults++
		}
	}
	if defaults != 1 {
		return fmt.Errorf("cluster: %s: exactly one default partition required, have %d", s.Name, defaults)
	}
	for i := 1; i < len(s.WallBins); i++ {
		if s.WallBins[i].MinNodes >= s.WallBins[i-1].MinNodes {
			return fmt.Errorf("cluster: %s: WallBins must be in descending MinNodes order", s.Name)
		}
	}
	return nil
}

// DefaultPartition returns the submission default.
func (s *System) DefaultPartition() *Partition {
	for i := range s.Partitions {
		if s.Partitions[i].Default {
			return &s.Partitions[i]
		}
	}
	return &s.Partitions[0]
}

// PartitionByName looks up a partition.
func (s *System) PartitionByName(name string) (*Partition, bool) {
	for i := range s.Partitions {
		if s.Partitions[i].Name == name {
			return &s.Partitions[i], true
		}
	}
	return nil, false
}

// QOSByName looks up a QoS level.
func (s *System) QOSByName(name string) (QOS, bool) {
	for _, q := range s.QOSLevels {
		if q.Name == name {
			return q, true
		}
	}
	return QOS{}, false
}

// MaxWallForNodes returns the walltime ceiling for a job of the given size
// in the given partition, applying the capability WallBins when present.
func (s *System) MaxWallForNodes(p *Partition, nodes int) time.Duration {
	for _, b := range s.WallBins {
		if nodes >= b.MinNodes {
			if b.MaxWall < p.MaxWall {
				return b.MaxWall
			}
			return p.MaxWall
		}
	}
	return p.MaxWall
}

// TotalCores returns the system core count.
func (s *System) TotalCores() int64 { return int64(s.Nodes) * int64(s.CoresPerNode) }

// Frontier models OLCF's exascale system: 9,408 nodes, each with one
// 64-core EPYC and 4 MI250X accelerators (8 logical GPUs), batch-oriented
// capability scheduling with size-tiered walltime ceilings.
func Frontier() *System {
	s := &System{
		Name:         "frontier",
		Nodes:        9408,
		CoresPerNode: 64,
		GPUsPerNode:  8,
		MemPerNode:   512 << 30,
		Partitions: []Partition{
			{Name: "batch", Nodes: 9408, MaxWall: 24 * time.Hour, Default: true},
			{Name: "extended", Nodes: 128, MaxNodes: 64, MaxWall: 72 * time.Hour},
		},
		QOSLevels: []QOS{
			{Name: "normal", PriorityWeight: 0},
			{Name: "debug", PriorityWeight: 200_000, MaxWall: 2 * time.Hour},
			{Name: "urgent", PriorityWeight: 500_000, CanPreempt: true},
			{Name: "preemptible", PriorityWeight: -100_000, Preemptible: true},
		},
		// OLCF-style capability bins: the larger the allocation, the
		// longer the permitted walltime.
		WallBins: []WallBin{
			{MinNodes: 5645, MaxWall: 24 * time.Hour},
			{MinNodes: 1882, MaxWall: 12 * time.Hour},
			{MinNodes: 184, MaxWall: 6 * time.Hour},
			{MinNodes: 0, MaxWall: 2 * time.Hour},
		},
	}
	if err := s.Validate(); err != nil {
		panic(err) // built-in models must be internally consistent
	}
	return s
}

// Andes models OLCF's general-purpose analysis cluster: 704 CPU nodes
// (32 cores each), throughput-oriented policy with a uniform walltime
// ceiling and a short-job/interactive emphasis.
func Andes() *System {
	s := &System{
		Name:         "andes",
		Nodes:        704,
		CoresPerNode: 32,
		GPUsPerNode:  0,
		MemPerNode:   256 << 30,
		Partitions: []Partition{
			{Name: "batch", Nodes: 704, MaxNodes: 384, MaxWall: 48 * time.Hour, Default: true},
			{Name: "gpu", Nodes: 9, MaxNodes: 2, MaxWall: 48 * time.Hour},
		},
		QOSLevels: []QOS{
			{Name: "normal", PriorityWeight: 0},
			{Name: "debug", PriorityWeight: 200_000, MaxWall: time.Hour},
		},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// ByName returns a built-in system model.
func ByName(name string) (*System, error) {
	switch name {
	case "frontier":
		return Frontier(), nil
	case "andes":
		return Andes(), nil
	}
	return nil, fmt.Errorf("cluster: unknown system %q", name)
}
