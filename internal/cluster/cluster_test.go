package cluster

import (
	"testing"
	"time"
)

func TestBuiltinsValid(t *testing.T) {
	for _, name := range []string{"frontier", "andes"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	if _, err := ByName("summit"); err == nil {
		t.Error("ByName(summit): want error")
	}
}

func TestFrontierVsAndesShape(t *testing.T) {
	f, a := Frontier(), Andes()
	if f.Nodes <= a.Nodes {
		t.Error("Frontier should dwarf Andes in node count")
	}
	if f.GPUsPerNode == 0 || a.GPUsPerNode != 0 {
		t.Error("Frontier is the GPU system; Andes is CPU-centric")
	}
	if f.TotalCores() != int64(9408*64) {
		t.Errorf("Frontier cores = %d", f.TotalCores())
	}
}

func TestDefaultPartition(t *testing.T) {
	f := Frontier()
	if p := f.DefaultPartition(); p.Name != "batch" {
		t.Errorf("default partition = %s", p.Name)
	}
	if _, ok := f.PartitionByName("extended"); !ok {
		t.Error("extended partition missing")
	}
	if _, ok := f.PartitionByName("nope"); ok {
		t.Error("PartitionByName(nope) should fail")
	}
}

func TestQOSLookup(t *testing.T) {
	f := Frontier()
	q, ok := f.QOSByName("debug")
	if !ok || q.PriorityWeight == 0 {
		t.Errorf("debug QoS = %+v, %v", q, ok)
	}
	if _, ok := f.QOSByName("gold"); ok {
		t.Error("QOSByName(gold) should fail")
	}
}

func TestCapabilityWallBins(t *testing.T) {
	f := Frontier()
	batch := f.DefaultPartition()
	small := f.MaxWallForNodes(batch, 8)
	mid := f.MaxWallForNodes(batch, 500)
	big := f.MaxWallForNodes(batch, 8000)
	if !(small < mid && mid < big) {
		t.Errorf("capability policy not monotone: %v %v %v", small, mid, big)
	}
	if big != 24*time.Hour {
		t.Errorf("hero bin = %v", big)
	}
	// Andes has no bins: uniform ceiling.
	a := Andes()
	ab := a.DefaultPartition()
	if a.MaxWallForNodes(ab, 1) != a.MaxWallForNodes(ab, 300) {
		t.Error("Andes should have a uniform walltime ceiling")
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *System {
		return &System{
			Name: "x", Nodes: 10, CoresPerNode: 4,
			Partitions: []Partition{{Name: "p", Nodes: 10, MaxWall: time.Hour, Default: true}},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base should validate: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*System)
	}{
		{"empty name", func(s *System) { s.Name = "" }},
		{"zero nodes", func(s *System) { s.Nodes = 0 }},
		{"no partitions", func(s *System) { s.Partitions = nil }},
		{"oversize partition", func(s *System) { s.Partitions[0].Nodes = 99 }},
		{"no walltime", func(s *System) { s.Partitions[0].MaxWall = 0 }},
		{"no default", func(s *System) { s.Partitions[0].Default = false }},
		{"maxnodes overflow", func(s *System) { s.Partitions[0].MaxNodes = 20 }},
		{"wallbins unordered", func(s *System) {
			s.WallBins = []WallBin{{MinNodes: 1, MaxWall: time.Hour}, {MinNodes: 5, MaxWall: time.Hour}}
		}},
	}
	for _, c := range cases {
		s := base()
		c.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: want validation error", c.name)
		}
	}
}

func TestMaxNodesDefaulting(t *testing.T) {
	s := &System{
		Name: "x", Nodes: 10, CoresPerNode: 4,
		Partitions: []Partition{{Name: "p", Nodes: 10, MaxWall: time.Hour, Default: true}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Partitions[0].MaxNodes != 10 {
		t.Errorf("MaxNodes not defaulted: %d", s.Partitions[0].MaxNodes)
	}
}
