// Package predict implements the paper's first future-work item (§6):
// AI-predicted walltime estimation embedded into job submission. The
// predictor keeps a sliding window of each (user, class) stream's actual
// runtimes and proposes a request at a configurable quantile with a safety
// margin; Evaluate replays a historical trace to quantify how much of the
// over-estimated walltime a deployment would reclaim and at what timeout
// risk — the numbers behind "dynamic rescheduling and time reclamation".
package predict

import (
	"fmt"
	"sort"
	"time"

	"slurmsight/internal/slurm"
)

// Predictor proposes walltime requests from per-stream history.
type Predictor struct {
	// Window is how many recent runtimes each stream keeps (default 32).
	Window int
	// Quantile of the window used as the base estimate (default 0.9).
	Quantile float64
	// Safety multiplies the base estimate (default 1.25).
	Safety float64
	// MinHistory is the observation count below which the predictor
	// abstains and defers to the user's request (default 5).
	MinHistory int

	streams map[string][]float64 // seconds, ring-buffered
}

// NewPredictor returns a predictor with production defaults.
func NewPredictor() *Predictor {
	return &Predictor{Window: 32, Quantile: 0.9, Safety: 1.25, MinHistory: 5}
}

func (p *Predictor) key(user, class string) string { return user + "\x00" + class }

// Observe folds one finished job's actual runtime into the stream.
func (p *Predictor) Observe(user, class string, actual time.Duration) {
	if p.streams == nil {
		p.streams = map[string][]float64{}
	}
	k := p.key(user, class)
	w := p.Window
	if w <= 0 {
		w = 32
	}
	s := append(p.streams[k], actual.Seconds())
	if len(s) > w {
		s = s[len(s)-w:]
	}
	p.streams[k] = s
}

// Predict proposes a walltime request for the stream's next job. With
// insufficient history it returns the user's own request unchanged
// (abstaining is safe: no new timeout risk is introduced). The proposal
// never exceeds the user's request — the goal is reclamation.
func (p *Predictor) Predict(user, class string, userRequest time.Duration) time.Duration {
	minH := p.MinHistory
	if minH <= 0 {
		minH = 5
	}
	s := p.streams[p.key(user, class)]
	if len(s) < minH {
		return userRequest
	}
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	q := p.Quantile
	if q <= 0 || q > 1 {
		q = 0.9
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	base := sorted[lo]
	if lo+1 < len(sorted) {
		frac := pos - float64(lo)
		base = base*(1-frac) + sorted[lo+1]*frac
	}
	safety := p.Safety
	if safety <= 1 {
		safety = 1.25
	}
	proposal := time.Duration(base*safety) * time.Second
	proposal = proposal.Round(time.Minute)
	if proposal < 10*time.Minute {
		proposal = 10 * time.Minute
	}
	if proposal > userRequest {
		return userRequest
	}
	return proposal
}

// Evaluation quantifies a replay of the predictor over a trace.
type Evaluation struct {
	Jobs        int     // started jobs replayed
	Covered     int     // jobs where the predictor proposed (had history)
	Undershoots int     // proposals below the job's actual runtime
	TimeoutRisk float64 // Undershoots / Covered
	// ReclaimedNodeHours is Σ nodes·(userRequest − proposal) over covered
	// jobs — capacity handed back to the scheduler.
	ReclaimedNodeHours float64
	// ReclaimableNodeHours is the perfect-predictor bound for the same
	// jobs (Σ nodes·(userRequest − actual)).
	ReclaimableNodeHours float64
}

// ReclaimedShare is reclaimed capacity over the perfect-predictor bound.
func (e Evaluation) ReclaimedShare() float64 {
	if e.ReclaimableNodeHours <= 0 {
		return 0
	}
	return e.ReclaimedNodeHours / e.ReclaimableNodeHours
}

// Evaluate replays job records in submission order: each job is predicted
// before its own runtime is observed (no leakage). The job's class is
// taken from the Comment field, where the simulator records it.
func Evaluate(jobs []slurm.Record, p *Predictor) (Evaluation, error) {
	if p == nil {
		return Evaluation{}, fmt.Errorf("predict: nil predictor")
	}
	ordered := make([]*slurm.Record, 0, len(jobs))
	for i := range jobs {
		if jobs[i].IsStep() || jobs[i].Start.IsZero() {
			continue
		}
		ordered = append(ordered, &jobs[i])
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Submit.Before(ordered[j].Submit)
	})
	var ev Evaluation
	for _, j := range ordered {
		ev.Jobs++
		proposal := p.Predict(j.User, j.Comment, j.Timelimit)
		if proposal != j.Timelimit {
			ev.Covered++
			if proposal < j.Elapsed {
				ev.Undershoots++
			}
			ev.ReclaimedNodeHours += float64(j.NNodes) * (j.Timelimit - proposal).Hours()
		}
		if slack := j.Timelimit - j.Elapsed; slack > 0 {
			ev.ReclaimableNodeHours += float64(j.NNodes) * slack.Hours()
		}
		p.Observe(j.User, j.Comment, j.Elapsed)
	}
	if ev.Covered > 0 {
		ev.TimeoutRisk = float64(ev.Undershoots) / float64(ev.Covered)
	}
	return ev, nil
}

// ApplyToRequests rewrites a request stream in place with predicted
// walltimes, replaying history in stream order — the what-if input for
// re-simulating a schedule with reclaimed time. Each element exposes its
// fields through the accessor callbacks so predict stays decoupled from
// the request type. It returns how many requests were tightened.
func ApplyToRequests(n int, p *Predictor,
	get func(i int) (user, class string, limit, trueRuntime time.Duration),
	set func(i int, limit time.Duration)) int {
	changed := 0
	for i := 0; i < n; i++ {
		user, class, limit, trueRun := get(i)
		proposal := p.Predict(user, class, limit)
		if proposal != limit {
			set(i, proposal)
			changed++
		}
		p.Observe(user, class, trueRun)
	}
	return changed
}
