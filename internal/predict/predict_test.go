package predict

import (
	"testing"
	"time"

	"slurmsight/internal/slurm"
)

func TestPredictAbstainsWithoutHistory(t *testing.T) {
	p := NewPredictor()
	req := 4 * time.Hour
	if got := p.Predict("alice", "sim", req); got != req {
		t.Errorf("cold predictor proposed %v, want the user request", got)
	}
	// Below MinHistory it still abstains.
	for i := 0; i < 4; i++ {
		p.Observe("alice", "sim", time.Hour)
	}
	if got := p.Predict("alice", "sim", req); got != req {
		t.Errorf("with %d observations predictor proposed %v", 4, got)
	}
}

func TestPredictTightensOverestimates(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < 20; i++ {
		p.Observe("alice", "sim", time.Hour)
	}
	got := p.Predict("alice", "sim", 8*time.Hour)
	if got >= 8*time.Hour {
		t.Fatalf("predictor failed to tighten: %v", got)
	}
	// Quantile 0.9 of a constant 1 h stream × 1.25 safety ≈ 75 min.
	if got < time.Hour || got > 2*time.Hour {
		t.Errorf("proposal = %v, want ≈ 75 min", got)
	}
}

func TestPredictNeverExceedsUserRequest(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < 20; i++ {
		p.Observe("bob", "sim", 10*time.Hour)
	}
	req := 2 * time.Hour
	if got := p.Predict("bob", "sim", req); got != req {
		t.Errorf("proposal %v exceeds the user request", got)
	}
}

func TestPredictStreamsAreIndependent(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < 10; i++ {
		p.Observe("alice", "short", 10*time.Minute)
		p.Observe("alice", "long", 10*time.Hour)
	}
	shortProp := p.Predict("alice", "short", 24*time.Hour)
	longProp := p.Predict("alice", "long", 24*time.Hour)
	if shortProp >= longProp {
		t.Errorf("streams leaked: short %v, long %v", shortProp, longProp)
	}
	if got := p.Predict("carol", "short", time.Hour); got != time.Hour {
		t.Error("unknown user should abstain")
	}
}

func TestWindowSlides(t *testing.T) {
	p := NewPredictor()
	p.Window = 8
	// Old regime: 10 h runs. New regime: 30 min runs.
	for i := 0; i < 8; i++ {
		p.Observe("alice", "sim", 10*time.Hour)
	}
	for i := 0; i < 8; i++ {
		p.Observe("alice", "sim", 30*time.Minute)
	}
	got := p.Predict("alice", "sim", 24*time.Hour)
	if got > 2*time.Hour {
		t.Errorf("window did not slide: proposal %v still reflects the old regime", got)
	}
}

func TestPredictFloor(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < 10; i++ {
		p.Observe("alice", "sim", 10*time.Second)
	}
	if got := p.Predict("alice", "sim", time.Hour); got < 10*time.Minute {
		t.Errorf("proposal %v below the 10-minute floor", got)
	}
}

func mkJob(user string, submitOffset time.Duration, nodes int64, limit, elapsed time.Duration) slurm.Record {
	base := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	r := slurm.Record{
		ID:        slurm.NewJobID(int64(100000 + submitOffset/time.Minute)),
		User:      user,
		Comment:   "sim",
		Submit:    base.Add(submitOffset),
		NNodes:    nodes,
		Timelimit: limit,
		Elapsed:   elapsed,
		State:     slurm.StateCompleted,
	}
	r.Start = r.Submit
	r.End = r.Start.Add(elapsed)
	return r
}

func TestEvaluateReplay(t *testing.T) {
	var jobs []slurm.Record
	// 40 jobs from one user: always request 8 h, always run 1 h.
	for i := 0; i < 40; i++ {
		jobs = append(jobs, mkJob("alice", time.Duration(i)*time.Hour, 10, 8*time.Hour, time.Hour))
	}
	p := NewPredictor()
	ev, err := Evaluate(jobs, p)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Jobs != 40 {
		t.Errorf("Jobs = %d", ev.Jobs)
	}
	if ev.Covered < 30 {
		t.Errorf("Covered = %d, want most of the stream after warmup", ev.Covered)
	}
	if ev.TimeoutRisk != 0 {
		t.Errorf("TimeoutRisk = %v on a constant stream", ev.TimeoutRisk)
	}
	if ev.ReclaimedNodeHours <= 0 || ev.ReclaimableNodeHours <= 0 {
		t.Errorf("reclamation empty: %+v", ev)
	}
	share := ev.ReclaimedShare()
	if share < 0.5 || share > 1 {
		t.Errorf("ReclaimedShare = %v, want most of the bound on a constant stream", share)
	}
}

func TestEvaluateNoLeakage(t *testing.T) {
	// A single job must never be predicted from its own runtime.
	jobs := []slurm.Record{mkJob("alice", 0, 1, 8*time.Hour, time.Minute)}
	p := NewPredictor()
	ev, err := Evaluate(jobs, p)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Covered != 0 {
		t.Errorf("first job was covered: leakage")
	}
}

func TestEvaluateSkipsStepsAndPending(t *testing.T) {
	j := mkJob("alice", 0, 1, time.Hour, time.Minute)
	step := j
	step.ID = step.ID.WithStep(0)
	pending := mkJob("bob", time.Hour, 1, time.Hour, 0)
	pending.Start = time.Time{}
	ev, err := Evaluate([]slurm.Record{j, step, pending}, NewPredictor())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Jobs != 1 {
		t.Errorf("Jobs = %d, want 1", ev.Jobs)
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Error("nil predictor: want error")
	}
}

func TestEvaluateTimeoutRisk(t *testing.T) {
	var jobs []slurm.Record
	// Runtimes oscillate 1 h / 6 h: aggressive quantiles would undershoot.
	for i := 0; i < 40; i++ {
		d := time.Hour
		if i%2 == 1 {
			d = 6 * time.Hour
		}
		jobs = append(jobs, mkJob("alice", time.Duration(i)*time.Hour, 1, 12*time.Hour, d))
	}
	p := NewPredictor()
	p.Quantile = 0.5 // median of a bimodal stream undershoots the slow half
	ev, err := Evaluate(jobs, p)
	if err != nil {
		t.Fatal(err)
	}
	if ev.TimeoutRisk <= 0 {
		t.Errorf("aggressive quantile should show timeout risk: %+v", ev)
	}
	// The default conservative setting is safer on the same stream.
	safe, err := Evaluate(jobs, NewPredictor())
	if err != nil {
		t.Fatal(err)
	}
	if safe.TimeoutRisk > ev.TimeoutRisk {
		t.Errorf("default setting riskier than aggressive: %v > %v", safe.TimeoutRisk, ev.TimeoutRisk)
	}
}

func TestApplyToRequests(t *testing.T) {
	type req struct {
		user, class string
		limit, run  time.Duration
	}
	reqs := make([]req, 30)
	for i := range reqs {
		reqs[i] = req{"alice", "sim", 8 * time.Hour, time.Hour}
	}
	p := NewPredictor()
	changed := ApplyToRequests(len(reqs), p,
		func(i int) (string, string, time.Duration, time.Duration) {
			return reqs[i].user, reqs[i].class, reqs[i].limit, reqs[i].run
		},
		func(i int, limit time.Duration) { reqs[i].limit = limit })
	if changed == 0 {
		t.Fatal("nothing rewritten")
	}
	if reqs[0].limit != 8*time.Hour {
		t.Error("first request rewritten without history")
	}
	if reqs[len(reqs)-1].limit >= 8*time.Hour {
		t.Error("late requests not tightened")
	}
}
