package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || !almostEq(s.Mean, 5, 1e-12) || !almostEq(s.Sum, 40, 1e-12) {
		t.Errorf("Summary = %+v", s)
	}
	if !almostEq(s.Std, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 || !almostEq(s.Median, 4.5, 1e-12) {
		t.Errorf("extremes/median: %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v", err)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var acc Accumulator
		for i, v := range raw {
			xs[i] = float64(v)
			acc.Add(float64(v))
		}
		want, _ := Summarize(xs)
		got := acc.Summary()
		return got.N == want.N &&
			almostEq(got.Mean, want.Mean, 1e-9) &&
			almostEq(got.Std, want.Std, 1e-9) &&
			got.Min == want.Min && got.Max == want.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil || !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, %v; want %v", c.q, got, err, c.want)
		}
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	if _, err := Quantile(ys, 0.5); err != nil {
		t.Fatal(err)
	}
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated its input")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(1.5): want error")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("Quantile(empty): want ErrEmpty")
	}
	one, _ := Quantile([]float64{7}, 0.99)
	if one != 7 {
		t.Errorf("single-element quantile = %v", one)
	}
}

func TestQuantilesMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		qs, err := Quantiles(xs, 0.1, 0.25, 0.5, 0.75, 0.9)
		if err != nil {
			return false
		}
		for i := 1; i < len(qs); i++ {
			if qs[i] < qs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	perfect, _ := Pearson(xs, []float64{2, 4, 6, 8})
	if !almostEq(perfect, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", perfect)
	}
	anti, _ := Pearson(xs, []float64{8, 6, 4, 2})
	if !almostEq(anti, -1, 1e-12) {
		t.Errorf("anti correlation = %v", anti)
	}
	flat, _ := Pearson(xs, []float64{5, 5, 5, 5})
	if flat != 0 {
		t.Errorf("degenerate correlation = %v", flat)
	}
	if _, err := Pearson(xs, xs[:2]); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Pearson(nil, nil); err != ErrEmpty {
		t.Error("empty: want ErrEmpty")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform gives rank correlation 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(xs, ys)
	if err != nil || !almostEq(rho, 1, 1e-12) {
		t.Errorf("Spearman = %v, %v", rho, err)
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEq(r[i], want[i], 1e-12) {
			t.Errorf("Ranks = %v, want %v", r, want)
			break
		}
	}
}

func TestFitLine(t *testing.T) {
	fit, err := FitLine([]float64{0, 1, 2, 3}, []float64{1, 3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) || !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("short input: want error")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x: want error")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 3 { // 0, 1.9, clamped -3
		t.Errorf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.99 and clamped 42
		t.Errorf("bin4 = %d, want 2", h.Counts[4])
	}
	edges := h.BinEdges()
	if len(edges) != 6 || edges[0] != 0 || edges[5] != 10 {
		t.Errorf("edges = %v", edges)
	}
	if _, err := NewHistogram(5, 5, 3, false); err == nil {
		t.Error("min==max: want error")
	}
	if _, err := NewHistogram(0, 10, 0, false); err == nil {
		t.Error("zero bins: want error")
	}
	if _, err := NewHistogram(0, 10, 3, true); err == nil {
		t.Error("log with min=0: want error")
	}
}

func TestLogHistogram(t *testing.T) {
	h, err := NewHistogram(1, 1e4, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	// One observation per decade.
	for _, x := range []float64{3, 30, 300, 3000} {
		h.Add(x)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("log bin %d = %d, want 1 (%v)", i, c, h.Counts)
		}
	}
	if m := h.Mode(); m <= 0 {
		t.Errorf("Mode = %v", m)
	}
	h.Add(0) // non-positive clamps to first bin
	if h.Counts[0] != 2 {
		t.Errorf("non-positive handling: %v", h.Counts)
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []int16) bool {
		h, err := NewHistogram(-100, 100, 13, false)
		if err != nil {
			return false
		}
		for _, v := range raw {
			h.Add(float64(v))
		}
		return h.Total() == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrid2D(t *testing.T) {
	g, err := NewGrid2D(0, 10, 10, false, 0, 10, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	g.Add(1, 5) // above diagonal
	g.Add(5, 1) // below
	g.Add(9, 1) // below
	if g.Total() != 3 {
		t.Errorf("Total = %d", g.Total())
	}
	frac := g.FractionBelowDiagonal()
	if !almostEq(frac, 2.0/3.0, 1e-12) {
		t.Errorf("FractionBelowDiagonal = %v", frac)
	}
	if g.At(axisIndex(5, 0, 10, 10, false), axisIndex(1, 0, 10, 10, false)) != 1 {
		t.Error("At lookup failed")
	}
	if _, err := NewGrid2D(0, 10, 0, false, 0, 10, 10, false); err == nil {
		t.Error("zero dims: want error")
	}
	if _, err := NewGrid2D(0, 10, 4, true, 1, 10, 4, false); err == nil {
		t.Error("log x with min 0: want error")
	}
}

func TestGrid2DLogAxes(t *testing.T) {
	g, err := NewGrid2D(1, 1e4, 4, true, 1, 1e4, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	g.Add(10, 1000)
	g.Add(1000, 10)
	if g.Total() != 2 {
		t.Errorf("Total = %d", g.Total())
	}
	if f := g.FractionBelowDiagonal(); !almostEq(f, 0.5, 1e-12) {
		t.Errorf("FractionBelowDiagonal = %v", f)
	}
}
