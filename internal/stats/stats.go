// Package stats provides the statistical primitives used across the
// SlurmSight analytics and the simulated LLM analyst: summary statistics,
// quantiles, histograms, correlation, and least-squares fits. All functions
// are pure and allocation-conscious; none mutate their inputs unless
// documented.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the moments and extremes of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample (n-1) standard deviation; 0 when N < 2
	Min    float64
	Max    float64
	Sum    float64
	Median float64
}

// Summarize computes a Summary in one pass plus a selection for the median.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	s := acc.Summary()
	med, _ := Quantile(xs, 0.5)
	s.Median = med
	return s, nil
}

// Accumulator is a streaming mean/variance/extremes accumulator using
// Welford's algorithm; safe to copy before the first Add.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
	sum      float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	a.sum += x
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations folded in so far.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Std returns the running sample standard deviation (0 when N < 2).
func (a *Accumulator) Std() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Summary snapshots the accumulator (Median is not tracked and left 0).
func (a *Accumulator) Summary() Summary {
	return Summary{N: a.n, Mean: a.mean, Std: a.Std(), Min: a.min, Max: a.max, Sum: a.sum}
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks (type-7, the numpy default). The
// input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// Quantiles computes several quantiles with a single sort.
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 || math.IsNaN(q) {
			return nil, errors.New("stats: quantile out of range")
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out, nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples. Degenerate (constant) inputs return 0.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation, Pearson over ranks with
// ties assigned their average rank.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	rx, ry := Ranks(xs), Ranks(ys)
	return Pearson(rx, ry)
}

// Ranks returns 1-based average ranks of xs (ties share the mean rank).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// LinearFit is a least-squares line y = Intercept + Slope·x.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine fits a least-squares line through (xs, ys).
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: need at least 2 points")
	}
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: length mismatch")
	}
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}
