package stats

import (
	"errors"
	"math"
)

// Histogram is a fixed-bin histogram over [Min, Max). Values outside the
// range are clamped into the edge bins so totals are preserved.
type Histogram struct {
	Min, Max float64
	Counts   []int
	Log      bool // bins are uniform in log10(x) rather than x
}

// NewHistogram builds an empty histogram with the given bounds and bin
// count. Log histograms require strictly positive bounds.
func NewHistogram(min, max float64, bins int, log bool) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: bins must be positive")
	}
	if !(min < max) {
		return nil, errors.New("stats: min must be below max")
	}
	if log && min <= 0 {
		return nil, errors.New("stats: log histogram needs positive min")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins), Log: log}, nil
}

// BinIndex returns the bin an observation falls into, clamped to range.
func (h *Histogram) BinIndex(x float64) int {
	lo, hi, v := h.Min, h.Max, x
	if h.Log {
		if v <= 0 {
			return 0
		}
		lo, hi, v = math.Log10(lo), math.Log10(hi), math.Log10(v)
	}
	i := int(float64(len(h.Counts)) * (v - lo) / (hi - lo))
	if i < 0 {
		return 0
	}
	if i >= len(h.Counts) {
		return len(h.Counts) - 1
	}
	return i
}

// Add records one observation.
func (h *Histogram) Add(x float64) { h.Counts[h.BinIndex(x)]++ }

// Total returns the number of recorded observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinEdges returns the len(Counts)+1 bin boundaries in data space.
func (h *Histogram) BinEdges() []float64 {
	n := len(h.Counts)
	edges := make([]float64, n+1)
	lo, hi := h.Min, h.Max
	if h.Log {
		lo, hi = math.Log10(lo), math.Log10(hi)
	}
	for i := 0; i <= n; i++ {
		v := lo + (hi-lo)*float64(i)/float64(n)
		if h.Log {
			v = math.Pow(10, v)
		}
		edges[i] = v
	}
	return edges
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	edges := h.BinEdges()
	return (edges[best] + edges[best+1]) / 2
}

// Grid2D bins (x, y) points onto a rectangular grid; it backs the density
// comparisons the LLM analyst makes between scatter plots.
type Grid2D struct {
	XMin, XMax, YMin, YMax float64
	NX, NY                 int
	Counts                 []int // row-major, NY rows of NX
	LogX, LogY             bool
}

// NewGrid2D builds an empty density grid.
func NewGrid2D(xmin, xmax float64, nx int, logX bool, ymin, ymax float64, ny int, logY bool) (*Grid2D, error) {
	if nx <= 0 || ny <= 0 {
		return nil, errors.New("stats: grid dims must be positive")
	}
	if !(xmin < xmax) || !(ymin < ymax) {
		return nil, errors.New("stats: invalid grid bounds")
	}
	if (logX && xmin <= 0) || (logY && ymin <= 0) {
		return nil, errors.New("stats: log axis needs positive min")
	}
	return &Grid2D{
		XMin: xmin, XMax: xmax, YMin: ymin, YMax: ymax,
		NX: nx, NY: ny, Counts: make([]int, nx*ny),
		LogX: logX, LogY: logY,
	}, nil
}

func axisIndex(v, lo, hi float64, n int, log bool) int {
	if log {
		if v <= 0 {
			return 0
		}
		v, lo, hi = math.Log10(v), math.Log10(lo), math.Log10(hi)
	}
	i := int(float64(n) * (v - lo) / (hi - lo))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Add records one point.
func (g *Grid2D) Add(x, y float64) {
	ix := axisIndex(x, g.XMin, g.XMax, g.NX, g.LogX)
	iy := axisIndex(y, g.YMin, g.YMax, g.NY, g.LogY)
	g.Counts[iy*g.NX+ix]++
}

// At returns the count in cell (ix, iy).
func (g *Grid2D) At(ix, iy int) int { return g.Counts[iy*g.NX+ix] }

// Total returns the number of recorded points.
func (g *Grid2D) Total() int {
	t := 0
	for _, c := range g.Counts {
		t += c
	}
	return t
}

// FractionBelowDiagonal returns the fraction of points with y < x, in data
// space — the "actual below requested" mass in walltime plots.
func (g *Grid2D) FractionBelowDiagonal() float64 {
	total, below := 0, 0
	xe := gridEdges(g.XMin, g.XMax, g.NX, g.LogX)
	ye := gridEdges(g.YMin, g.YMax, g.NY, g.LogY)
	for iy := 0; iy < g.NY; iy++ {
		cy := (ye[iy] + ye[iy+1]) / 2
		for ix := 0; ix < g.NX; ix++ {
			c := g.At(ix, iy)
			if c == 0 {
				continue
			}
			total += c
			cx := (xe[ix] + xe[ix+1]) / 2
			if cy < cx {
				below += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(below) / float64(total)
}

func gridEdges(lo, hi float64, n int, log bool) []float64 {
	edges := make([]float64, n+1)
	a, b := lo, hi
	if log {
		a, b = math.Log10(lo), math.Log10(hi)
	}
	for i := 0; i <= n; i++ {
		v := a + (b-a)*float64(i)/float64(n)
		if log {
			v = math.Pow(10, v)
		}
		edges[i] = v
	}
	return edges
}
