package curate

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"slurmsight/internal/pool"
)

// TestStreamFileParallelPoolParity pins the shared-pool contract: a
// period task that can only borrow a few (or zero) extra decoder slots
// still produces a byte-identical sidecar and an equal Report — the
// pool throttles width, never output — and every borrowed slot is back
// in the pool when the call returns.
func TestStreamFileParallelPoolParity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in := buildPeriod(t, rng, 400)
	dir := t.TempDir()

	seqCSV := filepath.Join(dir, "seq.csv")
	var seqRep Report
	for _, err := range StreamFile(in, seqCSV, DefaultOptions(), &seqRep) {
		if err != nil {
			t.Fatal(err)
		}
	}
	seqBytes, err := os.ReadFile(seqCSV)
	if err != nil {
		t.Fatal(err)
	}

	for _, budget := range []int{0, 1, 3} {
		p := pool.New(budget)
		csv := filepath.Join(dir, "pool.csv")
		opts := DefaultOptions()
		opts.Workers = 8
		opts.Pool = p
		var rep Report
		if _, err := StreamFileParallel(in, csv, opts, &rep, nil); err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		if rep != seqRep {
			t.Errorf("budget=%d: report %+v, sequential %+v", budget, rep, seqRep)
		}
		got, err := os.ReadFile(csv)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(seqBytes) {
			t.Errorf("budget=%d: sidecar differs from sequential", budget)
		}
		if p.Free() != budget {
			t.Errorf("budget=%d: %d slots free after the call, want all returned", budget, p.Free())
		}
	}
}

// TestStreamFileParallelPoolSharedAcrossPeriods runs several period
// tasks concurrently against one small pool — the core.Run shape — and
// checks each still matches its own sequential pass.
func TestStreamFileParallelPoolSharedAcrossPeriods(t *testing.T) {
	const periods = 4
	p := pool.New(2)
	type period struct {
		in, seqCSV, parCSV string
		seqRep             Report
	}
	var ps []period
	dir := t.TempDir()
	for i := 0; i < periods; i++ {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		pd := period{
			in:     buildPeriod(t, rng, 300),
			seqCSV: filepath.Join(dir, "seq"+string(rune('a'+i))+".csv"),
			parCSV: filepath.Join(dir, "par"+string(rune('a'+i))+".csv"),
		}
		for _, err := range StreamFile(pd.in, pd.seqCSV, DefaultOptions(), &pd.seqRep) {
			if err != nil {
				t.Fatal(err)
			}
		}
		ps = append(ps, pd)
	}

	var wg sync.WaitGroup
	errs := make([]error, periods)
	reps := make([]Report, periods)
	for i := range ps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := DefaultOptions()
			opts.Workers = 4
			opts.Pool = p
			_, errs[i] = StreamFileParallel(ps[i].in, ps[i].parCSV, opts, &reps[i], nil)
		}()
	}
	wg.Wait()

	for i, pd := range ps {
		if errs[i] != nil {
			t.Fatalf("period %d: %v", i, errs[i])
		}
		if reps[i] != pd.seqRep {
			t.Errorf("period %d: report diverges from sequential", i)
		}
		want, err := os.ReadFile(pd.seqCSV)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(pd.parCSV)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("period %d: sidecar diverges from sequential", i)
		}
	}
	if p.Free() != 2 {
		t.Errorf("%d slots free after all periods, want 2", p.Free())
	}
}
