// Package curate implements the workflow's "Curate Data" stage: it cleans
// the raw pipe-separated text the Obtain-data stage retrieved (dropping
// malformed rows, the paper's <0.002% hardware-error artifacts), applies
// unit normalisation (expanding K-suffixed counts, converting raw seconds
// to minutes for readability), and reformats the dataset to CSV for
// downstream analysis — the exact responsibilities §3.1 assigns the stage.
package curate

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"slurmsight/internal/obs"
	"slurmsight/internal/pool"
	"slurmsight/internal/slurm"
)

// Options tune the normalisation pass.
type Options struct {
	// DurationsAsMinutes renders duration columns as decimal minutes
	// instead of HH:MM:SS (the paper's seconds→minutes readability
	// conversion).
	DurationsAsMinutes bool
	// ExpandCounts rewrites abbreviated counts ("9.4K") as plain
	// integers.
	ExpandCounts bool
	// Metrics, when non-nil, counts the stream's work under
	// curate_rows_read_total / curate_rows_kept_total /
	// curate_rows_dropped_total; the parallel path additionally
	// publishes ingest_chunks_total / ingest_chunk_rows /
	// ingest_chunk_seconds.
	Metrics *obs.Registry
	// Workers sets how many chunks StreamFileParallel splits a period
	// file into and decodes concurrently. Values below 2 select a
	// single chunk (the whole data region) on the same zero-alloc byte
	// decode path. Ignored by the sequential Stream/StreamFile.
	Workers int
	// Pool, when non-nil, is the shared ingest-worker budget that
	// concurrent period tasks borrow extra decoders from: each
	// StreamFileParallel always runs at least one decoder (its own
	// goroutine) and borrows up to Workers-1 more, non-blocking, so
	// the decode width adapts to how many periods are in flight. Nil
	// grants every requested worker.
	Pool *pool.Pool
}

// DefaultOptions matches the paper's preprocessing.
func DefaultOptions() Options {
	return Options{DurationsAsMinutes: true, ExpandCounts: true}
}

// Report summarises one curation run.
type Report struct {
	Total     int // data rows seen
	Kept      int // rows written/returned
	Malformed int // rows dropped
	// SidecarErrors counts CSV-sidecar flush/write/close failures that
	// could not be surfaced as stream errors because the consumer had
	// already stopped. A nonzero value means the sidecar on disk is
	// incomplete even though no error was yielded.
	SidecarErrors int
}

// Add accumulates another run's counts (e.g. per-period reports).
func (r *Report) Add(o Report) {
	r.Total += o.Total
	r.Kept += o.Kept
	r.Malformed += o.Malformed
	r.SidecarErrors += o.SidecarErrors
}

// MalformedFraction returns the dropped share of all rows.
func (r Report) MalformedFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Malformed) / float64(r.Total)
}

// durationFields are the columns DurationsAsMinutes rewrites.
var durationFields = map[string]bool{
	"Elapsed": true, "Timelimit": true, "Suspended": true,
	"AveCPU": true, "TotalCPU": true, "UserCPU": true, "SystemCPU": true,
}

// countFields are the columns ExpandCounts rewrites.
var countFields = map[string]bool{
	"NNodes": true, "NCPUS": true, "NTasks": true, "ReqNodes": true,
	"ReqCPUS": true, "Restarts": true, "ConsumedEnergy": true,
}

// LoadRecords reads raw pipe-separated text (with its header line),
// dropping malformed rows, and returns the clean records. This is the
// in-memory half of the stage: the analytics layer consumes its output.
// It is a collect-wrapper over Stream; callers that can consume records
// one at a time should range over Stream instead.
func LoadRecords(r io.Reader) ([]slurm.Record, Report, error) {
	var out []slurm.Record
	var rep Report
	for rec, err := range Stream(r, nil, Options{}, &rep) {
		if err != nil {
			return nil, rep, err
		}
		out = append(out, *rec)
	}
	return out, rep, nil
}

// LoadRecordsFile reads and curates one Obtain-data output file. Errors
// are attributed to the file's path.
func LoadRecordsFile(path string) ([]slurm.Record, Report, error) {
	var out []slurm.Record
	var rep Report
	for rec, err := range StreamFile(path, "", Options{}, &rep) {
		if err != nil {
			return nil, rep, err
		}
		out = append(out, *rec)
	}
	return out, rep, nil
}

// LoadRecordsFiles curates several files (one per fetched period) into a
// single record set, accumulating the report. A failure carries the
// offending file's path.
func LoadRecordsFiles(paths []string) ([]slurm.Record, Report, error) {
	var all []slurm.Record
	var rep Report
	for _, p := range paths {
		recs, r, err := LoadRecordsFile(p)
		rep.Add(r)
		if err != nil {
			return nil, rep, err
		}
		all = append(all, recs...)
	}
	return all, rep, nil
}

// ToCSV converts raw pipe-separated text to CSV, dropping malformed rows
// and applying the normalisations — the on-disk half of the stage. It
// drains Stream with the record consumer discarded.
func ToCSV(r io.Reader, w io.Writer, opts Options) (Report, error) {
	var rep Report
	for _, err := range Stream(r, w, opts, &rep) {
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// normalise applies the per-column unit conversions.
func normalise(field, value string, opts Options) (string, error) {
	switch {
	case opts.DurationsAsMinutes && durationFields[field]:
		d, err := slurm.ParseDuration(value)
		if err != nil {
			return "", err
		}
		return strconv.FormatFloat(d.Minutes(), 'f', 2, 64), nil
	case opts.ExpandCounts && countFields[field]:
		n, err := slurm.ParseCount(value)
		if err != nil {
			return "", err
		}
		return strconv.FormatInt(n, 10), nil
	default:
		return value, nil
	}
}

// normaliseBytes is normalise for the byte decode path. It produces the
// same output strings for every cell both parsers accept: the byte
// parsers are exact mirrors of the string ones, and the formatting side
// (FormatFloat/FormatInt) is shared, so parallel sidecars stay
// byte-identical to sequential ones.
func normaliseBytes(field string, cell []byte, opts Options) (string, error) {
	switch {
	case opts.DurationsAsMinutes && durationFields[field]:
		d, err := slurm.ParseDurationBytes(cell)
		if err != nil {
			return "", err
		}
		return strconv.FormatFloat(d.Minutes(), 'f', 2, 64), nil
	case opts.ExpandCounts && countFields[field]:
		n, err := slurm.ParseCountBytes(cell)
		if err != nil {
			return "", err
		}
		return strconv.FormatInt(n, 10), nil
	default:
		return string(cell), nil
	}
}

// sidecarHeader renders the CSV sidecar's header row: the input's field
// names, with duration columns renamed to their minutes rendition when
// that normalisation is on.
func sidecarHeader(fields []string, opts Options) []string {
	header := make([]string, len(fields))
	for i, f := range fields {
		name := f
		if opts.DurationsAsMinutes && durationFields[f] {
			name += "Minutes"
		}
		header[i] = name
	}
	return header
}

// ToCSVFile curates inPath (pipe text) into outPath (CSV).
func ToCSVFile(inPath, outPath string, opts Options) (Report, error) {
	var rep Report
	for _, err := range StreamFile(inPath, outPath, opts, &rep) {
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// MinutesOf is a helper for tests and analytics reading curated CSVs: it
// parses a decimal-minutes cell back to a duration.
func MinutesOf(cell string) (time.Duration, error) {
	f, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0, fmt.Errorf("curate: bad minutes cell %q", cell)
	}
	return time.Duration(f * float64(time.Minute)), nil
}
