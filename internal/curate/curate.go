// Package curate implements the workflow's "Curate Data" stage: it cleans
// the raw pipe-separated text the Obtain-data stage retrieved (dropping
// malformed rows, the paper's <0.002% hardware-error artifacts), applies
// unit normalisation (expanding K-suffixed counts, converting raw seconds
// to minutes for readability), and reformats the dataset to CSV for
// downstream analysis — the exact responsibilities §3.1 assigns the stage.
package curate

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"slurmsight/internal/slurm"
)

// Options tune the normalisation pass.
type Options struct {
	// DurationsAsMinutes renders duration columns as decimal minutes
	// instead of HH:MM:SS (the paper's seconds→minutes readability
	// conversion).
	DurationsAsMinutes bool
	// ExpandCounts rewrites abbreviated counts ("9.4K") as plain
	// integers.
	ExpandCounts bool
}

// DefaultOptions matches the paper's preprocessing.
func DefaultOptions() Options {
	return Options{DurationsAsMinutes: true, ExpandCounts: true}
}

// Report summarises one curation run.
type Report struct {
	Total     int // data rows seen
	Kept      int // rows written/returned
	Malformed int // rows dropped
}

// MalformedFraction returns the dropped share of all rows.
func (r Report) MalformedFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Malformed) / float64(r.Total)
}

// durationFields are the columns DurationsAsMinutes rewrites.
var durationFields = map[string]bool{
	"Elapsed": true, "Timelimit": true, "Suspended": true,
	"AveCPU": true, "TotalCPU": true, "UserCPU": true, "SystemCPU": true,
}

// countFields are the columns ExpandCounts rewrites.
var countFields = map[string]bool{
	"NNodes": true, "NCPUS": true, "NTasks": true, "ReqNodes": true,
	"ReqCPUS": true, "Restarts": true, "ConsumedEnergy": true,
}

// LoadRecords reads raw pipe-separated text (with its header line),
// dropping malformed rows, and returns the clean records. This is the
// in-memory half of the stage: the analytics layer consumes its output.
func LoadRecords(r io.Reader) ([]slurm.Record, Report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, Report{}, fmt.Errorf("curate: input has no header")
	}
	fields := strings.Split(strings.TrimSpace(sc.Text()), slurm.Separator)
	for _, f := range fields {
		if _, ok := slurm.FieldByName(f); !ok {
			return nil, Report{}, fmt.Errorf("curate: unknown field %q in header", f)
		}
	}
	var out []slurm.Record
	var rep Report
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		rep.Total++
		rec, err := slurm.DecodeRecord(line, fields)
		if err != nil {
			rep.Malformed++
			continue
		}
		rep.Kept++
		out = append(out, *rec)
	}
	if err := sc.Err(); err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}

// LoadRecordsFile reads and curates one Obtain-data output file.
func LoadRecordsFile(path string) ([]slurm.Record, Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Report{}, err
	}
	defer f.Close()
	return LoadRecords(f)
}

// LoadRecordsFiles curates several files (one per fetched period) into a
// single record set, accumulating the report.
func LoadRecordsFiles(paths []string) ([]slurm.Record, Report, error) {
	var all []slurm.Record
	var rep Report
	for _, p := range paths {
		recs, r, err := LoadRecordsFile(p)
		if err != nil {
			return nil, rep, fmt.Errorf("curate: %s: %w", p, err)
		}
		all = append(all, recs...)
		rep.Total += r.Total
		rep.Kept += r.Kept
		rep.Malformed += r.Malformed
	}
	return all, rep, nil
}

// ToCSV converts raw pipe-separated text to CSV, dropping malformed rows
// and applying the normalisations — the on-disk half of the stage.
func ToCSV(r io.Reader, w io.Writer, opts Options) (Report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return Report{}, fmt.Errorf("curate: input has no header")
	}
	fields := strings.Split(strings.TrimSpace(sc.Text()), slurm.Separator)
	for _, f := range fields {
		if _, ok := slurm.FieldByName(f); !ok {
			return Report{}, fmt.Errorf("curate: unknown field %q in header", f)
		}
	}
	cw := csv.NewWriter(w)
	header := make([]string, len(fields))
	for i, f := range fields {
		name := f
		if opts.DurationsAsMinutes && durationFields[f] {
			name += "Minutes"
		}
		header[i] = name
	}
	if err := cw.Write(header); err != nil {
		return Report{}, err
	}
	var rep Report
	row := make([]string, len(fields))
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		rep.Total++
		// Validate the full record first; malformed rows are dropped.
		if _, err := slurm.DecodeRecord(line, fields); err != nil {
			rep.Malformed++
			continue
		}
		parts := strings.Split(line, slurm.Separator)
		for i, f := range fields {
			v, err := normalise(f, parts[i], opts)
			if err != nil {
				// Cannot happen for a row DecodeRecord accepted.
				return rep, fmt.Errorf("curate: normalising %s: %w", f, err)
			}
			row[i] = v
		}
		if err := cw.Write(row); err != nil {
			return rep, err
		}
		rep.Kept++
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	cw.Flush()
	return rep, cw.Error()
}

// normalise applies the per-column unit conversions.
func normalise(field, value string, opts Options) (string, error) {
	switch {
	case opts.DurationsAsMinutes && durationFields[field]:
		d, err := slurm.ParseDuration(value)
		if err != nil {
			return "", err
		}
		return strconv.FormatFloat(d.Minutes(), 'f', 2, 64), nil
	case opts.ExpandCounts && countFields[field]:
		n, err := slurm.ParseCount(value)
		if err != nil {
			return "", err
		}
		return strconv.FormatInt(n, 10), nil
	default:
		return value, nil
	}
}

// ToCSVFile curates inPath (pipe text) into outPath (CSV).
func ToCSVFile(inPath, outPath string, opts Options) (Report, error) {
	in, err := os.Open(inPath)
	if err != nil {
		return Report{}, err
	}
	defer in.Close()
	out, err := os.Create(outPath)
	if err != nil {
		return Report{}, err
	}
	rep, err := ToCSV(bufio.NewReader(in), out, opts)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return rep, err
}

// MinutesOf is a helper for tests and analytics reading curated CSVs: it
// parses a decimal-minutes cell back to a duration.
func MinutesOf(cell string) (time.Duration, error) {
	f, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0, fmt.Errorf("curate: bad minutes cell %q", cell)
	}
	return time.Duration(f * float64(time.Minute)), nil
}
