package curate

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"slurmsight/internal/obs"
	"slurmsight/internal/slurm"
)

// ShardFunc hands StreamFileParallel the record consumer for one chunk.
// It is called at most once per chunk, possibly from several goroutines
// concurrently (guard shared state); the consumer it returns is then
// called only from that chunk's worker, in chunk row order, with records
// that alias decoder scratch (copy to retain). Returning false from the
// consumer stops the whole parallel stream early. A nil ShardFunc (or a
// nil returned consumer) decodes for the sidecar and Report only.
type ShardFunc func(chunk int) func(*slurm.Record) bool

// StreamFileParallel curates one period file on opts.Workers concurrent
// chunk decoders: the file is split into newline-aligned byte ranges
// (slurm.ChunkScanner), each chunk runs the zero-alloc byte decode path
// end to end — tokenise, validate, normalise, spill its sidecar rows —
// and a single ordered writer goroutine appends the spills to csvPath in
// chunk order, so the sidecar is byte-identical to the sequential
// StreamFile one. Consumers observe records in-shard via shard; combine
// per-chunk results in chunk index order to reproduce sequential order.
//
// Counters in rep are exact on success (every row decoded exactly
// once); after a terminal error or an early consumer stop they reflect
// only the rows processed before the stop. Malformed-row line numbers
// are chunk-relative except in chunk 0. The first terminal error in
// chunk order is returned, wrapped with the input path.
func StreamFileParallel(inPath, csvPath string, opts Options, rep *Report, shard ShardFunc) (chunks int, err error) {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	cs, err := slurm.NewChunkScanner(inPath, workers)
	if err != nil {
		return 0, fmt.Errorf("curate: %s: %w", inPath, err)
	}
	passFiles.Add(1) // one logical open per period file, as in StreamFile
	chunks = cs.NumChunks()

	m := chunkMetrics{
		rows:    opts.Metrics.Histogram("ingest_chunk_rows", obs.SizeBuckets),
		seconds: opts.Metrics.Histogram("ingest_chunk_seconds", obs.LatencyBuckets),
		read:    opts.Metrics.Counter("curate_rows_read_total"),
		kept:    opts.Metrics.Counter("curate_rows_kept_total"),
		dropped: opts.Metrics.Counter("curate_rows_dropped_total"),
	}
	opts.Metrics.Counter("ingest_chunks_total").Add(int64(chunks))

	var out *os.File
	var bw *bufio.Writer
	if csvPath != "" {
		out, err = os.Create(csvPath)
		if err != nil {
			return chunks, fmt.Errorf("curate: create sidecar %s: %w", csvPath, err)
		}
		bw = bufio.NewWriterSize(out, 1<<16)
		hw := csv.NewWriter(bw)
		herr := hw.Write(sidecarHeader(cs.Fields(), opts))
		if herr == nil {
			hw.Flush()
			herr = hw.Error()
		}
		if herr != nil {
			out.Close()
			return chunks, fmt.Errorf("curate: sidecar %s: %w", csvPath, herr)
		}
	}
	if chunks == 0 {
		return 0, finishSidecar(out, bw, csvPath, nil)
	}

	spillPath := func(i int) string { return fmt.Sprintf("%s.part%d", csvPath, i) }
	reports := make([]Report, chunks)
	chunkErrs := make([]error, chunks)
	chunkDone := make([]chan struct{}, chunks)
	for i := range chunkDone {
		chunkDone[i] = make(chan struct{})
	}
	var stopped atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	nw := min(workers, chunks)
	// Borrow the extra decoders from the shared pool: the first worker
	// is this task's guaranteed slot, each one beyond it runs only if
	// the pool grants a slot right now. A busy pool narrows the stream
	// rather than queueing it; slots return as each worker finishes.
	granted := 1
	for granted < nw && opts.Pool.TryAcquire() {
		granted++
	}
	nw = granted
	for w := 0; w < nw; w++ {
		wg.Add(1)
		borrowed := w > 0 && opts.Pool != nil
		go func() {
			defer wg.Done()
			if borrowed {
				defer opts.Pool.Release()
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= chunks {
					return
				}
				sp := ""
				if csvPath != "" {
					sp = spillPath(i)
				}
				chunkErrs[i] = runChunk(cs, i, sp, opts, &reports[i], shard, &stopped, m)
				close(chunkDone[i])
			}
		}()
	}

	// The single ordered sidecar writer: as each chunk completes, in
	// chunk order, append its spill to the final file. After the first
	// failed chunk the remaining spills are only cleaned up — the
	// sequential path never writes rows past a terminal error either.
	writerDone := make(chan error, 1)
	go func() {
		var werr error
		failed := false
		for i := 0; i < chunks; i++ {
			<-chunkDone[i]
			if chunkErrs[i] != nil {
				failed = true
			}
			if csvPath == "" {
				continue
			}
			sp := spillPath(i)
			if failed || werr != nil {
				os.Remove(sp)
				continue
			}
			f, err := os.Open(sp)
			if err != nil {
				werr = err
				continue
			}
			_, cerr := io.Copy(bw, f)
			f.Close()
			os.Remove(sp)
			if cerr != nil {
				werr = cerr
			}
		}
		writerDone <- werr
	}()

	wg.Wait()
	werr := <-writerDone
	for i := range reports {
		rep.Add(reports[i])
	}
	for _, cerr := range chunkErrs {
		if cerr != nil {
			finishSidecar(out, bw, csvPath, nil) // keep the prefix; cerr is already terminal
			return chunks, fmt.Errorf("curate: %s: %w", inPath, cerr)
		}
	}
	if err := finishSidecar(out, bw, csvPath, werr); err != nil {
		return chunks, err
	}
	return chunks, nil
}

// finishSidecar flushes and closes the final sidecar file, folding in
// any earlier writer error and attributing the result to csvPath.
func finishSidecar(out *os.File, bw *bufio.Writer, csvPath string, werr error) error {
	if out == nil {
		return nil
	}
	if ferr := bw.Flush(); werr == nil {
		werr = ferr
	}
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("curate: sidecar %s: %w", csvPath, werr)
	}
	return nil
}

// chunkMetrics carries the stream's resolved instruments; counters are
// added once per chunk, not per row, so the atomics stay off the decode
// hot path.
type chunkMetrics struct {
	rows    *obs.Histogram
	seconds *obs.Histogram
	read    *obs.Counter
	kept    *obs.Counter
	dropped *obs.Counter
}

// runChunk decodes one chunk to completion: counting into local,
// spilling sidecar rows to spillPath (when non-empty), and feeding the
// chunk's consumer. It stops early when another chunk trips stopped.
// Sidecar spill errors are terminal unless the stream is already
// stopping, in which case they are counted into local.SidecarErrors.
func runChunk(cs *slurm.ChunkScanner, i int, spillPath string, opts Options, local *Report, shard ShardFunc, stopped *atomic.Bool, m chunkMetrics) error {
	start := time.Now()
	rr, closer, err := cs.Open(i)
	if err != nil {
		stopped.Store(true)
		return err
	}
	defer closer.Close()
	var consumer func(*slurm.Record) bool
	if shard != nil {
		consumer = shard(i)
	}
	var sf *os.File
	var sw *csv.Writer
	var row []string
	fields := cs.Fields()
	if spillPath != "" {
		sf, err = os.Create(spillPath)
		if err != nil {
			stopped.Store(true)
			return fmt.Errorf("create sidecar shard: %w", err)
		}
		sw = csv.NewWriter(sf)
		row = make([]string, len(fields))
	}

	var terminal error
decode:
	for !stopped.Load() {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if _, ok := err.(*slurm.RowError); ok {
				passRows.Add(1)
				local.Total++
				local.Malformed++
				continue
			}
			terminal = err
			break
		}
		passRows.Add(1)
		local.Total++
		if sw != nil {
			cols := rr.Row()
			for j, f := range fields {
				v, nerr := normaliseBytes(f, cols[j], opts)
				if nerr != nil {
					// Cannot happen for a row the decoder accepted.
					terminal = fmt.Errorf("curate: normalising %s: %w", f, nerr)
					break decode
				}
				row[j] = v
			}
			if werr := sw.Write(row); werr != nil {
				terminal = werr
				break
			}
		}
		local.Kept++
		if consumer != nil && !consumer(rec) {
			stopped.Store(true)
			break
		}
	}
	if sw != nil {
		sw.Flush()
		if ferr := sw.Error(); ferr != nil {
			if terminal == nil && !stopped.Load() {
				terminal = ferr
			} else {
				local.SidecarErrors++
			}
		}
		if cerr := sf.Close(); cerr != nil {
			if terminal == nil && !stopped.Load() {
				terminal = cerr
			} else {
				local.SidecarErrors++
			}
		}
	}
	m.rows.Observe(float64(local.Total))
	m.seconds.ObserveSince(start)
	m.read.Add(int64(local.Total))
	m.kept.Add(int64(local.Kept))
	m.dropped.Add(int64(local.Malformed))
	if terminal != nil {
		stopped.Store(true)
	}
	return terminal
}
