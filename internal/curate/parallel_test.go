package curate

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slurmsight/internal/obs"
	"slurmsight/internal/slurm"
)

// buildPeriod writes a pipe trace of n rows, sprinkling malformed rows
// at a deterministic random set of positions, and returns its path.
func buildPeriod(t *testing.T, rng *rand.Rand, n int) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("JobID|User|State|Elapsed|Timelimit|NNodes\n")
	users := []string{"alice", "bob", "carol", "dave", "eve"}
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0: // truncated mid-record
			fmt.Fprintf(&sb, "%d|%s|COMPLE\n", 100000+i, users[i%len(users)])
		case 1: // bad duration
			fmt.Fprintf(&sb, "%d|%s|COMPLETED|xx:yy:zz|01:00:00|4\n", 100000+i, users[i%len(users)])
		default:
			fmt.Fprintf(&sb, "%d|%s|COMPLETED|%02d:%02d:00|0%d:00:00|%d\n",
				100000+i, users[i%len(users)], rng.Intn(24), rng.Intn(60), 1+rng.Intn(9), 1+rng.Intn(512))
		}
	}
	path := filepath.Join(t.TempDir(), "period.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStreamFileParallelMatchesSequential is the ISSUE's parity
// property: for every worker count the parallel path must produce the
// same records in the same order, an equal Report, and a byte-identical
// CSV sidecar to the sequential StreamFile pass.
func TestStreamFileParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in := buildPeriod(t, rng, 400)
	dir := t.TempDir()

	seqCSV := filepath.Join(dir, "seq.csv")
	var seqRep Report
	var seqRecs []string
	fields := slurm.SelectedNames()
	for rec, err := range StreamFile(in, seqCSV, DefaultOptions(), &seqRep) {
		if err != nil {
			t.Fatal(err)
		}
		enc, eerr := slurm.EncodeRecord(rec, fields)
		if eerr != nil {
			t.Fatal(eerr)
		}
		seqRecs = append(seqRecs, enc)
	}
	seqBytes, err := os.ReadFile(seqCSV)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		parCSV := filepath.Join(dir, fmt.Sprintf("par%d.csv", workers))
		opts := DefaultOptions()
		opts.Workers = workers
		reg := obs.NewRegistry()
		opts.Metrics = reg
		var rep Report
		perChunk := make([][]string, workers) // chunk indices are unique and < workers
		chunks, err := StreamFileParallel(in, parCSV, opts, &rep,
			func(chunk int) func(*slurm.Record) bool {
				recs := &perChunk[chunk]
				return func(rec *slurm.Record) bool {
					enc, eerr := slurm.EncodeRecord(rec, fields)
					if eerr != nil {
						panic(eerr)
					}
					*recs = append(*recs, enc)
					return true
				}
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if chunks < 1 || chunks > workers {
			t.Errorf("workers=%d: %d chunks", workers, chunks)
		}
		if got := reg.Counter("ingest_chunks_total").Value(); got != int64(chunks) {
			t.Errorf("workers=%d: ingest_chunks_total=%d, want %d", workers, got, chunks)
		}
		if got := reg.Histogram("ingest_chunk_rows", obs.SizeBuckets).Count(); got != int64(chunks) {
			t.Errorf("workers=%d: ingest_chunk_rows count=%d, want %d", workers, got, chunks)
		}
		if rep != seqRep {
			t.Errorf("workers=%d: report %+v, sequential %+v", workers, rep, seqRep)
		}
		var parRecs []string
		for i := 0; i < chunks; i++ {
			parRecs = append(parRecs, perChunk[i]...)
		}
		if len(parRecs) != len(seqRecs) {
			t.Fatalf("workers=%d: %d records, sequential %d", workers, len(parRecs), len(seqRecs))
		}
		for i := range seqRecs {
			if parRecs[i] != seqRecs[i] {
				t.Fatalf("workers=%d record %d differs:\nseq: %s\npar: %s", workers, i, seqRecs[i], parRecs[i])
			}
		}
		parBytes, err := os.ReadFile(parCSV)
		if err != nil {
			t.Fatal(err)
		}
		if string(parBytes) != string(seqBytes) {
			t.Errorf("workers=%d: sidecar differs from sequential (%d vs %d bytes)",
				workers, len(parBytes), len(seqBytes))
		}
		// No spill files may survive.
		if leftovers, _ := filepath.Glob(parCSV + ".part*"); len(leftovers) != 0 {
			t.Errorf("workers=%d: spill files left behind: %v", workers, leftovers)
		}
	}
}

func TestStreamFileParallelEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := buildPeriod(t, rng, 300)
	opts := DefaultOptions()
	opts.Workers = 4
	var rep Report
	seen := 0
	_, err := StreamFileParallel(in, "", opts, &rep,
		func(chunk int) func(*slurm.Record) bool {
			if chunk != 0 {
				return nil
			}
			return func(*slurm.Record) bool {
				seen++
				return seen < 5 // stop the whole stream from chunk 0
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Errorf("consumer saw %d records after asking to stop at 5", seen)
	}
	// Counters reflect only the rows processed before the stop.
	if rep.Total >= 300 {
		t.Errorf("early stop still decoded every row: %+v", rep)
	}
}

func TestStreamFileParallelCreateErrorCarriesPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := buildPeriod(t, rng, 10)
	badCSV := filepath.Join(t.TempDir(), "missing-dir", "out.csv")
	opts := DefaultOptions()
	opts.Workers = 2
	var rep Report
	_, err := StreamFileParallel(in, badCSV, opts, &rep, nil)
	if err == nil || !strings.Contains(err.Error(), "out.csv") {
		t.Errorf("create error lacks sidecar path: %v", err)
	}
	// The sequential wrapper shares the contract (satellite: wrap
	// sidecar create/close errors with the file path).
	for _, serr := range StreamFile(in, badCSV, DefaultOptions(), &rep) {
		if serr == nil {
			t.Fatal("StreamFile: want create error")
		}
		if !strings.Contains(serr.Error(), "out.csv") {
			t.Errorf("StreamFile create error lacks path: %v", serr)
		}
		break
	}
}

func TestStreamFileParallelTerminalError(t *testing.T) {
	// A >1MB line is a terminal decode error for the byte reader; the
	// parallel path must surface it wrapped with the input path and
	// still clean up its spills.
	dir := t.TempDir()
	in := filepath.Join(dir, "huge.txt")
	body := "JobID|User\n1|alice\n2|" + strings.Repeat("x", 1<<20+5) + "\n3|bob\n"
	if err := os.WriteFile(in, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "huge.csv")
	opts := DefaultOptions()
	opts.Workers = 3
	var rep Report
	_, err := StreamFileParallel(in, csvPath, opts, &rep, nil)
	if err == nil || !strings.Contains(err.Error(), "huge.txt") {
		t.Errorf("terminal error lacks input path: %v", err)
	}
	if leftovers, _ := filepath.Glob(csvPath + ".part*"); len(leftovers) != 0 {
		t.Errorf("spill files left behind after terminal error: %v", leftovers)
	}
}

// failWriter fails every write after the first n bytes have passed.
type failWriter struct {
	n int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestStreamEarlyStopCountsSidecarErrors(t *testing.T) {
	// Satellite: when the consumer has already stopped, a sidecar flush
	// failure cannot be yielded — it must be counted, not dropped.
	var rep Report
	w := &failWriter{n: 0} // every underlying write fails
	for range Stream(strings.NewReader(sample), w, DefaultOptions(), &rep) {
		break // consumer abandons immediately
	}
	if rep.SidecarErrors == 0 {
		t.Errorf("flush failure after early stop not counted: %+v", rep)
	}
}
