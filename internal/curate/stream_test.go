package curate

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStreamSinglePassCSVAndRecords(t *testing.T) {
	var out bytes.Buffer
	var rep Report
	var users []string
	for rec, err := range Stream(strings.NewReader(sampleWithJunk), &out, DefaultOptions(), &rep) {
		if err != nil {
			t.Fatal(err)
		}
		users = append(users, rec.User)
	}
	if rep.Total != 6 || rep.Kept != 4 || rep.Malformed != 2 {
		t.Errorf("report = %+v", rep)
	}
	if strings.Join(users, ",") != "alice,bob,carol,frank" {
		t.Errorf("users = %v", users)
	}
	rows, err := csv.NewReader(&out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != rep.Kept+1 {
		t.Fatalf("csv rows = %d", len(rows))
	}
	if rows[0][3] != "ElapsedMinutes" || rows[1][3] != "90.00" || rows[2][5] != "9400" {
		t.Errorf("normalisation missing: %v / %v", rows[0], rows[1])
	}
}

func TestStreamNilCSVWriter(t *testing.T) {
	var rep Report
	n := 0
	for _, err := range Stream(strings.NewReader(sample), nil, Options{}, &rep) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 3 || rep.Kept != 3 {
		t.Errorf("n=%d rep=%+v", n, rep)
	}
}

func TestStreamEarlyBreakStillFlushesCSV(t *testing.T) {
	var out bytes.Buffer
	var rep Report
	for range Stream(strings.NewReader(sample), &out, Options{}, &rep) {
		break // consumer abandons after the first record
	}
	rows, err := csv.NewReader(&out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header plus the one row that was yielded must have been flushed.
	if len(rows) != 2 {
		t.Errorf("flushed rows = %d, want 2", len(rows))
	}
}

func TestStreamHeaderError(t *testing.T) {
	var rep Report
	sawErr := false
	for rec, err := range Stream(strings.NewReader("JobID|Mystery\n"), nil, Options{}, &rep) {
		if rec != nil {
			t.Errorf("unexpected record %+v", rec)
		}
		if err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("unknown header field: want terminal error")
	}
}

func TestStreamFileErrorsCarryPath(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad-period.txt")
	if err := os.WriteFile(bad, []byte("JobID|Mystery\n1|2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadRecordsFile(bad)
	if err == nil || !strings.Contains(err.Error(), "bad-period.txt") {
		t.Errorf("LoadRecordsFile error lacks path: %v", err)
	}
	_, _, err = LoadRecordsFiles([]string{bad})
	if err == nil || !strings.Contains(err.Error(), "bad-period.txt") {
		t.Errorf("LoadRecordsFiles error lacks path: %v", err)
	}
	_, err = ToCSVFile(bad, filepath.Join(dir, "out.csv"), Options{})
	if err == nil || !strings.Contains(err.Error(), "bad-period.txt") {
		t.Errorf("ToCSVFile error lacks path: %v", err)
	}
}

func TestStreamFileOpensInputOnce(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "jan.txt")
	if err := os.WriteFile(in, []byte(sampleWithJunk), 0o644); err != nil {
		t.Fatal(err)
	}
	before := Stats()
	var rep Report
	n := 0
	for rec, err := range StreamFile(in, filepath.Join(dir, "jan.csv"), DefaultOptions(), &rep) {
		if err != nil {
			t.Fatal(err)
		}
		_ = rec
		n++
	}
	after := Stats()
	if opened := after.FilesOpened - before.FilesOpened; opened != 1 {
		t.Errorf("input opened %d times, want 1", opened)
	}
	if decoded := after.RowsDecoded - before.RowsDecoded; decoded != 6 {
		t.Errorf("rows decoded = %d, want 6 (one pass over kept+malformed)", decoded)
	}
	if n != 4 || rep.Kept != 4 {
		t.Errorf("n=%d rep=%+v", n, rep)
	}
	// The CSV sidecar must exist from the same pass.
	data, err := os.ReadFile(filepath.Join(dir, "jan.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ElapsedMinutes") {
		t.Error("sidecar missing normalised header")
	}
}
