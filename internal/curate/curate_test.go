package curate

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sample = `JobID|User|State|Elapsed|Timelimit|NNodes
100001|alice|COMPLETED|01:30:00|02:00:00|128
100002|bob|FAILED|00:10:00|01:00:00|9.4K
100003|carol|CANCELLED|00:00:00|00:30:00|1
`

const sampleWithJunk = sample +
	"100004|dave|COMPLE\n" + // truncated mid-record
	"100005|eve|COMPLETED|xx:yy:zz|01:00:00|4\n" + // bad duration
	"100006|frank|COMPLETED|00:05:00|00:30:00|2\n"

func TestLoadRecordsClean(t *testing.T) {
	recs, rep, err := LoadRecords(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 3 || rep.Kept != 3 || rep.Malformed != 0 {
		t.Errorf("report = %+v", rep)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].User != "alice" || recs[0].Elapsed != 90*time.Minute {
		t.Errorf("first record wrong: %+v", recs[0])
	}
	if recs[1].NNodes != 9400 {
		t.Errorf("K-count not parsed: %d", recs[1].NNodes)
	}
}

func TestLoadRecordsDropsMalformed(t *testing.T) {
	recs, rep, err := LoadRecords(strings.NewReader(sampleWithJunk))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 6 || rep.Kept != 4 || rep.Malformed != 2 {
		// 100004 is truncated mid-record; 100005 has a bad duration.
		t.Errorf("report = %+v", rep)
	}
	if rep.Malformed != rep.Total-rep.Kept {
		t.Errorf("inconsistent report: %+v", rep)
	}
	if len(recs) != rep.Kept {
		t.Errorf("records %d != kept %d", len(recs), rep.Kept)
	}
	frac := rep.MalformedFraction()
	if frac <= 0 || frac >= 1 {
		t.Errorf("MalformedFraction = %v", frac)
	}
}

func TestLoadRecordsErrors(t *testing.T) {
	if _, _, err := LoadRecords(strings.NewReader("")); err == nil {
		t.Error("empty input: want error")
	}
	if _, _, err := LoadRecords(strings.NewReader("JobID|Mystery\n")); err == nil {
		t.Error("unknown header: want error")
	}
}

func TestToCSVNormalisation(t *testing.T) {
	var out bytes.Buffer
	rep, err := ToCSV(strings.NewReader(sampleWithJunk), &out, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kept != 4 || rep.Malformed != 2 {
		t.Errorf("report = %+v", rep)
	}
	rows, err := csv.NewReader(&out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != rep.Kept+1 {
		t.Fatalf("csv rows = %d", len(rows))
	}
	header := rows[0]
	if header[3] != "ElapsedMinutes" || header[4] != "TimelimitMinutes" {
		t.Errorf("header not renamed: %v", header)
	}
	// alice: 01:30:00 → 90.00 minutes.
	if rows[1][3] != "90.00" {
		t.Errorf("Elapsed minutes = %q", rows[1][3])
	}
	// bob's 9.4K nodes → 9400.
	if rows[2][5] != "9400" {
		t.Errorf("expanded count = %q", rows[2][5])
	}
	d, err := MinutesOf(rows[1][3])
	if err != nil || d != 90*time.Minute {
		t.Errorf("MinutesOf = %v, %v", d, err)
	}
	if _, err := MinutesOf("abc"); err == nil {
		t.Error("MinutesOf(abc): want error")
	}
}

func TestToCSVWithoutNormalisation(t *testing.T) {
	var out bytes.Buffer
	if _, err := ToCSV(strings.NewReader(sample), &out, Options{}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][3] != "Elapsed" {
		t.Errorf("header renamed despite opts: %v", rows[0])
	}
	if rows[1][3] != "01:30:00" {
		t.Errorf("duration converted despite opts: %q", rows[1][3])
	}
}

func TestToCSVFileAndLoadFiles(t *testing.T) {
	dir := t.TempDir()
	in1 := filepath.Join(dir, "jan.txt")
	in2 := filepath.Join(dir, "feb.txt")
	if err := os.WriteFile(in1, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(in2, []byte(sampleWithJunk), 0o644); err != nil {
		t.Fatal(err)
	}
	outCSV := filepath.Join(dir, "jan.csv")
	rep, err := ToCSVFile(in1, outCSV, DefaultOptions())
	if err != nil || rep.Kept != 3 {
		t.Fatalf("ToCSVFile: %+v, %v", rep, err)
	}
	if _, err := os.Stat(outCSV); err != nil {
		t.Fatal(err)
	}
	recs, rep2, err := LoadRecordsFiles([]string{in1, in2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Total != 9 || len(recs) != rep2.Kept {
		t.Errorf("combined report = %+v with %d records", rep2, len(recs))
	}
	if _, _, err := LoadRecordsFiles([]string{filepath.Join(dir, "nope.txt")}); err == nil {
		t.Error("missing file: want error")
	}
	if _, err := ToCSVFile(filepath.Join(dir, "nope.txt"), outCSV, Options{}); err == nil {
		t.Error("missing input: want error")
	}
}

func TestEmptyReportFraction(t *testing.T) {
	if (Report{}).MalformedFraction() != 0 {
		t.Error("empty report fraction should be 0")
	}
}
