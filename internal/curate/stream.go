package curate

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"slurmsight/internal/slurm"
)

// PassStats counts the streaming stage's work since process start.
// Tests pin the data plane's single-pass properties against it: a
// workflow run over P period files with R clean rows must open exactly
// P files and decode each input row exactly once.
type PassStats struct {
	FilesOpened int64 // period files opened by StreamFile and its wrappers
	RowsDecoded int64 // data rows decoded (kept + malformed)
}

var passFiles, passRows atomic.Int64

// Stats returns the cumulative streaming-pass counters.
func Stats() PassStats {
	return PassStats{FilesOpened: passFiles.Load(), RowsDecoded: passRows.Load()}
}

// Stream curates raw pipe-separated text as a record stream: malformed
// rows are dropped and counted into rep, clean records are yielded one
// at a time. When csvw is non-nil the normalised CSV rendition of every
// kept row is written to it in the same pass, so one read of the input
// serves both the analytics consumer and the on-disk sidecar. Yielded
// records alias decoder scratch; consumers that retain them must copy.
// The CSV writer is flushed exactly once when the stream ends; a flush
// or write error is yielded terminally when the consumer is still
// listening, and counted into rep.SidecarErrors when it is not (early
// consumer stop).
func Stream(r io.Reader, csvw io.Writer, opts Options, rep *Report) slurm.RecordSeq {
	return func(yield func(*slurm.Record, error) bool) {
		// Resolve the run instruments once per stream, not per row; on a
		// nil registry each is nil and every Add below is a free no-op.
		rowsRead := opts.Metrics.Counter("curate_rows_read_total")
		rowsKept := opts.Metrics.Counter("curate_rows_kept_total")
		rowsDropped := opts.Metrics.Counter("curate_rows_dropped_total")
		rr, err := slurm.NewRecordReader(r)
		if err != nil {
			yield(nil, err)
			return
		}
		fields := rr.Fields()
		var cw *csv.Writer
		var row []string
		flushed := false
		if csvw != nil {
			cw = csv.NewWriter(csvw)
			if err := cw.Write(sidecarHeader(fields, opts)); err != nil {
				yield(nil, err)
				return
			}
			row = make([]string, len(fields))
			// One flush on every exit path. Exits that already flushed
			// (or yielded the writer's sticky error) set flushed; the
			// rest — early consumer stop, terminal decode errors — land
			// here, where an error can no longer be yielded and is
			// counted instead of dropped.
			defer func() {
				if flushed {
					return
				}
				cw.Flush()
				if cw.Error() != nil {
					rep.SidecarErrors++
				}
			}()
		}
		for {
			rec, err := rr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				var rowErr *slurm.RowError
				if errors.As(err, &rowErr) {
					passRows.Add(1)
					rowsRead.Inc()
					rowsDropped.Inc()
					rep.Total++
					rep.Malformed++
					continue
				}
				yield(nil, err)
				return
			}
			passRows.Add(1)
			rowsRead.Inc()
			rep.Total++
			if cw != nil {
				for i, f := range fields {
					v, err := normalise(f, rr.Row()[i], opts)
					if err != nil {
						// Cannot happen for a row the decoder accepted.
						yield(nil, fmt.Errorf("curate: normalising %s: %w", f, err))
						return
					}
					row[i] = v
				}
				if err := cw.Write(row); err != nil {
					flushed = true // the error is surfaced, not silently dropped
					yield(nil, err)
					return
				}
			}
			rep.Kept++
			rowsKept.Inc()
			if !yield(rec, nil) {
				return
			}
		}
		if cw != nil {
			flushed = true
			cw.Flush()
			if err := cw.Error(); err != nil {
				yield(nil, err)
			}
		}
	}
}

// StreamFile opens one Obtain-data period file exactly once and curates
// it as a record stream. When csvPath is non-empty the CSV sidecar is
// written during the same read. The input is closed and the sidecar
// finalised when the stream is drained (or abandoned); a close or write
// error surfaces as the stream's terminal error.
func StreamFile(inPath, csvPath string, opts Options, rep *Report) slurm.RecordSeq {
	return func(yield func(*slurm.Record, error) bool) {
		in, err := os.Open(inPath)
		if err != nil {
			yield(nil, err)
			return
		}
		passFiles.Add(1)
		defer in.Close()
		var csvOut *os.File
		var csvw io.Writer
		if csvPath != "" {
			csvOut, err = os.Create(csvPath)
			if err != nil {
				yield(nil, fmt.Errorf("curate: create sidecar %s: %w", csvPath, err))
				return
			}
			csvw = csvOut
		}
		ok := true // consumer still accepting
		for rec, err := range Stream(bufio.NewReader(in), csvw, opts, rep) {
			if err != nil {
				err = fmt.Errorf("curate: %s: %w", inPath, err)
			}
			if !yield(rec, err) {
				ok = false
				break
			}
			if err != nil {
				ok = false
				break
			}
		}
		if csvOut != nil {
			if cerr := csvOut.Close(); cerr != nil {
				if ok {
					yield(nil, fmt.Errorf("curate: close sidecar %s: %w", csvPath, cerr))
				} else {
					rep.SidecarErrors++
				}
			}
		}
	}
}
