package serve

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"slurmsight/internal/obs"
	"slurmsight/internal/sacct"
	"slurmsight/internal/slurm"
)

// Watcher tails a pipe-text period file the way an accounting host
// appends one: it polls the file for growth and feeds every newly
// completed row into the store, so a queryd pointed at a live
// slurm-YYYY-MM.txt serves appends no client ever POSTs. The first line
// ever read is the header; a shrink (rotation or truncation) resets the
// tail to the top of the new file, header included.
type Watcher struct {
	Path     string
	Store    *sacct.Store
	Interval time.Duration        // poll period; <= 0 means 2s
	Metrics  *obs.Registry        // nil meters nothing
	Logf     func(string, ...any) // nil discards

	fields  []string // resolved header, nil until seen
	offset  int64    // bytes consumed through the last complete row
	partial []byte   // bytes past the last newline, kept across polls
}

// Run tails the file until ctx is cancelled. A missing file is waited
// for, not an error — the watcher may start before the first period
// lands. Malformed rows are counted and skipped, matching the curation
// stage's contract; only an unreadable file or an unusable header stops
// the watcher.
func (w *Watcher) Run(ctx context.Context) error {
	interval := w.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	logf := w.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	polls := w.Metrics.Counter("serve_watch_polls_total")
	rows := w.Metrics.Counter("serve_watch_rows_total")
	malformed := w.Metrics.Counter("serve_watch_malformed_total")

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		polls.Inc()
		n, bad, err := w.poll()
		if err != nil {
			return fmt.Errorf("serve: watching %s: %w", w.Path, err)
		}
		rows.Add(int64(n))
		malformed.Add(int64(bad))
		if n > 0 || bad > 0 {
			logf("watch %s: +%d rows (%d malformed), generation %d",
				w.Path, n, bad, w.Store.Generation())
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// poll ingests whatever complete rows have appeared since the last call.
func (w *Watcher) poll() (added, malformed int, err error) {
	info, err := os.Stat(w.Path)
	if os.IsNotExist(err) {
		return 0, 0, nil // not written yet; keep waiting
	}
	if err != nil {
		return 0, 0, err
	}
	if info.Size() < w.offset {
		// Rotated or truncated: the retained offset points past the new
		// content, so start over, header included.
		w.offset, w.fields, w.partial = 0, nil, nil
	}
	if info.Size() == w.offset {
		return 0, 0, nil
	}
	f, err := os.Open(w.Path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	if _, err := f.Seek(w.offset, io.SeekStart); err != nil {
		return 0, 0, err
	}
	fresh, err := io.ReadAll(f)
	if err != nil {
		return 0, 0, err
	}
	w.offset += int64(len(fresh))

	buf := append(w.partial, fresh...)
	var batch []slurm.Record
	for {
		nl := -1
		for i, b := range buf {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break
		}
		line := strings.TrimSuffix(string(buf[:nl]), "\r")
		buf = buf[nl+1:]
		if strings.TrimSpace(line) == "" {
			continue
		}
		if w.fields == nil {
			fields := strings.Split(line, slurm.Separator)
			for _, name := range fields {
				if _, ok := slurm.FieldByName(name); !ok {
					return added, malformed, fmt.Errorf("header has unknown field %q", name)
				}
			}
			w.fields = fields
			continue
		}
		rec, err := slurm.DecodeRecord(line, w.fields)
		if err != nil {
			malformed++
			continue
		}
		batch = append(batch, *rec)
	}
	w.partial = append([]byte(nil), buf...)
	if len(batch) > 0 {
		if err := w.Store.Add(batch...); err != nil {
			return added, malformed, err
		}
		w.Store.Finalize()
		added += len(batch)
	}
	return added, malformed, nil
}
