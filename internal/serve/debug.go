package serve

import (
	"expvar"
	"net/http"
	"net/http/pprof"

	"slurmsight/internal/obs"
)

// MountDebug wires the standard observability surface onto a mux — the
// one hook every serving binary (queryd, llmserve, dashboard, schedflow
// -serve) shares so they all expose the same endpoints:
//
//	GET /metrics         Prometheus text (runtime collector included)
//	GET /debug/vars      expvar JSON
//	GET /debug/requests  flight recorder (HTML; ?format=json)
//	GET /debug/pprof/*   profiling
//
// Registering also installs the runtime scrape hook (goroutines, heap,
// GC) on m, so every /metrics pull reports process health without a
// background sampler. rec may be nil: /debug/requests then serves an
// empty snapshot instead of 404ing, keeping probes uniform across
// deployments with recording disabled.
func MountDebug(mux *http.ServeMux, m *obs.Registry, rec *obs.Recorder) {
	obs.PublishRuntime(m)
	mux.Handle("GET /metrics", m.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.Handle("GET /debug/requests", rec.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
