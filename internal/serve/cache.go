package serve

import (
	"container/list"
	"sync"

	"slurmsight/internal/obs"
)

// respCache is the generation-keyed response cache behind /query and
// /figures: rendered response bodies keyed by (canonical request,
// store generation), bounded by an LRU, with single-flight deduplication
// of identical in-flight computations. Because the store generation is
// part of every key, an append invalidates the whole cached view at
// once — the first request per (key, new generation) recomputes, every
// concurrent duplicate waits for that one computation, and stale
// generations simply age out of the LRU.
type respCache struct {
	mu       sync.Mutex
	max      int
	lru      *list.List // *entry, most recent at front
	byKey    map[string]*list.Element
	inflight map[string]*flight

	hits, misses, coalesced, evictions *obs.Counter
}

// entry is one cached rendered response.
type entry struct {
	key    string
	body   []byte
	ctype  string
	rows   int  // -1 when not a row-count response
	bypass bool // too large to keep: share with concurrent callers, skip LRU
}

// flight is one in-progress computation that followers wait on.
type flight struct {
	done chan struct{}
	ent  *entry
	err  error
}

// cacheOutcome reports how a lookup was satisfied, for the X-Cache
// response header.
type cacheOutcome string

const (
	cacheHit       cacheOutcome = "hit"
	cacheMiss      cacheOutcome = "miss"
	cacheCoalesced cacheOutcome = "coalesced"
)

func newRespCache(max int, m *obs.Registry) *respCache {
	if max <= 0 {
		max = 1024
	}
	return &respCache{
		max:       max,
		lru:       list.New(),
		byKey:     map[string]*list.Element{},
		inflight:  map[string]*flight{},
		hits:      m.Counter("serve_cache_hits_total"),
		misses:    m.Counter("serve_cache_misses_total"),
		coalesced: m.Counter("serve_cache_coalesced_total"),
		evictions: m.Counter("serve_cache_evictions_total"),
	}
}

// do returns the cached entry for key, computing it at most once no
// matter how many identical requests arrive concurrently: the first
// caller runs compute, later callers block until it finishes and share
// its result (errors included — a failed computation is not cached, so
// the next request retries).
func (c *respCache) do(key string, compute func() (*entry, error)) (*entry, cacheOutcome, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*entry)
		c.mu.Unlock()
		c.hits.Inc()
		return e, cacheHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Inc()
		<-f.done
		return f.ent, cacheCoalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	c.misses.Inc()
	f.ent, f.err = compute()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil && !f.ent.bypass {
		f.ent.key = key
		c.byKey[key] = c.lru.PushFront(f.ent)
		for c.lru.Len() > c.max {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.byKey, oldest.Value.(*entry).key)
			c.evictions.Inc()
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.ent, cacheMiss, f.err
}

// len returns the number of cached entries (for tests and /healthz).
func (c *respCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
