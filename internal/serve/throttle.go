package serve

import (
	"net"
	"net/http"
	"sync"
	"time"

	"slurmsight/internal/obs"
)

// limiter is a per-client token bucket: each client key accrues rate
// tokens per second up to burst, and every admitted request spends one.
// It bounds what any single client can extract from the service no
// matter how many connections it opens. A nil limiter admits everything.
type limiter struct {
	rate, burst float64

	mu      sync.Mutex
	clients map[string]*bucket
	now     func() time.Time // test hook

	throttled *obs.Counter
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxClients bounds the bucket map; past it, buckets already back at
// full burst (i.e. idle long enough to be indistinguishable from new
// clients) are swept.
const maxClients = 8192

func newLimiter(rate, burst float64, m *obs.Registry) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{
		rate:      rate,
		burst:     burst,
		clients:   map[string]*bucket{},
		now:       time.Now,
		throttled: m.Counter("serve_throttled_total"),
	}
}

// allow reports whether the client may proceed, spending one token.
func (l *limiter) allow(key string) bool {
	ok, _ := l.allowRetry(key)
	return ok
}

// allowRetry is allow plus, on denial, how long until the bucket
// refills to a whole token — the honest Retry-After value rather than a
// constant guess.
func (l *limiter) allowRetry(key string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.clients[key]
	if !ok {
		if len(l.clients) >= maxClients {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[key] = b
	}
	b.tokens = min(l.burst, b.tokens+l.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens < 1 {
		l.throttled.Inc()
		return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	}
	b.tokens--
	return true, 0
}

// sweepLocked drops buckets that have refilled to burst — clients idle
// long enough that evicting them changes nothing.
func (l *limiter) sweepLocked(now time.Time) {
	for k, b := range l.clients {
		if b.tokens+l.rate*now.Sub(b.last).Seconds() >= l.burst {
			delete(l.clients, k)
		}
	}
}

// clientKey identifies the caller for throttling: the API key header
// when present (one bucket per credential however many hosts share it),
// otherwise the remote host (one bucket per address however many
// connections it opens).
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}
