package serve

import (
	"net/http"
	"time"

	"slurmsight/internal/obs"
)

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Instrument wraps a handler with request accounting under the given
// metric prefix: total and per-class (2xx/4xx/5xx) counters, a latency
// histogram, and an in-flight gauge. Wrap it around whatever the client
// actually observes (outside fault injection, inside nothing) so the
// counters agree with client-side measurements. A nil registry meters
// nothing at no cost.
func Instrument(m *obs.Registry, prefix string, next http.Handler) http.Handler {
	requests := m.Counter(prefix + "_requests_total")
	class2xx := m.Counter(prefix + "_responses_2xx_total")
	class4xx := m.Counter(prefix + "_responses_4xx_total")
	class5xx := m.Counter(prefix + "_responses_5xx_total")
	latency := m.Histogram(prefix+"_request_seconds", obs.LatencyBuckets)
	inflight := m.Gauge(prefix + "_inflight_requests")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		inflight.Add(1)
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		latency.ObserveSince(t0)
		inflight.Add(-1)
		switch {
		case sw.status >= 500:
			class5xx.Inc()
		case sw.status >= 400:
			class4xx.Inc()
		default:
			class2xx.Inc()
		}
	})
}
