package serve

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"slurmsight/internal/obs"
)

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// routeOf collapses a request path to a bounded-cardinality route label
// for metrics and the flight recorder: parameterised segments fold into
// their prefix (/figures/fig1.json → /figures), the LLM API keeps its
// two-segment verbs (/v1/analyze), everything else keeps its first
// segment. Bounded labels are what keep per-route histograms and the
// tail sampler from growing with client-chosen paths.
func routeOf(p string) string {
	if p == "" || p == "/" {
		return "/"
	}
	switch {
	case strings.HasPrefix(p, "/figures/"):
		return "/figures"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	case strings.HasPrefix(p, "/files/"):
		return "/files"
	case strings.HasPrefix(p, "/insight/"):
		return "/insight"
	}
	rest := p[1:]
	i := strings.IndexByte(rest, '/')
	if i < 0 {
		return p
	}
	if strings.HasPrefix(p, "/v1/") {
		if j := strings.IndexByte(rest[i+1:], '/'); j >= 0 {
			return "/" + rest[:i+1+j]
		}
		return p
	}
	return "/" + rest[:i]
}

// Middleware is the serving plane's request instrumentation: RED
// metrics (request/error counters and a latency histogram, total and
// per-route), and — when a Recorder or Log is set — a per-request trace:
// a minted trace ID (echoed in X-Trace-Id), a root span propagated via
// the request context so every layer underneath (cache, throttler,
// store scans, colstore decodes, analyze, figure render) can attach
// named child spans, the completed trace fed to the flight recorder,
// and a structured slow-request log line carrying the trace ID for
// log↔trace correlation.
//
// With Recorder and Log both nil the middleware degrades to the plain
// metrics wrapper (the pre-tracing baseline): no per-request
// allocations beyond the status shim. A nil Registry meters nothing at
// no cost.
type Middleware struct {
	Registry *obs.Registry
	Prefix   string // metric name prefix, e.g. "serve"

	Recorder      *obs.Recorder // nil: no flight recording
	SlowThreshold time.Duration // ≤ 0 disables the slow-request log
	Log           *slog.Logger  // nil: no structured request log
}

// Wrap instruments next. Wrap it around whatever the client actually
// observes (outside fault injection, inside nothing) so the counters
// agree with client-side measurements.
func (mw Middleware) Wrap(next http.Handler) http.Handler {
	m := mw.Registry
	requests := m.Counter(mw.Prefix + "_requests_total")
	class2xx := m.Counter(mw.Prefix + "_responses_2xx_total")
	class4xx := m.Counter(mw.Prefix + "_responses_4xx_total")
	class5xx := m.Counter(mw.Prefix + "_responses_5xx_total")
	latency := m.Histogram(mw.Prefix+"_request_seconds", obs.LatencyBuckets)
	inflight := m.Gauge(mw.Prefix + "_inflight_requests")
	tracing := mw.Recorder != nil || (mw.Log != nil && mw.SlowThreshold > 0)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeOf(r.URL.Path)
		requests.Inc()
		m.Counter(obs.Label(mw.Prefix+"_route_requests_total", "route", route)).Inc()
		inflight.Add(1)
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}

		var tr *obs.Tracer
		var root *obs.Span
		var id string
		if tracing {
			id = obs.NewTraceID()
			tr = obs.NewTracer()
			root = tr.Start(r.Method + " " + route)
			root.SetAttr("path", r.URL.Path)
			root.SetAttr("client", clientKey(r))
			w.Header().Set("X-Trace-Id", id)
			r = r.WithContext(obs.ContextWithSpan(r.Context(), root))
		}

		next.ServeHTTP(sw, r)

		dur := time.Since(t0)
		latency.Observe(dur.Seconds())
		m.Histogram(obs.Label(mw.Prefix+"_route_request_seconds", "route", route), obs.LatencyBuckets).
			Observe(dur.Seconds())
		inflight.Add(-1)
		switch {
		case sw.status >= 500:
			class5xx.Inc()
			m.Counter(obs.Label(mw.Prefix+"_route_errors_total", "route", route)).Inc()
		case sw.status >= 400:
			class4xx.Inc()
		default:
			class2xx.Inc()
		}

		if !tracing {
			return
		}
		root.SetAttrInt("status", int64(sw.status))
		root.End()
		rt := &obs.RequestTrace{
			ID:       id,
			Route:    route,
			Method:   r.Method,
			Path:     r.URL.Path,
			Status:   sw.status,
			Client:   clientKey(r),
			Start:    t0,
			Duration: dur,
			Spans:    tr.Snapshot(),
		}
		mw.Recorder.Record(rt)
		if mw.Log != nil && mw.SlowThreshold > 0 && dur >= mw.SlowThreshold {
			mw.Log.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
				slog.String("trace_id", id),
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Float64("duration_ms", float64(dur.Microseconds())/1000),
				slog.String("client", rt.Client),
				slog.String("cache", rt.Spans[0].Attr("cache")),
			)
		}
	})
}

// Instrument wraps a handler with request accounting under the given
// metric prefix — Middleware without a recorder or log, kept for
// callers that only want the counters.
func Instrument(m *obs.Registry, prefix string, next http.Handler) http.Handler {
	return Middleware{Registry: m, Prefix: prefix}.Wrap(next)
}
