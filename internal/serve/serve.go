// Package serve is the always-on query plane: a long-running HTTP
// service over a live sacct.Store that accepts incremental appends and
// answers window queries and figure requests concurrently. Every
// response is keyed by the store's generation counter, so an append
// invalidates all cached answers at once and a client can prove its
// read reflects a prior write by comparing X-Store-Generation headers.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"slurmsight/internal/analyze"
	"slurmsight/internal/core"
	"slurmsight/internal/obs"
	"slurmsight/internal/sacct"
	"slurmsight/internal/sacct/colstore"
	"slurmsight/internal/slurm"
)

const (
	// maxIngestBody bounds one POST /ingest batch.
	maxIngestBody = 256 << 20
	// maxCacheBody keeps huge rendered responses out of the LRU: they
	// are still computed once per concurrent burst (single-flight) but
	// not retained.
	maxCacheBody = 8 << 20
)

// Config assembles a Server. Store is required; everything else has a
// serving-appropriate default.
type Config struct {
	Store  *sacct.Store
	System string // chart titles; default "cluster"

	Metrics *obs.Registry // nil allocates a private registry

	RatePerSec   float64 // per-client request rate; <= 0 disables throttling
	Burst        float64 // token bucket depth; default 2×rate
	CacheEntries int     // response LRU size; default 1024
	MaxRows      int     // hard cap on /query rows; <= 0 means unlimited
	TopUsers     int     // figure 5 user count; default 15
	Nodes        int     // capacity reference line for ext-load-timeline

	// Flight recorder sizing: ring of recent traces and slowest-N kept
	// per route. Zero takes the defaults (256/8); negative FlightRing
	// disables recording entirely, which also turns off per-request
	// tracing unless a slow log is configured.
	FlightRing int
	FlightTail int

	// SlowThreshold is the latency past which a request earns a
	// structured log line (with its trace ID). Zero defaults to 250ms;
	// negative disables the slow log.
	SlowThreshold time.Duration
	Log           *slog.Logger // slow-request log sink; nil disables

	Logf func(string, ...any) // nil discards
}

// Server handles the query-plane endpoints. Create with New, mount with
// Handler, run under ListenAndDrain.
type Server struct {
	store *sacct.Store
	cfg   Config
	m     *obs.Registry
	cache *respCache
	lim   *limiter
	rec   *obs.Recorder
	logf  func(string, ...any)

	ingestBatches, ingestRows, ingestMalformed, ingestErrors *obs.Counter
	genGauge, rowsGauge                                      *obs.Gauge

	// One analyze.Bundle feeds every figure at a given generation; the
	// mutex serialises (re)collection so a burst of figure requests
	// after an append scans the store once, not seven times.
	figMu     sync.Mutex
	figGen    uint64
	figBundle *analyze.Bundle
}

// New validates cfg and builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.System == "" {
		cfg.System = "cluster"
	}
	if cfg.TopUsers <= 0 {
		cfg.TopUsers = 15
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 2 * cfg.RatePerSec
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	m := cfg.Metrics
	if m == nil {
		m = obs.NewRegistry()
	}
	var rec *obs.Recorder
	if cfg.FlightRing >= 0 {
		rec = obs.NewRecorder(cfg.FlightRing, cfg.FlightTail)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		store: cfg.Store,
		cfg:   cfg,
		m:     m,
		cache: newRespCache(cfg.CacheEntries, m),
		lim:   newLimiter(cfg.RatePerSec, cfg.Burst, m),
		rec:   rec,
		logf:  logf,

		ingestBatches:   m.Counter("serve_ingest_batches_total"),
		ingestRows:      m.Counter("serve_ingest_rows_total"),
		ingestMalformed: m.Counter("serve_ingest_malformed_total"),
		ingestErrors:    m.Counter("serve_ingest_errors_total"),
		genGauge:        m.Gauge("serve_store_generation"),
		rowsGauge:       m.Gauge("serve_store_rows"),
	}
	s.store.Instrument(m)
	obs.PublishRuntime(m)
	s.updateStoreGauges()
	return s, nil
}

// Recorder exposes the server's flight recorder (nil when disabled) so
// callers can mount its handler elsewhere or snapshot it in tests.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Metrics returns the registry the server meters into (the configured
// one, or the private registry New allocated).
func (s *Server) Metrics() *obs.Registry { return s.m }

// CacheLen reports the current response-cache population.
func (s *Server) CacheLen() int { return s.cache.len() }

func (s *Server) updateStoreGauges() {
	s.genGauge.Set(int64(s.store.Generation()))
	s.rowsGauge.Set(int64(s.store.Len()))
}

// Handler mounts the full endpoint surface:
//
//	GET  /query          window queries, pipe-text out
//	POST /ingest         append a pipe-text or columnar batch
//	GET  /figures/<k>.json  chart spec for a figure key
//	GET  /healthz        liveness + store shape
//	GET  /metrics        Prometheus text
//	GET  /debug/requests flight recorder (HTML; ?format=json)
//	GET  /debug/pprof/*  profiling
//
// The whole mux is wrapped in request instrumentation under the
// "serve" metric prefix: RED metrics always, and — when the flight
// recorder or slow log is enabled — a per-request trace whose ID is
// echoed in X-Trace-Id.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /query", s.throttled(s.handleQuery))
	mux.HandleFunc("POST /ingest", s.throttled(s.handleIngest))
	mux.HandleFunc("GET /figures/{name}", s.throttled(s.handleFigure))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.m.Handler())
	mux.Handle("GET /debug/requests", s.rec.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return Middleware{
		Registry:      s.m,
		Prefix:        "serve",
		Recorder:      s.rec,
		SlowThreshold: s.cfg.SlowThreshold,
		Log:           s.cfg.Log,
	}.Wrap(mux)
}

// throttled gates a handler behind the per-client token bucket. Denials
// carry a Retry-After computed from the actual token refill rate and
// mark the request's trace so a 429 is self-explanatory in the flight
// recorder.
func (s *Server) throttled(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ok, retry := s.lim.allowRetry(clientKey(r))
		if !ok {
			secs := int(retry/time.Second) + 1 // round up; 0 is not a valid Retry-After
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			if sp := obs.SpanFromContext(r.Context()); sp != nil {
				sp.SetAttr("throttled", "true")
				sp.SetAttrInt("retry_after_s", int64(secs))
			}
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		h(w, r)
	}
}

// handleQuery answers GET /query: the sacct.Query surface as URL
// parameters (fields, start, end, user, account, partition, state,
// steps, limit), rendered as pipe-text. Responses carry
// X-Store-Generation (the generation answered at), X-Cache
// (hit/miss/coalesced), and X-Rows.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, limit, key, err := parseQuery(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.cfg.MaxRows > 0 && (limit <= 0 || limit > s.cfg.MaxRows) {
		limit = s.cfg.MaxRows
		key += "|cap=" + strconv.Itoa(limit)
	}
	gen := s.store.Generation()
	ent, outcome, err := s.cache.do(fmt.Sprintf("q|g=%d|%s", gen, key), func() (*entry, error) {
		var buf bytes.Buffer
		n, err := s.store.WriteNCtx(r.Context(), &buf, q, limit)
		if err != nil {
			return nil, err
		}
		body := buf.Bytes()
		return &entry{
			body:   body,
			ctype:  "text/plain; charset=utf-8",
			rows:   n,
			bypass: len(body) > maxCacheBody,
		}, nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeCached(w, r, ent, outcome, gen)
}

// handleFigure answers GET /figures/<key>.json with the chart spec for
// one figure, computed from a store-wide single-pass bundle that is
// re-collected at most once per generation.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	key, ok := strings.CutSuffix(name, ".json")
	if !ok || !validFigure(key) {
		http.Error(w, fmt.Sprintf("unknown figure %q", name), http.StatusNotFound)
		return
	}
	gen := s.store.Generation()
	ent, outcome, err := s.cache.do(fmt.Sprintf("fig|g=%d|%s", gen, key), func() (*entry, error) {
		b, err := s.bundleAt(r.Context(), gen)
		if err != nil {
			return nil, err
		}
		chart, err := core.ChartFromBundleCtx(r.Context(), key, s.cfg.System, b, s.cfg.TopUsers, s.cfg.Nodes)
		if err != nil {
			return nil, err
		}
		body, err := chart.JSON()
		if err != nil {
			return nil, err
		}
		return &entry{body: body, ctype: "application/json", rows: -1}, nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeCached(w, r, ent, outcome, gen)
}

func validFigure(key string) bool {
	for _, k := range core.FigureKeys() {
		if k == key {
			return true
		}
	}
	for _, k := range core.ExtendedFigureKeys() {
		if k == key {
			return true
		}
	}
	return false
}

// bundleAt returns the figure bundle for gen, re-collecting when the
// cached one is from another generation. An append landing mid-scan can
// leave a bundle slightly ahead of its label; the next generation's
// request recomputes, so staleness never outlives one append.
func (s *Server) bundleAt(ctx context.Context, gen uint64) (*analyze.Bundle, error) {
	s.figMu.Lock()
	defer s.figMu.Unlock()
	if s.figBundle != nil && s.figGen == gen {
		if sp := obs.SpanFromContext(ctx); sp != nil {
			sp.SetAttr("bundle", "cached")
		}
		return s.figBundle, nil
	}
	b, err := analyze.CollectCtx(ctx, s.store.ScanCtx(ctx, sacct.Query{IncludeSteps: true}), core.TimelineBucket)
	if err != nil {
		return nil, err
	}
	s.figBundle, s.figGen = b, gen
	return b, nil
}

func (s *Server) writeCached(w http.ResponseWriter, r *http.Request, ent *entry, outcome cacheOutcome, gen uint64) {
	h := w.Header()
	h.Set("Content-Type", ent.ctype)
	h.Set("X-Store-Generation", strconv.FormatUint(gen, 10))
	h.Set("X-Cache", string(outcome))
	if ent.rows >= 0 {
		h.Set("X-Rows", strconv.Itoa(ent.rows))
	}
	if sp := obs.SpanFromContext(r.Context()); sp != nil {
		sp.SetAttr("cache", string(outcome))
		sp.SetAttrInt("generation", int64(gen))
		if ent.rows >= 0 {
			sp.SetAttrInt("rows", int64(ent.rows))
		}
	}
	w.Write(ent.body)
}

// ingestResponse is the POST /ingest reply.
type ingestResponse struct {
	Rows       int    `json:"rows"`
	Malformed  int    `json:"malformed"`
	Generation uint64 `json:"generation"`
}

// handleIngest appends a record batch: a columnar blob (sniffed by
// magic) or pipe-text with a header line. The batch lands under the
// store lock, Finalize restores scan order, and the response reports
// the post-append generation — a client that re-queries with at least
// that generation in X-Store-Generation has proof its rows are visible.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r, maxIngestBody)
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	var (
		recs      []slurm.Record
		malformed int
	)
	decode := func() {
		if colstore.SniffBytes(body) {
			recs, err = decodeBinaryBatch(body)
		} else {
			recs, malformed, err = decodeTextBatch(body)
		}
	}
	if sp := obs.SpanFromContext(r.Context()).Child("ingest-decode"); sp != nil {
		sp.SetAttrInt("bytes", int64(len(body)))
		decode()
		sp.SetAttrInt("rows", int64(len(recs)))
		sp.SetAttrInt("malformed", int64(malformed))
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	} else {
		decode()
	}
	if err != nil {
		s.ingestErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(recs) > 0 {
		if err := s.store.Add(recs...); err != nil {
			// The store refused the append (a corrupt lazy shard,
			// typically) — the data-loss path this service exists to
			// close. Surface it loudly; nothing was silently dropped.
			s.ingestErrors.Inc()
			s.updateStoreGauges()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.store.Finalize()
	}
	s.ingestBatches.Inc()
	s.ingestRows.Add(int64(len(recs)))
	s.ingestMalformed.Add(int64(malformed))
	s.updateStoreGauges()
	gen := s.store.Generation()
	s.logf("ingest: +%d rows (%d malformed), generation %d", len(recs), malformed, gen)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Store-Generation", strconv.FormatUint(gen, 10))
	json.NewEncoder(w).Encode(ingestResponse{Rows: len(recs), Malformed: malformed, Generation: gen})
}

func readBody(r *http.Request, max int64) ([]byte, error) {
	body, err := readAllLimit(r, max)
	if err != nil {
		return nil, err
	}
	return body, nil
}

func readAllLimit(r *http.Request, max int64) ([]byte, error) {
	var buf bytes.Buffer
	n, err := buf.ReadFrom(http.MaxBytesReader(nil, r.Body, max))
	if err != nil {
		return nil, fmt.Errorf("serve: ingest body: %w (limit %d bytes)", err, max)
	}
	_ = n
	return buf.Bytes(), nil
}

// decodeBinaryBatch opens a columnar blob (via a temp file — the reader
// is mmap-based) and materialises every record, steps included.
func decodeBinaryBatch(body []byte) ([]slurm.Record, error) {
	tmp, err := os.CreateTemp("", "queryd-ingest-*.colstore")
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, err
	}
	st, err := sacct.OpenBinary(tmp.Name())
	if err != nil {
		return nil, fmt.Errorf("serve: columnar batch: %w", err)
	}
	defer st.Close()
	recs, err := st.Select(sacct.Query{IncludeSteps: true})
	if err != nil {
		return nil, fmt.Errorf("serve: columnar batch: %w", err)
	}
	return recs, nil
}

// decodeTextBatch parses a pipe-text batch: first non-blank line is the
// header, malformed rows are counted and skipped (the curation stage's
// contract), an unusable header is an error.
func decodeTextBatch(body []byte) (recs []slurm.Record, malformed int, err error) {
	var fields []string
	for _, raw := range strings.Split(string(body), "\n") {
		line := strings.TrimSuffix(raw, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if fields == nil {
			names := strings.Split(line, slurm.Separator)
			for _, name := range names {
				if _, ok := slurm.FieldByName(name); !ok {
					return nil, 0, fmt.Errorf("serve: header has unknown field %q", name)
				}
			}
			fields = names
			continue
		}
		rec, err := slurm.DecodeRecord(line, fields)
		if err != nil {
			malformed++
			continue
		}
		recs = append(recs, *rec)
	}
	if fields == nil {
		return nil, 0, fmt.Errorf("serve: empty batch (no header line)")
	}
	return recs, malformed, nil
}

// handleHealth reports liveness and store shape.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.updateStoreGauges()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":        "ok",
		"rows":          s.store.Len(),
		"months":        len(s.store.Months()),
		"generation":    s.store.Generation(),
		"cache_entries": s.cache.len(),
	})
}

// timeLayouts are the accepted start/end spellings, most to least
// specific. All-digit strings of unix-seconds length are epoch seconds.
var timeLayouts = []string{
	time.RFC3339Nano,
	time.RFC3339,
	"2006-01-02T15:04:05",
	"2006-01-02 15:04:05",
	"2006-01-02",
	"2006-01",
	"2006",
}

func parseTimeParam(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil && len(s) >= 9 {
		return time.Unix(n, 0).UTC(), nil
	}
	for _, layout := range timeLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UTC(), nil
		}
	}
	return time.Time{}, fmt.Errorf("unparseable time %q (try RFC3339, 2006-01-02, 2006-01, or epoch seconds)", s)
}

// parseQuery maps URL parameters onto a sacct.Query plus a row limit,
// returning a canonical cache-key fragment (generation excluded — the
// caller prefixes it). Validation failures here become 400s; anything
// that survives and still errors during the scan is a 500.
func parseQuery(v map[string][]string) (q sacct.Query, limit int, key string, err error) {
	get := func(name string) string {
		if vals := v[name]; len(vals) > 0 {
			return strings.TrimSpace(vals[0])
		}
		return ""
	}
	if f := get("fields"); f != "" {
		for _, name := range strings.Split(f, ",") {
			name = strings.TrimSpace(name)
			if _, ok := slurm.FieldByName(name); !ok {
				return q, 0, "", fmt.Errorf("unknown field %q", name)
			}
			q.Fields = append(q.Fields, name)
		}
	}
	if q.Start, err = parseTimeParam(get("start")); err != nil {
		return q, 0, "", fmt.Errorf("start: %w", err)
	}
	if q.End, err = parseTimeParam(get("end")); err != nil {
		return q, 0, "", fmt.Errorf("end: %w", err)
	}
	if !q.Start.IsZero() && !q.End.IsZero() && !q.Start.Before(q.End) {
		return q, 0, "", fmt.Errorf("empty window: start %s is not before end %s", q.Start, q.End)
	}
	q.User = get("user")
	q.Account = get("account")
	q.Partition = get("partition")
	if st := get("state"); st != "" {
		if _, err := slurm.ParseState(st); err != nil {
			return q, 0, "", err
		}
		q.State = st
	}
	switch steps := get("steps"); steps {
	case "", "0", "false":
	case "1", "true":
		q.IncludeSteps = true
	default:
		return q, 0, "", fmt.Errorf("steps must be a boolean, got %q", steps)
	}
	if l := get("limit"); l != "" {
		limit, err = strconv.Atoi(l)
		if err != nil || limit < 0 {
			return q, 0, "", fmt.Errorf("limit must be a non-negative integer, got %q", l)
		}
	}
	tkey := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return strconv.FormatInt(t.UnixNano(), 10)
	}
	key = strings.Join([]string{
		"f=" + strings.ToLower(strings.Join(q.Fields, ",")),
		"s=" + tkey(q.Start),
		"e=" + tkey(q.End),
		"u=" + q.User,
		"a=" + q.Account,
		"p=" + q.Partition,
		"st=" + strings.ToLower(q.State),
		"steps=" + strconv.FormatBool(q.IncludeSteps),
		"n=" + strconv.Itoa(limit),
	}, "|")
	return q, limit, key, nil
}
