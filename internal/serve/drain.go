package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ListenAndDrain runs srv until ctx is cancelled or the process
// receives SIGINT/SIGTERM, then drains in-flight requests within the
// grace budget before returning — the shutdown path every long-running
// server in this repo shares (llmserve, queryd, the dashboards), so a
// deploy's TERM never cuts a response mid-body. A listener error before
// any signal (a failed bind, typically) is returned immediately. A
// clean drain returns nil; requests still open past grace are abandoned
// and the Shutdown error returned.
func ListenAndDrain(ctx context.Context, srv *http.Server, grace time.Duration, logf func(string, ...any)) error {
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return err
	}
	return Drain(ctx, srv, ln, grace, logf)
}

// Drain is ListenAndDrain over an existing listener, for callers that
// bind port 0 and need the chosen address (tests, the queryload
// harness's self-hosted mode).
func Drain(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration, logf func(string, ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		// Listener failure before any signal.
		return err
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills hard
		logf("shutting down (draining in-flight requests, %s budget)", grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logf("bye")
		return nil
	}
}
