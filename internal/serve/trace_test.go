package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"slurmsight/internal/sacct"
)

// syncBuffer lets the slow-request slog handler write from request
// goroutines while the test reads the accumulated lines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// binaryStore dumps a populated store to the columnar format and
// reopens it lazily, so the first scan pays real shard decodes and the
// trace shows them.
func binaryStore(t *testing.T, n int) *sacct.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.colstore")
	if err := testStore(t, n).DumpBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	st, err := sacct.OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

type spanNode struct {
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs"`
	Children []spanNode        `json:"children"`
}

type recordedTrace struct {
	ID         string     `json:"id"`
	Route      string     `json:"route"`
	Status     int        `json:"status"`
	DurationMS float64    `json:"duration_ms"`
	Spans      []spanNode `json:"spans"`
}

func fetchTraces(t *testing.T, base string) []recordedTrace {
	t.Helper()
	_, body := get(t, base+"/debug/requests?format=json")
	var out struct {
		Total  uint64          `json:"total"`
		Recent []recordedTrace `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/debug/requests JSON: %v\n%s", err, body)
	}
	return out.Recent
}

func findSpan(nodes []spanNode, name string) *spanNode {
	for i := range nodes {
		if nodes[i].Name == name {
			return &nodes[i]
		}
		if found := findSpan(nodes[i].Children, name); found != nil {
			return found
		}
	}
	return nil
}

// TestFigureRequestTrace pins the tentpole contract end to end: a
// figure cache miss over a lazily-loaded binary store yields a flight
// recorder trace whose child spans name the store scan, the colstore
// shard decodes, the analyze collect, and the figure render — each with
// row/shard attributes — and the slow log line carries the same trace
// ID the response advertised in X-Trace-Id.
func TestFigureRequestTrace(t *testing.T) {
	logBuf := &syncBuffer{}
	_, ts := testServer(t, Config{
		Store:         binaryStore(t, 20),
		SlowThreshold: time.Nanosecond, // everything is slow: every request logs
		Log:           slog.New(slog.NewJSONHandler(logBuf, nil)),
	})

	resp, body := get(t, ts.URL+"/figures/fig1-volume.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if len(traceID) != 16 {
		t.Fatalf("X-Trace-Id = %q, want a 16-hex trace ID", traceID)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss", got)
	}

	var trace *recordedTrace
	for _, rt := range fetchTraces(t, ts.URL) {
		if rt.ID == traceID {
			trace = &rt
			break
		}
	}
	if trace == nil {
		t.Fatalf("trace %s not in the flight recorder", traceID)
	}
	if trace.Route != "/figures" || trace.Status != 200 {
		t.Fatalf("trace %+v", trace)
	}
	if len(trace.Spans) != 1 || trace.Spans[0].Name != "GET /figures" {
		t.Fatalf("root spans: %+v", trace.Spans)
	}
	root := trace.Spans[0]
	if root.Attrs["cache"] != "miss" || root.Attrs["status"] != "200" {
		t.Fatalf("root attrs: %v", root.Attrs)
	}

	scan := findSpan(root.Children, "store-scan")
	if scan == nil {
		t.Fatalf("no store-scan span under root: %+v", root.Children)
	}
	if rows, _ := strconv.Atoi(scan.Attrs["rows"]); rows != 20 {
		t.Fatalf("store-scan rows = %q, want 20", scan.Attrs["rows"])
	}
	if shards, _ := strconv.Atoi(scan.Attrs["shards"]); shards < 1 {
		t.Fatalf("store-scan shards = %q", scan.Attrs["shards"])
	}
	open := findSpan(scan.Children, "colstore-shard-open")
	if open == nil {
		t.Fatalf("no colstore-shard-open span under store-scan: %+v", scan.Children)
	}
	if open.Attrs["shard"] == "" || open.Attrs["rows"] == "" {
		t.Fatalf("shard-open attrs: %v", open.Attrs)
	}
	if findSpan(root.Children, "analyze-collect") == nil {
		t.Fatal("no analyze-collect span")
	}
	render := findSpan(root.Children, "figure-render")
	if render == nil || render.Attrs["figure"] != "fig1-volume" {
		t.Fatalf("figure-render span: %+v", render)
	}

	// Log↔trace correlation: a slow-request line carries the trace ID.
	var logged bool
	for _, line := range bytes.Split([]byte(logBuf.String()), []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var entry map[string]any
		if err := json.Unmarshal(line, &entry); err != nil {
			t.Fatalf("slow log line is not JSON: %v: %s", err, line)
		}
		if entry["msg"] == "slow request" && entry["trace_id"] == traceID {
			if entry["route"] != "/figures" || entry["cache"] != "miss" {
				t.Fatalf("slow log entry: %v", entry)
			}
			logged = true
		}
	}
	if !logged {
		t.Fatalf("no slow-request log line with trace_id %s:\n%s", traceID, logBuf.String())
	}

	// A cache hit re-traces cheaply: no scan spans, cache attr says hit.
	resp, _ = get(t, ts.URL+"/figures/fig1-volume.json")
	hitID := resp.Header.Get("X-Trace-Id")
	if hitID == traceID || hitID == "" {
		t.Fatalf("hit trace ID %q", hitID)
	}
	for _, rt := range fetchTraces(t, ts.URL) {
		if rt.ID != hitID {
			continue
		}
		hitRoot := rt.Spans[0]
		if hitRoot.Attrs["cache"] != "hit" {
			t.Fatalf("hit root attrs: %v", hitRoot.Attrs)
		}
		if findSpan(hitRoot.Children, "store-scan") != nil {
			t.Fatal("cache hit ran a store scan")
		}
		return
	}
	t.Fatalf("hit trace %s not recorded", hitID)
}

// TestQueryTraceRows pins tracing on the /query path: the store scan
// span reports the projected row count and the root carries the rows
// served.
func TestQueryTraceRows(t *testing.T) {
	_, ts := testServer(t, Config{Store: binaryStore(t, 10)})
	resp, _ := get(t, ts.URL+"/query?fields=JobID,User&limit=4")
	traceID := resp.Header.Get("X-Trace-Id")
	for _, rt := range fetchTraces(t, ts.URL) {
		if rt.ID != traceID {
			continue
		}
		root := rt.Spans[0]
		if root.Attrs["rows"] != "4" || root.Attrs["cache"] != "miss" {
			t.Fatalf("root attrs: %v", root.Attrs)
		}
		if scan := findSpan(root.Children, "store-scan"); scan == nil {
			t.Fatalf("no store-scan span: %+v", root.Children)
		}
		return
	}
	t.Fatalf("trace %s not recorded", traceID)
}

// TestTracingDisabled pins the baseline path: with the recorder and the
// slow log both off, requests carry no trace ID and nothing is
// recorded, yet /debug/requests still answers.
func TestTracingDisabled(t *testing.T) {
	s, ts := testServer(t, Config{FlightRing: -1, SlowThreshold: -1})
	resp, _ := get(t, ts.URL+"/query?fields=JobID")
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	if id := resp.Header.Get("X-Trace-Id"); id != "" {
		t.Fatalf("untraced request has X-Trace-Id %q", id)
	}
	if s.Recorder() != nil {
		t.Fatal("recorder allocated despite FlightRing < 0")
	}
	resp, body := get(t, ts.URL+"/debug/requests?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests with recording off: %d %s", resp.StatusCode, body)
	}
}

// TestThrottleRetryAfterConcurrent hammers a tiny token bucket from
// many goroutines: exactly burst requests are admitted, every 429
// carries a positive integer Retry-After derived from the refill rate,
// and throttled traces are marked.
func TestThrottleRetryAfterConcurrent(t *testing.T) {
	_, ts := testServer(t, Config{RatePerSec: 0.5, Burst: 3})
	const n = 12
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		ok, thr int
		retries []int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/query?fields=JobID")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				thr++
				ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
				if err != nil || ra < 1 {
					t.Errorf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
				}
				retries = append(retries, ra)
			default:
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if ok != 3 || thr != n-3 {
		t.Fatalf("admitted %d throttled %d, want 3/%d", ok, thr, n-3)
	}
	// At 0.5 tokens/s an empty bucket refills a token in 2s; ceil plus
	// the spent fraction keeps every hint in [1, 3].
	for _, ra := range retries {
		if ra > 3 {
			t.Fatalf("Retry-After %d, want <= 3 at 0.5 rps", ra)
		}
	}
	// Throttled requests are marked in their traces.
	var marked int
	for _, rt := range fetchTraces(t, ts.URL) {
		if rt.Status != http.StatusTooManyRequests {
			continue
		}
		if rt.Spans[0].Attrs["throttled"] == "true" && rt.Spans[0].Attrs["retry_after_s"] != "" {
			marked++
		}
	}
	if marked != n-3 {
		t.Fatalf("%d throttled traces marked, want %d", marked, n-3)
	}
}

// TestCacheTransitionsConcurrent pins X-Cache under concurrent load:
// one miss per cold key however many clients race it, the rest split
// between coalesced (joined the in-flight computation) and hit (arrived
// after it landed), and a follow-up request is a plain hit.
func TestCacheTransitionsConcurrent(t *testing.T) {
	_, ts := testServer(t, Config{})
	const n = 24
	u := ts.URL + "/query?fields=JobID,User,State&limit=5"
	var wg sync.WaitGroup
	outcomes := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(u)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			outcomes[i] = resp.Header.Get("X-Cache")
		}(i)
	}
	wg.Wait()
	var miss, hit, coal int
	for _, o := range outcomes {
		switch o {
		case "miss":
			miss++
		case "hit":
			hit++
		case "coalesced":
			coal++
		default:
			t.Fatalf("X-Cache %q", o)
		}
	}
	if miss != 1 || miss+hit+coal != n {
		t.Fatalf("miss=%d hit=%d coalesced=%d, want exactly one miss of %d", miss, hit, coal, n)
	}
	resp, _ := get(t, u)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("follow-up X-Cache = %q, want hit", got)
	}
}
