package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"slurmsight/internal/obs"
	"slurmsight/internal/sacct"
	"slurmsight/internal/slurm"
)

func testRecord(i int, submit time.Time) slurm.Record {
	return slurm.Record{
		ID:        slurm.NewJobID(int64(1000 + i)),
		User:      fmt.Sprintf("u%02d", i%5),
		Account:   "acct",
		Partition: "batch",
		Submit:    submit,
		Start:     submit.Add(time.Minute),
		End:       submit.Add(11 * time.Minute),
		Elapsed:   10 * time.Minute,
		State:     slurm.StateCompleted,
		NNodes:    2,
		NCPUs:     16,
	}
}

func testStore(t *testing.T, n int) *sacct.Store {
	t.Helper()
	st := sacct.NewStore()
	base := time.Date(2024, 1, 10, 0, 0, 0, 0, time.UTC)
	recs := make([]slurm.Record, n)
	for i := range recs {
		recs[i] = testRecord(i, base.Add(time.Duration(i)*time.Hour))
	}
	if err := st.Add(recs...); err != nil {
		t.Fatal(err)
	}
	st.Finalize()
	return st
}

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = testStore(t, 10)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// textBatch renders records as a pipe-text ingest body.
func textBatch(t *testing.T, recs ...slurm.Record) string {
	t.Helper()
	fields := []string{"JobID", "User", "Account", "Partition", "Submit", "Start", "End", "Elapsed", "State", "NNodes", "NCPUs"}
	var sb strings.Builder
	sb.WriteString(slurm.Header(fields))
	sb.WriteByte('\n')
	for i := range recs {
		line, err := slurm.EncodeRecord(&recs[i], fields)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestQueryIngestGeneration pins the tentpole contract: a generation
// bump invalidates cached query responses exactly once, and a query
// issued after an acknowledged ingest observes the appended rows.
func TestQueryIngestGeneration(t *testing.T) {
	m := obs.NewRegistry()
	s, ts := testServer(t, Config{Metrics: m})
	misses := m.Counter("serve_cache_misses_total")
	hits := m.Counter("serve_cache_hits_total")

	u := ts.URL + "/query?fields=JobID,User"
	resp, body := get(t, u)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first query X-Cache = %q, want miss", got)
	}
	if got := resp.Header.Get("X-Rows"); got != "10" {
		t.Fatalf("X-Rows = %q, want 10", got)
	}
	gen0 := resp.Header.Get("X-Store-Generation")

	resp, _ = get(t, u)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat query X-Cache = %q, want hit", got)
	}
	if misses.Value() != 1 || hits.Value() != 1 {
		t.Fatalf("misses=%d hits=%d, want 1/1", misses.Value(), hits.Value())
	}

	// Append 5 rows in a later month.
	base := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	var recs []slurm.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, testRecord(100+i, base.Add(time.Duration(i)*time.Hour)))
	}
	ingResp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(textBatch(t, recs...)))
	if err != nil {
		t.Fatal(err)
	}
	var ack ingestResponse
	if err := json.NewDecoder(ingResp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	ingResp.Body.Close()
	if ingResp.StatusCode != http.StatusOK || ack.Rows != 5 {
		t.Fatalf("ingest status %d ack %+v", ingResp.StatusCode, ack)
	}

	// The bump invalidates the cached response exactly once: one new
	// miss, then hits again.
	for i, want := range []string{"miss", "hit", "hit"} {
		resp, _ = get(t, u)
		if got := resp.Header.Get("X-Cache"); got != want {
			t.Fatalf("query %d after ingest: X-Cache = %q, want %q", i, got, want)
		}
		if got := resp.Header.Get("X-Rows"); got != "15" {
			t.Fatalf("query %d after ingest: X-Rows = %q, want 15", i, got)
		}
		if gen := resp.Header.Get("X-Store-Generation"); gen == gen0 {
			t.Fatalf("generation did not advance past %s", gen0)
		}
	}
	if misses.Value() != 2 {
		t.Fatalf("misses after one generation bump = %d, want exactly 2", misses.Value())
	}
	if s.CacheLen() == 0 {
		t.Fatal("cache is empty")
	}
}

func TestIngestBinaryBatch(t *testing.T) {
	_, ts := testServer(t, Config{})

	batch := testStore(t, 3) // distinct store rendered as a columnar blob
	path := filepath.Join(t.TempDir(), "batch.colstore")
	if err := batch.DumpBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ack.Rows != 3 {
		t.Fatalf("binary ingest: status %d ack %+v", resp.StatusCode, ack)
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, bad := range []string{
		"/query?fields=NoSuchField",
		"/query?start=not-a-time",
		"/query?state=NOT_A_STATE",
		"/query?limit=-3",
		"/query?steps=maybe",
		"/query?start=2024-02&end=2024-01",
	} {
		resp, body := get(t, ts.URL+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", bad, resp.StatusCode, strings.TrimSpace(body))
		}
	}
	resp, _ := get(t, ts.URL+"/figures/not-a-figure.json")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown figure: status %d, want 404", resp.StatusCode)
	}
}

func TestQueryWindowAndFilters(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := get(t, ts.URL+"/query?fields=JobID,User&user=u01&start=2024-01-01&end=2024-03-01")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 3 { // header + 2 rows for u01 of 10
		t.Fatalf("got %d lines: %q", len(lines), body)
	}
	for _, l := range lines[1:] {
		if !strings.HasSuffix(l, "|u01") {
			t.Fatalf("row %q does not match filter", l)
		}
	}
}

func TestFigureEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{System: "testsys"})
	resp, body := get(t, ts.URL+"/figures/fig1-volume.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var spec map[string]any
	if err := json.Unmarshal([]byte(body), &spec); err != nil {
		t.Fatalf("figure is not JSON: %v", err)
	}
	if title, _ := spec["title"].(string); !strings.Contains(title, "testsys") {
		t.Fatalf("title %q does not mention the system", spec["title"])
	}
	resp, _ = get(t, ts.URL+"/figures/fig1-volume.json")
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat figure X-Cache = %q, want hit", got)
	}
}

func TestThrottle(t *testing.T) {
	_, ts := testServer(t, Config{RatePerSec: 0.001, Burst: 2})
	var got []int
	for i := 0; i < 4; i++ {
		resp, _ := get(t, ts.URL+"/query?fields=JobID")
		got = append(got, resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	}
	want := []int{200, 200, 429, 429}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("statuses %v, want %v", got, want)
		}
	}
	// /healthz and /metrics stay open under throttling.
	for _, p := range []string{"/healthz", "/metrics"} {
		if resp, _ := get(t, ts.URL+p); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s throttled", p)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	var h map[string]any
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h["rows"].(float64) != 10 || h["status"] != "ok" {
		t.Fatalf("healthz %v", h)
	}
}

// TestCacheSingleFlight pins the dedup contract: concurrent identical
// misses run the computation once and everyone shares the result.
func TestCacheSingleFlight(t *testing.T) {
	c := newRespCache(8, obs.NewRegistry())
	var computes int32
	var mu sync.Mutex
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	outcomes := make([]cacheOutcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ent, out, err := c.do("k", func() (*entry, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				<-release
				return &entry{body: []byte("v")}, nil
			})
			if err != nil || string(ent.body) != "v" {
				t.Errorf("do: %v %q", err, ent.body)
			}
			outcomes[i] = out
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let followers queue up
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	var miss, coal int
	for _, o := range outcomes {
		switch o {
		case cacheMiss:
			miss++
		case cacheCoalesced:
			coal++
		}
	}
	if miss != 1 || coal != n-1 {
		t.Fatalf("miss=%d coalesced=%d, want 1/%d", miss, coal, n-1)
	}
}

func TestCacheEvictionAndBypass(t *testing.T) {
	c := newRespCache(2, obs.NewRegistry())
	mk := func(key string, bypass bool) {
		t.Helper()
		if _, _, err := c.do(key, func() (*entry, error) {
			return &entry{body: []byte(key), bypass: bypass}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("a", false)
	mk("b", false)
	mk("c", false) // evicts a
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	_, out, _ := c.do("a", func() (*entry, error) { return &entry{body: []byte("a2")}, nil })
	if out != cacheMiss {
		t.Fatalf("evicted key came back as %v", out)
	}
	mk("big", true) // bypass: computed but never cached
	_, out, _ = c.do("big", func() (*entry, error) { return &entry{body: []byte("big2"), bypass: true}, nil })
	if out != cacheMiss {
		t.Fatalf("bypass entry was cached (outcome %v)", out)
	}
	// A failed computation is not cached either.
	c.do("err", func() (*entry, error) { return nil, fmt.Errorf("boom") })
	_, out, err := c.do("err", func() (*entry, error) { return &entry{body: []byte("ok")}, nil })
	if err != nil || out != cacheMiss {
		t.Fatalf("error entry was cached (outcome %v err %v)", out, err)
	}
}

func TestLimiterRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newLimiter(2, 2, obs.NewRegistry())
	l.now = func() time.Time { return now }
	if !l.allow("a") || !l.allow("a") {
		t.Fatal("burst refused")
	}
	if l.allow("a") {
		t.Fatal("over-burst admitted")
	}
	if !l.allow("b") {
		t.Fatal("independent client refused")
	}
	now = now.Add(time.Second) // 2 tokens refilled
	if !l.allow("a") || !l.allow("a") || l.allow("a") {
		t.Fatal("refill arithmetic wrong")
	}
}

func TestWatcherTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slurm-2024-01.txt")
	st := sacct.NewStore()
	w := &Watcher{Path: path, Store: st}

	// Missing file: wait, no error.
	if n, bad, err := w.poll(); n != 0 || bad != 0 || err != nil {
		t.Fatalf("poll on missing file: %d %d %v", n, bad, err)
	}

	base := time.Date(2024, 1, 5, 0, 0, 0, 0, time.UTC)
	r0, r1, r2 := testRecord(0, base), testRecord(1, base.Add(time.Hour)), testRecord(2, base.Add(2*time.Hour))
	full := textBatch(t, r0, r1, r2)
	lines := strings.SplitAfter(full, "\n")

	// Header + first row + half of the second row.
	half := lines[0] + lines[1] + lines[2][:8]
	if err := os.WriteFile(path, []byte(half), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, _, err := w.poll(); err != nil || n != 1 {
		t.Fatalf("first poll: n=%d err=%v, want 1 row", n, err)
	}
	// Rest of the file, plus one malformed line.
	rest := lines[2][8:] + lines[3] + "not|a|row\n"
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(rest); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if n, bad, err := w.poll(); err != nil || n != 2 || bad != 1 {
		t.Fatalf("second poll: n=%d bad=%d err=%v, want 2/1", n, bad, err)
	}
	if st.Len() != 3 {
		t.Fatalf("store has %d rows, want 3", st.Len())
	}

	// Rotation: a shorter file resets the tail, header and all.
	if err := os.WriteFile(path, []byte(textBatch(t, testRecord(9, base.AddDate(0, 1, 0)))), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, _, err := w.poll(); err != nil || n != 1 {
		t.Fatalf("post-rotation poll: n=%d err=%v, want 1", n, err)
	}
	if st.Len() != 4 {
		t.Fatalf("store has %d rows after rotation, want 4", st.Len())
	}
}

func TestDrainShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Drain(ctx, srv, ln, 2*time.Second, nil) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not return after cancel")
	}
}
