package raster

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"os"
	"strconv"
	"strings"
	"unicode"

	"slurmsight/internal/plot"
)

// canvas wraps an RGBA image with the drawing primitives the renderer
// needs.
type canvas struct {
	img *image.RGBA
}

func newCanvas(w, h int) *canvas {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for i := range img.Pix {
		img.Pix[i] = 0xFF // white background, opaque alpha
	}
	return &canvas{img: img}
}

func (c *canvas) set(x, y int, col color.RGBA) {
	if image.Pt(x, y).In(c.img.Rect) {
		c.img.SetRGBA(x, y, col)
	}
}

// line draws with Bresenham's algorithm.
func (c *canvas) line(x0, y0, x1, y1 int, col color.RGBA) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := 1, 1
	if x0 >= x1 {
		sx = -1
	}
	if y0 >= y1 {
		sy = -1
	}
	err := dx + dy
	for {
		c.set(x0, y0, col)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func (c *canvas) fillRect(x0, y0, x1, y1 int, col color.RGBA) {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			c.set(x, y, col)
		}
	}
}

func (c *canvas) rect(x0, y0, x1, y1 int, col color.RGBA) {
	c.line(x0, y0, x1, y0, col)
	c.line(x1, y0, x1, y1, col)
	c.line(x1, y1, x0, y1, col)
	c.line(x0, y1, x0, y0, col)
}

// disc draws a filled circle of the given radius.
func (c *canvas) disc(cx, cy, r int, col color.RGBA) {
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r*r {
				c.set(cx+dx, cy+dy, col)
			}
		}
	}
}

// text draws a string with the built-in 5x7 font; unknown runes render as
// a small box.
func (c *canvas) text(x, y int, s string, col color.RGBA) {
	for i, r := range s {
		g, ok := glyphs[unicode.ToUpper(r)]
		if !ok {
			g = glyphs['-']
		}
		for row := 0; row < glyphH; row++ {
			bits := g[row]
			for bit := 0; bit < 5; bit++ {
				if bits&(1<<(4-bit)) != 0 {
					c.set(x+i*glyphW+bit, y+row, col)
				}
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// parseColor reads "#rrggbb".
func parseColor(s string) color.RGBA {
	if len(s) == 7 && s[0] == '#' {
		r, err1 := strconv.ParseUint(s[1:3], 16, 8)
		g, err2 := strconv.ParseUint(s[3:5], 16, 8)
		b, err3 := strconv.ParseUint(s[5:7], 16, 8)
		if err1 == nil && err2 == nil && err3 == nil {
			return color.RGBA{uint8(r), uint8(g), uint8(b), 0xFF}
		}
	}
	return color.RGBA{0, 0, 0, 0xFF}
}

var (
	black = color.RGBA{0, 0, 0, 0xFF}
	grey  = color.RGBA{0x88, 0x88, 0x88, 0xFF}
	faint = color.RGBA{0xEE, 0xEE, 0xEE, 0xFF}
)

// Geometry shared with the SVG renderer.
const (
	marginLeft   = 70
	marginRight  = 140
	marginTop    = 40
	marginBottom = 55
)

// PNG rasterises a chart. The layout mirrors the SVG renderer so the two
// artifacts depict the same figure.
func PNG(c *plot.Chart, width, height int) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if width < 200 || height < 150 {
		return nil, fmt.Errorf("raster: canvas %dx%d too small", width, height)
	}
	cv := newCanvas(width, height)
	title := c.Title
	cv.text((width-len(title)*glyphW)/2, 12, title, black)

	l, r := marginLeft, width-marginRight
	t, b := marginTop, height-marginBottom
	cv.rect(l, t, r, b, grey)

	switch c.Kind {
	case plot.StackedBar, plot.GroupedBar:
		rasterBars(cv, c, l, r, t, b)
	default:
		rasterXY(cv, c, l, r, t, b)
	}

	// Legend.
	for i := range c.Series {
		col := parseColor(effectiveColor(c, i))
		y := t + i*16
		cv.fillRect(r+10, y, r+20, y+10, col)
		cv.text(r+26, y+2, c.Series[i].Name, black)
	}
	// Axis labels.
	cv.text((l+r)/2-len(c.XLabel)*glyphW/2, height-16, c.XLabel, black)
	cv.text(4, t-14, c.YLabel, black)

	var buf bytes.Buffer
	if err := png.Encode(&buf, cv.img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// effectiveColor mirrors the SVG palette assignment.
func effectiveColor(c *plot.Chart, i int) string {
	if c.Series[i].Color != "" {
		return c.Series[i].Color
	}
	fallback := []string{
		"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
		"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
	}
	return fallback[i%len(fallback)]
}

type axis struct {
	lo, hi       float64
	pxLo, pxHi   int
	log, flipped bool
}

func (a *axis) pos(v float64) int {
	lo, hi, x := a.lo, a.hi, v
	if a.log {
		lo, hi, x = math.Log10(lo), math.Log10(hi), math.Log10(x)
	}
	f := (x - lo) / (hi - lo)
	if a.flipped {
		f = 1 - f
	}
	return a.pxLo + int(f*float64(a.pxHi-a.pxLo))
}

func rangeOf(c *plot.Chart, ofX bool) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range c.Series {
		vals := c.Series[i].Y
		if ofX {
			vals = c.Series[i].X
		}
		for _, v := range vals {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	if lo == hi {
		hi = lo + 1
	}
	return lo, hi
}

func rasterXY(cv *canvas, c *plot.Chart, l, r, t, b int) {
	xlo, xhi := rangeOf(c, true)
	ylo, yhi := rangeOf(c, false)
	xa := &axis{lo: xlo, hi: xhi, pxLo: l, pxHi: r, log: c.XScale == plot.Log10}
	ya := &axis{lo: ylo, hi: yhi, pxLo: b, pxHi: t, log: c.YScale == plot.Log10, flipped: true}
	if xa.log && xa.lo <= 0 {
		xa.lo = 1e-9
	}
	if ya.log && ya.lo <= 0 {
		ya.lo = 1e-9
	}
	// Sparse gridlines and tick labels.
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		gy := t + int(f*float64(b-t))
		cv.line(l+1, gy, r-1, gy, faint)
		v := yAt(ya, 1-f)
		cv.text(l-len(lbl(v))*glyphW-4, gy-3, lbl(v), grey)
		gx := l + int(f*float64(r-l))
		v = yAt(xa, f)
		cv.text(gx-len(lbl(v))*glyphW/2, b+6, lbl(v), grey)
	}
	for i := range c.Series {
		s := &c.Series[i]
		col := parseColor(effectiveColor(c, i))
		if c.Kind == plot.Line {
			for j := 1; j < len(s.X); j++ {
				cv.line(xa.pos(s.X[j-1]), ya.pos(s.Y[j-1]), xa.pos(s.X[j]), ya.pos(s.Y[j]), col)
			}
			continue
		}
		for j := range s.X {
			px, py := xa.pos(s.X[j]), ya.pos(s.Y[j])
			switch s.Marker {
			case plot.Plus:
				cv.line(px-2, py, px+2, py, col)
				cv.line(px, py-2, px, py+2, col)
			case plot.Square:
				cv.fillRect(px-2, py-2, px+2, py+2, col)
			default:
				cv.disc(px, py, 2, col)
			}
		}
	}
}

// yAt inverts an axis fraction back to a data value for labelling.
func yAt(a *axis, f float64) float64 {
	lo, hi := a.lo, a.hi
	if a.log {
		lo, hi = math.Log10(lo), math.Log10(hi)
		return math.Pow(10, lo+f*(hi-lo))
	}
	return lo + f*(hi-lo)
}

// lbl renders a compact numeric label.
func lbl(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return trim(v/1e6) + "M"
	case av >= 1e3:
		return trim(v/1e3) + "K"
	default:
		return trim(v)
	}
}

func trim(v float64) string {
	s := strconv.FormatFloat(v, 'f', 1, 64)
	return strings.TrimSuffix(s, ".0")
}

func rasterBars(cv *canvas, c *plot.Chart, l, r, t, b int) {
	ncat := len(c.Categories)
	maxY := 0.0
	for j := 0; j < ncat; j++ {
		stack := 0.0
		for i := range c.Series {
			v := c.Series[i].Y[j]
			if c.Kind == plot.StackedBar {
				stack += v
			} else if v > stack {
				stack = v
			}
		}
		maxY = math.Max(maxY, stack)
	}
	if maxY <= 0 {
		maxY = 1
	}
	ya := &axis{lo: 0, hi: maxY * 1.05, pxLo: b, pxHi: t, flipped: true}
	slot := float64(r-l) / float64(ncat)
	barW := int(slot * 0.7)
	if barW < 1 {
		barW = 1
	}
	labelStride := (ncat + 19) / 20
	for j := 0; j < ncat; j++ {
		x0 := l + int(float64(j)*slot+slot*0.15)
		if j%labelStride == 0 && ncat <= 200 {
			name := c.Categories[j]
			if len(name) > 6 {
				name = name[:6]
			}
			cv.text(x0, b+6, name, grey)
		}
		if c.Kind == plot.StackedBar {
			base := 0.0
			for i := range c.Series {
				v := c.Series[i].Y[j]
				if v <= 0 {
					continue
				}
				col := parseColor(effectiveColor(c, i))
				cv.fillRect(x0, ya.pos(base+v), x0+barW, ya.pos(base), col)
				base += v
			}
			continue
		}
		gw := barW / len(c.Series)
		if gw < 1 {
			gw = 1
		}
		for i := range c.Series {
			v := c.Series[i].Y[j]
			if v <= 0 {
				continue
			}
			col := parseColor(effectiveColor(c, i))
			cv.fillRect(x0+i*gw, ya.pos(v), x0+i*gw+gw-1, b-1, col)
		}
	}
}

// WritePNGFile rasterises a chart to a file.
func WritePNGFile(path string, c *plot.Chart, width, height int) error {
	data, err := PNG(c, width, height)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// FromHTMLFile implements the HTML2PNG stage: it recovers the chart spec
// embedded in a plot HTML artifact and rasterises it to pngPath.
func FromHTMLFile(htmlPath, pngPath string, width, height int) error {
	page, err := os.ReadFile(htmlPath)
	if err != nil {
		return err
	}
	spec, err := plot.SpecFromHTML(page)
	if err != nil {
		return fmt.Errorf("raster: %s: %w", htmlPath, err)
	}
	return WritePNGFile(pngPath, spec, width, height)
}
