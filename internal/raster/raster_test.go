package raster

import (
	"bytes"
	"image/png"
	"os"
	"path/filepath"
	"testing"

	"slurmsight/internal/plot"
)

func testChart() *plot.Chart {
	return &plot.Chart{
		Title: "Wait times", XLabel: "submit", YLabel: "wait (s)",
		Kind: plot.Scatter, YScale: plot.Log10,
		Series: []plot.Series{
			{Name: "COMPLETED", X: []float64{1, 2, 3}, Y: []float64{10, 100, 1000}, Color: "#2ca02c"},
			{Name: "FAILED", X: []float64{1.5, 2.5}, Y: []float64{50, 500}, Marker: plot.Plus, Color: "#d62728"},
		},
	}
}

func decode(t *testing.T, data []byte) (w, h int) {
	t.Helper()
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("invalid PNG: %v", err)
	}
	b := img.Bounds()
	return b.Dx(), b.Dy()
}

func TestPNGScatter(t *testing.T) {
	data, err := PNG(testChart(), 640, 400)
	if err != nil {
		t.Fatal(err)
	}
	w, h := decode(t, data)
	if w != 640 || h != 400 {
		t.Errorf("dimensions = %dx%d", w, h)
	}
}

func TestPNGHasInk(t *testing.T) {
	data, err := PNG(testChart(), 640, 400)
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	nonWhite := 0
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bl, _ := img.At(x, y).RGBA()
			if r != 0xFFFF || g != 0xFFFF || bl != 0xFFFF {
				nonWhite++
			}
		}
	}
	if nonWhite < 500 {
		t.Errorf("image nearly blank: %d non-white pixels", nonWhite)
	}
}

func TestPNGBarsAndLine(t *testing.T) {
	bars := &plot.Chart{
		Title: "States per user", XLabel: "user", YLabel: "jobs",
		Kind:       plot.StackedBar,
		Categories: []string{"u1", "u2"},
		Series: []plot.Series{
			{Name: "OK", Y: []float64{5, 3}},
			{Name: "FAIL", Y: []float64{1, 2}},
		},
	}
	if _, err := PNG(bars, 400, 300); err != nil {
		t.Errorf("stacked bars: %v", err)
	}
	bars.Kind = plot.GroupedBar
	if _, err := PNG(bars, 400, 300); err != nil {
		t.Errorf("grouped bars: %v", err)
	}
	line := &plot.Chart{
		Title: "Volume", XLabel: "year", YLabel: "jobs", Kind: plot.Line,
		Series: []plot.Series{{Name: "jobs", X: []float64{1, 2, 3}, Y: []float64{4, 5, 6}}},
	}
	if _, err := PNG(line, 400, 300); err != nil {
		t.Errorf("line: %v", err)
	}
}

func TestPNGErrors(t *testing.T) {
	if _, err := PNG(&plot.Chart{}, 640, 400); err == nil {
		t.Error("invalid chart: want error")
	}
	if _, err := PNG(testChart(), 10, 10); err == nil {
		t.Error("tiny canvas: want error")
	}
}

func TestWriteAndFromHTML(t *testing.T) {
	dir := t.TempDir()
	c := testChart()
	pngPath := filepath.Join(dir, "chart.png")
	if err := WritePNGFile(pngPath, c, 640, 400); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(pngPath)
	if err != nil {
		t.Fatal(err)
	}
	decode(t, data)

	// Full HTML2PNG path: HTML artifact → embedded spec → PNG.
	page, err := plot.HTML(c, 640, 400)
	if err != nil {
		t.Fatal(err)
	}
	htmlPath := filepath.Join(dir, "chart.html")
	if err := os.WriteFile(htmlPath, page, 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "fromhtml.png")
	if err := FromHTMLFile(htmlPath, outPath, 640, 400); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	decode(t, data)

	if err := FromHTMLFile(filepath.Join(dir, "missing.html"), outPath, 640, 400); err == nil {
		t.Error("missing HTML: want error")
	}
	bad := filepath.Join(dir, "nospec.html")
	os.WriteFile(bad, []byte("<html></html>"), 0o644)
	if err := FromHTMLFile(bad, outPath, 640, 400); err == nil {
		t.Error("HTML without spec: want error")
	}
}

func TestParseColor(t *testing.T) {
	c := parseColor("#2ca02c")
	if c.R != 0x2c || c.G != 0xa0 || c.B != 0x2c {
		t.Errorf("parseColor = %+v", c)
	}
	if parseColor("red") != black {
		t.Error("invalid colors should fall back to black")
	}
	if parseColor("#zzzzzz") != black {
		t.Error("bad hex should fall back to black")
	}
}

func TestCanvasPrimitives(t *testing.T) {
	cv := newCanvas(20, 20)
	cv.set(-5, -5, black) // out of bounds must be a no-op
	cv.line(0, 0, 19, 19, black)
	cv.disc(10, 10, 3, black)
	cv.text(1, 1, "A1?", black) // '?' falls back to a dash glyph
	found := false
	for _, p := range cv.img.Pix {
		if p != 0xFF {
			found = true
			break
		}
	}
	if !found {
		t.Error("primitives drew nothing")
	}
}
