package tracegen

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"slurmsight/internal/slurm"
)

func window(days int) (time.Time, time.Time) {
	start := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	return start, start.AddDate(0, 0, days)
}

func smallFrontier(days int) []Phase {
	p := FrontierProfile()
	p.JobsPerDay = 120
	p.Users = 60
	start, end := window(days)
	return []Phase{{Profile: p, Start: start, End: end}}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallFrontier(7), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallFrontier(7), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	c, err := Generate(smallFrontier(7), 43)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateSortedAndInWindow(t *testing.T) {
	start, end := window(7)
	reqs, err := Generate(smallFrontier(7), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	for i, r := range reqs {
		if r.Submit.Before(start) || !r.Submit.Before(end) {
			t.Fatalf("request %d outside window: %v", i, r.Submit)
		}
		if i > 0 && r.Submit.Before(reqs[i-1].Submit) {
			t.Fatalf("requests unsorted at %d", i)
		}
	}
}

func TestGenerateInvariants(t *testing.T) {
	reqs, err := Generate(smallFrontier(14), 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := FrontierProfile().System
	for _, r := range reqs {
		if r.Nodes < 1 || r.Nodes > sys.Nodes {
			t.Fatalf("nodes out of range: %d", r.Nodes)
		}
		if r.Timelimit < 10*time.Minute {
			t.Fatalf("timelimit below floor: %v", r.Timelimit)
		}
		if r.TrueRuntime <= 0 {
			t.Fatalf("non-positive runtime")
		}
		if r.Steps < 1 {
			t.Fatalf("job with no steps")
		}
		if r.User == "" || r.Account == "" || r.Partition == "" {
			t.Fatalf("incomplete identity: %+v", r)
		}
		switch r.Outcome {
		case slurm.StateCompleted:
			if r.TrueRuntime > r.Timelimit {
				t.Fatalf("completed job exceeding its limit")
			}
		case slurm.StateTimeout:
			if r.TrueRuntime <= r.Timelimit {
				t.Fatalf("timeout job within its limit")
			}
		case slurm.StateCancelled:
			if r.CancelAfter <= 0 {
				t.Fatalf("cancelled job without CancelAfter")
			}
		case slurm.StateFailed, slurm.StateNodeFail, slurm.StateOutOfMemory:
			if r.FailFrac < 0 || r.FailFrac > 1 {
				t.Fatalf("FailFrac out of range: %v", r.FailFrac)
			}
		default:
			t.Fatalf("unexpected planned outcome %v", r.Outcome)
		}
	}
}

func TestOverestimationShape(t *testing.T) {
	reqs, err := Generate(smallFrontier(21), 3)
	if err != nil {
		t.Fatal(err)
	}
	over := 0
	completed := 0
	for _, r := range reqs {
		if r.Outcome != slurm.StateCompleted {
			continue
		}
		completed++
		if r.Timelimit > r.TrueRuntime+r.TrueRuntime/4 {
			over++
		}
	}
	if completed == 0 {
		t.Fatal("no completed jobs")
	}
	if frac := float64(over) / float64(completed); frac < 0.4 {
		t.Errorf("over-estimation fraction = %.2f, want the paper's systematic majority", frac)
	}
}

func TestStepStructure(t *testing.T) {
	reqs, err := Generate(smallFrontier(21), 9)
	if err != nil {
		t.Fatal(err)
	}
	totalSteps := 0
	for _, r := range reqs {
		totalSteps += r.Steps
	}
	ratio := float64(totalSteps) / float64(len(reqs))
	// Figure 1: job-steps exceed jobs by roughly an order of magnitude.
	if ratio < 5 || ratio > 40 {
		t.Errorf("steps-per-job ratio = %.1f, want within [5, 40]", ratio)
	}
}

func TestUserConcentration(t *testing.T) {
	reqs, err := Generate(smallFrontier(28), 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range reqs {
		counts[r.User]++
	}
	if len(counts) < 10 {
		t.Fatalf("too few active users: %d", len(counts))
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(len(reqs)) / float64(len(counts))
	if float64(max) < 3*mean {
		t.Errorf("heaviest user %d vs mean %.1f: expected heavy-tailed activity", max, mean)
	}
}

func TestAndesVsFrontierContrast(t *testing.T) {
	start, end := window(21)
	fp := FrontierProfile()
	fp.JobsPerDay, fp.Users = 150, 80
	ap := AndesProfile()
	ap.JobsPerDay, ap.Users = 150, 80
	fr, err := Generate([]Phase{{Profile: fp, Start: start, End: end}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Generate([]Phase{{Profile: ap, Start: start, End: end}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	medNodes := func(rs []Request) float64 {
		xs := make([]int, len(rs))
		for i, r := range rs {
			xs[i] = r.Nodes
		}
		// insertion-free median via counting is overkill; sort a copy
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		return float64(xs[len(xs)/2])
	}
	frac := func(rs []Request, f func(Request) bool) float64 {
		n := 0
		for _, r := range rs {
			if f(r) {
				n++
			}
		}
		return float64(n) / float64(len(rs))
	}
	if medNodes(an) > medNodes(fr) {
		t.Errorf("Andes median nodes %.0f > Frontier %.0f; want denser small jobs on Andes",
			medNodes(an), medNodes(fr))
	}
	failed := func(r Request) bool {
		return r.Outcome == slurm.StateFailed || r.Outcome == slurm.StateCancelled
	}
	if frac(an, failed) >= frac(fr, failed) {
		t.Errorf("Andes fail+cancel %.3f ≥ Frontier %.3f; want lower failure on Andes",
			frac(an, failed), frac(fr, failed))
	}
}

func TestFrontierScenarioSplit(t *testing.T) {
	start := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2024, 12, 31, 0, 0, 0, 0, time.UTC)
	phases := FrontierScenario(start, end)
	if len(phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(phases))
	}
	cut := time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)
	if !phases[0].End.Equal(cut) || !phases[1].Start.Equal(cut) {
		t.Errorf("era cut wrong: %v / %v", phases[0].End, phases[1].Start)
	}
	only := FrontierScenario(cut, end)
	if len(only) != 1 || only[0].Profile.Name != "frontier-production" {
		t.Errorf("production-only scenario wrong: %+v", only)
	}
	early := FrontierScenario(start, cut)
	if len(early) != 1 || early[0].Profile.Name != "frontier-acceptance" {
		t.Errorf("acceptance-only scenario wrong: %+v", early)
	}
}

func TestGenerateErrors(t *testing.T) {
	start, end := window(1)
	bad := FrontierProfile()
	bad.Users = 0
	if _, err := Generate([]Phase{{Profile: bad, Start: start, End: end}}, 1); err == nil {
		t.Error("zero users: want error")
	}
	empty := FrontierProfile()
	if _, err := Generate([]Phase{{Profile: empty, Start: end, End: start}}, 1); err == nil {
		t.Error("empty window: want error")
	}
	noClasses := FrontierProfile()
	noClasses.Classes = nil
	if _, err := Generate([]Phase{{Profile: noClasses, Start: start, End: end}}, 1); err == nil {
		t.Error("no classes: want error")
	}
	hot := FrontierProfile()
	hot.Classes[0].FailRate = 0.99
	if _, err := Generate([]Phase{{Profile: hot, Start: start, End: end}}, 1); err == nil {
		t.Error("failure rates > 95%: want error")
	}
}

func TestDistributions(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if v := (Const(7)).Sample(r); v != 7 {
		t.Errorf("Const = %v", v)
	}
	u := Uniform{2, 5}
	for i := 0; i < 100; i++ {
		if v := u.Sample(r); v < 2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	ln := LogNormalMedian(100, 2)
	var sum float64
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = ln.Sample(r)
		sum += math.Log(vals[i])
	}
	if med := math.Exp(sum / float64(n)); med < 85 || med > 115 {
		t.Errorf("LogNormal geometric mean = %.1f, want ≈100", med)
	}
	c := Clamped{LogNormalMedian(100, 4), 50, 200}
	for i := 0; i < 1000; i++ {
		if v := c.Sample(r); v < 50 || v > 200 {
			t.Fatalf("Clamped out of range: %v", v)
		}
	}
	m := Mixture{Weights: []float64{1, 0}, Parts: []Dist{Const(1), Const(2)}}
	if v := m.Sample(r); v != 1 {
		t.Errorf("Mixture ignored weights: %v", v)
	}
	e := Exponential{Mean: 10}
	sum = 0
	for i := 0; i < n; i++ {
		sum += e.Sample(r)
	}
	if mean := sum / float64(n); mean < 9 || mean > 11 {
		t.Errorf("Exponential mean = %.2f, want ≈10", mean)
	}
}

func TestPoisson(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	if poisson(r, 0) != 0 || poisson(r, -5) != 0 {
		t.Error("non-positive mean should give 0")
	}
	for _, mean := range []float64{3, 100} {
		var sum float64
		n := 5000
		for i := 0; i < n; i++ {
			sum += float64(poisson(r, mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > mean*0.1+0.5 {
			t.Errorf("poisson(%v) sample mean = %.2f", mean, got)
		}
	}
}

func TestWeightedIndexPanics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	defer func() {
		if recover() == nil {
			t.Error("weightedIndex with zero weights should panic")
		}
	}()
	weightedIndex(r, []float64{0, 0})
}

func TestArrayExpansion(t *testing.T) {
	p := FrontierProfile()
	p.JobsPerDay, p.Users = 200, 40
	// Force ensembles to always be arrays for the test.
	for i := range p.Classes {
		if p.Classes[i].Name == "ensemble" {
			p.Classes[i].ArrayProb = 1.0
		}
	}
	start, end := window(5)
	reqs, err := Generate([]Phase{{Profile: p, Start: start, End: end}}, 13)
	if err != nil {
		t.Fatal(err)
	}
	groups := map[int64][]Request{}
	for _, r := range reqs {
		if r.ArrayID != 0 {
			groups[r.ArrayID] = append(groups[r.ArrayID], r)
		}
	}
	if len(groups) == 0 {
		t.Fatal("no arrays generated")
	}
	for id, g := range groups {
		if len(g) < 2 {
			t.Errorf("array %d has %d tasks, want ≥2", id, len(g))
		}
		seen := map[int]bool{}
		for _, r := range g {
			if seen[r.ArrayIndex] {
				t.Errorf("array %d repeats index %d", id, r.ArrayIndex)
			}
			seen[r.ArrayIndex] = true
			if !r.Submit.Equal(g[0].Submit) {
				t.Errorf("array %d tasks submitted at different times", id)
			}
		}
	}
}
