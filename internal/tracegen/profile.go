package tracegen

import (
	"time"

	"slurmsight/internal/cluster"
)

// Class is one job-class mixture component: a family of jobs with a shared
// size/runtime/step-structure/outcome profile.
type Class struct {
	Name   string
	Weight float64 // share of submitted jobs

	Nodes Dist // node count (rounded, clamped to partition policy)
	// SubNodeCores, when set, marks a sub-node class: jobs take one node
	// and request this many cores, so schedulers with node sharing can
	// pack them (Nodes is ignored).
	SubNodeCores Dist
	Runtime      Dist // true runtime in seconds, had the job run to completion

	// Overestimate is the multiplicative factor users apply when turning
	// an expected runtime into a --time request. Values well above 1
	// reproduce the paper's systematic walltime over-estimation.
	Overestimate Dist

	Steps Dist // srun steps per job

	// Outcome base rates; the remainder completes. A per-user multiplier
	// scales FailRate and CancelRate to concentrate failures in a few
	// users (the Figure 5 phenomenon).
	FailRate     float64
	CancelRate   float64
	TimeoutRate  float64
	NodeFailRate float64
	OOMRate      float64

	// ArrayProb is the probability a submission is a job array of
	// ArraySize tasks (each task becomes its own accounting record).
	ArrayProb float64
	ArraySize Dist

	// ChainProb is the probability a submission is a dependency chain
	// (an afterok pipeline) of ChainLen jobs submitted together.
	ChainProb float64
	ChainLen  Dist

	QOS       string
	Partition string // empty means the system default partition
}

// Profile is a complete workload description for one system and era.
type Profile struct {
	Name    string
	System  *cluster.System
	Classes []Class

	// Users is the active user population size; activity across users is
	// Zipf(UserSkew) so a few users dominate submissions.
	Users    int
	UserSkew float64

	// FailSpread is the multiplicative spread (lognormal sigma factor) of
	// per-user failure multipliers. Large values reproduce Frontier's
	// concentrated failures; small values, Andes' uniformity.
	FailSpread float64

	// JobsPerDay is the mean submission rate before diurnal and weekly
	// modulation.
	JobsPerDay float64
}

// FrontierProfile models the production era (April 2023 onward): a broad
// mixture from hero runs to near-real-time steering jobs, heavy srun use,
// heterogeneous users with concentrated failures.
func FrontierProfile() Profile {
	day := func(h float64) float64 { return h * 3600 }
	return Profile{
		Name:       "frontier-production",
		System:     cluster.Frontier(),
		Users:      1100,
		UserSkew:   1.05,
		FailSpread: 3.0,
		JobsPerDay: 850,
		Classes: []Class{
			{
				Name: "hero", Weight: 0.01,
				Nodes:        Clamped{LogNormalMedian(4600, 1.6), 1882, 9408},
				Runtime:      Clamped{LogNormalMedian(day(8), 1.8), 3600, day(24)},
				Overestimate: Clamped{LogNormalMedian(1.35, 1.25), 1.0, 3},
				Steps:        Clamped{LogNormalMedian(3, 1.8), 1, 12},
				FailRate:     0.08, CancelRate: 0.05, TimeoutRate: 0.06, NodeFailRate: 0.02,
				QOS: "normal",
			},
			{
				Name: "capability", Weight: 0.07,
				Nodes:        Clamped{LogNormalMedian(512, 2.2), 184, 5644},
				Runtime:      Clamped{LogNormalMedian(day(3), 2.0), 600, day(12)},
				Overestimate: Clamped{LogNormalMedian(1.8, 1.5), 1.0, 6},
				Steps:        Clamped{LogNormalMedian(4, 2.0), 1, 40},
				FailRate:     0.10, CancelRate: 0.06, TimeoutRate: 0.05, NodeFailRate: 0.01, OOMRate: 0.01,
				QOS: "normal",
			},
			{
				Name: "ensemble", Weight: 0.28,
				Nodes:        Clamped{LogNormalMedian(4, 2.5), 1, 183},
				Runtime:      Clamped{LogNormalMedian(day(0.6), 2.4), 60, day(6)},
				Overestimate: Clamped{LogNormalMedian(2.6, 1.8), 1.0, 12},
				Steps:        Clamped{LogNormalMedian(10, 2.2), 1, 300},
				FailRate:     0.12, CancelRate: 0.08, TimeoutRate: 0.04, OOMRate: 0.02,
				ArrayProb: 0.35, ArraySize: Clamped{LogNormalMedian(16, 2.0), 2, 128},
				QOS: "normal",
			},
			{
				Name: "ai-training", Weight: 0.14,
				Nodes:        Clamped{LogNormalMedian(32, 2.4), 1, 1024},
				Runtime:      Clamped{LogNormalMedian(day(2), 2.0), 600, day(12)},
				Overestimate: Clamped{LogNormalMedian(2.2, 1.6), 1.0, 8},
				Steps:        Clamped{LogNormalMedian(8, 2.2), 1, 150},
				FailRate:     0.14, CancelRate: 0.09, TimeoutRate: 0.07, OOMRate: 0.04,
				ChainProb: 0.15, ChainLen: Clamped{LogNormalMedian(3, 1.5), 2, 8},
				QOS: "normal",
			},
			{
				Name: "debug", Weight: 0.15,
				Nodes:        Clamped{LogNormalMedian(2, 2.0), 1, 64},
				Runtime:      Clamped{LogNormalMedian(day(0.15), 2.2), 30, day(2)},
				Overestimate: Clamped{LogNormalMedian(3.5, 1.8), 1.0, 20},
				Steps:        Clamped{LogNormalMedian(5, 2.2), 1, 60},
				FailRate:     0.20, CancelRate: 0.12, TimeoutRate: 0.03, OOMRate: 0.02,
				QOS: "debug",
			},
			{
				Name: "near-real-time", Weight: 0.27,
				Nodes:        Clamped{LogNormalMedian(2, 1.8), 1, 32},
				Runtime:      Clamped{LogNormalMedian(day(0.08), 2.0), 20, day(1)},
				Overestimate: Clamped{LogNormalMedian(3.0, 1.8), 1.0, 20},
				Steps:        Clamped{LogNormalMedian(6, 2.0), 1, 100},
				FailRate:     0.07, CancelRate: 0.05, TimeoutRate: 0.02,
				ChainProb: 0.10, ChainLen: Clamped{LogNormalMedian(3, 1.4), 2, 6},
				QOS: "normal",
			},
			{
				// Experiment-steering jobs on the urgent QoS: small,
				// short, and entitled to preempt opportunistic work.
				Name: "urgent-steering", Weight: 0.03,
				Nodes:        Clamped{LogNormalMedian(4, 1.8), 1, 64},
				Runtime:      Clamped{LogNormalMedian(day(0.05), 1.8), 30, day(0.5)},
				Overestimate: Clamped{LogNormalMedian(1.8, 1.4), 1.0, 6},
				Steps:        Clamped{LogNormalMedian(3, 1.8), 1, 20},
				FailRate:     0.05, CancelRate: 0.03, TimeoutRate: 0.02,
				QOS: "urgent",
			},
			{
				// Opportunistic capacity soak on the preemptible QoS.
				Name: "opportunistic", Weight: 0.05,
				Nodes:        Clamped{LogNormalMedian(64, 2.2), 8, 1024},
				Runtime:      Clamped{LogNormalMedian(day(1.5), 1.8), 1800, day(12)},
				Overestimate: Clamped{LogNormalMedian(1.6, 1.4), 1.0, 4},
				Steps:        Clamped{LogNormalMedian(4, 2.0), 1, 40},
				FailRate:     0.06, CancelRate: 0.04, TimeoutRate: 0.04,
				QOS: "preemptible",
			},
		},
	}
}

// FrontierAcceptanceProfile models the pre-production era (2021 through
// March 2023): sparse submissions dominated by acceptance tests and early
// hero runs, which Figure 1 shows and the study then excludes.
func FrontierAcceptanceProfile() Profile {
	day := func(h float64) float64 { return h * 3600 }
	return Profile{
		Name:       "frontier-acceptance",
		System:     cluster.Frontier(),
		Users:      120,
		UserSkew:   1.2,
		FailSpread: 2.0,
		JobsPerDay: 220,
		Classes: []Class{
			{
				Name: "acceptance", Weight: 0.55,
				Nodes:        Clamped{LogNormalMedian(1024, 2.6), 1, 9408},
				Runtime:      Clamped{LogNormalMedian(day(1), 2.4), 60, day(12)},
				Overestimate: Clamped{LogNormalMedian(2.0, 1.6), 1.0, 8},
				Steps:        Clamped{LogNormalMedian(6, 2.4), 1, 100},
				FailRate:     0.22, CancelRate: 0.10, TimeoutRate: 0.05, NodeFailRate: 0.05,
				QOS: "normal",
			},
			{
				Name: "early-hero", Weight: 0.45,
				Nodes:        Clamped{LogNormalMedian(5000, 1.6), 1024, 9408},
				Runtime:      Clamped{LogNormalMedian(day(6), 1.9), 1800, day(24)},
				Overestimate: Clamped{LogNormalMedian(1.5, 1.4), 1.0, 4},
				Steps:        Clamped{LogNormalMedian(3, 1.9), 1, 20},
				FailRate:     0.15, CancelRate: 0.06, TimeoutRate: 0.08, NodeFailRate: 0.04,
				QOS: "normal",
			},
		},
	}
}

// AndesProfile models the throughput-oriented analysis cluster: dense
// small/short jobs, interactive work, tighter walltime estimates, lower
// and more uniform failure rates (the Figure 7–9 contrasts).
func AndesProfile() Profile {
	day := func(h float64) float64 { return h * 3600 }
	return Profile{
		Name:       "andes-2024",
		System:     cluster.Andes(),
		Users:      450,
		UserSkew:   0.85,
		FailSpread: 1.5,
		JobsPerDay: 600,
		Classes: []Class{
			{
				Name: "analysis", Weight: 0.52,
				Nodes:        Clamped{LogNormalMedian(1.3, 1.8), 1, 16},
				Runtime:      Clamped{LogNormalMedian(day(0.4), 2.0), 60, day(12)},
				Overestimate: Clamped{LogNormalMedian(1.7, 1.4), 1.0, 5},
				Steps:        Clamped{LogNormalMedian(4, 2.2), 1, 80},
				FailRate:     0.06, CancelRate: 0.04, TimeoutRate: 0.03,
				QOS: "normal",
			},
			{
				Name: "interactive", Weight: 0.28,
				Nodes:        Const(1),
				SubNodeCores: Clamped{LogNormalMedian(8, 2.0), 1, 32},
				Runtime:      Clamped{LogNormalMedian(day(0.1), 1.9), 30, day(2)},
				Overestimate: Clamped{LogNormalMedian(2.0, 1.5), 1.0, 8},
				Steps:        Clamped{LogNormalMedian(3, 2.0), 1, 40},
				FailRate:     0.04, CancelRate: 0.05, TimeoutRate: 0.02,
				QOS: "normal",
			},
			{
				Name: "ensemble", Weight: 0.14,
				Nodes:        Clamped{LogNormalMedian(2, 2.0), 1, 32},
				Runtime:      Clamped{LogNormalMedian(day(0.25), 2.0), 60, day(6)},
				Overestimate: Clamped{LogNormalMedian(1.9, 1.5), 1.0, 6},
				Steps:        Clamped{LogNormalMedian(12, 2.2), 1, 200},
				FailRate:     0.07, CancelRate: 0.05, TimeoutRate: 0.03, OOMRate: 0.01,
				ArrayProb: 0.30, ArraySize: Clamped{LogNormalMedian(10, 1.8), 2, 64},
				QOS: "normal",
			},
			{
				Name: "campaign", Weight: 0.06,
				Nodes:        Clamped{LogNormalMedian(32, 2.0), 4, 384},
				Runtime:      Clamped{LogNormalMedian(day(6), 1.9), 1800, day(48)},
				Overestimate: Clamped{LogNormalMedian(1.5, 1.3), 1.0, 3},
				Steps:        Clamped{LogNormalMedian(4, 2.0), 1, 40},
				FailRate:     0.07, CancelRate: 0.04, TimeoutRate: 0.05,
				QOS: "normal",
			},
		},
	}
}

// Phase pairs a profile with the half-open time window it governs.
type Phase struct {
	Profile Profile
	Start   time.Time
	End     time.Time
}

// FrontierScenario returns the full 2021–2024 Figure 1 timeline: the
// acceptance era followed by production from April 2023.
func FrontierScenario(start, end time.Time) []Phase {
	cut := time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC)
	switch {
	case !end.After(cut):
		return []Phase{{Profile: FrontierAcceptanceProfile(), Start: start, End: end}}
	case !start.Before(cut):
		return []Phase{{Profile: FrontierProfile(), Start: start, End: end}}
	default:
		return []Phase{
			{Profile: FrontierAcceptanceProfile(), Start: start, End: cut},
			{Profile: FrontierProfile(), Start: cut, End: end},
		}
	}
}
