// Package tracegen generates synthetic Slurm workloads statistically
// shaped like the Frontier and Andes traces the paper analyses. It stands
// in for OLCF's proprietary accounting data: job classes (hero runs,
// ensembles, AI training, debug, interactive near-real-time work), a
// heavy-tailed user population with per-user failure propensities, diurnal
// and weekly arrival modulation, systematic walltime over-estimation, and
// multi-step (srun) job structure.
//
// The generator emits scheduling Requests; the internal/sched simulator
// executes them into accounting records.
package tracegen

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a one-dimensional sampling distribution.
type Dist interface {
	Sample(r *rand.Rand) float64
}

// Const always returns its value.
type Const float64

// Sample implements Dist.
func (c Const) Sample(*rand.Rand) float64 { return float64(c) }

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// LogNormal samples exp(N(Mu, Sigma²)); the natural shape for job
// runtimes and node counts, which span decades.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// LogNormalMedian builds a LogNormal from its median and a multiplicative
// spread factor (sigma in log space = ln(spread)).
func LogNormalMedian(median, spread float64) LogNormal {
	return LogNormal{Mu: math.Log(median), Sigma: math.Log(spread)}
}

// Exponential samples an exponential with the given mean.
type Exponential struct{ Mean float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() * e.Mean }

// Clamped bounds another distribution to [Lo, Hi].
type Clamped struct {
	D      Dist
	Lo, Hi float64
}

// Sample implements Dist.
func (c Clamped) Sample(r *rand.Rand) float64 {
	v := c.D.Sample(r)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Mixture samples one of its components with the given weights.
type Mixture struct {
	Weights []float64
	Parts   []Dist
}

// Sample implements Dist.
func (m Mixture) Sample(r *rand.Rand) float64 {
	return m.Parts[weightedIndex(r, m.Weights)].Sample(r)
}

// weightedIndex picks an index proportionally to weights (which need not
// be normalised). Panics on an empty or non-positive weight vector.
func weightedIndex(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("tracegen: negative weight %v", w))
		}
		total += w
	}
	if total <= 0 {
		panic("tracegen: no positive weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// sampleInt draws from d and rounds to an int clamped to [lo, hi].
func sampleInt(r *rand.Rand, d Dist, lo, hi int) int {
	v := int(math.Round(d.Sample(r)))
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// zipfWeights returns n weights following a Zipf law with exponent s —
// the classic heavy-tailed "few users dominate" activity profile.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}
