package tracegen

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	for _, build := range []func() Profile{FrontierProfile, FrontierAcceptanceProfile, AndesProfile} {
		orig := build()
		data, err := MarshalProfile(&orig)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalProfile(data)
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		if got.Name != orig.Name || got.Users != orig.Users ||
			got.JobsPerDay != orig.JobsPerDay || len(got.Classes) != len(orig.Classes) {
			t.Errorf("%s: header fields drifted", orig.Name)
		}
		if got.System.Name != orig.System.Name || got.System.Nodes != orig.System.Nodes {
			t.Errorf("%s: system drifted", orig.Name)
		}
		// The round-tripped profile must generate the same workload.
		start := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
		end := start.AddDate(0, 0, 3)
		small := func(p Profile) Profile {
			p.JobsPerDay, p.Users = 40, 20
			return p
		}
		a, err := Generate([]Phase{{Profile: small(orig), Start: start, End: end}}, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate([]Phase{{Profile: small(got), Start: start, End: end}}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: regenerated workload differs in size: %d vs %d", orig.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: request %d differs after round trip", orig.Name, i)
			}
		}
	}
}

func TestProfileJSONAllDistKinds(t *testing.T) {
	dists := []Dist{
		Const(5),
		Uniform{Lo: 1, Hi: 9},
		LogNormal{Mu: 2, Sigma: 0.5},
		Exponential{Mean: 30},
		Clamped{D: LogNormal{Mu: 1, Sigma: 1}, Lo: 1, Hi: 100},
		Mixture{Weights: []float64{1, 2}, Parts: []Dist{Const(1), Uniform{Lo: 2, Hi: 4}}},
	}
	for _, d := range dists {
		j, err := marshalDist(d)
		if err != nil {
			t.Fatalf("%T: %v", d, err)
		}
		got, err := unmarshalDist(j)
		if err != nil {
			t.Fatalf("%T: %v", d, err)
		}
		// Same kind and same sampling behaviour under the same stream.
		r1 := rand.New(rand.NewSource(7))
		r2 := rand.New(rand.NewSource(7))
		for i := 0; i < 50; i++ {
			if d.Sample(r1) != got.Sample(r2) {
				t.Fatalf("%T: sampling drifted after round trip", d)
			}
		}
	}
}

func TestUnmarshalProfileErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"garbage", "not json"},
		{"unknown dist", `{"name":"x","system":null,"users":1,"jobs_per_day":1,
			"classes":[{"name":"a","weight":1,
			"nodes":{"kind":"mystery"},
			"runtime":{"kind":"const","value":60},
			"overestimate":{"kind":"const","value":2},
			"steps":{"kind":"const","value":1}}]}`},
		{"missing dist", `{"name":"x","system":null,"users":1,"jobs_per_day":1,
			"classes":[{"name":"a","weight":1}]}`},
		{"clamped no inner", `{"name":"x","system":null,"users":1,"jobs_per_day":1,
			"classes":[{"name":"a","weight":1,
			"nodes":{"kind":"clamped","lo":1,"hi":2},
			"runtime":{"kind":"const","value":60},
			"overestimate":{"kind":"const","value":2},
			"steps":{"kind":"const","value":1}}]}`},
		{"mixture mismatch", `{"name":"x","system":null,"users":1,"jobs_per_day":1,
			"classes":[{"name":"a","weight":1,
			"nodes":{"kind":"mixture","weights":[1],"parts":[]},
			"runtime":{"kind":"const","value":60},
			"overestimate":{"kind":"const","value":2},
			"steps":{"kind":"const","value":1}}]}`},
	}
	for _, c := range cases {
		if _, err := UnmarshalProfile([]byte(c.json)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestSaveLoadProfileFile(t *testing.T) {
	p := AndesProfile()
	path := filepath.Join(t.TempDir(), "andes.json")
	if err := SaveProfile(&p, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.System.Name != "andes" {
		t.Errorf("loaded profile drifted: %s / %s", got.Name, got.System.Name)
	}
	if _, err := LoadProfile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
}

func TestFittedProfileSerializes(t *testing.T) {
	// Calibrated profiles (which use fitted lognormals) must round-trip
	// too, closing the calibrate → save → regenerate loop.
	trace := syntheticTrace(300)
	p, err := FitProfile("fitted", AndesProfile().System, trace)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalProfile(&p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(got.Name, "fitted") || len(got.Classes) != len(p.Classes) {
		t.Errorf("fitted profile drifted after round trip")
	}
}
