package tracegen

import (
	"encoding/json"
	"fmt"
	"os"

	"slurmsight/internal/cluster"
)

// distJSON is the tagged wire form of a Dist.
type distJSON struct {
	Kind string `json:"kind"`
	// const
	Value float64 `json:"value,omitempty"`
	// uniform
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// lognormal
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	// exponential
	Mean float64 `json:"mean,omitempty"`
	// clamped
	Inner *distJSON `json:"inner,omitempty"`
	// mixture
	Weights []float64  `json:"weights,omitempty"`
	Parts   []distJSON `json:"parts,omitempty"`
}

func marshalDist(d Dist) (*distJSON, error) {
	switch v := d.(type) {
	case nil:
		return nil, nil
	case Const:
		return &distJSON{Kind: "const", Value: float64(v)}, nil
	case Uniform:
		return &distJSON{Kind: "uniform", Lo: v.Lo, Hi: v.Hi}, nil
	case LogNormal:
		return &distJSON{Kind: "lognormal", Mu: v.Mu, Sigma: v.Sigma}, nil
	case Exponential:
		return &distJSON{Kind: "exponential", Mean: v.Mean}, nil
	case Clamped:
		inner, err := marshalDist(v.D)
		if err != nil {
			return nil, err
		}
		return &distJSON{Kind: "clamped", Lo: v.Lo, Hi: v.Hi, Inner: inner}, nil
	case Mixture:
		out := &distJSON{Kind: "mixture", Weights: v.Weights}
		for _, p := range v.Parts {
			pj, err := marshalDist(p)
			if err != nil {
				return nil, err
			}
			out.Parts = append(out.Parts, *pj)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("tracegen: cannot serialize distribution %T", d)
	}
}

func unmarshalDist(j *distJSON) (Dist, error) {
	if j == nil {
		return nil, nil
	}
	switch j.Kind {
	case "const":
		return Const(j.Value), nil
	case "uniform":
		return Uniform{Lo: j.Lo, Hi: j.Hi}, nil
	case "lognormal":
		return LogNormal{Mu: j.Mu, Sigma: j.Sigma}, nil
	case "exponential":
		return Exponential{Mean: j.Mean}, nil
	case "clamped":
		inner, err := unmarshalDist(j.Inner)
		if err != nil {
			return nil, err
		}
		if inner == nil {
			return nil, fmt.Errorf("tracegen: clamped distribution lacks an inner distribution")
		}
		return Clamped{D: inner, Lo: j.Lo, Hi: j.Hi}, nil
	case "mixture":
		if len(j.Weights) != len(j.Parts) || len(j.Parts) == 0 {
			return nil, fmt.Errorf("tracegen: mixture weights/parts mismatch")
		}
		m := Mixture{Weights: j.Weights}
		for i := range j.Parts {
			p, err := unmarshalDist(&j.Parts[i])
			if err != nil {
				return nil, err
			}
			m.Parts = append(m.Parts, p)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("tracegen: unknown distribution kind %q", j.Kind)
	}
}

// classJSON is the wire form of a Class.
type classJSON struct {
	Name         string    `json:"name"`
	Weight       float64   `json:"weight"`
	Nodes        *distJSON `json:"nodes"`
	SubNodeCores *distJSON `json:"sub_node_cores,omitempty"`
	Runtime      *distJSON `json:"runtime"`
	Overestimate *distJSON `json:"overestimate"`
	Steps        *distJSON `json:"steps"`
	FailRate     float64   `json:"fail_rate,omitempty"`
	CancelRate   float64   `json:"cancel_rate,omitempty"`
	TimeoutRate  float64   `json:"timeout_rate,omitempty"`
	NodeFailRate float64   `json:"node_fail_rate,omitempty"`
	OOMRate      float64   `json:"oom_rate,omitempty"`
	ArrayProb    float64   `json:"array_prob,omitempty"`
	ArraySize    *distJSON `json:"array_size,omitempty"`
	ChainProb    float64   `json:"chain_prob,omitempty"`
	ChainLen     *distJSON `json:"chain_len,omitempty"`
	QOS          string    `json:"qos,omitempty"`
	Partition    string    `json:"partition,omitempty"`
}

// profileJSON is the wire form of a Profile; the system model is inlined
// so custom machines round-trip.
type profileJSON struct {
	Name       string          `json:"name"`
	System     *cluster.System `json:"system"`
	Users      int             `json:"users"`
	UserSkew   float64         `json:"user_skew"`
	FailSpread float64         `json:"fail_spread"`
	JobsPerDay float64         `json:"jobs_per_day"`
	Classes    []classJSON     `json:"classes"`
}

// MarshalProfile encodes a profile as JSON.
func MarshalProfile(p *Profile) ([]byte, error) {
	out := profileJSON{
		Name: p.Name, System: p.System,
		Users: p.Users, UserSkew: p.UserSkew,
		FailSpread: p.FailSpread, JobsPerDay: p.JobsPerDay,
	}
	for i := range p.Classes {
		c := &p.Classes[i]
		cj := classJSON{
			Name: c.Name, Weight: c.Weight,
			FailRate: c.FailRate, CancelRate: c.CancelRate, TimeoutRate: c.TimeoutRate,
			NodeFailRate: c.NodeFailRate, OOMRate: c.OOMRate,
			ArrayProb: c.ArrayProb, ChainProb: c.ChainProb,
			QOS: c.QOS, Partition: c.Partition,
		}
		var err error
		for _, f := range []struct {
			dst **distJSON
			src Dist
		}{
			{&cj.Nodes, c.Nodes}, {&cj.SubNodeCores, c.SubNodeCores}, {&cj.Runtime, c.Runtime},
			{&cj.Overestimate, c.Overestimate}, {&cj.Steps, c.Steps},
			{&cj.ArraySize, c.ArraySize}, {&cj.ChainLen, c.ChainLen},
		} {
			if *f.dst, err = marshalDist(f.src); err != nil {
				return nil, fmt.Errorf("tracegen: class %s: %w", c.Name, err)
			}
		}
		out.Classes = append(out.Classes, cj)
	}
	return json.MarshalIndent(out, "", " ")
}

// UnmarshalProfile decodes and validates a profile.
func UnmarshalProfile(data []byte) (Profile, error) {
	var in profileJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return Profile{}, fmt.Errorf("tracegen: %w", err)
	}
	p := Profile{
		Name: in.Name, System: in.System,
		Users: in.Users, UserSkew: in.UserSkew,
		FailSpread: in.FailSpread, JobsPerDay: in.JobsPerDay,
	}
	if p.System != nil {
		if err := p.System.Validate(); err != nil {
			return Profile{}, err
		}
	}
	for i := range in.Classes {
		cj := &in.Classes[i]
		c := Class{
			Name: cj.Name, Weight: cj.Weight,
			FailRate: cj.FailRate, CancelRate: cj.CancelRate, TimeoutRate: cj.TimeoutRate,
			NodeFailRate: cj.NodeFailRate, OOMRate: cj.OOMRate,
			ArrayProb: cj.ArrayProb, ChainProb: cj.ChainProb,
			QOS: cj.QOS, Partition: cj.Partition,
		}
		var err error
		for _, f := range []struct {
			dst *Dist
			src *distJSON
		}{
			{&c.Nodes, cj.Nodes}, {&c.SubNodeCores, cj.SubNodeCores}, {&c.Runtime, cj.Runtime},
			{&c.Overestimate, cj.Overestimate}, {&c.Steps, cj.Steps},
			{&c.ArraySize, cj.ArraySize}, {&c.ChainLen, cj.ChainLen},
		} {
			if *f.dst, err = unmarshalDist(f.src); err != nil {
				return Profile{}, fmt.Errorf("tracegen: class %s: %w", cj.Name, err)
			}
		}
		for _, req := range []struct {
			name string
			d    Dist
		}{{"nodes", c.Nodes}, {"runtime", c.Runtime}, {"overestimate", c.Overestimate}, {"steps", c.Steps}} {
			if req.d == nil {
				return Profile{}, fmt.Errorf("tracegen: class %s lacks the %s distribution", cj.Name, req.name)
			}
		}
		p.Classes = append(p.Classes, c)
	}
	if err := validateProfile(&p); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// SaveProfile writes a profile to a JSON file.
func SaveProfile(p *Profile, path string) error {
	data, err := MarshalProfile(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadProfile reads a profile from a JSON file.
func LoadProfile(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, err
	}
	return UnmarshalProfile(data)
}
