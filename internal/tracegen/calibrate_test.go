package tracegen

import (
	"math"
	"testing"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/slurm"
)

// syntheticTrace builds job records directly (bypassing the scheduler) so
// calibration tests control the ground truth exactly.
func syntheticTrace(n int) []slurm.Record {
	base := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]slurm.Record, 0, n)
	for i := 0; i < n; i++ {
		// Deterministic pseudo-random shape: sizes cycle over three
		// scales; runtimes over minutes-to-hours; every 7th job fails.
		nodes := []int64{1, 2, 4, 64, 128, 2000}[i%6]
		run := time.Duration(10+i%50) * time.Minute
		limit := run * time.Duration(2+i%3)
		st := slurm.StateCompleted
		if i%7 == 0 {
			st = slurm.StateFailed
		}
		r := slurm.Record{
			ID:        slurm.NewJobID(int64(200000 + i)),
			User:      []string{"u1", "u1", "u1", "u2", "u2", "u3", "u4"}[i%7],
			Submit:    base.Add(time.Duration(i) * 20 * time.Minute),
			NNodes:    nodes,
			Timelimit: limit,
			Elapsed:   run,
			State:     st,
		}
		r.Start = r.Submit.Add(time.Minute)
		r.End = r.Start.Add(run)
		recs = append(recs, r)
	}
	return recs
}

func TestFitProfileShape(t *testing.T) {
	trace := syntheticTrace(700)
	p, err := FitProfile("fitted", cluster.Frontier(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if p.Users != 4 {
		t.Errorf("Users = %d, want 4", p.Users)
	}
	// Discrete node values can collapse a quantile cut onto the extreme,
	// leaving an empty class that FitProfile drops.
	if len(p.Classes) < 2 || len(p.Classes) > 3 {
		t.Fatalf("classes = %d, want 2 or 3", len(p.Classes))
	}
	var weight float64
	for _, c := range p.Classes {
		weight += c.Weight
	}
	if math.Abs(weight-1) > 1e-9 {
		t.Errorf("class weights sum to %v", weight)
	}
	// ~1/7 of jobs fail; the per-class rates should reflect that scale.
	var failRate float64
	for _, c := range p.Classes {
		failRate += c.Weight * c.FailRate
	}
	if failRate < 0.08 || failRate > 0.22 {
		t.Errorf("aggregate fitted fail rate = %v, want ≈0.14", failRate)
	}
	// Submission rate: 3 jobs/hour = 72/day.
	if p.JobsPerDay < 50 || p.JobsPerDay > 95 {
		t.Errorf("JobsPerDay = %v, want ≈72", p.JobsPerDay)
	}
}

func TestFitProfileErrors(t *testing.T) {
	if _, err := FitProfile("x", nil, syntheticTrace(100)); err == nil {
		t.Error("nil system: want error")
	}
	if _, err := FitProfile("x", cluster.Frontier(), syntheticTrace(10)); err == nil {
		t.Error("tiny trace: want error")
	}
}

// TestFitProfileRoundTrip is the calibration loop: generate a trace from
// a known profile, fit a profile to it, regenerate, and compare headline
// statistics of the two traces.
func TestFitProfileRoundTrip(t *testing.T) {
	start := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, 21)
	original := FrontierProfile()
	original.JobsPerDay, original.Users = 120, 60
	reqs, err := Generate([]Phase{{Profile: original, Start: start, End: end}}, 55)
	if err != nil {
		t.Fatal(err)
	}
	// Requests → records directly (submit-time truth; scheduling effects
	// are not what calibration estimates).
	recs := make([]slurm.Record, len(reqs))
	for i, r := range reqs {
		rec := slurm.Record{
			ID:        slurm.NewJobID(int64(300000 + i)),
			User:      r.User,
			Submit:    r.Submit,
			NNodes:    int64(r.Nodes),
			Timelimit: r.Timelimit,
			State:     r.Outcome,
		}
		rec.Start = r.Submit
		switch r.Outcome {
		case slurm.StateCompleted:
			rec.Elapsed = r.TrueRuntime
		case slurm.StateTimeout:
			rec.Elapsed = r.Timelimit
		case slurm.StateCancelled:
			rec.Elapsed = r.TrueRuntime / 2
		default:
			rec.Elapsed = time.Duration(float64(r.TrueRuntime) * math.Max(r.FailFrac, 0.05))
		}
		rec.End = rec.Start.Add(rec.Elapsed)
		recs[i] = rec
	}

	fitted, err := FitProfile("refit", cluster.Frontier(), recs)
	if err != nil {
		t.Fatal(err)
	}
	regen, err := Generate([]Phase{{Profile: fitted, Start: start, End: end}}, 56)
	if err != nil {
		t.Fatal(err)
	}
	regenRecs := make([]slurm.Record, len(regen))
	for i, r := range regen {
		rec := slurm.Record{
			ID: slurm.NewJobID(int64(400000 + i)), User: r.User, Submit: r.Submit,
			NNodes: int64(r.Nodes), Timelimit: r.Timelimit, State: r.Outcome,
		}
		rec.Start = r.Submit
		rec.Elapsed = r.TrueRuntime
		rec.End = rec.Start.Add(rec.Elapsed)
		regenRecs[i] = rec
	}

	rep := CompareTraces(recs, regenRecs)
	within := func(name string, a, b, factor float64) {
		t.Helper()
		if a <= 0 || b <= 0 {
			t.Errorf("%s degenerate: %v vs %v", name, a, b)
			return
		}
		ratio := a / b
		if ratio < 1/factor || ratio > factor {
			t.Errorf("%s drifted: original %v vs regenerated %v", name, a, b)
		}
	}
	within("jobs/day", rep.JobsPerDay[0], rep.JobsPerDay[1], 1.6)
	within("median nodes", math.Max(rep.MedianNodes[0], 1), math.Max(rep.MedianNodes[1], 1), 2.5)
	within("median runtime", rep.MedianRuntimeS[0], rep.MedianRuntimeS[1], 2.5)
	within("median over-ratio", rep.MedianOverRatio[0], rep.MedianOverRatio[1], 1.8)
}

func TestCompareTracesEmptySides(t *testing.T) {
	rep := CompareTraces(nil, syntheticTrace(60))
	if rep.Jobs[0] != 0 || rep.Jobs[1] != 60 {
		t.Errorf("Jobs = %v", rep.Jobs)
	}
}

func TestFitHelpers(t *testing.T) {
	// Zipf skew: perfectly flat activity → low skew.
	flat := map[string]int{"a": 10, "b": 10, "c": 10, "d": 10}
	if s := fitZipfSkew(flat); s > 0.4 {
		t.Errorf("flat activity skew = %v", s)
	}
	// Steep activity → high skew.
	steep := map[string]int{"a": 1000, "b": 120, "c": 40, "d": 15, "e": 8, "f": 4}
	if s := fitZipfSkew(steep); s < 1.0 {
		t.Errorf("steep activity skew = %v", s)
	}
	// Uniform failure rates → spread near 1.
	users := map[string]int{"a": 100, "b": 100, "c": 100, "d": 100}
	bad := map[string]int{"a": 10, "b": 10, "c": 10, "d": 10}
	low := fitFailSpread(users, bad)
	// Wildly uneven rates → larger spread.
	badUneven := map[string]int{"a": 45, "b": 10, "c": 2, "d": 0}
	high := fitFailSpread(users, badUneven)
	if low >= high {
		t.Errorf("spread ordering wrong: uniform %v ≥ uneven %v", low, high)
	}
	if s := fitFailSpread(map[string]int{"a": 2}, map[string]int{}); s != 1.5 {
		t.Errorf("insufficient data fallback = %v", s)
	}
}
