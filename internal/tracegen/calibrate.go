package tracegen

import (
	"fmt"
	"math"
	"sort"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/slurm"
	"slurmsight/internal/stats"
)

// FitProfile estimates a workload Profile from an accounting trace (job
// and, when present, step records), so a site can regenerate a synthetic
// double of its own — possibly unpublishable — sacct data. Jobs are split
// into three size classes at the node-count quantiles; each class gets
// lognormal fits for size, runtime, over-estimation, and step structure,
// plus empirical outcome rates. The inverse of Generate, approximately:
// feeding a generated trace back through FitProfile recovers parameters
// close enough to reproduce the trace's figure shapes.
func FitProfile(name string, sys *cluster.System, records []slurm.Record) (Profile, error) {
	if sys == nil {
		return Profile{}, fmt.Errorf("tracegen: FitProfile needs a system")
	}
	// Partition records and count steps per job.
	var jobs []*slurm.Record
	stepsPerJob := map[int64]int{}
	for i := range records {
		r := &records[i]
		if r.IsStep() {
			if r.ID.Kind == slurm.StepNumbered {
				stepsPerJob[r.ID.Job]++
			}
			continue
		}
		jobs = append(jobs, r)
	}
	if len(jobs) < 50 {
		return Profile{}, fmt.Errorf("tracegen: FitProfile needs at least 50 jobs, got %d", len(jobs))
	}

	// Submission rate. Generate's JobsPerDay counts submissions, and one
	// array submission expands into many job records — so arrays count
	// once here or the regenerated volume inflates.
	lo, hi := jobs[0].Submit, jobs[0].Submit
	arrayGroups := map[int64]bool{}
	arrayTasks := 0
	for _, j := range jobs {
		if j.Submit.Before(lo) {
			lo = j.Submit
		}
		if j.Submit.After(hi) {
			hi = j.Submit
		}
		if j.ArrayJobID != 0 {
			arrayGroups[j.ArrayJobID] = true
			arrayTasks++
		}
	}
	days := hi.Sub(lo).Hours() / 24
	if days < 1 {
		days = 1
	}
	submissions := len(jobs) - arrayTasks + len(arrayGroups)

	// User population and activity skew.
	perUser := map[string]int{}
	perUserBad := map[string]int{}
	for _, j := range jobs {
		perUser[j.User]++
		switch j.State {
		case slurm.StateFailed, slurm.StateCancelled, slurm.StateNodeFail, slurm.StateOutOfMemory:
			perUserBad[j.User]++
		}
	}
	skew := fitZipfSkew(perUser)
	spread := fitFailSpread(perUser, perUserBad)

	// Size classes at the node-count tertiles of the log distribution.
	nodes := make([]float64, len(jobs))
	for i, j := range jobs {
		n := float64(j.NNodes)
		if n < 1 {
			n = 1
		}
		nodes[i] = n
	}
	qs, err := stats.Quantiles(nodes, 0.5, 0.9)
	if err != nil {
		return Profile{}, err
	}
	cut1, cut2 := qs[0], qs[1]
	classOf := func(n float64) int {
		switch {
		case n <= cut1:
			return 0
		case n <= cut2:
			return 1
		default:
			return 2
		}
	}
	classNames := []string{"small", "medium", "large"}
	groups := make([][]*slurm.Record, 3)
	for _, j := range jobs {
		c := classOf(math.Max(1, float64(j.NNodes)))
		groups[c] = append(groups[c], j)
	}

	p := Profile{
		Name:       name,
		System:     sys,
		Users:      len(perUser),
		UserSkew:   skew,
		FailSpread: spread,
		JobsPerDay: float64(submissions) / days,
	}
	for c, group := range groups {
		if len(group) == 0 {
			continue
		}
		cls, err := fitClass(classNames[c], group, stepsPerJob, sys)
		if err != nil {
			return Profile{}, err
		}
		cls.Weight = float64(len(group)) / float64(len(jobs))
		p.Classes = append(p.Classes, cls)
	}
	if err := validateProfile(&p); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// fitClass estimates one class's distributions from its member jobs.
func fitClass(name string, group []*slurm.Record, stepsPerJob map[int64]int,
	sys *cluster.System) (Class, error) {
	var nodeVals, runVals, overVals, stepVals []float64
	var failed, cancelled, timedOut, nodeFailed, oomed int
	arrays := map[int64]int{}
	for _, j := range group {
		nodeVals = append(nodeVals, math.Max(1, float64(j.NNodes)))
		switch j.State {
		case slurm.StateFailed:
			failed++
		case slurm.StateCancelled:
			cancelled++
		case slurm.StateTimeout:
			timedOut++
		case slurm.StateNodeFail:
			nodeFailed++
		case slurm.StateOutOfMemory:
			oomed++
		}
		if j.ArrayJobID != 0 {
			arrays[j.ArrayJobID]++
		}
		if n := stepsPerJob[j.ID.Job]; n > 0 {
			stepVals = append(stepVals, float64(n))
		}
		// Runtime and over-estimation only from jobs that ran to
		// completion: failures truncate and timeouts censor.
		if j.State == slurm.StateCompleted && j.Elapsed > 0 {
			runVals = append(runVals, j.Elapsed.Seconds())
			if j.Timelimit > 0 {
				overVals = append(overVals, float64(j.Timelimit)/float64(j.Elapsed))
			}
		}
	}
	n := float64(len(group))
	cls := Class{
		Name:         name,
		Nodes:        clampedLogNormal(nodeVals, 1, float64(sys.Nodes)),
		Runtime:      clampedLogNormal(runVals, 30, 48*3600),
		Overestimate: clampedLogNormal(overVals, 1, 20),
		Steps:        clampedLogNormal(stepVals, 1, 400),
		FailRate:     capRate(float64(failed) / n),
		CancelRate:   capRate(float64(cancelled) / n),
		TimeoutRate:  capRate(float64(timedOut) / n),
		NodeFailRate: capRate(float64(nodeFailed) / n),
		OOMRate:      capRate(float64(oomed) / n),
		QOS:          "normal",
	}
	if len(arrays) > 0 {
		var tasksInArrays int
		var sizes []float64
		for _, size := range arrays {
			tasksInArrays += size
			sizes = append(sizes, float64(size))
		}
		// Submissions ≈ standalone jobs + one per array group.
		submissions := float64(len(group)-tasksInArrays) + float64(len(arrays))
		if submissions > 0 {
			cls.ArrayProb = capRate(float64(len(arrays)) / submissions)
		}
		cls.ArraySize = clampedLogNormal(sizes, 2, 256)
	}
	// Outcome mass sanity: Generate validates < 95%.
	total := cls.FailRate + cls.CancelRate + cls.TimeoutRate + cls.NodeFailRate + cls.OOMRate
	if total > 0.9 {
		scale := 0.9 / total
		cls.FailRate *= scale
		cls.CancelRate *= scale
		cls.TimeoutRate *= scale
		cls.NodeFailRate *= scale
		cls.OOMRate *= scale
	}
	return cls, nil
}

// clampedLogNormal fits a lognormal to samples by log-moments, clamped to
// [lo, hi]; degenerate inputs fall back to a constant at the midpoint.
func clampedLogNormal(xs []float64, lo, hi float64) Dist {
	if len(xs) == 0 {
		return Clamped{D: Const(math.Sqrt(lo * hi)), Lo: lo, Hi: hi}
	}
	var sum, sum2 float64
	for _, x := range xs {
		l := math.Log(math.Max(x, 1e-9))
		sum += l
		sum2 += l * l
	}
	n := float64(len(xs))
	mu := sum / n
	variance := sum2/n - mu*mu
	if variance < 0 {
		variance = 0
	}
	sigma := math.Sqrt(variance)
	if sigma < 0.05 {
		sigma = 0.05
	}
	return Clamped{D: LogNormal{Mu: mu, Sigma: sigma}, Lo: lo, Hi: hi}
}

func capRate(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 0.45 {
		return 0.45
	}
	return r
}

// fitZipfSkew estimates the activity-skew exponent from per-user job
// counts via a log-log least-squares fit of count against rank.
func fitZipfSkew(perUser map[string]int) float64 {
	counts := make([]float64, 0, len(perUser))
	for _, c := range perUser {
		counts = append(counts, float64(c))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(counts)))
	var xs, ys []float64
	for i, c := range counts {
		if c <= 0 {
			break
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(c))
	}
	if len(xs) < 3 {
		return 1.0
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return 1.0
	}
	s := -fit.Slope
	if s < 0.2 {
		s = 0.2
	}
	if s > 2.5 {
		s = 2.5
	}
	return s
}

// fitFailSpread estimates the lognormal spread of per-user failure
// propensity from users with enough jobs to estimate a rate.
func fitFailSpread(perUser, perUserBad map[string]int) float64 {
	var logs []float64
	var sum float64
	for user, total := range perUser {
		if total < 5 {
			continue
		}
		rate := (float64(perUserBad[user]) + 0.5) / (float64(total) + 1) // smoothed
		logs = append(logs, math.Log(rate))
		sum += math.Log(rate)
	}
	if len(logs) < 3 {
		return 1.5
	}
	mean := sum / float64(len(logs))
	var variance float64
	for _, l := range logs {
		variance += (l - mean) * (l - mean)
	}
	sigma := math.Sqrt(variance / float64(len(logs)-1))
	spread := math.Exp(sigma)
	if spread < 1.05 {
		spread = 1.05
	}
	if spread > 6 {
		spread = 6
	}
	return spread
}

// CalibrationReport compares headline statistics of two traces — the
// original and a regenerated double — for judging a fit.
type CalibrationReport struct {
	Jobs            [2]int
	JobsPerDay      [2]float64
	MedianNodes     [2]float64
	MedianRuntimeS  [2]float64
	MedianOverRatio [2]float64
	FailedShare     [2]float64
}

// CompareTraces computes the side-by-side calibration report.
func CompareTraces(a, b []slurm.Record) CalibrationReport {
	var rep CalibrationReport
	for side, recs := range [2][]slurm.Record{a, b} {
		var nodes, runs, overs []float64
		bad := 0
		total := 0
		lo, hi := time.Time{}, time.Time{}
		for i := range recs {
			r := &recs[i]
			if r.IsStep() {
				continue
			}
			total++
			if lo.IsZero() || r.Submit.Before(lo) {
				lo = r.Submit
			}
			if r.Submit.After(hi) {
				hi = r.Submit
			}
			nodes = append(nodes, float64(r.NNodes))
			switch r.State {
			case slurm.StateFailed, slurm.StateCancelled, slurm.StateNodeFail, slurm.StateOutOfMemory:
				bad++
			}
			if r.State == slurm.StateCompleted && r.Elapsed > 0 {
				runs = append(runs, r.Elapsed.Seconds())
				if r.Timelimit > 0 {
					overs = append(overs, float64(r.Timelimit)/float64(r.Elapsed))
				}
			}
		}
		rep.Jobs[side] = total
		if days := hi.Sub(lo).Hours() / 24; days >= 1 {
			rep.JobsPerDay[side] = float64(total) / days
		} else {
			rep.JobsPerDay[side] = float64(total)
		}
		rep.MedianNodes[side], _ = stats.Quantile(nodes, 0.5)
		rep.MedianRuntimeS[side], _ = stats.Quantile(runs, 0.5)
		rep.MedianOverRatio[side], _ = stats.Quantile(overs, 0.5)
		if total > 0 {
			rep.FailedShare[side] = float64(bad) / float64(total)
		}
	}
	return rep
}
