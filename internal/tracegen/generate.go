package tracegen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"slurmsight/internal/slurm"
)

// Request is one job submission ready for the scheduler simulator: the
// user-visible request plus the hidden ground truth (true runtime, planned
// outcome) the simulator needs to execute it.
type Request struct {
	User      string
	Account   string
	Class     string
	JobName   string
	Partition string
	QOS       string

	Submit time.Time
	Nodes  int
	// Cores requests a sub-node allocation (Nodes must be 1): schedulers
	// with node sharing enabled pack such jobs onto shared nodes; without
	// it the job occupies the whole node.
	Cores       int
	Timelimit   time.Duration
	TrueRuntime time.Duration // runtime if allowed to finish
	Steps       int

	// Outcome is the planned terminal state. TIMEOUT is enforced by the
	// scheduler when TrueRuntime exceeds Timelimit; CANCELLED uses
	// CancelAfter; failures use FailFrac.
	Outcome     slurm.State
	CancelAfter time.Duration // cancel this long after submit
	FailFrac    float64       // fraction of TrueRuntime at which the job dies

	ArrayID    int64 // shared id for array siblings; 0 when standalone
	ArrayIndex int   // task index within the array

	// Chain links workflow pipelines: jobs sharing a Chain id form an
	// afterok dependency sequence ordered by ChainPos (each position
	// becomes eligible only when the previous one completes).
	Chain    int64
	ChainPos int

	// Reservation names an advance reservation the job targets; it must
	// match a sched.Reservation for the scheduler to honour it.
	Reservation string
}

// user is one member of the synthetic population.
type user struct {
	name     string
	account  string
	weight   float64
	failMult float64
}

// Generate produces the submissions for a sequence of phases, sorted by
// submit time. The same seed always yields the same workload.
func Generate(phases []Phase, seed int64) ([]Request, error) {
	r := rand.New(rand.NewSource(seed))
	var out []Request
	var arrayID, chainID int64
	for _, ph := range phases {
		if !ph.Start.Before(ph.End) {
			return nil, fmt.Errorf("tracegen: phase %q has empty window", ph.Profile.Name)
		}
		if err := validateProfile(&ph.Profile); err != nil {
			return nil, err
		}
		reqs, err := generatePhase(r, ph, &arrayID, &chainID)
		if err != nil {
			return nil, err
		}
		out = append(out, reqs...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Submit.Before(out[j].Submit) })
	return out, nil
}

func validateProfile(p *Profile) error {
	if p.System == nil {
		return fmt.Errorf("tracegen: profile %q has no system", p.Name)
	}
	if len(p.Classes) == 0 {
		return fmt.Errorf("tracegen: profile %q has no classes", p.Name)
	}
	if p.Users <= 0 {
		return fmt.Errorf("tracegen: profile %q has no users", p.Name)
	}
	if p.JobsPerDay <= 0 {
		return fmt.Errorf("tracegen: profile %q has non-positive rate", p.Name)
	}
	total := 0.0
	for _, c := range p.Classes {
		if c.Weight < 0 {
			return fmt.Errorf("tracegen: class %q has negative weight", c.Name)
		}
		total += c.Weight
		if c.FailRate+c.CancelRate+c.TimeoutRate+c.NodeFailRate+c.OOMRate > 0.95 {
			return fmt.Errorf("tracegen: class %q failure rates exceed 95%%", c.Name)
		}
	}
	if total <= 0 {
		return fmt.Errorf("tracegen: profile %q has zero total class weight", p.Name)
	}
	return nil
}

func buildUsers(r *rand.Rand, p *Profile) []user {
	failSigma := math.Log(math.Max(p.FailSpread, 1.0))
	weights := zipfWeights(p.Users, p.UserSkew)
	// Shuffle the weight assignment so user ids do not encode activity.
	perm := r.Perm(p.Users)
	users := make([]user, p.Users)
	accounts := p.Users/3 + 1
	for i := range users {
		users[i] = user{
			name:     fmt.Sprintf("u%04d", i+1),
			account:  fmt.Sprintf("prj%03d", r.Intn(accounts)+1),
			weight:   weights[perm[i]],
			failMult: math.Exp(failSigma * r.NormFloat64()),
		}
	}
	return users
}

// diurnalWeights shapes within-day submissions: quiet overnight, ramping
// through the working day, an evening tail from batch campaigns.
var diurnalWeights = [24]float64{
	0.5, 0.4, 0.35, 0.3, 0.3, 0.35, 0.5, 0.8,
	1.2, 1.6, 1.8, 1.8, 1.7, 1.8, 1.9, 1.8,
	1.6, 1.4, 1.2, 1.0, 0.9, 0.8, 0.7, 0.6,
}

// weekdayFactor damps weekend submissions without silencing them; large
// facilities keep running campaigns through the weekend.
func weekdayFactor(d time.Weekday) float64 {
	switch d {
	case time.Saturday, time.Sunday:
		return 0.55
	}
	return 1.0
}

// poisson samples a Poisson variate; Knuth's method for small means and a
// normal approximation beyond it.
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func generatePhase(r *rand.Rand, ph Phase, arrayID, chainID *int64) ([]Request, error) {
	p := &ph.Profile
	users := buildUsers(r, p)
	userWeights := make([]float64, len(users))
	for i := range users {
		userWeights[i] = users[i].weight
	}
	classWeights := make([]float64, len(p.Classes))
	for i := range p.Classes {
		classWeights[i] = p.Classes[i].Weight
	}

	var out []Request
	var diurnal []float64 = diurnalWeights[:]
	jobSerial := 0
	for day := ph.Start.Truncate(24 * time.Hour); day.Before(ph.End); day = day.Add(24 * time.Hour) {
		n := poisson(r, p.JobsPerDay*weekdayFactor(day.Weekday()))
		for i := 0; i < n; i++ {
			hour := weightedIndex(r, diurnal)
			submit := day.Add(time.Duration(hour)*time.Hour +
				time.Duration(r.Intn(3600))*time.Second)
			if submit.Before(ph.Start) || !submit.Before(ph.End) {
				continue
			}
			u := &users[weightedIndex(r, userWeights)]
			cls := &p.Classes[weightedIndex(r, classWeights)]
			jobSerial++
			// A submission is a dependency chain, a job array, or a
			// standalone job.
			if cls.ChainProb > 0 && r.Float64() < cls.ChainProb {
				length := sampleInt(r, cls.ChainLen, 2, 64)
				*chainID++
				for pos := 0; pos < length; pos++ {
					req := sampleRequest(r, p, cls, u, submit)
					req.JobName = fmt.Sprintf("%s_%05d_s%d", cls.Name, jobSerial, pos)
					req.Chain, req.ChainPos = *chainID, pos
					out = append(out, req)
				}
				continue
			}
			tasks := 1
			var aid int64
			if cls.ArrayProb > 0 && r.Float64() < cls.ArrayProb {
				tasks = sampleInt(r, cls.ArraySize, 2, 1<<20)
				*arrayID++
				aid = *arrayID
			}
			for task := 0; task < tasks; task++ {
				req := sampleRequest(r, p, cls, u, submit)
				req.JobName = fmt.Sprintf("%s_%05d", cls.Name, jobSerial)
				if aid != 0 {
					req.ArrayID, req.ArrayIndex = aid, task
				}
				out = append(out, req)
			}
		}
	}
	return out, nil
}

func sampleRequest(r *rand.Rand, p *Profile, cls *Class, u *user, submit time.Time) Request {
	sys := p.System
	part := sys.DefaultPartition()
	if cls.Partition != "" {
		if pp, ok := sys.PartitionByName(cls.Partition); ok {
			part = pp
		}
	}
	nodes := sampleInt(r, cls.Nodes, 1, part.MaxNodes)
	subCores := 0
	if cls.SubNodeCores != nil {
		nodes = 1
		subCores = sampleInt(r, cls.SubNodeCores, 1, sys.CoresPerNode)
	}
	maxWall := sys.MaxWallForNodes(part, nodes)
	if q, ok := sys.QOSByName(cls.QOS); ok && q.MaxWall > 0 && q.MaxWall < maxWall {
		maxWall = q.MaxWall
	}

	trueRun := time.Duration(cls.Runtime.Sample(r)) * time.Second
	if trueRun < 10*time.Second {
		trueRun = 10 * time.Second
	}
	// Users cannot request beyond policy; true runtimes beyond 1.5× the
	// ceiling are re-scoped the way real users chunk long campaigns.
	if limit := maxWall + maxWall/2; trueRun > limit {
		trueRun = limit
	}

	over := cls.Overestimate.Sample(r)
	if over < 1 {
		over = 1
	}
	limitReq := time.Duration(float64(trueRun) * over).Round(time.Minute)
	if limitReq < 10*time.Minute {
		limitReq = 10 * time.Minute
	}
	if limitReq > maxWall {
		limitReq = maxWall
	}

	req := Request{
		User:        u.name,
		Account:     u.account,
		Class:       cls.Name,
		Partition:   part.Name,
		QOS:         cls.QOS,
		Submit:      submit,
		Nodes:       nodes,
		Cores:       subCores,
		Timelimit:   limitReq,
		TrueRuntime: trueRun,
		Steps:       sampleInt(r, cls.Steps, 1, 1<<20),
		Outcome:     slurm.StateCompleted,
	}

	// Outcome roll. Fail/cancel rates scale with the user's propensity.
	fail := clampProb(cls.FailRate * u.failMult)
	cancel := clampProb(cls.CancelRate * u.failMult)
	x := r.Float64()
	switch {
	case x < fail:
		req.Outcome = slurm.StateFailed
		req.FailFrac = 0.02 + 0.98*r.Float64()
	case x < fail+cancel:
		req.Outcome = slurm.StateCancelled
		req.CancelAfter = time.Duration(Exponential{Mean: float64(limitReq)}.Sample(r))
	case x < fail+cancel+cls.TimeoutRate:
		req.Outcome = slurm.StateTimeout
		// Force the true runtime past the request so the limit bites.
		req.TrueRuntime = limitReq + time.Duration(float64(limitReq)*(0.05+0.5*r.Float64()))
	case x < fail+cancel+cls.TimeoutRate+cls.NodeFailRate:
		req.Outcome = slurm.StateNodeFail
		req.FailFrac = r.Float64()
	case x < fail+cancel+cls.TimeoutRate+cls.NodeFailRate+cls.OOMRate:
		req.Outcome = slurm.StateOutOfMemory
		req.FailFrac = 0.1 + 0.9*r.Float64()
	}
	// Natural timeouts: policy clamped the request below the true runtime.
	if req.Outcome == slurm.StateCompleted && req.TrueRuntime > req.Timelimit {
		req.Outcome = slurm.StateTimeout
	}
	return req
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 0.45 {
		return 0.45
	}
	return p
}
