package llm

import (
	"fmt"
	"sort"
	"strings"
)

// Facts is the quantitative state of one analysed system — the grounding
// the conversational agent answers from. The workflow layer fills it from
// its figure summaries, so every number the agent cites traces back to
// the trace.
type Facts struct {
	System string `json:"system"`

	Jobs         int64   `json:"jobs"`
	Steps        int64   `json:"steps"`
	StepJobRatio float64 `json:"step_job_ratio"`

	MedianWaitS  float64 `json:"median_wait_s"`
	P90WaitS     float64 `json:"p90_wait_s"`
	LongWaitFrac float64 `json:"long_wait_frac"`

	OverestimateShare    float64 `json:"overestimate_share"`
	MedianUseRatio       float64 `json:"median_use_ratio"`
	BackfilledShare      float64 `json:"backfilled_share"`
	ReclaimableNodeHours float64 `json:"reclaimable_node_hours"`

	Users             int     `json:"users"`
	MeanFailedShare   float64 `json:"mean_failed_share"`
	TopDecileFailures float64 `json:"top_decile_failures"`

	MeanUtilization float64 `json:"mean_utilization"`
	PeakQueueDepth  float64 `json:"peak_queue_depth"`

	MedianNodes     float64 `json:"median_nodes"`
	SmallShortShare float64 `json:"small_short_share"`
}

// Topic identifies a conversation subject; the agent returns it so
// clients can hand it back for follow-up questions.
type Topic string

// Conversation topics.
const (
	TopicWaits       Topic = "waits"
	TopicWalltime    Topic = "walltime"
	TopicUsers       Topic = "users"
	TopicBackfill    Topic = "backfill"
	TopicUtilization Topic = "utilization"
	TopicSteps       Topic = "steps"
	TopicRecommend   Topic = "recommendations"
	TopicHelp        Topic = "help"
)

// Agent answers scheduling questions about one system from its Facts —
// the paper's envisioned conversational layer over the dashboards. It is
// deterministic: intent matching plus grounded templates.
type Agent struct {
	facts Facts
}

// NewAgent builds an agent over a fact set.
func NewAgent(f Facts) *Agent { return &Agent{facts: f} }

// Reply is one agent answer.
type Reply struct {
	Text  string `json:"text"`
	Topic Topic  `json:"topic"`
}

// Ask answers a question. The optional previous topic carries follow-ups
// like "why?" or "what should we do about it?" back to the last subject.
func (a *Agent) Ask(question string, previous Topic) Reply {
	q := strings.ToLower(question)
	topic := a.classify(q, previous)
	switch topic {
	case TopicWaits:
		return Reply{a.waits(), TopicWaits}
	case TopicWalltime:
		return Reply{a.walltime(), TopicWalltime}
	case TopicUsers:
		return Reply{a.users(), TopicUsers}
	case TopicBackfill:
		return Reply{a.backfill(), TopicBackfill}
	case TopicUtilization:
		return Reply{a.utilization(), TopicUtilization}
	case TopicSteps:
		return Reply{a.steps(), TopicSteps}
	case TopicRecommend:
		return Reply{a.recommend(previous), TopicRecommend}
	default:
		return Reply{a.help(), TopicHelp}
	}
}

func hasAny(q string, words ...string) bool {
	for _, w := range words {
		if strings.Contains(q, w) {
			return true
		}
	}
	return false
}

func (a *Agent) classify(q string, previous Topic) Topic {
	switch {
	case hasAny(q, "recommend", "policy", "improve", "should", "advis", "tune"):
		return TopicRecommend
	case hasAny(q, "wait", "queue", "latency", "turnaround"):
		return TopicWaits
	case hasAny(q, "walltime", "overestimat", "request", "reclaim", "estimate"):
		return TopicWalltime
	case hasAny(q, "fail", "error", "cancel", "user", "who"):
		return TopicUsers
	case hasAny(q, "backfill"):
		return TopicBackfill
	case hasAny(q, "utiliz", "load", "busy", "capacity", "idle"):
		return TopicUtilization
	case hasAny(q, "step", "srun", "task", "volume"):
		return TopicSteps
	case hasAny(q, "help", "what can"):
		return TopicHelp
	case previous != "" && hasAny(q, "why", "more", "detail", "explain", "that"):
		return previous
	default:
		return TopicHelp
	}
}

func (a *Agent) waits() string {
	f := &a.facts
	var b strings.Builder
	fmt.Fprintf(&b, "On %s the median queue wait is %s and the 90th percentile is %s. ",
		f.System, humanSeconds(f.MedianWaitS), humanSeconds(f.P90WaitS))
	switch {
	case f.LongWaitFrac > 0.01:
		fmt.Fprintf(&b, "%.1f%% of jobs wait beyond 100,000 seconds — a congestion tail "+
			"worth investigating against maintenance windows, policy thresholds, and the "+
			"submission mix in that period.", 100*f.LongWaitFrac)
	case f.P90WaitS > 3600:
		b.WriteString("Most jobs start promptly, but the tail suggests contention at " +
			"specific scales; check the nodes-versus-wait breakdown.")
	default:
		b.WriteString("Queues are healthy; waits are dominated by scheduling granularity " +
			"rather than contention.")
	}
	return b.String()
}

func (a *Agent) walltime() string {
	f := &a.facts
	return fmt.Sprintf("Users on %s systematically over-estimate walltimes: %.0f%% of jobs "+
		"use less than 75%% of their request, and the median job uses only %.0f%% of what "+
		"it asked for. A perfect predictor would hand the scheduler back about %.0f "+
		"node-hours. That unused tail is exactly what backfill exploits — and what "+
		"runtime prediction or adaptive rescheduling could reclaim directly.",
		f.System, 100*f.OverestimateShare, 100*f.MedianUseRatio, f.ReclaimableNodeHours)
}

func (a *Agent) users() string {
	f := &a.facts
	var b strings.Builder
	fmt.Fprintf(&b, "%d users submitted work on %s; on average %.1f%% of a user's jobs end "+
		"unsuccessfully (failed, cancelled, or resource-killed). ",
		f.Users, f.System, 100*f.MeanFailedShare)
	if f.TopDecileFailures > 0.5 {
		fmt.Fprintf(&b, "Failures are concentrated: the top decile of failing users owns "+
			"%.0f%% of all failures — targeted training or submission-script review for "+
			"that group would move the aggregate numbers most.", 100*f.TopDecileFailures)
	} else {
		b.WriteString("Failures are spread fairly evenly across the user base, which " +
			"points at systemic causes rather than individual usage patterns.")
	}
	return b.String()
}

func (a *Agent) backfill() string {
	f := &a.facts
	return fmt.Sprintf("%.1f%% of started jobs on %s were placed by the backfill "+
		"scheduler. Backfill thrives on the walltime over-estimation gap (median use "+
		"ratio %.0f%%): short jobs slot into the shadow of the blocked queue head. "+
		"If estimates tightened, backfill volume would drop but overall waits would "+
		"improve — the two views of the same slack.",
		100*f.BackfilledShare, f.System, 100*f.MedianUseRatio)
}

func (a *Agent) utilization() string {
	f := &a.facts
	return fmt.Sprintf("Mean utilization on %s over the analysed window is %.0f%%, with "+
		"queue depth peaking at %.0f pending jobs. The workload skews %s (median "+
		"allocation %.0f nodes; %.0f%% of jobs are small and short).",
		f.System, 100*f.MeanUtilization, f.PeakQueueDepth,
		map[bool]string{true: "towards throughput", false: "towards capability"}[f.SmallShortShare > 0.5],
		f.MedianNodes, 100*f.SmallShortShare)
}

func (a *Agent) steps() string {
	f := &a.facts
	return fmt.Sprintf("%s ran %d jobs that launched %d job-steps — %.1f steps per job. "+
		"Fine-grained srun task execution dominates, so scheduling policy changes that "+
		"only consider whole jobs miss most of the execution units on the machine.",
		f.System, f.Jobs, f.Steps, f.StepJobRatio)
}

// recommendation is one ranked policy suggestion.
type recommendation struct {
	score float64
	text  string
}

func (a *Agent) recommend(previous Topic) string {
	f := &a.facts
	var recs []recommendation
	if f.OverestimateShare > 0.5 {
		recs = append(recs, recommendation{f.OverestimateShare,
			fmt.Sprintf("Deploy walltime prediction at submission: %.0f%% of jobs use under "+
				"75%% of their request, worth ~%.0f node-hours of reclaimable capacity.",
				100*f.OverestimateShare, f.ReclaimableNodeHours)})
	}
	if f.LongWaitFrac > 0.005 {
		recs = append(recs, recommendation{0.6 + f.LongWaitFrac,
			fmt.Sprintf("Add a near-real-time QoS or advance reservations for urgent work: "+
				"%.1f%% of jobs sit beyond 100,000 s in the queue.", 100*f.LongWaitFrac)})
	}
	if f.TopDecileFailures > 0.5 {
		recs = append(recs, recommendation{f.TopDecileFailures - 0.1,
			fmt.Sprintf("Target user support at the heaviest failers: the top decile owns "+
				"%.0f%% of failures.", 100*f.TopDecileFailures)})
	}
	if f.MeanUtilization < 0.7 && f.PeakQueueDepth > 10 {
		recs = append(recs, recommendation{0.55,
			"Queues form while capacity idles: review partition shapes and backfill depth — " +
				"fragmentation, not demand, is the bottleneck."})
	}
	if f.SmallShortShare > 0.6 {
		recs = append(recs, recommendation{0.5,
			fmt.Sprintf("%.0f%% of jobs are small and short: consider node sharing or a "+
				"high-turnover partition so they stop competing with capability jobs.",
				100*f.SmallShortShare)})
	}
	if len(recs) == 0 {
		return fmt.Sprintf("Nothing stands out on %s: estimates, waits, and failures are "+
			"all within healthy ranges for the analysed window.", f.System)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].score > recs[j].score })
	var b strings.Builder
	fmt.Fprintf(&b, "Ranked policy recommendations for %s:\n", f.System)
	for i, r := range recs {
		fmt.Fprintf(&b, "%d. %s\n", i+1, r.text)
	}
	return strings.TrimRight(b.String(), "\n")
}

func (a *Agent) help() string {
	return "I can discuss this system's queue waits, walltime estimates and reclamation, " +
		"user failure patterns, backfill behaviour, utilization and load, job-step volume, " +
		"and give ranked policy recommendations. Ask, for example: \"why are waits long?\", " +
		"\"who fails most?\", or \"what should we tune?\""
}
