package llm

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"slurmsight/internal/plot"
)

func TestRegistryShape(t *testing.T) {
	reg := Registry()
	if len(reg) != 10 {
		t.Errorf("Table 2 rows = %d, want 10", len(reg))
	}
	vendors := map[string]bool{}
	for _, p := range reg {
		vendors[p.Vendor] = true
	}
	for _, v := range []string{"OpenAI", "Google", "Anthropic", "Apple", "DeepSeek",
		"Mistral", "Meta", "Microsoft", "Github"} {
		if !vendors[v] {
			t.Errorf("vendor %s missing from Table 2", v)
		}
	}
}

func TestChoosePicksGemma(t *testing.T) {
	p, err := Choose(Registry(), PaperCriteria())
	if err != nil {
		t.Fatal(err)
	}
	if p.Model != "Gemma 3" || p.Vendor != "Google" {
		t.Errorf("selected %s %s, want Google Gemma 3", p.Vendor, p.Model)
	}
}

func TestChooseCriteriaFiltering(t *testing.T) {
	// Without the lightweight preference, any free unlimited multimodal
	// API qualifies — still a Google model.
	c := PaperCriteria()
	c.PreferLightweight = false
	p, err := Choose(Registry(), c)
	if err != nil || p.Vendor != "Google" {
		t.Errorf("got %+v, %v", p, err)
	}
	// Impossible criteria: free + images + API among paid-only rows.
	none, err := Choose([]Provider{
		{Vendor: "X", HasAPI: true, Access: AccessPaid, Images: true},
	}, PaperCriteria())
	if err == nil {
		t.Errorf("want error, got %+v", none)
	}
}

func waitChart() *plot.Chart {
	return &plot.Chart{
		Title: "Job wait times 2024", XLabel: "submit time", YLabel: "wait (s)",
		Kind: plot.Scatter, YScale: plot.Log10,
		Series: []plot.Series{
			{Name: "COMPLETED", X: []float64{1, 2, 3, 4, 5, 6}, Y: []float64{30, 600, 3600, 200, 150000, 90}},
			{Name: "FAILED", X: []float64{1.5, 2.5}, Y: []float64{7200, 120000}},
		},
	}
}

func walltimeChart() *plot.Chart {
	return &plot.Chart{
		Title: "Requested vs actual walltimes", XLabel: "requested (s)", YLabel: "actual (s)",
		Kind: plot.Scatter,
		Series: []plot.Series{
			{Name: "regular", X: []float64{3600, 7200, 36000}, Y: []float64{1800, 6000, 4000}},
			{Name: "backfilled", X: []float64{3600, 1800}, Y: []float64{600, 300}, Marker: plot.Plus},
		},
	}
}

func statesChart() *plot.Chart {
	return &plot.Chart{
		Title: "Job end states per user", XLabel: "user", YLabel: "jobs",
		Kind:       plot.StackedBar,
		Categories: []string{"u1", "u2", "u3", "u4"},
		Series: []plot.Series{
			{Name: "COMPLETED", Y: []float64{100, 20, 10, 5}},
			{Name: "FAILED", Y: []float64{30, 2, 1, 0}},
			{Name: "CANCELLED", Y: []float64{10, 1, 0, 1}},
		},
	}
}

func volumeChart() *plot.Chart {
	return &plot.Chart{
		Title: "Jobs and job-steps per year", XLabel: "year", YLabel: "count",
		Kind:       plot.GroupedBar,
		Categories: []string{"2021", "2022", "2023", "2024"},
		Series: []plot.Series{
			{Name: "jobs", Y: []float64{1000, 2000, 150000, 200000}},
			{Name: "job-steps", Y: []float64{8000, 20000, 2000000, 2600000}},
		},
	}
}

func TestAnalyzeWaitChart(t *testing.T) {
	a, err := AnalyzeChart(waitChart())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats["points"] != 8 {
		t.Errorf("points = %v", a.Stats["points"])
	}
	if a.Stats["long_wait_frac"] != 0.25 { // 150000 and 120000 of 8
		t.Errorf("long_wait_frac = %v", a.Stats["long_wait_frac"])
	}
	if !strings.Contains(a.Text, "100,000 seconds") {
		t.Errorf("long-tail claim missing: %s", a.Text)
	}
	if !strings.Contains(a.Text, "COMPLETED") {
		t.Errorf("state stratification missing: %s", a.Text)
	}
	// The quantitative claims must match the data.
	if a.Stats["n_COMPLETED"] != 6 || a.Stats["n_FAILED"] != 2 {
		t.Errorf("per-state counts wrong: %+v", a.Stats)
	}
}

func TestAnalyzeWalltimeChart(t *testing.T) {
	a, err := AnalyzeChart(walltimeChart())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats["below_diagonal_frac"] != 1.0 {
		t.Errorf("below_diagonal_frac = %v", a.Stats["below_diagonal_frac"])
	}
	if !strings.Contains(a.Text, "overestimating") {
		t.Errorf("over-estimation insight missing: %s", a.Text)
	}
	if a.Stats["n_backfilled"] != 2 {
		t.Errorf("n_backfilled = %v", a.Stats["n_backfilled"])
	}
	if !strings.Contains(a.Text, "Backfilled jobs") {
		t.Errorf("backfill insight missing: %s", a.Text)
	}
	if a.Stats["median_actual_backfilled"] >= a.Stats["median_actual_regular"] {
		t.Error("backfilled median should be lower")
	}
}

func TestAnalyzeStatesChart(t *testing.T) {
	a, err := AnalyzeChart(statesChart())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats["total_jobs"] != 180 {
		t.Errorf("total_jobs = %v", a.Stats["total_jobs"])
	}
	wantFail := 45.0 / 180
	if math.Abs(a.Stats["failed_share"]-wantFail) > 1e-9 {
		t.Errorf("failed_share = %v, want %v", a.Stats["failed_share"], wantFail)
	}
	if !strings.Contains(a.Text, "disproportionately high failure") {
		t.Errorf("outlier-user insight missing for a 25%% failure mix: %s", a.Text)
	}
}

func TestAnalyzeVolumeChart(t *testing.T) {
	a, err := AnalyzeChart(volumeChart())
	if err != nil {
		t.Fatal(err)
	}
	ratio := a.Stats["step_job_ratio"]
	if ratio < 10 || ratio > 15 {
		t.Errorf("step_job_ratio = %v", ratio)
	}
	if !strings.Contains(a.Text, "steps per job") {
		t.Errorf("ratio insight missing: %s", a.Text)
	}
}

func TestAnalyzeGenericChart(t *testing.T) {
	c := &plot.Chart{
		Title: "Allocated nodes versus elapsed", XLabel: "elapsed (s)", YLabel: "nodes",
		Kind: plot.Scatter,
		Series: []plot.Series{{
			Name: "jobs",
			X:    []float64{60, 600, 3600, 36000, 86400},
			Y:    []float64{1, 8, 64, 512, 4096},
		}},
	}
	a, err := AnalyzeChart(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats["spearman_xy"] < 0.9 {
		t.Errorf("monotone data should give high rank correlation: %v", a.Stats["spearman_xy"])
	}
	if !strings.Contains(a.Text, "rank correlation") {
		t.Errorf("correlation claim missing: %s", a.Text)
	}
	if _, err := AnalyzeChart(&plot.Chart{}); err == nil {
		t.Error("invalid chart: want error")
	}
}

func TestCompareChartsWaitShift(t *testing.T) {
	march := waitChart()
	march.Title = "Wait times March"
	june := waitChart()
	june.Title = "Wait times June"
	// June waits are uniformly shorter; no long tail.
	for i := range june.Series {
		for j := range june.Series[i].Y {
			june.Series[i].Y[j] /= 10
		}
	}
	a, err := CompareCharts(march, june)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats["delta_median_wait_s"] >= 0 {
		t.Errorf("median delta = %v, want negative", a.Stats["delta_median_wait_s"])
	}
	if !strings.Contains(a.Text, "lower") {
		t.Errorf("direction missing: %s", a.Text)
	}
	if !strings.Contains(a.Text, "100,000 seconds") {
		t.Errorf("congestion comparison missing: %s", a.Text)
	}
}

func TestCompareDifferentCharts(t *testing.T) {
	a, err := CompareCharts(statesChart(), volumeChart())
	if err != nil {
		t.Fatal(err)
	}
	if a.Text == "" {
		t.Error("empty comparison")
	}
}

func TestDeterministicAnalysis(t *testing.T) {
	a1, _ := AnalyzeChart(waitChart())
	a2, _ := AnalyzeChart(waitChart())
	if a1.Text != a2.Text {
		t.Error("analysis is not deterministic")
	}
}

// --- API server + client integration ---

func startServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	s := NewServer("sk-test")
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func imageFor(t *testing.T, c *plot.Chart) Image {
	t.Helper()
	img, err := EncodeImage(c.Title, []byte("png-bytes"), c)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestServerInsightEndToEnd(t *testing.T) {
	ts, _ := startServer(t)
	client := NewClient(ts.URL, "sk-test")
	resp, err := client.Analyze(context.Background(), InsightPrompt, imageFor(t, walltimeChart()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != "gemma-3-sim" {
		t.Errorf("model = %q", resp.Model)
	}
	if !strings.Contains(resp.Text, "overestimating") {
		t.Errorf("insight missing: %s", resp.Text)
	}
	if resp.Stats["below_diagonal_frac"] != 1.0 {
		t.Errorf("stats not transported: %+v", resp.Stats)
	}
}

func TestServerCompareEndToEnd(t *testing.T) {
	ts, _ := startServer(t)
	client := NewClient(ts.URL, "sk-test")
	resp, err := client.Analyze(context.Background(), ComparePrompt,
		imageFor(t, waitChart()), imageFor(t, walltimeChart()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "Comparing") {
		t.Errorf("comparison text missing: %s", resp.Text)
	}
}

func TestServerAuth(t *testing.T) {
	ts, _ := startServer(t)
	bad := NewClient(ts.URL, "wrong-key")
	bad.MaxRetries = 0
	_, err := bad.Analyze(context.Background(), InsightPrompt, imageFor(t, waitChart()))
	if err == nil || !strings.Contains(err.Error(), "401") {
		t.Errorf("want 401, got %v", err)
	}
	none := NewClient(ts.URL, "")
	none.MaxRetries = 0
	if _, err := none.Analyze(context.Background(), InsightPrompt, imageFor(t, waitChart())); err == nil {
		t.Error("missing key should be rejected")
	}
}

func TestServerBadRequests(t *testing.T) {
	ts, _ := startServer(t)
	client := NewClient(ts.URL, "sk-test")
	client.MaxRetries = 0
	if _, err := client.Analyze(context.Background(), InsightPrompt); err == nil {
		t.Error("no images: want client-side error")
	}
	if _, err := client.Analyze(context.Background(), InsightPrompt,
		Image{Name: "x", Spec: "not json"}); err == nil {
		t.Error("bad spec: want error")
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze = %d", resp.StatusCode)
	}
}

func TestServerRateLimitAndRetry(t *testing.T) {
	s := NewServer("sk-test")
	now := time.Unix(1000, 0)
	s.Now = func() time.Time { return now }
	s.RatePerSec = 1
	s.Burst = 2
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	client := NewClient(ts.URL, "sk-test")
	client.MaxRetries = 0
	ctx := context.Background()
	img := imageFor(t, waitChart())
	// Two requests drain the burst; the third hits 429.
	for i := 0; i < 2; i++ {
		if _, err := client.Analyze(ctx, InsightPrompt, img); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if _, err := client.Analyze(ctx, InsightPrompt, img); err == nil {
		t.Fatal("third request should be rate-limited")
	}
	// A retrying client succeeds once the bucket refills: advance the
	// clock inside the sleep hook.
	retrying := NewClient(ts.URL, "sk-test")
	retrying.MaxRetries = 2
	retrying.Backoff = time.Millisecond
	retrying.Sleep = func(time.Duration) { now = now.Add(3 * time.Second) }
	if _, err := retrying.Analyze(ctx, InsightPrompt, img); err != nil {
		t.Fatalf("retry should recover after refill: %v", err)
	}
}

func TestClientRetriesOn5xx(t *testing.T) {
	fails := 2
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 {
			fails--
			http.Error(w, `{"error":"boom"}`, http.StatusBadGateway)
			return
		}
		writeJSON(w, http.StatusOK, Response{Text: "ok", Model: "m"})
	}))
	defer ts.Close()
	client := NewClient(ts.URL, "")
	client.Backoff = time.Millisecond
	client.Sleep = func(time.Duration) {}
	resp, err := client.Analyze(context.Background(), InsightPrompt, imageFor(t, waitChart()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "ok" || fails != 0 {
		t.Errorf("retry path broken: %+v, fails=%d", resp, fails)
	}
}

func TestClientModels(t *testing.T) {
	ts, _ := startServer(t)
	client := NewClient(ts.URL, "sk-test")
	models, err := client.Models(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != len(Registry()) {
		t.Errorf("models = %d", len(models))
	}
}

func TestPromptsMatchPaper(t *testing.T) {
	for _, p := range []string{InsightPrompt, ComparePrompt} {
		if !strings.HasPrefix(p, "Act as a data scientist") {
			t.Errorf("prompt drifted from the paper: %q", p)
		}
	}
	if !strings.Contains(ComparePrompt, "compare and contrast") {
		t.Error("compare prompt drifted")
	}
}

func timelineChart() *plot.Chart {
	return &plot.Chart{
		Title: "System load over time on frontier", XLabel: "time", YLabel: "allocated nodes",
		Kind: plot.Line, XTime: true,
		Series: []plot.Series{
			{Name: "busy nodes", X: []float64{1, 2, 3, 4}, Y: []float64{1000, 9000, 4000, 2000}},
			{Name: "capacity", X: []float64{1, 4}, Y: []float64{9408, 9408}},
		},
	}
}

func TestAnalyzeTimelineChart(t *testing.T) {
	a, err := AnalyzeChart(timelineChart())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats["peak"] != 9000 {
		t.Errorf("peak = %v", a.Stats["peak"])
	}
	if a.Stats["capacity"] != 9408 {
		t.Errorf("capacity = %v", a.Stats["capacity"])
	}
	if a.Stats["mean_utilization"] <= 0 || a.Stats["mean_utilization"] > 1 {
		t.Errorf("mean_utilization = %v", a.Stats["mean_utilization"])
	}
	if !strings.Contains(a.Text, "saturated") {
		t.Errorf("peak saturation not narrated: %s", a.Text)
	}
	if !strings.Contains(a.Text, "early") {
		t.Errorf("peak position not narrated: %s", a.Text)
	}
	// Without the capacity series, the utilization clause is absent.
	bare := timelineChart()
	bare.Series = bare.Series[:1]
	b, err := AnalyzeChart(bare)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.Text, "utilization") {
		t.Errorf("capacity clause without capacity series: %s", b.Text)
	}
}
