package llm

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// countingServer always answers with status and counts the hits.
func countingServer(t *testing.T, status int, hits *atomic.Int32) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if status == http.StatusOK {
			writeJSON(w, http.StatusOK, Response{Text: "ok", Model: "m"})
			return
		}
		writeJSON(w, status, apiError{"nope"})
	}))
	t.Cleanup(ts.Close)
	return ts
}

func quiet(c *Client) *Client {
	c.Backoff = time.Millisecond
	c.Jitter = 0
	c.Sleep = func(time.Duration) {}
	return c
}

// TestMaxRetriesSentinel pins the satellite bugfix: 0 must mean "no
// retries" (one request on the wire), negative selects the default.
func TestMaxRetriesSentinel(t *testing.T) {
	cases := []struct {
		maxRetries int
		wantHits   int32
	}{
		{maxRetries: 0, wantHits: 1},  // retries disabled
		{maxRetries: 2, wantHits: 3},  // explicit budget
		{maxRetries: -1, wantHits: 4}, // sentinel: default 3 retries
	}
	for _, c := range cases {
		var hits atomic.Int32
		ts := countingServer(t, http.StatusServiceUnavailable, &hits)
		client := quiet(NewClient(ts.URL, ""))
		client.MaxRetries = c.maxRetries
		_, err := client.Analyze(context.Background(), InsightPrompt, imageFor(t, waitChart()))
		if err == nil {
			t.Fatalf("MaxRetries=%d: want error", c.maxRetries)
		}
		if hits.Load() != c.wantHits {
			t.Errorf("MaxRetries=%d: %d requests on the wire, want %d",
				c.maxRetries, hits.Load(), c.wantHits)
		}
	}
}

func TestTerminalErrorsDoNotRetry(t *testing.T) {
	var hits atomic.Int32
	ts := countingServer(t, http.StatusUnauthorized, &hits)
	client := quiet(NewClient(ts.URL, "bad-key")) // default retry budget
	_, err := client.Analyze(context.Background(), InsightPrompt, imageFor(t, waitChart()))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnauthorized {
		t.Fatalf("err = %v, want typed 401", err)
	}
	if apiErr.Retryable() {
		t.Error("401 must be terminal")
	}
	if hits.Load() != 1 {
		t.Errorf("terminal error burned %d requests", hits.Load())
	}
}

func TestRetryAfterOverridesBackoff(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			writeJSON(w, http.StatusTooManyRequests, apiError{"slow down"})
			return
		}
		writeJSON(w, http.StatusOK, Response{Text: "ok", Model: "m"})
	}))
	defer ts.Close()
	var slept []time.Duration
	client := NewClient(ts.URL, "")
	client.Backoff = time.Millisecond
	client.Jitter = 0
	client.Sleep = func(d time.Duration) { slept = append(slept, d) }
	if _, err := client.Analyze(context.Background(), InsightPrompt, imageFor(t, waitChart())); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Errorf("slept %v, want the server's 7s Retry-After", slept)
	}
}

func TestJitterSpreadsBackoff(t *testing.T) {
	var hits atomic.Int32
	ts := countingServer(t, http.StatusServiceUnavailable, &hits)
	var slept []time.Duration
	client := NewClient(ts.URL, "")
	client.MaxRetries = 8
	client.Backoff = 100 * time.Millisecond
	client.Jitter = 1.0
	client.Sleep = func(d time.Duration) { slept = append(slept, d) }
	client.Analyze(context.Background(), InsightPrompt, imageFor(t, waitChart()))
	base := 100 * time.Millisecond
	varied := false
	for i, d := range slept {
		lo := base << i
		if d < lo || d > 2*lo {
			t.Fatalf("sleep %d = %v outside [%v, %v]", i, d, lo, 2*lo)
		}
		if d != lo {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter never perturbed the schedule")
	}
}

// TestBackoffAbortsOnContextCancel pins the satellite bugfix: with no
// Sleep hook installed, a cancellation mid-backoff must interrupt the
// timer — not block for the remaining (doubling) schedule.
func TestBackoffAbortsOnContextCancel(t *testing.T) {
	var hits atomic.Int32
	ts := countingServer(t, http.StatusServiceUnavailable, &hits)
	client := NewClient(ts.URL, "")
	client.Backoff = 30 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := client.Analyze(ctx, InsightPrompt, imageFor(t, waitChart()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancellation took %v against a 30s backoff", d)
	}
}

func TestChatRetriesOn5xx(t *testing.T) {
	var hits atomic.Int32
	analyst := NewServer()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			writeJSON(w, http.StatusBadGateway, apiError{"flaky"})
			return
		}
		analyst.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()
	client := quiet(NewClient(ts.URL, ""))
	resp, err := client.Chat(context.Background(), Facts{System: "frontier", Jobs: 10}, "how many jobs ran?", "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Reply.Text == "" || hits.Load() != 3 {
		t.Errorf("chat retry broken: hits=%d resp=%+v", hits.Load(), resp)
	}
}

func TestModelsRetriesOn5xx(t *testing.T) {
	var hits atomic.Int32
	analyst := NewServer()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			writeJSON(w, http.StatusInternalServerError, apiError{"flaky"})
			return
		}
		analyst.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()
	client := quiet(NewClient(ts.URL, ""))
	models, err := client.Models(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != len(Registry()) || hits.Load() != 3 {
		t.Errorf("models retry broken: hits=%d models=%d", hits.Load(), len(models))
	}
}

// TestModelsBoundedRead pins the satellite bugfix: the Models success
// path must cap its read like every other path instead of decoding an
// unbounded body.
func TestModelsBoundedRead(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`[{"vendor":"`))
		filler := strings.Repeat("x", 64<<10)
		for written := 0; written < modelsBodyLimit+(1<<20); written += len(filler) {
			w.Write([]byte(filler))
		}
		w.Write([]byte(`"}]`))
	}))
	defer ts.Close()
	client := quiet(NewClient(ts.URL, ""))
	_, err := client.Models(context.Background())
	if err == nil || !strings.Contains(err.Error(), "byte limit") {
		t.Fatalf("err = %v, want byte-limit rejection", err)
	}
}

func TestRateLimit429CarriesRetryAfter(t *testing.T) {
	s := NewServer("sk-test")
	s.RatePerSec = 1
	s.Burst = 1
	now := time.Unix(1000, 0)
	s.Now = func() time.Time { return now }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader("{}"))
		req.Header.Set("Authorization", "Bearer sk-test")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if i == 1 {
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("second request = %d, want 429", resp.StatusCode)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without a Retry-After hint")
			}
		}
	}
}

// --- Fault-injection middleware ---

func TestFaultPolicyAll500(t *testing.T) {
	faults := &FaultPolicy{Rate500: 1, Seed: 3}
	ts := httptest.NewServer(faults.Middleware(NewServer().Handler()))
	defer ts.Close()
	client := quiet(NewClient(ts.URL, ""))
	client.MaxRetries = 1
	_, err := client.Analyze(context.Background(), InsightPrompt, imageFor(t, waitChart()))
	if err == nil || !strings.Contains(err.Error(), "giving up after 2 attempts") {
		t.Fatalf("err = %v", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("want typed 500 inside %v", err)
	}
	if faults.Injected("500") != 2 {
		t.Errorf("injected 500s = %d", faults.Injected("500"))
	}
}

func TestFaultPolicy429SetsRetryAfter(t *testing.T) {
	faults := &FaultPolicy{Rate429: 1, RetryAfter: 3 * time.Second, Seed: 3}
	ts := httptest.NewServer(faults.Middleware(NewServer().Handler()))
	defer ts.Close()
	var slept []time.Duration
	client := NewClient(ts.URL, "")
	client.MaxRetries = 1
	client.Jitter = 0
	client.Sleep = func(d time.Duration) { slept = append(slept, d) }
	client.Analyze(context.Background(), InsightPrompt, imageFor(t, waitChart()))
	if len(slept) != 1 || slept[0] != 3*time.Second {
		t.Errorf("slept %v, want the injected 3s Retry-After", slept)
	}
}

func TestFaultPolicyDeterministicSchedule(t *testing.T) {
	sequence := func(seed int64) []int {
		faults := &FaultPolicy{Rate429: 0.3, Rate500: 0.3, Seed: seed}
		ts := httptest.NewServer(faults.Middleware(http.HandlerFunc(
			func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })))
		defer ts.Close()
		var codes []int
		for i := 0; i < 24; i++ {
			resp, err := http.Get(ts.URL + "/v1/models")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			codes = append(codes, resp.StatusCode)
		}
		return codes
	}
	a, b := sequence(11), sequence(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %d vs %d", i, a[i], b[i])
		}
	}
	mixed := map[int]bool{}
	for _, c := range a {
		mixed[c] = true
	}
	if !mixed[http.StatusOK] || (!mixed[429] && !mixed[500]) {
		t.Errorf("schedule not mixing outcomes: %v", a)
	}
}

// TestClientRecoversThroughFaultySurface runs the full loop: real
// analyst behind a 40%-faulty middleware, retry-aware client on top.
func TestClientRecoversThroughFaultySurface(t *testing.T) {
	faults := &FaultPolicy{Rate429: 0.2, Rate500: 0.2, RetryAfter: time.Millisecond, Seed: 5}
	ts := httptest.NewServer(faults.Middleware(NewServer().Handler()))
	defer ts.Close()
	client := quiet(NewClient(ts.URL, ""))
	client.MaxRetries = 10
	for i := 0; i < 8; i++ {
		resp, err := client.Analyze(context.Background(), InsightPrompt, imageFor(t, walltimeChart()))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !strings.Contains(resp.Text, "overestimating") {
			t.Fatalf("request %d: degraded response %q", i, resp.Text)
		}
	}
}
