// Package llm is the AI subworkflow substrate. It replaces the paper's
// external Gemma 3 API with a self-hosted, deterministic chart analyst
// served over a real HTTP JSON API: the workflow still converts plots to
// PNG, posts them with the paper's fixed data-scientist prompts, handles
// authentication, rate limits and retries — but the "model" computes its
// insights from the chart spec that accompanies each image, so every
// generated claim is checkable against ground truth (stronger than the
// paper's unvalidated proof of concept).
//
// The package also carries the Table 2 provider survey and the selection
// logic that picks Gemma 3.
package llm

import "fmt"

// Access classifies how a provider is obtained.
type Access string

// Access classes from Table 2.
const (
	AccessFree    Access = "Free"
	AccessPaid    Access = "Paid"
	AccessUnclear Access = "Unclear"
)

// Provider is one Table 2 row.
type Provider struct {
	Vendor    string
	Model     string
	HasAPI    bool
	Access    Access
	Images    bool // supports image input
	Unlimited bool // no usage cap on the free tier
	Remarks   string
}

// Registry returns the Table 2 survey.
func Registry() []Provider {
	return []Provider{
		{Vendor: "OpenAI", Model: "All Models", HasAPI: true, Access: AccessPaid, Images: true,
			Remarks: "o3, o4, best for vision"},
		{Vendor: "Google", Model: "Gemini 2.5 Flash", HasAPI: true, Access: AccessFree, Images: true,
			Remarks: "No limit on usage", Unlimited: true},
		{Vendor: "Google", Model: "Gemma 3", HasAPI: true, Access: AccessFree, Images: true,
			Remarks: "AI for developers", Unlimited: true},
		{Vendor: "Anthropic", Model: "All Models", HasAPI: true, Access: AccessPaid, Images: true,
			Remarks: "Interoperable with other models"},
		{Vendor: "Apple", Model: "All Models", HasAPI: false, Access: AccessFree, Images: false,
			Remarks: "All LLMs must run locally on iOS devices"},
		{Vendor: "DeepSeek", Model: "All Models", HasAPI: true, Access: AccessPaid, Images: false,
			Remarks: "Geo-restricted"},
		{Vendor: "Mistral", Model: "All Models", HasAPI: true, Access: AccessPaid, Images: true,
			Remarks: "Restricted and limited free trial"},
		{Vendor: "Meta", Model: "Llama", HasAPI: true, Access: AccessUnclear, Images: true,
			Remarks: "Waitlist for API, cost unclear"},
		{Vendor: "Microsoft", Model: "Copilot", HasAPI: true, Access: AccessPaid, Images: true,
			Remarks: "Integrated into MS tools eg. Office suite"},
		{Vendor: "Github", Model: "Copilot", HasAPI: false, Access: AccessFree, Images: false,
			Remarks: "Built into IDE, limited req/month"},
	}
}

// Criteria are the §3.2 selection factors: API availability, image input,
// cost, and unrestricted usage for automated pipelines.
type Criteria struct {
	NeedAPI       bool
	NeedImages    bool
	NeedFree      bool
	NeedUnlimited bool
	// PreferLightweight breaks ties toward the smaller "developer" model
	// (the paper's latency/footprint argument for Gemma over Gemini).
	PreferLightweight bool
}

// PaperCriteria reproduces the paper's requirements.
func PaperCriteria() Criteria {
	return Criteria{NeedAPI: true, NeedImages: true, NeedFree: true,
		NeedUnlimited: true, PreferLightweight: true}
}

// Choose filters the registry by the criteria and returns the selection,
// reproducing the Table 2 outcome (Gemma 3 under the paper's criteria).
func Choose(reg []Provider, c Criteria) (Provider, error) {
	var candidates []Provider
	for _, p := range reg {
		if c.NeedAPI && !p.HasAPI {
			continue
		}
		if c.NeedImages && !p.Images {
			continue
		}
		if c.NeedFree && p.Access != AccessFree {
			continue
		}
		if c.NeedUnlimited && !p.Unlimited {
			continue
		}
		candidates = append(candidates, p)
	}
	if len(candidates) == 0 {
		return Provider{}, fmt.Errorf("llm: no provider satisfies the criteria")
	}
	if c.PreferLightweight {
		for _, p := range candidates {
			if p.Model == "Gemma 3" {
				return p, nil
			}
		}
	}
	return candidates[0], nil
}
