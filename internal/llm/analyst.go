package llm

import (
	"fmt"
	"sort"
	"strings"

	"slurmsight/internal/plot"
	"slurmsight/internal/stats"
)

// InsightPrompt is the paper's fixed single-chart prompt (§3.2).
const InsightPrompt = "Act as a data scientist to summarize the chart and " +
	"provide a quantitative analysis of the key trends, relationships, and " +
	"statistics of the provided chart. Be specific and mention any notable " +
	"patterns or outliers. Calculate meaningful statistics from the plot."

// ComparePrompt is the paper's fixed two-chart prompt (§3.2).
const ComparePrompt = "Act as a data scientist to compare and contrast the " +
	"two provided charts. Provide a quantitative and qualitative analysis " +
	"of the key trends, relationships, and statistics, highlighting " +
	"similarities and differences. Be specific and mention any notable " +
	"patterns or outliers. Calculate meaningful statistics from the plots."

// Analysis is the analyst's product: prose plus the machine-checkable
// numbers every quantitative claim in the prose is drawn from.
type Analysis struct {
	Text  string             `json:"text"`
	Stats map[string]float64 `json:"stats"`
}

// chartClass is the analyst's reading of what a chart depicts.
type chartClass int

const (
	classGeneric chartClass = iota
	classWait
	classWalltime
	classStates
	classVolume
	classTimeline
)

func classify(c *plot.Chart) chartClass {
	text := strings.ToLower(c.Title + " " + c.XLabel + " " + c.YLabel)
	switch {
	case c.Kind == plot.Line && c.XTime &&
		(strings.Contains(text, "load") || strings.Contains(text, "queue depth") ||
			strings.Contains(text, "utiliz")):
		return classTimeline
	case strings.Contains(text, "wait"):
		return classWait
	case strings.Contains(text, "requested") || strings.Contains(text, "walltime"):
		return classWalltime
	case c.Kind == plot.StackedBar || c.Kind == plot.GroupedBar:
		if strings.Contains(text, "state") || strings.Contains(text, "user") ||
			strings.Contains(text, "jobs") {
			if strings.Contains(text, "step") {
				return classVolume
			}
			return classStates
		}
		return classGeneric
	default:
		return classGeneric
	}
}

// AnalyzeChart produces the LLM-Insight analysis of one chart.
func AnalyzeChart(c *plot.Chart) (Analysis, error) {
	if err := c.Validate(); err != nil {
		return Analysis{}, err
	}
	switch classify(c) {
	case classWait:
		return analyzeWait(c), nil
	case classWalltime:
		return analyzeWalltime(c), nil
	case classStates:
		return analyzeStates(c), nil
	case classVolume:
		return analyzeVolume(c), nil
	case classTimeline:
		return analyzeTimeline(c), nil
	default:
		return analyzeGeneric(c), nil
	}
}

// analyzeTimeline narrates a load or queue-depth series: level, peak, and
// where in the window the peak sits.
func analyzeTimeline(c *plot.Chart) Analysis {
	st := map[string]float64{}
	var main *plot.Series
	var capacity float64
	for i := range c.Series {
		s := &c.Series[i]
		if strings.EqualFold(s.Name, "capacity") {
			if len(s.Y) > 0 {
				capacity = s.Y[0]
			}
			continue
		}
		if main == nil || len(s.Y) > len(main.Y) {
			main = s
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "The chart \"%s\" tracks %s over time. ", c.Title, c.YLabel)
	if main == nil || len(main.Y) == 0 {
		b.WriteString("No data series is present.")
		return Analysis{Text: b.String(), Stats: st}
	}
	sum, _ := stats.Summarize(main.Y)
	st["mean"] = sum.Mean
	st["peak"] = sum.Max
	peakAt := 0
	for i, y := range main.Y {
		if y == sum.Max {
			peakAt = i
			break
		}
	}
	st["peak_position_frac"] = float64(peakAt) / float64(len(main.Y))
	fmt.Fprintf(&b, "It averages %s and peaks at %s, %s through the window. ",
		humanValue(sum.Mean), humanValue(sum.Max),
		windowThird(st["peak_position_frac"]))
	if capacity > 0 {
		st["capacity"] = capacity
		st["mean_utilization"] = sum.Mean / capacity
		fmt.Fprintf(&b, "Against a capacity of %s that is %.0f%% mean utilization",
			humanValue(capacity), 100*st["mean_utilization"])
		if sum.Max > capacity*0.95 {
			b.WriteString(", with the system effectively saturated at the peak.")
		} else {
			b.WriteString(", leaving headroom even at the peak.")
		}
	}
	return Analysis{Text: b.String(), Stats: st}
}

func windowThird(frac float64) string {
	switch {
	case frac < 1.0/3:
		return "early"
	case frac < 2.0/3:
		return "midway"
	default:
		return "late"
	}
}

// allXY flattens every series.
func allXY(c *plot.Chart) (xs, ys []float64) {
	for i := range c.Series {
		xs = append(xs, c.Series[i].X...)
		ys = append(ys, c.Series[i].Y...)
	}
	return
}

func med(xs []float64) float64 {
	m, err := stats.Quantile(xs, 0.5)
	if err != nil {
		return 0
	}
	return m
}

func analyzeWait(c *plot.Chart) Analysis {
	_, ys := allXY(c)
	st := map[string]float64{"points": float64(len(ys))}
	var b strings.Builder
	fmt.Fprintf(&b, "The chart \"%s\" shows %d jobs' queue wait times. ", c.Title, len(ys))
	if len(ys) > 0 {
		qs, _ := stats.Quantiles(ys, 0.5, 0.9, 0.99)
		st["median_wait_s"], st["p90_wait_s"], st["p99_wait_s"] = qs[0], qs[1], qs[2]
		long := 0
		for _, y := range ys {
			if y > 100_000 {
				long++
			}
		}
		st["long_wait_frac"] = float64(long) / float64(len(ys))
		fmt.Fprintf(&b, "The median wait is %s with a 90th percentile of %s, "+
			"so the distribution is heavily right-skewed. ",
			humanSeconds(qs[0]), humanSeconds(qs[1]))
		if long > 0 {
			fmt.Fprintf(&b, "%.1f%% of jobs waited beyond 100,000 seconds, a long-wait tail "+
				"that could indicate batch congestion or policy thresholds being hit. ",
				100*st["long_wait_frac"])
		}
	}
	// Per-state stratification.
	type row struct {
		name string
		n    int
		med  float64
	}
	var rows []row
	for i := range c.Series {
		s := &c.Series[i]
		rows = append(rows, row{s.Name, len(s.Y), med(s.Y)})
		st["n_"+s.Name] = float64(len(s.Y))
		st["median_wait_"+s.Name] = med(s.Y)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	if len(rows) > 1 {
		fmt.Fprintf(&b, "Broken down by final state, %s jobs dominate (%d), "+
			"with median wait %s; %s jobs (%d) show a median of %s, a distinct "+
			"stratification that warrants tuning of scheduling parameters.",
			rows[0].name, rows[0].n, humanSeconds(rows[0].med),
			rows[1].name, rows[1].n, humanSeconds(rows[1].med))
	}
	return Analysis{Text: b.String(), Stats: st}
}

func analyzeWalltime(c *plot.Chart) Analysis {
	xs, ys := allXY(c)
	st := map[string]float64{"points": float64(len(ys))}
	below := 0
	var ratios []float64
	for i := range xs {
		if xs[i] <= 0 {
			continue
		}
		if ys[i] < xs[i] {
			below++
		}
		ratios = append(ratios, ys[i]/xs[i])
	}
	if len(xs) > 0 {
		st["below_diagonal_frac"] = float64(below) / float64(len(xs))
	}
	st["median_use_ratio"] = med(ratios)
	var b strings.Builder
	fmt.Fprintf(&b, "The chart \"%s\" compares requested walltimes with actual job durations "+
		"across %d jobs. ", c.Title, len(xs))
	fmt.Fprintf(&b, "%.1f%% of jobs finish below their request, and the median job uses only "+
		"%.0f%% of the time it asked for. ",
		100*st["below_diagonal_frac"], 100*st["median_use_ratio"])
	if st["median_use_ratio"] < 0.75 {
		b.WriteString("There is a consistent trend of users significantly overestimating " +
			"their walltime requests, creating a systemic gap that reduces scheduling " +
			"efficiency; tightly clustered short-actual, long-requested jobs suggest " +
			"potential for automated time prediction or adaptive rescheduling mechanisms. ")
	}
	// Backfill split, when the series distinguish it.
	for i := range c.Series {
		s := &c.Series[i]
		key := strings.ToLower(s.Name)
		if strings.HasPrefix(key, "backfill") {
			st["n_backfilled"] = float64(len(s.Y))
			st["median_actual_backfilled"] = med(s.Y)
		} else {
			st["n_regular"] = float64(len(s.Y))
			st["median_actual_regular"] = med(s.Y)
		}
	}
	if st["n_backfilled"] > 0 && st["median_actual_backfilled"] < st["median_actual_regular"] {
		fmt.Fprintf(&b, "Backfilled jobs (%d of them) skew short — median %s versus %s for "+
			"regular starts — confirming the scheduler exploits over-estimates to fill gaps.",
			int(st["n_backfilled"]), humanSeconds(st["median_actual_backfilled"]),
			humanSeconds(st["median_actual_regular"]))
	}
	return Analysis{Text: b.String(), Stats: st}
}

func analyzeStates(c *plot.Chart) Analysis {
	st := map[string]float64{"categories": float64(len(c.Categories))}
	totals := make([]float64, len(c.Categories))
	var grand, bad float64
	for i := range c.Series {
		name := strings.ToUpper(c.Series[i].Name)
		isBad := strings.Contains(name, "FAIL") || strings.Contains(name, "CANCEL") ||
			strings.Contains(name, "OUT_OF_MEMORY") || strings.Contains(name, "NODE")
		for j, v := range c.Series[i].Y {
			totals[j] += v
			grand += v
			if isBad {
				bad += v
			}
		}
	}
	st["total_jobs"] = grand
	if grand > 0 {
		st["failed_share"] = bad / grand
	}
	// Concentration: share of volume held by the busiest decile.
	sorted := append([]float64(nil), totals...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	top := (len(sorted) + 9) / 10
	var topSum float64
	for _, v := range sorted[:top] {
		topSum += v
	}
	if grand > 0 {
		st["top_decile_share"] = topSum / grand
	}
	var b strings.Builder
	fmt.Fprintf(&b, "The chart \"%s\" breaks down %.0f jobs across %d users by final state. ",
		c.Title, grand, len(c.Categories))
	fmt.Fprintf(&b, "Unsuccessful outcomes (failed, cancelled, or resource-killed) account for "+
		"%.1f%% of jobs. ", 100*st["failed_share"])
	fmt.Fprintf(&b, "Activity is heavy-tailed: the top decile of users submits %.0f%% of all jobs. ",
		100*st["top_decile_share"])
	if st["failed_share"] > 0.15 {
		b.WriteString("Several users show disproportionately high failure or cancellation " +
			"rates; these outliers are natural targets for training, user support, or " +
			"configuration changes.")
	} else {
		b.WriteString("Failure rates are comparatively low and uniform across users, " +
			"suggesting interactive or exploratory work with fast feedback cycles.")
	}
	return Analysis{Text: b.String(), Stats: st}
}

func analyzeVolume(c *plot.Chart) Analysis {
	st := map[string]float64{"categories": float64(len(c.Categories))}
	var jobs, steps []float64
	for i := range c.Series {
		name := strings.ToLower(c.Series[i].Name)
		if strings.Contains(name, "step") {
			steps = c.Series[i].Y
		} else if strings.Contains(name, "job") {
			jobs = c.Series[i].Y
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "The chart \"%s\" shows job and job-step volume per year. ", c.Title)
	var tj, ts float64
	for _, v := range jobs {
		tj += v
	}
	for _, v := range steps {
		ts += v
	}
	st["total_jobs"], st["total_steps"] = tj, ts
	if tj > 0 {
		st["step_job_ratio"] = ts / tj
		fmt.Fprintf(&b, "Across the period there are %.0f jobs and %.0f job-steps — "+
			"%.1f steps per job — reflecting extensive use of srun task parallelism: "+
			"many scientific workflows execute at the job-step level rather than as "+
			"monolithic jobs. ", tj, ts, st["step_job_ratio"])
	}
	if len(jobs) > 1 {
		if jobs[len(jobs)-1] > jobs[0] {
			b.WriteString("Job submissions grow over the years as the system moves from " +
				"acceptance testing into production.")
		} else {
			b.WriteString("Job submissions remain relatively stable year over year.")
		}
	}
	return Analysis{Text: b.String(), Stats: st}
}

func analyzeGeneric(c *plot.Chart) Analysis {
	xs, ys := allXY(c)
	st := map[string]float64{
		"points": float64(len(ys)),
		"series": float64(len(c.Series)),
	}
	var b strings.Builder
	fmt.Fprintf(&b, "The chart \"%s\" plots %s against %s with %d points across %d series. ",
		c.Title, c.YLabel, c.XLabel, len(ys), len(c.Series))
	if len(xs) == len(ys) && len(xs) > 2 {
		if rho, err := stats.Spearman(xs, ys); err == nil {
			st["spearman_xy"] = rho
			switch {
			case rho > 0.4:
				fmt.Fprintf(&b, "The variables rise together (rank correlation %.2f): "+
					"larger allocations tend to run longer. ", rho)
			case rho < -0.4:
				fmt.Fprintf(&b, "The variables are inversely related (rank correlation %.2f). ", rho)
			default:
				fmt.Fprintf(&b, "The variables are only weakly related (rank correlation %.2f), "+
					"with the system accommodating both small short-lived jobs and massively "+
					"parallel long-duration work. ", rho)
			}
		}
	}
	if len(ys) > 0 {
		st["median_y"] = med(ys)
		qs, _ := stats.Quantiles(ys, 0.99)
		outliers := 0
		for _, y := range ys {
			if y > qs[0] {
				outliers++
			}
		}
		st["outliers_p99"] = float64(outliers)
		fmt.Fprintf(&b, "The median %s is %s, with %d points beyond the 99th percentile.",
			c.YLabel, humanValue(st["median_y"]), outliers)
	}
	return Analysis{Text: b.String(), Stats: st}
}

// CompareCharts produces the LLM-Compare analysis of two charts.
func CompareCharts(a, b *plot.Chart) (Analysis, error) {
	ia, err := AnalyzeChart(a)
	if err != nil {
		return Analysis{}, err
	}
	ib, err := AnalyzeChart(b)
	if err != nil {
		return Analysis{}, err
	}
	st := map[string]float64{}
	for k, v := range ia.Stats {
		st["a_"+k] = v
	}
	for k, v := range ib.Stats {
		st["b_"+k] = v
	}
	var out strings.Builder
	fmt.Fprintf(&out, "Comparing \"%s\" with \"%s\": ", a.Title, b.Title)

	compared := false
	for _, key := range []string{"median_wait_s", "median_use_ratio", "failed_share",
		"median_y", "step_job_ratio"} {
		va, oka := ia.Stats[key]
		vb, okb := ib.Stats[key]
		if !oka || !okb || va == 0 {
			continue
		}
		compared = true
		delta := (vb - va) / va
		st["delta_"+key] = delta
		if absF(delta) < 0.01 {
			fmt.Fprintf(&out, "the %s is essentially unchanged (%s). ",
				humanKey(key), humanValue(va))
			continue
		}
		direction := "higher"
		if delta < 0 {
			direction = "lower"
		}
		fmt.Fprintf(&out, "the %s is %.0f%% %s in the second chart (%s vs %s). ",
			humanKey(key), 100*absF(delta), direction, humanValue(va), humanValue(vb))
	}
	if lw1, lw2 := ia.Stats["long_wait_frac"], ib.Stats["long_wait_frac"]; lw1 != lw2 {
		if lw1 > lw2 {
			out.WriteString("The first chart has a higher density of jobs with extended " +
				"wait times exceeding 100,000 seconds, which could indicate batch congestion " +
				"or policy thresholds being hit more frequently; the majority of jobs " +
				"completed with shorter waits in the second period, suggesting either a " +
				"decrease in queue load or more efficient scheduling policies. ")
		} else {
			out.WriteString("The second chart shows a heavier long-wait tail beyond " +
				"100,000 seconds, pointing at growing congestion in the later period. ")
		}
	}
	if !compared {
		out.WriteString("The charts depict different quantities; no shared metric was " +
			"directly comparable, so the analysis is qualitative. ")
	}
	out.WriteString("\n\nFirst chart: " + ia.Text + "\n\nSecond chart: " + ib.Text)
	return Analysis{Text: out.String(), Stats: st}, nil
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func humanKey(k string) string {
	switch k {
	case "median_wait_s":
		return "median queue wait"
	case "median_use_ratio":
		return "median walltime-use ratio"
	case "failed_share":
		return "unsuccessful-job share"
	case "median_y":
		return "median value"
	case "step_job_ratio":
		return "steps-per-job ratio"
	}
	return k
}

// humanSeconds renders a duration in readable units.
func humanSeconds(s float64) string {
	switch {
	case s >= 86400:
		return fmt.Sprintf("%.1f days", s/86400)
	case s >= 3600:
		return fmt.Sprintf("%.1f hours", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.1f minutes", s/60)
	default:
		return fmt.Sprintf("%.0f s", s)
	}
}

func humanValue(v float64) string {
	switch {
	case absF(v) >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case absF(v) >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case absF(v) < 10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
