package llm

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// FaultPolicy turns the mock endpoint into the flaky upstream the
// workflow's retry layer is built for: a seeded share of requests gets a
// 429 (with Retry-After), a 500, or a stall before being served. Rates
// are per-request probabilities drawn in that order from one uniform
// sample; their sum should stay ≤ 1.
type FaultPolicy struct {
	Rate429   float64
	Rate500   float64
	RateStall float64
	// StallFor is how long a stalled request hangs before being served
	// (the request context cuts it short when the client gives up).
	StallFor time.Duration
	// RetryAfter is the hint attached to injected 429s.
	RetryAfter time.Duration
	// Seed makes the fault sequence reproducible.
	Seed int64

	mu       sync.Mutex
	rng      *rand.Rand
	injected map[string]int
}

// Middleware wraps next with the fault schedule.
func (p *FaultPolicy) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch p.roll() {
		case "429":
			if p.RetryAfter > 0 {
				w.Header().Set("Retry-After",
					fmt.Sprintf("%d", int(p.RetryAfter.Seconds())))
			}
			writeJSON(w, http.StatusTooManyRequests, apiError{"injected rate limit"})
			return
		case "500":
			writeJSON(w, http.StatusInternalServerError, apiError{"injected server error"})
			return
		case "stall":
			timer := time.NewTimer(p.StallFor)
			defer timer.Stop()
			select {
			case <-r.Context().Done():
				return // client hung up; nothing to answer
			case <-timer.C:
			}
		}
		next.ServeHTTP(w, r)
	})
}

// roll draws the fault for the next request.
func (p *FaultPolicy) roll() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		p.rng = rand.New(rand.NewSource(seed))
		p.injected = map[string]int{}
	}
	u := p.rng.Float64()
	var kind string
	switch {
	case u < p.Rate429:
		kind = "429"
	case u < p.Rate429+p.Rate500:
		kind = "500"
	case u < p.Rate429+p.Rate500+p.RateStall:
		kind = "stall"
	default:
		return ""
	}
	p.injected[kind]++
	return kind
}

// Injected reports how many faults of one kind ("429", "500", "stall")
// have been delivered.
func (p *FaultPolicy) Injected(kind string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected[kind]
}

// Active reports whether any fault has a non-zero probability.
func (p *FaultPolicy) Active() bool {
	return p.Rate429 > 0 || p.Rate500 > 0 || p.RateStall > 0
}
