package llm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"slurmsight/internal/obs"
)

// Response-body caps per endpoint: every read is bounded, success and
// error paths alike.
const (
	analyzeBodyLimit = 16 << 20
	chatBodyLimit    = 1 << 20
	modelsBodyLimit  = 1 << 20
)

// defaultMaxRetries is the retry budget selected by a negative
// MaxRetries (the "use the default" sentinel).
const defaultMaxRetries = 3

// Client talks to an analyze endpoint (the built-in mock server or any
// API-compatible deployment) with bearer auth, timeouts, and retry with
// exponential backoff on 429/5xx — the robustness a production pipeline
// needs around a flaky external model API. All three endpoints (Analyze,
// Chat, Models) share one retry core that honours Retry-After, jitters
// its backoff, and aborts backoff sleeps the moment the context is
// cancelled.
type Client struct {
	BaseURL string
	APIKey  string
	// HTTPClient defaults to a client with a 30 s timeout.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first try. Negative
	// selects the default (3); 0 disables retries entirely.
	MaxRetries int
	// Backoff is the initial retry delay, doubled per attempt (default
	// 250 ms). A server Retry-After hint overrides the computed delay.
	Backoff time.Duration
	// Jitter adds up to this fraction of each delay as random slack so
	// synchronised clients do not retry in lockstep (0 disables).
	Jitter float64
	// Sleep is the delay function (overridable in tests). When set, it
	// replaces the context-aware timer — the retry core still refuses
	// to start a sleep on a cancelled context.
	Sleep func(time.Duration)
	// Metrics, when non-nil, meters the client under llm_* names:
	// request/retry/error counters, a request-latency histogram, and
	// bytes sent/received. Nil (the default) disables metering.
	Metrics *obs.Registry
}

// NewClient builds a client with production defaults.
func NewClient(baseURL, apiKey string) *Client {
	return &Client{
		BaseURL:    baseURL,
		APIKey:     apiKey,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
		MaxRetries: defaultMaxRetries,
		Backoff:    250 * time.Millisecond,
		Jitter:     0.2,
	}
}

// Analyze posts one or two images with a prompt and returns the model's
// analysis.
func (c *Client) Analyze(ctx context.Context, prompt string, images ...Image) (*Response, error) {
	if len(images) == 0 || len(images) > 2 {
		return nil, fmt.Errorf("llm: Analyze takes 1 or 2 images, got %d", len(images))
	}
	body, err := json.Marshal(Request{Prompt: prompt, Images: images})
	if err != nil {
		return nil, err
	}
	var out Response
	if err := c.do(ctx, http.MethodPost, "/v1/analyze", body, analyzeBodyLimit, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Chat asks the conversational agent one grounded question. Pass the
// topic from the previous reply to keep follow-ups on subject.
func (c *Client) Chat(ctx context.Context, facts Facts, message string, previous Topic) (*ChatResponse, error) {
	body, err := json.Marshal(ChatRequest{Facts: facts, Message: message, Previous: previous})
	if err != nil {
		return nil, err
	}
	var out ChatResponse
	if err := c.do(ctx, http.MethodPost, "/v1/chat", body, chatBodyLimit, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Models fetches the provider registry from the endpoint.
func (c *Client) Models(ctx context.Context) ([]Provider, error) {
	var out []Provider
	if err := c.do(ctx, http.MethodGet, "/v1/models", nil, modelsBodyLimit, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// do is the shared retry core. It re-issues the request while the
// failure is retryable (typed: *APIError with 429/5xx, *TransportError)
// and budget remains, backing off exponentially with jitter, preferring
// the server's Retry-After hint, and returning immediately — mid-sleep
// included — once ctx is cancelled. Terminal failures (4xx, malformed
// bodies) return without burning the retry budget.
func (c *Client) do(ctx context.Context, method, path string, body []byte, limit int64, out any) error {
	retries := c.MaxRetries
	if retries < 0 {
		retries = defaultMaxRetries
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}

	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			c.Metrics.Counter("llm_retries_total").Inc()
			delay := backoff
			var apiErr *APIError
			if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > 0 {
				delay = apiErr.RetryAfter
			}
			if c.Jitter > 0 {
				delay += time.Duration(c.Jitter * rand.Float64() * float64(delay))
			}
			if err := c.sleep(ctx, delay); err != nil {
				return err
			}
			backoff *= 2
		}
		err := c.once(ctx, httpc, method, path, body, limit, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		var re retryableError
		if !errors.As(err, &re) || !re.Retryable() {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("llm: giving up after %d attempts: %w", retries+1, lastErr)
}

// once issues the request a single time and classifies the outcome into
// typed errors for the retry core.
func (c *Client) once(ctx context.Context, httpc *http.Client, method, path string, body []byte, limit int64, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	c.Metrics.Counter("llm_requests_total").Inc()
	c.Metrics.Counter("llm_bytes_sent_total").Add(int64(len(body)))
	t0 := time.Now()
	resp, err := httpc.Do(req)
	if err != nil {
		c.Metrics.Counter("llm_transport_errors_total").Inc()
		return &TransportError{Err: err}
	}
	defer resp.Body.Close()
	data, err := readBounded(resp.Body, limit)
	c.Metrics.Histogram("llm_request_seconds", obs.LatencyBuckets).ObserveSince(t0)
	c.Metrics.Counter("llm_bytes_received_total").Add(int64(len(data)))
	if err != nil {
		if resp.StatusCode == http.StatusOK {
			return err
		}
		// An oversized or unreadable error body still yields the typed
		// status error; the detail text is best-effort anyway.
		data = nil
	}
	if resp.StatusCode != http.StatusOK {
		c.Metrics.Counter("llm_api_errors_total").Inc()
		return &APIError{
			Status:     resp.StatusCode,
			Message:    errText(data),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()),
		}
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("llm: malformed response: %w", err)
	}
	return nil
}

// readBounded reads at most limit bytes and fails loudly (instead of
// silently truncating into a JSON parse error) when the body is larger.
func readBounded(r io.Reader, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, &TransportError{Err: err}
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("llm: response exceeds %d byte limit", limit)
	}
	return data, nil
}

// sleep waits the backoff delay, returning early with the context error
// if the caller cancels — a cancelled pipeline must not block for the
// remaining backoff schedule.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.Sleep != nil {
		c.Sleep(d)
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

func errText(data []byte) string {
	var e apiError
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := string(data)
	if len(s) > 200 {
		s = s[:200]
	}
	if s == "" {
		s = "(no body)"
	}
	return s
}
