package llm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks to an analyze endpoint (the built-in mock server or any
// API-compatible deployment) with bearer auth, timeouts, and retry with
// exponential backoff on 429/5xx — the robustness a production pipeline
// needs around a flaky external model API.
type Client struct {
	BaseURL string
	APIKey  string
	// HTTPClient defaults to a client with a 30 s timeout.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first try (default 3).
	MaxRetries int
	// Backoff is the initial retry delay, doubled per attempt (default
	// 250 ms).
	Backoff time.Duration
	// Sleep is the delay function (overridable in tests).
	Sleep func(time.Duration)
}

// NewClient builds a client with production defaults.
func NewClient(baseURL, apiKey string) *Client {
	return &Client{
		BaseURL:    baseURL,
		APIKey:     apiKey,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
		MaxRetries: 3,
		Backoff:    250 * time.Millisecond,
		Sleep:      time.Sleep,
	}
}

// Analyze posts one or two images with a prompt and returns the model's
// analysis.
func (c *Client) Analyze(ctx context.Context, prompt string, images ...Image) (*Response, error) {
	if len(images) == 0 || len(images) > 2 {
		return nil, fmt.Errorf("llm: Analyze takes 1 or 2 images, got %d", len(images))
	}
	body, err := json.Marshal(Request{Prompt: prompt, Images: images})
	if err != nil {
		return nil, err
	}
	retries := c.MaxRetries
	if retries <= 0 {
		retries = 3
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}

	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
			sleep(backoff)
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/v1/analyze", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if c.APIKey != "" {
			req.Header.Set("Authorization", "Bearer "+c.APIKey)
		}
		resp, err := httpc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var out Response
			if err := json.Unmarshal(data, &out); err != nil {
				return nil, fmt.Errorf("llm: malformed response: %w", err)
			}
			return &out, nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			lastErr = fmt.Errorf("llm: server returned %d: %s", resp.StatusCode, errText(data))
			continue // retryable
		default:
			return nil, fmt.Errorf("llm: server returned %d: %s", resp.StatusCode, errText(data))
		}
	}
	return nil, fmt.Errorf("llm: giving up after %d attempts: %w", retries+1, lastErr)
}

// Chat asks the conversational agent one grounded question. Pass the
// topic from the previous reply to keep follow-ups on subject.
func (c *Client) Chat(ctx context.Context, facts Facts, message string, previous Topic) (*ChatResponse, error) {
	body, err := json.Marshal(ChatRequest{Facts: facts, Message: message, Previous: previous})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/chat", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("llm: server returned %d: %s", resp.StatusCode, errText(data))
	}
	var out ChatResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("llm: malformed chat response: %w", err)
	}
	return &out, nil
}

// Models fetches the provider registry from the endpoint.
func (c *Client) Models(ctx context.Context) ([]Provider, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/models", nil)
	if err != nil {
		return nil, err
	}
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, fmt.Errorf("llm: server returned %d: %s", resp.StatusCode, errText(data))
	}
	var out []Provider
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

func errText(data []byte) string {
	var e apiError
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := string(data)
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
