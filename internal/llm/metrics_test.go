package llm

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"slurmsight/internal/obs"
)

// TestClientMetrics drives a 500-then-200 sequence through the retry
// core and checks every llm_* instrument: request and retry counts, the
// API-error tally, the latency histogram, and byte accounting in both
// directions.
func TestClientMetrics(t *testing.T) {
	var hits atomic.Int32
	var okBody []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			http.Error(w, `{"error":"overloaded"}`, http.StatusInternalServerError)
			return
		}
		okBody, _ = json.Marshal(ChatResponse{Reply: Reply{Text: "fine"}})
		w.Write(okBody)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	c := NewClient(ts.URL, "key")
	c.Sleep = func(time.Duration) {}
	c.Metrics = reg

	if _, err := c.Chat(context.Background(), Facts{}, "hi", Topic("")); err != nil {
		t.Fatal(err)
	}

	for name, want := range map[string]int64{
		"llm_requests_total":         2,
		"llm_retries_total":          1,
		"llm_api_errors_total":       1,
		"llm_transport_errors_total": 0,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Histogram("llm_request_seconds", obs.LatencyBuckets).Count(); got != 2 {
		t.Errorf("latency observations = %d, want 2", got)
	}
	if got := reg.Counter("llm_bytes_sent_total").Value(); got <= 0 {
		t.Errorf("bytes sent = %d, want > 0", got)
	}
	// Received bytes cover the error body plus the success body.
	if got := reg.Counter("llm_bytes_received_total").Value(); got < int64(len(okBody)) {
		t.Errorf("bytes received = %d, want ≥ %d", got, len(okBody))
	}

	// The exposition includes the llm family for a /metrics scrape.
	var text strings.Builder
	reg.WriteText(&text)
	if !strings.Contains(text.String(), "llm_requests_total 2") {
		t.Errorf("exposition missing llm_requests_total:\n%s", text.String())
	}
}

// TestClientTransportErrorMetric counts a connection failure under
// llm_transport_errors_total.
func TestClientTransportErrorMetric(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // refuse every connection

	reg := obs.NewRegistry()
	c := NewClient(ts.URL, "key")
	c.MaxRetries = 0
	c.Metrics = reg
	if _, err := c.Models(context.Background()); err == nil {
		t.Fatal("expected a transport error")
	}
	if got := reg.Counter("llm_transport_errors_total").Value(); got != 1 {
		t.Errorf("llm_transport_errors_total = %d, want 1", got)
	}
}
