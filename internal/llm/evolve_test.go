package llm

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
)

// card builds a minimal schedbench/v1 scorecard with the given policy
// rows (name, preset, backfill, slowdown).
func card(rows ...[4]string) json.RawMessage {
	type spec struct {
		Preset   string `json:"preset,omitempty"`
		Backfill string `json:"backfill,omitempty"`
	}
	type pol struct {
		Name         string  `json:"name"`
		MeanSlowdown float64 `json:"mean_slowdown"`
		MeanWaitSec  float64 `json:"mean_wait_sec"`
		Utilization  float64 `json:"utilization"`
		Spec         spec    `json:"spec"`
	}
	out := struct {
		Schema   string `json:"schema"`
		Policies []pol  `json:"policies"`
	}{Schema: "schedbench/v1"}
	for _, r := range rows {
		var sd float64
		fmt.Sscanf(r[3], "%f", &sd)
		out.Policies = append(out.Policies, pol{
			Name: r[0], MeanSlowdown: sd, MeanWaitSec: sd * 100, Utilization: 1 / (1 + sd),
			Spec: spec{Preset: r[1], Backfill: r[2]},
		})
	}
	b, _ := json.Marshal(out)
	return b
}

func TestEvolveEndToEnd(t *testing.T) {
	ts, _ := startServer(t)
	c := NewClient(ts.URL, "sk-test")

	// The aging arm wins: the advisor should push the target's age
	// weight up.
	resp, err := c.Evolve(context.Background(), EvolveRequest{
		Scorecard: card(
			[4]string{"evolved", "", "", "8.0"},
			[4]string{"aging", "aging", "", "3.0"},
			[4]string{"fifo", "fifo", "", "12.0"},
		),
		Target: "evolved",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model == "" || resp.Rationale == "" {
		t.Errorf("missing model/rationale: %+v", resp)
	}
	if len(resp.Deltas) == 0 {
		t.Fatal("no deltas for a losing target")
	}
	d := resp.Deltas[0]
	if d.Policy != "evolved" || d.Param != "age_weight" || d.Op != "scale" || d.Value <= 1 {
		t.Errorf("unexpected delta %+v, want age_weight scale-up on evolved", d)
	}
}

func TestEvolveConvergedTarget(t *testing.T) {
	ts, _ := startServer(t)
	c := NewClient(ts.URL, "sk-test")
	resp, err := c.Evolve(context.Background(), EvolveRequest{
		Scorecard: card(
			[4]string{"evolved", "", "", "2.0"},
			[4]string{"aging", "aging", "", "3.0"},
		),
		Target: "evolved",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Deltas) != 0 {
		t.Errorf("leading target still got deltas: %+v", resp.Deltas)
	}
}

func TestEvolveAdoptsWinnersBackfill(t *testing.T) {
	ts, _ := startServer(t)
	c := NewClient(ts.URL, "sk-test")
	resp, err := c.Evolve(context.Background(), EvolveRequest{
		Scorecard: card(
			[4]string{"evolved", "", "", "8.0"},
			[4]string{"conservative", "", "conservative", "3.0"},
		),
		Target: "evolved",
	})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, d := range resp.Deltas {
		if d.Param == "backfill" && d.Op == "set" && d.Str == "conservative" {
			found = true
		}
	}
	if !found {
		t.Errorf("no backfill adoption delta in %+v", resp.Deltas)
	}
}

func TestEvolveRejections(t *testing.T) {
	ts, _ := startServer(t)
	c := NewClient(ts.URL, "sk-test")
	c.MaxRetries = 0
	ctx := context.Background()

	cases := []struct {
		name string
		req  EvolveRequest
	}{
		{"missing target", EvolveRequest{Scorecard: card([4]string{"a", "", "", "1"}, [4]string{"b", "", "", "2"}), Target: "zzz"}},
		{"bad schema", EvolveRequest{Scorecard: json.RawMessage(`{"schema":"v999"}`), Target: "a"}},
		{"one policy", EvolveRequest{Scorecard: card([4]string{"a", "", "", "1"}), Target: "a"}},
		{"bad objective", EvolveRequest{
			Scorecard: card([4]string{"a", "", "", "1"}, [4]string{"b", "", "", "2"}),
			Target:    "a", Objective: "vibes"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := c.Evolve(ctx, tc.req); err == nil {
				t.Error("server accepted bad evolve request")
			}
		})
	}

	// Client-side validation fires before any network call.
	if _, err := c.Evolve(ctx, EvolveRequest{Target: "a"}); err == nil {
		t.Error("Evolve accepted empty scorecard")
	}
	if _, err := c.Evolve(ctx, EvolveRequest{Scorecard: card([4]string{"a", "", "", "1"})}); err == nil {
		t.Error("Evolve accepted empty target")
	}
}
