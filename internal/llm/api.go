package llm

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"slurmsight/internal/plot"
)

// Image is one chart attachment: the PNG rendering plus the chart spec
// sidecar the simulated model actually reads. A real multimodal model
// would decode the pixels; carrying both preserves the pipeline interface
// while keeping the analysis deterministic and checkable.
type Image struct {
	Name string `json:"name"`
	PNG  []byte `json:"png"`  // base64 in transit via encoding/json
	Spec string `json:"spec"` // chart-spec JSON
}

// Request is the /v1/analyze payload.
type Request struct {
	Prompt string  `json:"prompt"`
	Images []Image `json:"images"`
}

// Response is the /v1/analyze result.
type Response struct {
	Text  string             `json:"text"`
	Stats map[string]float64 `json:"stats"`
	Model string             `json:"model"`
}

// apiError is the error body.
type apiError struct {
	Error string `json:"error"`
}

// Server is the mock model endpoint: bearer-token auth, a token-bucket
// rate limit per key, and the analyst behind POST /v1/analyze.
type Server struct {
	// APIKeys lists accepted bearer tokens; empty disables auth.
	APIKeys []string
	// RatePerSec and Burst configure the per-key token bucket; zero
	// disables limiting.
	RatePerSec float64
	Burst      float64
	// ModelName is echoed in responses.
	ModelName string
	// Now is the clock (overridable in tests).
	Now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewServer returns a server with the paper's chosen backend name.
func NewServer(keys ...string) *Server {
	return &Server{
		APIKeys:    keys,
		RatePerSec: 10,
		Burst:      20,
		ModelName:  "gemma-3-sim",
		Now:        time.Now,
	}
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/chat", s.handleChat)
	mux.HandleFunc("/v1/evolve", s.handleEvolve)
	return mux
}

// ChatRequest is the /v1/chat payload: a grounded question. The request
// is stateless — clients echo the returned topic to keep follow-ups
// ("why?", "tell me more") on subject.
type ChatRequest struct {
	Facts    Facts  `json:"facts"`
	Message  string `json:"message"`
	Previous Topic  `json:"previous,omitempty"`
}

// ChatResponse is the /v1/chat result.
type ChatResponse struct {
	Reply Reply  `json:"reply"`
	Model string `json:"model"`
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"POST only"})
		return
	}
	if status, err := s.authorize(r); err != nil {
		s.deny(w, status, err)
		return
	}
	var req ChatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"malformed request: " + err.Error()})
		return
	}
	if req.Message == "" {
		writeJSON(w, http.StatusBadRequest, apiError{"empty message"})
		return
	}
	reply := NewAgent(req.Facts).Ask(req.Message, req.Previous)
	writeJSON(w, http.StatusOK, ChatResponse{Reply: reply, Model: s.ModelName})
}

// deny writes an auth or rate-limit rejection, attaching a Retry-After
// hint to 429s so retry-aware clients pace themselves off the server's
// token-bucket refill instead of their own guess.
func (s *Server) deny(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		secs := 1
		if s.RatePerSec > 0 && s.RatePerSec < 1 {
			secs = int(1/s.RatePerSec + 0.5)
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, status, apiError{err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// authorize validates the bearer token and applies the rate limit.
func (s *Server) authorize(r *http.Request) (int, error) {
	key := ""
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		key = strings.TrimPrefix(auth, "Bearer ")
	}
	if len(s.APIKeys) > 0 {
		ok := false
		for _, k := range s.APIKeys {
			if key == k {
				ok = true
				break
			}
		}
		if !ok {
			return http.StatusUnauthorized, fmt.Errorf("invalid API key")
		}
	}
	if s.RatePerSec <= 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.buckets == nil {
		s.buckets = map[string]*bucket{}
	}
	b, ok := s.buckets[key]
	now := s.Now()
	if !ok {
		b = &bucket{tokens: s.Burst, last: now}
		s.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * s.RatePerSec
	if b.tokens > s.Burst {
		b.tokens = s.Burst
	}
	b.last = now
	if b.tokens < 1 {
		return http.StatusTooManyRequests, fmt.Errorf("rate limit exceeded")
	}
	b.tokens--
	return 0, nil
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"GET only"})
		return
	}
	writeJSON(w, http.StatusOK, Registry())
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"POST only"})
		return
	}
	if status, err := s.authorize(r); err != nil {
		s.deny(w, status, err)
		return
	}
	var req Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"malformed request: " + err.Error()})
		return
	}
	charts := make([]*plot.Chart, 0, len(req.Images))
	for _, img := range req.Images {
		c, err := plot.FromJSON([]byte(img.Spec))
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				apiError{fmt.Sprintf("image %q has no readable chart: %v", img.Name, err)})
			return
		}
		charts = append(charts, c)
	}
	var (
		analysis Analysis
		err      error
	)
	switch {
	case len(charts) == 1:
		analysis, err = AnalyzeChart(charts[0])
	case len(charts) == 2:
		analysis, err = CompareCharts(charts[0], charts[1])
	default:
		writeJSON(w, http.StatusBadRequest,
			apiError{fmt.Sprintf("expected 1 or 2 images, got %d", len(charts))})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, Response{
		Text:  analysis.Text,
		Stats: analysis.Stats,
		Model: s.ModelName,
	})
}

// EncodeImage packages a chart for transport: PNG bytes plus spec JSON.
func EncodeImage(name string, pngData []byte, c *plot.Chart) (Image, error) {
	spec, err := c.JSON()
	if err != nil {
		return Image{}, err
	}
	return Image{Name: name, PNG: pngData, Spec: string(spec)}, nil
}

// DecodePNGBase64 is a helper for tooling that stores the wire form.
func DecodePNGBase64(s string) ([]byte, error) {
	return base64.StdEncoding.DecodeString(s)
}
