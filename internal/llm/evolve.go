package llm

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// The evolve endpoint closes the paper's loop: the workflow does not just
// explain scheduling outcomes, it proposes policy changes. The client
// posts a policy-tournament scorecard; the model answers with parameter
// deltas against one target policy. The mock server's advisor is a
// deterministic heuristic over the scorecard (like the analyst, it trades
// model weights for checkability), so the whole evolution loop runs
// offline and reproducibly.
//
// The package reads the scorecard through a minimal structural view
// (scoreView) rather than importing the tournament package: the wire
// contract is the JSON shape, not a Go type, which keeps llm free of a
// dependency on the scheduler stack.

// ParamDelta is one proposed change to a named policy's parameters.
type ParamDelta struct {
	// Policy is the target spec name the delta applies to.
	Policy string `json:"policy"`
	// Param is the parameter: age_weight, size_weight, fair_share_weight,
	// base, backfill_depth (numeric); backfill, node_select, priority
	// (string-valued).
	Param string `json:"param"`
	// Op is "scale" (numeric: multiply by Value) or "set" (numeric
	// absolute Value, or string-valued Str).
	Op string `json:"op"`
	// Value carries the numeric operand for scale/set.
	Value float64 `json:"value,omitempty"`
	// Str carries the operand for string-valued params.
	Str string `json:"str,omitempty"`
	// Reason is the model's one-line justification.
	Reason string `json:"reason,omitempty"`
}

// EvolveRequest is the /v1/evolve payload.
type EvolveRequest struct {
	// Scorecard is the schedbench/v1 scorecard JSON, passed through
	// verbatim.
	Scorecard json.RawMessage `json:"scorecard"`
	// Target names the policy being evolved; deltas apply only to it.
	Target string `json:"target"`
	// Objective selects the metric: "mean_wait_sec" or "mean_slowdown"
	// (minimised), or "utilization" (maximised). Empty means
	// mean_slowdown.
	Objective string `json:"objective,omitempty"`
	// Round is the evolution iteration, echoed for auditability.
	Round int `json:"round"`
}

// EvolveResponse is the /v1/evolve result. An empty Deltas slice means
// the advisor considers the target converged.
type EvolveResponse struct {
	Deltas    []ParamDelta `json:"deltas"`
	Rationale string       `json:"rationale"`
	Model     string       `json:"model"`
}

const evolveBodyLimit = 1 << 20

// Evolve posts a scorecard and returns the model's proposed parameter
// deltas for the target policy.
func (c *Client) Evolve(ctx context.Context, req EvolveRequest) (*EvolveResponse, error) {
	if len(req.Scorecard) == 0 {
		return nil, fmt.Errorf("llm: Evolve needs a scorecard")
	}
	if req.Target == "" {
		return nil, fmt.Errorf("llm: Evolve needs a target policy")
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out EvolveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/evolve", body, evolveBodyLimit, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// scoreView is the structural slice of the schedbench/v1 scorecard the
// advisor reads — a deliberate mirror of the tournament JSON, so llm
// does not import the scheduler stack.
type scoreView struct {
	Schema   string `json:"schema"`
	Policies []struct {
		Name         string  `json:"name"`
		MeanWaitSec  float64 `json:"mean_wait_sec"`
		MeanSlowdown float64 `json:"mean_slowdown"`
		Utilization  float64 `json:"utilization"`
		BackfillFrac float64 `json:"backfill_frac"`
		Spec         struct {
			Preset     string `json:"preset"`
			Backfill   string `json:"backfill"`
			NodeSelect string `json:"node_select"`
		} `json:"spec"`
	} `json:"policies"`
}

func (s *Server) handleEvolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{"POST only"})
		return
	}
	if status, err := s.authorize(r); err != nil {
		s.deny(w, status, err)
		return
	}
	var req EvolveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"malformed request: " + err.Error()})
		return
	}
	var view scoreView
	if err := json.Unmarshal(req.Scorecard, &view); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"unreadable scorecard: " + err.Error()})
		return
	}
	resp, err := advise(view, req.Target, req.Objective)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, apiError{err.Error()})
		return
	}
	resp.Model = s.ModelName
	writeJSON(w, http.StatusOK, resp)
}

// advise is the canned evolution advisor: a deterministic heuristic that
// compares the target policy against the best-scoring other arm and
// proposes moving the target toward the winner's emphasis.
func advise(view scoreView, target, objective string) (*EvolveResponse, error) {
	if view.Schema != "schedbench/v1" {
		return nil, fmt.Errorf("unsupported scorecard schema %q", view.Schema)
	}
	if objective == "" {
		objective = "mean_slowdown"
	}
	metric := func(i int) (float64, error) {
		p := &view.Policies[i]
		switch objective {
		case "mean_slowdown":
			return p.MeanSlowdown, nil
		case "mean_wait_sec":
			return p.MeanWaitSec, nil
		case "utilization":
			return -p.Utilization, nil // maximise → minimise the negation
		}
		return 0, fmt.Errorf("unknown objective %q", objective)
	}

	targetIdx := -1
	for i := range view.Policies {
		if view.Policies[i].Name == target {
			targetIdx = i
		}
	}
	if targetIdx < 0 {
		return nil, fmt.Errorf("target policy %q not in scorecard", target)
	}
	if len(view.Policies) < 2 {
		return nil, fmt.Errorf("scorecard needs at least two policies to compare")
	}

	// Rank all policies by the objective; ties break by name so the
	// advice is deterministic regardless of scorecard order.
	order := make([]int, len(view.Policies))
	for i := range order {
		order[i] = i
	}
	vals := make([]float64, len(view.Policies))
	for i := range vals {
		v, err := metric(i)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	sort.SliceStable(order, func(a, b int) bool {
		if vals[order[a]] != vals[order[b]] {
			return vals[order[a]] < vals[order[b]]
		}
		return view.Policies[order[a]].Name < view.Policies[order[b]].Name
	})

	best := order[0]
	if best == targetIdx {
		return &EvolveResponse{
			Rationale: fmt.Sprintf("%s already leads on %s; no changes proposed", target, objective),
		}, nil
	}
	winner := &view.Policies[best]
	tgt := &view.Policies[targetIdx]

	var deltas []ParamDelta
	push := func(d ParamDelta) {
		d.Policy = target
		deltas = append(deltas, d)
	}
	// Move the target's weight emphasis a step toward the winning arm's
	// preset character.
	switch winner.Spec.Preset {
	case "capability":
		push(ParamDelta{Param: "size_weight", Op: "scale", Value: 1.5,
			Reason: fmt.Sprintf("%s (size-dominant) beats %s on %s", winner.Name, target, objective)})
	case "aging":
		push(ParamDelta{Param: "age_weight", Op: "scale", Value: 1.5,
			Reason: fmt.Sprintf("%s (age-dominant) beats %s on %s", winner.Name, target, objective)})
	case "fairshare":
		push(ParamDelta{Param: "fair_share_weight", Op: "scale", Value: 1.5,
			Reason: fmt.Sprintf("%s (fair-share-dominant) beats %s on %s", winner.Name, target, objective)})
	case "fifo":
		push(ParamDelta{Param: "size_weight", Op: "scale", Value: 0.67,
			Reason: fmt.Sprintf("plain submission order (%s) beats %s: size priority is hurting %s", winner.Name, target, objective)})
	}
	// Adopt the winner's backfill strategy when it differs.
	if winner.Spec.Backfill != tgt.Spec.Backfill && winner.Spec.Backfill != "" {
		push(ParamDelta{Param: "backfill", Op: "set", Str: winner.Spec.Backfill,
			Reason: fmt.Sprintf("%s's %s backfill outperforms on %s", winner.Name, winner.Spec.Backfill, objective)})
	}
	if len(deltas) == 0 {
		// The winner is an un-presetted arm (e.g. the production
		// default): nudge the objective's natural lever.
		lever := "age_weight"
		if objective == "utilization" {
			lever = "size_weight"
		}
		push(ParamDelta{Param: lever, Op: "scale", Value: 1.25,
			Reason: fmt.Sprintf("%s leads on %s without a distinguishing preset; nudging %s", winner.Name, objective, lever)})
	}
	return &EvolveResponse{
		Deltas: deltas,
		Rationale: fmt.Sprintf("round advice: move %s toward %s (best %s: %.4g vs target %.4g)",
			target, winner.Name, objective, vals[best], vals[targetIdx]),
	}, nil
}
