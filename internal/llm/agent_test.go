package llm

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

// frontierFacts is a grounded fact set shaped like the contended Frontier
// runs.
func frontierFacts() Facts {
	return Facts{
		System:               "frontier",
		Jobs:                 44191,
		Steps:                617396,
		StepJobRatio:         14.0,
		MedianWaitS:          12,
		P90WaitS:             1054,
		LongWaitFrac:         0.012,
		OverestimateShare:    0.79,
		MedianUseRatio:       0.41,
		BackfilledShare:      0.47,
		ReclaimableNodeHours: 3.8e6,
		Users:                220,
		MeanFailedShare:      0.25,
		TopDecileFailures:    0.70,
		MeanUtilization:      0.64,
		PeakQueueDepth:       180,
		MedianNodes:          4,
		SmallShortShare:      0.54,
	}
}

func TestAgentIntents(t *testing.T) {
	a := NewAgent(frontierFacts())
	cases := []struct {
		question string
		topic    Topic
		want     string // substring the grounded answer must contain
	}{
		{"Why are queue waits so long?", TopicWaits, "100,000 seconds"},
		{"Do users overestimate walltime requests?", TopicWalltime, "over-estimate walltimes"},
		{"Which users fail the most?", TopicUsers, "top decile"},
		{"How much work is backfilled?", TopicBackfill, "47.0%"},
		{"What is the system load like?", TopicUtilization, "64%"},
		{"How heavy is srun step usage?", TopicSteps, "14.0 steps per job"},
		{"What should we tune first?", TopicRecommend, "Ranked policy recommendations"},
		{"help", TopicHelp, "queue waits"},
		{"completely unrelated gibberish", TopicHelp, "queue waits"},
	}
	for _, c := range cases {
		got := a.Ask(c.question, "")
		if got.Topic != c.topic {
			t.Errorf("Ask(%q) topic = %s, want %s", c.question, got.Topic, c.topic)
		}
		if !strings.Contains(got.Text, c.want) {
			t.Errorf("Ask(%q) missing %q:\n%s", c.question, c.want, got.Text)
		}
	}
}

func TestAgentFollowUp(t *testing.T) {
	a := NewAgent(frontierFacts())
	first := a.Ask("tell me about queue waits", "")
	if first.Topic != TopicWaits {
		t.Fatalf("topic = %s", first.Topic)
	}
	followUp := a.Ask("why is that?", first.Topic)
	if followUp.Topic != TopicWaits {
		t.Errorf("follow-up drifted to %s", followUp.Topic)
	}
	// Without context, the same follow-up gets the help text.
	cold := a.Ask("why is that?", "")
	if cold.Topic != TopicHelp {
		t.Errorf("cold follow-up = %s, want help", cold.Topic)
	}
}

func TestAgentRecommendationsRanked(t *testing.T) {
	a := NewAgent(frontierFacts())
	r := a.Ask("recommend policy changes", "")
	// The walltime gap (0.79) outranks everything; prediction comes
	// first.
	lines := strings.Split(r.Text, "\n")
	if len(lines) < 3 {
		t.Fatalf("too few recommendations:\n%s", r.Text)
	}
	if !strings.Contains(lines[1], "walltime prediction") {
		t.Errorf("top recommendation should be walltime prediction:\n%s", r.Text)
	}
	// Healthy system: no findings.
	healthy := NewAgent(Facts{System: "tiny", MeanUtilization: 0.9})
	hr := healthy.Ask("what should we improve?", "")
	if !strings.Contains(hr.Text, "Nothing stands out") {
		t.Errorf("healthy system produced findings:\n%s", hr.Text)
	}
}

func TestAgentGroundedNumbers(t *testing.T) {
	f := frontierFacts()
	a := NewAgent(f)
	r := a.Ask("how bad is walltime overestimation?", "")
	for _, want := range []string{"79%", "41%"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("walltime answer missing %s:\n%s", want, r.Text)
		}
	}
	u := a.Ask("who is failing?", "")
	if !strings.Contains(u.Text, "220 users") {
		t.Errorf("user answer not grounded:\n%s", u.Text)
	}
}

func TestChatEndpoint(t *testing.T) {
	ts := httptest.NewServer(NewServer("sk-test").Handler())
	defer ts.Close()
	client := NewClient(ts.URL, "sk-test")
	resp, err := client.Chat(context.Background(), frontierFacts(), "why are waits long?", "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Reply.Topic != TopicWaits {
		t.Errorf("topic = %s", resp.Reply.Topic)
	}
	if resp.Model != "gemma-3-sim" {
		t.Errorf("model = %s", resp.Model)
	}
	// Follow-up via echoed topic.
	resp2, err := client.Chat(context.Background(), frontierFacts(), "tell me more", resp.Reply.Topic)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Reply.Topic != TopicWaits {
		t.Errorf("follow-up topic = %s", resp2.Reply.Topic)
	}
}

func TestChatEndpointErrors(t *testing.T) {
	ts := httptest.NewServer(NewServer("sk-test").Handler())
	defer ts.Close()
	bad := NewClient(ts.URL, "wrong")
	if _, err := bad.Chat(context.Background(), Facts{}, "hi", ""); err == nil {
		t.Error("bad key: want error")
	}
	client := NewClient(ts.URL, "sk-test")
	if _, err := client.Chat(context.Background(), Facts{}, "", ""); err == nil {
		t.Error("empty message: want error")
	}
}
