package llm

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// APIError is a typed non-200 response from the endpoint. It carries
// everything the retry core needs to classify the failure: the status
// (retryable 429/5xx vs terminal 4xx) and any server-provided
// Retry-After hint.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration // parsed Retry-After; 0 when absent
}

func (e *APIError) Error() string {
	return fmt.Sprintf("llm: server returned %d: %s", e.Status, e.Message)
}

// Retryable reports whether the request may be retried: the server was
// overloaded (429) or failed transiently (5xx). Everything else — bad
// request, bad auth, unprocessable payload — is terminal.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// TransportError is a typed connection-level failure (dial, reset,
// client-side timeout). These are always worth retrying — unless the
// caller's context is already done, which the retry core checks first.
type TransportError struct {
	Err error
}

func (e *TransportError) Error() string { return "llm: transport: " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// Retryable marks transport failures as transient.
func (e *TransportError) Retryable() bool { return true }

// retryableError is what the retry core looks for: typed errors declare
// their own retryability; anything untyped (marshalling, malformed
// success bodies) is terminal.
type retryableError interface {
	Retryable() bool
}

// parseRetryAfter reads a Retry-After header in either the
// delta-seconds or the HTTP-date form.
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}
