package analyze

import (
	"math"
	"testing"
	"time"
)

// chunkBundles partitions the golden trace into n contiguous bundles,
// the shape of per-chunk (or per-period) partial results.
func chunkBundles(t *testing.T, bucket time.Duration, n int) []*Bundle {
	t.Helper()
	recs := goldenTrace(t)
	per := (len(recs) + n - 1) / n
	var out []*Bundle
	for lo := 0; lo < len(recs); lo += per {
		hi := min(lo+per, len(recs))
		b := NewBundle(bucket)
		for i := lo; i < hi; i++ {
			b.Observe(&recs[i])
		}
		out = append(out, b)
	}
	return out
}

// figureSurfaces renders every byte-exact figure surface of a bundle.
func figureSurfaces(t *testing.T, b *Bundle) map[string]string {
	t.Helper()
	return map[string]string{
		"Volume":   mustJSON(t, b.Volume.Result()),
		"Scale":    mustJSON(t, b.Scale.Result()),
		"Waits":    mustJSON(t, b.Waits.Result()),
		"Users":    mustJSON(t, b.Users.Result(50)),
		"Backfill": mustJSON(t, b.Backfill.Result()),
		"Timeline": mustJSON(t, b.Timeline.Result()),
	}
}

// TestTreeMergeMatchesLinearFold pins the tree-reduce parity contract:
// at every worker count and input count, TreeMerge must reproduce the
// linear fold's figure surfaces byte-exactly, and its float summary
// accumulators within rounding distance (their partial sums regroup).
func TestTreeMergeMatchesLinearFold(t *testing.T) {
	bucket := 6 * time.Hour
	for _, chunks := range []int{1, 2, 3, 7, 16} {
		bs := chunkBundles(t, bucket, chunks)
		linear := NewBundle(bucket)
		for _, b := range bs {
			linear.Merge(b)
		}
		want := figureSurfaces(t, linear)
		for _, workers := range []int{1, 2, 4, 8} {
			got := TreeMerge(bucket, bs, workers)
			if got.Records != linear.Records || got.Jobs != linear.Jobs {
				t.Fatalf("chunks=%d workers=%d: counters %d/%d != %d/%d",
					chunks, workers, got.Records, got.Jobs, linear.Records, linear.Jobs)
			}
			for name, surface := range figureSurfaces(t, got) {
				if surface != want[name] {
					t.Errorf("chunks=%d workers=%d: %s diverges from the linear fold", chunks, workers, name)
				}
			}
			if rel := relDiff(got.Reclaim.Result(), linear.Reclaim.Result()); rel > 1e-12 {
				t.Errorf("chunks=%d workers=%d: Reclaim off by %g relative", chunks, workers, rel)
			}
		}
	}
}

// TestTreeMergeLeavesInputsUnmutated pins the retry-safety contract: a
// combine task that fails and reruns must see its per-period bundles
// exactly as they were.
func TestTreeMergeLeavesInputsUnmutated(t *testing.T) {
	bucket := 6 * time.Hour
	bs := chunkBundles(t, bucket, 5)
	before := make([]string, len(bs))
	counts := make([]int64, len(bs))
	for i, b := range bs {
		before[i] = mustJSON(t, b.Timeline.Result())
		counts[i] = b.Records
	}
	first := TreeMerge(bucket, bs, 4)
	for i, b := range bs {
		if b.Records != counts[i] {
			t.Fatalf("input %d Records mutated: %d -> %d", i, counts[i], b.Records)
		}
		if got := mustJSON(t, b.Timeline.Result()); got != before[i] {
			t.Fatalf("input %d timeline mutated by TreeMerge", i)
		}
	}
	// A second pass over the same inputs reproduces the first.
	second := TreeMerge(bucket, bs, 4)
	if mustJSON(t, second.Timeline.Result()) != mustJSON(t, first.Timeline.Result()) {
		t.Fatal("re-running TreeMerge over the same inputs diverged")
	}
}

// TestShardSetMergeIntoNMatchesMergeInto pins that the parallel shard
// fold is indistinguishable from the sequential one at every width.
func TestShardSetMergeIntoNMatchesMergeInto(t *testing.T) {
	bucket := 6 * time.Hour
	recs := goldenTrace(t)
	build := func() *ShardSet {
		s := NewShardSet(bucket)
		const chunks = 9
		per := (len(recs) + chunks - 1) / chunks
		for c := 0; c*per < len(recs); c++ {
			sb := s.Shard(c)
			for i := c * per; i < min((c+1)*per, len(recs)); i++ {
				sb.Observe(&recs[i])
			}
		}
		return s
	}
	seq := NewBundle(bucket)
	build().MergeInto(seq)
	want := figureSurfaces(t, seq)
	for _, workers := range []int{2, 4, 8} {
		got := NewBundle(bucket)
		build().MergeIntoN(got, workers)
		if got.Records != seq.Records || got.Jobs != seq.Jobs {
			t.Fatalf("workers=%d: counters differ", workers)
		}
		for name, surface := range figureSurfaces(t, got) {
			if surface != want[name] {
				t.Errorf("workers=%d: %s diverges from MergeInto", workers, name)
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
