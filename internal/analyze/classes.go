package analyze

import (
	"slurmsight/internal/slurm"
	"slurmsight/internal/stats"
)

// ClassSummary aggregates one workload class (the simulator records the
// class in the Comment field; real sites commonly tag jobs the same way).
type ClassSummary struct {
	Class          string
	Jobs           int
	NodeHours      float64 // consumed capacity
	MedianWaitS    float64
	MedianNodes    float64
	FailedShare    float64 // failed/cancelled/node-fail/OOM share
	MedianUseRatio float64 // actual/requested walltime
	BackfillShare  float64
}

// summary condenses one class accumulator.
func (a *classAcc) summary(class string) ClassSummary {
	s := ClassSummary{
		Class:     class,
		Jobs:      a.jobs,
		NodeHours: a.nodeHours,
	}
	s.MedianWaitS, _ = stats.Quantile(a.waits, 0.5)
	s.MedianNodes, _ = stats.Quantile(a.nodes, 0.5)
	s.MedianUseRatio, _ = stats.Quantile(a.ratios, 0.5)
	if a.jobs > 0 {
		s.FailedShare = float64(a.bad) / float64(a.jobs)
	}
	if a.started > 0 {
		s.BackfillShare = float64(a.backfill) / float64(a.started)
	}
	return s
}

// PerClass breaks the trace down by workload class, sorted by consumed
// node-hours descending — the "who actually uses the machine, and how
// well" table behind the figures. It is a one-shot wrapper over
// ClassCollector.
func PerClass(jobs []slurm.Record) []ClassSummary {
	c := NewClassCollector()
	for i := range jobs {
		c.Observe(&jobs[i])
	}
	return c.Result()
}
