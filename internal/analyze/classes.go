package analyze

import (
	"sort"

	"slurmsight/internal/slurm"
	"slurmsight/internal/stats"
)

// ClassSummary aggregates one workload class (the simulator records the
// class in the Comment field; real sites commonly tag jobs the same way).
type ClassSummary struct {
	Class          string
	Jobs           int
	NodeHours      float64 // consumed capacity
	MedianWaitS    float64
	MedianNodes    float64
	FailedShare    float64 // failed/cancelled/node-fail/OOM share
	MedianUseRatio float64 // actual/requested walltime
	BackfillShare  float64
}

// PerClass breaks the trace down by workload class, sorted by consumed
// node-hours descending — the "who actually uses the machine, and how
// well" table behind the figures.
func PerClass(jobs []slurm.Record) []ClassSummary {
	type acc struct {
		jobs      int
		nodeHours float64
		waits     []float64
		nodes     []float64
		ratios    []float64
		bad       int
		backfill  int
		started   int
	}
	byClass := map[string]*acc{}
	for i := range jobs {
		r := &jobs[i]
		if r.IsStep() {
			continue
		}
		class := r.Comment
		if class == "" {
			class = "(untagged)"
		}
		a, ok := byClass[class]
		if !ok {
			a = &acc{}
			byClass[class] = a
		}
		a.jobs++
		a.nodes = append(a.nodes, float64(r.NNodes))
		switch r.State {
		case slurm.StateFailed, slurm.StateCancelled, slurm.StateNodeFail, slurm.StateOutOfMemory:
			a.bad++
		}
		if r.Start.IsZero() {
			continue
		}
		a.started++
		a.nodeHours += float64(r.NNodes) * r.Elapsed.Hours()
		if w, ok := r.WaitTime(); ok {
			a.waits = append(a.waits, w.Seconds())
		}
		if r.Timelimit > 0 {
			a.ratios = append(a.ratios, float64(r.Elapsed)/float64(r.Timelimit))
		}
		if r.Backfilled() {
			a.backfill++
		}
	}
	out := make([]ClassSummary, 0, len(byClass))
	for class, a := range byClass {
		s := ClassSummary{
			Class:     class,
			Jobs:      a.jobs,
			NodeHours: a.nodeHours,
		}
		s.MedianWaitS, _ = stats.Quantile(a.waits, 0.5)
		s.MedianNodes, _ = stats.Quantile(a.nodes, 0.5)
		s.MedianUseRatio, _ = stats.Quantile(a.ratios, 0.5)
		if a.jobs > 0 {
			s.FailedShare = float64(a.bad) / float64(a.jobs)
		}
		if a.started > 0 {
			s.BackfillShare = float64(a.backfill) / float64(a.started)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NodeHours != out[j].NodeHours {
			return out[i].NodeHours > out[j].NodeHours
		}
		return out[i].Class < out[j].Class
	})
	return out
}
