package analyze

import (
	"math"
	"testing"
	"time"

	"slurmsight/internal/slurm"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTimelineBasic(t *testing.T) {
	// One job: submitted at t0, waits 1 h, runs 2 h on 4 nodes.
	jobs := []slurm.Record{
		mkJob(1, "a", t0, time.Hour, 4, 3*time.Hour, 2*time.Hour, slurm.StateCompleted, false),
	}
	points := Timeline(jobs, time.Hour)
	if len(points) != 4 { // hours 0..3 (end exclusive boundary in hour 3)
		t.Fatalf("buckets = %d, want 4 (%+v)", len(points), points)
	}
	// Hour 0: queued the whole hour, nothing running.
	if !almostEq(points[0].QueueDepth, 1, 1e-9) || !almostEq(points[0].BusyNodes, 0, 1e-9) {
		t.Errorf("hour 0 = %+v", points[0])
	}
	if points[0].Submitted != 1 {
		t.Errorf("hour 0 submissions = %d", points[0].Submitted)
	}
	// Hours 1 and 2: 4 nodes busy, queue empty.
	for h := 1; h <= 2; h++ {
		if !almostEq(points[h].BusyNodes, 4, 1e-9) || !almostEq(points[h].QueueDepth, 0, 1e-9) {
			t.Errorf("hour %d = %+v", h, points[h])
		}
	}
	if points[1].Started != 1 {
		t.Errorf("hour 1 starts = %d", points[1].Started)
	}
}

func TestTimelinePartialBuckets(t *testing.T) {
	// Job runs 30 min on 8 nodes inside an hour bucket → mean 4 nodes.
	jobs := []slurm.Record{
		mkJob(1, "a", t0, 0, 8, time.Hour, 30*time.Minute, slurm.StateCompleted, false),
	}
	points := Timeline(jobs, time.Hour)
	if len(points) == 0 {
		t.Fatal("no buckets")
	}
	if !almostEq(points[0].BusyNodes, 4, 1e-9) {
		t.Errorf("partial bucket busy = %v, want 4", points[0].BusyNodes)
	}
}

func TestTimelineNeverStartedJob(t *testing.T) {
	// Cancelled while pending: contributes queue depth, never allocation.
	j := mkJob(1, "a", t0, -1, 4, time.Hour, 0, slurm.StateCancelled, false)
	j.Start = time.Time{}
	j.End = t0.Add(2 * time.Hour)
	points := Timeline([]slurm.Record{j}, time.Hour)
	if len(points) < 2 {
		t.Fatalf("buckets = %d", len(points))
	}
	for h := 0; h < 2; h++ {
		if !almostEq(points[h].QueueDepth, 1, 1e-9) {
			t.Errorf("hour %d queue = %v", h, points[h].QueueDepth)
		}
		if points[h].BusyNodes != 0 {
			t.Errorf("hour %d busy = %v", h, points[h].BusyNodes)
		}
	}
}

func TestTimelineOverlappingJobs(t *testing.T) {
	jobs := []slurm.Record{
		mkJob(1, "a", t0, 0, 2, 4*time.Hour, 4*time.Hour, slurm.StateCompleted, false),
		mkJob(2, "b", t0, 0, 3, 2*time.Hour, 2*time.Hour, slurm.StateCompleted, false),
	}
	points := Timeline(jobs, time.Hour)
	if !almostEq(points[0].BusyNodes, 5, 1e-9) {
		t.Errorf("hour 0 busy = %v, want 5", points[0].BusyNodes)
	}
	if !almostEq(points[3].BusyNodes, 2, 1e-9) {
		t.Errorf("hour 3 busy = %v, want 2", points[3].BusyNodes)
	}
}

func TestTimelineEmptyAndSteps(t *testing.T) {
	if Timeline(nil, time.Hour) != nil {
		t.Error("empty input should give nil")
	}
	step := slurm.Record{ID: slurm.NewJobID(1).WithStep(0), Submit: t0}
	if Timeline([]slurm.Record{step}, time.Hour) != nil {
		t.Error("steps alone should give nil")
	}
	// A zero bucket defaults rather than dividing by zero.
	jobs := []slurm.Record{
		mkJob(1, "a", t0, 0, 1, time.Hour, time.Hour, slurm.StateCompleted, false),
	}
	if pts := Timeline(jobs, 0); len(pts) == 0 {
		t.Error("zero bucket width should default to an hour")
	}
}

func TestSummarizeTimeline(t *testing.T) {
	jobs := []slurm.Record{
		mkJob(1, "a", t0, 0, 10, 2*time.Hour, 2*time.Hour, slurm.StateCompleted, false),
		mkJob(2, "b", t0.Add(time.Hour), time.Hour, 6, 2*time.Hour, time.Hour, slurm.StateCompleted, false),
	}
	points := Timeline(jobs, time.Hour)
	sum := SummarizeTimeline(points, 20)
	if sum.Buckets != len(points) {
		t.Errorf("Buckets = %d", sum.Buckets)
	}
	if sum.PeakBusyNodes < 10 || sum.PeakBusyNodes > 16 {
		t.Errorf("PeakBusyNodes = %v", sum.PeakBusyNodes)
	}
	if sum.MeanUtilization <= 0 || sum.MeanUtilization > 1 {
		t.Errorf("MeanUtilization = %v", sum.MeanUtilization)
	}
	if math.IsNaN(sum.MeanQueueDepth) {
		t.Error("NaN queue depth")
	}
	empty := SummarizeTimeline(nil, 20)
	if empty.Buckets != 0 || empty.MeanUtilization != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestThroughputByDay(t *testing.T) {
	jobs := []slurm.Record{
		mkJob(1, "a", t0, 0, 1, time.Hour, time.Hour, slurm.StateCompleted, false),
		mkJob(2, "a", t0.Add(2*time.Hour), 0, 1, time.Hour, time.Hour, slurm.StateCompleted, false),
		mkJob(3, "a", t0.AddDate(0, 0, 1), 0, 1, time.Hour, time.Hour, slurm.StateCompleted, false),
		mkJob(4, "a", t0, 0, 1, time.Hour, time.Hour, slurm.StateFailed, false),
	}
	tp := ThroughputByDay(jobs)
	d0 := t0.Format("2006-01-02")
	d1 := t0.AddDate(0, 0, 1).Format("2006-01-02")
	if tp[d0] != 2 {
		t.Errorf("day 0 throughput = %d, want 2 (failed excluded)", tp[d0])
	}
	if tp[d1] != 1 {
		t.Errorf("day 1 throughput = %d", tp[d1])
	}
}

// TestTimelineConservation checks the integral property: summed busy
// node-hours across buckets equals the jobs' node-hours.
func TestTimelineConservation(t *testing.T) {
	jobs := []slurm.Record{
		mkJob(1, "a", t0, 30*time.Minute, 7, 5*time.Hour, 3*time.Hour+17*time.Minute, slurm.StateCompleted, false),
		mkJob(2, "b", t0.Add(45*time.Minute), 2*time.Hour, 3, 6*time.Hour, 90*time.Minute, slurm.StateFailed, false),
	}
	points := Timeline(jobs, 10*time.Minute)
	var got float64
	for _, p := range points {
		got += p.BusyNodes * (10.0 / 60.0) // node-hours per bucket
	}
	want := 7*(3+17.0/60) + 3*1.5
	if !almostEq(got, want, 0.02) {
		t.Errorf("integrated node-hours = %v, want %v", got, want)
	}
}
