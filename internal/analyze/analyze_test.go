package analyze

import (
	"testing"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/sched"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

var t0 = time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)

func mkJob(id int64, user string, submit time.Time, waited time.Duration,
	nodes int64, limit, elapsed time.Duration, st slurm.State, backfill bool) slurm.Record {
	r := slurm.Record{
		ID: slurm.NewJobID(id), User: user, Submit: submit,
		NNodes: nodes, Timelimit: limit, State: st,
	}
	if st != slurm.StatePending && waited >= 0 {
		r.Start = submit.Add(waited)
		r.End = r.Start.Add(elapsed)
		r.Elapsed = elapsed
		if backfill {
			r.Flags = []string{slurm.FlagBackfill}
		} else {
			r.Flags = []string{slurm.FlagMain}
		}
	}
	return r
}

func fixedJobs() []slurm.Record {
	return []slurm.Record{
		mkJob(1, "alice", t0, time.Hour, 128, 4*time.Hour, 2*time.Hour, slurm.StateCompleted, false),
		mkJob(2, "alice", t0.Add(time.Hour), 30*time.Minute, 4, time.Hour, 10*time.Minute, slurm.StateCompleted, true),
		mkJob(3, "bob", t0.Add(2*time.Hour), 2*time.Hour, 1000, 12*time.Hour, 11*time.Hour, slurm.StateCompleted, false),
		mkJob(4, "bob", t0.Add(3*time.Hour), time.Minute, 2, time.Hour, 5*time.Minute, slurm.StateFailed, true),
		mkJob(5, "carol", t0.Add(4*time.Hour), 40*time.Hour, 1, 30*time.Minute, 30*time.Minute, slurm.StateTimeout, false),
	}
}

func TestJobStepVolume(t *testing.T) {
	recs := fixedJobs()
	// Two steps for job 1, one for job 2.
	recs = append(recs,
		slurm.Record{ID: slurm.NewJobID(1).WithBatch(), Submit: t0},
		slurm.Record{ID: slurm.NewJobID(1).WithStep(0), Submit: t0},
		slurm.Record{ID: slurm.NewJobID(2).WithStep(0), Submit: t0.Add(time.Hour)},
	)
	// And one job in 2023.
	recs = append(recs, mkJob(6, "dave", t0.AddDate(-1, 0, 0), time.Minute, 1, time.Hour, time.Minute, slurm.StateCompleted, false))
	vols := JobStepVolume(recs)
	if len(vols) != 2 {
		t.Fatalf("years = %d, want 2", len(vols))
	}
	if vols[0].Year != 2023 || vols[0].Jobs != 1 || vols[0].Steps != 0 {
		t.Errorf("2023 = %+v", vols[0])
	}
	if vols[1].Year != 2024 || vols[1].Jobs != 5 || vols[1].Steps != 3 {
		t.Errorf("2024 = %+v", vols[1])
	}
	if r := StepJobRatio(vols); r != 0.5 {
		t.Errorf("StepJobRatio = %v, want 0.5", r)
	}
	if StepJobRatio(nil) != 0 {
		t.Error("empty ratio should be 0")
	}
}

func TestJobStepVolumeCounted(t *testing.T) {
	jobs := fixedJobs()
	steps := []int{3, 4, 5, 6, 7}
	vols := JobStepVolumeCounted(jobs, steps)
	if len(vols) != 1 || vols[0].Jobs != 5 || vols[0].Steps != 25 {
		t.Errorf("vols = %+v", vols)
	}
}

func TestNodesVsElapsed(t *testing.T) {
	jobs := fixedJobs()
	// Add a never-started job and a step; both must be skipped.
	jobs = append(jobs,
		mkJob(9, "eve", t0, -1, 4, time.Hour, 0, slurm.StatePending, false),
		slurm.Record{ID: slurm.NewJobID(1).WithStep(0), Submit: t0, Elapsed: time.Hour},
	)
	pts := NodesVsElapsed(jobs)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	for _, p := range pts {
		if p.Nodes <= 0 || p.ElapsedSec <= 0 {
			t.Errorf("bad point %+v", p)
		}
	}
}

func TestWaitTimes(t *testing.T) {
	jobs := fixedJobs()
	never := mkJob(7, "eve", t0, -1, 1, time.Hour, 0, slurm.StateCancelled, false)
	never.Start = time.Time{}
	jobs = append(jobs, never)
	pts := WaitTimes(jobs)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5 (never-started skipped)", len(pts))
	}
	sum := SummarizeWaits(pts)
	if sum.PerState[slurm.StateCompleted].N != 3 {
		t.Errorf("completed waits = %d", sum.PerState[slurm.StateCompleted].N)
	}
	// carol waited 40 h = 144,000 s > 100 ks.
	if sum.LongWaits != 0.2 {
		t.Errorf("LongWaits = %v, want 0.2", sum.LongWaits)
	}
	if sum.P50 <= 0 || sum.P90 < sum.P50 || sum.P99 < sum.P90 {
		t.Errorf("quantiles not ordered: %+v", sum)
	}
}

func TestStatesPerUser(t *testing.T) {
	us := StatesPerUser(fixedJobs(), 0)
	if len(us) != 3 {
		t.Fatalf("users = %d", len(us))
	}
	if us[0].Total < us[1].Total || us[1].Total < us[2].Total {
		t.Error("not sorted by volume")
	}
	var bob *UserStates
	for i := range us {
		if us[i].User == "bob" {
			bob = &us[i]
		}
	}
	if bob == nil || bob.Counts[slurm.StateFailed] != 1 || bob.Total != 2 {
		t.Errorf("bob = %+v", bob)
	}
	if got := bob.FailedShare(); got != 0.5 {
		t.Errorf("bob FailedShare = %v", got)
	}
	top := StatesPerUser(fixedJobs(), 2)
	if len(top) != 2 {
		t.Errorf("topN not applied: %d", len(top))
	}
	if (&UserStates{}).FailedShare() != 0 {
		t.Error("empty user share should be 0")
	}
}

func TestRequestedVsActualAndSummary(t *testing.T) {
	pts := RequestedVsActual(fixedJobs())
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	sum := SummarizeBackfill(pts)
	if sum.Jobs != 5 {
		t.Errorf("Jobs = %d", sum.Jobs)
	}
	if sum.BackfilledShare != 0.4 {
		t.Errorf("BackfilledShare = %v, want 0.4", sum.BackfilledShare)
	}
	// Jobs 1 (0.5), 2 (0.167), 4 (0.083) use < 75% of request.
	if sum.OverestimateShare != 0.6 {
		t.Errorf("OverestimateShare = %v, want 0.6", sum.OverestimateShare)
	}
	if sum.MedianActualBackfilled >= sum.MedianActualRegular {
		t.Errorf("backfilled jobs should skew short: %v vs %v",
			sum.MedianActualBackfilled, sum.MedianActualRegular)
	}
	if SummarizeBackfill(nil).Jobs != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestReclaimableNodeHours(t *testing.T) {
	got := ReclaimableNodeHours(fixedJobs())
	// job1: 128×2h = 256; job2: 4×50min; job3: 1000×1h = 1000;
	// job4: 2×55min; job5: slack 0.
	want := 128*2.0 + 4*(50.0/60) + 1000*1.0 + 2*(55.0/60)
	if diff := got - want; diff > 0.01 || diff < -0.01 {
		t.Errorf("ReclaimableNodeHours = %v, want %v", got, want)
	}
}

func TestSummarizeUsers(t *testing.T) {
	us := StatesPerUser(fixedJobs(), 0)
	sum := SummarizeUsers(us)
	if sum.Users != 3 {
		t.Errorf("Users = %d", sum.Users)
	}
	if sum.TopDecileFailures <= 0 || sum.TopDecileFailures > 1 {
		t.Errorf("TopDecileFailures = %v", sum.TopDecileFailures)
	}
	if SummarizeUsers(nil).Users != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestSummarizeScale(t *testing.T) {
	sum := SummarizeScale(NodesVsElapsed(fixedJobs()))
	if sum.Jobs != 5 {
		t.Errorf("Jobs = %d", sum.Jobs)
	}
	if sum.SmallShortShare != 0.6 { // jobs 2, 4, and 5
		t.Errorf("SmallShortShare = %v", sum.SmallShortShare)
	}
	if sum.LargeLongShare != 0.2 { // job 3
		t.Errorf("LargeLongShare = %v", sum.LargeLongShare)
	}
	if SummarizeScale(nil).Jobs != 0 {
		t.Error("empty summary should be zero")
	}
}

// TestFrontierAndesComparisonShape runs both simulated systems end to end
// and asserts the portability contrasts the paper reports in §4.3.
func TestFrontierAndesComparisonShape(t *testing.T) {
	gen := func(p tracegen.Profile, sys *cluster.System, seed int64) []slurm.Record {
		p.JobsPerDay, p.Users = 120, 60
		reqs, err := tracegen.Generate([]tracegen.Phase{{
			Profile: p, Start: t0, End: t0.AddDate(0, 0, 21),
		}}, seed)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := sched.New(sched.DefaultConfig(sys))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(reqs, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Jobs
	}
	frontier := gen(tracegen.FrontierProfile(), cluster.Frontier(), 31)
	andes := gen(tracegen.AndesProfile(), cluster.Andes(), 32)
	cmp := CompareSystems("frontier", frontier, "andes", andes)

	// Figure 7 vs 3: Andes concentrates small, short jobs.
	if cmp.ScaleB.MedianNodes > cmp.ScaleA.MedianNodes {
		t.Errorf("Andes median nodes %.1f > Frontier %.1f", cmp.ScaleB.MedianNodes, cmp.ScaleA.MedianNodes)
	}
	if cmp.ScaleB.SmallShortShare <= cmp.ScaleA.SmallShortShare {
		t.Errorf("Andes small-short share %.2f ≤ Frontier %.2f",
			cmp.ScaleB.SmallShortShare, cmp.ScaleA.SmallShortShare)
	}
	if cmp.ScaleA.LargeLongShare <= cmp.ScaleB.LargeLongShare {
		t.Errorf("Frontier large-long share %.3f ≤ Andes %.3f",
			cmp.ScaleA.LargeLongShare, cmp.ScaleB.LargeLongShare)
	}
	// Figure 8 vs 5: Andes fails less, more uniformly.
	if cmp.UsersB.MeanFailedShare >= cmp.UsersA.MeanFailedShare {
		t.Errorf("Andes mean failed share %.3f ≥ Frontier %.3f",
			cmp.UsersB.MeanFailedShare, cmp.UsersA.MeanFailedShare)
	}
	if cmp.UsersB.StdFailedShare >= cmp.UsersA.StdFailedShare {
		t.Errorf("Andes failure variance %.3f ≥ Frontier %.3f",
			cmp.UsersB.StdFailedShare, cmp.UsersA.StdFailedShare)
	}
	// Figure 9 vs 6: over-estimation on both; tighter on Andes.
	if cmp.BackfillA.OverestimateShare < 0.3 || cmp.BackfillB.OverestimateShare < 0.3 {
		t.Errorf("over-estimation should be systematic on both: %.2f / %.2f",
			cmp.BackfillA.OverestimateShare, cmp.BackfillB.OverestimateShare)
	}
	if cmp.BackfillB.MedianUseRatio <= cmp.BackfillA.MedianUseRatio {
		t.Errorf("Andes use ratio %.2f ≤ Frontier %.2f; want tighter estimates on Andes",
			cmp.BackfillB.MedianUseRatio, cmp.BackfillA.MedianUseRatio)
	}
}
