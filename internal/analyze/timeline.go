package analyze

import (
	"sort"
	"time"

	"slurmsight/internal/slurm"
)

// TimelinePoint is one bucket of a system-load timeline.
type TimelinePoint struct {
	At         time.Time
	BusyNodes  float64 // node allocation averaged over the bucket
	QueueDepth float64 // pending jobs averaged over the bucket
	Started    int     // jobs dispatched in the bucket
	Submitted  int     // jobs submitted in the bucket
}

// tlEdge is one state-change event in the load reconstruction.
type tlEdge struct {
	at    time.Time
	nodes int64 // ± allocation
	queue int   // ± queue depth
	start bool
	sub   bool
}

// TimelineCollector folds job records into load-timeline edges. Unlike
// the scatter collectors its state is O(jobs) edges rather than bounded
// figure state: the sweep needs every lifecycle event, so this is the
// one place the streaming pipeline still collects (see DESIGN.md §5).
// Result runs the bucket sweep and caches it until the next Observe or
// Merge.
type TimelineCollector struct {
	bucket time.Duration
	edges  []tlEdge
	lo, hi time.Time
	cached []TimelinePoint
	dirty  bool
}

// NewTimelineCollector returns an empty collector with the given bucket
// width (≤ 0 defaults to one hour).
func NewTimelineCollector(bucket time.Duration) *TimelineCollector {
	if bucket <= 0 {
		bucket = time.Hour
	}
	return &TimelineCollector{bucket: bucket}
}

// Bucket returns the collector's bucket width.
func (c *TimelineCollector) Bucket() time.Duration { return c.bucket }

// Observe implements Collector; steps and submit-less records are
// skipped.
func (c *TimelineCollector) Observe(r *slurm.Record) {
	if r.IsStep() || r.Submit.IsZero() {
		return
	}
	c.dirty = true
	if c.lo.IsZero() || r.Submit.Before(c.lo) {
		c.lo = r.Submit
	}
	endOfLife := r.End
	if endOfLife.IsZero() {
		endOfLife = r.Submit
	}
	if endOfLife.After(c.hi) {
		c.hi = endOfLife
	}
	c.edges = append(c.edges, tlEdge{at: r.Submit, queue: +1, sub: true})
	if r.Start.IsZero() {
		// Never ran: leaves the queue at its end (cancellation).
		c.edges = append(c.edges, tlEdge{at: endOfLife, queue: -1})
		return
	}
	c.edges = append(c.edges, tlEdge{at: r.Start, queue: -1, nodes: +r.NNodes, start: true})
	c.edges = append(c.edges, tlEdge{at: r.End, nodes: -r.NNodes})
}

// Merge appends another collector's edges (in their observation order)
// and widens the time extent.
func (c *TimelineCollector) Merge(o *TimelineCollector) {
	if len(o.edges) == 0 {
		return
	}
	c.dirty = true
	c.edges = append(c.edges, o.edges...)
	if c.lo.IsZero() || (!o.lo.IsZero() && o.lo.Before(c.lo)) {
		c.lo = o.lo
	}
	if o.hi.After(c.hi) {
		c.hi = o.hi
	}
}

// Result runs the bucket sweep over the collected edges. The slice is
// cached across calls; callers must not modify it.
func (c *TimelineCollector) Result() []TimelinePoint {
	if !c.dirty {
		return c.cached
	}
	c.dirty = false
	c.cached = c.sweep()
	return c.cached
}

func (c *TimelineCollector) sweep() []TimelinePoint {
	edges, lo, hi, bucket := c.edges, c.lo, c.hi, c.bucket
	if len(edges) == 0 || !lo.Before(hi) {
		return nil
	}
	sort.SliceStable(edges, func(a, b int) bool { return edges[a].at.Before(edges[b].at) })

	nBuckets := int(hi.Sub(lo)/bucket) + 1
	points := make([]TimelinePoint, nBuckets)
	for i := range points {
		points[i].At = lo.Add(time.Duration(i) * bucket)
	}
	// Sweep: integrate busy nodes and queue depth across bucket
	// boundaries.
	var busy int64
	var queue int
	cursor := lo
	idx := 0
	accumulate := func(until time.Time) {
		for cursor.Before(until) {
			b := int(cursor.Sub(lo) / bucket)
			if b >= nBuckets {
				return
			}
			bucketEnd := lo.Add(time.Duration(b+1) * bucket)
			segEnd := until
			if bucketEnd.Before(segEnd) {
				segEnd = bucketEnd
			}
			frac := float64(segEnd.Sub(cursor)) / float64(bucket)
			points[b].BusyNodes += float64(busy) * frac
			points[b].QueueDepth += float64(queue) * frac
			cursor = segEnd
		}
	}
	for idx < len(edges) {
		accumulate(edges[idx].at)
		at := edges[idx].at
		for idx < len(edges) && edges[idx].at.Equal(at) {
			e := edges[idx]
			busy += e.nodes
			queue += e.queue
			b := int(at.Sub(lo) / bucket)
			if b >= 0 && b < nBuckets {
				if e.start {
					points[b].Started++
				}
				if e.sub {
					points[b].Submitted++
				}
			}
			idx++
		}
	}
	accumulate(hi)
	return points
}

// Timeline reconstructs system load from job records: for each bucket of
// the given width it reports average allocated nodes, average queue depth
// (submitted-but-not-started jobs), and dispatch/submission counts. It is
// the utilization view sysadmins read next to the paper's figures, and a
// one-shot wrapper over TimelineCollector.
func Timeline(jobs []slurm.Record, bucket time.Duration) []TimelinePoint {
	c := NewTimelineCollector(bucket)
	for i := range jobs {
		c.Observe(&jobs[i])
	}
	return c.Result()
}

// UtilizationSummary condenses a timeline against a system capacity.
type UtilizationSummary struct {
	Buckets         int
	MeanBusyNodes   float64
	PeakBusyNodes   float64
	MeanUtilization float64 // vs. capacity
	PeakQueueDepth  float64
	MeanQueueDepth  float64
}

// SummarizeTimeline computes the load summary for a node capacity.
func SummarizeTimeline(points []TimelinePoint, capacityNodes int) UtilizationSummary {
	out := UtilizationSummary{Buckets: len(points)}
	if len(points) == 0 || capacityNodes <= 0 {
		return out
	}
	var busySum, queueSum float64
	for _, p := range points {
		busySum += p.BusyNodes
		queueSum += p.QueueDepth
		if p.BusyNodes > out.PeakBusyNodes {
			out.PeakBusyNodes = p.BusyNodes
		}
		if p.QueueDepth > out.PeakQueueDepth {
			out.PeakQueueDepth = p.QueueDepth
		}
	}
	out.MeanBusyNodes = busySum / float64(len(points))
	out.MeanQueueDepth = queueSum / float64(len(points))
	out.MeanUtilization = out.MeanBusyNodes / float64(capacityNodes)
	return out
}

// ThroughputByDay counts completed jobs per calendar day — the
// high-turnover view relevant to Andes-style systems.
func ThroughputByDay(jobs []slurm.Record) map[string]int {
	out := map[string]int{}
	for i := range jobs {
		r := &jobs[i]
		if r.IsStep() || r.End.IsZero() || !r.State.Success() {
			continue
		}
		out[r.End.UTC().Format("2006-01-02")]++
	}
	return out
}
