package analyze

import (
	"math"
	"sort"

	"slurmsight/internal/slurm"
	"slurmsight/internal/stats"
)

// WaitSummary quantifies the Figure 4 phenomena: per-state wait
// distributions and the long-tail mass.
type WaitSummary struct {
	PerState  map[slurm.State]stats.Summary
	P50, P90  float64 // seconds, across all states
	P99       float64
	LongWaits float64 // fraction of waits above 100,000 s (the paper's threshold)
}

// SummarizeWaits computes the Figure 4 summary.
func SummarizeWaits(points []WaitPoint) WaitSummary {
	per := map[slurm.State][]float64{}
	var all []float64
	for _, p := range points {
		per[p.State] = append(per[p.State], p.WaitSec)
		all = append(all, p.WaitSec)
	}
	out := WaitSummary{PerState: map[slurm.State]stats.Summary{}}
	for st, xs := range per {
		if s, err := stats.Summarize(xs); err == nil {
			out.PerState[st] = s
		}
	}
	if len(all) > 0 {
		qs, _ := stats.Quantiles(all, 0.5, 0.9, 0.99)
		out.P50, out.P90, out.P99 = qs[0], qs[1], qs[2]
		long := 0
		for _, w := range all {
			if w > 100_000 {
				long++
			}
		}
		out.LongWaits = float64(long) / float64(len(all))
	}
	return out
}

// BackfillSummary quantifies the Figure 6/9 phenomena.
type BackfillSummary struct {
	Jobs              int
	BackfilledShare   float64 // fraction of started jobs that backfilled
	OverestimateShare float64 // jobs using < 75% of their request
	MeanUseRatio      float64 // mean actual/requested
	MedianUseRatio    float64
	// Median actual runtimes split by scheduling path: backfilled jobs
	// skew short (the paper's key backfill observation).
	MedianActualBackfilled float64
	MedianActualRegular    float64
}

// ReclaimableNodeHours sums nodes·(requested − actual) over started jobs —
// the capacity a perfect walltime predictor would hand back to the
// scheduler, grounding the paper's time-reclamation recommendation. It is
// a one-shot wrapper over ReclaimableCollector.
func ReclaimableNodeHours(jobs []slurm.Record) float64 {
	c := NewReclaimableCollector()
	for i := range jobs {
		c.Observe(&jobs[i])
	}
	return c.Result()
}

// SummarizeBackfill computes the Figure 6/9 summary.
func SummarizeBackfill(points []BackfillPoint) BackfillSummary {
	out := BackfillSummary{Jobs: len(points)}
	if len(points) == 0 {
		return out
	}
	var ratios, bf, reg []float64
	nBackfilled, nOver := 0, 0
	for _, p := range points {
		if p.RequestedSec <= 0 {
			continue
		}
		ratio := p.ActualSec / p.RequestedSec
		ratios = append(ratios, ratio)
		if ratio < 0.75 {
			nOver++
		}
		if p.Backfilled {
			nBackfilled++
			bf = append(bf, p.ActualSec)
		} else {
			reg = append(reg, p.ActualSec)
		}
	}
	out.BackfilledShare = float64(nBackfilled) / float64(len(points))
	out.OverestimateShare = float64(nOver) / float64(len(points))
	if s, err := stats.Summarize(ratios); err == nil {
		out.MeanUseRatio, out.MedianUseRatio = s.Mean, s.Median
	}
	if m, err := stats.Quantile(bf, 0.5); err == nil {
		out.MedianActualBackfilled = m
	}
	if m, err := stats.Quantile(reg, 0.5); err == nil {
		out.MedianActualRegular = m
	}
	return out
}

// UserBehaviorSummary quantifies the Figure 5/8 contrasts: how failure
// mass concentrates across users.
type UserBehaviorSummary struct {
	Users             int
	MeanFailedShare   float64
	StdFailedShare    float64 // cross-user variance: high on Frontier, low on Andes
	TopDecileFailures float64 // share of all failures owned by the top 10% of failing users
}

// SummarizeUsers computes the Figure 5/8 summary.
func SummarizeUsers(us []UserStates) UserBehaviorSummary {
	out := UserBehaviorSummary{Users: len(us)}
	if len(us) == 0 {
		return out
	}
	shares := make([]float64, len(us))
	failures := make([]float64, len(us))
	totalFailures := 0.0
	for i := range us {
		shares[i] = us[i].FailedShare()
		f := float64(us[i].Counts[slurm.StateFailed] + us[i].Counts[slurm.StateCancelled] +
			us[i].Counts[slurm.StateNodeFail] + us[i].Counts[slurm.StateOutOfMemory])
		failures[i] = f
		totalFailures += f
	}
	if s, err := stats.Summarize(shares); err == nil {
		out.MeanFailedShare, out.StdFailedShare = s.Mean, s.Std
	}
	if totalFailures > 0 {
		sorted := append([]float64(nil), failures...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		top := int(math.Ceil(float64(len(sorted)) / 10))
		sum := 0.0
		for _, f := range sorted[:top] {
			sum += f
		}
		out.TopDecileFailures = sum / totalFailures
	}
	return out
}

// ScaleSummary quantifies the Figure 3/7 contrast between a capability
// system (Frontier) and a throughput system (Andes).
type ScaleSummary struct {
	Jobs             int
	MedianNodes      float64
	MedianElapsedSec float64
	SmallShortShare  float64 // ≤ 4 nodes and < 2 h
	LargeLongShare   float64 // ≥ 1000 nodes and ≥ 6 h
	NodeElapsedRho   float64 // Spearman rank correlation
}

// SummarizeScale computes the Figure 3/7 summary.
func SummarizeScale(points []NodesElapsedPoint) ScaleSummary {
	out := ScaleSummary{Jobs: len(points)}
	if len(points) == 0 {
		return out
	}
	nodes := make([]float64, len(points))
	elapsed := make([]float64, len(points))
	smallShort, largeLong := 0, 0
	for i, p := range points {
		nodes[i] = float64(p.Nodes)
		elapsed[i] = p.ElapsedSec
		if p.Nodes <= 4 && p.ElapsedSec < 7200 {
			smallShort++
		}
		if p.Nodes >= 1000 && p.ElapsedSec >= 6*3600 {
			largeLong++
		}
	}
	out.MedianNodes, _ = stats.Quantile(nodes, 0.5)
	out.MedianElapsedSec, _ = stats.Quantile(elapsed, 0.5)
	out.SmallShortShare = float64(smallShort) / float64(len(points))
	out.LargeLongShare = float64(largeLong) / float64(len(points))
	out.NodeElapsedRho, _ = stats.Spearman(nodes, elapsed)
	return out
}

// SystemComparison pairs two systems' summaries — the §4.3 portability
// analysis (and the future-work federated analytics hook).
type SystemComparison struct {
	NameA, NameB string
	ScaleA       ScaleSummary
	ScaleB       ScaleSummary
	UsersA       UserBehaviorSummary
	UsersB       UserBehaviorSummary
	BackfillA    BackfillSummary
	BackfillB    BackfillSummary
}

// CompareSystems computes the full cross-system contrast from two systems'
// job records.
func CompareSystems(nameA string, jobsA []slurm.Record, nameB string, jobsB []slurm.Record) SystemComparison {
	return SystemComparison{
		NameA:     nameA,
		NameB:     nameB,
		ScaleA:    SummarizeScale(NodesVsElapsed(jobsA)),
		ScaleB:    SummarizeScale(NodesVsElapsed(jobsB)),
		UsersA:    SummarizeUsers(StatesPerUser(jobsA, 0)),
		UsersB:    SummarizeUsers(StatesPerUser(jobsB, 0)),
		BackfillA: SummarizeBackfill(RequestedVsActual(jobsA)),
		BackfillB: SummarizeBackfill(RequestedVsActual(jobsB)),
	}
}
