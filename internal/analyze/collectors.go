package analyze

import (
	"context"
	"sort"
	"time"

	"slurmsight/internal/obs"
	"slurmsight/internal/slurm"
)

// Collector is the single-pass analysis contract: an aggregation that
// folds one record at a time. A streaming producer (curate, sacct.Scan)
// drives every figure's collector from one pass over the records, so
// peak memory is bounded by figure state rather than trace length.
// Observe must copy anything it retains — the record may alias producer
// scratch that is reused immediately after the call returns.
type Collector interface {
	Observe(r *slurm.Record)
}

// Collect drains a record stream into a fresh Bundle — the
// figure-on-demand path: one scan produces every figure's aggregation.
// bucket sets the timeline resolution (≤ 0 defaults to one hour).
func Collect(seq slurm.RecordSeq, bucket time.Duration) (*Bundle, error) {
	return CollectCtx(context.Background(), seq, bucket)
}

// CollectCtx is Collect under a request context: when ctx carries an
// active obs span, the pass reports itself as an "analyze-collect"
// child span carrying the observed row count — the serving plane's
// per-request attribution for figure recomputation cost.
func CollectCtx(ctx context.Context, seq slurm.RecordSeq, bucket time.Duration) (*Bundle, error) {
	b := NewBundle(bucket)
	if sp := obs.SpanFromContext(ctx).Child("analyze-collect"); sp != nil {
		var rows int64
		counted := slurm.RecordSeq(func(yield func(*slurm.Record, error) bool) {
			seq(func(r *slurm.Record, err error) bool {
				if err == nil {
					rows++
				}
				return yield(r, err)
			})
		})
		err := FanOut(counted, b)
		sp.SetAttrInt("rows", rows)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			return nil, err
		}
		sp.End()
		return b, nil
	}
	if err := FanOut(seq, b); err != nil {
		return nil, err
	}
	return b, nil
}

// FanOut drains a record stream into every collector. Terminal stream
// errors stop the pass and are returned; the collectors keep whatever
// they saw before the failure.
func FanOut(seq slurm.RecordSeq, cs ...Collector) error {
	for r, err := range seq {
		if err != nil {
			return err
		}
		for _, c := range cs {
			c.Observe(r)
		}
	}
	return nil
}

// VolumeCollector folds the Figure 1 per-year job/step counts.
type VolumeCollector struct {
	byYear map[int]*VolumeByYear
}

// NewVolumeCollector returns an empty Figure 1 collector.
func NewVolumeCollector() *VolumeCollector {
	return &VolumeCollector{byYear: map[int]*VolumeByYear{}}
}

// Observe implements Collector over the full record mix (jobs + steps).
func (c *VolumeCollector) Observe(r *slurm.Record) {
	y := r.Year()
	v, ok := c.byYear[y]
	if !ok {
		v = &VolumeByYear{Year: y}
		c.byYear[y] = v
	}
	if r.IsStep() {
		v.Steps++
	} else {
		v.Jobs++
	}
}

// Merge folds another collector's counts into this one.
func (c *VolumeCollector) Merge(o *VolumeCollector) {
	for y, ov := range o.byYear {
		v, ok := c.byYear[y]
		if !ok {
			v = &VolumeByYear{Year: y}
			c.byYear[y] = v
		}
		v.Jobs += ov.Jobs
		v.Steps += ov.Steps
	}
}

// Result returns the per-year volumes in chronological order.
func (c *VolumeCollector) Result() []VolumeByYear {
	out := make([]VolumeByYear, 0, len(c.byYear))
	for _, v := range c.byYear {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Year < out[j].Year })
	return out
}

// ScaleCollector folds the Figure 3/7 nodes-versus-elapsed scatter.
type ScaleCollector struct {
	points []NodesElapsedPoint
}

// NewScaleCollector returns an empty Figure 3/7 collector.
func NewScaleCollector() *ScaleCollector { return &ScaleCollector{} }

// Observe implements Collector; steps and never-started jobs are skipped.
func (c *ScaleCollector) Observe(r *slurm.Record) {
	if r.IsStep() || r.Start.IsZero() || r.Elapsed <= 0 {
		return
	}
	c.points = append(c.points, NodesElapsedPoint{
		Nodes:      r.NNodes,
		ElapsedSec: r.Elapsed.Seconds(),
		State:      r.State,
	})
}

// Merge appends another collector's points, preserving their order.
func (c *ScaleCollector) Merge(o *ScaleCollector) {
	c.points = append(c.points, o.points...)
}

// Result returns the scatter points in observation order.
func (c *ScaleCollector) Result() []NodesElapsedPoint { return c.points }

// WaitCollector folds the Figure 4 queue-wait scatter.
type WaitCollector struct {
	points []WaitPoint
}

// NewWaitCollector returns an empty Figure 4 collector.
func NewWaitCollector() *WaitCollector { return &WaitCollector{} }

// Observe implements Collector; steps and never-started jobs are skipped.
func (c *WaitCollector) Observe(r *slurm.Record) {
	if r.IsStep() {
		return
	}
	w, ok := r.WaitTime()
	if !ok {
		return
	}
	c.points = append(c.points, WaitPoint{Submit: r.Submit, WaitSec: w.Seconds(), State: r.State})
}

// Merge appends another collector's points, preserving their order.
func (c *WaitCollector) Merge(o *WaitCollector) {
	c.points = append(c.points, o.points...)
}

// Result returns the wait points in observation order.
func (c *WaitCollector) Result() []WaitPoint { return c.points }

// UserStatesCollector folds the Figure 5/8 per-user terminal-state mix.
type UserStatesCollector struct {
	byUser map[string]*UserStates
}

// NewUserStatesCollector returns an empty Figure 5/8 collector.
func NewUserStatesCollector() *UserStatesCollector {
	return &UserStatesCollector{byUser: map[string]*UserStates{}}
}

// Observe implements Collector; steps are skipped.
func (c *UserStatesCollector) Observe(r *slurm.Record) {
	if r.IsStep() {
		return
	}
	u, ok := c.byUser[r.User]
	if !ok {
		u = &UserStates{User: r.User, Counts: map[slurm.State]int{}}
		c.byUser[r.User] = u
	}
	u.Counts[r.State]++
	u.Total++
}

// Merge folds another collector's per-user counts into this one.
func (c *UserStatesCollector) Merge(o *UserStatesCollector) {
	for user, ou := range o.byUser {
		u, ok := c.byUser[user]
		if !ok {
			u = &UserStates{User: user, Counts: map[slurm.State]int{}}
			c.byUser[user] = u
		}
		for st, n := range ou.Counts {
			u.Counts[st] += n
		}
		u.Total += ou.Total
	}
}

// Result returns users sorted by job count descending (ties by name);
// topN ≤ 0 keeps every user.
func (c *UserStatesCollector) Result(topN int) []UserStates {
	out := make([]UserStates, 0, len(c.byUser))
	for _, u := range c.byUser {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].User < out[j].User
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// BackfillCollector folds the Figure 6/9 requested-versus-actual scatter.
type BackfillCollector struct {
	points []BackfillPoint
}

// NewBackfillCollector returns an empty Figure 6/9 collector.
func NewBackfillCollector() *BackfillCollector { return &BackfillCollector{} }

// Observe implements Collector; steps, never-started jobs, and jobs
// without a walltime request are skipped.
func (c *BackfillCollector) Observe(r *slurm.Record) {
	if r.IsStep() || r.Start.IsZero() || r.Timelimit <= 0 {
		return
	}
	c.points = append(c.points, BackfillPoint{
		RequestedSec: r.Timelimit.Seconds(),
		ActualSec:    r.Elapsed.Seconds(),
		Backfilled:   r.Backfilled(),
		State:        r.State,
	})
}

// Merge appends another collector's points, preserving their order.
func (c *BackfillCollector) Merge(o *BackfillCollector) {
	c.points = append(c.points, o.points...)
}

// Result returns the scatter points in observation order.
func (c *BackfillCollector) Result() []BackfillPoint { return c.points }

// ReclaimableCollector folds the reclaimable node-hours sum.
type ReclaimableCollector struct {
	total float64
}

// NewReclaimableCollector returns an empty reclaimable-hours collector.
func NewReclaimableCollector() *ReclaimableCollector { return &ReclaimableCollector{} }

// Observe implements Collector; steps and never-started jobs are skipped.
func (c *ReclaimableCollector) Observe(r *slurm.Record) {
	if r.IsStep() || r.Start.IsZero() {
		return
	}
	if slack := r.WalltimeSlack(); slack > 0 {
		c.total += float64(r.NNodes) * slack.Hours()
	}
}

// Merge adds another collector's partial sum.
func (c *ReclaimableCollector) Merge(o *ReclaimableCollector) { c.total += o.total }

// Result returns nodes·(requested − actual) summed over started jobs.
func (c *ReclaimableCollector) Result() float64 { return c.total }

// ClassCollector folds the per-workload-class breakdown.
type ClassCollector struct {
	byClass map[string]*classAcc
}

type classAcc struct {
	jobs      int
	nodeHours float64
	waits     []float64
	nodes     []float64
	ratios    []float64
	bad       int
	backfill  int
	started   int
}

// NewClassCollector returns an empty per-class collector.
func NewClassCollector() *ClassCollector {
	return &ClassCollector{byClass: map[string]*classAcc{}}
}

// Observe implements Collector; steps are skipped.
func (c *ClassCollector) Observe(r *slurm.Record) {
	if r.IsStep() {
		return
	}
	class := r.Comment
	if class == "" {
		class = "(untagged)"
	}
	a, ok := c.byClass[class]
	if !ok {
		a = &classAcc{}
		c.byClass[class] = a
	}
	a.jobs++
	a.nodes = append(a.nodes, float64(r.NNodes))
	switch r.State {
	case slurm.StateFailed, slurm.StateCancelled, slurm.StateNodeFail, slurm.StateOutOfMemory:
		a.bad++
	}
	if r.Start.IsZero() {
		return
	}
	a.started++
	a.nodeHours += float64(r.NNodes) * r.Elapsed.Hours()
	if w, ok := r.WaitTime(); ok {
		a.waits = append(a.waits, w.Seconds())
	}
	if r.Timelimit > 0 {
		a.ratios = append(a.ratios, float64(r.Elapsed)/float64(r.Timelimit))
	}
	if r.Backfilled() {
		a.backfill++
	}
}

// Merge folds another collector's accumulators into this one, appending
// sample slices in the other's observation order.
func (c *ClassCollector) Merge(o *ClassCollector) {
	for class, oa := range o.byClass {
		a, ok := c.byClass[class]
		if !ok {
			a = &classAcc{}
			c.byClass[class] = a
		}
		a.jobs += oa.jobs
		a.nodeHours += oa.nodeHours
		a.waits = append(a.waits, oa.waits...)
		a.nodes = append(a.nodes, oa.nodes...)
		a.ratios = append(a.ratios, oa.ratios...)
		a.bad += oa.bad
		a.backfill += oa.backfill
		a.started += oa.started
	}
}

// Result returns class summaries sorted by consumed node-hours
// descending (ties by class name).
func (c *ClassCollector) Result() []ClassSummary {
	out := make([]ClassSummary, 0, len(c.byClass))
	for class, a := range c.byClass {
		out = append(out, a.summary(class))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NodeHours != out[j].NodeHours {
			return out[i].NodeHours > out[j].NodeHours
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// Bundle groups one collector per figure plus the summary computations,
// so a single pass over a record stream produces everything the
// workflow's analysis stage needs. Bundles built from independent
// partitions of a trace (e.g. per-period curate streams) combine with
// Merge; merging in partition order keeps point ordering identical to a
// one-pass scan of the concatenated partitions.
type Bundle struct {
	Records int64 // records observed (jobs + steps)
	Jobs    int64 // job-level records observed

	Volume   *VolumeCollector
	Scale    *ScaleCollector
	Waits    *WaitCollector
	Users    *UserStatesCollector
	Backfill *BackfillCollector
	Reclaim  *ReclaimableCollector
	Timeline *TimelineCollector
	Classes  *ClassCollector

	observed  *obs.Counter   // records fanned out, nil when uninstrumented
	mergeHist *obs.Histogram // collector merge wall time
}

// Instrument points the bundle at a metrics registry: Observe counts
// records under analyze_records_observed_total and Merge times the
// collector fold into analyze_merge_seconds. A nil registry (or never
// calling Instrument) leaves the bundle unmetered at zero cost.
func (b *Bundle) Instrument(m *obs.Registry) {
	if m == nil {
		return
	}
	b.observed = m.Counter("analyze_records_observed_total")
	b.mergeHist = m.Histogram("analyze_merge_seconds", obs.LatencyBuckets)
}

// NewBundle returns a bundle with every collector empty. bucket sets the
// timeline resolution (≤ 0 defaults to one hour).
func NewBundle(bucket time.Duration) *Bundle {
	return &Bundle{
		Volume:   NewVolumeCollector(),
		Scale:    NewScaleCollector(),
		Waits:    NewWaitCollector(),
		Users:    NewUserStatesCollector(),
		Backfill: NewBackfillCollector(),
		Reclaim:  NewReclaimableCollector(),
		Timeline: NewTimelineCollector(bucket),
		Classes:  NewClassCollector(),
	}
}

// Observe feeds one record to every collector.
func (b *Bundle) Observe(r *slurm.Record) {
	b.observed.Inc()
	b.Records++
	if !r.IsStep() {
		b.Jobs++
	}
	b.Volume.Observe(r)
	b.Scale.Observe(r)
	b.Waits.Observe(r)
	b.Users.Observe(r)
	b.Backfill.Observe(r)
	b.Reclaim.Observe(r)
	b.Timeline.Observe(r)
	b.Classes.Observe(r)
}

// Merge folds another bundle into this one.
func (b *Bundle) Merge(o *Bundle) {
	if b.mergeHist != nil {
		defer b.mergeHist.ObserveSince(time.Now())
	}
	b.Records += o.Records
	b.Jobs += o.Jobs
	b.Volume.Merge(o.Volume)
	b.Scale.Merge(o.Scale)
	b.Waits.Merge(o.Waits)
	b.Users.Merge(o.Users)
	b.Backfill.Merge(o.Backfill)
	b.Reclaim.Merge(o.Reclaim)
	b.Timeline.Merge(o.Timeline)
	b.Classes.Merge(o.Classes)
}
