package analyze

import (
	"sync"
	"time"
)

// ShardSet holds one collector bundle per ingest chunk so parallel
// chunk decoders can observe records lock-free: each worker writes only
// its own shard, and MergeInto folds the shards in ascending chunk
// index — which is file order — so order-sensitive collectors (the
// point collectors append in observation order) reproduce the
// sequential result exactly. Shard acquisition is the only synchronised
// step.
type ShardSet struct {
	mu     sync.Mutex
	bucket time.Duration
	shards map[int]*Bundle
}

// NewShardSet returns an empty shard set whose bundles use the given
// timeline bucket (≤ 0 defaults to one hour, as in NewBundle).
func NewShardSet(bucket time.Duration) *ShardSet {
	return &ShardSet{bucket: bucket, shards: make(map[int]*Bundle)}
}

// Shard returns chunk i's bundle, creating it on first use. Safe to
// call from concurrent workers; the returned bundle itself must only be
// observed from one goroutine at a time.
func (s *ShardSet) Shard(i int) *Bundle {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.shards[i]
	if !ok {
		b = NewBundle(s.bucket)
		s.shards[i] = b
	}
	return b
}

// Len returns how many shards were created.
func (s *ShardSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// MergeInto folds every shard into dst in ascending chunk index. Call
// it after the parallel decode has finished; the result is bit-exact
// with observing the whole file sequentially into dst.
func (s *ShardSet) MergeInto(dst *Bundle) { s.MergeIntoN(dst, 1) }

// MergeIntoN is MergeInto over up to `workers` concurrent pairwise
// merges (tree-reduce, see TreeMerge). The result is bit-exact with
// MergeInto at every worker count; workers ≤ 1 is the linear fold.
func (s *ShardSet) MergeIntoN(dst *Bundle, workers int) {
	ordered := s.ordered()
	if len(ordered) == 0 {
		return
	}
	if workers <= 1 || len(ordered) == 1 {
		for _, b := range ordered {
			dst.Merge(b)
		}
		return
	}
	dst.Merge(TreeMerge(s.bucket, ordered, workers))
}

// ordered snapshots the shard bundles in ascending chunk index.
func (s *ShardSet) ordered() []*Bundle {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := -1
	for i := range s.shards {
		if i > max {
			max = i
		}
	}
	out := make([]*Bundle, 0, len(s.shards))
	for i := 0; i <= max; i++ {
		if b, ok := s.shards[i]; ok {
			out = append(out, b)
		}
	}
	return out
}
