package analyze

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/sched"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

// goldenTrace simulates a fixed-seed Frontier workload with steps — the
// reference input for the single-pass/multi-pass equivalence tests.
func goldenTrace(t *testing.T) []slurm.Record {
	t.Helper()
	p := tracegen.FrontierProfile()
	p.JobsPerDay, p.Users = 80, 40
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: t0, End: t0.AddDate(0, 0, 14),
	}}, 97)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := sched.New(sched.DefaultConfig(cluster.Frontier()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(reqs, sched.Options{EmitSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	return append(append([]slurm.Record{}, res.Jobs...), res.Steps...)
}

// mustJSON pins byte-level equality between figure payloads.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestBundleMatchesMultiPassBuilders is the golden equivalence test: one
// Bundle pass over a fixed-seed trace must produce byte-identical figure
// data to the per-figure multi-pass builders.
func TestBundleMatchesMultiPassBuilders(t *testing.T) {
	recs := goldenTrace(t)
	bucket := 6 * time.Hour

	b := NewBundle(bucket)
	for i := range recs {
		b.Observe(&recs[i])
	}

	if got, want := mustJSON(t, b.Volume.Result()), mustJSON(t, JobStepVolume(recs)); got != want {
		t.Errorf("Volume diverges:\n got %s\nwant %s", got, want)
	}
	if got, want := mustJSON(t, b.Scale.Result()), mustJSON(t, NodesVsElapsed(recs)); got != want {
		t.Errorf("Scale diverges (%d vs %d points)", len(b.Scale.Result()), len(NodesVsElapsed(recs)))
	}
	if got, want := mustJSON(t, b.Waits.Result()), mustJSON(t, WaitTimes(recs)); got != want {
		t.Errorf("Waits diverges (%d vs %d points)", len(b.Waits.Result()), len(WaitTimes(recs)))
	}
	if got, want := mustJSON(t, b.Users.Result(10)), mustJSON(t, StatesPerUser(recs, 10)); got != want {
		t.Errorf("Users diverges:\n got %s\nwant %s", got, want)
	}
	if got, want := mustJSON(t, b.Backfill.Result()), mustJSON(t, RequestedVsActual(recs)); got != want {
		t.Errorf("Backfill diverges (%d vs %d points)", len(b.Backfill.Result()), len(RequestedVsActual(recs)))
	}
	if got, want := b.Reclaim.Result(), ReclaimableNodeHours(recs); got != want {
		t.Errorf("Reclaimable %v != %v", got, want)
	}
	if got, want := mustJSON(t, b.Timeline.Result()), mustJSON(t, Timeline(recs, bucket)); got != want {
		t.Errorf("Timeline diverges (%d vs %d buckets)", len(b.Timeline.Result()), len(Timeline(recs, bucket)))
	}
	if got, want := mustJSON(t, b.Classes.Result()), mustJSON(t, PerClass(recs)); got != want {
		t.Errorf("Classes diverges:\n got %s\nwant %s", got, want)
	}
	if int(b.Records) != len(recs) {
		t.Errorf("Records = %d, want %d", b.Records, len(recs))
	}
	jobs := 0
	for i := range recs {
		if !recs[i].IsStep() {
			jobs++
		}
	}
	if int(b.Jobs) != jobs {
		t.Errorf("Jobs = %d, want %d", b.Jobs, jobs)
	}
}

// TestBundleMergeMatchesSinglePass pins the per-period path the workflow
// uses: bundles built from consecutive partitions, merged in partition
// order, must match one bundle fed the whole trace — point data
// byte-identical, per-year/per-user counts exactly equal.
func TestBundleMergeMatchesSinglePass(t *testing.T) {
	recs := goldenTrace(t)
	bucket := 6 * time.Hour

	whole := NewBundle(bucket)
	for i := range recs {
		whole.Observe(&recs[i])
	}

	merged := NewBundle(bucket)
	for lo := 0; lo < len(recs); lo += 500 {
		hi := min(lo+500, len(recs))
		part := NewBundle(bucket)
		for i := lo; i < hi; i++ {
			part.Observe(&recs[i])
		}
		merged.Merge(part)
	}

	if got, want := mustJSON(t, merged.Scale.Result()), mustJSON(t, whole.Scale.Result()); got != want {
		t.Error("merged Scale diverges from single pass")
	}
	if got, want := mustJSON(t, merged.Waits.Result()), mustJSON(t, whole.Waits.Result()); got != want {
		t.Error("merged Waits diverges from single pass")
	}
	if got, want := mustJSON(t, merged.Backfill.Result()), mustJSON(t, whole.Backfill.Result()); got != want {
		t.Error("merged Backfill diverges from single pass")
	}
	if !reflect.DeepEqual(merged.Volume.Result(), whole.Volume.Result()) {
		t.Error("merged Volume diverges from single pass")
	}
	if !reflect.DeepEqual(merged.Users.Result(0), whole.Users.Result(0)) {
		t.Error("merged Users diverges from single pass")
	}
	if got, want := mustJSON(t, merged.Timeline.Result()), mustJSON(t, whole.Timeline.Result()); got != want {
		t.Error("merged Timeline diverges from single pass")
	}
	if merged.Records != whole.Records || merged.Jobs != whole.Jobs {
		t.Errorf("merged counters %d/%d != %d/%d",
			merged.Records, merged.Jobs, whole.Records, whole.Jobs)
	}
}

// TestFanOutFromScratchStream drives collectors from a stream that
// reuses one scratch record, the aliasing regime of RecordReader: the
// collectors must copy what they retain.
func TestFanOutFromScratchStream(t *testing.T) {
	jobs := fixedJobs()
	var scratch slurm.Record
	seq := slurm.RecordSeq(func(yield func(*slurm.Record, error) bool) {
		for i := range jobs {
			scratch = jobs[i] // overwrite shared scratch each step
			if !yield(&scratch, nil) {
				return
			}
		}
	})
	users := NewUserStatesCollector()
	scale := NewScaleCollector()
	if err := FanOut(seq, users, scale); err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, users.Result(0)), mustJSON(t, StatesPerUser(jobs, 0)); got != want {
		t.Errorf("fan-out users diverge:\n got %s\nwant %s", got, want)
	}
	if got, want := mustJSON(t, scale.Result()), mustJSON(t, NodesVsElapsed(jobs)); got != want {
		t.Errorf("fan-out scale diverges:\n got %s\nwant %s", got, want)
	}
}

func TestFanOutPropagatesTerminalError(t *testing.T) {
	boom := slurm.RecordSeq(func(yield func(*slurm.Record, error) bool) {
		r := fixedJobs()[0]
		if !yield(&r, nil) {
			return
		}
		yield(nil, errSentinel)
	})
	c := NewVolumeCollector()
	if err := FanOut(boom, c); err != errSentinel {
		t.Errorf("FanOut error = %v, want sentinel", err)
	}
	if vols := c.Result(); len(vols) != 1 || vols[0].Jobs != 1 {
		t.Errorf("pre-error observations lost: %+v", vols)
	}
}

var errSentinel = &testError{}

type testError struct{}

func (*testError) Error() string { return "sentinel" }

// TestTimelineCollectorCache pins that Result is cached until new data
// arrives.
func TestTimelineCollectorCache(t *testing.T) {
	jobs := fixedJobs()
	c := NewTimelineCollector(time.Hour)
	for i := range jobs {
		c.Observe(&jobs[i])
	}
	first := c.Result()
	second := c.Result()
	if len(first) == 0 || &first[0] != &second[0] {
		t.Error("Result not cached across calls")
	}
	c.Observe(&jobs[0])
	third := c.Result()
	if len(third) != 0 && len(first) != 0 && &third[0] == &first[0] {
		t.Error("cache not invalidated by Observe")
	}
	if c.Bucket() != time.Hour {
		t.Errorf("Bucket = %v", c.Bucket())
	}
}
