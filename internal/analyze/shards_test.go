package analyze

import (
	"sync"
	"testing"
	"time"
)

// TestShardSetMergeMatchesSequential pins the parallel-ingest
// determinism contract: records observed into per-chunk shards from
// concurrent workers, merged in chunk order, must produce figure data
// byte-identical to one sequential pass over the same records in file
// order — even when the shards finish out of order.
func TestShardSetMergeMatchesSequential(t *testing.T) {
	recs := goldenTrace(t)
	bucket := 6 * time.Hour

	whole := NewBundle(bucket)
	for i := range recs {
		whole.Observe(&recs[i])
	}

	// Partition into contiguous chunks as the chunk scanner would, then
	// observe each chunk from its own goroutine in scrambled start
	// order: the ShardSet must not care when shards are filled, only
	// where each record sits in the file.
	const chunks = 7
	s := NewShardSet(bucket)
	var wg sync.WaitGroup
	per := (len(recs) + chunks - 1) / chunks
	for c := chunks - 1; c >= 0; c-- {
		lo := c * per
		hi := min(lo+per, len(recs))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			sb := s.Shard(c)
			for i := lo; i < hi; i++ {
				sb.Observe(&recs[i])
			}
		}(c, lo, hi)
	}
	wg.Wait()

	merged := NewBundle(bucket)
	s.MergeInto(merged)

	if s.Len() == 0 || s.Len() > chunks {
		t.Fatalf("shards = %d", s.Len())
	}
	if merged.Records != whole.Records || merged.Jobs != whole.Jobs {
		t.Fatalf("merged counters %d/%d != %d/%d",
			merged.Records, merged.Jobs, whole.Records, whole.Jobs)
	}
	pairs := []struct {
		name      string
		got, want string
	}{
		{"Volume", mustJSON(t, merged.Volume.Result()), mustJSON(t, whole.Volume.Result())},
		{"Scale", mustJSON(t, merged.Scale.Result()), mustJSON(t, whole.Scale.Result())},
		{"Waits", mustJSON(t, merged.Waits.Result()), mustJSON(t, whole.Waits.Result())},
		{"Users", mustJSON(t, merged.Users.Result(50)), mustJSON(t, whole.Users.Result(50))},
		{"Backfill", mustJSON(t, merged.Backfill.Result()), mustJSON(t, whole.Backfill.Result())},
		{"Timeline", mustJSON(t, merged.Timeline.Result()), mustJSON(t, whole.Timeline.Result())},
		{"Classes", mustJSON(t, merged.Classes.Result()), mustJSON(t, whole.Classes.Result())},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Errorf("%s diverges from the sequential pass", p.name)
		}
	}
	if merged.Reclaim.Result() != whole.Reclaim.Result() {
		t.Error("Reclaim diverges from the sequential pass")
	}
}

// TestShardSetSparseIndices checks that MergeInto tolerates chunk
// indices that were never materialised (e.g. a consumer that only
// sharded some chunks) and still folds the rest in ascending order.
func TestShardSetSparseIndices(t *testing.T) {
	recs := goldenTrace(t)
	s := NewShardSet(0)
	half := len(recs) / 2
	sb := s.Shard(5) // only chunk 5 exists
	for i := half; i < len(recs); i++ {
		sb.Observe(&recs[i])
	}
	dst := NewBundle(0)
	s.MergeInto(dst)
	if int(dst.Records) != len(recs)-half {
		t.Errorf("Records = %d, want %d", dst.Records, len(recs)-half)
	}
}
