// Package analyze computes the per-figure aggregations of the paper's
// evaluation: job/step volume by year (Fig. 1), allocated nodes versus
// elapsed time (Figs. 3 and 7), queue wait times by final state (Fig. 4),
// job end states per user (Figs. 5 and 8), and requested-versus-actual
// walltimes split by backfill (Figs. 6 and 9) — plus the cross-system
// comparison used by the portability study (§4.3).
package analyze

import (
	"sort"
	"time"

	"slurmsight/internal/slurm"
)

// VolumeByYear is one Figure 1 bar pair.
type VolumeByYear struct {
	Year  int
	Jobs  int64
	Steps int64
}

// JobStepVolume bins records into per-year job and step counts. Pass the
// full record set (jobs and steps mixed); steps are recognised by their
// IDs. It is a one-shot wrapper over VolumeCollector.
func JobStepVolume(records []slurm.Record) []VolumeByYear {
	c := NewVolumeCollector()
	for i := range records {
		c.Observe(&records[i])
	}
	return c.Result()
}

// JobStepVolumeCounted bins job records by year using pre-counted step
// totals (for runs where step records were not materialized).
func JobStepVolumeCounted(jobs []slurm.Record, stepsPerJob []int) []VolumeByYear {
	byYear := map[int]*VolumeByYear{}
	for i := range jobs {
		y := jobs[i].Year()
		v, ok := byYear[y]
		if !ok {
			v = &VolumeByYear{Year: y}
			byYear[y] = v
		}
		v.Jobs++
		if i < len(stepsPerJob) {
			v.Steps += int64(stepsPerJob[i])
		}
	}
	out := make([]VolumeByYear, 0, len(byYear))
	for _, v := range byYear {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Year < out[j].Year })
	return out
}

// StepJobRatio returns total steps over total jobs across years.
func StepJobRatio(vols []VolumeByYear) float64 {
	var jobs, steps int64
	for _, v := range vols {
		jobs += v.Jobs
		steps += v.Steps
	}
	if jobs == 0 {
		return 0
	}
	return float64(steps) / float64(jobs)
}

// NodesElapsedPoint is one Figure 3/7 scatter point.
type NodesElapsedPoint struct {
	Nodes      int64
	ElapsedSec float64
	State      slurm.State
}

// NodesVsElapsed extracts the allocation-versus-runtime scatter from job
// records. Jobs that never started are skipped (no elapsed time). It is
// a one-shot wrapper over ScaleCollector.
func NodesVsElapsed(jobs []slurm.Record) []NodesElapsedPoint {
	c := ScaleCollector{points: make([]NodesElapsedPoint, 0, len(jobs))}
	for i := range jobs {
		c.Observe(&jobs[i])
	}
	return c.Result()
}

// WaitPoint is one Figure 4 scatter point: submission time on x, queue
// wait on y, coloured by final state.
type WaitPoint struct {
	Submit  time.Time
	WaitSec float64
	State   slurm.State
}

// WaitTimes extracts queue waits from job records; never-started jobs are
// skipped (they have no wait). It is a one-shot wrapper over
// WaitCollector.
func WaitTimes(jobs []slurm.Record) []WaitPoint {
	c := WaitCollector{points: make([]WaitPoint, 0, len(jobs))}
	for i := range jobs {
		c.Observe(&jobs[i])
	}
	return c.Result()
}

// UserStates is one Figure 5/8 stacked bar: a user's terminal-state mix.
type UserStates struct {
	User   string
	Counts map[slurm.State]int
	Total  int
}

// FailedShare returns the user's failed+cancelled fraction.
func (u *UserStates) FailedShare() float64 {
	if u.Total == 0 {
		return 0
	}
	bad := u.Counts[slurm.StateFailed] + u.Counts[slurm.StateCancelled] +
		u.Counts[slurm.StateNodeFail] + u.Counts[slurm.StateOutOfMemory]
	return float64(bad) / float64(u.Total)
}

// StatesPerUser aggregates terminal states per user, sorted by job count
// descending. topN ≤ 0 keeps every user. It is a one-shot wrapper over
// UserStatesCollector.
func StatesPerUser(jobs []slurm.Record, topN int) []UserStates {
	c := NewUserStatesCollector()
	for i := range jobs {
		c.Observe(&jobs[i])
	}
	return c.Result(topN)
}

// BackfillPoint is one Figure 6/9 scatter point.
type BackfillPoint struct {
	RequestedSec float64
	ActualSec    float64
	Backfilled   bool
	State        slurm.State
}

// RequestedVsActual extracts the walltime-estimation scatter from job
// records; never-started jobs are skipped. It is a one-shot wrapper over
// BackfillCollector.
func RequestedVsActual(jobs []slurm.Record) []BackfillPoint {
	c := BackfillCollector{points: make([]BackfillPoint, 0, len(jobs))}
	for i := range jobs {
		c.Observe(&jobs[i])
	}
	return c.Result()
}
