package analyze

import (
	"testing"
	"time"

	"slurmsight/internal/slurm"
)

func classedJob(id int64, class string, nodes int64, wait, limit, elapsed time.Duration,
	st slurm.State, backfill bool) slurm.Record {
	r := mkJob(id, "u1", t0, wait, nodes, limit, elapsed, st, backfill)
	r.Comment = class
	return r
}

func TestPerClass(t *testing.T) {
	jobs := []slurm.Record{
		classedJob(1, "hero", 4000, time.Hour, 12*time.Hour, 10*time.Hour, slurm.StateCompleted, false),
		classedJob(2, "debug", 2, time.Minute, time.Hour, 5*time.Minute, slurm.StateCompleted, true),
		classedJob(3, "debug", 1, time.Minute, time.Hour, 10*time.Minute, slurm.StateFailed, true),
		classedJob(4, "debug", 1, 2*time.Minute, time.Hour, 20*time.Minute, slurm.StateCompleted, false),
	}
	// An untagged job and a step must be handled gracefully.
	plain := mkJob(5, "u2", t0, time.Minute, 1, time.Hour, time.Minute, slurm.StateCompleted, false)
	plain.Comment = ""
	step := slurm.Record{ID: slurm.NewJobID(1).WithStep(0), Submit: t0, Comment: "hero"}
	jobs = append(jobs, plain, step)

	classes := PerClass(jobs)
	if len(classes) != 3 {
		t.Fatalf("classes = %d, want 3 (hero, debug, untagged)", len(classes))
	}
	// Ordered by consumed node-hours: hero (40k) first.
	if classes[0].Class != "hero" {
		t.Errorf("first class = %s", classes[0].Class)
	}
	if classes[0].NodeHours != 40000 {
		t.Errorf("hero node-hours = %v", classes[0].NodeHours)
	}
	var debug *ClassSummary
	for i := range classes {
		if classes[i].Class == "debug" {
			debug = &classes[i]
		}
	}
	if debug == nil {
		t.Fatal("debug class missing")
	}
	if debug.Jobs != 3 {
		t.Errorf("debug jobs = %d", debug.Jobs)
	}
	if diff := debug.FailedShare - 1.0/3; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("debug failed share = %v", debug.FailedShare)
	}
	if diff := debug.BackfillShare - 2.0/3; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("debug backfill share = %v", debug.BackfillShare)
	}
	if debug.MedianUseRatio <= 0 || debug.MedianUseRatio >= 1 {
		t.Errorf("debug use ratio = %v", debug.MedianUseRatio)
	}
	found := false
	for _, c := range classes {
		if c.Class == "(untagged)" {
			found = true
		}
	}
	if !found {
		t.Error("untagged bucket missing")
	}
	if len(PerClass(nil)) != 0 {
		t.Error("empty input should yield no classes")
	}
}

func TestPerClassNeverStarted(t *testing.T) {
	j := classedJob(1, "nrt", 2, -1, time.Hour, 0, slurm.StateCancelled, false)
	j.Start = time.Time{}
	classes := PerClass([]slurm.Record{j})
	if len(classes) != 1 {
		t.Fatalf("classes = %d", len(classes))
	}
	c := classes[0]
	if c.Jobs != 1 || c.NodeHours != 0 || c.FailedShare != 1 {
		t.Errorf("never-started class summary = %+v", c)
	}
}
