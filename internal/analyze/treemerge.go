package analyze

import (
	"sync"
	"sync/atomic"
	"time"
)

// TreeMerge folds the bundles into one by pairwise parallel merges in
// index order, and returns the result as a fresh bundle. Every figure
// surface is bit-exact with the linear fold
//
//	dst := NewBundle(bucket); for _, b := range bs { dst.Merge(b) }
//
// because those collectors' Merges are associative over ordered runs:
// integer counters add, and the order-sensitive collectors concatenate —
// pairing adjacent runs preserves the concatenation order, only the
// grouping changes. The two float accumulators (reclaimable node-hours,
// per-class node-hours) regroup their partial sums and may move in the
// last ulp — the same caveat the chunked ingest merge already carries.
// The inputs are never mutated (the first level merges into fresh
// bundles), so a caller that retries a failed combine can reuse them.
// Entries must be non-nil. workers ≤ 1 selects the plain linear fold.
func TreeMerge(bucket time.Duration, bs []*Bundle, workers int) *Bundle {
	if workers <= 1 || len(bs) <= 1 {
		out := NewBundle(bucket)
		for _, b := range bs {
			out.Merge(b)
		}
		return out
	}
	cur := bs
	first := true
	for len(cur) > 1 {
		nxt := make([]*Bundle, (len(cur)+1)/2)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < min(workers, len(nxt)); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(nxt) {
						return
					}
					lo := 2 * i
					if first {
						// Fresh target: the caller's bundles stay
						// unmutated.
						m := NewBundle(bucket)
						m.Merge(cur[lo])
						if lo+1 < len(cur) {
							m.Merge(cur[lo+1])
						}
						nxt[i] = m
					} else {
						// Later levels own their bundles; merge in
						// place.
						if lo+1 < len(cur) {
							cur[lo].Merge(cur[lo+1])
						}
						nxt[i] = cur[lo]
					}
				}
			}()
		}
		wg.Wait()
		first = false
		cur = nxt
	}
	return cur[0]
}
