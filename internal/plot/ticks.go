package plot

import (
	"math"
	"strconv"
	"time"
)

// niceTicks returns ~n pleasant tick positions covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	if lo == hi {
		hi = lo + 1
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for _, m := range []float64{1, 2, 5, 10} {
		if span/(step*m) <= float64(n) {
			step *= m
			break
		}
	}
	first := math.Ceil(lo/step) * step
	var out []float64
	for v := first; v <= hi+step/1e6; v += step {
		out = append(out, v)
	}
	return out
}

// logTicks returns decade ticks covering [lo, hi] (both positive).
func logTicks(lo, hi float64) []float64 {
	start := math.Floor(math.Log10(lo))
	end := math.Ceil(math.Log10(hi))
	var out []float64
	for e := start; e <= end; e++ {
		out = append(out, math.Pow(10, e))
	}
	return out
}

// formatTick renders an axis label compactly.
func formatTick(v float64, timeAxis bool) string {
	if timeAxis {
		return time.Unix(int64(v), 0).UTC().Format("2006-01-02")
	}
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e9:
		return trimF(v/1e9) + "G"
	case av >= 1e6:
		return trimF(v/1e6) + "M"
	case av >= 1e3:
		return trimF(v/1e3) + "k"
	case av < 0.01:
		return strconv.FormatFloat(v, 'e', 1, 64)
	default:
		return trimF(v)
	}
}

func trimF(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
