package plot

import (
	"fmt"
	"math"
	"strings"
)

// Geometry of the rendered figure.
const (
	marginLeft   = 70.0
	marginRight  = 140.0 // room for the legend
	marginTop    = 40.0
	marginBottom = 55.0
)

// tooltipLimit bounds how many marks get hover tooltips; beyond it the
// file size would dwarf the drawing.
const tooltipLimit = 4000

// axis maps data values to pixels under a scale.
type axis struct {
	lo, hi  float64
	pxLo    float64
	pxHi    float64
	scale   Scale
	flipped bool // y axes grow downward in SVG
}

func (a *axis) pos(v float64) float64 {
	lo, hi, x := a.lo, a.hi, v
	if a.scale == Log10 {
		lo, hi, x = math.Log10(lo), math.Log10(hi), math.Log10(v)
	}
	f := (x - lo) / (hi - lo)
	if a.flipped {
		f = 1 - f
	}
	return a.pxLo + f*(a.pxHi-a.pxLo)
}

// dataRange finds the extent of the chart's data on one dimension.
func dataRange(c *Chart, ofX bool) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range c.Series {
		vals := c.Series[i].Y
		if ofX {
			vals = c.Series[i].X
		}
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	if lo == hi {
		hi = lo + 1
		if lo != 0 {
			lo, hi = lo-math.Abs(lo)*0.1, hi+math.Abs(hi)*0.1
		}
	}
	return lo, hi
}

// pad widens a range slightly so marks do not sit on the frame.
func pad(lo, hi float64, scale Scale) (float64, float64) {
	if scale == Log10 {
		return lo / 1.5, hi * 1.5
	}
	span := hi - lo
	return lo - 0.04*span, hi + 0.04*span
}

// SVG renders the chart to a standalone SVG document.
func SVG(c *Chart, width, height int) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if width < 200 || height < 150 {
		return nil, fmt.Errorf("plot: canvas %dx%d too small", width, height)
	}
	w, h := float64(width), float64(height)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`,
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	fmt.Fprintf(&b, `<text x="%g" y="24" font-size="16" text-anchor="middle">%s</text>`,
		w/2, esc(c.Title))

	plotL, plotR := marginLeft, w-marginRight
	plotT, plotB := marginTop, h-marginBottom

	switch c.Kind {
	case StackedBar, GroupedBar:
		renderBars(&b, c, plotL, plotR, plotT, plotB)
	default:
		renderXY(&b, c, plotL, plotR, plotT, plotB)
	}
	renderLegend(&b, c, plotR+12, plotT)

	// Axis titles.
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="12" text-anchor="middle">%s</text>`,
		(plotL+plotR)/2, h-12, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`,
		(plotT+plotB)/2, (plotT+plotB)/2, esc(c.YLabel))

	b.WriteString("</svg>")
	return []byte(b.String()), nil
}

// renderXY draws scatter and line charts with full axes.
func renderXY(b *strings.Builder, c *Chart, plotL, plotR, plotT, plotB float64) {
	xlo, xhi := dataRange(c, true)
	ylo, yhi := dataRange(c, false)
	xlo, xhi = pad(xlo, xhi, c.XScale)
	ylo, yhi = pad(ylo, yhi, c.YScale)
	if c.XScale == Log10 && xlo <= 0 {
		xlo = 1e-9
	}
	if c.YScale == Log10 && ylo <= 0 {
		ylo = 1e-9
	}
	xa := &axis{lo: xlo, hi: xhi, pxLo: plotL, pxHi: plotR, scale: c.XScale}
	ya := &axis{lo: ylo, hi: yhi, pxLo: plotB, pxHi: plotT, scale: c.YScale}

	drawFrame(b, plotL, plotR, plotT, plotB)
	drawXTicks(b, c, xa, plotB)
	drawYTicks(b, c, ya, plotL, plotR)

	tooltips := c.Points() <= tooltipLimit
	for i := range c.Series {
		s := &c.Series[i]
		color := seriesColor(c, i)
		if c.Kind == Line {
			var pts []string
			for j := range s.X {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", xa.pos(s.X[j]), ya.pos(s.Y[j])))
			}
			fmt.Fprintf(b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`,
				color, strings.Join(pts, " "))
			continue
		}
		for j := range s.X {
			px, py := xa.pos(s.X[j]), ya.pos(s.Y[j])
			title := ""
			if tooltips {
				title = fmt.Sprintf("<title>%s: (%s, %s)</title>",
					esc(s.Name), formatTick(s.X[j], c.XTime), formatTick(s.Y[j], false))
			}
			switch s.Marker {
			case Plus:
				fmt.Fprintf(b, `<g stroke="%s" stroke-width="1.2">%s<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/><line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/></g>`,
					color, title, px-3, py, px+3, py, px, py-3, px, py+3)
			case Square:
				fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="5" height="5" fill="%s" fill-opacity="0.6">%s</rect>`,
					px-2.5, py-2.5, color, title)
			default:
				fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="%s" fill-opacity="0.6">%s</circle>`,
					px, py, color, title)
			}
		}
	}
}

// renderBars draws stacked or grouped bar charts over categories.
func renderBars(b *strings.Builder, c *Chart, plotL, plotR, plotT, plotB float64) {
	ncat := len(c.Categories)
	// Y range: tallest stack (stacked) or tallest bar (grouped).
	maxY := 0.0
	for j := 0; j < ncat; j++ {
		stack := 0.0
		for i := range c.Series {
			v := c.Series[i].Y[j]
			if c.Kind == StackedBar {
				stack += v
			} else if v > stack {
				stack = v
			}
		}
		if stack > maxY {
			maxY = stack
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	ya := &axis{lo: 0, hi: maxY * 1.05, pxLo: plotB, pxHi: plotT, scale: c.YScale}
	if c.YScale == Log10 {
		ya.lo = 0.5
	}
	drawFrame(b, plotL, plotR, plotT, plotB)
	drawYTicks(b, c, ya, plotL, plotR)

	slot := (plotR - plotL) / float64(ncat)
	barW := slot * 0.7
	maxLabels := 30
	labelStride := (ncat + maxLabels - 1) / maxLabels
	for j := 0; j < ncat; j++ {
		x0 := plotL + float64(j)*slot + slot*0.15
		if j%labelStride == 0 {
			fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="end" transform="rotate(-45 %.1f %.1f)">%s</text>`,
				x0+barW/2, plotB+12, x0+barW/2, plotB+12, esc(c.Categories[j]))
		}
		if c.Kind == StackedBar {
			base := 0.0
			for i := range c.Series {
				v := c.Series[i].Y[j]
				if v <= 0 {
					base += v
					continue
				}
				yTop := ya.pos(base + v)
				yBot := ya.pos(base)
				fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %s</title></rect>`,
					x0, yTop, barW, yBot-yTop, seriesColor(c, i),
					esc(c.Categories[j]), esc(c.Series[i].Name), trimF(v))
				base += v
			}
			continue
		}
		gw := barW / float64(len(c.Series))
		for i := range c.Series {
			v := c.Series[i].Y[j]
			if v <= 0 {
				continue
			}
			yTop := ya.pos(v)
			fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %s</title></rect>`,
				x0+float64(i)*gw, yTop, gw*0.9, ya.pos(ya.lo)-yTop, seriesColor(c, i),
				esc(c.Categories[j]), esc(c.Series[i].Name), trimF(v))
		}
	}
}

func drawFrame(b *strings.Builder, l, r, t, bot float64) {
	fmt.Fprintf(b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#888"/>`,
		l, t, r-l, bot-t)
}

func drawXTicks(b *strings.Builder, c *Chart, xa *axis, plotB float64) {
	var ticks []float64
	if c.XScale == Log10 {
		ticks = logTicks(xa.lo, xa.hi)
	} else {
		ticks = niceTicks(xa.lo, xa.hi, 7)
	}
	for _, v := range ticks {
		if v < xa.lo || v > xa.hi {
			continue
		}
		px := xa.pos(v)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%g" x2="%.1f" y2="%g" stroke="#888"/>`, px, plotB, px, plotB+4)
		fmt.Fprintf(b, `<text x="%.1f" y="%g" font-size="10" text-anchor="middle">%s</text>`,
			px, plotB+16, formatTick(v, c.XTime))
	}
}

func drawYTicks(b *strings.Builder, c *Chart, ya *axis, plotL, plotR float64) {
	var ticks []float64
	if c.YScale == Log10 {
		ticks = logTicks(ya.lo, ya.hi)
	} else {
		ticks = niceTicks(ya.lo, ya.hi, 6)
	}
	for _, v := range ticks {
		if v < ya.lo || v > ya.hi {
			continue
		}
		py := ya.pos(v)
		fmt.Fprintf(b, `<line x1="%g" y1="%.1f" x2="%g" y2="%.1f" stroke="#eee"/>`, plotL, py, plotR, py)
		fmt.Fprintf(b, `<text x="%g" y="%.1f" font-size="10" text-anchor="end">%s</text>`,
			plotL-6, py+3, formatTick(v, false))
	}
}

func renderLegend(b *strings.Builder, c *Chart, x, y float64) {
	for i := range c.Series {
		py := y + float64(i)*18
		fmt.Fprintf(b, `<rect x="%g" y="%g" width="10" height="10" fill="%s"/>`, x, py, seriesColor(c, i))
		fmt.Fprintf(b, `<text x="%g" y="%g" font-size="11">%s</text>`, x+14, py+9, esc(c.Series[i].Name))
	}
}

// esc escapes XML-special characters in labels.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
