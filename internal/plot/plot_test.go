package plot

import (
	"math"
	"strings"
	"testing"

	"slurmsight/internal/slurm"
)

func scatterChart() *Chart {
	return &Chart{
		Title: "Nodes vs elapsed", XLabel: "elapsed (s)", YLabel: "nodes",
		Kind: Scatter, XScale: Log10, YScale: Log10,
		Series: []Series{
			{Name: "COMPLETED", X: []float64{60, 3600, 86400}, Y: []float64{1, 128, 9000}, Marker: Dot},
			{Name: "FAILED", X: []float64{120, 7200}, Y: []float64{2, 64}, Marker: Plus, Color: "#d62728"},
		},
	}
}

func barChart() *Chart {
	return &Chart{
		Title: "States per user", XLabel: "user", YLabel: "jobs",
		Kind:       StackedBar,
		Categories: []string{"u1", "u2", "u3"},
		Series: []Series{
			{Name: "COMPLETED", Y: []float64{10, 5, 2}},
			{Name: "FAILED", Y: []float64{1, 4, 0}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := scatterChart().Validate(); err != nil {
		t.Errorf("valid scatter rejected: %v", err)
	}
	if err := barChart().Validate(); err != nil {
		t.Errorf("valid bar rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Chart)
	}{
		{"no title", func(c *Chart) { c.Title = "" }},
		{"no series", func(c *Chart) { c.Series = nil }},
		{"empty series", func(c *Chart) { c.Series[0].Y = nil }},
		{"xy mismatch", func(c *Chart) { c.Series[0].X = c.Series[0].X[:1] }},
		{"log zero x", func(c *Chart) { c.Series[0].X[0] = 0 }},
		{"log negative y", func(c *Chart) { c.Series[0].Y[0] = -1 }},
	}
	for _, tc := range cases {
		c := scatterChart()
		tc.mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	bad := barChart()
	bad.Series[0].Y = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Error("category mismatch: want error")
	}
}

func TestSVGScatter(t *testing.T) {
	svg, err := SVG(scatterChart(), 800, 500)
	if err != nil {
		t.Fatal(err)
	}
	s := string(svg)
	for _, want := range []string{"<svg", "Nodes vs elapsed", "circle", "COMPLETED", "FAILED", "</svg>"} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Plus markers render as line pairs.
	if !strings.Contains(s, "<line") {
		t.Error("plus marker lines missing")
	}
	// Log decade ticks.
	if !strings.Contains(s, ">1k<") {
		t.Errorf("log ticks missing")
	}
}

func TestSVGBars(t *testing.T) {
	svg, err := SVG(barChart(), 640, 400)
	if err != nil {
		t.Fatal(err)
	}
	s := string(svg)
	rects := strings.Count(s, "<rect")
	// background + frame + legend swatches (2) + bars (5 nonzero values)
	if rects < 9 {
		t.Errorf("too few rects: %d", rects)
	}
	if !strings.Contains(s, "u2") {
		t.Error("category labels missing")
	}
	grouped := barChart()
	grouped.Kind = GroupedBar
	if _, err := SVG(grouped, 640, 400); err != nil {
		t.Errorf("grouped bars: %v", err)
	}
}

func TestSVGLine(t *testing.T) {
	c := &Chart{
		Title: "volume", XLabel: "year", YLabel: "count", Kind: Line,
		Series: []Series{{Name: "jobs", X: []float64{2021, 2022, 2023}, Y: []float64{5, 9, 20}}},
	}
	svg, err := SVG(c, 640, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<polyline") {
		t.Error("line chart missing polyline")
	}
}

func TestSVGErrors(t *testing.T) {
	if _, err := SVG(&Chart{}, 800, 500); err == nil {
		t.Error("invalid chart: want error")
	}
	if _, err := SVG(scatterChart(), 50, 50); err == nil {
		t.Error("tiny canvas: want error")
	}
}

func TestXMLEscaping(t *testing.T) {
	c := scatterChart()
	c.Title = `wait < 100 & "quoted" > tail`
	svg, err := SVG(c, 800, 500)
	if err != nil {
		t.Fatal(err)
	}
	s := string(svg)
	if strings.Contains(s, `wait < 100`) {
		t.Error("unescaped < in output")
	}
	if !strings.Contains(s, "wait &lt; 100 &amp; &quot;quoted&quot; &gt; tail") {
		t.Error("escaped title missing")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, c := range []*Chart{scatterChart(), barChart()} {
		data, err := c.JSON()
		if err != nil {
			t.Fatal(err)
		}
		got, err := FromJSON(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Title != c.Title || got.Kind != c.Kind || len(got.Series) != len(c.Series) {
			t.Errorf("round trip mismatch: %+v", got)
		}
		if got.XScale != c.XScale || got.YScale != c.YScale {
			t.Errorf("scales lost: %+v", got)
		}
	}
	if _, err := FromJSON([]byte(`{"title":""}`)); err == nil {
		t.Error("invalid spec: want error")
	}
	if _, err := FromJSON([]byte(`{"kind":"pie","title":"x"}`)); err == nil {
		t.Error("unknown kind: want error")
	}
	if _, err := FromJSON([]byte(`not json`)); err == nil {
		t.Error("garbage: want error")
	}
}

func TestHTMLEmbedsSpec(t *testing.T) {
	c := scatterChart()
	page, err := HTML(c, 800, 500)
	if err != nil {
		t.Fatal(err)
	}
	s := string(page)
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "chart-spec", "wheel"} {
		if !strings.Contains(s, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	got, err := SpecFromHTML(page)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != c.Title || got.Points() != c.Points() {
		t.Errorf("recovered spec differs: %+v", got)
	}
	if _, err := SpecFromHTML([]byte("<html></html>")); err == nil {
		t.Error("page without spec: want error")
	}
}

func TestDownsample(t *testing.T) {
	n := 10000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = float64(i%100 + 1)
	}
	c := &Chart{
		Title: "big", XLabel: "x", YLabel: "y", Kind: Scatter,
		Series: []Series{{Name: "s", X: xs, Y: ys}},
	}
	d := c.Downsample(500)
	if d.Points() > 600 {
		t.Errorf("downsample kept %d points", d.Points())
	}
	if !strings.Contains(d.Notes, "downsampled") {
		t.Error("downsampling not recorded in Notes")
	}
	if c.Points() != n {
		t.Error("original chart mutated")
	}
	// Small charts and bar charts pass through unchanged.
	if scatterChart().Downsample(100) == nil {
		t.Error("nil result")
	}
	b := barChart()
	if b.Downsample(1) != b {
		t.Error("bar chart should pass through")
	}
}

func TestTicks(t *testing.T) {
	ts := niceTicks(0, 100, 5)
	if len(ts) < 3 {
		t.Fatalf("ticks = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Errorf("ticks not increasing: %v", ts)
		}
	}
	lt := logTicks(5, 50000)
	if len(lt) < 4 || lt[0] > 5 || lt[len(lt)-1] < 50000 {
		t.Errorf("logTicks = %v", lt)
	}
	if got := formatTick(1500, false); got != "1.5k" {
		t.Errorf("formatTick(1500) = %q", got)
	}
	if got := formatTick(2e6, false); got != "2M" {
		t.Errorf("formatTick(2e6) = %q", got)
	}
	if got := formatTick(0, false); got != "0" {
		t.Errorf("formatTick(0) = %q", got)
	}
	day := formatTick(1710000000, true)
	if !strings.HasPrefix(day, "2024-") {
		t.Errorf("time tick = %q", day)
	}
	if math.IsNaN(niceTicks(5, 5, 4)[0]) {
		t.Error("degenerate range produced NaN")
	}
}

func TestStateColors(t *testing.T) {
	seen := map[string]slurm.State{}
	for _, st := range slurm.TerminalStates() {
		c := StateColor(st)
		if !strings.HasPrefix(c, "#") || len(c) != 7 {
			t.Errorf("StateColor(%v) = %q", st, c)
		}
		if prev, dup := seen[c]; dup && prev != st {
			// Only the catch-all grey may repeat, and it should not for
			// the primary terminal states.
			if c != "#7f7f7f" {
				t.Errorf("states %v and %v share color %s", prev, st, c)
			}
		}
		seen[c] = st
	}
}
