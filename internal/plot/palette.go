package plot

import "slurmsight/internal/slurm"

// palette is the default categorical cycle, assigned to series lacking an
// explicit color.
var palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// StateColor returns the fixed color for a job state, consistent across
// all figures so state-coded charts compare visually.
func StateColor(s slurm.State) string {
	switch s {
	case slurm.StateCompleted:
		return "#2ca02c" // green
	case slurm.StateFailed:
		return "#d62728" // red
	case slurm.StateCancelled:
		return "#ff7f0e" // orange
	case slurm.StateTimeout:
		return "#9467bd" // purple
	case slurm.StateNodeFail:
		return "#8c564b" // brown
	case slurm.StateOutOfMemory:
		return "#e377c2" // magenta
	default:
		return "#7f7f7f" // grey
	}
}

// seriesColor resolves a series' effective color.
func seriesColor(c *Chart, i int) string {
	if c.Series[i].Color != "" {
		return c.Series[i].Color
	}
	return palette[i%len(palette)]
}
