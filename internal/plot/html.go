package plot

import (
	"fmt"
	"strings"
)

// HTML wraps the SVG rendering in a self-contained interactive page:
// wheel zoom, drag pan, double-click reset — the lightweight stand-in for
// Plotly's interactive HTML output. The chart spec is embedded as JSON in
// a <script> block so downstream tooling (the LLM stage, tests) can
// recover the exact data from the artifact.
func HTML(c *Chart, width, height int) ([]byte, error) {
	svg, err := SVG(c, width, height)
	if err != nil {
		return nil, err
	}
	spec, err := c.JSON()
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>")
	b.WriteString(esc(c.Title))
	b.WriteString(`</title><style>
body { font-family: sans-serif; margin: 1em; }
#chart { border: 1px solid #ddd; cursor: grab; }
#hint { color: #777; font-size: 12px; }
</style></head><body>
<div id="chart">`)
	b.Write(svg)
	b.WriteString(`</div>
<p id="hint">wheel: zoom &middot; drag: pan &middot; double-click: reset &middot; hover points for values</p>
<script type="application/json" id="chart-spec">
`)
	// </script> cannot appear inside the JSON block.
	b.WriteString(strings.ReplaceAll(string(spec), "</", "<\\/"))
	b.WriteString(`
</script>
<script>
(function () {
  var svg = document.querySelector('#chart svg');
  var vb = svg.getAttribute('viewBox').split(' ').map(Number);
  var orig = vb.slice();
  function apply() { svg.setAttribute('viewBox', vb.join(' ')); }
  svg.addEventListener('wheel', function (e) {
    e.preventDefault();
    var f = e.deltaY < 0 ? 0.85 : 1/0.85;
    var r = svg.getBoundingClientRect();
    var mx = vb[0] + (e.clientX - r.left) / r.width * vb[2];
    var my = vb[1] + (e.clientY - r.top) / r.height * vb[3];
    vb[0] = mx - (mx - vb[0]) * f;
    vb[1] = my - (my - vb[1]) * f;
    vb[2] *= f; vb[3] *= f;
    apply();
  }, { passive: false });
  var drag = null;
  svg.addEventListener('mousedown', function (e) { drag = [e.clientX, e.clientY]; });
  window.addEventListener('mouseup', function () { drag = null; });
  window.addEventListener('mousemove', function (e) {
    if (!drag) return;
    var r = svg.getBoundingClientRect();
    vb[0] -= (e.clientX - drag[0]) / r.width * vb[2];
    vb[1] -= (e.clientY - drag[1]) / r.height * vb[3];
    drag = [e.clientX, e.clientY];
    apply();
  });
  svg.addEventListener('dblclick', function () { vb = orig.slice(); apply(); });
})();
</script>
</body></html>
`)
	return []byte(b.String()), nil
}

// SpecFromHTML recovers the chart spec embedded in an HTML artifact.
func SpecFromHTML(page []byte) (*Chart, error) {
	const open = `<script type="application/json" id="chart-spec">`
	s := string(page)
	i := strings.Index(s, open)
	if i < 0 {
		return nil, fmt.Errorf("plot: page has no embedded chart spec")
	}
	rest := s[i+len(open):]
	j := strings.Index(rest, "</script>")
	if j < 0 {
		return nil, fmt.Errorf("plot: embedded chart spec is unterminated")
	}
	raw := strings.ReplaceAll(rest[:j], "<\\/", "</")
	return FromJSON([]byte(strings.TrimSpace(raw)))
}
