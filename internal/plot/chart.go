// Package plot is the visualization substrate standing in for Plotly: a
// declarative chart model, an SVG renderer with native hover tooltips, a
// self-contained interactive HTML wrapper (wheel zoom and pan), and a JSON
// encoding of the chart spec. The JSON spec doubles as the "image" the
// simulated multimodal LLM analyses, so every artifact the AI subworkflow
// consumes is also machine-checkable.
package plot

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// Kind selects the mark type.
type Kind int

// Chart kinds used across the paper's figures.
const (
	Scatter Kind = iota
	StackedBar
	GroupedBar
	Line
)

var kindNames = [...]string{"scatter", "stacked-bar", "grouped-bar", "line"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "unknown"
	}
	return kindNames[k]
}

// MarshalJSON encodes the kind by name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("plot: unknown kind %q", s)
}

// Scale selects an axis transform.
type Scale int

// Axis scales.
const (
	Linear Scale = iota
	Log10
)

// MarshalJSON encodes the scale by name.
func (s Scale) MarshalJSON() ([]byte, error) {
	if s == Log10 {
		return json.Marshal("log10")
	}
	return json.Marshal("linear")
}

// UnmarshalJSON decodes a scale name.
func (s *Scale) UnmarshalJSON(b []byte) error {
	var v string
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch v {
	case "linear":
		*s = Linear
	case "log10":
		*s = Log10
	default:
		return fmt.Errorf("plot: unknown scale %q", v)
	}
	return nil
}

// Marker selects the point glyph; the paper's Figure 6 distinguishes
// backfilled jobs with plus marks.
type Marker string

// Point glyphs.
const (
	Dot    Marker = "dot"
	Plus   Marker = "plus"
	Square Marker = "square"
)

// Series is one named mark group.
type Series struct {
	Name   string    `json:"name"`
	X      []float64 `json:"x,omitempty"`
	Y      []float64 `json:"y"`
	Marker Marker    `json:"marker,omitempty"`
	Color  string    `json:"color,omitempty"` // CSS color; palette-assigned when empty
}

// Chart is one figure.
type Chart struct {
	Title  string `json:"title"`
	XLabel string `json:"xlabel"`
	YLabel string `json:"ylabel"`
	Kind   Kind   `json:"kind"`
	XScale Scale  `json:"xscale"`
	YScale Scale  `json:"yscale"`
	// XTime marks x values as unix seconds to be rendered as dates.
	XTime bool `json:"xtime,omitempty"`
	// Categories label bar groups for bar kinds (x is ignored).
	Categories []string `json:"categories,omitempty"`
	Series     []Series `json:"series"`
	// Notes carries provenance (e.g. downsampling applied).
	Notes string `json:"notes,omitempty"`
}

// Validate checks internal consistency.
func (c *Chart) Validate() error {
	if c.Title == "" {
		return errors.New("plot: chart needs a title")
	}
	if len(c.Series) == 0 {
		return errors.New("plot: chart needs at least one series")
	}
	bar := c.Kind == StackedBar || c.Kind == GroupedBar
	for i := range c.Series {
		s := &c.Series[i]
		if len(s.Y) == 0 {
			return fmt.Errorf("plot: series %q is empty", s.Name)
		}
		if bar {
			if len(c.Categories) != len(s.Y) {
				return fmt.Errorf("plot: series %q has %d values for %d categories",
					s.Name, len(s.Y), len(c.Categories))
			}
			continue
		}
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q x/y length mismatch", s.Name)
		}
		if c.XScale == Log10 {
			for _, x := range s.X {
				if x <= 0 {
					return fmt.Errorf("plot: series %q has non-positive x on a log axis", s.Name)
				}
			}
		}
		if c.YScale == Log10 {
			for _, y := range s.Y {
				if y <= 0 {
					return fmt.Errorf("plot: series %q has non-positive y on a log axis", s.Name)
				}
			}
		}
	}
	return nil
}

// Points returns the total mark count.
func (c *Chart) Points() int {
	n := 0
	for i := range c.Series {
		n += len(c.Series[i].Y)
	}
	return n
}

// Downsample returns a copy whose scatter series keep at most maxPoints
// marks in total, decimated by stride so the distribution shape survives.
// Bar and line charts are returned unchanged.
func (c *Chart) Downsample(maxPoints int) *Chart {
	if maxPoints <= 0 || c.Points() <= maxPoints || c.Kind != Scatter {
		return c
	}
	out := *c
	out.Series = make([]Series, len(c.Series))
	total := c.Points()
	for i := range c.Series {
		s := c.Series[i]
		keep := int(math.Round(float64(len(s.Y)) * float64(maxPoints) / float64(total)))
		if keep < 1 {
			keep = 1
		}
		stride := (len(s.Y) + keep - 1) / keep
		ns := Series{Name: s.Name, Marker: s.Marker, Color: s.Color}
		for j := 0; j < len(s.Y); j += stride {
			ns.X = append(ns.X, s.X[j])
			ns.Y = append(ns.Y, s.Y[j])
		}
		out.Series[i] = ns
	}
	out.Notes = appendNote(c.Notes, fmt.Sprintf("downsampled from %d to %d points", total, out.Points()))
	return &out
}

func appendNote(existing, note string) string {
	if existing == "" {
		return note
	}
	return existing + "; " + note
}

// MarshalJSON is the chart-spec artifact written next to each rendering.
func (c *Chart) JSON() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(c, "", " ")
}

// FromJSON decodes a chart spec.
func FromJSON(data []byte) (*Chart, error) {
	var c Chart
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
