package pool

import (
	"sync"
	"testing"
)

func TestNilPoolIsUnlimited(t *testing.T) {
	var p *Pool
	for i := 0; i < 100; i++ {
		if !p.TryAcquire() {
			t.Fatal("nil pool refused a slot")
		}
	}
	p.Release() // no-op, must not panic
	if p.Budget() != 0 || p.Free() != 0 {
		t.Fatal("nil pool reports a nonzero budget")
	}
}

func TestAcquireRelease(t *testing.T) {
	p := New(2)
	if p.Budget() != 2 || p.Free() != 2 {
		t.Fatalf("budget/free = %d/%d, want 2/2", p.Budget(), p.Free())
	}
	if !p.TryAcquire() || !p.TryAcquire() {
		t.Fatal("could not drain a fresh pool")
	}
	if p.TryAcquire() {
		t.Fatal("acquired beyond the budget")
	}
	p.Release()
	if p.Free() != 1 {
		t.Fatalf("free = %d after release, want 1", p.Free())
	}
	if !p.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

func TestZeroAndNegativeBudget(t *testing.T) {
	for _, budget := range []int{0, -5} {
		p := New(budget)
		if p.Budget() != 0 {
			t.Fatalf("New(%d).Budget() = %d, want 0", budget, p.Budget())
		}
		if p.TryAcquire() {
			t.Fatalf("New(%d) granted a slot", budget)
		}
	}
}

// TestConcurrentAcquireNeverOversubscribes hammers the pool from many
// goroutines and checks the invariant the ingest plane relies on: the
// number of held slots never exceeds the budget.
func TestConcurrentAcquireNeverOversubscribes(t *testing.T) {
	const budget = 4
	p := New(budget)
	var held, peak, over sync2Int
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if p.TryAcquire() {
					h := held.add(1)
					peak.max(h)
					if h > budget {
						over.add(1)
					}
					held.add(-1)
					p.Release()
				}
			}
		}()
	}
	wg.Wait()
	if over.load() != 0 {
		t.Fatalf("budget exceeded %d times (peak %d > %d)", over.load(), peak.load(), budget)
	}
	if p.Free() != budget {
		t.Fatalf("free = %d after all releases, want %d", p.Free(), budget)
	}
}

// sync2Int is a tiny atomic int with a max helper for the test above.
type sync2Int struct {
	mu sync.Mutex
	v  int64
}

func (s *sync2Int) add(d int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v += d
	return s.v
}

func (s *sync2Int) max(v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v > s.v {
		s.v = v
	}
}

func (s *sync2Int) load() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v
}
