// Package pool provides a shared, non-blocking worker-slot budget for
// the ingest plane. Concurrent period-curation tasks each get one
// guaranteed decode slot (their own goroutine) and borrow extra slots
// from a process-wide pool, so many periods × many chunks neither
// oversubscribes a laptop nor undersubscribes a 64-core node: total
// extra decoders across every borrower never exceeds the budget, and a
// borrower that finds the pool empty simply runs narrower instead of
// queueing.
package pool

import "sync/atomic"

// Pool is a fixed budget of borrowable worker slots. The zero-value
// pointer (nil) means "unlimited": TryAcquire always grants, Release is
// a no-op — callers never need to nil-check.
type Pool struct {
	budget int
	free   atomic.Int64
}

// New returns a pool with the given number of borrowable slots. A
// budget below zero is treated as zero (nothing borrowable; every
// caller runs on its guaranteed slot alone). For an unlimited pool use
// a nil *Pool instead.
func New(budget int) *Pool {
	if budget < 0 {
		budget = 0
	}
	p := &Pool{budget: budget}
	p.free.Store(int64(budget))
	return p
}

// Budget returns the pool's total borrowable slots; 0 for nil
// (unlimited) pools.
func (p *Pool) Budget() int {
	if p == nil {
		return 0
	}
	return p.budget
}

// TryAcquire takes one slot if any is free, without blocking. A nil
// pool always grants.
func (p *Pool) TryAcquire() bool {
	if p == nil {
		return true
	}
	for {
		n := p.free.Load()
		if n <= 0 {
			return false
		}
		if p.free.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// Release returns one previously acquired slot. A nil pool is a no-op.
// Releasing more than was acquired is a caller bug; the pool does not
// guard against it.
func (p *Pool) Release() {
	if p == nil {
		return
	}
	p.free.Add(1)
}

// Free reports the currently borrowable slots (for logs and gauges);
// 0 for nil pools.
func (p *Pool) Free() int {
	if p == nil {
		return 0
	}
	return int(p.free.Load())
}
