package dataflow

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"slurmsight/internal/obs"
)

// Executor runs a graph with bounded physical concurrency — the N in the
// paper's "swift-t -n N workflow.swift" invocation — applying a retry
// policy around every task body.
type Executor struct {
	Workers int
	// DefaultPolicy applies to tasks that carry no Policy of their own.
	// The zero value is the classic fail-fast single attempt.
	DefaultPolicy Policy
	// Seed makes backoff jitter reproducible; 0 picks a fixed seed, so
	// two runs of the same graph draw the same jitter schedule.
	Seed int64
	// Tracer, when non-nil, records a root span for the run plus one
	// span per executed task and per attempt; task bodies can annotate
	// their task's span via obs.SpanFromContext on the context they
	// receive. Nil (the default) disables tracing at near-zero cost.
	Tracer *obs.Tracer
	// Metrics, when non-nil, counts the run under dataflow_* names:
	// attempts, retries, attempt timeouts, per-task latency, and task
	// outcomes. Nil disables metric collection.
	Metrics *obs.Registry
}

// execMetrics caches the executor's instruments for the duration of one
// run; every field is nil (a free no-op) when metrics are off.
type execMetrics struct {
	attempts    *obs.Counter
	retries     *obs.Counter
	timeouts    *obs.Counter
	running     *obs.Gauge
	taskSeconds *obs.Histogram
}

// Run executes every task respecting dependencies, retrying each per its
// policy. Under the zero policy the first terminal task error cancels
// the remaining work and is returned (wrapped); tasks already running
// are allowed to finish. Tasks whose policy sets ContinueOnError only
// take down their own downstream subgraph — independent branches keep
// running, and the combined *RunError reports every failure. The trace
// accounts for every task in the graph exactly once: executed tasks
// carry their attempts, tasks that never ran are marked Skipped.
func (e *Executor) Run(ctx context.Context, g *Graph) (*Trace, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	workers := e.Workers
	if workers <= 0 {
		workers = 1
	}
	deps := g.deps()
	n := len(g.tasks)
	dependents := make([][]int, n)
	indeg := make([]int, n)
	for i, ds := range deps {
		indeg[i] = len(ds)
		for _, u := range ds {
			dependents[u] = append(dependents[u], i)
		}
	}

	if n == 0 {
		return &Trace{}, nil
	}

	runSpan := e.Tracer.Start("dataflow-run")
	runSpan.SetAttrInt("tasks", int64(n))
	runSpan.SetAttrInt("workers", int64(workers))
	em := &execMetrics{
		attempts:    e.Metrics.Counter("dataflow_attempts_total"),
		retries:     e.Metrics.Counter("dataflow_retries_total"),
		timeouts:    e.Metrics.Counter("dataflow_attempt_timeouts_total"),
		running:     e.Metrics.Gauge("dataflow_running_tasks"),
		taskSeconds: e.Metrics.Histogram("dataflow_task_seconds", obs.LatencyBuckets),
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	seed := e.Seed
	if seed == 0 {
		seed = 1
	}

	var (
		mu       sync.Mutex
		trace    = &Trace{Tasks: make([]TaskTrace, 0, n)}
		firstErr error
		running  int
		settled  = make([]bool, n) // ran to completion, failed, or skipped
		nSettled int
		taskErrs = make([]error, n) // terminal error per task index
		rng      = rand.New(rand.NewSource(seed))
	)
	ready := make(chan int, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready <- i
		}
	}

	// jitterLocked perturbs a backoff delay by up to pol.Jitter of
	// itself; the caller holds mu (rand.Rand is not goroutine-safe).
	jitter := func(d time.Duration, frac float64) time.Duration {
		if frac <= 0 || d <= 0 {
			return d
		}
		mu.Lock()
		u := rng.Float64()
		mu.Unlock()
		return d + time.Duration(frac*u*float64(d))
	}

	// skipDownstream marks every transitive dependent of task i as
	// settled/skipped, recording one trace entry each. Only pending
	// tasks can be downstream of a failure (anything running or ready
	// already had all parents complete), so no double accounting is
	// possible. Caller holds mu.
	skipDownstream := func(i int) {
		queue := append([]int(nil), dependents[i]...)
		for len(queue) > 0 {
			d := queue[0]
			queue = queue[1:]
			if settled[d] {
				continue
			}
			settled[d] = true
			nSettled++
			trace.Tasks = append(trace.Tasks, TaskTrace{
				Name:    g.tasks[d].Name,
				Skipped: true,
				Err: fmt.Errorf("%w: upstream %q failed",
					ErrSkipped, g.tasks[i].Name),
			})
			queue = append(queue, dependents[d]...)
		}
	}

	finishIfDone := func(doneCh chan struct{}) {
		if nSettled == n || firstErr != nil {
			select {
			case <-doneCh:
			default:
				close(doneCh)
			}
		}
	}

	// A fixed worker pool drains ready until every task settled, one
	// failed fail-fast, or the caller cancelled.
	var workerWG sync.WaitGroup
	doneCh := make(chan struct{})
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-doneCh:
					return
				case i := <-ready:
					t := g.tasks[i]
					pol := e.DefaultPolicy
					if t.Policy != nil {
						pol = *t.Policy
					}
					pol = pol.normalized()

					mu.Lock()
					running++
					if running > trace.MaxConcurrency {
						trace.MaxConcurrency = running
					}
					startedWith := running
					mu.Unlock()

					// The task's span rides the context, so stage bodies
					// can annotate it (obs.SpanFromContext). Disabled
					// tracing leaves runCtx untouched.
					sp := runSpan.Child(t.Name)
					taskCtx := obs.ContextWithSpan(runCtx, sp)

					em.running.Add(1)
					tt := TaskTrace{Name: t.Name, Start: time.Now(), Workers: startedWith}
					err := runAttempts(taskCtx, t, pol, &tt, jitter, sp, em)
					tt.End = time.Now()
					tt.Err = err
					em.running.Add(-1)
					em.taskSeconds.Observe(tt.End.Sub(tt.Start).Seconds())
					if sp != nil {
						sp.SetAttr("outcome", tt.Outcome())
						if err != nil {
							sp.SetAttr("error", err.Error())
						}
					}
					sp.End()

					mu.Lock()
					running--
					settled[i] = true
					nSettled++
					trace.Tasks = append(trace.Tasks, tt)
					switch {
					case err == nil:
						for _, d := range dependents[i] {
							indeg[d]--
							if indeg[d] == 0 {
								ready <- d
							}
						}
					case pol.ContinueOnError && runCtx.Err() == nil:
						taskErrs[i] = fmt.Errorf("dataflow: task %q: %w", t.Name, err)
						skipDownstream(i)
					default:
						if firstErr == nil {
							firstErr = fmt.Errorf("dataflow: task %q: %w", t.Name, err)
							cancel()
						}
					}
					finishIfDone(doneCh)
					mu.Unlock()
				}
			}
		}()
	}
	workerWG.Wait()

	mu.Lock()
	defer mu.Unlock()

	// Account for tasks that never ran: blocked behind an aborted run or
	// drained out when the context was cancelled.
	if nSettled != n {
		reason := "run aborted"
		if ctx.Err() != nil {
			reason = "run cancelled"
		}
		for i := 0; i < n; i++ {
			if settled[i] {
				continue
			}
			settled[i] = true
			nSettled++
			trace.Tasks = append(trace.Tasks, TaskTrace{
				Name:    g.tasks[i].Name,
				Skipped: true,
				Err:     fmt.Errorf("%w: %s", ErrSkipped, reason),
			})
		}
	}

	okN, failedN, skippedN, retriedN := trace.Counts()
	e.Metrics.Counter("dataflow_tasks_total").Add(int64(len(trace.Tasks)))
	e.Metrics.Counter("dataflow_tasks_ok_total").Add(int64(okN))
	e.Metrics.Counter("dataflow_tasks_failed_total").Add(int64(failedN))
	e.Metrics.Counter("dataflow_tasks_skipped_total").Add(int64(skippedN))
	if runSpan != nil {
		runSpan.SetAttr("outcomes", fmt.Sprintf("%d ok, %d failed, %d skipped, %d retried",
			okN, failedN, skippedN, retriedN))
		runSpan.SetAttrInt("max_concurrency", int64(trace.MaxConcurrency))
	}
	runSpan.End()

	if firstErr != nil {
		return trace, firstErr
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return trace, ctxErr
	}
	var errs []error
	for _, err := range taskErrs {
		if err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return trace, &RunError{Errs: errs}
	}
	return trace, nil
}

// runAttempts drives one task through its policy: per-attempt timeout,
// exponential backoff with jitter between attempts, and a backoff sleep
// that aborts the moment the run context is cancelled. sp is the task's
// span (nil when tracing is off); em carries the run's instruments.
func runAttempts(runCtx context.Context, t *Task, pol Policy,
	tt *TaskTrace, jitter func(time.Duration, float64) time.Duration,
	sp *obs.Span, em *execMetrics) error {
	backoff := pol.Backoff
	var err error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			delay := jitter(backoff, pol.Jitter)
			em.retries.Add(1)
			if sp != nil {
				sp.Event(fmt.Sprintf("retry %d after %s: %v", attempt, delay.Round(time.Millisecond), err))
			}
			if serr := sleepCtx(runCtx, delay); serr != nil {
				return err // keep the attempt error; the run is aborting
			}
			backoff *= 2
		}
		attemptCtx := runCtx
		cancelAttempt := func() {}
		if pol.Timeout > 0 {
			attemptCtx, cancelAttempt = context.WithTimeout(runCtx, pol.Timeout)
		}
		em.attempts.Add(1)
		var asp *obs.Span
		if sp != nil {
			asp = sp.Child("attempt " + strconv.Itoa(attempt+1))
		}
		at := Attempt{Start: time.Now()}
		err = t.Run(attemptCtx)
		cancelAttempt()
		at.End = time.Now()
		at.Err = err
		tt.Attempts = append(tt.Attempts, at)
		if err != nil {
			if asp != nil {
				asp.SetAttr("error", err.Error())
			}
			if pol.Timeout > 0 && errors.Is(err, context.DeadlineExceeded) {
				em.timeouts.Add(1)
			}
		}
		asp.End()
		if err == nil || runCtx.Err() != nil {
			return err
		}
	}
	return err
}

// sleepCtx waits d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
