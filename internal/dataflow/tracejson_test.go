package dataflow

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"slurmsight/internal/obs"
)

// traceFixture runs a small graph with one retried success, one terminal
// failure, and one skipped dependent.
func traceFixture(t *testing.T, ex *Executor) *Trace {
	t.Helper()
	g := NewGraph()
	pol := &Policy{Attempts: 2, ContinueOnError: true}
	tries := 0
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Add(Task{Name: "flaky", Policy: pol, Writes: []string{"f"},
		Run: func(context.Context) error {
			tries++
			if tries == 1 {
				return errors.New("transient")
			}
			return nil
		}}))
	must(g.Add(Task{Name: "doomed", Policy: pol, Writes: []string{"d"},
		Run: func(context.Context) error { return errors.New("terminal") }}))
	must(g.Add(Task{Name: "orphan", Policy: pol, Reads: []string{"d"},
		Run: func(context.Context) error { return nil }}))

	trace, err := ex.Run(context.Background(), g)
	var runErr *RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	return trace
}

// TestTraceJSONSchema pins the exported field names and the per-attempt
// records — the workflow-trace.json artifact contract.
func TestTraceJSONSchema(t *testing.T) {
	trace := traceFixture(t, &Executor{Workers: 2})
	data, err := trace.JSON()
	if err != nil {
		t.Fatal(err)
	}

	// Decode generically: the test must notice a renamed field.
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tasks", "max_concurrency", "ok", "failed", "skipped", "retried"} {
		if _, present := doc[key]; !present {
			t.Errorf("trace JSON missing top-level %q", key)
		}
	}
	if doc["ok"].(float64) != 1 || doc["failed"].(float64) != 1 ||
		doc["skipped"].(float64) != 1 || doc["retried"].(float64) != 2 {
		t.Errorf("counts = ok %v failed %v skipped %v retried %v",
			doc["ok"], doc["failed"], doc["skipped"], doc["retried"])
	}

	byName := map[string]map[string]any{}
	for _, raw := range doc["tasks"].([]any) {
		task := raw.(map[string]any)
		byName[task["name"].(string)] = task
	}
	flaky := byName["flaky"]
	if flaky["outcome"] != "ok" {
		t.Errorf("flaky outcome = %v", flaky["outcome"])
	}
	attempts := flaky["attempts"].([]any)
	if len(attempts) != 2 {
		t.Fatalf("flaky attempts = %d, want 2", len(attempts))
	}
	first := attempts[0].(map[string]any)
	if first["ok"] != false || first["error"] != "transient" {
		t.Errorf("first attempt = %v", first)
	}
	if _, present := first["duration_ms"]; !present {
		t.Error("attempt missing duration_ms")
	}
	if _, present := first["start"]; !present {
		t.Error("attempt missing start")
	}
	doomed := byName["doomed"]
	if doomed["outcome"] != "failed" || !strings.Contains(doomed["error"].(string), "terminal") {
		t.Errorf("doomed = %v", doomed)
	}
	orphan := byName["orphan"]
	if orphan["outcome"] != "skipped" {
		t.Errorf("orphan outcome = %v", orphan["outcome"])
	}
	if _, present := orphan["start"]; present {
		t.Error("skipped task should omit start")
	}
	if _, present := orphan["attempts"]; present {
		t.Error("skipped task should omit attempts")
	}
}

// TestExecutorTracing runs the same graph with instrumentation on: the
// tracer must carry the run/task/attempt span hierarchy and the retry
// event, the registry the attempt and outcome counters.
func TestExecutorTracing(t *testing.T) {
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	trace := traceFixture(t, &Executor{Workers: 2, Tracer: tr, Metrics: reg})

	snap := tr.Snapshot()
	byName := map[string][]obs.SpanData{}
	for _, d := range snap {
		byName[d.Name] = append(byName[d.Name], d)
	}
	if len(byName["dataflow-run"]) != 1 {
		t.Fatalf("run spans = %d", len(byName["dataflow-run"]))
	}
	run := byName["dataflow-run"][0]
	if !run.Ended {
		t.Error("run span not ended")
	}
	if got := run.Attr("outcomes"); !strings.Contains(got, "1 ok, 1 failed, 1 skipped") {
		t.Errorf("run outcomes attr = %q", got)
	}
	flaky := byName["flaky"]
	if len(flaky) != 1 || flaky[0].ParentID != run.ID {
		t.Fatalf("flaky span = %+v", flaky)
	}
	if got := flaky[0].Attr("outcome"); got != "ok after 2 attempts" {
		t.Errorf("flaky outcome attr = %q", got)
	}
	if len(flaky[0].Events) != 1 || !strings.Contains(flaky[0].Events[0].Msg, "retry 1") {
		t.Errorf("flaky events = %+v", flaky[0].Events)
	}
	// Attempt spans nest under their task: flaky 2, doomed 2.
	attempts := 0
	for name, spans := range byName {
		if strings.HasPrefix(name, "attempt ") {
			attempts += len(spans)
		}
	}
	if attempts != 4 {
		t.Errorf("attempt spans = %d, want 4", attempts)
	}
	// Skipped tasks get no span (they never ran).
	if len(byName["orphan"]) != 0 {
		t.Errorf("orphan has %d spans, want 0", len(byName["orphan"]))
	}

	counts := map[string]int64{
		"dataflow_attempts_total":      4,
		"dataflow_retries_total":       2,
		"dataflow_tasks_total":         int64(len(trace.Tasks)),
		"dataflow_tasks_ok_total":      1,
		"dataflow_tasks_failed_total":  1,
		"dataflow_tasks_skipped_total": 1,
	}
	for name, want := range counts {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("dataflow_running_tasks").Value(); got != 0 {
		t.Errorf("running gauge = %d after run, want 0", got)
	}
	if got := reg.Histogram("dataflow_task_seconds", obs.LatencyBuckets).Count(); got != 2 {
		t.Errorf("task latency observations = %d, want 2", got)
	}
}

// TestDOTTraceCarriesDurations pins the §satellite contract that the
// status DOT and the tracer agree: every executed task label carries a
// wall time.
func TestDOTTraceCarriesDurations(t *testing.T) {
	g := NewGraph()
	g.Add(Task{Name: "quick", Writes: []string{"q"},
		Run: func(context.Context) error { return nil }})
	trace, err := (&Executor{Workers: 1}).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOTTrace(trace)
	if !strings.Contains(dot, `ok (`) {
		t.Errorf("DOTTrace label missing duration:\n%s", dot)
	}
}
