// Package dataflow is the workflow-composition engine standing in for
// Swift/T. Tasks are written as an apparently linear list, each declaring
// the files it reads and writes; the engine infers the dependency DAG from
// those file references, executes independent tasks concurrently on N
// workers (the paper's "parallel pipelines" model), and exports the graph
// as DOT — which is how this reproduction regenerates Figure 2.
package dataflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// fmtSpanDur renders a task duration at a precision that stays readable
// across microsecond no-op tasks and multi-second stages.
func fmtSpanDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

// Task is one workflow stage with declared data dependencies.
type Task struct {
	Name   string
	Reads  []string
	Writes []string
	Run    func(ctx context.Context) error
	// Policy overrides the executor's DefaultPolicy for this task; nil
	// inherits the default.
	Policy *Policy
}

// Graph is a set of tasks with inferred dependencies.
type Graph struct {
	tasks   []*Task
	writers map[string]int // file → producing task index
	names   map[string]int // task name → index (duplicate detection)
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{writers: map[string]int{}, names: map[string]int{}}
}

// Add appends a task. Every file may have at most one writer; a task must
// have a name and a body.
func (g *Graph) Add(t Task) error {
	if t.Name == "" {
		return errors.New("dataflow: task needs a name")
	}
	if t.Run == nil {
		return fmt.Errorf("dataflow: task %q has no body", t.Name)
	}
	if _, ok := g.names[t.Name]; ok {
		return fmt.Errorf("dataflow: duplicate task name %q", t.Name)
	}
	for _, w := range t.Writes {
		if prev, ok := g.writers[w]; ok {
			return fmt.Errorf("dataflow: file %q written by both %q and %q",
				w, g.tasks[prev].Name, t.Name)
		}
	}
	idx := len(g.tasks)
	tt := t
	g.tasks = append(g.tasks, &tt)
	g.names[t.Name] = idx
	for _, w := range t.Writes {
		g.writers[w] = idx
	}
	return nil
}

// Len returns the task count.
func (g *Graph) Len() int { return len(g.tasks) }

// deps returns, for each task, the set of upstream task indices.
func (g *Graph) deps() [][]int {
	out := make([][]int, len(g.tasks))
	for i, t := range g.tasks {
		seen := map[int]bool{}
		for _, r := range t.Reads {
			if w, ok := g.writers[r]; ok && w != i && !seen[w] {
				seen[w] = true
				out[i] = append(out[i], w)
			}
		}
		sort.Ints(out[i])
	}
	return out
}

// Validate checks for dependency cycles.
func (g *Graph) Validate() error {
	_, err := g.levels()
	return err
}

// levels returns tasks grouped by topological depth — the "horizontal
// rows" of Figure 2 whose members may execute concurrently. The DFS is
// iterative: graphs arrive from generators at six-figure task counts,
// and a deep linear chain must not grow the goroutine stack per task.
func (g *Graph) levels() ([][]int, error) {
	deps := g.deps()
	depth := make([]int, len(g.tasks))
	state := make([]int, len(g.tasks)) // 0 unvisited, 1 visiting, 2 done
	type frame struct {
		node int
		next int // index into deps[node] of the next edge to follow
	}
	var stack []frame
	for root := range g.tasks {
		if state[root] != 0 {
			continue
		}
		state[root] = 1
		stack = append(stack[:0], frame{node: root})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(deps[f.node]) {
				u := deps[f.node][f.next]
				f.next++
				switch state[u] {
				case 1:
					return nil, fmt.Errorf("dataflow: dependency cycle through %q", g.tasks[u].Name)
				case 0:
					state[u] = 1
					stack = append(stack, frame{node: u})
				}
				continue
			}
			d := 0
			for _, u := range deps[f.node] {
				if depth[u]+1 > d {
					d = depth[u] + 1
				}
			}
			depth[f.node] = d
			state[f.node] = 2
			stack = stack[:len(stack)-1]
		}
	}
	maxDepth := 0
	for i := range g.tasks {
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
	}
	levels := make([][]int, maxDepth+1)
	for i, d := range depth {
		levels[d] = append(levels[d], i)
	}
	return levels, nil
}

// Rows returns the task names by concurrency row.
func (g *Graph) Rows() ([][]string, error) {
	levels, err := g.levels()
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(levels))
	for d, idxs := range levels {
		for _, i := range idxs {
			out[d] = append(out[d], g.tasks[i].Name)
		}
	}
	return out, nil
}

// DOT exports the inferred dataflow diagram in Graphviz format, tasks as
// boxes ranked by row — the Figure 2 artifact.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph workflow {\n  rankdir=TB;\n  node [shape=box];\n")
	for _, t := range g.tasks {
		fmt.Fprintf(&b, "  %q;\n", t.Name)
	}
	deps := g.deps()
	for i, ds := range deps {
		for _, u := range ds {
			fmt.Fprintf(&b, "  %q -> %q;\n", g.tasks[u].Name, g.tasks[i].Name)
		}
	}
	if levels, err := g.levels(); err == nil {
		for _, row := range levels {
			if len(row) < 2 {
				continue
			}
			names := make([]string, len(row))
			for j, i := range row {
				names[j] = fmt.Sprintf("%q", g.tasks[i].Name)
			}
			fmt.Fprintf(&b, "  { rank=same; %s }\n", strings.Join(names, "; "))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DOTTrace renders the workflow diagram annotated with what actually
// happened in a run: successful tasks in green with their wall time,
// failures in red with attempt count and duration, skipped tasks dashed
// grey. This is the post-run companion to DOT — the Figure 2 shape plus
// the execution record, and its timings match the run tracer's spans
// (both measure the same task start/end instants).
func (g *Graph) DOTTrace(tr *Trace) string {
	byName := make(map[string]*TaskTrace, len(tr.Tasks))
	for i := range tr.Tasks {
		byName[tr.Tasks[i].Name] = &tr.Tasks[i]
	}
	var b strings.Builder
	b.WriteString("digraph workflow {\n  rankdir=TB;\n  node [shape=box];\n")
	for _, t := range g.tasks {
		tt, ok := byName[t.Name]
		switch {
		case !ok:
			fmt.Fprintf(&b, "  %q [color=gray, label=\"%s\\nnot run\"];\n", t.Name, t.Name)
		case tt.Skipped:
			fmt.Fprintf(&b, "  %q [color=gray, style=dashed, label=\"%s\\nskipped\"];\n", t.Name, t.Name)
		case tt.Err != nil:
			fmt.Fprintf(&b, "  %q [color=red, label=\"%s\\nfailed (%d attempts, %s)\"];\n",
				t.Name, t.Name, len(tt.Attempts), fmtSpanDur(tt.End.Sub(tt.Start)))
		case len(tt.Attempts) > 1:
			fmt.Fprintf(&b, "  %q [color=orange, label=\"%s\\nok after %d attempts (%s)\"];\n",
				t.Name, t.Name, len(tt.Attempts), fmtSpanDur(tt.End.Sub(tt.Start)))
		default:
			fmt.Fprintf(&b, "  %q [color=darkgreen, label=\"%s\\nok (%s)\"];\n",
				t.Name, t.Name, fmtSpanDur(tt.End.Sub(tt.Start)))
		}
	}
	deps := g.deps()
	for i, ds := range deps {
		for _, u := range ds {
			fmt.Fprintf(&b, "  %q -> %q;\n", g.tasks[u].Name, g.tasks[i].Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
