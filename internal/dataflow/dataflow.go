// Package dataflow is the workflow-composition engine standing in for
// Swift/T. Tasks are written as an apparently linear list, each declaring
// the files it reads and writes; the engine infers the dependency DAG from
// those file references, executes independent tasks concurrently on N
// workers (the paper's "parallel pipelines" model), and exports the graph
// as DOT — which is how this reproduction regenerates Figure 2.
package dataflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Task is one workflow stage with declared data dependencies.
type Task struct {
	Name   string
	Reads  []string
	Writes []string
	Run    func(ctx context.Context) error
}

// Graph is a set of tasks with inferred dependencies.
type Graph struct {
	tasks   []*Task
	writers map[string]int // file → producing task index
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{writers: map[string]int{}}
}

// Add appends a task. Every file may have at most one writer; a task must
// have a name and a body.
func (g *Graph) Add(t Task) error {
	if t.Name == "" {
		return errors.New("dataflow: task needs a name")
	}
	if t.Run == nil {
		return fmt.Errorf("dataflow: task %q has no body", t.Name)
	}
	for _, p := range g.tasks {
		if p.Name == t.Name {
			return fmt.Errorf("dataflow: duplicate task name %q", t.Name)
		}
	}
	for _, w := range t.Writes {
		if prev, ok := g.writers[w]; ok {
			return fmt.Errorf("dataflow: file %q written by both %q and %q",
				w, g.tasks[prev].Name, t.Name)
		}
	}
	idx := len(g.tasks)
	tt := t
	g.tasks = append(g.tasks, &tt)
	for _, w := range t.Writes {
		g.writers[w] = idx
	}
	return nil
}

// Len returns the task count.
func (g *Graph) Len() int { return len(g.tasks) }

// deps returns, for each task, the set of upstream task indices.
func (g *Graph) deps() [][]int {
	out := make([][]int, len(g.tasks))
	for i, t := range g.tasks {
		seen := map[int]bool{}
		for _, r := range t.Reads {
			if w, ok := g.writers[r]; ok && w != i && !seen[w] {
				seen[w] = true
				out[i] = append(out[i], w)
			}
		}
		sort.Ints(out[i])
	}
	return out
}

// Validate checks for dependency cycles.
func (g *Graph) Validate() error {
	_, err := g.levels()
	return err
}

// levels returns tasks grouped by topological depth — the "horizontal
// rows" of Figure 2 whose members may execute concurrently.
func (g *Graph) levels() ([][]int, error) {
	deps := g.deps()
	depth := make([]int, len(g.tasks))
	state := make([]int, len(g.tasks)) // 0 unvisited, 1 visiting, 2 done
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("dataflow: dependency cycle through %q", g.tasks[i].Name)
		case 2:
			return nil
		}
		state[i] = 1
		d := 0
		for _, u := range deps[i] {
			if err := visit(u); err != nil {
				return err
			}
			if depth[u]+1 > d {
				d = depth[u] + 1
			}
		}
		depth[i] = d
		state[i] = 2
		return nil
	}
	maxDepth := 0
	for i := range g.tasks {
		if err := visit(i); err != nil {
			return nil, err
		}
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
	}
	levels := make([][]int, maxDepth+1)
	for i, d := range depth {
		levels[d] = append(levels[d], i)
	}
	return levels, nil
}

// Rows returns the task names by concurrency row.
func (g *Graph) Rows() ([][]string, error) {
	levels, err := g.levels()
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(levels))
	for d, idxs := range levels {
		for _, i := range idxs {
			out[d] = append(out[d], g.tasks[i].Name)
		}
	}
	return out, nil
}

// DOT exports the inferred dataflow diagram in Graphviz format, tasks as
// boxes ranked by row — the Figure 2 artifact.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph workflow {\n  rankdir=TB;\n  node [shape=box];\n")
	for _, t := range g.tasks {
		fmt.Fprintf(&b, "  %q;\n", t.Name)
	}
	deps := g.deps()
	for i, ds := range deps {
		for _, u := range ds {
			fmt.Fprintf(&b, "  %q -> %q;\n", g.tasks[u].Name, g.tasks[i].Name)
		}
	}
	if levels, err := g.levels(); err == nil {
		for _, row := range levels {
			if len(row) < 2 {
				continue
			}
			names := make([]string, len(row))
			for j, i := range row {
				names[j] = fmt.Sprintf("%q", g.tasks[i].Name)
			}
			fmt.Fprintf(&b, "  { rank=same; %s }\n", strings.Join(names, "; "))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// TaskTrace records one task's execution.
type TaskTrace struct {
	Name    string
	Start   time.Time
	End     time.Time
	Err     error
	Workers int // concurrent tasks running when this one started
}

// Trace is the execution record of one run.
type Trace struct {
	Tasks          []TaskTrace
	MaxConcurrency int
}

// Executor runs a graph with bounded physical concurrency — the N in the
// paper's "swift-t -n N workflow.swift" invocation.
type Executor struct {
	Workers int
}

// Run executes every task respecting dependencies. The first task error
// cancels the remaining work and is returned (wrapped); tasks already
// running are allowed to finish.
func (e *Executor) Run(ctx context.Context, g *Graph) (*Trace, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	workers := e.Workers
	if workers <= 0 {
		workers = 1
	}
	deps := g.deps()
	n := len(g.tasks)
	dependents := make([][]int, n)
	indeg := make([]int, n)
	for i, ds := range deps {
		indeg[i] = len(ds)
		for _, u := range ds {
			dependents[u] = append(dependents[u], i)
		}
	}

	if n == 0 {
		return &Trace{}, nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu        sync.Mutex
		trace     = &Trace{Tasks: make([]TaskTrace, 0, n)}
		firstErr  error
		running   int
		completed int
	)
	ready := make(chan int, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready <- i
		}
	}

	// A fixed worker pool drains ready until every task finished, one
	// failed, or the caller cancelled.
	var workerWG sync.WaitGroup
	doneCh := make(chan struct{})
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-doneCh:
					return
				case i := <-ready:
					t := g.tasks[i]
					mu.Lock()
					running++
					if running > trace.MaxConcurrency {
						trace.MaxConcurrency = running
					}
					startedWith := running
					mu.Unlock()

					tt := TaskTrace{Name: t.Name, Start: time.Now(), Workers: startedWith}
					err := t.Run(runCtx)
					tt.End = time.Now()
					tt.Err = err

					mu.Lock()
					running--
					completed++
					trace.Tasks = append(trace.Tasks, tt)
					if err != nil && firstErr == nil {
						firstErr = fmt.Errorf("dataflow: task %q: %w", t.Name, err)
						cancel()
					}
					if err == nil {
						for _, d := range dependents[i] {
							indeg[d]--
							if indeg[d] == 0 {
								ready <- d
							}
						}
					}
					if completed == n || firstErr != nil {
						select {
						case <-doneCh:
						default:
							close(doneCh)
						}
					}
					mu.Unlock()
				}
			}
		}()
	}
	workerWG.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return trace, firstErr
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return trace, ctxErr
	}
	if completed != n {
		return trace, fmt.Errorf("dataflow: %d of %d tasks never became runnable", n-completed, n)
	}
	return trace, nil
}
