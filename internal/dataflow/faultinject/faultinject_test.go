package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func ok(context.Context) error { return nil }

func TestScriptedFaults(t *testing.T) {
	in := New(1, Options{})
	in.Script("curate", Error, Error, None)
	body := in.Wrap("curate", ok)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := body(ctx); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want injected", i, err)
		}
	}
	if err := body(ctx); err != nil {
		t.Fatalf("call 2: %v, want success", err)
	}
	if in.Calls("curate") != 3 {
		t.Errorf("calls = %d", in.Calls("curate"))
	}
	if in.Injected(Error) != 2 {
		t.Errorf("injected errors = %d", in.Injected(Error))
	}
}

func TestStallBlocksUntilCancelled(t *testing.T) {
	in := New(1, Options{})
	in.Script("hang", Stall)
	body := in.Wrap("hang", ok)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := body(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("stall returned after %v, before the deadline", d)
	}
}

func TestDelayIsContextAware(t *testing.T) {
	in := New(1, Options{Delay: 10 * time.Second})
	in.Script("slow", Delay)
	body := in.Wrap("slow", ok)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := body(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("delayed call ignored cancellation for %v", d)
	}
}

// decisions drains n decisions for every named task from an injector.
func decisions(in *Injector, names []string, n int) map[string][]Kind {
	out := map[string][]Kind{}
	for _, name := range names {
		for i := 0; i < n; i++ {
			k, _ := in.decide(name)
			out[name] = append(out[name], k)
		}
	}
	return out
}

func TestDeterministicAcrossInterleavings(t *testing.T) {
	opts := Options{ErrorRate: 0.3, DelayRate: 0.2, StallRate: 0.1}
	names := []string{"obtain", "curate", "plot", "llm-insight"}

	// Serial, task by task.
	serial := decisions(New(42, opts), names, 16)

	// Concurrent, interleaved arbitrarily across tasks.
	in := New(42, opts)
	var wg sync.WaitGroup
	var mu sync.Mutex
	concurrent := map[string][]Kind{}
	for _, name := range names {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				k, call := in.decide(name)
				mu.Lock()
				for len(concurrent[name]) <= call {
					concurrent[name] = append(concurrent[name], None)
				}
				concurrent[name][call] = k
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	some := false
	for _, name := range names {
		for i := range serial[name] {
			if serial[name][i] != concurrent[name][i] {
				t.Fatalf("task %s call %d: serial %v, concurrent %v",
					name, i, serial[name][i], concurrent[name][i])
			}
			if serial[name][i] != None {
				some = true
			}
		}
	}
	if !some {
		t.Error("no faults drawn at these rates — schedule is inert")
	}

	// A different seed produces a different schedule.
	other := decisions(New(43, opts), names, 16)
	same := true
	for _, name := range names {
		for i := range serial[name] {
			if serial[name][i] != other[name][i] {
				same = false
			}
		}
	}
	if same {
		t.Error("seeds 42 and 43 drew identical schedules")
	}
}
