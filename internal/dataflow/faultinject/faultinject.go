// Package faultinject is a deterministic fault-injection harness for
// dataflow task bodies. An Injector wraps a task's Run function and,
// consulting a seeded per-task schedule, makes individual invocations
// fail, stall until cancellation, or run late — the flaky-external-API
// conditions the executor's retry policies exist for.
//
// Determinism is the point: each task name gets its own RNG stream
// derived from (seed, name), so the k-th call of a given task sees the
// same decision regardless of how goroutines interleave across tasks.
// Tests can therefore assert exact outcomes for a seed, and a failing
// stress-test seed replays identically.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// None lets the call through untouched.
	None Kind = iota
	// Error fails the call without running the wrapped body.
	Error
	// Delay sleeps (context-aware) before running the body.
	Delay
	// Stall blocks until the context is cancelled, then returns its
	// error — the "hung upstream" that only a per-attempt timeout can
	// unwedge.
	Stall
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Delay:
		return "delay"
	case Stall:
		return "stall"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the sentinel wrapped by every injected failure.
var ErrInjected = errors.New("faultinject: injected failure")

// Options sets the probabilistic schedule. Rates are per-call
// probabilities drawn in order error, delay, stall from one uniform
// sample; their sum should stay ≤ 1.
type Options struct {
	ErrorRate float64
	DelayRate float64
	StallRate float64
	// Delay is how long a Delay fault sleeps before running the body.
	Delay time.Duration
}

// Injector derives per-task fault schedules from one seed.
type Injector struct {
	seed int64
	opts Options

	mu    sync.Mutex
	tasks map[string]*taskState
}

type taskState struct {
	rng      *rand.Rand
	calls    int
	script   []Kind // explicit schedule; consulted before the RNG
	injected map[Kind]int
}

// New returns an injector for the given seed and probabilities.
func New(seed int64, opts Options) *Injector {
	return &Injector{seed: seed, opts: opts, tasks: map[string]*taskState{}}
}

func (in *Injector) state(name string) *taskState {
	st, ok := in.tasks[name]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(name))
		st = &taskState{
			rng:      rand.New(rand.NewSource(in.seed ^ int64(h.Sum64()))),
			injected: map[Kind]int{},
		}
		in.tasks[name] = st
	}
	return st
}

// Script pins an explicit fault sequence for one task: call k receives
// faults[k]; calls past the end fall back to the probabilistic schedule.
// Scripts make "fail twice then succeed" retry tests exact.
func (in *Injector) Script(name string, faults ...Kind) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.state(name).script = append(in.state(name).script, faults...)
}

// decide draws the fault for the next call of name.
func (in *Injector) decide(name string) (Kind, int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.state(name)
	call := st.calls
	st.calls++
	var k Kind
	if call < len(st.script) {
		k = st.script[call]
	} else {
		u := st.rng.Float64()
		switch {
		case u < in.opts.ErrorRate:
			k = Error
		case u < in.opts.ErrorRate+in.opts.DelayRate:
			k = Delay
		case u < in.opts.ErrorRate+in.opts.DelayRate+in.opts.StallRate:
			k = Stall
		default:
			k = None
		}
	}
	if k != None {
		st.injected[k]++
	}
	return k, call
}

// Wrap returns a body that consults the schedule before delegating to fn.
func (in *Injector) Wrap(name string, fn func(context.Context) error) func(context.Context) error {
	return func(ctx context.Context) error {
		k, call := in.decide(name)
		switch k {
		case Error:
			return fmt.Errorf("%w: task %q call %d", ErrInjected, name, call)
		case Delay:
			timer := time.NewTimer(in.opts.Delay)
			defer timer.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
			}
		case Stall:
			<-ctx.Done()
			return ctx.Err()
		}
		return fn(ctx)
	}
}

// Calls reports how many invocations of name the injector has seen.
func (in *Injector) Calls(name string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.tasks[name]; ok {
		return st.calls
	}
	return 0
}

// Injected totals the faults of one kind delivered across all tasks.
func (in *Injector) Injected(k Kind) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	total := 0
	for _, st := range in.tasks {
		total += st.injected[k]
	}
	return total
}
