package dataflow

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryUntilSuccess(t *testing.T) {
	g := NewGraph()
	var calls atomic.Int32
	g.Add(Task{
		Name: "flaky",
		Policy: &Policy{
			Attempts: 4,
			Backoff:  time.Millisecond,
			Jitter:   0.5,
		},
		Run: func(context.Context) error {
			if calls.Add(1) < 3 {
				return errors.New("transient")
			}
			return nil
		},
	})
	trace, err := (&Executor{Workers: 2}).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
	tt := trace.Tasks[0]
	if len(tt.Attempts) != 3 || tt.Attempts[0].Err == nil || tt.Attempts[2].Err != nil {
		t.Errorf("attempts = %+v", tt.Attempts)
	}
	if got := tt.Outcome(); got != "ok after 3 attempts" {
		t.Errorf("Outcome = %q", got)
	}
}

func TestRetriesExhausted(t *testing.T) {
	g := NewGraph()
	boom := errors.New("boom")
	var calls atomic.Int32
	g.Add(Task{
		Name:   "doomed",
		Policy: &Policy{Attempts: 3, Backoff: time.Millisecond},
		Run: func(context.Context) error {
			calls.Add(1)
			return boom
		},
	})
	trace, err := (&Executor{Workers: 1}).Run(context.Background(), g)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
	if len(trace.Tasks[0].Attempts) != 3 {
		t.Errorf("attempts = %d", len(trace.Tasks[0].Attempts))
	}
}

func TestPerAttemptTimeoutUnwedgesStall(t *testing.T) {
	g := NewGraph()
	var calls atomic.Int32
	g.Add(Task{
		Name:   "stalls-once",
		Policy: &Policy{Attempts: 2, Timeout: 20 * time.Millisecond},
		Run: func(ctx context.Context) error {
			if calls.Add(1) == 1 {
				<-ctx.Done() // hang until the per-attempt deadline fires
				return ctx.Err()
			}
			return nil
		},
	})
	start := time.Now()
	trace, err := (&Executor{Workers: 1}).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want 2", calls.Load())
	}
	if !errors.Is(trace.Tasks[0].Attempts[0].Err, context.DeadlineExceeded) {
		t.Errorf("first attempt err = %v", trace.Tasks[0].Attempts[0].Err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("stalled task took %v despite 20ms attempt timeout", d)
	}
}

// TestContinueOnErrorRunsIndependentBranches is the acceptance shape: K
// failing tasks take down only their own downstream subgraphs, every
// other task completes, and the run error reports all K failures.
func TestContinueOnErrorRunsIndependentBranches(t *testing.T) {
	g := NewGraph()
	pol := &Policy{ContinueOnError: true}
	var ran atomic.Int32
	ok := func(context.Context) error { ran.Add(1); return nil }
	boom := errors.New("boom")

	// Two independent failing branches and one healthy branch:
	//   badA -> downA1 -> downA2,  badB -> downB,  good1 -> good2
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Add(Task{Name: "badA", Policy: pol, Writes: []string{"a"},
		Run: func(context.Context) error { return fmt.Errorf("A: %w", boom) }}))
	must(g.Add(Task{Name: "downA1", Policy: pol, Reads: []string{"a"}, Writes: []string{"a1"}, Run: ok}))
	must(g.Add(Task{Name: "downA2", Policy: pol, Reads: []string{"a1"}, Run: ok}))
	must(g.Add(Task{Name: "badB", Policy: pol, Writes: []string{"b"},
		Run: func(context.Context) error { return fmt.Errorf("B: %w", boom) }}))
	must(g.Add(Task{Name: "downB", Policy: pol, Reads: []string{"b"}, Run: ok}))
	must(g.Add(Task{Name: "good1", Policy: pol, Writes: []string{"g"}, Run: ok}))
	must(g.Add(Task{Name: "good2", Policy: pol, Reads: []string{"g"}, Run: ok}))

	trace, err := (&Executor{Workers: 3}).Run(context.Background(), g)
	var runErr *RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if len(runErr.Errs) != 2 {
		t.Fatalf("reported %d failures, want 2: %v", len(runErr.Errs), runErr)
	}
	if !errors.Is(err, boom) {
		t.Error("RunError should unwrap to the task errors")
	}
	if ran.Load() != 2 { // good1, good2
		t.Errorf("%d healthy tasks ran, want 2", ran.Load())
	}
	okN, failed, skipped, _ := trace.Counts()
	if okN != 2 || failed != 2 || skipped != 3 {
		t.Errorf("counts ok/failed/skipped = %d/%d/%d, want 2/2/3", okN, failed, skipped)
	}
	if len(trace.Tasks) != g.Len() {
		t.Errorf("trace has %d entries for %d tasks", len(trace.Tasks), g.Len())
	}
	for _, tt := range trace.Tasks {
		if tt.Skipped && !errors.Is(tt.Err, ErrSkipped) {
			t.Errorf("skipped entry %q lacks ErrSkipped: %v", tt.Name, tt.Err)
		}
	}
}

// TestBackoffAbortsOnCancel pins the satellite bugfix: a cancelled
// context must interrupt the backoff sleep itself, not wait out the
// full (doubling) schedule.
func TestBackoffAbortsOnCancel(t *testing.T) {
	g := NewGraph()
	g.Add(Task{
		Name:   "always-fails",
		Policy: &Policy{Attempts: 10, Backoff: 10 * time.Second},
		Run:    func(context.Context) error { return errors.New("nope") },
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond) // let the first attempt fail and the sleep start
		cancel()
	}()
	start := time.Now()
	_, err := (&Executor{Workers: 1}).Run(ctx, g)
	if err == nil {
		t.Fatal("cancelled run should report an error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v to interrupt a 10s backoff", d)
	}
}

func TestContinueOnErrorMixedWithFailFast(t *testing.T) {
	// A fail-fast task failing aborts the run even when other tasks are
	// tolerant.
	g := NewGraph()
	tolerant := &Policy{ContinueOnError: true}
	g.Add(Task{Name: "tolerant-fail", Policy: tolerant,
		Run: func(context.Context) error { return errors.New("soft") }})
	g.Add(Task{Name: "strict-fail", Reads: []string{"nothing"},
		Run: func(context.Context) error { return errors.New("hard") }})
	_, err := (&Executor{Workers: 1}).Run(context.Background(), g)
	if err == nil {
		t.Fatal("want error")
	}
	var runErr *RunError
	if errors.As(err, &runErr) {
		t.Fatalf("fail-fast failure must take priority over RunError, got %v", err)
	}
}

// TestDeepChainIterativeDFS is the regression for the recursive
// cycle-detection rewrite: a deep linear dependency chain must validate
// without growing the stack per task.
func TestDeepChainIterativeDFS(t *testing.T) {
	const depth = 100_000
	g := NewGraph()
	prev := ""
	for i := 0; i < depth; i++ {
		var reads []string
		if prev != "" {
			reads = []string{prev}
		}
		out := fmt.Sprintf("f%d", i)
		if err := g.Add(Task{Name: fmt.Sprintf("t%d", i), Reads: reads,
			Writes: []string{out}, Run: noop}); err != nil {
			t.Fatal(err)
		}
		prev = out
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rows, err := g.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != depth {
		t.Fatalf("rows = %d, want %d", len(rows), depth)
	}
	// A cycle at the bottom of the deep chain is still caught.
	if err := g.Add(Task{Name: "closer", Reads: []string{prev}, Writes: []string{"f0loop"}, Run: noop}); err != nil {
		t.Fatal(err)
	}
	g2 := NewGraph()
	g2.Add(Task{Name: "a", Reads: []string{"z"}, Writes: []string{"x"}, Run: noop})
	g2.Add(Task{Name: "b", Reads: []string{"x"}, Writes: []string{"z"}, Run: noop})
	if err := g2.Validate(); err == nil {
		t.Error("cycle undetected after iterative rewrite")
	}
}

func TestDOTTraceAnnotatesOutcomes(t *testing.T) {
	g := NewGraph()
	pol := &Policy{ContinueOnError: true}
	g.Add(Task{Name: "good", Policy: pol, Writes: []string{"g"}, Run: noop})
	g.Add(Task{Name: "bad", Policy: pol, Writes: []string{"b"},
		Run: func(context.Context) error { return errors.New("x") }})
	g.Add(Task{Name: "child", Policy: pol, Reads: []string{"b"}, Run: noop})
	trace, err := (&Executor{Workers: 1}).Run(context.Background(), g)
	var runErr *RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("err = %v", err)
	}
	dot := g.DOTTrace(trace)
	for _, want := range []string{
		`"good" [color=darkgreen`,
		`"bad" [color=red`,
		`"child" [color=gray, style=dashed`,
		`"bad" -> "child"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOTTrace missing %q:\n%s", want, dot)
		}
	}
}
