package dataflow

import (
	"encoding/json"
	"time"
)

// JSON export of a run trace. Field names are part of the artifact
// contract (workflow-trace.json): external tooling and the CI smoke
// step parse them, so they must stay stable.

// TraceJSON is the exported form of a Trace.
type TraceJSON struct {
	Tasks          []TaskTraceJSON `json:"tasks"`
	MaxConcurrency int             `json:"max_concurrency"`
	OK             int             `json:"ok"`
	Failed         int             `json:"failed"`
	Skipped        int             `json:"skipped"`
	Retried        int             `json:"retried"`
}

// TaskTraceJSON is one task's execution record.
type TaskTraceJSON struct {
	Name string `json:"name"`
	// Outcome is one of "ok", "failed", "skipped".
	Outcome string `json:"outcome"`
	// Start is RFC 3339 with nanoseconds; empty for skipped tasks.
	Start      string        `json:"start,omitempty"`
	DurationMS float64       `json:"duration_ms"`
	Workers    int           `json:"workers,omitempty"`
	Error      string        `json:"error,omitempty"`
	Attempts   []AttemptJSON `json:"attempts,omitempty"`
}

// AttemptJSON is one try of one task.
type AttemptJSON struct {
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	OK         bool    `json:"ok"`
	Error      string  `json:"error,omitempty"`
}

// Export converts the trace to its stable JSON schema.
func (t *Trace) Export() TraceJSON {
	ok, failed, skipped, retried := t.Counts()
	out := TraceJSON{
		Tasks:          make([]TaskTraceJSON, 0, len(t.Tasks)),
		MaxConcurrency: t.MaxConcurrency,
		OK:             ok, Failed: failed, Skipped: skipped, Retried: retried,
	}
	for i := range t.Tasks {
		tt := &t.Tasks[i]
		tj := TaskTraceJSON{Name: tt.Name, Workers: tt.Workers}
		switch {
		case tt.Skipped:
			tj.Outcome = "skipped"
		case tt.Err != nil:
			tj.Outcome = "failed"
		default:
			tj.Outcome = "ok"
		}
		if !tt.Start.IsZero() {
			tj.Start = tt.Start.Format(time.RFC3339Nano)
			tj.DurationMS = durMS(tt.Start, tt.End)
		}
		if tt.Err != nil {
			tj.Error = tt.Err.Error()
		}
		for _, at := range tt.Attempts {
			aj := AttemptJSON{
				Start:      at.Start.Format(time.RFC3339Nano),
				DurationMS: durMS(at.Start, at.End),
				OK:         at.Err == nil,
			}
			if at.Err != nil {
				aj.Error = at.Err.Error()
			}
			tj.Attempts = append(tj.Attempts, aj)
		}
		out.Tasks = append(out.Tasks, tj)
	}
	return out
}

// JSON renders the trace as indented JSON.
func (t *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(t.Export(), "", "  ")
}

func durMS(start, end time.Time) float64 {
	return float64(end.Sub(start)) / float64(time.Millisecond)
}
