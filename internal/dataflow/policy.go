package dataflow

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Policy controls how the executor runs one task: how many times it is
// attempted, how long each attempt may take, how retries are spaced, and
// whether a terminal failure aborts the run or only the task's own
// downstream subgraph. The zero value is the classic fail-fast,
// single-attempt behaviour.
type Policy struct {
	// Attempts is the total number of tries (first run + retries).
	// Values <= 0 mean one attempt.
	Attempts int
	// Timeout bounds each attempt; 0 means no per-attempt deadline. The
	// task body must honour its context for the deadline to take effect.
	Timeout time.Duration
	// Backoff is the delay before the first retry, doubled per retry;
	// 0 retries immediately.
	Backoff time.Duration
	// Jitter randomises each backoff delay by up to this fraction of the
	// delay (0 disables, 1 allows up to a full extra delay). Jitter is
	// drawn from the executor's seeded RNG, so runs are reproducible.
	Jitter float64
	// ContinueOnError keeps independent branches running after this task
	// fails terminally: only the task's transitive dependents are
	// skipped, and Run reports every failure, not just the first.
	ContinueOnError bool
}

// normalized clamps the policy to executable values.
func (p Policy) normalized() Policy {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	if p.Backoff < 0 {
		p.Backoff = 0
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// ErrSkipped marks trace entries for tasks that never ran — their
// upstream failed or the run was aborted before they became runnable.
var ErrSkipped = errors.New("dataflow: task skipped")

// RunError aggregates every terminal task failure from a run that kept
// going under ContinueOnError. errors.Is/As see through it to the
// individual task errors.
type RunError struct {
	Errs []error
}

func (e *RunError) Error() string {
	if len(e.Errs) == 1 {
		return e.Errs[0].Error()
	}
	msgs := make([]string, len(e.Errs))
	for i, err := range e.Errs {
		msgs[i] = err.Error()
	}
	return fmt.Sprintf("dataflow: %d tasks failed: %s", len(e.Errs), strings.Join(msgs, "; "))
}

// Unwrap exposes the individual task errors to errors.Is/As.
func (e *RunError) Unwrap() []error { return e.Errs }

// Attempt records one try of one task.
type Attempt struct {
	Start time.Time
	End   time.Time
	Err   error
}

// TaskTrace records one task's execution, including every attempt the
// retry policy made. Skipped tasks (upstream failure, aborted run)
// appear with Skipped set and no attempts, so a trace accounts for every
// task in the graph exactly once.
type TaskTrace struct {
	Name     string
	Start    time.Time
	End      time.Time
	Err      error // final outcome: nil on success
	Workers  int   // concurrent tasks running when this one started
	Attempts []Attempt
	Skipped  bool
}

// Outcome summarises the entry for logs and DOT annotations.
func (tt *TaskTrace) Outcome() string {
	switch {
	case tt.Skipped:
		return "skipped"
	case tt.Err != nil:
		return "failed"
	case len(tt.Attempts) > 1:
		return fmt.Sprintf("ok after %d attempts", len(tt.Attempts))
	default:
		return "ok"
	}
}

// Trace is the execution record of one run.
type Trace struct {
	Tasks          []TaskTrace
	MaxConcurrency int
}

// Counts tallies the run by outcome; retried counts tasks that needed
// more than one attempt (whether or not they eventually succeeded).
func (t *Trace) Counts() (ok, failed, skipped, retried int) {
	for i := range t.Tasks {
		tt := &t.Tasks[i]
		switch {
		case tt.Skipped:
			skipped++
		case tt.Err != nil:
			failed++
		default:
			ok++
		}
		if len(tt.Attempts) > 1 {
			retried++
		}
	}
	return ok, failed, skipped, retried
}
