package dataflow

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func noop(context.Context) error { return nil }

func TestAddValidation(t *testing.T) {
	g := NewGraph()
	if err := g.Add(Task{Name: "", Run: noop}); err == nil {
		t.Error("unnamed task: want error")
	}
	if err := g.Add(Task{Name: "a"}); err == nil {
		t.Error("bodyless task: want error")
	}
	if err := g.Add(Task{Name: "a", Writes: []string{"f"}, Run: noop}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(Task{Name: "a", Run: noop}); err == nil {
		t.Error("duplicate name: want error")
	}
	if err := g.Add(Task{Name: "b", Writes: []string{"f"}, Run: noop}); err == nil {
		t.Error("duplicate writer: want error")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

// pipelineGraph builds the paper's shape: obtain → curate → {plots} →
// dashboard, with png/llm stages hanging off the plots.
func pipelineGraph(t *testing.T, log *[]string, mu *sync.Mutex) *Graph {
	t.Helper()
	g := NewGraph()
	record := func(name string) func(context.Context) error {
		return func(context.Context) error {
			mu.Lock()
			*log = append(*log, name)
			mu.Unlock()
			return nil
		}
	}
	add := func(name string, reads, writes []string) {
		t.Helper()
		if err := g.Add(Task{Name: name, Reads: reads, Writes: writes, Run: record(name)}); err != nil {
			t.Fatal(err)
		}
	}
	add("obtain", nil, []string{"raw.txt"})
	add("curate", []string{"raw.txt"}, []string{"clean.csv"})
	add("plot-states", []string{"clean.csv"}, []string{"states.html"})
	add("plot-waits", []string{"clean.csv"}, []string{"waits.html"})
	add("plot-backfill", []string{"clean.csv"}, []string{"backfill.html"})
	add("dashboard", []string{"states.html", "waits.html", "backfill.html"}, []string{"dash.html"})
	add("html2png", []string{"waits.html"}, []string{"waits.png"})
	add("llm-insight", []string{"waits.png"}, []string{"insight.md"})
	return g
}

func TestInferredDependencyOrder(t *testing.T) {
	var log []string
	var mu sync.Mutex
	g := pipelineGraph(t, &log, &mu)
	ex := &Executor{Workers: 4}
	trace, err := ex.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Tasks) != g.Len() {
		t.Fatalf("traced %d of %d tasks", len(trace.Tasks), g.Len())
	}
	pos := map[string]int{}
	for i, name := range log {
		pos[name] = i
	}
	orderings := [][2]string{
		{"obtain", "curate"},
		{"curate", "plot-states"},
		{"curate", "plot-waits"},
		{"plot-waits", "html2png"},
		{"html2png", "llm-insight"},
		{"plot-states", "dashboard"},
		{"plot-backfill", "dashboard"},
	}
	for _, o := range orderings {
		if pos[o[0]] > pos[o[1]] {
			t.Errorf("%s ran after %s", o[0], o[1])
		}
	}
}

func TestRowsMatchFigure2(t *testing.T) {
	var log []string
	var mu sync.Mutex
	g := pipelineGraph(t, &log, &mu)
	rows, err := g.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (%v)", len(rows), rows)
	}
	if rows[0][0] != "obtain" || rows[1][0] != "curate" {
		t.Errorf("first rows wrong: %v", rows[:2])
	}
	// The three plot stages share a row: they may run concurrently.
	if len(rows[2]) != 3 {
		t.Errorf("plot row = %v", rows[2])
	}
}

func TestDOTExport(t *testing.T) {
	var log []string
	var mu sync.Mutex
	g := pipelineGraph(t, &log, &mu)
	dot := g.DOT()
	for _, want := range []string{
		"digraph workflow",
		`"obtain" -> "curate"`,
		`"curate" -> "plot-waits"`,
		`"html2png" -> "llm-insight"`,
		"rank=same",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewGraph()
	g.Add(Task{Name: "a", Reads: []string{"y"}, Writes: []string{"x"}, Run: noop})
	g.Add(Task{Name: "b", Reads: []string{"x"}, Writes: []string{"y"}, Run: noop})
	if err := g.Validate(); err == nil {
		t.Error("cycle: want error")
	}
	if _, err := (&Executor{Workers: 2}).Run(context.Background(), g); err == nil {
		t.Error("running a cyclic graph: want error")
	}
}

func TestConcurrentExecution(t *testing.T) {
	g := NewGraph()
	var concurrent, peak int32
	slow := func(context.Context) error {
		c := atomic.AddInt32(&concurrent, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		time.Sleep(30 * time.Millisecond)
		atomic.AddInt32(&concurrent, -1)
		return nil
	}
	for _, name := range []string{"p1", "p2", "p3", "p4"} {
		if err := g.Add(Task{Name: name, Run: slow}); err != nil {
			t.Fatal(err)
		}
	}
	trace, err := (&Executor{Workers: 4}).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&peak) < 2 {
		t.Errorf("independent tasks never overlapped (peak %d)", peak)
	}
	if trace.MaxConcurrency < 2 {
		t.Errorf("trace.MaxConcurrency = %d", trace.MaxConcurrency)
	}
}

func TestSingleWorkerSerializes(t *testing.T) {
	g := NewGraph()
	var concurrent, peak int32
	slow := func(context.Context) error {
		c := atomic.AddInt32(&concurrent, 1)
		if c > atomic.LoadInt32(&peak) {
			atomic.StoreInt32(&peak, c)
		}
		time.Sleep(10 * time.Millisecond)
		atomic.AddInt32(&concurrent, -1)
		return nil
	}
	for _, name := range []string{"a", "b", "c"} {
		g.Add(Task{Name: name, Run: slow})
	}
	if _, err := (&Executor{Workers: 1}).Run(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&peak) != 1 {
		t.Errorf("single worker ran %d tasks at once", peak)
	}
}

func TestFailureCancelsDownstream(t *testing.T) {
	g := NewGraph()
	boom := errors.New("boom")
	var ranDownstream atomic.Bool
	g.Add(Task{Name: "first", Writes: []string{"x"}, Run: func(context.Context) error { return boom }})
	g.Add(Task{Name: "second", Reads: []string{"x"}, Run: func(context.Context) error {
		ranDownstream.Store(true)
		return nil
	}})
	trace, err := (&Executor{Workers: 2}).Run(context.Background(), g)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ranDownstream.Load() {
		t.Error("downstream task ran despite upstream failure")
	}
	// The trace accounts for both tasks: the failure and the skip.
	if len(trace.Tasks) != 2 {
		t.Fatalf("trace = %+v", trace.Tasks)
	}
	byName := map[string]TaskTrace{}
	for _, tt := range trace.Tasks {
		byName[tt.Name] = tt
	}
	if first := byName["first"]; first.Err == nil || first.Skipped {
		t.Errorf("first = %+v", first)
	}
	if second := byName["second"]; !second.Skipped || !errors.Is(second.Err, ErrSkipped) {
		t.Errorf("second = %+v", second)
	}
}

func TestContextCancellation(t *testing.T) {
	g := NewGraph()
	started := make(chan struct{})
	g.Add(Task{Name: "hang", Run: func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	g.Add(Task{Name: "after", Reads: []string{"never"}, Run: noop})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	_, err := (&Executor{Workers: 2}).Run(ctx, g)
	if err == nil {
		t.Error("cancelled run should report an error")
	}
}

func TestExternalInputsAssumed(t *testing.T) {
	// Files nobody writes are external inputs; reading them creates no
	// dependency and no error.
	g := NewGraph()
	g.Add(Task{Name: "only", Reads: []string{"/data/slurm-2024.txt"}, Run: noop})
	if _, err := (&Executor{Workers: 1}).Run(context.Background(), g); err != nil {
		t.Errorf("external input: %v", err)
	}
}

func TestTrivialGraph(t *testing.T) {
	g := NewGraph()
	if _, err := (&Executor{}).Run(context.Background(), g); err != nil {
		t.Errorf("empty graph should run cleanly: %v", err)
	}
	rows, err := g.Rows()
	if err != nil || len(rows) != 1 && len(rows) != 0 {
		t.Errorf("rows of empty graph: %v, %v", rows, err)
	}
}
