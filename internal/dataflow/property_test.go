package dataflow

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// randomDAG builds a layered random graph: tasks in layer k read a random
// subset of the files written by layers < k, so the graph is acyclic by
// construction.
func randomDAG(rng *rand.Rand, log *[]string, mu *sync.Mutex) (*Graph, map[string][]string) {
	g := NewGraph()
	wantBefore := map[string][]string{} // task → upstream tasks
	layers := 2 + rng.Intn(4)
	var producedFiles []string
	fileWriter := map[string]string{}
	for layer := 0; layer < layers; layer++ {
		width := 1 + rng.Intn(4)
		var newFiles []string
		for w := 0; w < width; w++ {
			name := fmt.Sprintf("t%d_%d", layer, w)
			var reads []string
			for _, f := range producedFiles {
				if rng.Float64() < 0.3 {
					reads = append(reads, f)
					wantBefore[name] = append(wantBefore[name], fileWriter[f])
				}
			}
			out := name + ".out"
			newFiles = append(newFiles, out)
			fileWriter[out] = name
			taskName := name
			g.Add(Task{
				Name:   taskName,
				Reads:  reads,
				Writes: []string{out},
				Run: func(context.Context) error {
					mu.Lock()
					*log = append(*log, taskName)
					mu.Unlock()
					return nil
				},
			})
		}
		producedFiles = append(producedFiles, newFiles...)
	}
	return g, wantBefore
}

// TestPropertyRandomDAGsRespectDependencies executes random DAGs on a
// random worker count and verifies every inferred edge was honoured.
func TestPropertyRandomDAGsRespectDependencies(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		var log []string
		var mu sync.Mutex
		g, wantBefore := randomDAG(rng, &log, &mu)
		workers := 1 + rng.Intn(6)
		trace, err := (&Executor{Workers: workers}).Run(context.Background(), g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(trace.Tasks) != g.Len() {
			t.Fatalf("seed %d: traced %d of %d tasks", seed, len(trace.Tasks), g.Len())
		}
		pos := map[string]int{}
		for i, name := range log {
			pos[name] = i
		}
		if len(pos) != g.Len() {
			t.Fatalf("seed %d: %d tasks ran of %d", seed, len(pos), g.Len())
		}
		for task, ups := range wantBefore {
			for _, up := range ups {
				if pos[up] > pos[task] {
					t.Fatalf("seed %d: %s ran before its dependency %s", seed, task, up)
				}
			}
		}
		// Rows must be consistent with the same ordering.
		rows, err := g.Rows()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		depth := map[string]int{}
		for d, row := range rows {
			for _, name := range row {
				depth[name] = d
			}
		}
		for task, ups := range wantBefore {
			for _, up := range ups {
				if depth[up] >= depth[task] {
					t.Fatalf("seed %d: row order broken: %s (row %d) depends on %s (row %d)",
						seed, task, depth[task], up, depth[up])
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
