package dataflow

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"slurmsight/internal/dataflow/faultinject"
)

// buildFaultyDAG layers a random graph whose bodies run through a
// seeded injector: some calls fail, some sleep, some hang until a
// timeout or cancellation clears them.
func buildFaultyDAG(t *testing.T, rng *rand.Rand, in *faultinject.Injector) *Graph {
	t.Helper()
	g := NewGraph()
	layers := 2 + rng.Intn(4)
	var produced []string
	for layer := 0; layer < layers; layer++ {
		width := 1 + rng.Intn(5)
		var newFiles []string
		for w := 0; w < width; w++ {
			name := fmt.Sprintf("s%d_%d", layer, w)
			var reads []string
			for _, f := range produced {
				if rng.Float64() < 0.3 {
					reads = append(reads, f)
				}
			}
			out := name + ".out"
			newFiles = append(newFiles, out)
			if err := g.Add(Task{
				Name:   name,
				Reads:  reads,
				Writes: []string{out},
				Run:    in.Wrap(name, func(context.Context) error { return nil }),
			}); err != nil {
				t.Fatal(err)
			}
		}
		produced = append(produced, newFiles...)
	}
	return g
}

// TestStressFaultyDAGsAccountForEveryTask is the satellite stress test:
// random DAGs under injected errors/delays/stalls, per-attempt timeouts,
// retry policies, and occasional mid-run cancellation — and in every
// case the trace accounts for each scheduled task exactly once, with
// outcome bookkeeping consistent with the returned error.
func TestStressFaultyDAGsAccountForEveryTask(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)))
			in := faultinject.New(int64(seed), faultinject.Options{
				ErrorRate: 0.25,
				DelayRate: 0.15,
				StallRate: 0.10,
				Delay:     2 * time.Millisecond,
			})
			g := buildFaultyDAG(t, rng, in)
			ex := &Executor{
				Workers: 1 + rng.Intn(6),
				Seed:    int64(seed) + 1,
				DefaultPolicy: Policy{
					Attempts:        1 + rng.Intn(3),
					Timeout:         15 * time.Millisecond, // unwedges stalls
					Backoff:         time.Millisecond,
					Jitter:          0.5,
					ContinueOnError: true,
				},
			}
			ctx := context.Background()
			cancelled := rng.Float64() < 0.3
			if cancelled {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(10))*time.Millisecond)
				defer cancel()
			}

			trace, err := ex.Run(ctx, g)

			// Every task appears in the trace exactly once.
			seen := map[string]int{}
			for _, tt := range trace.Tasks {
				seen[tt.Name]++
			}
			if len(seen) != g.Len() {
				t.Fatalf("trace names %d of %d tasks", len(seen), g.Len())
			}
			for name, n := range seen {
				if n != 1 {
					t.Fatalf("task %s traced %d times", name, n)
				}
			}

			okN, failed, skipped, _ := trace.Counts()
			if okN+failed+skipped != g.Len() {
				t.Fatalf("outcome counts %d+%d+%d != %d", okN, failed, skipped, g.Len())
			}

			switch {
			case cancelled && err != nil:
				// Fine: a cancelled or partially-failed run reports it.
			case err == nil:
				if failed != 0 || skipped != 0 {
					t.Fatalf("clean run with %d failed, %d skipped", failed, skipped)
				}
			default:
				var runErr *RunError
				if errors.As(err, &runErr) {
					if len(runErr.Errs) != failed {
						t.Fatalf("RunError reports %d failures, trace has %d",
							len(runErr.Errs), failed)
					}
					for _, e := range runErr.Errs {
						// Every terminal failure traces back to the
						// harness: an injected error or a stalled
						// attempt cut down by its timeout.
						if !errors.Is(e, faultinject.ErrInjected) &&
							!errors.Is(e, context.DeadlineExceeded) {
							t.Fatalf("unexplained failure: %v", e)
						}
					}
				}
			}
		})
	}
}

// TestStressMidRunCancellationReturnsPromptly drives a wide always-stall
// graph, cancels mid-run, and requires Run to return well before the
// stalled bodies' natural 10s timeout: cancellation must cut through
// running attempts and pending backoff sleeps alike.
func TestStressMidRunCancellationReturnsPromptly(t *testing.T) {
	in := faultinject.New(7, faultinject.Options{StallRate: 1})
	g := NewGraph()
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("hang%d", i)
		if err := g.Add(Task{Name: name, Run: in.Wrap(name, func(context.Context) error { return nil })}); err != nil {
			t.Fatal(err)
		}
	}
	ex := &Executor{
		Workers:       4,
		DefaultPolicy: Policy{Attempts: 5, Backoff: 10 * time.Second, ContinueOnError: true},
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	trace, err := ex.Run(ctx, g)
	wg.Wait()
	if err == nil {
		t.Fatal("cancelled run should report an error")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("cancellation returned after %v", d)
	}
	if len(trace.Tasks) != g.Len() {
		t.Fatalf("trace has %d entries for %d tasks", len(trace.Tasks), g.Len())
	}
}
