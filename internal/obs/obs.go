// Package obs is the pipeline's observability layer: a run-scoped span
// tracer and a concurrency-safe metrics registry, both stdlib-only.
//
// The paper's Swift/T workflow is opaque while running — the operator
// learns what happened only when the dashboard appears. This package
// makes the reproduction observable live: every layer (dataflow
// executor, workflow stages, LLM client, curate/analyze streams, the
// scheduler simulator) accepts an optional *Tracer / *Registry and
// reports where time, retries, and rows went. Spans export to Chrome
// trace-event JSON (chrome://tracing / Perfetto) and a human-readable
// summary; metrics expose through expvar and a plain-text /metrics
// handler.
//
// Instrumentation is strictly optional. Every method is safe on a nil
// receiver and the disabled paths neither allocate nor synchronise, so
// golden determinism tests and hot-path benchmarks run unchanged with
// observability off.
package obs

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Attribute order is
// preserved — exports render attributes in the order they were set.
type Attr struct {
	Key   string
	Value string
}

// SpanEvent is a point-in-time marker inside a span (a retry, a fault,
// a phase transition).
type SpanEvent struct {
	At  time.Time
	Msg string
}

// Span is one timed region of a run: a workflow stage, a task, an
// attempt. Spans nest via Child and carry ordered attributes and
// events. All methods are safe on a nil *Span and safe for concurrent
// use.
type Span struct {
	tr       *Tracer
	id       int64
	parentID int64 // 0 for root spans
	name     string
	start    time.Time

	mu     sync.Mutex
	end    time.Time
	ended  bool
	attrs  []Attr
	events []SpanEvent
}

// Tracer records the spans of one run against a single monotonic base
// timestamp. The zero value is not usable; a nil *Tracer is the
// documented "tracing off" state and every method on it is a no-op.
type Tracer struct {
	now func() time.Time

	mu     sync.Mutex
	base   time.Time
	nextID int64
	spans  []*Span
}

// NewTracer starts a run-scoped tracer; the moment of creation is the
// trace's time origin.
func NewTracer() *Tracer {
	return newTracer(time.Now)
}

// newTracer injects the clock — tests pin exports with a fake one.
func newTracer(now func() time.Time) *Tracer {
	return &Tracer{now: now, base: now()}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a root span. On a nil tracer it returns a nil span, on
// which every operation is a free no-op.
func (t *Tracer) Start(name string) *Span {
	return t.startSpan(name, 0)
}

func (t *Tracer) startSpan(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	sp := &Span{tr: t, id: t.nextID, parentID: parent, name: name, start: t.now()}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// Child opens a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startSpan(name, s.id)
}

// SetAttr annotates the span. Setting the same key again appends; the
// exporters keep the order, so the last value reads as the latest.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// Event records a point-in-time marker inside the span.
func (s *Span) Event(msg string) {
	if s == nil {
		return
	}
	at := s.tr.now()
	s.mu.Lock()
	s.events = append(s.events, SpanEvent{At: at, Msg: msg})
	s.mu.Unlock()
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	at := s.tr.now()
	s.mu.Lock()
	if !s.ended {
		s.end = at
		s.ended = true
	}
	s.mu.Unlock()
}

// SpanData is an immutable snapshot of one span, in the tracer's
// recording order (start order).
type SpanData struct {
	ID       int64
	ParentID int64
	Name     string
	Start    time.Time
	End      time.Time
	Ended    bool // false: still open at snapshot time (End = snapshot instant)
	Attrs    []Attr
	Events   []SpanEvent
}

// Duration is the span's wall time.
func (d *SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Attr returns the last value set for key ("" when absent).
func (d *SpanData) Attr(key string) string {
	for i := len(d.Attrs) - 1; i >= 0; i-- {
		if d.Attrs[i].Key == key {
			return d.Attrs[i].Value
		}
	}
	return ""
}

// Snapshot returns every recorded span in start order. Spans still open
// are reported with End at the snapshot instant and Ended false.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	now := t.now()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	out := make([]SpanData, 0, len(spans))
	for _, sp := range spans {
		sp.mu.Lock()
		d := SpanData{
			ID:       sp.id,
			ParentID: sp.parentID,
			Name:     sp.name,
			Start:    sp.start,
			End:      sp.end,
			Ended:    sp.ended,
			Attrs:    append([]Attr(nil), sp.attrs...),
			Events:   append([]SpanEvent(nil), sp.events...),
		}
		sp.mu.Unlock()
		if !d.Ended {
			d.End = now
		}
		out = append(out, d)
	}
	return out
}

// Base returns the trace's time origin (zero on a nil tracer).
func (t *Tracer) Base() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.base
}

// spanCtxKey carries the active span through a context.
type spanCtxKey struct{}

// ContextWithSpan attaches a span to the context. A nil span returns
// ctx unchanged, so the disabled path allocates nothing.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the active span, or nil when tracing is off.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a span as a child of the context's active span (or as
// a root span when none is active) and returns the derived context.
// With a nil tracer and no active span it returns ctx unchanged and a
// nil span.
func StartSpan(ctx context.Context, tr *Tracer, name string) (context.Context, *Span) {
	var sp *Span
	if parent := SpanFromContext(ctx); parent != nil {
		sp = parent.Child(name)
	} else {
		sp = tr.Start(name)
	}
	return ContextWithSpan(ctx, sp), sp
}
