package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Chrome trace-event export: the snapshot renders as a JSON object with
// a traceEvents array of complete ("X") span events and instant ("i")
// marker events, loadable in chrome://tracing and ui.perfetto.dev.
// Those viewers lay events out by (pid, tid) lane and nest "X" events
// on a lane only when their intervals are properly contained, so the
// exporter assigns each span a lane such that spans sharing a lane are
// either nested or disjoint — concurrent siblings get their own lanes,
// which is exactly how the workflow's parallel stages should render.

// chromeEvent is one trace-event row. Field order is fixed by the
// struct, so the export is byte-stable for a given snapshot.
type chromeEvent struct {
	Name string    `json:"name"`
	Cat  string    `json:"cat"`
	Ph   string    `json:"ph"`
	Ts   int64     `json:"ts"` // microseconds since the trace base
	Dur  *int64    `json:"dur,omitempty"`
	Pid  int       `json:"pid"`
	Tid  int       `json:"tid"`
	S    string    `json:"s,omitempty"` // instant scope ("t" = thread)
	Args *argsJSON `json:"args,omitempty"`
}

// argsJSON marshals attributes as an object in insertion order —
// map[string]string would randomise the golden output.
type argsJSON []Attr

func (a argsJSON) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, kv := range a {
		if i > 0 {
			b.WriteByte(',')
		}
		k, err := json.Marshal(kv.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(kv.Value)
		if err != nil {
			return nil, err
		}
		b.Write(k)
		b.WriteByte(':')
		b.Write(v)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// WriteChromeTrace exports the tracer's spans as Chrome trace-event
// JSON. A nil tracer writes an empty but valid trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.chromeEvents()
	doc := struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: events}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func (t *Tracer) chromeEvents() []chromeEvent {
	snap := t.Snapshot()
	if len(snap) == 0 {
		return []chromeEvent{}
	}
	base := t.Base()

	// Lane assignment: process spans in start order (ties: longer
	// first, then ID), keep a stack of open interval ends per lane, and
	// place each span on the first lane where it either nests inside
	// the innermost open interval or starts after everything closed.
	type key struct{ startUs, endUs int64 }
	keys := make([]key, len(snap))
	order := make([]int, len(snap))
	for i := range snap {
		keys[i] = key{
			startUs: int64(snap[i].Start.Sub(base) / time.Microsecond),
			endUs:   int64(snap[i].End.Sub(base) / time.Microsecond),
		}
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		if ka.startUs != kb.startUs {
			return ka.startUs < kb.startUs
		}
		if ka.endUs != kb.endUs {
			return ka.endUs > kb.endUs // longer first, so children follow parents
		}
		return snap[order[a]].ID < snap[order[b]].ID
	})
	lanes := make([][]int64, 0, 4) // per-lane stack of open interval ends
	tid := make([]int, len(snap))
	for _, i := range order {
		k := keys[i]
		placed := false
		for li := range lanes {
			stack := lanes[li]
			for len(stack) > 0 && stack[len(stack)-1] <= k.startUs {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 || k.endUs <= stack[len(stack)-1] {
				lanes[li] = append(stack, k.endUs)
				tid[i] = li + 1
				placed = true
				break
			}
			lanes[li] = stack
		}
		if !placed {
			lanes = append(lanes, []int64{k.endUs})
			tid[i] = len(lanes)
		}
	}

	events := make([]chromeEvent, 0, len(snap))
	for _, i := range order {
		d := snap[i]
		dur := keys[i].endUs - keys[i].startUs
		ev := chromeEvent{
			Name: d.Name, Cat: "span", Ph: "X",
			Ts: keys[i].startUs, Dur: &dur, Pid: 1, Tid: tid[i],
		}
		if len(d.Attrs) > 0 {
			args := argsJSON(d.Attrs)
			ev.Args = &args
		}
		events = append(events, ev)
		for _, e := range d.Events {
			events = append(events, chromeEvent{
				Name: e.Msg, Cat: "event", Ph: "i",
				Ts: int64(e.At.Sub(base) / time.Microsecond), Pid: 1, Tid: tid[i],
				S: "t",
			})
		}
	}
	return events
}

// WriteSummary renders the span tree as an indented human-readable
// table: one line per span with its wall time and attributes, children
// under parents in start order. A nil tracer writes nothing.
func (t *Tracer) WriteSummary(w io.Writer) {
	if t == nil {
		return
	}
	snap := t.Snapshot()
	var wall time.Duration
	for i := range snap {
		if d := snap[i].End.Sub(t.Base()); d > wall {
			wall = d
		}
	}
	fmt.Fprintf(w, "== run trace: %d spans, wall %s ==\n", len(snap), fmtDuration(wall))
	children := map[int64][]int{}
	for i := range snap {
		children[snap[i].ParentID] = append(children[snap[i].ParentID], i)
	}
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, i := range children[parent] {
			d := &snap[i]
			name := d.Name
			open := ""
			if !d.Ended {
				open = " (open)"
			}
			fmt.Fprintf(w, "%s%-*s %10s%s%s\n",
				strings.Repeat("  ", depth), 34-2*depth, name,
				fmtDuration(d.Duration()), open, attrSuffix(d.Attrs))
			walk(d.ID, depth+1)
		}
	}
	walk(0, 0)
}

func attrSuffix(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("  [")
	for i, a := range attrs {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(a.Key)
		b.WriteString("=")
		b.WriteString(a.Value)
	}
	b.WriteString("]")
	return b.String()
}

// fmtDuration rounds a duration to a readable precision without
// drowning the table in nanoseconds.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
