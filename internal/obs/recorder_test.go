package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testTrace(route string, n int, dur time.Duration) *RequestTrace {
	return &RequestTrace{
		ID:       fmt.Sprintf("%016x", n),
		Route:    route,
		Method:   "GET",
		Path:     route,
		Status:   200,
		Client:   "addr:test",
		Start:    time.Unix(1700000000, 0).Add(time.Duration(n) * time.Second),
		Duration: dur,
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace IDs %q %q, want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("consecutive trace IDs collided: %q", a)
	}
}

func TestRecorderNilNoop(t *testing.T) {
	var r *Recorder
	r.Record(testTrace("/query", 1, time.Millisecond)) // must not panic
	if r.Total() != 0 {
		t.Fatal("nil recorder recorded something")
	}
	snap := r.Snapshot()
	if len(snap.Recent) != 0 || len(snap.Slowest) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
	// The handler still serves an empty snapshot, so probes stay uniform
	// across deployments with recording disabled.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests?format=json", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"total": 0`) {
		t.Fatalf("nil handler: %d %s", rec.Code, rec.Body.String())
	}
}

func TestRecorderRingWraparound(t *testing.T) {
	r := NewRecorder(4, 2)
	for i := 0; i < 10; i++ {
		r.Record(testTrace("/query", i, time.Duration(i)*time.Millisecond))
	}
	if r.Total() != 10 {
		t.Fatalf("total %d, want 10", r.Total())
	}
	snap := r.Snapshot()
	if len(snap.Recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap.Recent))
	}
	// Newest first: traces 9, 8, 7, 6 survive.
	for i, want := range []int{9, 8, 7, 6} {
		if got := snap.Recent[i].ID; got != fmt.Sprintf("%016x", want) {
			t.Fatalf("recent[%d] = %s, want trace %d", i, got, want)
		}
	}
}

func TestRecorderTailSampler(t *testing.T) {
	r := NewRecorder(2, 3)
	// Slow requests early, fast later: the ring forgets them, the tail
	// sampler must not.
	durs := []time.Duration{900, 100, 700, 50, 800, 10, 20, 30}
	for i, d := range durs {
		r.Record(testTrace("/figures", i, d*time.Millisecond))
	}
	snap := r.Snapshot()
	tail := snap.Slowest["/figures"]
	if len(tail) != 3 {
		t.Fatalf("tail holds %d, want 3", len(tail))
	}
	for i, want := range []time.Duration{900, 800, 700} {
		if got := tail[i].Duration; got != want*time.Millisecond {
			t.Fatalf("tail[%d] = %s, want %s (descending by duration)", i, got, want*time.Millisecond)
		}
	}
	// Routes are independent.
	r.Record(testTrace("/query", 100, 5*time.Millisecond))
	if got := len(r.Snapshot().Slowest["/query"]); got != 1 {
		t.Fatalf("second route tail = %d, want 1", got)
	}
}

func TestRecorderRouteBound(t *testing.T) {
	r := NewRecorder(4, 2)
	for i := 0; i < maxRecorderRoutes+10; i++ {
		r.Record(testTrace(fmt.Sprintf("/r%d", i), i, time.Millisecond))
	}
	if got := len(r.Snapshot().Slowest); got != maxRecorderRoutes {
		t.Fatalf("tail sampler tracks %d routes, want cap %d", got, maxRecorderRoutes)
	}
	// Ring still records past the route cap.
	if r.Total() != uint64(maxRecorderRoutes+10) {
		t.Fatalf("total %d", r.Total())
	}
}

// TestRecorderHammer drives the recorder from many goroutines at once;
// run under -race it pins the locking discipline, and the invariants
// (bounded retention, descending tails) must hold at every snapshot.
func TestRecorderHammer(t *testing.T) {
	r := NewRecorder(32, 4)
	routes := []string{"/query", "/figures", "/ingest"}
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := time.Duration((w*31+i*17)%1000) * time.Microsecond
				r.Record(testTrace(routes[(w+i)%len(routes)], w*perWorker+i, d))
				if i%100 == 0 {
					snap := r.Snapshot()
					if len(snap.Recent) > 32 {
						t.Errorf("ring overflow: %d", len(snap.Recent))
						return
					}
					for route, tail := range snap.Slowest {
						if len(tail) > 4 {
							t.Errorf("%s tail overflow: %d", route, len(tail))
							return
						}
						for j := 1; j < len(tail); j++ {
							if tail[j].Duration > tail[j-1].Duration {
								t.Errorf("%s tail not descending at %d", route, j)
								return
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != workers*perWorker {
		t.Fatalf("total %d, want %d", r.Total(), workers*perWorker)
	}
}

func TestRecorderHandlerJSON(t *testing.T) {
	r := NewRecorder(8, 2)
	tr := NewTracer()
	root := tr.Start("GET /figures")
	child := root.Child("store-scan")
	child.SetAttrInt("rows", 42)
	child.End()
	root.End()
	rt := testTrace("/figures", 1, 30*time.Millisecond)
	rt.Spans = tr.Snapshot()
	r.Record(rt)
	r.Record(testTrace("/query", 2, time.Millisecond))

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests?format=json", nil))
	var out struct {
		Total  uint64 `json:"total"`
		Recent []struct {
			ID    string `json:"id"`
			Spans []struct {
				Name     string            `json:"name"`
				Attrs    map[string]string `json:"attrs"`
				Children []struct {
					Name  string            `json:"name"`
					Attrs map[string]string `json:"attrs"`
				} `json:"children"`
			} `json:"spans"`
		} `json:"recent"`
		Slowest map[string][]json.RawMessage `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("handler JSON: %v\n%s", err, rec.Body.String())
	}
	if out.Total != 2 || len(out.Recent) != 2 {
		t.Fatalf("total %d recent %d, want 2/2", out.Total, len(out.Recent))
	}
	// Newest first: the /query trace leads, the traced /figures follows.
	fig := out.Recent[1]
	if len(fig.Spans) != 1 || fig.Spans[0].Name != "GET /figures" {
		t.Fatalf("span tree roots: %+v", fig.Spans)
	}
	kids := fig.Spans[0].Children
	if len(kids) != 1 || kids[0].Name != "store-scan" || kids[0].Attrs["rows"] != "42" {
		t.Fatalf("child spans: %+v", kids)
	}
	if len(out.Slowest) != 2 {
		t.Fatalf("slowest routes: %d", len(out.Slowest))
	}

	// ?route= filters both views.
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests?format=json&route=/figures", nil))
	if body := rec.Body.String(); strings.Contains(body, `"/query"`) {
		t.Fatalf("route filter leaked /query traces:\n%s", body)
	}

	// HTML view renders without scripts.
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
	if body := rec.Body.String(); !strings.Contains(body, "store-scan") || strings.Contains(body, "<script") {
		t.Fatalf("html view:\n%s", body)
	}
}
