package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestChromeTraceGolden pins the exported trace-event JSON byte for
// byte: a run-root span, a nested child with an attribute, an
// overlapping (non-nested) sibling that must land on its own lane, and
// an instant event. The fake clock ticks 1 ms per reading.
func TestChromeTraceGolden(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	tr := newTracer(clock.Now)        // base = t
	root := tr.Start("run")           // start 1000 µs
	a := root.Child("curate-2024-01") // start 2000 µs
	a.SetAttr("stage", "curate")
	b := root.Child("curate-2024-02") // start 3000 µs
	b.Event("retry")                  // at 4000 µs
	a.End()                           // end 5000 µs
	b.End()                           // end 6000 µs
	root.End()                        // end 7000 µs

	var out strings.Builder
	if err := tr.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit":"ms","traceEvents":[` +
		`{"name":"run","cat":"span","ph":"X","ts":1000,"dur":6000,"pid":1,"tid":1},` +
		`{"name":"curate-2024-01","cat":"span","ph":"X","ts":2000,"dur":3000,"pid":1,"tid":1,"args":{"stage":"curate"}},` +
		`{"name":"curate-2024-02","cat":"span","ph":"X","ts":3000,"dur":3000,"pid":1,"tid":2},` +
		`{"name":"retry","cat":"event","ph":"i","ts":4000,"pid":1,"tid":2,"s":"t"}` +
		"]}\n"
	if out.String() != want {
		t.Errorf("chrome trace:\n%s\nwant:\n%s", out.String(), want)
	}

	// The export must also be valid JSON with the keys the viewers
	// require on every event.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	for _, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %v missing %q", ev, key)
			}
		}
	}
}

func TestChromeTraceEmptyAndNil(t *testing.T) {
	var nilTr *Tracer
	var out strings.Builder
	if err := nilTr.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	if want := "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n"; out.String() != want {
		t.Errorf("nil tracer export = %q, want %q", out.String(), want)
	}
	out.Reset()
	if err := NewTracer().WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"traceEvents":[]`) {
		t.Errorf("empty tracer export = %q", out.String())
	}
}

func TestWriteSummary(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	tr := newTracer(clock.Now)
	root := tr.Start("run")
	sp := root.Child("plot-wait-times")
	sp.SetAttr("stage", "render")
	sp.End()
	root.End()

	var out strings.Builder
	tr.WriteSummary(&out)
	text := out.String()
	for _, want := range []string{
		"== run trace: 2 spans",
		"run",
		"  plot-wait-times",
		"[stage=render]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
	// Nil tracer writes nothing.
	out.Reset()
	var nilTr *Tracer
	nilTr.WriteSummary(&out)
	if out.Len() != 0 {
		t.Errorf("nil tracer summary = %q", out.String())
	}
}
