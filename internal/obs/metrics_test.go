package obs

import (
	"expvar"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer drives every instrument type from many
// goroutines — run with -race; the totals must be exact.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Instruments are re-resolved inside the loop on purpose:
			// the registry must hand back the same instrument every
			// time, under contention.
			for i := 0; i < perWorker; i++ {
				reg.Counter("hammer_total").Inc()
				reg.Gauge("hammer_depth").Add(1)
				reg.Gauge("hammer_depth").Add(-1)
				reg.Histogram("hammer_seconds", LatencyBuckets).Observe(float64(i%100) / 100)
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("hammer_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("hammer_depth").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	h := reg.Histogram("hammer_seconds", LatencyBuckets)
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var want float64
	for i := 0; i < perWorker; i++ {
		want += float64(i%100) / 100
	}
	want *= workers
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
	var bucketTotal int64
	for _, n := range h.Buckets() {
		bucketTotal += n
	}
	if bucketTotal != workers*perWorker {
		t.Errorf("bucket total = %d, want %d", bucketTotal, workers*perWorker)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("b_seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	// le semantics: 1 → bucket le=1, 2 → le=2, 4 → le=4, 100 → +Inf.
	want := []int64{2, 2, 2, 1}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestWriteTextExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("llm_requests_total").Add(3)
	reg.Gauge("sched_queue_depth").Set(17)
	h := reg.Histogram("llm_request_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	reg.WriteText(&b)
	want := `# TYPE llm_requests_total counter
llm_requests_total 3
# TYPE sched_queue_depth gauge
sched_queue_depth 17
# TYPE llm_request_seconds histogram
llm_request_seconds_bucket{le="0.1"} 1
llm_request_seconds_bucket{le="1"} 2
llm_request_seconds_bucket{le="+Inf"} 3
llm_request_seconds_sum 5.55
llm_request_seconds_count 3
`
	if b.String() != want {
		t.Errorf("WriteText:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "up_total 1") {
		t.Errorf("body = %q", rr.Body.String())
	}

	// A nil registry still serves a valid (empty) exposition.
	var nilReg *Registry
	rr = httptest.NewRecorder()
	nilReg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Errorf("nil registry status = %d", rr.Code)
	}
}

func TestPublishExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pub_total").Add(7)
	name := fmt.Sprintf("obs_test_%p", reg) // unique per run; expvar is global
	reg.PublishExpvar(name)
	reg.PublishExpvar(name) // second publish must not panic
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("not published")
	}
	if !strings.Contains(v.String(), `"pub_total":7`) {
		t.Errorf("expvar value = %s", v.String())
	}
}

func TestHistogramKeepsFirstLayout(t *testing.T) {
	reg := NewRegistry()
	a := reg.Histogram("once_seconds", []float64{1, 2})
	b := reg.Histogram("once_seconds", []float64{99})
	if a != b {
		t.Fatal("histogram identity not stable across lookups")
	}
	if len(a.Buckets()) != 3 {
		t.Errorf("layout changed: %d buckets", len(a.Buckets()))
	}
}
