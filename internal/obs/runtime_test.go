package obs

import (
	"strings"
	"testing"
)

func TestPublishRuntime(t *testing.T) {
	reg := NewRegistry()
	PublishRuntime(reg)
	PublishRuntime(reg) // idempotent: the hook replaces itself by name

	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	for _, name := range []string{
		"runtime_goroutines",
		"runtime_heap_alloc_bytes",
		"runtime_heap_inuse_bytes",
		"runtime_gc_pause_ns_total",
		"runtime_gc_cycles_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("scrape lacks %s:\n%s", name, text)
		}
	}
	snap := reg.Snapshot()
	g, ok := snap["runtime_goroutines"].(int64)
	if !ok || g < 1 {
		t.Fatalf("runtime_goroutines = %v, want >= 1", snap["runtime_goroutines"])
	}
	if ha, _ := snap["runtime_heap_alloc_bytes"].(int64); ha <= 0 {
		t.Fatalf("runtime_heap_alloc_bytes = %v", snap["runtime_heap_alloc_bytes"])
	}
	PublishRuntime(nil) // nil registry is a no-op, not a panic
}

func TestOnScrape(t *testing.T) {
	reg := NewRegistry()
	calls := 0
	reg.OnScrape("probe", func() { calls++ })
	var sb strings.Builder
	reg.WriteText(&sb)
	reg.Snapshot()
	if calls != 2 {
		t.Fatalf("hook ran %d times, want 2 (once per scrape)", calls)
	}
	// Re-registering under the same name replaces, not stacks.
	other := 0
	reg.OnScrape("probe", func() { other++ })
	reg.Snapshot()
	if calls != 2 || other != 1 {
		t.Fatalf("replaced hook: old=%d new=%d, want 2/1", calls, other)
	}
	var nilReg *Registry
	nilReg.OnScrape("x", func() {}) // nil-safe
}

// TestSnapshotHistogramBuckets pins the bench-export contract: a
// histogram snapshot carries its cumulative buckets, not just count and
// sum, so committed bench JSON holds a real latency distribution.
func TestSnapshotHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	snap := reg.Snapshot()
	hist, ok := snap["req_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("histogram snapshot is %T", snap["req_seconds"])
	}
	if hist["count"].(int64) != 3 {
		t.Fatalf("count %v", hist["count"])
	}
	buckets, ok := hist["buckets"].([]map[string]any)
	if !ok || len(buckets) != 3 {
		t.Fatalf("buckets = %#v, want 3 entries ending at +Inf", hist["buckets"])
	}
	wantLe := []string{"0.1", "1", "+Inf"}
	wantN := []int64{1, 1, 1} // per-bucket, not cumulative
	for i, b := range buckets {
		if b["le"] != wantLe[i] || b["count"].(int64) != wantN[i] {
			t.Fatalf("bucket %d = %v, want le=%s count=%d", i, b, wantLe[i], wantN[i])
		}
	}
}
