package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// NewTraceID mints a 16-hex-character request trace ID. IDs are random,
// not sequential, so traces from restarted or replicated processes never
// collide in aggregated logs.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to
		// a constant rather than panicking in request handling.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// RequestTrace is one completed request: identity, outcome, and the
// span tree recorded while it ran. The serving middleware fills it and
// hands it to a Recorder; /debug/requests renders it for postmortems.
type RequestTrace struct {
	ID       string
	Route    string // bounded-cardinality route label, e.g. "/figures"
	Method   string
	Path     string // full request path
	Status   int
	Client   string // throttle client key (API key or remote host)
	Start    time.Time
	Duration time.Duration
	Spans    []SpanData // tracer snapshot, start order, roots first
}

// maxRecorderRoutes bounds the tail-sampler map: past it, traces on
// never-seen routes still enter the ring but are not tail-sampled, so a
// path-scanning client cannot grow memory without bound.
const maxRecorderRoutes = 64

// Recorder is the always-on flight recorder: a fixed-size ring of the
// most recent completed request traces plus a keep-the-slowest-N tail
// sampler per route, so the worst recent requests survive long after
// the ring has wrapped. Memory is bounded by ring + routes×tail traces.
// All methods are safe for concurrent use and free no-ops on a nil
// receiver — the disabled state, exactly like a nil Tracer.
type Recorder struct {
	ringN, tailN int

	mu      sync.Mutex
	ring    []*RequestTrace // ringN slots, next points at the oldest
	next    int
	total   uint64
	slowest map[string][]*RequestTrace // per route, descending duration
}

// NewRecorder sizes a recorder: ring recent traces (default 256) and
// tail slowest-per-route traces (default 8).
func NewRecorder(ring, tail int) *Recorder {
	if ring <= 0 {
		ring = 256
	}
	if tail <= 0 {
		tail = 8
	}
	return &Recorder{
		ringN:   ring,
		tailN:   tail,
		ring:    make([]*RequestTrace, 0, ring),
		slowest: make(map[string][]*RequestTrace),
	}
}

// Record retains a completed trace. The caller must not mutate t after
// handing it over.
func (r *Recorder) Record(t *RequestTrace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.ring) < r.ringN {
		r.ring = append(r.ring, t)
	} else {
		r.ring[r.next] = t
		r.next = (r.next + 1) % r.ringN
	}
	tail, ok := r.slowest[t.Route]
	if !ok && len(r.slowest) >= maxRecorderRoutes {
		return
	}
	if len(tail) >= r.tailN {
		if t.Duration <= tail[len(tail)-1].Duration {
			return // faster than everything retained
		}
		tail = tail[:len(tail)-1] // evict the quickest of the slow
	}
	i := sort.Search(len(tail), func(i int) bool { return tail[i].Duration < t.Duration })
	tail = append(tail, nil)
	copy(tail[i+1:], tail[i:])
	tail[i] = t
	r.slowest[t.Route] = tail
}

// Total returns how many traces have been recorded over the recorder's
// lifetime (not how many are retained).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// RecorderSnapshot is a point-in-time view of the recorder: the recent
// ring newest-first and the per-route slowest traces, slowest-first.
type RecorderSnapshot struct {
	Total   uint64
	Recent  []*RequestTrace
	Slowest map[string][]*RequestTrace
}

// Snapshot copies the recorder's current retention. The traces
// themselves are shared (immutable once recorded), the slices are not.
func (r *Recorder) Snapshot() RecorderSnapshot {
	if r == nil {
		return RecorderSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	recent := make([]*RequestTrace, 0, len(r.ring))
	// Newest first: the slot before next is the most recent write once
	// the ring has wrapped; before that, the tail of the append order.
	for i := len(r.ring) - 1; i >= 0; i-- {
		recent = append(recent, r.ring[(r.next+i)%len(r.ring)])
	}
	slowest := make(map[string][]*RequestTrace, len(r.slowest))
	for route, tail := range r.slowest {
		slowest[route] = append([]*RequestTrace(nil), tail...)
	}
	return RecorderSnapshot{Total: r.total, Recent: recent, Slowest: slowest}
}

// spanJSON is one span rendered for /debug/requests: offsets relative
// to the request start, attributes flattened last-value-wins, children
// nested.
type spanJSON struct {
	Name       string            `json:"name"`
	OffsetUS   int64             `json:"offset_us"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Events     []string          `json:"events,omitempty"`
	Children   []*spanJSON       `json:"children,omitempty"`
}

type traceJSON struct {
	ID         string      `json:"id"`
	Route      string      `json:"route"`
	Method     string      `json:"method"`
	Path       string      `json:"path"`
	Status     int         `json:"status"`
	Client     string      `json:"client"`
	Start      time.Time   `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Spans      []*spanJSON `json:"spans"`
}

// spanTree nests a tracer snapshot (start order, ParentID links) into
// root-first trees relative to the request start time.
func spanTree(spans []SpanData, base time.Time) []*spanJSON {
	byID := make(map[int64]*spanJSON, len(spans))
	var roots []*spanJSON
	for i := range spans {
		d := &spans[i]
		js := &spanJSON{
			Name:       d.Name,
			OffsetUS:   d.Start.Sub(base).Microseconds(),
			DurationUS: d.Duration().Microseconds(),
		}
		if len(d.Attrs) > 0 {
			js.Attrs = make(map[string]string, len(d.Attrs))
			for _, a := range d.Attrs {
				js.Attrs[a.Key] = a.Value
			}
		}
		for _, e := range d.Events {
			js.Events = append(js.Events, fmt.Sprintf("+%dus %s", e.At.Sub(base).Microseconds(), e.Msg))
		}
		byID[d.ID] = js
		if parent, ok := byID[d.ParentID]; ok {
			parent.Children = append(parent.Children, js)
		} else {
			roots = append(roots, js)
		}
	}
	return roots
}

func renderTrace(t *RequestTrace) traceJSON {
	return traceJSON{
		ID:         t.ID,
		Route:      t.Route,
		Method:     t.Method,
		Path:       t.Path,
		Status:     t.Status,
		Client:     t.Client,
		Start:      t.Start,
		DurationMS: float64(t.Duration.Microseconds()) / 1000,
		Spans:      spanTree(t.Spans, t.Start),
	}
}

// Handler serves the flight recorder at /debug/requests: an HTML view
// for humans (x/net/trace style: slowest per route, then the recent
// ring) and, with ?format=json, the same snapshot as JSON for tooling.
// ?route=/figures filters both views to one route. Safe on a nil
// recorder (serves an empty snapshot).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if route := req.URL.Query().Get("route"); route != "" {
			filtered := snap.Recent[:0:0]
			for _, t := range snap.Recent {
				if t.Route == route {
					filtered = append(filtered, t)
				}
			}
			snap.Recent = filtered
			if tail, ok := snap.Slowest[route]; ok {
				snap.Slowest = map[string][]*RequestTrace{route: tail}
			} else {
				snap.Slowest = map[string][]*RequestTrace{}
			}
		}
		if req.URL.Query().Get("format") == "json" {
			out := struct {
				Total   uint64                 `json:"total"`
				Recent  []traceJSON            `json:"recent"`
				Slowest map[string][]traceJSON `json:"slowest"`
			}{Total: snap.Total, Recent: []traceJSON{}, Slowest: map[string][]traceJSON{}}
			for _, t := range snap.Recent {
				out.Recent = append(out.Recent, renderTrace(t))
			}
			for route, tail := range snap.Slowest {
				rt := make([]traceJSON, 0, len(tail))
				for _, t := range tail {
					rt = append(rt, renderTrace(t))
				}
				out.Slowest[route] = rt
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(out)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeRecorderHTML(w, snap)
	})
}

// writeRecorderHTML renders the minimal human view: no scripts, no
// external assets, readable over curl -L in a terminal browser.
func writeRecorderHTML(w http.ResponseWriter, snap RecorderSnapshot) {
	fmt.Fprintf(w, "<!doctype html><meta charset=utf-8><title>/debug/requests</title>")
	fmt.Fprintf(w, "<style>body{font:13px monospace;margin:1em}table{border-collapse:collapse}"+
		"td,th{border:1px solid #ccc;padding:2px 8px;text-align:left}"+
		".span{white-space:pre}</style>")
	fmt.Fprintf(w, "<h1>flight recorder</h1><p>%d requests recorded</p>", snap.Total)
	routes := make([]string, 0, len(snap.Slowest))
	for route := range snap.Slowest {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	fmt.Fprintf(w, "<h2>slowest per route</h2>")
	for _, route := range routes {
		fmt.Fprintf(w, "<h3>%s</h3>", html.EscapeString(route))
		for _, t := range snap.Slowest[route] {
			writeTraceHTML(w, t)
		}
	}
	fmt.Fprintf(w, "<h2>recent (newest first)</h2><table><tr><th>when</th><th>trace</th>"+
		"<th>route</th><th>status</th><th>duration</th><th>client</th></tr>")
	for _, t := range snap.Recent {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s %s</td><td>%d</td><td>%s</td><td>%s</td></tr>",
			t.Start.Format("15:04:05.000"), html.EscapeString(t.ID),
			html.EscapeString(t.Method), html.EscapeString(t.Path),
			t.Status, t.Duration.Round(time.Microsecond), html.EscapeString(t.Client))
	}
	fmt.Fprintf(w, "</table>")
}

func writeTraceHTML(w http.ResponseWriter, t *RequestTrace) {
	fmt.Fprintf(w, "<p><b>%s</b> %s %s → %d in %s (client %s)</p><div class=span>",
		html.EscapeString(t.ID), html.EscapeString(t.Method), html.EscapeString(t.Path),
		t.Status, t.Duration.Round(time.Microsecond), html.EscapeString(t.Client))
	var emit func(spans []*spanJSON, depth int)
	emit = func(spans []*spanJSON, depth int) {
		for _, sp := range spans {
			var attrs strings.Builder
			for k, v := range sp.Attrs {
				fmt.Fprintf(&attrs, " %s=%s", k, v)
			}
			fmt.Fprintf(w, "%s+%6dus %8dus %s%s\n", strings.Repeat("  ", depth),
				sp.OffsetUS, sp.DurationUS, html.EscapeString(sp.Name),
				html.EscapeString(attrs.String()))
			emit(sp.Children, depth+1)
		}
	}
	emit(spanTree(t.Spans, t.Start), 0)
	fmt.Fprintf(w, "</div>")
}
