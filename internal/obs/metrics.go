package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metric naming convention (DESIGN.md §5e): snake_case,
// <subsystem>_<what>_<unit>; monotonic counters end in _total,
// histograms carry their unit (_seconds, _bytes) as the suffix.
// Examples: llm_requests_total, dataflow_task_seconds, sched_queue_depth.

// LatencyBuckets is the shared histogram layout for durations in
// seconds: 1 ms to 30 s, roughly geometric — wide enough for both an
// HTTP round trip and a multi-second workflow stage.
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// SizeBuckets is the shared histogram layout for byte sizes: 256 B to
// 16 MiB in powers of four.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// Counter is a monotonically increasing metric. Nil-safe: Add/Inc on a
// nil counter are free no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value (queue depth, in-flight
// requests). Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into a fixed bucket layout (upper
// bounds, ascending, with an implicit +Inf bucket) and tracks the total
// sum and count. Observe is lock-free and safe for concurrent use;
// nil-safe like Counter.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64  // float64 bits, CAS-accumulated
	count   atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound admits v (le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the per-bucket (non-cumulative) counts; the final
// entry is the +Inf bucket.
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Registry names and owns a process's instruments. Lookups create on
// first use and always return the same instrument for a name, so
// callers may re-resolve freely. A nil *Registry is the "metrics off"
// state: it hands out nil instruments whose methods are free no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	hooks    []scrapeHook
}

// scrapeHook is one named sampler run before every exposition.
type scrapeHook struct {
	name string
	f    func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls keep the original
// layout; buckets must be ascending).
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bounds := append([]float64(nil), buckets...)
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// OnScrape registers a sampler that runs immediately before every
// exposition (WriteText, Snapshot): the hook point for metrics that are
// cheaper to read on demand than to push continuously (runtime stats,
// mapped-file sizes). Hooks are keyed by name — registering the same
// name again replaces the old hook, so wiring a collector twice is
// idempotent. Hooks run without the registry lock held; they typically
// Set gauges captured at registration time.
func (r *Registry) OnScrape(name string, f func()) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.hooks {
		if r.hooks[i].name == name {
			r.hooks[i].f = f
			return
		}
	}
	r.hooks = append(r.hooks, scrapeHook{name: name, f: f})
}

// scrape runs the registered samplers in registration order.
func (r *Registry) scrape() {
	if r == nil {
		return
	}
	r.mu.Lock()
	hooks := make([]scrapeHook, len(r.hooks))
	copy(hooks, r.hooks)
	r.mu.Unlock()
	for _, h := range hooks {
		h.f()
	}
}

// WriteText renders every instrument in the plain-text exposition
// format (Prometheus 0.0.4 compatible): counters and gauges as single
// samples, histograms as cumulative le-buckets plus _sum and _count.
// Output is sorted by name, so it is stable for a given state.
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	r.scrape()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, gauges[name].Value())
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		var cum int64
		for i, n := range h.Buckets() {
			cum += n
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
		fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	}
}

// Label renders a metric name with one Prometheus-style label pair
// embedded, e.g. Label("sched_backfill_starts_total", "policy", "easy")
// → sched_backfill_starts_total{policy="easy"}. The registry is purely
// name-keyed, so each labelled name is its own instrument; WriteText
// emits it verbatim, which the Prometheus text format parses as a
// labelled sample.
func Label(name, key, value string) string {
	return name + "{" + key + "=" + strconv.Quote(value) + "}"
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Handler serves the registry as a plain-text /metrics endpoint. Safe
// on a nil registry (serves an empty exposition).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// Snapshot returns the registry's state as plain values, suitable for
// JSON rendering. Histograms appear as {count, sum, buckets} where
// buckets is the full non-cumulative layout ({le, count} pairs ending
// at +Inf) — the committed bench JSONs carry real latency distributions,
// not just averages.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.scrape()
	out := map[string]any{}
	r.mu.Lock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		buckets := make([]map[string]any, 0, len(h.counts))
		for i, n := range h.Buckets() {
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			buckets = append(buckets, map[string]any{"le": le, "count": n})
		}
		out[name] = map[string]any{"count": h.Count(), "sum": h.Sum(), "buckets": buckets}
	}
	r.mu.Unlock()
	return out
}

// PublishExpvar exposes the registry under the given expvar name (the
// standard /debug/vars endpoint). Publishing an already-taken name is a
// no-op rather than the expvar panic, so calling twice is safe.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
