package obs

import "runtime"

// PublishRuntime registers the process-health collector on a registry:
// goroutine count, heap shape, and cumulative GC cost, sampled lazily
// on every scrape (a /metrics poll or a Snapshot) rather than on a
// timer, so an idle server pays nothing between scrapes. Registration
// is idempotent — every serving binary calls this through its shared
// debug mount, and calling twice just replaces the hook.
//
// Metrics (all gauges; the *_total names are cumulative values sampled
// from the runtime, monotone as long as the process lives):
//
//	runtime_goroutines            live goroutine count
//	runtime_heap_alloc_bytes      live heap objects
//	runtime_heap_inuse_bytes      heap spans in use
//	runtime_heap_sys_bytes        heap memory obtained from the OS
//	runtime_gc_pause_ns_total     cumulative stop-the-world pause time
//	runtime_gc_cycles_total       completed GC cycles
//	runtime_next_gc_bytes         heap target for the next cycle
func PublishRuntime(r *Registry) {
	if r == nil {
		return
	}
	goroutines := r.Gauge("runtime_goroutines")
	heapAlloc := r.Gauge("runtime_heap_alloc_bytes")
	heapInuse := r.Gauge("runtime_heap_inuse_bytes")
	heapSys := r.Gauge("runtime_heap_sys_bytes")
	gcPause := r.Gauge("runtime_gc_pause_ns_total")
	gcCycles := r.Gauge("runtime_gc_cycles_total")
	nextGC := r.Gauge("runtime_next_gc_bytes")
	r.OnScrape("runtime", func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapInuse.Set(int64(ms.HeapInuse))
		heapSys.Set(int64(ms.HeapSys))
		gcPause.Set(int64(ms.PauseTotalNs))
		gcCycles.Set(int64(ms.NumGC))
		nextGC.Set(int64(ms.NextGC))
	})
}
