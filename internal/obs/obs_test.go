package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a deterministic clock by a fixed tick per reading.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	tick time.Duration
}

func newFakeClock(tick time.Duration) *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC), tick: tick}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(c.tick)
	return now
}

func TestSpanHierarchyAndSnapshot(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	tr := newTracer(clock.Now)

	root := tr.Start("run")
	child := root.Child("curate")
	child.SetAttr("period", "2024-01")
	child.SetAttrInt("rows", 42)
	child.Event("retry")
	child.End()
	root.End()

	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(snap))
	}
	if snap[0].Name != "run" || snap[0].ParentID != 0 {
		t.Errorf("root = %+v", snap[0])
	}
	if snap[1].Name != "curate" || snap[1].ParentID != snap[0].ID {
		t.Errorf("child = %+v", snap[1])
	}
	if got := snap[1].Attr("period"); got != "2024-01" {
		t.Errorf("period attr = %q", got)
	}
	if got := snap[1].Attr("rows"); got != "42" {
		t.Errorf("rows attr = %q", got)
	}
	if len(snap[1].Events) != 1 || snap[1].Events[0].Msg != "retry" {
		t.Errorf("events = %+v", snap[1].Events)
	}
	for i, d := range snap {
		if !d.Ended || !d.End.After(d.Start) {
			t.Errorf("span %d not closed properly: %+v", i, d)
		}
	}
}

func TestUnendedSpanGetsSnapshotTime(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	tr := newTracer(clock.Now)
	tr.Start("open")
	snap := tr.Snapshot()
	if snap[0].Ended {
		t.Fatal("span reported ended")
	}
	if !snap[0].End.After(snap[0].Start) {
		t.Fatalf("open span End %v not after Start %v", snap[0].End, snap[0].Start)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer()
	ctx := context.Background()
	if got := SpanFromContext(ctx); got != nil {
		t.Fatalf("empty ctx span = %v", got)
	}
	ctx, root := StartSpan(ctx, tr, "root")
	if root == nil || SpanFromContext(ctx) != root {
		t.Fatal("root span not in context")
	}
	_, child := StartSpan(ctx, tr, "child")
	child.End()
	root.End()
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[1].ParentID != snap[0].ID {
		t.Fatalf("child not parented via context: %+v", snap)
	}
}

// TestNilNoOpPaths pins the disabled-instrumentation contract: a nil
// tracer, span, or context round trip must not panic, must return the
// inputs unchanged, and (next test) must not allocate.
func TestNilNoOpPaths(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer enabled")
	}
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.Event("e")
	csp := sp.Child("y")
	if csp != nil {
		t.Fatal("nil span produced a child")
	}
	sp.End()
	ctx := context.Background()
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Error("ContextWithSpan(nil) changed the context")
	}
	ctx2, sp2 := StartSpan(ctx, nil, "z")
	if ctx2 != ctx || sp2 != nil {
		t.Error("StartSpan on nil tracer not a no-op")
	}
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil tracer snapshot = %v", got)
	}
}

// TestDisabledPathsDoNotAllocate is the overhead gate for the no-op
// instrumentation: with tracing and metrics off, every hook the
// pipeline calls per task/row/request must be allocation-free.
func TestDisabledPathsDoNotAllocate(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	ctx := context.Background()
	cases := map[string]func(){
		"tracer": func() {
			sp := tr.Start("task")
			child := sp.Child("attempt")
			child.SetAttr("k", "v")
			child.Event("retry")
			child.End()
			sp.End()
		},
		"context": func() {
			ctx2, sp := StartSpan(ctx, tr, "stage")
			SpanFromContext(ctx2).SetAttrInt("rows", 1)
			sp.End()
		},
		"metrics": func() {
			reg.Counter("c").Add(1)
			reg.Gauge("g").Set(3)
			reg.Histogram("h", LatencyBuckets).Observe(0.5)
		},
		"instruments": func() {
			var c *Counter
			var g *Gauge
			var h *Histogram
			c.Inc()
			g.Add(-1)
			h.Observe(1)
			_ = c.Value() + g.Value() + h.Count()
		},
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s disabled path allocates %.1f per op, want 0", name, allocs)
		}
	}
}

// TestTracerConcurrent exercises span creation, annotation, and
// snapshotting from many goroutines — run with -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("run")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := root.Child("task")
				sp.SetAttrInt("i", int64(i))
				sp.Event("tick")
				sp.End()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = tr.Snapshot()
		}
	}()
	wg.Wait()
	root.End()
	snap := tr.Snapshot()
	if len(snap) != 1+8*200 {
		t.Fatalf("snapshot has %d spans, want %d", len(snap), 1+8*200)
	}
}
