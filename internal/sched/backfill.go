package sched

import (
	"fmt"
	"sort"
	"time"
)

// BackfillPolicy decides which lower-priority pending jobs may start while
// the highest-priority job is blocked waiting for capacity. The pass runs
// after the main priority loop, consumes jobs via s.nextPending(), and must
// either start each examined job (s.startJob with backfill=true) or return
// it via s.keep.
type BackfillPolicy interface {
	Name() string
	// Pass runs the backfill phase at time t; head is the blocked
	// highest-priority job (still pending, re-queued after the pass).
	Pass(s *Simulator, head *job, t time.Time)
}

// BackfillByName resolves a backfill policy: "easy" (the default),
// "conservative", or "none".
func BackfillByName(name string) (BackfillPolicy, error) {
	switch name {
	case "", "easy":
		return easyBackfill{}, nil
	case "conservative":
		return &conservativeBackfill{}, nil
	case "none":
		return noBackfill{}, nil
	}
	return nil, fmt.Errorf("sched: unknown backfill policy %q", name)
}

// BackfillNames lists the resolvable backfill policies.
func BackfillNames() []string { return []string{"easy", "conservative", "none"} }

// noBackfill is the ablation baseline: the blocked head blocks everything
// (pure priority-order FIFO behind the head).
type noBackfill struct{}

func (noBackfill) Name() string                     { return "none" }
func (noBackfill) Pass(*Simulator, *job, time.Time) {}

// easyBackfill implements EASY backfill: find the shadow time at which the
// head can start, assuming running jobs end at their walltime limits, then
// start lower-priority jobs that cannot delay it. This is the pre-refactor
// backfillPass verbatim; the golden determinism tests pin it bit for bit.
type easyBackfill struct{}

func (easyBackfill) Name() string { return "easy" }

func (easyBackfill) Pass(s *Simulator, head *job, t time.Time) {
	tNs := t.UnixNano()
	shadowNs, extra := s.shadowTime(head, tNs)
	free := s.freeCores
	depth := s.cfg.BackfillDepth
	if depth == 0 {
		depth = s.npending
	}
	considered := 0
	for considered < depth {
		j := s.nextPending()
		if j == nil {
			break
		}
		if j.res != nil {
			s.keep = append(s.keep, j)
			continue
		}
		considered++
		if j.cores > free || !s.sel.Fits(j) {
			s.keep = append(s.keep, j)
			continue
		}
		endsByNs := tNs + int64(j.req.Timelimit)
		fitsExtra := j.cores <= extra
		if endsByNs <= shadowNs || fitsExtra {
			s.startJob(j, t, true)
			free -= j.cores
			if endsByNs > shadowNs && fitsExtra {
				extra -= j.cores
			}
			continue
		}
		s.keep = append(s.keep, j)
	}
	s.mBackfillAtt.Add(int64(considered))
}

// conservativeBackfill reserves a future start for every blocked job it
// examines, not just the head: a candidate may start now only if running it
// to its walltime limit delays none of the reservations made so far. It
// trades backfill throughput for a hard no-starvation guarantee on every
// queued job within the pass depth (Slurm's bf_min_prio_reserve-everything
// regime), and is the contrast policy the tournament races against EASY.
type conservativeBackfill struct {
	prof freeProfile // reusable pass-time availability profile
}

func (*conservativeBackfill) Name() string { return "conservative" }

func (c *conservativeBackfill) Pass(s *Simulator, head *job, t time.Time) {
	tNs := t.UnixNano()
	c.prof.reset(tNs, s.freeCores)
	// Future releases from running jobs at their walltime limits.
	// Reservation-pool jobs are excluded: their cores return to the
	// reservation, not the general pool.
	for _, j := range s.running {
		if j.res != nil {
			continue
		}
		at := j.limitEndNs
		if at < tNs {
			at = tNs
		}
		c.prof.release(at, j.cores)
	}
	// The head holds the earliest slot it fits.
	c.prof.reserve(c.prof.earliestFit(head.cores, int64(head.req.Timelimit)),
		head.cores, int64(head.req.Timelimit))

	depth := s.cfg.BackfillDepth
	if depth == 0 {
		depth = s.npending
	}
	considered := 0
	for considered < depth {
		j := s.nextPending()
		if j == nil {
			break
		}
		if j.res != nil {
			s.keep = append(s.keep, j)
			continue
		}
		considered++
		durNs := int64(j.req.Timelimit)
		at := c.prof.earliestFit(j.cores, durNs)
		if at == tNs && j.cores <= s.freeCores && s.sel.Fits(j) {
			c.prof.reserve(at, j.cores, durNs)
			s.startJob(j, t, true)
			continue
		}
		// Not startable now: hold its future slot so nothing examined
		// later can delay it.
		if at >= 0 {
			c.prof.reserve(at, j.cores, durNs)
		}
		s.keep = append(s.keep, j)
	}
	s.mBackfillAtt.Add(int64(considered))
}

// freeProfile is a stepwise free-core availability timeline: pts[i].free
// cores are available from pts[i].t (Unix ns) until pts[i+1].t, and beyond
// the last point availability stays at the last value.
type freeProfile struct {
	pts []profPoint
}

type profPoint struct {
	t    int64
	free int
}

func (p *freeProfile) reset(nowNs int64, free int) {
	p.pts = p.pts[:0]
	p.pts = append(p.pts, profPoint{t: nowNs, free: free})
}

// release adds cores to every point at or after tNs, inserting a
// breakpoint when needed.
func (p *freeProfile) release(tNs int64, cores int) {
	i := p.insertAt(tNs)
	for ; i < len(p.pts); i++ {
		p.pts[i].free += cores
	}
}

// reserve subtracts cores over [startNs, startNs+durNs). A negative start
// (no fit exists) is a no-op.
func (p *freeProfile) reserve(startNs int64, cores int, durNs int64) {
	if startNs < 0 {
		return
	}
	end := startNs + durNs
	i := p.insertAt(startNs)
	j := p.insertAt(end)
	for ; i < j; i++ {
		p.pts[i].free -= cores
	}
}

// insertAt returns the index of the breakpoint at exactly tNs, inserting
// one (carrying the prevailing availability) when absent. Times before the
// profile start clamp to the first point.
func (p *freeProfile) insertAt(tNs int64) int {
	i := sort.Search(len(p.pts), func(k int) bool { return p.pts[k].t >= tNs })
	if i < len(p.pts) && p.pts[i].t == tNs {
		return i
	}
	if i == 0 {
		return 0
	}
	p.pts = append(p.pts, profPoint{})
	copy(p.pts[i+1:], p.pts[i:])
	p.pts[i] = profPoint{t: tNs, free: p.pts[i-1].free}
	return i
}

// earliestFit finds the earliest start time at which cores are available
// continuously for durNs, or -1 when no such window ever opens (the job
// exceeds what the pool can free).
func (p *freeProfile) earliestFit(cores int, durNs int64) int64 {
	for i := 0; i < len(p.pts); i++ {
		if p.pts[i].free < cores {
			continue
		}
		start := p.pts[i].t
		end := start + durNs
		ok := true
		for k := i + 1; k < len(p.pts) && p.pts[k].t < end; k++ {
			if p.pts[k].free < cores {
				ok = false
				i = k - 1 // outer i++ resumes the scan at the violation
				break
			}
		}
		if ok {
			return start
		}
	}
	return -1
}
