package sched

import (
	"testing"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

// preemptSystem is tinySystem plus preemption-enabled QoS levels.
func preemptSystem() *cluster.System {
	s := tinySystem()
	s.QOSLevels = append(s.QOSLevels,
		cluster.QOS{Name: "urgent", PriorityWeight: 500_000, CanPreempt: true},
		cluster.QOS{Name: "preemptible", PriorityWeight: -100_000, Preemptible: true},
	)
	return s
}

// --- dependency chains ---

func chainReq(user string, pos int, chain int64, submit time.Time,
	nodes int, limit, runtime time.Duration) tracegen.Request {
	r := req(user, submit, nodes, limit, runtime)
	r.Chain, r.ChainPos = chain, pos
	return r
}

func TestChainRunsSequentially(t *testing.T) {
	reqs := []tracegen.Request{
		chainReq("a", 0, 1, t0, 2, time.Hour, 30*time.Minute),
		chainReq("a", 1, 1, t0, 2, time.Hour, 20*time.Minute),
		chainReq("a", 2, 1, t0, 2, time.Hour, 10*time.Minute),
	}
	res := run(t, tinySystem(), reqs, nil)
	if len(res.Jobs) != 3 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if j.State != slurm.StateCompleted {
			t.Fatalf("job %d state %v", i, j.State)
		}
	}
	// Each stage starts when its predecessor ends.
	if !res.Jobs[1].Start.Equal(res.Jobs[0].End) {
		t.Errorf("stage 1 started %v, predecessor ended %v", res.Jobs[1].Start, res.Jobs[0].End)
	}
	if !res.Jobs[2].Start.Equal(res.Jobs[1].End) {
		t.Errorf("stage 2 started %v, predecessor ended %v", res.Jobs[2].Start, res.Jobs[1].End)
	}
	// Eligibility and dependency metadata land in the records.
	if !res.Jobs[1].Eligible.Equal(res.Jobs[0].End) {
		t.Errorf("stage 1 eligible %v, want predecessor end", res.Jobs[1].Eligible)
	}
	if res.Jobs[1].Dependency != "afterok:"+res.Jobs[0].ID.String() {
		t.Errorf("Dependency = %q", res.Jobs[1].Dependency)
	}
	if res.Jobs[0].Dependency != "" {
		t.Errorf("chain head carries a dependency: %q", res.Jobs[0].Dependency)
	}
}

func TestChainFailureCascades(t *testing.T) {
	head := chainReq("a", 0, 1, t0, 2, time.Hour, 30*time.Minute)
	head.Outcome = slurm.StateFailed
	head.FailFrac = 0.5
	reqs := []tracegen.Request{
		head,
		chainReq("a", 1, 1, t0, 2, time.Hour, 20*time.Minute),
		chainReq("a", 2, 1, t0, 2, time.Hour, 10*time.Minute),
	}
	res := run(t, tinySystem(), reqs, nil)
	if res.Jobs[0].State != slurm.StateFailed {
		t.Fatalf("head state %v", res.Jobs[0].State)
	}
	for i := 1; i < 3; i++ {
		j := &res.Jobs[i]
		if j.State != slurm.StateCancelled {
			t.Errorf("dependent %d state %v, want CANCELLED", i, j.State)
		}
		if !j.Start.IsZero() {
			t.Errorf("dependent %d ran despite failed upstream", i)
		}
		if j.Reason != "DependencyNeverSatisfied" {
			t.Errorf("dependent %d reason %q", i, j.Reason)
		}
	}
	if res.Stats.DependencyCancelled != 2 {
		t.Errorf("DependencyCancelled = %d", res.Stats.DependencyCancelled)
	}
}

func TestChainIndependentOfQueueOrder(t *testing.T) {
	// A later-submitted independent job must not be blocked by a held
	// chain stage, and the chain stage must not run before its
	// predecessor even when nodes are free.
	reqs := []tracegen.Request{
		chainReq("a", 0, 1, t0, 8, time.Hour, time.Hour),
		chainReq("a", 1, 1, t0, 8, time.Hour, 30*time.Minute),
		req("b", t0.Add(time.Minute), 2, time.Hour, 10*time.Minute),
	}
	res := run(t, tinySystem(), reqs, nil)
	b := findJob(res, "b")
	if !b.Start.Equal(t0.Add(time.Minute)) {
		t.Errorf("independent job blocked until %v", b.Start)
	}
	stage1 := &res.Jobs[1]
	if stage1.Start.Before(res.Jobs[0].End) {
		t.Errorf("chain stage started %v before predecessor end %v", stage1.Start, res.Jobs[0].End)
	}
}

// --- preemption ---

func TestUrgentPreemptsPreemptible(t *testing.T) {
	victim := req("victim", t0, 10, 4*time.Hour, 4*time.Hour)
	victim.QOS = "preemptible"
	urgent := req("urgent", t0.Add(30*time.Minute), 6, time.Hour, 30*time.Minute)
	urgent.QOS = "urgent"
	res := run(t, preemptSystem(), []tracegen.Request{victim, urgent}, nil)
	u, v := findJob(res, "urgent"), findJob(res, "victim")
	if !u.Start.Equal(t0.Add(30 * time.Minute)) {
		t.Errorf("urgent job queued until %v instead of preempting", u.Start)
	}
	if v.Restarts != 1 {
		t.Errorf("victim restarts = %d, want 1", v.Restarts)
	}
	if v.State != slurm.StateCompleted {
		t.Errorf("victim final state %v; it should finish after requeue", v.State)
	}
	// The victim's second run starts after the urgent job ends.
	if v.Start.Before(u.End) {
		t.Errorf("victim restarted %v before urgent finished %v", v.Start, u.End)
	}
	if v.Suspended != 30*time.Minute {
		t.Errorf("victim lost time = %v, want 30m recorded as Suspended", v.Suspended)
	}
	if res.Stats.Preemptions != 1 || res.Stats.PreemptedLost != 30*time.Minute {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestUrgentDoesNotPreemptNormalJobs(t *testing.T) {
	blocker := req("normal", t0, 10, 2*time.Hour, 2*time.Hour) // normal QoS
	urgent := req("urgent", t0.Add(time.Minute), 6, time.Hour, 30*time.Minute)
	urgent.QOS = "urgent"
	res := run(t, preemptSystem(), []tracegen.Request{blocker, urgent}, nil)
	u := findJob(res, "urgent")
	if u.Start.Before(t0.Add(2 * time.Hour)) {
		t.Errorf("urgent job preempted a non-preemptible job (started %v)", u.Start)
	}
	if res.Stats.Preemptions != 0 {
		t.Errorf("Preemptions = %d", res.Stats.Preemptions)
	}
}

func TestPreemptionAllOrNothing(t *testing.T) {
	// Preemptible work frees only 4 nodes; urgent needs 8 beyond free 0.
	// Nothing must be evicted pointlessly.
	a := req("a", t0, 6, 4*time.Hour, 4*time.Hour) // normal, not evictable
	b := req("b", t0, 4, 4*time.Hour, 4*time.Hour)
	b.QOS = "preemptible"
	urgent := req("urgent", t0.Add(time.Minute), 8, time.Hour, 30*time.Minute)
	urgent.QOS = "urgent"
	res := run(t, preemptSystem(), []tracegen.Request{a, b, urgent}, nil)
	if res.Stats.Preemptions != 0 {
		t.Errorf("partial eviction happened: %d", res.Stats.Preemptions)
	}
	v := findJob(res, "b")
	if v.Restarts != 0 {
		t.Errorf("victim restarted pointlessly")
	}
}

func TestPreemptionEvictsYoungestFirst(t *testing.T) {
	old := req("old", t0, 5, 6*time.Hour, 6*time.Hour)
	old.QOS = "preemptible"
	young := req("young", t0.Add(time.Hour), 5, 6*time.Hour, 6*time.Hour)
	young.QOS = "preemptible"
	urgent := req("urgent", t0.Add(2*time.Hour), 5, time.Hour, 30*time.Minute)
	urgent.QOS = "urgent"
	res := run(t, preemptSystem(), []tracegen.Request{old, young, urgent}, nil)
	if findJob(res, "young").Restarts != 1 {
		t.Error("youngest preemptible job should be the victim")
	}
	if findJob(res, "old").Restarts != 0 {
		t.Error("older job evicted despite a younger candidate")
	}
}

// --- reservations ---

func TestReservationHonored(t *testing.T) {
	window := Reservation{
		Name:  "beamtime",
		Nodes: 4,
		Start: t0.Add(time.Hour),
		End:   t0.Add(3 * time.Hour),
	}
	inRes := req("nrt", t0, 2, 30*time.Minute, 20*time.Minute)
	inRes.Reservation = "beamtime"
	res := run(t, tinySystem(), []tracegen.Request{inRes}, func(c *Config) {
		c.Reservations = []Reservation{window}
	})
	j := findJob(res, "nrt")
	// Submitted before the window: must wait for it even on an idle
	// machine.
	if !j.Start.Equal(window.Start) {
		t.Errorf("reservation job started %v, want window start %v", j.Start, window.Start)
	}
	if j.Reservation != "beamtime" || j.ReservationID != 1 {
		t.Errorf("reservation metadata: %q / %d", j.Reservation, j.ReservationID)
	}
	if res.Stats.ReservationStarts != 1 {
		t.Errorf("ReservationStarts = %d", res.Stats.ReservationStarts)
	}
}

func TestReservationCapacityIsCarvedOut(t *testing.T) {
	// During the window, general jobs can use at most 10-4 = 6 nodes.
	window := Reservation{Name: "beamtime", Nodes: 4, Start: t0, End: t0.Add(4 * time.Hour)}
	big := req("big", t0.Add(time.Minute), 8, time.Hour, 30*time.Minute)
	res := run(t, tinySystem(), []tracegen.Request{big}, func(c *Config) {
		c.Reservations = []Reservation{window}
	})
	j := findJob(res, "big")
	// 8 nodes don't fit next to the 4-node carve; the job waits for the
	// window to close.
	if j.Start.Before(window.End) {
		t.Errorf("8-node job started %v inside a 4-node reservation window", j.Start)
	}
}

func TestReservationJobMustFitWindow(t *testing.T) {
	window := Reservation{Name: "beamtime", Nodes: 4, Start: t0, End: t0.Add(time.Hour)}
	long := req("nrt", t0, 2, 2*time.Hour, 90*time.Minute) // cannot finish by End
	long.Reservation = "beamtime"
	res := run(t, tinySystem(), []tracegen.Request{long}, func(c *Config) {
		c.Reservations = []Reservation{window}
	})
	j := findJob(res, "nrt")
	// Released to the general pool at window end and runs there.
	if j.Start.Before(window.End) {
		t.Errorf("overlong job ran inside the window: started %v", j.Start)
	}
	if j.State != slurm.StateCompleted {
		t.Errorf("state %v", j.State)
	}
	if res.Stats.ReservationStarts != 0 {
		t.Errorf("ReservationStarts = %d", res.Stats.ReservationStarts)
	}
}

func TestReservationNodesReturnAfterWindow(t *testing.T) {
	window := Reservation{Name: "beamtime", Nodes: 6, Start: t0, End: t0.Add(time.Hour)}
	after := req("later", t0.Add(30*time.Minute), 10, 2*time.Hour, 30*time.Minute)
	res := run(t, tinySystem(), []tracegen.Request{after}, func(c *Config) {
		c.Reservations = []Reservation{window}
	})
	j := findJob(res, "later")
	if !j.Start.Equal(window.End) {
		t.Errorf("full-machine job started %v, want at window end %v", j.Start, window.End)
	}
}

func TestReservationValidation(t *testing.T) {
	base := DefaultConfig(tinySystem())
	cases := []struct {
		name string
		res  Reservation
	}{
		{"unnamed", Reservation{Nodes: 2, Start: t0, End: t0.Add(time.Hour)}},
		{"oversize", Reservation{Name: "r", Nodes: 99, Start: t0, End: t0.Add(time.Hour)}},
		{"empty window", Reservation{Name: "r", Nodes: 2, Start: t0, End: t0}},
	}
	for _, c := range cases {
		cfg := base
		cfg.Reservations = []Reservation{c.res}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	dup := base
	r := Reservation{Name: "r", Nodes: 2, Start: t0, End: t0.Add(time.Hour)}
	dup.Reservations = []Reservation{r, r}
	if _, err := New(dup); err == nil {
		t.Error("duplicate reservation: want error")
	}
	sim, _ := New(base)
	bad := req("a", t0, 1, time.Hour, time.Minute)
	bad.Reservation = "ghost"
	if _, err := sim.Run([]tracegen.Request{bad}, Options{}); err == nil {
		t.Error("unknown reservation reference: want error")
	}
	sim2, err := New(Config{})
	if err == nil || sim2 != nil {
		t.Error("empty config: want error")
	}
}

// TestMixedFeatureWorkload runs a trace exercising chains, arrays,
// preemption, and reservations together and checks global invariants.
func TestMixedFeatureWorkload(t *testing.T) {
	p := tracegen.FrontierProfile() // includes urgent + preemptible classes
	p.JobsPerDay, p.Users = 120, 60
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: t0, End: t0.AddDate(0, 0, 10),
	}}, 77)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(cluster.Frontier())
	cfg.Reservations = []Reservation{{
		Name: "beamline-a", Nodes: 256,
		Start: t0.AddDate(0, 0, 2), End: t0.AddDate(0, 0, 3),
	}}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chains := 0
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if !j.State.Terminal() {
			t.Fatalf("job %v not terminal", j.ID)
		}
		if j.Dependency != "" {
			chains++
			if !j.Start.IsZero() && j.Eligible.Before(j.Submit) {
				t.Fatalf("dependent %v eligible before submit", j.ID)
			}
		}
		if !j.Start.IsZero() && j.Elapsed > j.Timelimit {
			t.Fatalf("job %v exceeded its limit", j.ID)
		}
	}
	if chains == 0 {
		t.Error("profile generated no dependency chains")
	}
	if util := res.Stats.Utilization(); util <= 0 || util > 1 {
		t.Errorf("utilization = %v", util)
	}
}
