package sched

import (
	"math/rand"
	"testing"
	"time"

	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

// --- evResEnd fallback: pending tagged jobs retarget the general pool ---

// TestReservationFallbackAfterWindowClose pins the evResEnd fallback
// semantics: a tagged job that cannot get reservation capacity stays out
// of the general pool for the whole window — even with general nodes
// free — and dispatches there the instant the window closes.
func TestReservationFallbackAfterWindowClose(t *testing.T) {
	winEnd := t0.Add(2 * time.Hour)
	holder := req("holder", t0, 4, 2*time.Hour, 2*time.Hour)
	holder.Reservation = "beamtime"
	blocked := req("blocked", t0, 2, time.Hour, 30*time.Minute)
	blocked.Reservation = "beamtime"
	res := run(t, tinySystem(), []tracegen.Request{holder, blocked}, func(c *Config) {
		c.Reservations = []Reservation{{Name: "beamtime", Nodes: 4, Start: t0, End: winEnd}}
	})

	h := findJob(res, "holder")
	if !h.Start.Equal(t0) {
		t.Fatalf("holder started %v, want window open %v", h.Start, t0)
	}
	b := findJob(res, "blocked")
	// The holder exhausts the carve, so the blocked job pends through the
	// window despite 6 idle general nodes, then falls back at evResEnd.
	if !b.Start.Equal(winEnd) {
		t.Errorf("blocked job started %v, want window close %v", b.Start, winEnd)
	}
	if b.State != slurm.StateCompleted {
		t.Errorf("blocked job state %v", b.State)
	}
	// The record keeps the reservation it targeted even though it ended up
	// dispatched from the general pool.
	if b.Reservation != "beamtime" || b.ReservationID == 0 {
		t.Errorf("Reservation = %q, ReservationID = %d", b.Reservation, b.ReservationID)
	}
	if res.Stats.ReservationStarts != 1 {
		t.Errorf("ReservationStarts = %d, want 1 (holder only)", res.Stats.ReservationStarts)
	}
}

// --- preemption → requeue → planned cancel ---

// TestPreemptedThenCancelledWhilePending interleaves an eviction with a
// planned cancellation: the victim is preempted, requeued, and its cancel
// fires while it is pending again. It must count as never-started despite
// having run, and its record must carry the restart.
func TestPreemptedThenCancelledWhilePending(t *testing.T) {
	victim := req("victim", t0, 10, 8*time.Hour, 6*time.Hour)
	victim.QOS = "preemptible"
	victim.CancelAfter = 2 * time.Hour
	urgent := req("urgent", t0.Add(30*time.Minute), 10, 4*time.Hour, 3*time.Hour)
	urgent.QOS = "urgent"
	res := run(t, preemptSystem(), []tracegen.Request{victim, urgent}, nil)

	u := findJob(res, "urgent")
	if !u.Start.Equal(t0.Add(30 * time.Minute)) {
		t.Fatalf("urgent started %v, preemption did not fire", u.Start)
	}
	v := findJob(res, "victim")
	if v.State != slurm.StateCancelled {
		t.Errorf("victim state %v, want CANCELLED", v.State)
	}
	if !v.Start.IsZero() {
		t.Errorf("cancelled-while-pending victim has Start %v", v.Start)
	}
	if !v.End.Equal(t0.Add(2 * time.Hour)) {
		t.Errorf("victim end %v, want planned cancel time", v.End)
	}
	if v.Restarts != 1 {
		t.Errorf("victim Restarts = %d, want 1", v.Restarts)
	}
	st := res.Stats
	if st.Preemptions != 1 || st.PreemptedLost != 30*time.Minute {
		t.Errorf("Preemptions = %d, PreemptedLost = %v", st.Preemptions, st.PreemptedLost)
	}
	if st.JobsCancelled != 1 || st.NeverStarted != 1 || st.JobsCompleted != 1 {
		t.Errorf("cancelled = %d, neverStarted = %d, completed = %d",
			st.JobsCancelled, st.NeverStarted, st.JobsCompleted)
	}
}

// TestPreemptedWaitExcludesRunTime pins the wait-accounting fix: a
// preempted job's wait is the sum of its eligible-but-pending segments,
// not restart − submit, so the 30 minutes the victim ran before eviction
// must not show up as queue wait.
func TestPreemptedWaitExcludesRunTime(t *testing.T) {
	victim := req("victim", t0, 10, 6*time.Hour, 2*time.Hour)
	victim.QOS = "preemptible"
	urgent := req("urgent", t0.Add(30*time.Minute), 10, time.Hour, time.Hour)
	urgent.QOS = "urgent"
	res := run(t, preemptSystem(), []tracegen.Request{victim, urgent}, nil)

	restart := t0.Add(90 * time.Minute) // urgent ends, victim restarts
	v := findJob(res, "victim")
	if v.State != slurm.StateCompleted || !v.Start.Equal(restart) {
		t.Fatalf("victim state %v start %v, want COMPLETED at %v", v.State, v.Start, restart)
	}
	if v.Restarts != 1 || v.Suspended != 30*time.Minute {
		t.Errorf("Restarts = %d, Suspended = %v", v.Restarts, v.Suspended)
	}
	// Segment waits: victim 0 (first start) + 1h (eviction at t0+30m to
	// restart at t0+90m); urgent 0. The buggy start−submit accounting
	// would have credited 1h30m.
	if res.Stats.TotalWait != time.Hour {
		t.Errorf("TotalWait = %v, want 1h", res.Stats.TotalWait)
	}
	if res.Stats.MaxWait != time.Hour {
		t.Errorf("MaxWait = %v, want 1h", res.Stats.MaxWait)
	}
}

// --- incremental re-sort cadence ---

// TestResortCadenceCompletes smoke-tests the approximate scheduling mode:
// with a positive re-sort cadence every job must still reach a terminal
// state and the machine must do real work.
func TestResortCadenceCompletes(t *testing.T) {
	sys := preemptSystem()
	rng := rand.New(rand.NewSource(5))
	p := tinyProfile(rng, sys)
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: t0, End: t0.AddDate(0, 0, 3),
	}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, sys, reqs, func(c *Config) {
		c.ResortEvery = 30 * time.Minute
	})
	if len(res.Jobs) != len(reqs) {
		t.Fatalf("jobs = %d, want %d", len(res.Jobs), len(reqs))
	}
	st := res.Stats
	terminal := st.JobsCompleted + st.JobsFailed + st.JobsCancelled +
		st.JobsTimeout + st.JobsNodeFail + st.JobsOOM
	if terminal != len(reqs) {
		t.Errorf("terminal jobs = %d, want %d: %+v", terminal, len(reqs), st)
	}
	if st.NodeSecondsBusy <= 0 || st.Utilization() <= 0 {
		t.Errorf("no work done: %+v", st)
	}
}

func TestResortCadenceValidation(t *testing.T) {
	cfg := DefaultConfig(tinySystem())
	cfg.ResortEvery = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Error("negative ResortEvery passed validation")
	}
}
