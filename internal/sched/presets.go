package sched

import (
	"fmt"
	"sort"
	"time"
)

// WeightPreset is a named multifactor weight composition: the policy
// vocabulary the tournament and the LLM evolution loop mutate. Zero-valued
// duration fields inherit the config they are applied to.
type WeightPreset struct {
	Description     string
	Priority        string // priority policy name ("" = multifactor)
	Base            int64
	AgeWeight       int64
	SizeWeight      int64
	FairShareWeight int64
	AgeMax          time.Duration
	HalfLife        time.Duration
}

// presets is the named weight vocabulary. "default" matches DefaultConfig
// exactly so applying it is a no-op on a default configuration.
var presets = map[string]WeightPreset{
	"default": {
		Description:     "production mix: size rewarded, age and fair share balanced",
		Base:            100_000,
		AgeWeight:       300_000,
		SizeWeight:      400_000,
		FairShareWeight: 200_000,
	},
	"capability": {
		Description:     "size-dominant capability scheduling: big jobs jump the queue",
		Base:            100_000,
		AgeWeight:       150_000,
		SizeWeight:      900_000,
		FairShareWeight: 100_000,
	},
	"aging": {
		Description:     "age-dominant: waiting time dominates, size barely counts",
		Base:            100_000,
		AgeWeight:       900_000,
		SizeWeight:      50_000,
		FairShareWeight: 150_000,
	},
	"fairshare": {
		Description:     "fair-share-dominant: heavy users sink, light users rise",
		Base:            100_000,
		AgeWeight:       200_000,
		SizeWeight:      50_000,
		FairShareWeight: 800_000,
	},
	"fifo": {
		Description: "first-come-first-served baseline: submission order only",
		Priority:    "fifo",
	},
}

// ApplyPreset overwrites cfg's priority weights with the named preset,
// leaving every other knob (backfill, sharing, reservations) untouched.
func ApplyPreset(cfg *Config, name string) error {
	p, ok := presets[name]
	if !ok {
		return fmt.Errorf("sched: unknown weight preset %q", name)
	}
	cfg.Priority = p.Priority
	if p.Priority == "" {
		cfg.Base = p.Base
		cfg.AgeWeight = p.AgeWeight
		cfg.SizeWeight = p.SizeWeight
		cfg.FairShareWeight = p.FairShareWeight
	}
	if p.AgeMax > 0 {
		cfg.AgeMax = p.AgeMax
	}
	if p.HalfLife > 0 {
		cfg.FairShareHalfLife = p.HalfLife
	}
	return nil
}

// PresetNames lists the named weight presets, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns the named preset for inspection.
func Preset(name string) (WeightPreset, bool) {
	p, ok := presets[name]
	return p, ok
}
