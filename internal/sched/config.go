// Package sched is an event-driven Slurm-like scheduler simulator. It
// executes the synthetic submissions from internal/tracegen against a
// cluster model and produces the accounting records the analysis workflow
// consumes — including realistic queue waits, multifactor priorities,
// EASY-backfill placement (the SchedBackfill flag the paper's Backfill
// indicator derives from), timeout enforcement, cancellations while pending
// or running, and per-step records.
//
// The simulator is the stand-in for OLCF's production scheduler: the
// phenomena the paper's figures visualise (wait-time stratification,
// backfilled jobs skewing short, walltime over-estimation) emerge from the
// scheduling dynamics rather than being painted onto the trace.
package sched

import (
	"errors"
	"fmt"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/obs"
)

// Config carries the scheduling-policy knobs, mirroring the Slurm
// multifactor priority plugin and backfill plugin parameters.
type Config struct {
	System *cluster.System

	// Multifactor priority weights. Priority at scheduling time is
	//   Base + AgeWeight·min(age/AgeMax, 1) + SizeWeight·(nodes/total)
	//        + FairShareWeight·2^(−usage/halfUsage) + QOS weight.
	Base            int64
	AgeWeight       int64
	AgeMax          time.Duration
	SizeWeight      int64
	FairShareWeight int64

	// EnableBackfill toggles the EASY backfill pass; disabling it is the
	// ablation baseline (pure priority-order FIFO with a blocking head).
	// The Backfill name, when set, overrides this legacy toggle.
	EnableBackfill bool

	// Priority names the priority policy: "multifactor" (empty defaults
	// here) or "fifo". See PriorityByName.
	Priority string

	// Backfill names the backfill strategy: "easy", "conservative", or
	// "none". Empty defers to EnableBackfill — easy when true, none when
	// false. See BackfillByName.
	Backfill string

	// NodeSelect names the node-selection policy: "pool" (the default
	// fragmentation-free scalar model), "firstfit", or "bestfit". See
	// SelectorByName.
	NodeSelect string

	// EnableNodeSharing lets sub-node requests (Request.Cores > 0) pack
	// onto shared nodes instead of each occupying a full node — the
	// node-sharing policy the paper lists among the levers this workflow
	// should inform. The core-pool model ignores per-node fragmentation
	// (a deliberate simplification at this fidelity).
	EnableNodeSharing bool

	// BackfillDepth bounds how many queued jobs each backfill pass
	// considers, like Slurm's bf_max_job_test.
	BackfillDepth int

	// FairShareHalfLife is the decay time constant of per-user usage.
	FairShareHalfLife time.Duration

	// ResortEvery sets the incremental re-prioritisation cadence. Zero
	// (the default) recomputes every pending job's priority on every
	// scheduling pass, matching legacy behaviour exactly. A positive
	// cadence recomputes only jobs whose priority inputs changed (newly
	// pending, user usage accrued, age term newly saturated) between
	// full refreshes at this interval — an approximation that bounds
	// priority staleness by the cadence and cuts per-pass cost on very
	// deep queues.
	ResortEvery time.Duration

	// Seed drives the synthesis of per-step usage numbers.
	Seed int64

	// Reservations are advance node reservations (e.g. daily windows for
	// experiment-coupled near-real-time work). During a reservation's
	// window its nodes are carved out of the general pool as they free
	// up; only jobs tagged with the reservation may use them, and only
	// if they fit entirely inside the window. When the window closes,
	// unclaimed capacity returns to the general pool and still-pending
	// tagged jobs fall back to general scheduling.
	Reservations []Reservation

	// Metrics, when non-nil, publishes simulator counters and gauges
	// under sched_* names (events processed, scheduling passes,
	// backfill attempts/starts, queue depth, jobs running). Nil keeps
	// the hot path unmetered.
	Metrics *obs.Registry
}

// Reservation is one advance node reservation.
type Reservation struct {
	Name       string
	Nodes      int
	Start, End time.Time
}

// DefaultConfig returns production-like policy for a system: age and fair
// share dominate, size is rewarded (capability scheduling), backfill on.
func DefaultConfig(sys *cluster.System) Config {
	return Config{
		System:            sys,
		Base:              100_000,
		AgeWeight:         300_000,
		AgeMax:            14 * 24 * time.Hour,
		SizeWeight:        400_000,
		FairShareWeight:   200_000,
		EnableBackfill:    true,
		BackfillDepth:     500,
		FairShareHalfLife: 7 * 24 * time.Hour,
		Seed:              1,
	}
}

// Typed configuration errors, matchable with errors.Is: a caller handing
// sched.New a bad config gets a diagnosable rejection up front instead of
// undefined behaviour deep in a run.
var (
	// ErrNilSystem rejects a configuration without a cluster model.
	ErrNilSystem = errors.New("sched: config needs a system")
	// ErrNegativeWeight rejects negative multifactor priority weights.
	ErrNegativeWeight = errors.New("sched: negative priority weight")
	// ErrBadDepth rejects a negative BackfillDepth.
	ErrBadDepth = errors.New("sched: negative backfill depth")
	// ErrBadTimeConstant rejects non-positive AgeMax/FairShareHalfLife
	// and a negative ResortEvery cadence.
	ErrBadTimeConstant = errors.New("sched: bad time constant")
	// ErrUnknownPolicy rejects unresolvable policy names.
	ErrUnknownPolicy = errors.New("sched: unknown policy")
)

// backfillName resolves the effective backfill strategy from the explicit
// name and the legacy EnableBackfill toggle.
func (c *Config) backfillName() string {
	if c.Backfill != "" {
		return c.Backfill
	}
	if c.EnableBackfill {
		return "easy"
	}
	return "none"
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.System == nil {
		return ErrNilSystem
	}
	if err := c.System.Validate(); err != nil {
		return err
	}
	if c.AgeMax <= 0 || c.FairShareHalfLife <= 0 {
		return fmt.Errorf("%w: AgeMax and FairShareHalfLife must be positive", ErrBadTimeConstant)
	}
	if c.AgeWeight < 0 || c.SizeWeight < 0 || c.FairShareWeight < 0 {
		return fmt.Errorf("%w: age=%d size=%d fairshare=%d",
			ErrNegativeWeight, c.AgeWeight, c.SizeWeight, c.FairShareWeight)
	}
	if c.BackfillDepth < 0 {
		return fmt.Errorf("%w: %d", ErrBadDepth, c.BackfillDepth)
	}
	if c.ResortEvery < 0 {
		return fmt.Errorf("%w: negative re-sort cadence", ErrBadTimeConstant)
	}
	if _, err := PriorityByName(c.Priority, c); err != nil {
		return fmt.Errorf("%w: priority %q", ErrUnknownPolicy, c.Priority)
	}
	if _, err := BackfillByName(c.backfillName()); err != nil {
		return fmt.Errorf("%w: backfill %q", ErrUnknownPolicy, c.Backfill)
	}
	if _, err := SelectorByName(c.NodeSelect); err != nil {
		return fmt.Errorf("%w: node selector %q", ErrUnknownPolicy, c.NodeSelect)
	}
	seen := map[string]bool{}
	for _, r := range c.Reservations {
		if r.Name == "" {
			return errors.New("sched: reservation needs a name")
		}
		if seen[r.Name] {
			return errors.New("sched: duplicate reservation " + r.Name)
		}
		seen[r.Name] = true
		if r.Nodes <= 0 || r.Nodes > c.System.Nodes {
			return errors.New("sched: reservation " + r.Name + " node count out of range")
		}
		if !r.Start.Before(r.End) {
			return errors.New("sched: reservation " + r.Name + " window is empty")
		}
	}
	return nil
}

// RunStats aggregates simulator-level outcomes for ablations and sanity
// checks.
type RunStats struct {
	JobsCompleted int
	JobsFailed    int
	JobsCancelled int
	JobsTimeout   int
	JobsNodeFail  int
	JobsOOM       int
	Backfilled    int
	NeverStarted  int // cancelled while pending

	// TotalWait and MaxWait aggregate per-job queue wait, defined as the
	// time a job spends eligible-but-pending, summed across scheduling
	// segments. For a plain job this is start − submit. A dependent's
	// wait starts at dependency release (its eligible time), not at
	// submission. A preempted job opens a new segment at eviction: the
	// time it spent running before the eviction is credited, never
	// counted as wait — so wait = Σ(startᵢ − eligibleᵢ) over segments.
	// TotalWait saturates at the int64 bound instead of overflowing on
	// very large contended traces.
	TotalWait       time.Duration
	MaxWait         time.Duration
	NodeSecondsBusy float64
	NodeSecondsCap  float64 // capacity over the simulated span

	// Preemptions counts evictions of preemptible jobs by urgent work;
	// PreemptedLost is the partial runtime those evictions discarded.
	Preemptions   int
	PreemptedLost time.Duration
	// DependencyCancelled counts jobs cancelled because an upstream
	// dependency failed.
	DependencyCancelled int
	// ReservationStarts counts jobs dispatched inside a reservation.
	ReservationStarts int
}

// Utilization returns busy node-seconds over capacity node-seconds.
func (s *RunStats) Utilization() float64 {
	if s.NodeSecondsCap <= 0 {
		return 0
	}
	return s.NodeSecondsBusy / s.NodeSecondsCap
}

// MeanWait returns the average queue wait across started jobs.
func (s *RunStats) MeanWait() time.Duration {
	started := s.JobsCompleted + s.JobsFailed + s.JobsTimeout + s.JobsNodeFail + s.JobsOOM +
		s.JobsCancelled - s.NeverStarted
	if started <= 0 {
		return 0
	}
	return s.TotalWait / time.Duration(started)
}
