package sched

import (
	"testing"
	"time"

	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

// coreReq builds a sub-node request: one node, the given core count.
func coreReq(user string, submit time.Time, cores int, limit, runtime time.Duration) tracegen.Request {
	r := req(user, submit, 1, limit, runtime)
	r.Cores = cores
	return r
}

func TestNodeSharingPacksSubNodeJobs(t *testing.T) {
	// Two 4-core jobs on one 8-core node: with sharing they run
	// concurrently even when the rest of the machine is occupied.
	blocker := req("big", t0, 9, 4*time.Hour, 4*time.Hour) // 9 of 10 nodes
	a := coreReq("a", t0.Add(time.Second), 4, time.Hour, 30*time.Minute)
	b := coreReq("b", t0.Add(2*time.Second), 4, time.Hour, 30*time.Minute)
	res := run(t, tinySystem(), []tracegen.Request{blocker, a, b}, func(c *Config) {
		c.EnableNodeSharing = true
	})
	ja, jb := findJob(res, "a"), findJob(res, "b")
	if !ja.Start.Equal(t0.Add(time.Second)) || !jb.Start.Equal(t0.Add(2*time.Second)) {
		t.Errorf("shared jobs did not pack: a=%v b=%v", ja.Start, jb.Start)
	}
	if ja.NCPUs != 4 || ja.NNodes != 1 {
		t.Errorf("sub-node record wrong: %d nodes / %d cpus", ja.NNodes, ja.NCPUs)
	}
}

func TestNodeSharingOffSerializes(t *testing.T) {
	// Same scenario without sharing: each sub-node job occupies a whole
	// node, so the second must wait for the first.
	blocker := req("big", t0, 9, 4*time.Hour, 4*time.Hour)
	a := coreReq("a", t0.Add(time.Second), 4, time.Hour, 30*time.Minute)
	b := coreReq("b", t0.Add(2*time.Second), 4, time.Hour, 30*time.Minute)
	res := run(t, tinySystem(), []tracegen.Request{blocker, a, b}, nil)
	ja, jb := findJob(res, "a"), findJob(res, "b")
	if !ja.Start.Equal(t0.Add(time.Second)) {
		t.Errorf("first sub-node job should take the free node: %v", ja.Start)
	}
	if jb.Start.Before(ja.End) {
		t.Errorf("without sharing the second job ran concurrently: %v < %v", jb.Start, ja.End)
	}
	// Whole-node semantics: the record still shows a full node's CPUs.
	if ja.NCPUs != 8 {
		t.Errorf("rounded-up job NCPUs = %d, want the full node", ja.NCPUs)
	}
}

func TestSubNodeRequestValidation(t *testing.T) {
	cfg := DefaultConfig(tinySystem())
	cfg.EnableNodeSharing = true
	sim, _ := New(cfg)
	multi := req("a", t0, 2, time.Hour, time.Minute)
	multi.Cores = 4
	if _, err := sim.Run([]tracegen.Request{multi}, Options{}); err == nil {
		t.Error("multi-node + cores: want error")
	}
	sim2, _ := New(cfg)
	tooBig := coreReq("a", t0, 99, time.Hour, time.Minute)
	if _, err := sim2.Run([]tracegen.Request{tooBig}, Options{}); err == nil {
		t.Error("cores beyond a node: want error")
	}
}

func TestNodeSharingThroughput(t *testing.T) {
	// 40 quarter-node jobs on the 10-node machine, all submitted at once:
	// sharing runs them in one wave where whole-node placement needs four.
	var reqs []tracegen.Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs, coreReq("u", t0, 2, time.Hour, time.Hour))
	}
	shared := run(t, tinySystem(), reqs, func(c *Config) { c.EnableNodeSharing = true })
	exclusive := run(t, tinySystem(), reqs, nil)
	lastEnd := func(res *Result) time.Time {
		var last time.Time
		for i := range res.Jobs {
			if res.Jobs[i].End.After(last) {
				last = res.Jobs[i].End
			}
		}
		return last
	}
	sharedSpan := lastEnd(shared).Sub(t0)
	exclusiveSpan := lastEnd(exclusive).Sub(t0)
	if sharedSpan != time.Hour {
		t.Errorf("shared makespan = %v, want one wave", sharedSpan)
	}
	if exclusiveSpan != 4*time.Hour {
		t.Errorf("exclusive makespan = %v, want four waves", exclusiveSpan)
	}
	for i := range shared.Jobs {
		if shared.Jobs[i].State != slurm.StateCompleted {
			t.Fatalf("job %d state %v", i, shared.Jobs[i].State)
		}
	}
}

func TestSharingWithMixedWorkload(t *testing.T) {
	// Sub-node and whole-node jobs coexist; capacity accounting holds.
	reqs := []tracegen.Request{
		req("whole", t0, 8, 2*time.Hour, 2*time.Hour),
		coreReq("s1", t0, 8, time.Hour, time.Hour), // a full node's worth
		coreReq("s2", t0, 4, time.Hour, time.Hour), // packs with s3
		coreReq("s3", t0, 4, time.Hour, time.Hour),
	}
	res := run(t, tinySystem(), reqs, func(c *Config) { c.EnableNodeSharing = true })
	// 8 nodes + 8 cores + 4 + 4 = 80 cores exactly: everything starts at t0.
	for _, user := range []string{"whole", "s1", "s2", "s3"} {
		if j := findJob(res, user); !j.Start.Equal(t0) {
			t.Errorf("%s delayed to %v despite exact fit", user, j.Start)
		}
	}
	if res.Stats.Utilization() <= 0 {
		t.Error("utilization not accounted")
	}
}
