package sched

import (
	"fmt"
	"math"
	"sort"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/obs"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

// job is the simulator's view of one submission.
type job struct {
	seq      int64 // submission order, tie-breaker and id basis
	id       slurm.JobID
	req      tracegen.Request
	cores    int // allocation size in cores (the scheduling unit)
	priority int64
	cancelAt time.Time // zero when no planned cancel
	gen      int64     // bumped on preemption to invalidate stale end events

	// Scheduling-invariant priority inputs, cached at submission so the
	// per-pass recompute only touches the time-varying age and fair-share
	// terms: static = Base + size term + QoS weight.
	static      int64
	canPreempt  bool
	preemptible bool
	usage       *userUsage // this job's user's fair-share accumulator

	pendIdx int // position in s.pending, -1 when absent
	runIdx  int // position in s.running, -1 when absent

	// Incremental-reprioritisation bookkeeping (Config.ResortEvery > 0):
	// prioAtNs is when priority was last computed (0 = never), userEpoch
	// the usage epoch it saw, prioSat whether the age term had saturated.
	prioAtNs  int64
	userEpoch int64
	prioSat   bool

	started    bool
	finished   bool
	held       bool // waiting on a dependency
	start      time.Time
	end        time.Time
	eligible   time.Time
	eligNs     int64 // eligible as Unix ns, the hot-path age input
	limitEndNs int64 // start + walltime limit (Unix ns), the running-heap key
	state      slurm.State
	backfill   bool
	restarts   int64
	lost       time.Duration // runtime discarded by preemptions
	waited     time.Duration // eligible-but-pending time across scheduling segments
	reason     string

	depPred    *job   // afterok predecessor
	dependents []*job // jobs held on this one
	res        *resPool

	// nodeIDs records the nodes a tracking NodeSelector placed this job
	// on; empty under the default pool selector.
	nodeIDs []int32
}

// nodeEquivalents converts a job's core allocation into fractional nodes
// for capacity accounting; whole-node jobs come out at their node count.
func (s *Simulator) nodeEquivalents(j *job) float64 {
	return float64(j.cores) / float64(s.cfg.System.CoresPerNode)
}

// resPool tracks one advance reservation's carved capacity.
type resPool struct {
	def    Reservation
	active bool
	free   int // currently free carved cores
	carved int // cores carved out of the general pool so far
}

// Event kinds. At equal timestamps, cancellations of pending jobs beat
// everything, node releases precede submissions and reservation
// transitions, and the window-start carve runs last so it sees every node
// freed at that instant. The scheduling pass runs after the whole
// timestamp drains.
const (
	evCancel = iota
	evEnd
	evSubmit
	evResEnd
	evResStart
)

type event struct {
	t    time.Time
	kind int
	j    *job
	res  *resPool
	gen  int64
	seq  int64
}

// userUsage tracks exponentially decayed node-seconds per user for the
// fair-share factor. epoch bumps on every accrual; term memoises the
// computed fair-share priority term for (termAtNs, termEpoch) so a pass
// computes one Exp2 per user instead of one per pending job. Timestamps
// are Unix ns (0 = unset; all simulated instants are far from the epoch).
type userUsage struct {
	value  float64
	asOfNs int64
	epoch  int64

	term      int64
	termAtNs  int64
	termEpoch int64
}

// Simulator executes submissions against a cluster model.
type Simulator struct {
	cfg       Config
	freeCores int
	pending   []pendEntry // position-tracked; heap-ordered only during a pass
	npending  int         // pending jobs across all pass-time containers
	running   []*job      // min-heap on (limitEnd, seq)
	usage     map[string]*userUsage
	qosDefs   map[string]cluster.QOS
	events    []event
	seq       int64
	now       time.Time
	stats     RunStats
	resPools  []*resPool
	resByName map[string]*resPool

	// schedDirty is cleared when a pass runs and set by any event that
	// frees capacity, adds pending work, or moves a reservation window;
	// no-op events (stale ends, cancels of started jobs, held submits)
	// leave it unset and the pass is skipped.
	schedDirty bool
	// lastPassT is the latest drained timestamp with pending work: the
	// moment the legacy pass would last have rewritten every pending
	// job's priority (see the evCancel handler).
	lastPassT  time.Time
	lastReprio time.Time // last full recompute (ResortEvery cadence)

	// Reusable pass-time buffers.
	appended  []*job // preemption victims requeued mid-pass, FIFO
	appCursor int
	keep      []*job      // examined but not started this pass
	resBuf    []pendEntry // reservation-tagged subset
	shadowBuf []*job      // scratch copy of the running heap
	victimBuf []*job

	halfF float64 // FairShareHalfLife as float ns, the decay divisor

	// The pluggable policy composition, resolved once in New from the
	// config's policy names. The default triple (multifactor priority,
	// EASY backfill, pool selection) reproduces the pre-refactor
	// simulator bit for bit.
	prio PriorityPolicy
	bf   BackfillPolicy
	sel  NodeSelector

	// Instruments resolved once in New from cfg.Metrics; all nil (free
	// no-ops) when metrics are off, keeping the event loop unmetered.
	mEvents         *obs.Counter
	mPasses         *obs.Counter
	mBackfillAtt    *obs.Counter
	mBackfillStarts *obs.Counter
	mPreemptAtt     *obs.Counter
	mPreemptEvict   *obs.Counter
	mQueueDepth     *obs.Gauge
	mRunning        *obs.Gauge
}

// New builds a simulator; the configuration is validated.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:        cfg,
		freeCores:  int(cfg.System.TotalCores()),
		usage:      map[string]*userUsage{},
		qosDefs:    make(map[string]cluster.QOS, len(cfg.System.QOSLevels)),
		resByName:  map[string]*resPool{},
		schedDirty: true,
		halfF:      float64(cfg.FairShareHalfLife),
	}
	var err error
	if s.prio, err = PriorityByName(cfg.Priority, &cfg); err != nil {
		return nil, err
	}
	if s.bf, err = BackfillByName(cfg.backfillName()); err != nil {
		return nil, err
	}
	if s.sel, err = SelectorByName(cfg.NodeSelect); err != nil {
		return nil, err
	}
	s.sel.Reset(cfg.System)
	if cfg.Metrics != nil {
		s.mEvents = cfg.Metrics.Counter("sched_events_processed_total")
		s.mPasses = cfg.Metrics.Counter("sched_passes_total")
		s.mBackfillAtt = cfg.Metrics.Counter("sched_backfill_attempts_total")
		s.mBackfillStarts = cfg.Metrics.Counter("sched_backfill_starts_total")
		s.mPreemptAtt = cfg.Metrics.Counter("sched_preempt_attempts_total")
		s.mPreemptEvict = cfg.Metrics.Counter("sched_preempt_evictions_total")
		s.mQueueDepth = cfg.Metrics.Gauge("sched_queue_depth")
		s.mRunning = cfg.Metrics.Gauge("sched_jobs_running")
	}
	for _, q := range cfg.System.QOSLevels {
		s.qosDefs[q.Name] = q
	}
	for _, def := range cfg.Reservations {
		rp := &resPool{def: def}
		s.resPools = append(s.resPools, rp)
		s.resByName[def.Name] = rp
	}
	return s, nil
}

// Result is the outcome of a simulation run: job-level accounting records,
// optional step-level records, per-job planned step counts, and aggregate
// statistics.
type Result struct {
	Jobs        []slurm.Record
	Steps       []slurm.Record
	StepsPerJob []int // aligned with Jobs; planned srun steps per job
	Stats       RunStats
}

// Options tune what a run materializes.
type Options struct {
	// EmitSteps materializes step records (batch, extern, and numbered
	// srun steps). Disable for very large runs where only job-level
	// analytics are needed; StepsPerJob is always populated.
	EmitSteps bool
}

// chainKey identifies a dependency chain position.
type chainKey struct {
	chain int64
	pos   int
}

// Run executes the submissions and returns the accounting trace. The
// requests may arrive in any order; they are processed by submit time.
func (s *Simulator) Run(reqs []tracegen.Request, opts Options) (*Result, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("sched: no requests")
	}
	arena := make([]job, len(reqs)) // one allocation for every job
	jobs := make([]*job, len(reqs))
	arrayBase := map[int64]int64{} // tracegen array group → base job id
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Submit.Before(reqs[order[b]].Submit)
	})
	s.events = make([]event, 0, 2*len(reqs)+2*len(s.resPools))
	const firstID = 100000
	byChain := map[chainKey]*job{}
	for n, idx := range order {
		r := reqs[idx]
		if r.Nodes <= 0 || r.Nodes > s.cfg.System.Nodes {
			return nil, fmt.Errorf("sched: request %d wants %d nodes of %d", idx, r.Nodes, s.cfg.System.Nodes)
		}
		if r.Timelimit <= 0 {
			return nil, fmt.Errorf("sched: request %d has no timelimit", idx)
		}
		cores := r.Nodes * s.cfg.System.CoresPerNode
		if r.Cores > 0 {
			if r.Nodes != 1 {
				return nil, fmt.Errorf("sched: request %d mixes a multi-node allocation with a core count", idx)
			}
			if r.Cores > s.cfg.System.CoresPerNode {
				return nil, fmt.Errorf("sched: request %d wants %d cores of a %d-core node", idx, r.Cores, s.cfg.System.CoresPerNode)
			}
			if s.cfg.EnableNodeSharing {
				cores = r.Cores
			}
			// Without node sharing, a sub-node request occupies the
			// whole node (cores already equals one node's worth).
		}
		j := &arena[n]
		*j = job{seq: int64(n), req: r, cores: cores, state: slurm.StatePending,
			eligible: r.Submit, eligNs: r.Submit.UnixNano(), pendIdx: -1, runIdx: -1}
		sizef := float64(j.cores) / float64(s.cfg.System.TotalCores())
		var qosW int64
		if q, ok := s.qosDefs[r.QOS]; ok {
			qosW = q.PriorityWeight
			j.canPreempt = q.CanPreempt
			j.preemptible = q.Preemptible
		}
		j.static = s.prio.Static(sizef, qosW)
		u, ok := s.usage[r.User]
		if !ok {
			u = &userUsage{asOfNs: r.Submit.UnixNano()}
			s.usage[r.User] = u
		}
		j.usage = u
		jobID := int64(firstID + n)
		j.id = slurm.NewJobID(jobID)
		if r.ArrayID != 0 {
			if _, ok := arrayBase[r.ArrayID]; !ok {
				arrayBase[r.ArrayID] = jobID
			}
			j.id.Array = int64(r.ArrayIndex)
		}
		if r.CancelAfter > 0 {
			j.cancelAt = r.Submit.Add(r.CancelAfter)
		}
		if r.Reservation != "" {
			rp, ok := s.resByName[r.Reservation]
			if !ok {
				return nil, fmt.Errorf("sched: request %d names unknown reservation %q", idx, r.Reservation)
			}
			if r.Nodes > rp.def.Nodes {
				return nil, fmt.Errorf("sched: request %d exceeds reservation %q capacity", idx, r.Reservation)
			}
			j.res = rp
		}
		if r.Chain != 0 {
			byChain[chainKey{r.Chain, r.ChainPos}] = j
		}
		jobs[n] = j
		s.pushEvent(event{t: r.Submit, kind: evSubmit, j: j, seq: s.nextSeq()})
		if !j.cancelAt.IsZero() {
			s.pushEvent(event{t: j.cancelAt, kind: evCancel, j: j, seq: s.nextSeq()})
		}
	}
	// Wire dependency chains: each position waits on the previous one.
	for key, j := range byChain {
		if key.pos == 0 {
			continue
		}
		pred, ok := byChain[chainKey{key.chain, key.pos - 1}]
		if !ok {
			return nil, fmt.Errorf("sched: chain %d missing position %d", key.chain, key.pos-1)
		}
		j.depPred = pred
		pred.dependents = append(pred.dependents, j)
	}
	for _, rp := range s.resPools {
		s.pushEvent(event{t: rp.def.Start, kind: evResStart, res: rp, seq: s.nextSeq()})
		s.pushEvent(event{t: rp.def.End, kind: evResEnd, res: rp, seq: s.nextSeq()})
	}

	first := jobs[0].req.Submit
	for len(s.events) > 0 {
		e := s.popEvent()
		t := e.t
		s.now = t
		s.handle(e)
		// Drain every event at this instant before scheduling.
		for len(s.events) > 0 && s.events[0].t.Equal(t) {
			s.handle(s.popEvent())
		}
		s.schedule(t)
		if s.npending > 0 {
			s.lastPassT = t
		}
	}
	// Skipped passes defer priority writes; pending jobs' records must
	// carry the value the last pass would have written.
	s.reprioritize(s.now, true)

	// Final gauge readings: a pass may have been skipped since the last
	// capacity change, so publish the drained state explicitly.
	s.mQueueDepth.Set(int64(s.npending))
	s.mRunning.Set(int64(len(s.running)))

	// Anything still pending at drain time never had resources; that
	// cannot happen with a consistent request stream, but guard anyway.
	var last time.Time
	for i := range s.pending {
		j := s.pending[i].j
		j.finished = true
		j.state = slurm.StateCancelled
		j.end = s.now
		s.stats.JobsCancelled++
		s.stats.NeverStarted++
	}
	s.pending = nil
	s.npending = 0
	// Held jobs whose predecessors never resolved are likewise cancelled.
	for _, j := range jobs {
		if !j.finished && j.held {
			j.finished = true
			j.state = slurm.StateCancelled
			j.end = s.now
			j.reason = "DependencyNeverSatisfied"
			s.stats.JobsCancelled++
			s.stats.NeverStarted++
		}
	}

	// The trace span runs from first submission to the last job activity;
	// no-op cancel events beyond it do not count.
	last = first
	for _, j := range jobs {
		if j.end.After(last) {
			last = j.end
		}
	}
	s.stats.NodeSecondsCap = float64(s.cfg.System.Nodes) * last.Sub(first).Seconds()

	return s.buildResult(jobs, arrayBase, opts)
}

func (s *Simulator) nextSeq() int64 { s.seq++; return s.seq }

func (s *Simulator) handle(e event) {
	s.mEvents.Inc()
	switch e.kind {
	case evSubmit:
		j := e.j
		if j.finished {
			return // cancelled at the same instant
		}
		if j.depPred != nil && !j.depPred.finished {
			j.held = true
			return
		}
		if j.depPred != nil && j.depPred.state != slurm.StateCompleted {
			s.cancelForDependency(j, e.t)
			return
		}
		s.pendAdd(j)
		s.npending++
		s.schedDirty = true
	case evCancel:
		j := e.j
		if j.started || j.finished {
			return // started jobs carry the cancel in their end event
		}
		j.finished = true
		j.state = slurm.StateCancelled
		j.end = e.t
		s.stats.JobsCancelled++
		s.stats.NeverStarted++
		if !j.held && j.pendIdx >= 0 {
			// The legacy pass rewrote every pending priority at each
			// drained timestamp; with skipped passes the record must
			// still carry the value from the last pass before the
			// cancel (cancellations sort first, so that pass is at an
			// earlier timestamp and usage has not decayed past it).
			if !s.lastPassT.IsZero() {
				j.priority = s.priorityAt(j, s.lastPassT)
			}
			s.pendRemove(j)
			s.npending--
			s.schedDirty = true
		}
		// Dependents of a cancelled job never run.
		for _, d := range j.dependents {
			s.cancelForDependency(d, e.t)
		}
	case evEnd:
		j := e.j
		if j.finished || e.gen != j.gen || !j.started {
			return // stale event from before a preemption
		}
		j.finished = true
		s.releaseNodes(j)
		s.runRemove(j)
		s.accrueUsage(j)
		s.countOutcome(j)
		s.resolveDependents(j, e.t)
		s.schedDirty = true
	case evResStart:
		rp := e.res
		rp.active = true
		s.refillReservations()
		s.schedDirty = true
	case evResEnd:
		rp := e.res
		rp.active = false
		s.freeCores += rp.free
		rp.free, rp.carved = 0, 0
		// Pending jobs that targeted the window fall back to the general
		// pool.
		for i := range s.pending {
			if j := s.pending[i].j; j.res == rp {
				j.res = nil
			}
		}
		s.schedDirty = true
	}
}

// releaseNodes returns a finished job's nodes to its pool.
func (s *Simulator) releaseNodes(j *job) {
	if j.res != nil && j.res.active {
		j.res.free += j.cores
		return
	}
	s.freeCores += j.cores
	s.sel.Release(j)
	s.refillReservations()
}

// refillReservations tops up active reservations from the general pool,
// modelling the drain into a reservation as nodes free up.
func (s *Simulator) refillReservations() {
	for _, rp := range s.resPools {
		target := rp.def.Nodes * s.cfg.System.CoresPerNode
		if !rp.active || rp.carved >= target {
			continue
		}
		take := target - rp.carved
		if take > s.freeCores {
			take = s.freeCores
		}
		if take <= 0 {
			continue
		}
		s.freeCores -= take
		rp.carved += take
		rp.free += take
	}
}

// resolveDependents releases or cancels the jobs held on j.
func (s *Simulator) resolveDependents(j *job, t time.Time) {
	for _, d := range j.dependents {
		if d.finished {
			continue
		}
		if j.state == slurm.StateCompleted {
			if d.held {
				d.held = false
				d.eligible = t
				d.eligNs = t.UnixNano()
				s.pendAdd(d)
				s.npending++
				s.schedDirty = true
			}
			continue
		}
		s.cancelForDependency(d, t)
	}
}

// cancelForDependency terminally cancels a job whose upstream failed, and
// cascades to its own dependents. Such jobs are held or not yet
// submitted, never in the pending set.
func (s *Simulator) cancelForDependency(j *job, t time.Time) {
	if j.finished {
		return
	}
	j.finished = true
	j.held = false
	j.state = slurm.StateCancelled
	j.reason = "DependencyNeverSatisfied"
	j.end = t
	s.stats.JobsCancelled++
	s.stats.NeverStarted++
	s.stats.DependencyCancelled++
	for _, d := range j.dependents {
		s.cancelForDependency(d, t)
	}
}

func (s *Simulator) countOutcome(j *job) {
	elapsed := j.end.Sub(j.start)
	s.stats.NodeSecondsBusy += s.nodeEquivalents(j) * elapsed.Seconds()
	// j.waited accumulates start−eligible per scheduling segment, so a
	// preempted job's earlier run time is never mistaken for queue wait
	// and a dependent's held time never counts (see RunStats.TotalWait).
	wait := j.waited
	s.stats.TotalWait = satAddDuration(s.stats.TotalWait, wait)
	if wait > s.stats.MaxWait {
		s.stats.MaxWait = wait
	}
	switch j.state {
	case slurm.StateCompleted:
		s.stats.JobsCompleted++
	case slurm.StateFailed:
		s.stats.JobsFailed++
	case slurm.StateCancelled:
		s.stats.JobsCancelled++
	case slurm.StateTimeout:
		s.stats.JobsTimeout++
	case slurm.StateNodeFail:
		s.stats.JobsNodeFail++
	case slurm.StateOutOfMemory:
		s.stats.JobsOOM++
	}
	if j.backfill {
		s.stats.Backfilled++
	}
}

// decayUser steps a user's usage decay forward to tNs (Unix ns) and
// returns the value. The ns difference equals Time.Sub exactly, so the
// float stepping matches the Time-based form bit for bit.
func (s *Simulator) decayUser(u *userUsage, tNs int64) float64 {
	dt := tNs - u.asOfNs
	if dt <= 0 {
		return u.value
	}
	u.value *= math.Exp2(-(float64(dt) / s.halfF))
	u.asOfNs = tNs
	return u.value
}

// decayedUsage returns the user's usage decayed to time t.
func (s *Simulator) decayedUsage(user string, t time.Time) float64 {
	u, ok := s.usage[user]
	if !ok {
		return 0
	}
	return s.decayUser(u, t.UnixNano())
}

func (s *Simulator) accrueUsage(j *job) {
	u, ok := s.usage[j.req.User]
	if !ok {
		u = &userUsage{asOfNs: j.end.UnixNano()}
		s.usage[j.req.User] = u
	}
	s.decayUser(u, j.end.UnixNano())
	u.value += s.nodeEquivalents(j) * j.end.Sub(j.start).Seconds()
	u.epoch++
}

// priorityAt computes a pending job's priority from scratch through the
// priority policy. Age accrues from eligibility (held dependents only age
// once released). The scheduling pass uses the decomposed fast path
// (job.static + Age + memoised Fair); this reference form and the fast
// path agree exactly: each term is truncated to int64 by the policy
// separately, and int64 addition is associative.
func (s *Simulator) priorityAt(j *job, t time.Time) int64 {
	sizef := float64(j.cores) / float64(s.cfg.System.TotalCores())
	var qosW int64
	if q, ok := s.qosDefs[j.req.QOS]; ok {
		qosW = q.PriorityWeight
	}
	return s.prio.Static(sizef, qosW) +
		s.prio.Age(int64(t.Sub(j.eligible))) +
		s.prio.Fair(s.decayedUsage(j.req.User, t))
}

// fairTerm computes the fair-share contribution for a user at tNs,
// memoised per (timestamp, accrual epoch) so each pass pays one policy
// Fair evaluation (an Exp2 under multifactor) per user rather than one
// per pending job.
func (s *Simulator) fairTerm(u *userUsage, tNs int64) int64 {
	if u.termAtNs == tNs && u.termEpoch == u.epoch {
		return u.term
	}
	u.term = s.prio.Fair(s.decayUser(u, tNs))
	u.termAtNs, u.termEpoch = tNs, u.epoch
	return u.term
}

// reprioritize refreshes pending priorities at time t. With ResortEvery
// unset (the default) every job is recomputed, reproducing the legacy
// per-pass recompute exactly. With a cadence set, only jobs whose inputs
// changed — newly pending or evicted (prioAtNs zero), user usage accrued
// (epoch moved), or age term newly saturated — are recomputed between
// full refreshes, trading bounded priority staleness for O(changed) work.
func (s *Simulator) reprioritize(t time.Time, force bool) {
	tNs := t.UnixNano()
	full := force || s.cfg.ResortEvery == 0 || s.lastReprio.IsZero() ||
		t.Sub(s.lastReprio) >= s.cfg.ResortEvery
	if full {
		s.lastReprio = t
	}
	if full && !force && s.cfg.ResortEvery == 0 {
		// Exact-mode hot loop: the refreshed keys are consumed only by
		// this pass's heap, so skip the per-job bookkeeping writes and
		// stream over the contiguous entry array alone.
		for i := range s.pending {
			e := &s.pending[i]
			e.prio = e.static + s.prio.Age(tNs-e.eligNs) + s.fairTerm(e.usage, tNs)
		}
		return
	}
	ageMax := int64(s.cfg.AgeMax)
	for i := range s.pending {
		e := &s.pending[i]
		j := e.j
		if !full && j.prioAtNs != 0 && j.userEpoch == e.usage.epoch {
			if j.prioSat || tNs-e.eligNs < ageMax {
				continue
			}
		}
		age := tNs - e.eligNs
		e.prio = e.static + s.prio.Age(age) + s.fairTerm(e.usage, tNs)
		j.priority = e.prio
		j.prioAtNs = tNs
		j.userEpoch = e.usage.epoch
		j.prioSat = age >= ageMax
	}
}

// schedule runs the reservation pass, the main priority loop (with urgent
// preemption), and the configured backfill policy's pass at time t.
func (s *Simulator) schedule(t time.Time) {
	if s.npending == 0 {
		return
	}
	if !s.schedDirty {
		// Nothing this timestamp freed capacity or added work, so the
		// pass would start nothing. The legacy pass still stepped each
		// pending user's fair-share decay here; keep that float
		// stepping identical so later terms match bit for bit.
		tNs := t.UnixNano()
		for i := range s.pending {
			s.decayUser(s.pending[i].usage, tNs)
		}
		return
	}
	s.schedDirty = false
	s.mPasses.Inc()
	s.reprioritize(t, false)
	if len(s.resPools) > 0 {
		s.reservationPass(t)
	}
	s.heapifyPending()
	head := s.mainPass(t)
	if head != nil && s.npending > 1 {
		s.bf.Pass(s, head, t)
	}
	s.finishPass(head)
	s.mQueueDepth.Set(int64(s.npending))
	s.mRunning.Set(int64(len(s.running)))
}

// reservationPass starts reservation-tagged jobs that fit their window, in
// priority order over the tagged subset (their relative order in the old
// full sort).
func (s *Simulator) reservationPass(t time.Time) {
	s.resBuf = s.resBuf[:0]
	for i := range s.pending {
		if s.pending[i].j.res != nil {
			s.resBuf = append(s.resBuf, s.pending[i])
		}
	}
	if len(s.resBuf) == 0 {
		return
	}
	sort.Slice(s.resBuf, func(a, b int) bool { return pendBefore(&s.resBuf[a], &s.resBuf[b]) })
	for i := range s.resBuf {
		j := s.resBuf[i].j
		if s.canStartInReservation(j, t) {
			s.pendRemove(j)
			s.startJob(j, t, false)
		}
	}
}

// nextPending yields jobs in scheduling order: the pending heap first,
// then preemption victims requeued during this pass in eviction order
// (they joined the tail of the old sorted slice mid-iteration).
func (s *Simulator) nextPending() *job {
	if len(s.pending) > 0 {
		return s.pendPop()
	}
	if s.appCursor < len(s.appended) {
		j := s.appended[s.appCursor]
		s.appCursor++
		return j
	}
	return nil
}

// mainPass starts jobs in priority order until the head does not fit,
// and returns that blocking head (nil when everything started).
// Reservation-tagged jobs wait for their window without blocking.
func (s *Simulator) mainPass(t time.Time) *job {
	for {
		j := s.nextPending()
		if j == nil {
			return nil
		}
		if j.res != nil {
			s.keep = append(s.keep, j)
			continue
		}
		if j.cores <= s.freeCores && s.sel.Fits(j) {
			s.startJob(j, t, false)
			continue
		}
		// Urgent QoS may evict preemptible work instead of queueing.
		if j.canPreempt && s.tryPreempt(j, t) && s.sel.Fits(j) {
			s.startJob(j, t, false)
			continue
		}
		return j
	}
}

// finishPass returns every examined-but-unstarted job to the pending
// array and resets the pass buffers.
func (s *Simulator) finishPass(head *job) {
	for _, j := range s.keep {
		s.pendAdd(j)
	}
	if head != nil {
		s.pendAdd(head)
	}
	for _, j := range s.appended[s.appCursor:] {
		s.pendAdd(j)
	}
	s.keep = s.keep[:0]
	s.appended = s.appended[:0]
	s.appCursor = 0
}

// canStartInReservation reports whether a tagged job fits its window now.
func (s *Simulator) canStartInReservation(j *job, t time.Time) bool {
	rp := j.res
	if !rp.active || j.cores > rp.free {
		return false
	}
	return !t.Add(j.req.Timelimit).After(rp.def.End)
}

// tryPreempt evicts preemptible running jobs until the urgent job fits.
// Victims are requeued from scratch (youngest first, minimising lost
// work). Returns false — and evicts nothing — when even evicting every
// candidate would not free enough nodes.
func (s *Simulator) tryPreempt(urgent *job, t time.Time) bool {
	s.mPreemptAtt.Inc()
	needed := urgent.cores - s.freeCores
	if needed <= 0 {
		return true
	}
	victims := s.victimBuf[:0]
	for _, j := range s.running {
		if j.res == nil && j.preemptible {
			victims = append(victims, j)
		}
	}
	sort.Slice(victims, func(a, b int) bool {
		va, vb := victims[a], victims[b]
		if !va.start.Equal(vb.start) {
			return va.start.After(vb.start)
		}
		return va.seq < vb.seq
	})
	s.victimBuf = victims
	freed := 0
	cut := 0
	for _, v := range victims {
		if freed >= needed {
			break
		}
		freed += v.cores
		cut++
	}
	if freed < needed {
		return false
	}
	for _, v := range victims[:cut] {
		s.evict(v, t)
	}
	return true
}

// evict requeues a running preemptible job. The victim joins the FIFO
// tail of this pass (it re-enters consideration after every job already
// queued) and the pending array at pass end.
func (s *Simulator) evict(v *job, t time.Time) {
	s.mPreemptEvict.Inc()
	v.gen++ // invalidate the scheduled end event
	s.freeCores += v.cores
	s.sel.Release(v)
	s.runRemove(v)
	ran := t.Sub(v.start)
	v.lost += ran
	v.restarts++
	v.started = false
	v.backfill = false
	v.state = slurm.StatePending
	v.eligible = t
	v.eligNs = t.UnixNano()
	v.reason = "Preempted"
	v.prioAtNs = 0
	v.prioSat = false
	s.appended = append(s.appended, v)
	s.npending++
	s.schedDirty = true
	s.stats.Preemptions++
	s.stats.PreemptedLost += ran
	// The partial run still consumed the machine.
	s.stats.NodeSecondsBusy += s.nodeEquivalents(v) * ran.Seconds()
}

// shadowTime computes when the head job could start if running jobs end
// at their limits, and how many nodes beyond the head's need will be free
// then. Reservation-pool jobs are excluded: their nodes return to the
// reservation, not the general pool. Releases are consumed in limit order
// from a scratch copy of the running heap (a copy of a heap is a heap),
// popping only until the head fits instead of sorting every running job.
func (s *Simulator) shadowTime(head *job, tNs int64) (int64, int) {
	if cap(s.shadowBuf) < len(s.running) {
		s.shadowBuf = make([]*job, len(s.running))
	}
	buf := s.shadowBuf[:len(s.running)]
	copy(buf, s.running)
	free := s.freeCores
	for len(buf) > 0 {
		var j *job
		j, buf = shadowPop(buf)
		if j.res != nil {
			continue
		}
		at := j.limitEndNs
		if at < tNs {
			at = tNs // defensive; a running job's limit cannot precede now
		}
		free += j.cores
		if free >= head.cores {
			return at, free - head.cores
		}
	}
	// Head can never start under current limits (should not happen when
	// requests respect the system size); treat as unbounded shadow.
	return tNs + int64(1000000*time.Hour), int(s.cfg.System.TotalCores())
}

// satAddDuration sums non-negative durations, saturating at the int64
// bound: very large contended traces can accumulate more than ~292 years
// of total wait, and a clamped aggregate beats a silently negative one.
func satAddDuration(a, b time.Duration) time.Duration {
	c := a + b
	if c < a {
		return time.Duration(math.MaxInt64)
	}
	return c
}

// startJob dispatches a job at time t and schedules its end event.
func (s *Simulator) startJob(j *job, t time.Time, backfill bool) {
	j.started = true
	j.backfill = backfill
	if backfill {
		s.mBackfillStarts.Inc()
	}
	j.start = t
	j.waited += t.Sub(j.eligible)
	j.priority = s.priorityAt(j, t)
	j.limitEndNs = t.UnixNano() + int64(j.req.Timelimit)
	s.npending--
	if j.res != nil && j.res.active {
		j.res.free -= j.cores
		s.stats.ReservationStarts++
	} else {
		j.res = nil // window closed between sort and start
		s.freeCores -= j.cores
		s.sel.Place(j)
	}
	s.runAdd(j)

	end, state := s.terminalOutcome(j, t)
	j.end, j.state = end, state
	s.pushEvent(event{t: end, kind: evEnd, j: j, gen: j.gen, seq: s.nextSeq()})
}

// terminalOutcome resolves when and how a started job ends.
func (s *Simulator) terminalOutcome(j *job, start time.Time) (time.Time, slurm.State) {
	r := &j.req
	run := r.TrueRuntime
	state := r.Outcome
	switch r.Outcome {
	case slurm.StateFailed, slurm.StateNodeFail, slurm.StateOutOfMemory:
		run = time.Duration(float64(r.TrueRuntime) * r.FailFrac)
		if run < time.Second {
			run = time.Second
		}
	case slurm.StateCancelled:
		// Resolved against cancelAt below; if the cancel moment never
		// arrives inside the run window the job completes instead.
		state = slurm.StateCompleted
	case slurm.StateTimeout:
		// Enforced by the limit check below.
		state = slurm.StateCompleted
	}
	end := start.Add(run)
	if limitEnd := start.Add(r.Timelimit); end.After(limitEnd) {
		end, state = limitEnd, slurm.StateTimeout
	}
	if !j.cancelAt.IsZero() && j.cancelAt.After(start) && j.cancelAt.Before(end) {
		end, state = j.cancelAt, slurm.StateCancelled
	}
	return end, state
}
