package sched

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

// job is the simulator's view of one submission.
type job struct {
	seq      int64 // submission order, tie-breaker and id basis
	id       slurm.JobID
	req      tracegen.Request
	cores    int // allocation size in cores (the scheduling unit)
	priority int64
	cancelAt time.Time // zero when no planned cancel
	gen      int64     // bumped on preemption to invalidate stale end events

	started  bool
	finished bool
	held     bool // waiting on a dependency
	start    time.Time
	end      time.Time
	eligible time.Time
	state    slurm.State
	backfill bool
	restarts int64
	lost     time.Duration // runtime discarded by preemptions
	reason   string

	depPred    *job   // afterok predecessor
	dependents []*job // jobs held on this one
	res        *resPool
}

// qosOf looks up a job's QoS definition (zero value when undefined).
func (s *Simulator) qosOf(j *job) (q struct {
	canPreempt  bool
	preemptible bool
}) {
	if def, ok := s.cfg.System.QOSByName(j.req.QOS); ok {
		q.canPreempt = def.CanPreempt
		q.preemptible = def.Preemptible
	}
	return q
}

// nodeEquivalents converts a job's core allocation into fractional nodes
// for capacity accounting; whole-node jobs come out at their node count.
func (s *Simulator) nodeEquivalents(j *job) float64 {
	return float64(j.cores) / float64(s.cfg.System.CoresPerNode)
}

// resPool tracks one advance reservation's carved capacity.
type resPool struct {
	def    Reservation
	active bool
	free   int // currently free carved cores
	carved int // cores carved out of the general pool so far
}

// Event kinds. At equal timestamps, cancellations of pending jobs beat
// everything, node releases precede submissions and reservation
// transitions, and the window-start carve runs last so it sees every node
// freed at that instant. The scheduling pass runs after the whole
// timestamp drains.
const (
	evCancel = iota
	evEnd
	evSubmit
	evResEnd
	evResStart
)

type event struct {
	t    time.Time
	kind int
	j    *job
	res  *resPool
	gen  int64
	seq  int64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].t.Equal(h[j].t) {
		return h[i].t.Before(h[j].t)
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// userUsage tracks exponentially decayed node-seconds per user for the
// fair-share factor.
type userUsage struct {
	value float64
	asOf  time.Time
}

// Simulator executes submissions against a cluster model.
type Simulator struct {
	cfg       Config
	freeCores int
	pending   []*job
	running   []*job
	usage     map[string]*userUsage
	events    eventHeap
	seq       int64
	now       time.Time
	stats     RunStats
	resPools  []*resPool
	resByName map[string]*resPool
}

// New builds a simulator; the configuration is validated.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:       cfg,
		freeCores: int(cfg.System.TotalCores()),
		usage:     map[string]*userUsage{},
		resByName: map[string]*resPool{},
	}
	for _, def := range cfg.Reservations {
		rp := &resPool{def: def}
		s.resPools = append(s.resPools, rp)
		s.resByName[def.Name] = rp
	}
	return s, nil
}

// Result is the outcome of a simulation run: job-level accounting records,
// optional step-level records, per-job planned step counts, and aggregate
// statistics.
type Result struct {
	Jobs        []slurm.Record
	Steps       []slurm.Record
	StepsPerJob []int // aligned with Jobs; planned srun steps per job
	Stats       RunStats
}

// Options tune what a run materializes.
type Options struct {
	// EmitSteps materializes step records (batch, extern, and numbered
	// srun steps). Disable for very large runs where only job-level
	// analytics are needed; StepsPerJob is always populated.
	EmitSteps bool
}

// chainKey identifies a dependency chain position.
type chainKey struct {
	chain int64
	pos   int
}

// Run executes the submissions and returns the accounting trace. The
// requests may arrive in any order; they are processed by submit time.
func (s *Simulator) Run(reqs []tracegen.Request, opts Options) (*Result, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("sched: no requests")
	}
	jobs := make([]*job, len(reqs))
	arrayBase := map[int64]int64{} // tracegen array group → base job id
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Submit.Before(reqs[order[b]].Submit)
	})
	const firstID = 100000
	byChain := map[chainKey]*job{}
	for n, idx := range order {
		r := reqs[idx]
		if r.Nodes <= 0 || r.Nodes > s.cfg.System.Nodes {
			return nil, fmt.Errorf("sched: request %d wants %d nodes of %d", idx, r.Nodes, s.cfg.System.Nodes)
		}
		if r.Timelimit <= 0 {
			return nil, fmt.Errorf("sched: request %d has no timelimit", idx)
		}
		cores := r.Nodes * s.cfg.System.CoresPerNode
		if r.Cores > 0 {
			if r.Nodes != 1 {
				return nil, fmt.Errorf("sched: request %d mixes a multi-node allocation with a core count", idx)
			}
			if r.Cores > s.cfg.System.CoresPerNode {
				return nil, fmt.Errorf("sched: request %d wants %d cores of a %d-core node", idx, r.Cores, s.cfg.System.CoresPerNode)
			}
			if s.cfg.EnableNodeSharing {
				cores = r.Cores
			}
			// Without node sharing, a sub-node request occupies the
			// whole node (cores already equals one node's worth).
		}
		j := &job{seq: int64(n), req: r, cores: cores, state: slurm.StatePending, eligible: r.Submit}
		jobID := int64(firstID + n)
		j.id = slurm.NewJobID(jobID)
		if r.ArrayID != 0 {
			if _, ok := arrayBase[r.ArrayID]; !ok {
				arrayBase[r.ArrayID] = jobID
			}
			j.id.Array = int64(r.ArrayIndex)
		}
		if r.CancelAfter > 0 {
			j.cancelAt = r.Submit.Add(r.CancelAfter)
		}
		if r.Reservation != "" {
			rp, ok := s.resByName[r.Reservation]
			if !ok {
				return nil, fmt.Errorf("sched: request %d names unknown reservation %q", idx, r.Reservation)
			}
			if r.Nodes > rp.def.Nodes {
				return nil, fmt.Errorf("sched: request %d exceeds reservation %q capacity", idx, r.Reservation)
			}
			j.res = rp
		}
		if r.Chain != 0 {
			byChain[chainKey{r.Chain, r.ChainPos}] = j
		}
		jobs[n] = j
		heap.Push(&s.events, event{t: r.Submit, kind: evSubmit, j: j, seq: s.nextSeq()})
		if !j.cancelAt.IsZero() {
			heap.Push(&s.events, event{t: j.cancelAt, kind: evCancel, j: j, seq: s.nextSeq()})
		}
	}
	// Wire dependency chains: each position waits on the previous one.
	for key, j := range byChain {
		if key.pos == 0 {
			continue
		}
		pred, ok := byChain[chainKey{key.chain, key.pos - 1}]
		if !ok {
			return nil, fmt.Errorf("sched: chain %d missing position %d", key.chain, key.pos-1)
		}
		j.depPred = pred
		pred.dependents = append(pred.dependents, j)
	}
	for _, rp := range s.resPools {
		heap.Push(&s.events, event{t: rp.def.Start, kind: evResStart, res: rp, seq: s.nextSeq()})
		heap.Push(&s.events, event{t: rp.def.End, kind: evResEnd, res: rp, seq: s.nextSeq()})
	}

	first := jobs[0].req.Submit
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		t := e.t
		s.now = t
		s.handle(e)
		// Drain every event at this instant before scheduling.
		for len(s.events) > 0 && s.events[0].t.Equal(t) {
			s.handle(heap.Pop(&s.events).(event))
		}
		s.schedule(t)
	}

	// Anything still pending at drain time never had resources; that
	// cannot happen with a consistent request stream, but guard anyway.
	var last time.Time
	for _, j := range s.pending {
		j.finished = true
		j.state = slurm.StateCancelled
		j.end = s.now
		s.stats.JobsCancelled++
		s.stats.NeverStarted++
	}
	s.pending = nil
	// Held jobs whose predecessors never resolved are likewise cancelled.
	for _, j := range jobs {
		if !j.finished && j.held {
			j.finished = true
			j.state = slurm.StateCancelled
			j.end = s.now
			j.reason = "DependencyNeverSatisfied"
			s.stats.JobsCancelled++
			s.stats.NeverStarted++
		}
	}

	// The trace span runs from first submission to the last job activity;
	// no-op cancel events beyond it do not count.
	last = first
	for _, j := range jobs {
		if j.end.After(last) {
			last = j.end
		}
	}
	s.stats.NodeSecondsCap = float64(s.cfg.System.Nodes) * last.Sub(first).Seconds()

	return s.buildResult(jobs, arrayBase, opts)
}

func (s *Simulator) nextSeq() int64 { s.seq++; return s.seq }

func (s *Simulator) handle(e event) {
	switch e.kind {
	case evSubmit:
		j := e.j
		if j.finished {
			return // cancelled at the same instant
		}
		if j.depPred != nil && !j.depPred.finished {
			j.held = true
			return
		}
		if j.depPred != nil && j.depPred.state != slurm.StateCompleted {
			s.cancelForDependency(j, e.t)
			return
		}
		s.pending = append(s.pending, j)
	case evCancel:
		j := e.j
		if j.started || j.finished {
			return // started jobs carry the cancel in their end event
		}
		j.finished = true
		j.state = slurm.StateCancelled
		j.end = e.t
		s.stats.JobsCancelled++
		s.stats.NeverStarted++
		if !j.held {
			s.removePending(j)
		}
		// Dependents of a cancelled job never run.
		for _, d := range j.dependents {
			s.cancelForDependency(d, e.t)
		}
	case evEnd:
		j := e.j
		if j.finished || e.gen != j.gen || !j.started {
			return // stale event from before a preemption
		}
		j.finished = true
		s.releaseNodes(j)
		s.removeRunning(j)
		s.accrueUsage(j)
		s.countOutcome(j)
		s.resolveDependents(j, e.t)
	case evResStart:
		rp := e.res
		rp.active = true
		s.refillReservations()
	case evResEnd:
		rp := e.res
		rp.active = false
		s.freeCores += rp.free
		rp.free, rp.carved = 0, 0
		// Pending jobs that targeted the window fall back to the general
		// pool.
		for _, j := range s.pending {
			if j.res == rp {
				j.res = nil
			}
		}
	}
}

// releaseNodes returns a finished job's nodes to its pool.
func (s *Simulator) releaseNodes(j *job) {
	if j.res != nil && j.res.active {
		j.res.free += j.cores
		return
	}
	s.freeCores += j.cores
	s.refillReservations()
}

// refillReservations tops up active reservations from the general pool,
// modelling the drain into a reservation as nodes free up.
func (s *Simulator) refillReservations() {
	for _, rp := range s.resPools {
		target := rp.def.Nodes * s.cfg.System.CoresPerNode
		if !rp.active || rp.carved >= target {
			continue
		}
		take := target - rp.carved
		if take > s.freeCores {
			take = s.freeCores
		}
		if take <= 0 {
			continue
		}
		s.freeCores -= take
		rp.carved += take
		rp.free += take
	}
}

// resolveDependents releases or cancels the jobs held on j.
func (s *Simulator) resolveDependents(j *job, t time.Time) {
	for _, d := range j.dependents {
		if d.finished {
			continue
		}
		if j.state == slurm.StateCompleted {
			if d.held {
				d.held = false
				d.eligible = t
				s.pending = append(s.pending, d)
			}
			continue
		}
		s.cancelForDependency(d, t)
	}
}

// cancelForDependency terminally cancels a job whose upstream failed, and
// cascades to its own dependents.
func (s *Simulator) cancelForDependency(j *job, t time.Time) {
	if j.finished {
		return
	}
	j.finished = true
	j.held = false
	j.state = slurm.StateCancelled
	j.reason = "DependencyNeverSatisfied"
	j.end = t
	s.stats.JobsCancelled++
	s.stats.NeverStarted++
	s.stats.DependencyCancelled++
	for _, d := range j.dependents {
		s.cancelForDependency(d, t)
	}
}

func (s *Simulator) removePending(j *job) {
	for i, p := range s.pending {
		if p == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

func (s *Simulator) removeRunning(j *job) {
	for i, p := range s.running {
		if p == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
}

func (s *Simulator) countOutcome(j *job) {
	elapsed := j.end.Sub(j.start)
	s.stats.NodeSecondsBusy += s.nodeEquivalents(j) * elapsed.Seconds()
	wait := j.start.Sub(j.req.Submit)
	s.stats.TotalWait += wait
	if wait > s.stats.MaxWait {
		s.stats.MaxWait = wait
	}
	switch j.state {
	case slurm.StateCompleted:
		s.stats.JobsCompleted++
	case slurm.StateFailed:
		s.stats.JobsFailed++
	case slurm.StateCancelled:
		s.stats.JobsCancelled++
	case slurm.StateTimeout:
		s.stats.JobsTimeout++
	case slurm.StateNodeFail:
		s.stats.JobsNodeFail++
	case slurm.StateOutOfMemory:
		s.stats.JobsOOM++
	}
	if j.backfill {
		s.stats.Backfilled++
	}
}

// decayedUsage returns the user's usage decayed to time t.
func (s *Simulator) decayedUsage(user string, t time.Time) float64 {
	u, ok := s.usage[user]
	if !ok {
		return 0
	}
	dt := t.Sub(u.asOf)
	if dt <= 0 {
		return u.value
	}
	halves := float64(dt) / float64(s.cfg.FairShareHalfLife)
	u.value *= math.Exp2(-halves)
	u.asOf = t
	return u.value
}

func (s *Simulator) accrueUsage(j *job) {
	u, ok := s.usage[j.req.User]
	if !ok {
		u = &userUsage{asOf: j.end}
		s.usage[j.req.User] = u
	}
	s.decayedUsage(j.req.User, j.end)
	u.value += s.nodeEquivalents(j) * j.end.Sub(j.start).Seconds()
}

// priorityAt computes the multifactor priority for a pending job. Age
// accrues from eligibility (held dependents only age once released).
func (s *Simulator) priorityAt(j *job, t time.Time) int64 {
	cfg := &s.cfg
	age := t.Sub(j.eligible)
	agef := float64(age) / float64(cfg.AgeMax)
	if agef > 1 {
		agef = 1
	}
	if agef < 0 {
		agef = 0
	}
	sizef := float64(j.cores) / float64(cfg.System.TotalCores())
	// Nominal share: 1/64th of the machine over one half-life.
	share := float64(cfg.System.Nodes) * cfg.FairShareHalfLife.Seconds() / 64
	fairf := math.Exp2(-s.decayedUsage(j.req.User, t) / share)
	var qosW int64
	if q, ok := cfg.System.QOSByName(j.req.QOS); ok {
		qosW = q.PriorityWeight
	}
	return cfg.Base +
		int64(float64(cfg.AgeWeight)*agef) +
		int64(float64(cfg.SizeWeight)*sizef) +
		int64(float64(cfg.FairShareWeight)*fairf) +
		qosW
}

// schedule runs the reservation pass, the main priority loop (with urgent
// preemption), and the EASY backfill pass at time t.
func (s *Simulator) schedule(t time.Time) {
	if len(s.pending) == 0 {
		return
	}
	for _, j := range s.pending {
		j.priority = s.priorityAt(j, t)
	}
	sort.SliceStable(s.pending, func(a, b int) bool {
		pa, pb := s.pending[a], s.pending[b]
		if pa.priority != pb.priority {
			return pa.priority > pb.priority
		}
		return pa.seq < pb.seq
	})

	// Reservation pass: tagged jobs draw from their carved pool and never
	// block the general head.
	kept := s.pending[:0]
	for _, j := range s.pending {
		if j.res != nil && s.canStartInReservation(j, t) {
			s.startJob(j, t, false)
			continue
		}
		kept = append(kept, j)
	}
	s.pending = kept

	// Main loop: start in priority order until the head does not fit.
	// Reservation-tagged jobs wait for their window without blocking.
	var head *job
	i := 0
	for i < len(s.pending) {
		j := s.pending[i]
		if j.res != nil {
			i++
			continue
		}
		if j.cores <= s.freeCores {
			s.startJob(j, t, false)
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			continue
		}
		// Urgent QoS may evict preemptible work instead of queueing.
		if s.qosOf(j).canPreempt && s.tryPreempt(j, t) {
			s.startJob(j, t, false)
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			continue
		}
		head = j
		break
	}
	if head == nil || !s.cfg.EnableBackfill || len(s.pending) <= 1 {
		return
	}

	// EASY backfill: find the shadow time at which the head can start,
	// assuming running jobs end at their walltime limits, then start
	// lower-priority jobs that cannot delay it.
	shadow, extra := s.shadowTime(head, t)
	free := s.freeCores
	depth := s.cfg.BackfillDepth
	if depth == 0 {
		depth = len(s.pending)
	}
	kept = s.pending[:0]
	considered := 0
	for _, j := range s.pending {
		if j == head || j.res != nil || j.cores > free || considered >= depth {
			kept = append(kept, j)
			if j != head && j.res == nil {
				considered++
			}
			continue
		}
		considered++
		endsBy := t.Add(j.req.Timelimit)
		fitsExtra := j.cores <= extra
		if !endsBy.After(shadow) || fitsExtra {
			s.startJob(j, t, true)
			free -= j.cores
			if endsBy.After(shadow) && fitsExtra {
				extra -= j.cores
			}
			continue
		}
		kept = append(kept, j)
	}
	s.pending = kept
}

// canStartInReservation reports whether a tagged job fits its window now.
func (s *Simulator) canStartInReservation(j *job, t time.Time) bool {
	rp := j.res
	if !rp.active || j.cores > rp.free {
		return false
	}
	return !t.Add(j.req.Timelimit).After(rp.def.End)
}

// tryPreempt evicts preemptible running jobs until the urgent job fits.
// Victims are requeued from scratch (youngest first, minimising lost
// work). Returns false — and evicts nothing — when even evicting every
// candidate would not free enough nodes.
func (s *Simulator) tryPreempt(urgent *job, t time.Time) bool {
	needed := urgent.cores - s.freeCores
	if needed <= 0 {
		return true
	}
	var victims []*job
	for _, j := range s.running {
		if j.res == nil && s.qosOf(j).preemptible {
			victims = append(victims, j)
		}
	}
	sort.Slice(victims, func(a, b int) bool { return victims[a].start.After(victims[b].start) })
	freed := 0
	cut := 0
	for _, v := range victims {
		if freed >= needed {
			break
		}
		freed += v.cores
		cut++
	}
	if freed < needed {
		return false
	}
	for _, v := range victims[:cut] {
		s.evict(v, t)
	}
	return true
}

// evict requeues a running preemptible job.
func (s *Simulator) evict(v *job, t time.Time) {
	v.gen++ // invalidate the scheduled end event
	s.freeCores += v.cores
	s.removeRunning(v)
	ran := t.Sub(v.start)
	v.lost += ran
	v.restarts++
	v.started = false
	v.backfill = false
	v.state = slurm.StatePending
	v.eligible = t
	v.reason = "Preempted"
	s.pending = append(s.pending, v)
	s.stats.Preemptions++
	s.stats.PreemptedLost += ran
	// The partial run still consumed the machine.
	s.stats.NodeSecondsBusy += s.nodeEquivalents(v) * ran.Seconds()
}

// shadowTime computes when the head job could start if running jobs end
// at their limits, and how many nodes beyond the head's need will be free
// then. Reservation-pool jobs are excluded: their nodes return to the
// reservation, not the general pool.
func (s *Simulator) shadowTime(head *job, t time.Time) (time.Time, int) {
	type rel struct {
		at    time.Time
		nodes int
	}
	rels := make([]rel, 0, len(s.running))
	for _, j := range s.running {
		if j.res != nil {
			continue
		}
		limitEnd := j.start.Add(j.req.Timelimit)
		if limitEnd.Before(t) {
			limitEnd = t
		}
		rels = append(rels, rel{at: limitEnd, nodes: j.cores})
	}
	sort.Slice(rels, func(a, b int) bool { return rels[a].at.Before(rels[b].at) })
	free := s.freeCores
	for _, r := range rels {
		free += r.nodes
		if free >= head.cores {
			return r.at, free - head.cores
		}
	}
	// Head can never start under current limits (should not happen when
	// requests respect the system size); treat as unbounded shadow.
	return t.Add(1000000 * time.Hour), int(s.cfg.System.TotalCores())
}

// startJob dispatches a job at time t and schedules its end event.
func (s *Simulator) startJob(j *job, t time.Time, backfill bool) {
	j.started = true
	j.backfill = backfill
	j.start = t
	j.priority = s.priorityAt(j, t)
	if j.res != nil && j.res.active {
		j.res.free -= j.cores
		s.stats.ReservationStarts++
	} else {
		j.res = nil // window closed between sort and start
		s.freeCores -= j.cores
	}
	s.running = append(s.running, j)

	end, state := s.terminalOutcome(j, t)
	j.end, j.state = end, state
	heap.Push(&s.events, event{t: end, kind: evEnd, j: j, gen: j.gen, seq: s.nextSeq()})
}

// terminalOutcome resolves when and how a started job ends.
func (s *Simulator) terminalOutcome(j *job, start time.Time) (time.Time, slurm.State) {
	r := &j.req
	run := r.TrueRuntime
	state := r.Outcome
	switch r.Outcome {
	case slurm.StateFailed, slurm.StateNodeFail, slurm.StateOutOfMemory:
		run = time.Duration(float64(r.TrueRuntime) * r.FailFrac)
		if run < time.Second {
			run = time.Second
		}
	case slurm.StateCancelled:
		// Resolved against cancelAt below; if the cancel moment never
		// arrives inside the run window the job completes instead.
		state = slurm.StateCompleted
	case slurm.StateTimeout:
		// Enforced by the limit check below.
		state = slurm.StateCompleted
	}
	end := start.Add(run)
	if limitEnd := start.Add(r.Timelimit); end.After(limitEnd) {
		end, state = limitEnd, slurm.StateTimeout
	}
	if !j.cancelAt.IsZero() && j.cancelAt.After(start) && j.cancelAt.Before(end) {
		end, state = j.cancelAt, slurm.StateCancelled
	}
	return end, state
}
