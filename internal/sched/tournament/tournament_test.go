package tournament

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/obs"
	"slurmsight/internal/tracegen"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func testSystem() *cluster.System {
	s := &cluster.System{
		Name:         "tiny",
		Nodes:        10,
		CoresPerNode: 8,
		MemPerNode:   64 << 30,
		Partitions: []cluster.Partition{
			{Name: "batch", Nodes: 10, MaxWall: 24 * time.Hour, Default: true},
		},
		QOSLevels: []cluster.QOS{{Name: "normal"}},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

func testTrace(t *testing.T, sys *cluster.System) []tracegen.Request {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	day := func(h float64) float64 { return h * 3600 }
	mk := func(name string, w float64) tracegen.Class {
		return tracegen.Class{
			Name:         name,
			Weight:       w,
			Nodes:        tracegen.Clamped{D: tracegen.LogNormalMedian(1+rng.Float64()*4, 1.8), Lo: 1, Hi: 10},
			Runtime:      tracegen.Clamped{D: tracegen.LogNormalMedian(day(0.3), 2.0), Lo: 60, Hi: day(12)},
			Overestimate: tracegen.Clamped{D: tracegen.LogNormalMedian(2, 1.5), Lo: 1, Hi: 8},
			Steps:        tracegen.Clamped{D: tracegen.LogNormalMedian(2, 1.5), Lo: 1, Hi: 5},
		}
	}
	p := tracegen.Profile{
		Name:       "tournament-test",
		System:     sys,
		JobsPerDay: 70,
		Users:      12,
		Classes:    []tracegen.Class{mk("small", 0.6), mk("large", 0.4)},
	}
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: t0, End: t0.AddDate(0, 0, 3),
	}}, 31)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// stripElapsed zeroes the wall-clock fields, the only permitted
// nondeterminism in the scorecard.
func stripElapsed(sc *Scorecard) {
	sc.ElapsedMS = 0
	for i := range sc.Policies {
		sc.Policies[i].ElapsedMS = 0
	}
}

func TestRunDeterministicAcrossRuns(t *testing.T) {
	sys := testSystem()
	reqs := testTrace(t, sys)
	specs := []Spec{
		{Name: "default"},
		{Name: "fifo", Preset: "fifo"},
		{Name: "conservative", Backfill: "conservative"},
	}
	run := func() []byte {
		sc, err := Run(Input{Specs: specs, Reqs: reqs, System: sys, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		stripElapsed(sc)
		b, err := sc.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("scorecards differ across identical runs:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

func TestScorecardShape(t *testing.T) {
	sys := testSystem()
	reqs := testTrace(t, sys)
	sc, err := Run(Input{Specs: DefaultSpecs(), Reqs: reqs, System: sys, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Schema != Schema {
		t.Errorf("schema %q, want %q", sc.Schema, Schema)
	}
	if sc.Trace.Requests != len(reqs) || sc.Trace.Seed != 31 || sc.Trace.System != "tiny" {
		t.Errorf("trace info %+v", sc.Trace)
	}
	if len(sc.Policies) != len(DefaultSpecs()) {
		t.Fatalf("%d policy rows, want %d", len(sc.Policies), len(DefaultSpecs()))
	}
	byName := map[string]*PolicyScore{}
	for i := range sc.Policies {
		ps := &sc.Policies[i]
		byName[ps.Name] = ps
		if ps.Started == 0 {
			t.Errorf("policy %q started no jobs", ps.Name)
		}
		if ps.Utilization <= 0 || ps.Utilization > 1 {
			t.Errorf("policy %q utilization %v out of (0,1]", ps.Name, ps.Utilization)
		}
		if len(ps.Classes) == 0 {
			t.Errorf("policy %q has no class breakdown", ps.Name)
		}
		for _, cs := range ps.Classes {
			if cs.Class != "small" && cs.Class != "large" {
				t.Errorf("policy %q unexpected class %q", ps.Name, cs.Class)
			}
			if cs.WaitP90Sec < cs.WaitP50Sec {
				t.Errorf("policy %q class %q p90 %v < p50 %v",
					ps.Name, cs.Class, cs.WaitP90Sec, cs.WaitP50Sec)
			}
		}
	}
	// The contrasts must actually behave differently: no-backfill starts
	// nothing out of order, EASY backfills plenty.
	if nb := byName["no-backfill"]; nb.Backfilled != 0 {
		t.Errorf("no-backfill backfilled %d jobs", nb.Backfilled)
	}
	if def := byName["default"]; def.Backfilled == 0 {
		t.Error("default policy backfilled nothing on a contended trace")
	}
	// The scorecard is valid JSON with the schema marker first-class.
	b, err := sc.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatal(err)
	}
	if round["schema"] != Schema {
		t.Errorf("encoded schema %v", round["schema"])
	}
}

func TestRunPolicyLabelledMetricsAndSpans(t *testing.T) {
	sys := testSystem()
	reqs := testTrace(t, sys)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	specs := []Spec{{Name: "default"}, {Name: "fifo", Preset: "fifo"}}
	if _, err := Run(Input{
		Specs: specs, Reqs: reqs, System: sys, Seed: 31,
		Metrics: reg, Tracer: tr,
	}); err != nil {
		t.Fatal(err)
	}

	var text strings.Builder
	reg.WriteText(&text)
	for _, want := range []string{
		`sched_events_processed_total{policy="default"}`,
		`sched_events_processed_total{policy="fifo"}`,
		`sched_backfill_starts_total{policy="default"}`,
		"schedbench_tournaments_total",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("metrics missing %s\n%s", want, text.String())
		}
	}

	spans := tr.Snapshot()
	var policySpans int
	for _, sp := range spans {
		if sp.Name == "tournament.policy" {
			policySpans++
			if p := sp.Attr("policy"); p != "default" && p != "fifo" {
				t.Errorf("policy span attr %q", p)
			}
		}
	}
	if policySpans != 2 {
		t.Errorf("%d policy spans, want 2", policySpans)
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	sys := testSystem()
	reqs := testTrace(t, sys)
	cases := []struct {
		name  string
		specs []Spec
		match string
	}{
		{"empty", nil, "no specs"},
		{"unnamed", []Spec{{}}, "needs a name"},
		{"duplicate", []Spec{{Name: "a"}, {Name: "a"}}, "duplicate"},
		{"bad preset", []Spec{{Name: "a", Preset: "nope"}}, "preset"},
		{"bad backfill", []Spec{{Name: "a", Backfill: "psychic"}}, "unknown policy"},
		{"negative weight", []Spec{{Name: "a", Weights: &Weights{Age: ptr(int64(-1))}}}, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(Input{Specs: tc.specs, Reqs: reqs, System: sys, Seed: 1})
			if err == nil {
				t.Fatal("Run accepted bad specs")
			}
			if ok, _ := regexp.MatchString(tc.match, err.Error()); !ok {
				t.Errorf("error %q does not match %q", err, tc.match)
			}
		})
	}
}

func ptr[T any](v T) *T { return &v }
