// Package tournament races N scheduling-policy configurations over the
// same workload trace and emits a deterministic comparative scorecard —
// the quantitative artifact the paper's workflow feeds back to operators
// (and, in this repo, to the LLM evolution loop) when asking whether a
// policy change would improve the metrics users feel: queue wait,
// slowdown, backfill share, utilization.
//
// Each policy runs in its own goroutine against a shared immutable
// request slice (the simulator never mutates its input; it orders via an
// index permutation), so an N-policy tournament costs one trace
// generation and N concurrent simulations. Everything in the scorecard
// except the wall-clock elapsed_ms fields is a pure function of the
// trace and the policy set: byte-identical across runs, which CI asserts.
package tournament

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/obs"
	"slurmsight/internal/sched"
	"slurmsight/internal/tracegen"
)

// Schema identifies the scorecard JSON layout. Consumers (CI assertions,
// the evolution loop, EXPERIMENTS.md) match on it; bump it when a field
// changes meaning, not when fields are added.
const Schema = "schedbench/v1"

// Spec names one policy configuration in a serialisable form: a weight
// preset plus overrides. The zero Spec (plus a Name) is the production
// default composition.
type Spec struct {
	Name string `json:"name"`
	// Preset names a sched.WeightPreset applied before the overrides.
	Preset string `json:"preset,omitempty"`
	// Priority / Backfill / NodeSelect override the policy names
	// resolved by sched.PriorityByName / BackfillByName / SelectorByName.
	Priority   string `json:"priority,omitempty"`
	Backfill   string `json:"backfill,omitempty"`
	NodeSelect string `json:"node_select,omitempty"`
	// BackfillDepth overrides the pass depth when positive.
	BackfillDepth int `json:"backfill_depth,omitempty"`
	// NodeSharing enables sub-node packing.
	NodeSharing bool `json:"node_sharing,omitempty"`
	// Weights overrides individual multifactor weights after the preset;
	// nil fields inherit.
	Weights *Weights `json:"weights,omitempty"`
}

// Weights are optional per-factor overrides; nil pointers inherit the
// preset (or default) value. Pointer fields keep "unset" distinct from
// zero so the evolution loop can pin a single weight to 0.
type Weights struct {
	Base      *int64 `json:"base,omitempty"`
	Age       *int64 `json:"age,omitempty"`
	Size      *int64 `json:"size,omitempty"`
	FairShare *int64 `json:"fair_share,omitempty"`
}

// Clone returns a deep copy: mutating the clone's weights never touches
// the original. The evolution loop relies on this to keep per-round audit
// snapshots independent of the live spec it keeps mutating.
func (sp Spec) Clone() Spec {
	if sp.Weights != nil {
		w := *sp.Weights
		dup := func(p *int64) *int64 {
			if p == nil {
				return nil
			}
			v := *p
			return &v
		}
		w.Base, w.Age, w.Size, w.FairShare = dup(w.Base), dup(w.Age), dup(w.Size), dup(w.FairShare)
		sp.Weights = &w
	}
	return sp
}

// Config materialises the spec against a system: default config, then
// preset, then overrides, then validation.
func (sp *Spec) Config(sys *cluster.System, seed int64) (sched.Config, error) {
	cfg := sched.DefaultConfig(sys)
	cfg.Seed = seed
	if sp.Preset != "" {
		if err := sched.ApplyPreset(&cfg, sp.Preset); err != nil {
			return cfg, fmt.Errorf("spec %q: %w", sp.Name, err)
		}
	}
	if sp.Priority != "" {
		cfg.Priority = sp.Priority
	}
	if sp.Backfill != "" {
		cfg.Backfill = sp.Backfill
	}
	if sp.NodeSelect != "" {
		cfg.NodeSelect = sp.NodeSelect
	}
	if sp.BackfillDepth > 0 {
		cfg.BackfillDepth = sp.BackfillDepth
	}
	cfg.EnableNodeSharing = sp.NodeSharing
	if w := sp.Weights; w != nil {
		if w.Base != nil {
			cfg.Base = *w.Base
		}
		if w.Age != nil {
			cfg.AgeWeight = *w.Age
		}
		if w.Size != nil {
			cfg.SizeWeight = *w.Size
		}
		if w.FairShare != nil {
			cfg.FairShareWeight = *w.FairShare
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("spec %q: %w", sp.Name, err)
	}
	return cfg, nil
}

// Scorecard is the stable-schema comparison artifact.
type Scorecard struct {
	Schema   string        `json:"schema"`
	Trace    TraceInfo     `json:"trace"`
	Policies []PolicyScore `json:"policies"`
	// ElapsedMS is the tournament wall-clock; the one non-deterministic
	// field at this level (CI strips elapsed_ms before diffing runs).
	ElapsedMS int64 `json:"elapsed_ms"`
}

// TraceInfo pins the workload the policies were compared on.
type TraceInfo struct {
	System   string `json:"system"`
	Requests int    `json:"requests"`
	Seed     int64  `json:"seed"`
}

// PolicyScore is one policy's outcome on the shared trace.
type PolicyScore struct {
	Name string `json:"name"`
	Spec Spec   `json:"spec"`

	Completed   int     `json:"completed"`
	Failed      int     `json:"failed"`
	Cancelled   int     `json:"cancelled"`
	Timeout     int     `json:"timeout"`
	Started     int     `json:"started"`
	Backfilled  int     `json:"backfilled"`
	Preemptions int     `json:"preemptions"`
	Utilization float64 `json:"utilization"`

	MeanWaitSec  float64 `json:"mean_wait_sec"`
	MaxWaitSec   float64 `json:"max_wait_sec"`
	BackfillFrac float64 `json:"backfill_frac"`
	// MeanSlowdown is the mean bounded slowdown (wait+run)/max(run, 10s)
	// across started jobs — the classic scheduling-quality metric that
	// punishes long waits on short jobs.
	MeanSlowdown float64 `json:"mean_slowdown"`

	// Classes breaks the same metrics out per tracegen job class
	// (Record.Comment), sorted by class name.
	Classes []ClassScore `json:"classes"`

	// ElapsedMS is this policy's simulation wall-clock (excluded from
	// determinism comparisons).
	ElapsedMS int64 `json:"elapsed_ms"`
}

// ClassScore is one job class under one policy.
type ClassScore struct {
	Class        string  `json:"class"`
	Jobs         int     `json:"jobs"`
	Started      int     `json:"started"`
	WaitP50Sec   float64 `json:"wait_p50_sec"`
	WaitP90Sec   float64 `json:"wait_p90_sec"`
	WaitMeanSec  float64 `json:"wait_mean_sec"`
	MeanSlowdown float64 `json:"mean_slowdown"`
	BackfillFrac float64 `json:"backfill_frac"`
}

// Input configures a tournament run.
type Input struct {
	Specs  []Spec
	Reqs   []tracegen.Request // shared read-only across policies
	System *cluster.System
	Seed   int64

	// Metrics, when non-nil, receives each policy's simulator counters
	// re-published under policy-labelled names (obs.Label), plus the
	// tournament's own instruments. Tracer, when non-nil, records one
	// span per policy run.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
}

// Run races every spec concurrently over the shared trace and returns
// the scorecard. The policy order in the scorecard follows the spec
// order; all metric content is deterministic for a given (trace, specs).
func Run(in Input) (*Scorecard, error) {
	if len(in.Specs) == 0 {
		return nil, fmt.Errorf("tournament: no specs")
	}
	if len(in.Reqs) == 0 {
		return nil, fmt.Errorf("tournament: no requests")
	}
	seen := map[string]bool{}
	for i := range in.Specs {
		name := in.Specs[i].Name
		if name == "" {
			return nil, fmt.Errorf("tournament: spec %d needs a name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("tournament: duplicate spec name %q", name)
		}
		seen[name] = true
		// Validate every spec up front so one bad config fails fast
		// instead of racing N−1 healthy policies first.
		if _, err := in.Specs[i].Config(in.System, in.Seed); err != nil {
			return nil, err
		}
	}

	t0 := time.Now()
	root := in.Tracer.Start("tournament.run")
	root.SetAttrInt("policies", int64(len(in.Specs)))
	root.SetAttrInt("requests", int64(len(in.Reqs)))
	defer root.End()

	scores := make([]PolicyScore, len(in.Specs))
	errs := make([]error, len(in.Specs))
	var wg sync.WaitGroup
	for i := range in.Specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scores[i], errs[i] = runOne(&in, &in.Specs[i], root)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("tournament: policy %q: %w", in.Specs[i].Name, err)
		}
	}

	in.Metrics.Counter("schedbench_tournaments_total").Inc()
	return &Scorecard{
		Schema: Schema,
		Trace: TraceInfo{
			System:   in.System.Name,
			Requests: len(in.Reqs),
			Seed:     in.Seed,
		},
		Policies:  scores,
		ElapsedMS: time.Since(t0).Milliseconds(),
	}, nil
}

// runOne simulates a single policy and scores its result.
func runOne(in *Input, sp *Spec, parent *obs.Span) (PolicyScore, error) {
	span := parent.Child("tournament.policy")
	span.SetAttr("policy", sp.Name)
	defer span.End()

	cfg, err := sp.Config(in.System, in.Seed)
	if err != nil {
		return PolicyScore{}, err
	}
	// Each policy gets a private registry; the shared one receives the
	// values after the run under policy-labelled names, so concurrent
	// policies never contend and labels stay unambiguous.
	var priv *obs.Registry
	if in.Metrics != nil {
		priv = obs.NewRegistry()
	}
	cfg.Metrics = priv

	sim, err := sched.New(cfg)
	if err != nil {
		return PolicyScore{}, err
	}
	t0 := time.Now()
	res, err := sim.Run(in.Reqs, sched.Options{})
	if err != nil {
		return PolicyScore{}, err
	}
	elapsed := time.Since(t0)
	span.SetAttrInt("jobs", int64(len(res.Jobs)))
	span.SetAttrInt("completed", int64(res.Stats.JobsCompleted))

	if priv != nil {
		republish(in.Metrics, priv, sp.Name)
	}

	ps := score(res, sp)
	ps.ElapsedMS = elapsed.Milliseconds()
	return ps, nil
}

// republish copies a policy's private counters and gauges into the
// shared registry under policy-labelled names. Snapshot flattens both to
// int64; the _total naming convention recovers the instrument kind.
func republish(dst, src *obs.Registry, policy string) {
	for name, v := range src.Snapshot() {
		val, ok := v.(int64)
		if !ok {
			continue
		}
		labelled := obs.Label(name, "policy", policy)
		if strings.HasSuffix(name, "_total") {
			dst.Counter(labelled).Add(val)
		} else {
			dst.Gauge(labelled).Set(val)
		}
	}
}

// score reduces a simulation result to the scorecard row. All float math
// is a deterministic function of the records.
func score(res *sched.Result, sp *Spec) PolicyScore {
	st := res.Stats
	ps := PolicyScore{
		Name:        sp.Name,
		Spec:        *sp,
		Completed:   st.JobsCompleted,
		Failed:      st.JobsFailed,
		Cancelled:   st.JobsCancelled,
		Timeout:     st.JobsTimeout,
		Backfilled:  st.Backfilled,
		Preemptions: st.Preemptions,
		Utilization: st.Utilization(),
		MaxWaitSec:  st.MaxWait.Seconds(),
	}

	type agg struct {
		jobs, started, backfilled int
		waits                     []float64
		slowSum                   float64
	}
	classes := map[string]*agg{}
	var total agg
	for i := range res.Jobs {
		r := &res.Jobs[i]
		class := r.Comment
		if class == "" {
			class = "unclassified"
		}
		a := classes[class]
		if a == nil {
			a = &agg{}
			classes[class] = a
		}
		a.jobs++
		total.jobs++
		wait, ok := r.WaitTime()
		if !ok {
			continue // never started
		}
		a.started++
		total.started++
		if r.Backfilled() {
			a.backfilled++
			total.backfilled++
		}
		w := wait.Seconds()
		a.waits = append(a.waits, w)
		total.waits = append(total.waits, w)
		sd := boundedSlowdown(wait, r.Elapsed)
		a.slowSum += sd
		total.slowSum += sd
	}

	ps.Started = total.started
	if total.started > 0 {
		ps.MeanWaitSec = mean(total.waits)
		ps.MeanSlowdown = total.slowSum / float64(total.started)
		ps.BackfillFrac = float64(total.backfilled) / float64(total.started)
	}

	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := classes[name]
		cs := ClassScore{Class: name, Jobs: a.jobs, Started: a.started}
		if a.started > 0 {
			sort.Float64s(a.waits)
			cs.WaitP50Sec = percentile(a.waits, 0.50)
			cs.WaitP90Sec = percentile(a.waits, 0.90)
			cs.WaitMeanSec = mean(a.waits)
			cs.MeanSlowdown = a.slowSum / float64(a.started)
			cs.BackfillFrac = float64(a.backfilled) / float64(a.started)
		}
		ps.Classes = append(ps.Classes, cs)
	}
	return ps
}

// boundedSlowdown is (wait + run) / max(run, 10s): the standard bounded
// slowdown with a 10-second floor so near-zero-runtime jobs don't blow
// the metric up.
func boundedSlowdown(wait, run time.Duration) float64 {
	const floor = 10 * time.Second
	denom := run
	if denom < floor {
		denom = floor
	}
	return (wait + run).Seconds() / denom.Seconds()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// percentile reads the q-th percentile from an ascending-sorted slice
// using the nearest-rank method (deterministic, no interpolation).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// EncodeJSON renders the scorecard with stable key order and trailing
// newline — the bytes CI diffs between runs (minus elapsed_ms).
func (sc *Scorecard) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DefaultSpecs is the standard tournament field: the production default,
// the named weight presets, the conservative-backfill and no-backfill
// contrasts, and the FIFO baseline.
func DefaultSpecs() []Spec {
	return []Spec{
		{Name: "default"},
		{Name: "capability", Preset: "capability"},
		{Name: "aging", Preset: "aging"},
		{Name: "fairshare", Preset: "fairshare"},
		{Name: "fifo", Preset: "fifo"},
		{Name: "conservative", Backfill: "conservative"},
		{Name: "no-backfill", Backfill: "none"},
	}
}
