package sched

import (
	"fmt"

	"slurmsight/internal/cluster"
)

// NodeSelector adds a placement constraint on top of the core-pool
// capacity check: the pool says how many cores are free, the selector says
// whether they are arranged so the job can actually be placed. The default
// "pool" selector has no state and accepts anything the pool accepts —
// the pre-refactor fragmentation-free model, pinned bit-exact by the
// golden tests. The tracking selectors ("firstfit", "bestfit") maintain
// per-node occupancy so sub-node jobs fragment nodes and whole-node jobs
// need fully-free nodes — the fidelity axis the tournament can race.
//
// Reservation-pool placements bypass the selector (carved capacity is not
// node-resolved), so tracking selectors compose with advance reservations
// only approximately; traces without reservations are modelled exactly.
type NodeSelector interface {
	Name() string
	// Fits reports whether the job can be placed now. The pool capacity
	// check (j.cores <= freeCores) is separate and always applies.
	Fits(j *job) bool
	// Place records the placement chosen for j; it must only be called
	// after Fits reported true at the same instant.
	Place(j *job)
	// Release returns j's placement. Safe when j was never placed.
	Release(j *job)
	// Reset binds the selector to a system and clears all occupancy.
	Reset(sys *cluster.System)
}

// SelectorByName resolves a node selector: "pool" (the default),
// "firstfit", or "bestfit".
func SelectorByName(name string) (NodeSelector, error) {
	switch name {
	case "", "pool":
		return poolSelector{}, nil
	case "firstfit":
		return &trackingSelector{}, nil
	case "bestfit":
		return &trackingSelector{bestfit: true}, nil
	}
	return nil, fmt.Errorf("sched: unknown node selector %q", name)
}

// SelectorNames lists the resolvable node selectors.
func SelectorNames() []string { return []string{"pool", "firstfit", "bestfit"} }

// poolSelector is the stateless scalar-pool model: any core arrangement
// works, so placement never fails beyond the pool capacity check.
type poolSelector struct{}

func (poolSelector) Name() string          { return "pool" }
func (poolSelector) Fits(*job) bool        { return true }
func (poolSelector) Place(*job)            {}
func (poolSelector) Release(*job)          {}
func (poolSelector) Reset(*cluster.System) {}

// trackingSelector models per-node occupancy. Whole-node jobs need their
// node count in fully-free nodes; sub-node jobs (node sharing) pack onto a
// single node with enough free cores — firstfit takes the lowest-index
// node with room, bestfit the fullest node that still fits (minimising
// fragmentation). Free whole nodes are counted incrementally so Fits is
// O(1) for whole-node jobs and O(nodes) only for sub-node placement.
type trackingSelector struct {
	bestfit      bool
	coresPerNode int
	used         []int32 // cores in use per node
	freeNodes    int     // nodes with used == 0
}

func (t *trackingSelector) Name() string {
	if t.bestfit {
		return "bestfit"
	}
	return "firstfit"
}

func (t *trackingSelector) Reset(sys *cluster.System) {
	t.coresPerNode = sys.CoresPerNode
	t.used = make([]int32, sys.Nodes)
	t.freeNodes = sys.Nodes
}

// subNode reports whether j is a sub-node (shared) allocation.
func (t *trackingSelector) subNode(j *job) bool { return j.cores < t.coresPerNode }

func (t *trackingSelector) Fits(j *job) bool {
	if !t.subNode(j) {
		return j.cores/t.coresPerNode <= t.freeNodes
	}
	return t.pick(j.cores) >= 0
}

// pick chooses the node for a sub-node allocation of c cores, or -1.
func (t *trackingSelector) pick(c int) int {
	need := int32(c)
	cap := int32(t.coresPerNode)
	best := -1
	var bestUsed int32 = -1
	for i, u := range t.used {
		if u+need > cap {
			continue
		}
		if !t.bestfit {
			return i
		}
		if u > bestUsed {
			best, bestUsed = i, u
		}
	}
	return best
}

func (t *trackingSelector) Place(j *job) {
	if t.subNode(j) {
		n := t.pick(j.cores)
		if n < 0 {
			return // Fits contract violated; degrade to pool semantics
		}
		if t.used[n] == 0 {
			t.freeNodes--
		}
		t.used[n] += int32(j.cores)
		j.nodeIDs = append(j.nodeIDs[:0], int32(n))
		return
	}
	need := j.cores / t.coresPerNode
	j.nodeIDs = j.nodeIDs[:0]
	for i := range t.used {
		if need == 0 {
			break
		}
		if t.used[i] == 0 {
			t.used[i] = int32(t.coresPerNode)
			t.freeNodes--
			j.nodeIDs = append(j.nodeIDs, int32(i))
			need--
		}
	}
}

func (t *trackingSelector) Release(j *job) {
	if len(j.nodeIDs) == 0 {
		return
	}
	if t.subNode(j) {
		n := j.nodeIDs[0]
		t.used[n] -= int32(j.cores)
		if t.used[n] == 0 {
			t.freeNodes++
		}
	} else {
		for _, n := range j.nodeIDs {
			t.used[n] = 0
			t.freeNodes++
		}
	}
	j.nodeIDs = j.nodeIDs[:0]
}
