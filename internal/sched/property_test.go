package sched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

// tinyProfile builds a randomized workload profile for the 10-node test
// system, seeded so every property-check iteration sees a fresh shape.
func tinyProfile(rng *rand.Rand, sys *cluster.System) tracegen.Profile {
	day := func(h float64) float64 { return h * 3600 }
	mk := func(name string, qos string) tracegen.Class {
		return tracegen.Class{
			Name:         name,
			Weight:       0.2 + rng.Float64(),
			Nodes:        tracegen.Clamped{D: tracegen.LogNormalMedian(1+rng.Float64()*4, 1.8), Lo: 1, Hi: 10},
			Runtime:      tracegen.Clamped{D: tracegen.LogNormalMedian(day(0.2+rng.Float64()), 2.0), Lo: 30, Hi: day(20)},
			Overestimate: tracegen.Clamped{D: tracegen.LogNormalMedian(1.5+rng.Float64()*2, 1.5), Lo: 1, Hi: 10},
			Steps:        tracegen.Clamped{D: tracegen.LogNormalMedian(3, 2), Lo: 1, Hi: 20},
			FailRate:     rng.Float64() * 0.2,
			CancelRate:   rng.Float64() * 0.15,
			TimeoutRate:  rng.Float64() * 0.1,
			ChainProb:    rng.Float64() * 0.3,
			ChainLen:     tracegen.Clamped{D: tracegen.LogNormalMedian(3, 1.4), Lo: 2, Hi: 6},
			QOS:          qos,
		}
	}
	return tracegen.Profile{
		Name:       "tiny-random",
		System:     sys,
		Users:      3 + rng.Intn(10),
		UserSkew:   0.5 + rng.Float64(),
		FailSpread: 1 + rng.Float64()*2,
		JobsPerDay: 10 + rng.Float64()*30,
		Classes: []tracegen.Class{
			mk("a", "normal"),
			mk("b", "debug"),
			mk("urgent", "urgent"),
			mk("soak", "preemptible"),
		},
	}
}

// runRandomWorkload simulates one random workload and returns its result.
func runRandomWorkload(t *testing.T, seed int64, reservations bool) (*Result, *cluster.System) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sys := preemptSystem()
	p := tinyProfile(rng, sys)
	if rng.Intn(2) == 0 {
		// Half the random workloads mix in a sub-node class.
		p.Classes[0].SubNodeCores = tracegen.Clamped{D: tracegen.LogNormalMedian(3, 1.8), Lo: 1, Hi: 8}
	}
	start := t0
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: start, End: start.AddDate(0, 0, 3),
	}}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		return nil, sys
	}
	cfg := DefaultConfig(sys)
	cfg.Seed = seed
	cfg.EnableNodeSharing = seed%2 == 0
	if reservations {
		cfg.Reservations = []Reservation{{
			Name:  "window",
			Nodes: 1 + rng.Intn(4),
			Start: start.Add(time.Duration(rng.Intn(24)) * time.Hour),
			End:   start.Add(time.Duration(24+rng.Intn(24)) * time.Hour),
		}}
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, sys
}

// checkNoOverallocation replays allocation edges in cores (NCPUs, which
// carries the true allocation for both whole-node and shared jobs) and
// asserts the busy count never exceeds capacity at any instant.
func checkNoOverallocation(t *testing.T, jobs []slurm.Record, capacityCores int) {
	t.Helper()
	type edge struct {
		at    time.Time
		nodes int64
	}
	var edges []edge
	for i := range jobs {
		j := &jobs[i]
		if j.Start.IsZero() {
			continue
		}
		edges = append(edges, edge{j.Start, +j.NCPUs}, edge{j.End, -j.NCPUs})
	}
	sort.SliceStable(edges, func(a, b int) bool {
		if !edges[a].at.Equal(edges[b].at) {
			return edges[a].at.Before(edges[b].at)
		}
		return edges[a].nodes < edges[b].nodes // releases before grabs at ties
	})
	var busy int64
	for _, e := range edges {
		busy += e.nodes
		if busy > int64(capacityCores) {
			t.Fatalf("over-allocation: %d cores busy of %d", busy, capacityCores)
		}
	}
	if busy != 0 {
		t.Fatalf("allocation imbalance at end: %d", busy)
	}
}

// TestPropertySchedulerInvariants runs randomized workloads through the
// simulator and checks the invariants every Slurm trace satisfies.
func TestPropertySchedulerInvariants(t *testing.T) {
	f := func(seed uint16) bool {
		res, sys := runRandomWorkload(t, int64(seed)+1, seed%3 == 0)
		if res == nil {
			return true
		}
		checkNoOverallocation(t, res.Jobs, int(sys.TotalCores()))
		for i := range res.Jobs {
			j := &res.Jobs[i]
			if !j.State.Terminal() {
				t.Fatalf("seed %d: job %v non-terminal %v", seed, j.ID, j.State)
			}
			if j.Start.IsZero() {
				if j.State != slurm.StateCancelled {
					t.Fatalf("seed %d: never-started job %v in %v", seed, j.ID, j.State)
				}
				continue
			}
			if j.Start.Before(j.Submit) {
				t.Fatalf("seed %d: job %v started before submit", seed, j.ID)
			}
			if j.Eligible.Before(j.Submit) || j.Start.Before(j.Eligible) {
				t.Fatalf("seed %d: job %v eligibility out of order", seed, j.ID)
			}
			if j.Elapsed > j.Timelimit {
				t.Fatalf("seed %d: job %v ran past its limit", seed, j.ID)
			}
			if j.End.Sub(j.Start) != j.Elapsed {
				t.Fatalf("seed %d: job %v elapsed inconsistent", seed, j.ID)
			}
			if j.State == slurm.StateTimeout && j.Elapsed != j.Timelimit {
				t.Fatalf("seed %d: timeout %v at %v of %v", seed, j.ID, j.Elapsed, j.Timelimit)
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyChainOrdering asserts that every dependent job starts only
// after its predecessor completed, across random workloads.
func TestPropertyChainOrdering(t *testing.T) {
	f := func(seed uint16) bool {
		res, _ := runRandomWorkload(t, int64(seed)+1000, false)
		if res == nil {
			return true
		}
		byID := map[string]*slurm.Record{}
		for i := range res.Jobs {
			byID[res.Jobs[i].ID.String()] = &res.Jobs[i]
		}
		for i := range res.Jobs {
			j := &res.Jobs[i]
			if j.Dependency == "" || j.Start.IsZero() {
				continue
			}
			predID := j.Dependency[len("afterok:"):]
			pred, ok := byID[predID]
			if !ok {
				t.Fatalf("seed %d: dependency %q dangles", seed, j.Dependency)
			}
			if pred.State != slurm.StateCompleted {
				t.Fatalf("seed %d: job %v ran after non-completed predecessor (%v)",
					seed, j.ID, pred.State)
			}
			if j.Start.Before(pred.End) {
				t.Fatalf("seed %d: job %v started before predecessor end", seed, j.ID)
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyAccountingBalance: every request yields exactly one job
// record; counts in RunStats add up.
func TestPropertyAccountingBalance(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed) + 2000))
		sys := preemptSystem()
		p := tinyProfile(rng, sys)
		reqs, err := tracegen.Generate([]tracegen.Phase{{
			Profile: p, Start: t0, End: t0.AddDate(0, 0, 2),
		}}, int64(seed))
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) == 0 {
			return true
		}
		sim, err := New(DefaultConfig(sys))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(reqs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Jobs) != len(reqs) {
			t.Fatalf("seed %d: %d records for %d requests", seed, len(res.Jobs), len(reqs))
		}
		st := res.Stats
		terminal := st.JobsCompleted + st.JobsFailed + st.JobsCancelled +
			st.JobsTimeout + st.JobsNodeFail + st.JobsOOM
		if terminal != len(reqs) {
			t.Fatalf("seed %d: stats count %d of %d jobs", seed, terminal, len(reqs))
		}
		if st.NeverStarted > st.JobsCancelled {
			t.Fatalf("seed %d: NeverStarted %d > cancelled %d", seed, st.NeverStarted, st.JobsCancelled)
		}
		if u := st.Utilization(); u < 0 || u > 1.0001 {
			t.Fatalf("seed %d: utilization %v", seed, u)
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
