package sched

import (
	"fmt"
	"math"
	"time"
)

// The policy layer decomposes the scheduling decisions that used to be
// welded into the Simulator — priority computation, backfill strategy, and
// node selection — into three small interfaces. The default composition
// (multifactor priority, EASY backfill, pool selection) reproduces the
// pre-refactor simulator bit for bit; the golden determinism tests pin it.
//
// Policies are resolved by name so a composition is serialisable: the
// tournament harness and the LLM evolution loop both describe a policy as
// JSON and rebuild it with PriorityByName / BackfillByName /
// SelectorByName.

// PriorityPolicy computes a pending job's priority as three independently
// truncated int64 terms. The split mirrors the simulator's hot path: the
// static term is cached at submission, the age term is recomputed per
// pass, and the fair term is memoised per (user, pass). The job's
// priority is the plain int64 sum of the three, so any implementation
// whose terms match the legacy formulas reproduces legacy priorities
// exactly (int64 addition is associative).
type PriorityPolicy interface {
	Name() string
	// Static is the submission-time-invariant component: base priority
	// plus the size and QoS contributions. sizeFrac is the job's core
	// allocation over the system total.
	Static(sizeFrac float64, qosWeight int64) int64
	// Age is the age factor's contribution from an age in nanoseconds,
	// saturating at the policy's age horizon.
	Age(ageNs int64) int64
	// Fair is the fair-share contribution given the user's decayed usage
	// in node-seconds.
	Fair(decayedUsage float64) int64
}

// MultifactorPriority is the Slurm-style multifactor plugin: the weighted
// sum of base, age, size, fair-share, and QoS factors the simulator has
// always computed. Build one with newMultifactorPriority so the derived
// constants match the configuration.
type MultifactorPriority struct {
	Base            int64
	AgeWeight       int64
	AgeMax          time.Duration
	SizeWeight      int64
	FairShareWeight int64

	// share is the fair-share nominal usage scale (system size times the
	// decay half-life, scaled); ageFull the saturated age term. Both are
	// derived in the constructor with the exact float conversions the
	// pre-refactor simulator used.
	share   float64
	ageFull int64
}

// newMultifactorPriority derives the multifactor policy from a validated
// configuration.
func newMultifactorPriority(cfg *Config) *MultifactorPriority {
	return &MultifactorPriority{
		Base:            cfg.Base,
		AgeWeight:       cfg.AgeWeight,
		AgeMax:          cfg.AgeMax,
		SizeWeight:      cfg.SizeWeight,
		FairShareWeight: cfg.FairShareWeight,
		share:           float64(cfg.System.Nodes) * cfg.FairShareHalfLife.Seconds() / 64,
		ageFull:         int64(float64(cfg.AgeWeight)),
	}
}

func (p *MultifactorPriority) Name() string { return "multifactor" }

// Static computes base + size + QoS, truncating the size term exactly as
// the legacy submission path did.
func (p *MultifactorPriority) Static(sizeFrac float64, qosWeight int64) int64 {
	return p.Base + int64(float64(p.SizeWeight)*sizeFrac) + qosWeight
}

// Age saturates at AgeMax; between 0 and saturation the term is the
// weighted linear ramp.
func (p *MultifactorPriority) Age(ageNs int64) int64 {
	if ageNs <= 0 {
		return 0
	}
	if ageNs >= int64(p.AgeMax) {
		return p.ageFull
	}
	return int64(float64(p.AgeWeight) * (float64(ageNs) / float64(p.AgeMax)))
}

// Fair maps decayed usage through the exponential fair-share curve
// 2^(−usage/share).
func (p *MultifactorPriority) Fair(decayedUsage float64) int64 {
	return int64(float64(p.FairShareWeight) * math.Exp2(-decayedUsage/p.share))
}

// FIFOPriority orders jobs purely by submission: every term is zero, so
// the queue's deterministic tie-break (submission sequence ascending)
// becomes the whole order. It is the classic first-come-first-served
// baseline the multifactor policy is measured against.
type FIFOPriority struct{}

func (FIFOPriority) Name() string                { return "fifo" }
func (FIFOPriority) Static(float64, int64) int64 { return 0 }
func (FIFOPriority) Age(int64) int64             { return 0 }
func (FIFOPriority) Fair(float64) int64          { return 0 }

// PriorityByName resolves a priority policy for a validated config:
// "multifactor" (or empty, the default) and "fifo".
func PriorityByName(name string, cfg *Config) (PriorityPolicy, error) {
	switch name {
	case "", "multifactor":
		return newMultifactorPriority(cfg), nil
	case "fifo":
		return FIFOPriority{}, nil
	}
	return nil, fmt.Errorf("sched: unknown priority policy %q", name)
}

// PriorityNames lists the resolvable priority policies.
func PriorityNames() []string { return []string{"multifactor", "fifo"} }
