package sched

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"testing"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

// The golden determinism tests pin the simulator's full observable output
// — every encoded job and step record, per-job step counts, and the
// complete RunStats — for fixed-seed workloads, proving the scheduler
// hot-path rework (indexed pending queue, heap-backed shadow computation,
// O(1) set maintenance, dirty-flag pass skipping) is behaviour-preserving
// bit for bit. The constants were generated from the pre-rework
// implementation with two tie-breaks made canonical first: the backfill
// shadow computation and preemption victim selection previously ordered
// equal-key jobs by unstable-sort internals over slice layout, and now
// order them by job sequence. Both the patched pre-rework code and the
// reworked code reproduce these digests exactly. Any intentional semantic
// change must update the constants and say why in the commit.
//
// The hashes cover linux/amd64 (the CI platform); the only float math
// involved (fair-share exp2, node-second accounting) is IEEE-exact and
// Go's math.Exp2 is portable code, so other 64-bit platforms are expected
// to agree.

// goldenDigest hashes every encoded record, the per-job planned step
// counts, and the full stats block.
func goldenDigest(t *testing.T, res *Result) (jobs, steps, stats uint64) {
	t.Helper()
	fields := slurm.SelectedNames()
	hash := func(recs []slurm.Record, perJob []int) uint64 {
		h := fnv.New64a()
		for i := range recs {
			line, err := slurm.EncodeRecord(&recs[i], fields)
			if err != nil {
				t.Fatal(err)
			}
			io.WriteString(h, line)
			io.WriteString(h, "\n")
			if perJob != nil {
				fmt.Fprintf(h, "steps=%d\n", perJob[i])
			}
		}
		return h.Sum64()
	}
	// Every RunStats field, listed explicitly so a new field breaks the
	// build here and forces a golden refresh; floats are hashed by bit
	// pattern to rule out formatting rounding.
	st := res.Stats
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%x|%x|%d|%d|%d|%d",
		st.JobsCompleted, st.JobsFailed, st.JobsCancelled, st.JobsTimeout,
		st.JobsNodeFail, st.JobsOOM, st.Backfilled, st.NeverStarted,
		int64(st.TotalWait), int64(st.MaxWait),
		math.Float64bits(st.NodeSecondsBusy), math.Float64bits(st.NodeSecondsCap),
		st.Preemptions, int64(st.PreemptedLost), st.DependencyCancelled,
		st.ReservationStarts)
	return hash(res.Jobs, res.StepsPerJob), hash(res.Steps, nil), h.Sum64()
}

type goldenWant struct {
	jobs, steps, stats  uint64
	completed, cancel   int
	backfilled, preempt int
	totalWait           time.Duration
}

func checkGolden(t *testing.T, res *Result, want goldenWant) {
	t.Helper()
	jobs, steps, stats := goldenDigest(t, res)
	if jobs != want.jobs || steps != want.steps || stats != want.stats {
		t.Errorf("golden digests drifted:\n got jobs=%#x steps=%#x stats=%#x\nwant jobs=%#x steps=%#x stats=%#x\nstats: %+v",
			jobs, steps, stats, want.jobs, want.steps, want.stats, res.Stats)
	}
	// Human-readable anchors so a drift is debuggable without replaying
	// hashes.
	st := res.Stats
	if st.JobsCompleted != want.completed || st.JobsCancelled != want.cancel ||
		st.Backfilled != want.backfilled || st.Preemptions != want.preempt ||
		st.TotalWait != want.totalWait {
		t.Errorf("golden stats drifted: completed=%d cancelled=%d backfilled=%d preemptions=%d totalWait=%v\nfull: %+v",
			st.JobsCompleted, st.JobsCancelled, st.Backfilled, st.Preemptions, st.TotalWait, st)
	}
}

// TestGoldenFrontierMixed replays a contended Frontier workload that
// exercises chains, arrays, urgent preemption, and an advance reservation
// window, with step records materialized.
func TestGoldenFrontierMixed(t *testing.T) {
	p := tracegen.FrontierProfile()
	p.JobsPerDay, p.Users = 120, 60
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: t0, End: t0.AddDate(0, 0, 6),
	}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Tag a deterministic slice of jobs at the reservation. Some fit the
	// window and dispatch inside it; the rest pend past the window close
	// and retarget the general pool (the evResEnd fallback path).
	for i := range reqs {
		if i%23 == 0 && reqs[i].Nodes <= 256 {
			reqs[i].Reservation = "beamline-a"
		}
	}
	cfg := DefaultConfig(cluster.Frontier())
	cfg.Seed = 7
	cfg.Reservations = []Reservation{{
		Name: "beamline-a", Nodes: 256,
		Start: t0.AddDate(0, 0, 2), End: t0.AddDate(0, 0, 3),
	}}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(reqs, Options{EmitSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, res, goldenWant{
		jobs:       0x95f9a9bc5ac99c65,
		steps:      0x73ba29fdc73c7778,
		stats:      0xc34bb4ea86fd0031,
		completed:  1474,
		cancel:     202,
		backfilled: 80,
		preempt:    1,
		totalWait:  765*time.Hour + 4*time.Minute + 59*time.Second + 820186889,
	})
}

// TestGoldenTinyPreemptSharing replays a randomized mixed workload on the
// 10-node preemption-enabled system with node sharing on: the regime where
// eviction/requeue interleavings and sub-node packing stress the pending
// and running set maintenance.
func TestGoldenTinyPreemptSharing(t *testing.T) {
	sys := preemptSystem()
	rng := rand.New(rand.NewSource(99))
	p := tinyProfile(rng, sys)
	p.Classes[0].SubNodeCores = tracegen.Clamped{D: tracegen.LogNormalMedian(3, 1.8), Lo: 1, Hi: 8}
	p.JobsPerDay = 80 // overload the 10-node system so evictions and requeues pile up
	reqs, err := tracegen.Generate([]tracegen.Phase{{
		Profile: p, Start: t0, End: t0.AddDate(0, 0, 4),
	}}, 12345)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(sys)
	cfg.Seed = 12345
	cfg.EnableNodeSharing = true
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(reqs, Options{EmitSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, res, goldenWant{
		jobs:       0x2b542f119855341a,
		steps:      0x9c06d57b0491d9d4,
		stats:      0x585ffdaf8e679b22,
		completed:  268,
		cancel:     52,
		backfilled: 180,
		preempt:    15,
		totalWait:  902*time.Hour + 7*time.Minute + 55*time.Second + 407466574,
	})
}
