package sched

// Hot-path containers for the simulator core. Three sets dominate the
// per-event cost profile:
//
//   - s.pending is a position-tracked array (j.pendIdx) of compact
//     pendEntry values giving O(1) swap-removal between passes; each
//     scheduling pass heapifies it in place into a max-heap on
//     (priority desc, seq asc) and pops only the jobs it actually
//     examines. Because seq is unique the key is a total order, so
//     popping reproduces the legacy stable sort's order exactly without
//     ever sorting the whole queue. The entries carry every
//     priority-recompute input inline (eligibility, static term, usage
//     accumulator), so the per-pass refresh and the heap comparisons
//     stream over one contiguous array instead of chasing job pointers
//     across the arena — the difference between a memory-bound and a
//     compute-bound pass on deep queues.
//   - s.running is maintained as a min-heap keyed by walltime-limit end,
//     so the backfill shadow computation consumes releases in limit order
//     from a scratch copy instead of re-sorting every running job on each
//     pass.
//   - s.events is a binary heap with concrete push/pop (no container/heap
//     interface boxing, which allocated on every event).
//
// All heap keys are int64 Unix nanoseconds or plain int64s: time.Time
// comparisons (three-word loads, wall/mono branches) are too expensive at
// billions of comparisons per run, and the ns difference of two wall-clock
// Times is bit-identical to Time.Sub for the simulated epochs.

// pendEntry is one pending job's slot in the queue: the heap key plus the
// inputs reprioritize needs, snapshotted at insertion (all are invariant
// while the job is in the container — eligibility only changes when a job
// re-enters after a dependency release or an eviction).
type pendEntry struct {
	prio   int64      // heap key: current priority
	seq    int64      // heap tie-break: submission order
	eligNs int64      // eligible time, Unix ns (age-term input)
	static int64      // base + size + QoS priority component
	usage  *userUsage // the job's user's fair-share accumulator
	j      *job
}

// pendBefore orders the pending queue: priority descending, submission
// sequence ascending as the tie-break.
func pendBefore(a, b *pendEntry) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.seq < b.seq
}

// pendAdd appends a job to the pending array. No heap order is maintained
// between passes; heapifyPending restores it at the start of each pass.
// The carried priority only matters in cadence mode, where a skipped job
// must keep the value from its last recompute.
func (s *Simulator) pendAdd(j *job) {
	j.pendIdx = len(s.pending)
	s.pending = append(s.pending, pendEntry{
		prio: j.priority, seq: j.seq, eligNs: j.eligNs, static: j.static,
		usage: j.usage, j: j,
	})
}

// pendRemove swap-removes a pending job by its tracked index in O(1).
func (s *Simulator) pendRemove(j *job) {
	i := j.pendIdx
	last := len(s.pending) - 1
	s.pending[i] = s.pending[last]
	s.pending[i].j.pendIdx = i
	s.pending[last] = pendEntry{}
	s.pending = s.pending[:last]
	j.pendIdx = -1
}

// heapifyPending establishes the max-heap property over the pending array.
func (s *Simulator) heapifyPending() {
	for i := len(s.pending)/2 - 1; i >= 0; i-- {
		s.pendSiftDown(i)
	}
}

func (s *Simulator) pendSiftDown(i int) {
	h := s.pending
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && pendBefore(&h[r], &h[l]) {
			best = r
		}
		if !pendBefore(&h[best], &h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		h[i].j.pendIdx, h[best].j.pendIdx = i, best
		i = best
	}
}

// pendPop removes and returns the highest-priority pending job; the array
// must satisfy the heap property.
func (s *Simulator) pendPop() *job {
	h := s.pending
	last := len(h) - 1
	top := h[0].j
	h[0] = h[last]
	h[0].j.pendIdx = 0
	h[last] = pendEntry{}
	s.pending = h[:last]
	if last > 0 {
		s.pendSiftDown(0)
	}
	top.pendIdx = -1
	return top
}

// runBefore orders the running min-heap: walltime-limit end ascending,
// sequence ascending as the deterministic tie-break.
func runBefore(a, b *job) bool {
	if a.limitEndNs != b.limitEndNs {
		return a.limitEndNs < b.limitEndNs
	}
	return a.seq < b.seq
}

func (s *Simulator) runAdd(j *job) {
	h := s.running
	i := len(h)
	j.runIdx = i
	h = append(h, j)
	s.running = h
	for i > 0 {
		p := (i - 1) / 2
		if !runBefore(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		h[i].runIdx, h[p].runIdx = i, p
		i = p
	}
}

// runRemove deletes a job from the running heap via its tracked index.
func (s *Simulator) runRemove(j *job) {
	h := s.running
	i := j.runIdx
	last := len(h) - 1
	h[i] = h[last]
	h[i].runIdx = i
	h[last] = nil
	s.running = h[:last]
	if i < last {
		s.runSiftDown(i)
		s.runSiftUp(i)
	}
	j.runIdx = -1
}

func (s *Simulator) runSiftUp(i int) {
	h := s.running
	for i > 0 {
		p := (i - 1) / 2
		if !runBefore(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		h[i].runIdx, h[p].runIdx = i, p
		i = p
	}
}

func (s *Simulator) runSiftDown(i int) {
	h := s.running
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && runBefore(h[r], h[l]) {
			best = r
		}
		if !runBefore(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		h[i].runIdx, h[best].runIdx = i, best
		i = best
	}
}

// shadowPop pops the earliest-limit job from a scratch copy of the running
// heap without touching the jobs' tracked indices, so shadowTime can
// consume releases in order while s.running stays intact.
func shadowPop(h []*job) (*job, []*job) {
	last := len(h) - 1
	top := h[0]
	h[0] = h[last]
	h[last] = nil
	h = h[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		best := l
		if r := l + 1; r < last && runBefore(h[r], h[l]) {
			best = r
		}
		if !runBefore(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top, h
}

// eventBefore orders the event queue: time, then kind (cancellations of
// pending jobs beat node releases beat submissions beat reservation
// transitions), then insertion sequence.
func eventBefore(a, b *event) bool {
	if !a.t.Equal(b.t) {
		return a.t.Before(b.t)
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

func (s *Simulator) pushEvent(e event) {
	s.events = append(s.events, e)
	h := s.events
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventBefore(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (s *Simulator) popEvent() event {
	h := s.events
	last := len(h) - 1
	top := h[0]
	h[0] = h[last]
	h[last] = event{}
	h = h[:last]
	s.events = h
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		best := l
		if r := l + 1; r < last && eventBefore(&h[r], &h[l]) {
			best = r
		}
		if !eventBefore(&h[best], &h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}
