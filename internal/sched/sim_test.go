package sched

import (
	"testing"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/slurm"
	"slurmsight/internal/tracegen"
)

var t0 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// tinySystem returns a 10-node single-partition machine for hand-built
// scheduling scenarios.
func tinySystem() *cluster.System {
	s := &cluster.System{
		Name:         "tiny",
		Nodes:        10,
		CoresPerNode: 8,
		MemPerNode:   64 << 30,
		Partitions: []cluster.Partition{
			{Name: "batch", Nodes: 10, MaxWall: 24 * time.Hour, Default: true},
		},
		QOSLevels: []cluster.QOS{
			{Name: "normal"},
			{Name: "debug", PriorityWeight: 500_000},
		},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

func req(user string, submit time.Time, nodes int, limit, runtime time.Duration) tracegen.Request {
	return tracegen.Request{
		User: user, Account: "prj001", Class: "test", JobName: "job",
		Partition: "batch", QOS: "normal",
		Submit: submit, Nodes: nodes, Timelimit: limit, TrueRuntime: runtime,
		Steps: 2, Outcome: slurm.StateCompleted,
	}
}

func run(t *testing.T, sys *cluster.System, reqs []tracegen.Request, mutate func(*Config)) *Result {
	t.Helper()
	cfg := DefaultConfig(sys)
	if mutate != nil {
		mutate(&cfg)
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(reqs, Options{EmitSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func findJob(res *Result, user string) *slurm.Record {
	for i := range res.Jobs {
		if res.Jobs[i].User == user {
			return &res.Jobs[i]
		}
	}
	return nil
}

func TestSingleJobRunsImmediately(t *testing.T) {
	res := run(t, tinySystem(), []tracegen.Request{
		req("alice", t0, 4, 2*time.Hour, time.Hour),
	}, nil)
	j := &res.Jobs[0]
	if !j.Start.Equal(t0) {
		t.Errorf("Start = %v, want %v", j.Start, t0)
	}
	if j.State != slurm.StateCompleted {
		t.Errorf("State = %v", j.State)
	}
	if j.Elapsed != time.Hour {
		t.Errorf("Elapsed = %v", j.Elapsed)
	}
	if !j.End.Equal(t0.Add(time.Hour)) {
		t.Errorf("End = %v", j.End)
	}
	if j.NCPUs != 4*8 || j.NNodes != 4 {
		t.Errorf("allocation: %d nodes, %d cpus", j.NNodes, j.NCPUs)
	}
	if j.Backfilled() {
		t.Error("uncontended job should not be backfilled")
	}
	if res.Stats.JobsCompleted != 1 {
		t.Errorf("Stats = %+v", res.Stats)
	}
}

func TestFIFOBlockingAndBackfill(t *testing.T) {
	// A takes 8 of 10 nodes for 1h; B (head) needs all 10; C is short and
	// small enough to backfill into the 2 free nodes without delaying B.
	reqs := []tracegen.Request{
		req("a", t0, 8, time.Hour, time.Hour),
		req("b", t0.Add(time.Second), 10, time.Hour, 30*time.Minute),
		req("c", t0.Add(2*time.Second), 2, 30*time.Minute, 20*time.Minute),
	}
	res := run(t, tinySystem(), reqs, nil)
	a, b, c := findJob(res, "a"), findJob(res, "b"), findJob(res, "c")
	if c.Start.IsZero() || !c.Start.Equal(t0.Add(2*time.Second)) {
		t.Errorf("c should backfill immediately, started %v", c.Start)
	}
	if !c.Backfilled() {
		t.Error("c should carry SchedBackfill")
	}
	if b.Backfilled() {
		t.Error("b is the blocked head, not a backfill")
	}
	if !b.Start.Equal(a.End) {
		t.Errorf("head start %v, want at A's end %v", b.Start, a.End)
	}
	if res.Stats.Backfilled != 1 {
		t.Errorf("Stats.Backfilled = %d", res.Stats.Backfilled)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	// C's limit (3h) would overrun the head's shadow time (1h) and it
	// needs nodes the head will use, so it must wait.
	reqs := []tracegen.Request{
		req("a", t0, 8, time.Hour, time.Hour),
		req("b", t0.Add(time.Second), 10, time.Hour, 30*time.Minute),
		req("c", t0.Add(2*time.Second), 2, 3*time.Hour, 10*time.Minute),
	}
	res := run(t, tinySystem(), reqs, nil)
	b, c := findJob(res, "b"), findJob(res, "c")
	if c.Start.Before(b.Start) {
		t.Errorf("c started %v before head %v despite overrunning the shadow", c.Start, b.Start)
	}
}

func TestBackfillExtraNodes(t *testing.T) {
	// A uses 6 nodes for 1h; head B needs 8. At A's end 10 free, extra =
	// 10-8 = 2. C wants 2 nodes for 10h: it fits in the extra nodes and
	// may run long without delaying B.
	reqs := []tracegen.Request{
		req("a", t0, 6, time.Hour, time.Hour),
		req("b", t0.Add(time.Second), 8, time.Hour, 30*time.Minute),
		req("c", t0.Add(2*time.Second), 2, 10*time.Hour, 9*time.Hour),
	}
	res := run(t, tinySystem(), reqs, nil)
	b, c := findJob(res, "b"), findJob(res, "c")
	if !c.Start.Equal(t0.Add(2 * time.Second)) {
		t.Errorf("c should start immediately in the extra nodes, got %v", c.Start)
	}
	if !c.Backfilled() {
		t.Error("c should be a backfill start")
	}
	if !b.Start.Equal(t0.Add(time.Hour)) {
		t.Errorf("head delayed to %v", b.Start)
	}
}

func TestBackfillDisabledAblation(t *testing.T) {
	reqs := []tracegen.Request{
		req("a", t0, 8, time.Hour, time.Hour),
		req("b", t0.Add(time.Second), 10, time.Hour, 30*time.Minute),
		req("c", t0.Add(2*time.Second), 1, 10*time.Minute, 5*time.Minute),
	}
	res := run(t, tinySystem(), reqs, func(c *Config) { c.EnableBackfill = false })
	c := findJob(res, "c")
	if c.Start.Before(t0.Add(time.Hour)) {
		t.Errorf("with backfill off, c must wait for the head; started %v", c.Start)
	}
	if res.Stats.Backfilled != 0 {
		t.Errorf("Backfilled = %d with backfill disabled", res.Stats.Backfilled)
	}
}

func TestTimeoutEnforced(t *testing.T) {
	r := req("alice", t0, 2, time.Hour, 3*time.Hour)
	r.Outcome = slurm.StateTimeout
	res := run(t, tinySystem(), []tracegen.Request{r}, nil)
	j := &res.Jobs[0]
	if j.State != slurm.StateTimeout {
		t.Errorf("State = %v, want TIMEOUT", j.State)
	}
	if j.Elapsed != time.Hour {
		t.Errorf("Elapsed = %v, want the limit", j.Elapsed)
	}
	if res.Stats.JobsTimeout != 1 {
		t.Errorf("Stats = %+v", res.Stats)
	}
}

func TestCancelWhilePending(t *testing.T) {
	blocker := req("a", t0, 10, 2*time.Hour, 2*time.Hour)
	victim := req("b", t0.Add(time.Second), 10, time.Hour, time.Hour)
	victim.Outcome = slurm.StateCancelled
	victim.CancelAfter = 10 * time.Minute
	res := run(t, tinySystem(), []tracegen.Request{blocker, victim}, nil)
	j := findJob(res, "b")
	if j.State != slurm.StateCancelled {
		t.Errorf("State = %v", j.State)
	}
	if !j.Start.IsZero() {
		t.Errorf("cancelled-pending job has Start %v", j.Start)
	}
	if !j.End.Equal(t0.Add(time.Second + 10*time.Minute)) {
		t.Errorf("End = %v", j.End)
	}
	if _, ok := j.WaitTime(); ok {
		t.Error("never-started job must not report a wait")
	}
	if res.Stats.NeverStarted != 1 {
		t.Errorf("NeverStarted = %d", res.Stats.NeverStarted)
	}
}

func TestCancelWhileRunning(t *testing.T) {
	r := req("alice", t0, 2, 2*time.Hour, 2*time.Hour)
	r.Outcome = slurm.StateCancelled
	r.CancelAfter = 30 * time.Minute
	res := run(t, tinySystem(), []tracegen.Request{r}, nil)
	j := &res.Jobs[0]
	if j.State != slurm.StateCancelled {
		t.Errorf("State = %v", j.State)
	}
	if j.Elapsed != 30*time.Minute {
		t.Errorf("Elapsed = %v", j.Elapsed)
	}
}

func TestCancelAfterCompletionCompletes(t *testing.T) {
	r := req("alice", t0, 2, 2*time.Hour, 10*time.Minute)
	r.Outcome = slurm.StateCancelled
	r.CancelAfter = 5 * time.Hour // cancel arrives after natural end
	res := run(t, tinySystem(), []tracegen.Request{r}, nil)
	if st := res.Jobs[0].State; st != slurm.StateCompleted {
		t.Errorf("State = %v, want COMPLETED", st)
	}
}

func TestFailedJobDiesEarly(t *testing.T) {
	r := req("alice", t0, 2, 2*time.Hour, time.Hour)
	r.Outcome = slurm.StateFailed
	r.FailFrac = 0.5
	res := run(t, tinySystem(), []tracegen.Request{r}, nil)
	j := &res.Jobs[0]
	if j.State != slurm.StateFailed {
		t.Errorf("State = %v", j.State)
	}
	if j.Elapsed != 30*time.Minute {
		t.Errorf("Elapsed = %v, want half the true runtime", j.Elapsed)
	}
	if j.ExitCode == 0 {
		t.Error("failed job should carry a nonzero exit code")
	}
}

func TestDebugQOSJumpsQueue(t *testing.T) {
	// Machine busy; two jobs queue at the same instant. The debug-QOS job
	// must start first despite arriving second.
	blocker := req("x", t0, 10, time.Hour, time.Hour)
	normal := req("a", t0.Add(time.Second), 10, time.Hour, 10*time.Minute)
	debug := req("b", t0.Add(2*time.Second), 10, time.Hour, 10*time.Minute)
	debug.QOS = "debug"
	res := run(t, tinySystem(), []tracegen.Request{blocker, normal, debug}, nil)
	a, b := findJob(res, "a"), findJob(res, "b")
	if !b.Start.Before(a.Start) {
		t.Errorf("debug job started %v, normal %v; want debug first", b.Start, a.Start)
	}
	if b.Priority <= a.Priority {
		t.Errorf("debug priority %d ≤ normal %d", b.Priority, a.Priority)
	}
}

func TestFairShareDecaysPriority(t *testing.T) {
	cfg := DefaultConfig(tinySystem())
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heavy := &job{req: req("heavy", t0, 2, time.Hour, time.Hour), cores: 2 * 8}
	light := &job{req: req("light", t0, 2, time.Hour, time.Hour), cores: 2 * 8}
	// Accrue a large usage history for heavy.
	hj := &job{req: req("heavy", t0, 10, time.Hour, time.Hour), cores: 10 * 8}
	hj.start = t0.Add(-2 * time.Hour)
	hj.end = t0
	// Several machine-hours of history.
	for i := 0; i < 50; i++ {
		sim.accrueUsage(hj)
	}
	ph := sim.priorityAt(heavy, t0)
	pl := sim.priorityAt(light, t0)
	if ph >= pl {
		t.Errorf("heavy user priority %d ≥ light %d", ph, pl)
	}
	// And the penalty decays: far in the future they converge.
	later := t0.Add(20 * 7 * 24 * time.Hour)
	heavy.req.Submit = later
	light.req.Submit = later
	ph2 := sim.priorityAt(heavy, later)
	pl2 := sim.priorityAt(light, later)
	if pl2-ph2 >= pl-ph {
		t.Errorf("fair-share penalty did not decay: %d vs %d", pl2-ph2, pl-ph)
	}
}

func TestStepsStructure(t *testing.T) {
	r := req("alice", t0, 4, 2*time.Hour, time.Hour)
	r.Steps = 5
	res := run(t, tinySystem(), []tracegen.Request{r}, nil)
	if len(res.Steps) != 7 { // batch + extern + 5 numbered
		t.Fatalf("steps = %d, want 7", len(res.Steps))
	}
	if res.StepsPerJob[0] != 7 {
		t.Errorf("StepsPerJob = %d", res.StepsPerJob[0])
	}
	job := &res.Jobs[0]
	var batch, extern int
	var prevEnd time.Time
	for i := range res.Steps {
		st := &res.Steps[i]
		if st.ID.Base() != job.ID {
			t.Errorf("step %v does not belong to job %v", st.ID, job.ID)
		}
		if st.Start.Before(job.Start) || st.End.After(job.End) {
			t.Errorf("step %v outside job window", st.ID)
		}
		switch st.ID.Kind {
		case slurm.StepBatch:
			batch++
			if st.NNodes != 1 {
				t.Errorf("batch step on %d nodes", st.NNodes)
			}
		case slurm.StepExtern:
			extern++
		case slurm.StepNumbered:
			if !prevEnd.IsZero() && st.Start.Before(prevEnd) {
				t.Errorf("numbered steps overlap: %v starts before %v", st.ID, prevEnd)
			}
			prevEnd = st.End
		}
	}
	if batch != 1 || extern != 1 {
		t.Errorf("batch=%d extern=%d", batch, extern)
	}
}

func TestFailureShowsOnFinalStep(t *testing.T) {
	r := req("alice", t0, 2, 2*time.Hour, time.Hour)
	r.Outcome = slurm.StateOutOfMemory
	r.FailFrac = 0.8
	r.Steps = 3
	res := run(t, tinySystem(), []tracegen.Request{r}, nil)
	var last *slurm.Record
	for i := range res.Steps {
		st := &res.Steps[i]
		if st.ID.Kind == slurm.StepNumbered && (last == nil || st.ID.Step > last.ID.Step) {
			last = st
		}
	}
	if last == nil || last.State != slurm.StateOutOfMemory {
		t.Errorf("final numbered step state = %v", last.State)
	}
}

func TestNoStepsWhenDisabled(t *testing.T) {
	cfg := DefaultConfig(tinySystem())
	sim, _ := New(cfg)
	res, err := sim.Run([]tracegen.Request{req("a", t0, 1, time.Hour, time.Minute)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 0 {
		t.Errorf("steps materialized despite EmitSteps=false")
	}
	if res.StepsPerJob[0] != 4 { // 2 numbered + batch + extern
		t.Errorf("StepsPerJob = %d, want 4", res.StepsPerJob[0])
	}
}

func TestRunErrors(t *testing.T) {
	cfg := DefaultConfig(tinySystem())
	sim, _ := New(cfg)
	if _, err := sim.Run(nil, Options{}); err == nil {
		t.Error("empty request stream: want error")
	}
	sim2, _ := New(cfg)
	bad := req("a", t0, 99, time.Hour, time.Minute)
	if _, err := sim2.Run([]tracegen.Request{bad}, Options{}); err == nil {
		t.Error("oversized request: want error")
	}
	sim3, _ := New(cfg)
	noLimit := req("a", t0, 1, 0, time.Minute)
	if _, err := sim3.Run([]tracegen.Request{noLimit}, Options{}); err == nil {
		t.Error("missing timelimit: want error")
	}
	badCfg := DefaultConfig(tinySystem())
	badCfg.AgeMax = 0
	if _, err := New(badCfg); err == nil {
		t.Error("invalid config: want error")
	}
}

func TestDeterminism(t *testing.T) {
	phases := []tracegen.Phase{{
		Profile: scaled(tracegen.FrontierProfile(), 80, 40),
		Start:   t0, End: t0.AddDate(0, 0, 7),
	}}
	reqs, err := tracegen.Generate(phases, 21)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() *Result {
		cfg := DefaultConfig(cluster.Frontier())
		sim, _ := New(cfg)
		res, err := sim.Run(reqs, Options{EmitSteps: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if len(a.Jobs) != len(b.Jobs) || len(a.Steps) != len(b.Steps) {
		t.Fatalf("sizes differ")
	}
	for i := range a.Jobs {
		x, y := a.Jobs[i], b.Jobs[i]
		if x.ID != y.ID || !x.Start.Equal(y.Start) || x.State != y.State || x.Priority != y.Priority {
			t.Fatalf("job %d differs: %v vs %v", i, x.ID, y.ID)
		}
	}
}

func scaled(p tracegen.Profile, jobsPerDay float64, users int) tracegen.Profile {
	p.JobsPerDay = jobsPerDay
	p.Users = users
	return p
}

// TestFrontierWorkloadInvariants is the integration test: a two-week
// Frontier-profile workload through the full scheduler.
func TestFrontierWorkloadInvariants(t *testing.T) {
	phases := []tracegen.Phase{{
		Profile: scaled(tracegen.FrontierProfile(), 150, 80),
		Start:   t0, End: t0.AddDate(0, 0, 14),
	}}
	reqs, err := tracegen.Generate(phases, 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(cluster.Frontier())
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(reqs, Options{EmitSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(reqs) {
		t.Fatalf("jobs %d != requests %d", len(res.Jobs), len(reqs))
	}
	backfilled := 0
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if !j.State.Terminal() {
			t.Fatalf("job %v not terminal: %v", j.ID, j.State)
		}
		if !j.Start.IsZero() {
			if j.Start.Before(j.Submit) {
				t.Fatalf("job %v started before submission", j.ID)
			}
			if j.Elapsed > j.Timelimit {
				t.Fatalf("job %v exceeded its limit: %v > %v", j.ID, j.Elapsed, j.Timelimit)
			}
			if j.End.Sub(j.Start) != j.Elapsed {
				t.Fatalf("job %v elapsed inconsistent", j.ID)
			}
		} else if j.State != slurm.StateCancelled {
			t.Fatalf("never-started job %v in state %v", j.ID, j.State)
		}
		if j.Backfilled() {
			backfilled++
		}
	}
	if backfilled == 0 {
		t.Error("a contended two-week workload should backfill some jobs")
	}
	util := res.Stats.Utilization()
	if util <= 0 || util > 1 {
		t.Errorf("utilization = %v", util)
	}
	if res.Stats.MeanWait() < 0 {
		t.Errorf("negative mean wait")
	}
	// Step volume dominates job volume (Figure 1 shape).
	if len(res.Steps) < 5*len(res.Jobs) {
		t.Errorf("steps %d vs jobs %d: expected step-dominated trace", len(res.Steps), len(res.Jobs))
	}
}
