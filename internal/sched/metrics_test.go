package sched

import (
	"testing"
	"time"

	"slurmsight/internal/obs"
	"slurmsight/internal/tracegen"
)

// TestSimulatorMetrics runs the canonical backfill scenario with a
// registry attached and checks the sched_* instruments agree with the
// run's own statistics.
func TestSimulatorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reqs := []tracegen.Request{
		req("a", t0, 8, time.Hour, time.Hour),
		req("b", t0.Add(time.Second), 10, time.Hour, 30*time.Minute),
		req("c", t0.Add(2*time.Second), 2, 30*time.Minute, 20*time.Minute),
	}
	res := run(t, tinySystem(), reqs, func(cfg *Config) { cfg.Metrics = reg })

	if got := reg.Counter("sched_events_processed_total").Value(); got < int64(len(reqs)) {
		t.Errorf("sched_events_processed_total = %d, want ≥ %d (one per submit)", got, len(reqs))
	}
	if got := reg.Counter("sched_passes_total").Value(); got == 0 {
		t.Error("sched_passes_total = 0")
	}
	if got := reg.Counter("sched_backfill_starts_total").Value(); got != int64(res.Stats.Backfilled) {
		t.Errorf("sched_backfill_starts_total = %d, want %d", got, res.Stats.Backfilled)
	}
	if got := reg.Counter("sched_backfill_attempts_total").Value(); got < reg.Counter("sched_backfill_starts_total").Value() {
		t.Errorf("backfill attempts %d < starts", got)
	}
	// Everything drained: the end-of-run gauges must read empty.
	if got := reg.Gauge("sched_queue_depth").Value(); got != 0 {
		t.Errorf("sched_queue_depth = %d at end of run", got)
	}
	if got := reg.Gauge("sched_jobs_running").Value(); got != 0 {
		t.Errorf("sched_jobs_running = %d at end of run", got)
	}
}
