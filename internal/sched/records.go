package sched

import (
	"fmt"
	"math/rand"
	"time"

	"slurmsight/internal/slurm"
)

// buildResult converts finished simulator jobs into accounting records.
func (s *Simulator) buildResult(jobs []*job, arrayBase map[int64]int64, opts Options) (*Result, error) {
	res := &Result{
		Jobs:        make([]slurm.Record, 0, len(jobs)),
		StepsPerJob: make([]int, 0, len(jobs)),
		Stats:       s.stats,
	}
	for _, j := range jobs {
		rng := rand.New(rand.NewSource(s.cfg.Seed ^ (j.seq+1)*0x9E3779B9))
		rec, steps := s.materialize(j, arrayBase, rng, opts.EmitSteps)
		res.Jobs = append(res.Jobs, rec)
		nsteps := 0
		if j.started {
			nsteps = j.req.Steps + 2 // numbered + batch + extern
		}
		res.StepsPerJob = append(res.StepsPerJob, nsteps)
		if opts.EmitSteps {
			res.Steps = append(res.Steps, steps...)
		}
	}
	return res, nil
}

// exitFor maps a terminal state to a plausible exit:signal pair.
func exitFor(st slurm.State, rng *rand.Rand) (int, int) {
	switch st {
	case slurm.StateFailed:
		return 1 + rng.Intn(127), 0
	case slurm.StateCancelled:
		return 0, 15 // SIGTERM
	case slurm.StateTimeout:
		return 0, 1
	case slurm.StateOutOfMemory:
		return 0, 9 // OOM-killed
	case slurm.StateNodeFail:
		return 0, 0
	default:
		return 0, 0
	}
}

// nodeListFor renders a synthetic contiguous allocation.
func nodeListFor(cluster string, nodes int) string {
	if nodes == 1 {
		return fmt.Sprintf("%s000000", cluster)
	}
	return fmt.Sprintf("%s[%06d-%06d]", cluster, 0, nodes-1)
}

// materialize builds the job record and, when emitSteps is set, its step
// records.
func (s *Simulator) materialize(j *job, arrayBase map[int64]int64, rng *rand.Rand, emitSteps bool) (slurm.Record, []slurm.Record) {
	sys := s.cfg.System
	r := &j.req
	nodes := int64(r.Nodes)
	cores := int64(sys.CoresPerNode)
	allocCPUs := int64(j.cores)
	// Sub-node allocations scale per-node resources to their core share.
	reqMem := sys.MemPerNode
	if r.Cores > 0 {
		reqMem = sys.MemPerNode * int64(r.Cores) / cores
	}

	rec := slurm.Record{
		ID:        j.id,
		JobName:   r.JobName,
		User:      r.User,
		UID:       10000 + hash32(r.User)%50000,
		Group:     r.Account,
		Account:   r.Account,
		Cluster:   sys.Name,
		Partition: r.Partition,
		Submit:    r.Submit,
		Eligible:  j.eligible,
		Timelimit: r.Timelimit,
		Restarts:  j.restarts,
		NNodes:    nodes,
		NCPUs:     allocCPUs,
		ReqNodes:  nodes,
		ReqCPUs:   allocCPUs,
		ReqMem:    reqMem,
		State:     j.state,
		QOS:       r.QOS,
		QOSReq:    r.QOS,
		Priority:  j.priority,
		Comment:   r.Class,
		WorkDir:   fmt.Sprintf("/lustre/orion/%s/scratch/%s", r.Account, r.User),
		TRESReq: slurm.TRES{
			"cpu":  allocCPUs,
			"mem":  nodes * reqMem,
			"node": nodes,
		},
		TRESUsageInAve: slurm.TRES{},
	}
	if sys.GPUsPerNode > 0 {
		rec.TRESReq["gres/gpu"] = nodes * int64(sys.GPUsPerNode)
	}
	if r.ArrayID != 0 {
		rec.ArrayJobID = arrayBase[r.ArrayID]
	}
	if j.depPred != nil {
		rec.Dependency = "afterok:" + j.depPred.id.String()
	}
	if r.Reservation != "" {
		rec.Reservation = r.Reservation
		if rp, ok := s.resByName[r.Reservation]; ok {
			for i, p := range s.resPools {
				if p == rp {
					rec.ReservationID = int64(i + 1)
				}
			}
		}
	}
	rec.ExitCode, rec.ExitSignal = exitFor(j.state, rng)
	rec.DerivedExitCode = slurm.FormatExitCode(rec.ExitCode, rec.ExitSignal)

	if !j.started {
		// Cancelled while pending or held: no start, no usage.
		rec.End = j.end
		rec.Reason = "Priority"
		if j.reason != "" {
			rec.Reason = j.reason
		}
		return rec, nil
	}

	elapsed := j.end.Sub(j.start)
	rec.Start = j.start
	rec.End = j.end
	rec.Elapsed = elapsed
	rec.NodeList = nodeListFor(sys.Name, r.Nodes)
	if j.backfill {
		rec.Flags = []string{slurm.FlagBackfill}
	} else {
		rec.Flags = []string{slurm.FlagMain}
	}
	switch {
	case j.reason != "":
		rec.Reason = j.reason
	default:
		if wait, ok := rec.WaitTime(); ok && wait > time.Minute {
			rec.Reason = "Priority"
		} else {
			rec.Reason = "None"
		}
	}
	// Runtime discarded by preemptions shows as suspended time, keeping
	// the record's walltime accounting whole.
	rec.Suspended = j.lost

	// Synthesized usage: CPU efficiency, memory footprint, IO volume and
	// energy, all scaled to allocation and runtime.
	eff := 0.35 + 0.6*rng.Float64()
	totalCPU := time.Duration(float64(elapsed) * float64(allocCPUs) * eff)
	rec.TotalCPU = totalCPU
	rec.UserCPU = time.Duration(float64(totalCPU) * (0.85 + 0.1*rng.Float64()))
	rec.SystemCPU = totalCPU - rec.UserCPU
	memFrac := 0.05 + 0.7*rng.Float64()
	rec.MaxRSS = int64(float64(sys.MemPerNode) * memFrac)
	rec.AveRSS = int64(float64(rec.MaxRSS) * (0.5 + 0.4*rng.Float64()))
	rec.VMSize = rec.MaxRSS + rec.MaxRSS/4
	rec.MaxVMSize = rec.VMSize
	rec.AvePages = rng.Int63n(1 << 16)
	ioScale := float64(elapsed.Seconds()) * float64(nodes)
	rec.MaxDiskRead = int64(ioScale * (1 << 18) * rng.Float64())
	rec.AveDiskRead = int64(float64(rec.MaxDiskRead) * (0.4 + 0.5*rng.Float64()))
	rec.MaxDiskWrite = int64(ioScale * (1 << 17) * rng.Float64())
	rec.AveDiskWrite = int64(float64(rec.MaxDiskWrite) * (0.4 + 0.5*rng.Float64()))
	// ~550 W per node plus GPU draw when busy.
	watts := 550.0 + 75.0*float64(sys.GPUsPerNode)*eff
	rec.ConsumedEnergy = int64(watts * float64(nodes) * elapsed.Seconds())
	rec.TRESUsageInAve = slurm.TRES{
		"cpu": int64(float64(cores) * eff),
		"mem": rec.AveRSS,
	}

	tasksPerNode := int64(1) << uint(rng.Intn(4)) // 1, 2, 4, or 8 tasks/node
	if tasksPerNode > cores {
		tasksPerNode = cores
	}
	rec.NTasks = nodes * tasksPerNode

	var steps []slurm.Record
	if emitSteps {
		steps = s.synthesizeSteps(j, &rec, tasksPerNode, rng)
	}
	return rec, steps
}

// synthesizeSteps builds the batch/extern pseudo-steps and the numbered
// srun steps, sequential in time, with the failure (if any) landing on the
// final step.
func (s *Simulator) synthesizeSteps(j *job, jobRec *slurm.Record, tasksPerNode int64, rng *rand.Rand) []slurm.Record {
	elapsed := jobRec.Elapsed
	n := j.req.Steps
	steps := make([]slurm.Record, 0, n+2)

	mkStep := func(id slurm.JobID, start, end time.Time, nnodes, ntasks int64, st slurm.State, layout string) slurm.Record {
		rec := slurm.Record{
			ID:             id,
			JobName:        jobRec.JobName,
			User:           jobRec.User,
			Account:        jobRec.Account,
			Cluster:        jobRec.Cluster,
			Partition:      jobRec.Partition,
			Submit:         jobRec.Submit,
			Eligible:       jobRec.Eligible,
			Start:          start,
			End:            end,
			Elapsed:        end.Sub(start),
			Timelimit:      jobRec.Timelimit,
			NNodes:         nnodes,
			NCPUs:          nnodes * int64(s.cfg.System.CoresPerNode),
			NTasks:         ntasks,
			State:          st,
			QOS:            jobRec.QOS,
			Layout:         layout,
			NodeList:       nodeListFor(s.cfg.System.Name, int(nnodes)),
			WorkDir:        jobRec.WorkDir,
			Comment:        jobRec.Comment,
			TRESReq:        slurm.TRES{},
			TRESUsageInAve: slurm.TRES{},
		}
		rec.ExitCode, rec.ExitSignal = exitFor(st, rng)
		dur := end.Sub(start)
		eff := 0.3 + 0.65*rng.Float64()
		rec.TotalCPU = time.Duration(float64(dur) * float64(rec.NCPUs) * eff)
		if ntasks > 0 {
			rec.AveCPU = rec.TotalCPU / time.Duration(ntasks)
		}
		rec.MaxRSS = int64(float64(jobRec.MaxRSS) * (0.3 + 0.7*rng.Float64()))
		rec.AveRSS = int64(float64(rec.MaxRSS) * 0.8)
		return rec
	}

	// Batch script wraps the whole job on the lead node.
	steps = append(steps, mkStep(j.id.WithBatch(), jobRec.Start, jobRec.End, 1, 1, j.state, ""))
	// Extern step spans the allocation.
	externID := j.id
	externID.Kind = slurm.StepExtern
	steps = append(steps, mkStep(externID, jobRec.Start, jobRec.End, jobRec.NNodes, jobRec.NNodes, slurm.StateCompleted, "cyclic"))

	// Numbered srun steps run back-to-back over ~90% of the walltime.
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = 0.2 + rng.Float64()
		total += weights[i]
	}
	span := time.Duration(float64(elapsed) * 0.9)
	cursor := jobRec.Start
	for i := 0; i < n; i++ {
		dur := time.Duration(float64(span) * weights[i] / total)
		if dur < time.Second {
			dur = time.Second
		}
		end := cursor.Add(dur)
		if end.After(jobRec.End) {
			end = jobRec.End
		}
		st := slurm.StateCompleted
		if i == n-1 {
			// The job's fate shows on its final step.
			switch j.state {
			case slurm.StateFailed, slurm.StateOutOfMemory, slurm.StateNodeFail:
				st = j.state
			case slurm.StateTimeout, slurm.StateCancelled:
				st = slurm.StateCancelled
			}
		}
		steps = append(steps, mkStep(j.id.WithStep(int64(i)), cursor, end,
			jobRec.NNodes, jobRec.NNodes*tasksPerNode, st, "block"))
		cursor = end
	}
	return steps
}

// hash32 is a tiny FNV-1a for stable synthetic UIDs.
func hash32(s string) int64 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return int64(h)
}
