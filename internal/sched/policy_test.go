package sched

import (
	"errors"
	"testing"
	"time"

	"slurmsight/internal/cluster"
	"slurmsight/internal/obs"
	"slurmsight/internal/tracegen"
)

// --- typed config validation ---

func TestValidateTypedErrors(t *testing.T) {
	base := func() Config { return DefaultConfig(tinySystem()) }
	cases := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"nil system", func(c *Config) { c.System = nil }, ErrNilSystem},
		{"negative age weight", func(c *Config) { c.AgeWeight = -1 }, ErrNegativeWeight},
		{"negative size weight", func(c *Config) { c.SizeWeight = -1 }, ErrNegativeWeight},
		{"negative fairshare weight", func(c *Config) { c.FairShareWeight = -1 }, ErrNegativeWeight},
		{"negative backfill depth", func(c *Config) { c.BackfillDepth = -3 }, ErrBadDepth},
		{"zero age max", func(c *Config) { c.AgeMax = 0 }, ErrBadTimeConstant},
		{"zero half life", func(c *Config) { c.FairShareHalfLife = 0 }, ErrBadTimeConstant},
		{"negative resort cadence", func(c *Config) { c.ResortEvery = -time.Second }, ErrBadTimeConstant},
		{"unknown priority", func(c *Config) { c.Priority = "lottery" }, ErrUnknownPolicy},
		{"unknown backfill", func(c *Config) { c.Backfill = "psychic" }, ErrUnknownPolicy},
		{"unknown selector", func(c *Config) { c.NodeSelect = "quantum" }, ErrUnknownPolicy},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			if _, err := New(cfg); !errors.Is(err, tc.want) {
				t.Fatalf("New() error = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
	if _, err := New(base()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

// --- priority policies ---

func TestPriorityByName(t *testing.T) {
	cfg := DefaultConfig(tinySystem())
	for _, name := range append(PriorityNames(), "") {
		if _, err := PriorityByName(name, &cfg); err != nil {
			t.Errorf("PriorityByName(%q): %v", name, err)
		}
	}
	if _, err := PriorityByName("nope", &cfg); err == nil {
		t.Error("PriorityByName accepted unknown name")
	}
}

// TestFIFOPriorityOrdersBySubmission runs three same-shape jobs from
// different users submitted in sequence: under fifo every priority term is
// zero, so the submission-sequence tie-break orders starts, regardless of
// the QoS boost that would reorder them under multifactor.
func TestFIFOPriorityOrdersBySubmission(t *testing.T) {
	blocker := req("z", t0, 10, time.Hour, time.Hour) // fills the system
	a := req("a", t0.Add(time.Minute), 10, time.Hour, 30*time.Minute)
	b := req("b", t0.Add(2*time.Minute), 10, time.Hour, 30*time.Minute)
	b.QOS = "debug" // +500k QoS weight: would start before a under multifactor
	c := req("c", t0.Add(3*time.Minute), 10, time.Hour, 30*time.Minute)

	start := func(priority string) [3]time.Time {
		cfg := DefaultConfig(tinySystem())
		cfg.Priority = priority
		cfg.EnableBackfill = false
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run([]tracegen.Request{blocker, a, b, c}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var out [3]time.Time
		for i := range res.Jobs {
			switch res.Jobs[i].User {
			case "a":
				out[0] = res.Jobs[i].Start
			case "b":
				out[1] = res.Jobs[i].Start
			case "c":
				out[2] = res.Jobs[i].Start
			}
		}
		return out
	}

	fifo := start("fifo")
	if !(fifo[0].Before(fifo[1]) && fifo[1].Before(fifo[2])) {
		t.Errorf("fifo order a=%v b=%v c=%v, want submission order", fifo[0], fifo[1], fifo[2])
	}
	multi := start("multifactor")
	if !multi[1].Before(multi[0]) {
		t.Errorf("multifactor: debug-QoS b started %v, a %v; want b first", multi[1], multi[0])
	}
}

// --- backfill policies ---

func TestBackfillByName(t *testing.T) {
	for _, name := range append(BackfillNames(), "") {
		if _, err := BackfillByName(name); err != nil {
			t.Errorf("BackfillByName(%q): %v", name, err)
		}
	}
	if _, err := BackfillByName("nope"); err == nil {
		t.Error("BackfillByName accepted unknown name")
	}
}

func TestBackfillNameResolution(t *testing.T) {
	cases := []struct {
		backfill string
		enable   bool
		want     string
	}{
		{"", true, "easy"},
		{"", false, "none"},
		{"conservative", false, "conservative"}, // explicit name wins
		{"none", true, "none"},
	}
	for _, tc := range cases {
		c := Config{Backfill: tc.backfill, EnableBackfill: tc.enable}
		if got := c.backfillName(); got != tc.want {
			t.Errorf("backfillName(%q, enable=%v) = %q, want %q",
				tc.backfill, tc.enable, got, tc.want)
		}
	}
}

func TestFreeProfile(t *testing.T) {
	var p freeProfile
	p.reset(0, 4)

	// Flat profile: anything ≤4 cores fits immediately.
	if at := p.earliestFit(4, 100); at != 0 {
		t.Fatalf("flat fit at %d, want 0", at)
	}
	if at := p.earliestFit(5, 100); at != -1 {
		t.Fatalf("oversized fit at %d, want -1", at)
	}

	// Reserve 3 cores over [0,50): 1 core until t=50, then 4.
	p.reserve(0, 3, 50)
	if at := p.earliestFit(1, 10); at != 0 {
		t.Errorf("1-core fit at %d, want 0", at)
	}
	if at := p.earliestFit(2, 10); at != 50 {
		t.Errorf("2-core fit at %d, want 50", at)
	}

	// Release at t=20: 3 free over [20,50), 6 after.
	p.release(20, 2)
	if at := p.earliestFit(3, 10); at != 20 {
		t.Errorf("3-core fit at %d, want 20", at)
	}
	// 3 cores for 40 ticks starting at 20 would span the drop back to... no:
	// profile is 1,[0,20) 3,[20,50) 6,[50,∞) — monotone here, so 3 cores
	// for any duration fits at 20. Carve a mid-window dip to force the
	// interior-violation rescan: 2 cores over [30,40) leaves 1 free there.
	p.reserve(30, 2, 10)
	if at := p.earliestFit(3, 15); at != 40 {
		t.Errorf("3-core/15 fit at %d, want 40 (dip at [30,40) blocks 20)", at)
	}
	if at := p.earliestFit(1, 100); at != 0 {
		t.Errorf("1-core fit at %d, want 0", at)
	}

	// Reservation before the profile start clamps to the first point.
	p.reset(100, 2)
	p.reserve(-5, 1, 20) // negative start is a no-op
	if at := p.earliestFit(2, 10); at != 100 {
		t.Errorf("fit at %d, want 100 after no-op negative reserve", at)
	}
	p.release(50, 3) // before start: clamps onto the first point
	if at := p.earliestFit(5, 10); at != 100 {
		t.Errorf("fit at %d, want 100 after clamped release", at)
	}
}

// --- node selectors ---

func TestSelectorByName(t *testing.T) {
	for _, name := range append(SelectorNames(), "") {
		if _, err := SelectorByName(name); err != nil {
			t.Errorf("SelectorByName(%q): %v", name, err)
		}
	}
	if _, err := SelectorByName("nope"); err == nil {
		t.Error("SelectorByName accepted unknown name")
	}
}

func selSystem(nodes, cores int) *cluster.System {
	return &cluster.System{Nodes: nodes, CoresPerNode: cores}
}

func TestTrackingSelectorFirstfit(t *testing.T) {
	sel, _ := SelectorByName("firstfit")
	sel.Reset(selSystem(2, 4))

	j := func(cores int) *job { return &job{cores: cores} }

	// 3-core job lands on node 0; a second 2-core job can't share it
	// (3+2 > 4) and takes node 1.
	a, b := j(3), j(2)
	if !sel.Fits(a) {
		t.Fatal("empty system rejects 3-core job")
	}
	sel.Place(a)
	sel.Place(b)
	if a.nodeIDs[0] != 0 || b.nodeIDs[0] != 1 {
		t.Fatalf("placements a=%v b=%v, want node0/node1", a.nodeIDs, b.nodeIDs)
	}

	// Free cores total 1+2=3, but no node has 3 contiguous: fragmentation
	// blocks what the scalar pool would have allowed.
	if sel.Fits(j(3)) {
		t.Error("fragmented system accepted 3-core job")
	}
	// A whole-node job needs a fully-free node; none exists.
	if sel.Fits(j(4)) {
		t.Error("fragmented system accepted whole-node job")
	}

	// Releasing a restores node 0; the whole-node job fits there now.
	sel.Release(a)
	w := j(4)
	if !sel.Fits(w) {
		t.Fatal("freed node rejected whole-node job")
	}
	sel.Place(w)
	if w.nodeIDs[0] != 0 {
		t.Fatalf("whole-node placement %v, want node0", w.nodeIDs)
	}
	sel.Release(w)
	sel.Release(b)
	if !sel.Fits(j(8)) {
		t.Error("fully released system rejected 2-node job")
	}
}

func TestTrackingSelectorBestfit(t *testing.T) {
	sel, _ := SelectorByName("bestfit")
	sel.Reset(selSystem(3, 8))

	j := func(cores int) *job { return &job{cores: cores} }

	// Load node 0 with 5 cores and node 1 with 2; best-fit puts a 3-core
	// job on node 0 (fullest that fits), where first-fit also would — so
	// distinguish with a 4-core job: node 0 has 3 free (no fit), node 1
	// has 6 free, node 2 is empty. Best-fit picks node 1.
	sel.Place(j(5))
	sel.Place(j(2)) // bestfit: node 0 has 3 free < ... 5+2=7 ≤ 8 → node 0!
	// Careful: the 2-core job packed onto node 0 (5+2=7). Node state:
	// node0=7, node1=0, node2=0.
	four := j(4)
	sel.Place(four)
	if four.nodeIDs[0] != 1 {
		t.Fatalf("4-core best-fit landed on node %d, want 1 (node0 full at 7/8)", four.nodeIDs[0])
	}
	one := j(1)
	sel.Place(one)
	if one.nodeIDs[0] != 0 {
		t.Fatalf("1-core best-fit landed on node %d, want 0 (fullest with room)", one.nodeIDs[0])
	}
}

func TestPoolSelectorAlwaysFits(t *testing.T) {
	sel, _ := SelectorByName("pool")
	sel.Reset(selSystem(1, 4))
	j := &job{cores: 1 << 20}
	if !sel.Fits(j) {
		t.Error("pool selector must accept anything the core pool accepts")
	}
	sel.Place(j)
	sel.Release(j)
	if len(j.nodeIDs) != 0 {
		t.Error("pool selector recorded node placements")
	}
}

// --- weight presets ---

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		cfg := DefaultConfig(tinySystem())
		if err := ApplyPreset(&cfg, name); err != nil {
			t.Errorf("ApplyPreset(%q): %v", name, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %q produces invalid config: %v", name, err)
		}
	}
	cfg := DefaultConfig(tinySystem())
	if err := ApplyPreset(&cfg, "nope"); err == nil {
		t.Error("ApplyPreset accepted unknown preset")
	}

	// The default preset must reproduce DefaultConfig's weights exactly —
	// it is the tournament's baseline arm.
	def := DefaultConfig(tinySystem())
	cfg = DefaultConfig(tinySystem())
	if err := ApplyPreset(&cfg, "default"); err != nil {
		t.Fatal(err)
	}
	if cfg.Base != def.Base || cfg.AgeWeight != def.AgeWeight ||
		cfg.SizeWeight != def.SizeWeight || cfg.FairShareWeight != def.FairShareWeight {
		t.Errorf("default preset %+v diverges from DefaultConfig %+v", cfg, def)
	}
}

// --- preemption counters (satellite: the one scheduler path that had
// no metric) ---

// TestPreemptCounters pins the preemption obs instruments: a successful
// preemption is one attempt and one eviction.
func TestPreemptCounters(t *testing.T) {
	reg := obs.NewRegistry()
	victim := req("victim", t0, 10, 4*time.Hour, 4*time.Hour)
	victim.QOS = "preemptible"
	urgent := req("urgent", t0.Add(30*time.Minute), 6, time.Hour, 30*time.Minute)
	urgent.QOS = "urgent"
	res := run(t, preemptSystem(), []tracegen.Request{victim, urgent},
		func(c *Config) { c.Metrics = reg })
	if res.Stats.Preemptions != 1 {
		t.Fatalf("scenario drifted: %d preemptions, want 1", res.Stats.Preemptions)
	}
	if got := reg.Counter("sched_preempt_attempts_total").Value(); got != 1 {
		t.Errorf("sched_preempt_attempts_total = %d, want 1", got)
	}
	if got := reg.Counter("sched_preempt_evictions_total").Value(); got != 1 {
		t.Errorf("sched_preempt_evictions_total = %d, want 1", got)
	}
}
